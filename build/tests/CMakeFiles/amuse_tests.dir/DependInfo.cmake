
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bytes_test.cpp" "tests/CMakeFiles/amuse_tests.dir/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/bytes_test.cpp.o.d"
  "/root/repo/tests/crypto_test.cpp" "tests/CMakeFiles/amuse_tests.dir/crypto_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/crypto_test.cpp.o.d"
  "/root/repo/tests/devices_test.cpp" "tests/CMakeFiles/amuse_tests.dir/devices_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/devices_test.cpp.o.d"
  "/root/repo/tests/discovery_test.cpp" "tests/CMakeFiles/amuse_tests.dir/discovery_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/discovery_test.cpp.o.d"
  "/root/repo/tests/event_bus_test.cpp" "tests/CMakeFiles/amuse_tests.dir/event_bus_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/event_bus_test.cpp.o.d"
  "/root/repo/tests/federation_test.cpp" "tests/CMakeFiles/amuse_tests.dir/federation_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/federation_test.cpp.o.d"
  "/root/repo/tests/filter_test.cpp" "tests/CMakeFiles/amuse_tests.dir/filter_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/filter_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/amuse_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/hostmodel_test.cpp" "tests/CMakeFiles/amuse_tests.dir/hostmodel_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/hostmodel_test.cpp.o.d"
  "/root/repo/tests/matcher_test.cpp" "tests/CMakeFiles/amuse_tests.dir/matcher_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/matcher_test.cpp.o.d"
  "/root/repo/tests/messages_test.cpp" "tests/CMakeFiles/amuse_tests.dir/messages_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/messages_test.cpp.o.d"
  "/root/repo/tests/monitor_test.cpp" "tests/CMakeFiles/amuse_tests.dir/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/monitor_test.cpp.o.d"
  "/root/repo/tests/packet_test.cpp" "tests/CMakeFiles/amuse_tests.dir/packet_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/packet_test.cpp.o.d"
  "/root/repo/tests/policy_engine_test.cpp" "tests/CMakeFiles/amuse_tests.dir/policy_engine_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/policy_engine_test.cpp.o.d"
  "/root/repo/tests/policy_lexer_test.cpp" "tests/CMakeFiles/amuse_tests.dir/policy_lexer_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/policy_lexer_test.cpp.o.d"
  "/root/repo/tests/policy_parser_test.cpp" "tests/CMakeFiles/amuse_tests.dir/policy_parser_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/policy_parser_test.cpp.o.d"
  "/root/repo/tests/proxy_test.cpp" "tests/CMakeFiles/amuse_tests.dir/proxy_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/proxy_test.cpp.o.d"
  "/root/repo/tests/registry_test.cpp" "tests/CMakeFiles/amuse_tests.dir/registry_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/registry_test.cpp.o.d"
  "/root/repo/tests/reliable_channel_test.cpp" "tests/CMakeFiles/amuse_tests.dir/reliable_channel_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/reliable_channel_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/amuse_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/siena_translation_test.cpp" "tests/CMakeFiles/amuse_tests.dir/siena_translation_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/siena_translation_test.cpp.o.d"
  "/root/repo/tests/sim_executor_test.cpp" "tests/CMakeFiles/amuse_tests.dir/sim_executor_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/sim_executor_test.cpp.o.d"
  "/root/repo/tests/sim_network_test.cpp" "tests/CMakeFiles/amuse_tests.dir/sim_network_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/sim_network_test.cpp.o.d"
  "/root/repo/tests/smc_integration_test.cpp" "tests/CMakeFiles/amuse_tests.dir/smc_integration_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/smc_integration_test.cpp.o.d"
  "/root/repo/tests/smc_member_test.cpp" "tests/CMakeFiles/amuse_tests.dir/smc_member_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/smc_member_test.cpp.o.d"
  "/root/repo/tests/typed_test.cpp" "tests/CMakeFiles/amuse_tests.dir/typed_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/typed_test.cpp.o.d"
  "/root/repo/tests/udp_transport_test.cpp" "tests/CMakeFiles/amuse_tests.dir/udp_transport_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/udp_transport_test.cpp.o.d"
  "/root/repo/tests/value_event_test.cpp" "tests/CMakeFiles/amuse_tests.dir/value_event_test.cpp.o" "gcc" "tests/CMakeFiles/amuse_tests.dir/value_event_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amuse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
