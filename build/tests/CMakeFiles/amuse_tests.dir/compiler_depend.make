# Empty compiler generated dependencies file for amuse_tests.
# This may be replaced when dependencies are built.
