file(REMOVE_RECURSE
  "CMakeFiles/link_baseline.dir/link_baseline.cpp.o"
  "CMakeFiles/link_baseline.dir/link_baseline.cpp.o.d"
  "link_baseline"
  "link_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
