# Empty dependencies file for link_baseline.
# This may be replaced when dependencies are built.
