# Empty compiler generated dependencies file for discovery_timeouts.
# This may be replaced when dependencies are built.
