file(REMOVE_RECURSE
  "CMakeFiles/discovery_timeouts.dir/discovery_timeouts.cpp.o"
  "CMakeFiles/discovery_timeouts.dir/discovery_timeouts.cpp.o.d"
  "discovery_timeouts"
  "discovery_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
