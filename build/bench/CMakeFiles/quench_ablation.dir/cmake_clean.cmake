file(REMOVE_RECURSE
  "CMakeFiles/quench_ablation.dir/quench_ablation.cpp.o"
  "CMakeFiles/quench_ablation.dir/quench_ablation.cpp.o.d"
  "quench_ablation"
  "quench_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quench_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
