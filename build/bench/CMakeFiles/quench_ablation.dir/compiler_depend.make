# Empty compiler generated dependencies file for quench_ablation.
# This may be replaced when dependencies are built.
