file(REMOVE_RECURSE
  "CMakeFiles/translation_cost.dir/translation_cost.cpp.o"
  "CMakeFiles/translation_cost.dir/translation_cost.cpp.o.d"
  "translation_cost"
  "translation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
