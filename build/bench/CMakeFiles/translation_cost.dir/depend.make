# Empty dependencies file for translation_cost.
# This may be replaced when dependencies are built.
