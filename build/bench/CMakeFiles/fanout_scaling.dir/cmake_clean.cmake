file(REMOVE_RECURSE
  "CMakeFiles/fanout_scaling.dir/fanout_scaling.cpp.o"
  "CMakeFiles/fanout_scaling.dir/fanout_scaling.cpp.o.d"
  "fanout_scaling"
  "fanout_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanout_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
