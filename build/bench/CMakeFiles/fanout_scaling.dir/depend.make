# Empty dependencies file for fanout_scaling.
# This may be replaced when dependencies are built.
