# Empty compiler generated dependencies file for matcher_scaling.
# This may be replaced when dependencies are built.
