file(REMOVE_RECURSE
  "CMakeFiles/matcher_scaling.dir/matcher_scaling.cpp.o"
  "CMakeFiles/matcher_scaling.dir/matcher_scaling.cpp.o.d"
  "matcher_scaling"
  "matcher_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcher_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
