file(REMOVE_RECURSE
  "CMakeFiles/fig4b_throughput.dir/fig4b_throughput.cpp.o"
  "CMakeFiles/fig4b_throughput.dir/fig4b_throughput.cpp.o.d"
  "fig4b_throughput"
  "fig4b_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
