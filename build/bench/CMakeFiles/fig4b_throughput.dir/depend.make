# Empty dependencies file for fig4b_throughput.
# This may be replaced when dependencies are built.
