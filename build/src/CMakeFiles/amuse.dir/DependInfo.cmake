
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/bus_client.cpp" "src/CMakeFiles/amuse.dir/bus/bus_client.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/bus/bus_client.cpp.o.d"
  "/root/repo/src/bus/event_bus.cpp" "src/CMakeFiles/amuse.dir/bus/event_bus.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/bus/event_bus.cpp.o.d"
  "/root/repo/src/bus/messages.cpp" "src/CMakeFiles/amuse.dir/bus/messages.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/bus/messages.cpp.o.d"
  "/root/repo/src/bus/quench.cpp" "src/CMakeFiles/amuse.dir/bus/quench.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/bus/quench.cpp.o.d"
  "/root/repo/src/bus/subscription_registry.cpp" "src/CMakeFiles/amuse.dir/bus/subscription_registry.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/bus/subscription_registry.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/amuse.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/crc32.cpp" "src/CMakeFiles/amuse.dir/common/crc32.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/common/crc32.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/amuse.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/amuse.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/service_id.cpp" "src/CMakeFiles/amuse.dir/common/service_id.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/common/service_id.cpp.o.d"
  "/root/repo/src/common/sha256.cpp" "src/CMakeFiles/amuse.dir/common/sha256.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/common/sha256.cpp.o.d"
  "/root/repo/src/devices/actuators.cpp" "src/CMakeFiles/amuse.dir/devices/actuators.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/devices/actuators.cpp.o.d"
  "/root/repo/src/devices/console.cpp" "src/CMakeFiles/amuse.dir/devices/console.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/devices/console.cpp.o.d"
  "/root/repo/src/devices/device.cpp" "src/CMakeFiles/amuse.dir/devices/device.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/devices/device.cpp.o.d"
  "/root/repo/src/devices/ecg_stream.cpp" "src/CMakeFiles/amuse.dir/devices/ecg_stream.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/devices/ecg_stream.cpp.o.d"
  "/root/repo/src/devices/sensors.cpp" "src/CMakeFiles/amuse.dir/devices/sensors.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/devices/sensors.cpp.o.d"
  "/root/repo/src/devices/vitals.cpp" "src/CMakeFiles/amuse.dir/devices/vitals.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/devices/vitals.cpp.o.d"
  "/root/repo/src/discovery/discovery_agent.cpp" "src/CMakeFiles/amuse.dir/discovery/discovery_agent.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/discovery/discovery_agent.cpp.o.d"
  "/root/repo/src/discovery/discovery_service.cpp" "src/CMakeFiles/amuse.dir/discovery/discovery_service.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/discovery/discovery_service.cpp.o.d"
  "/root/repo/src/discovery/membership.cpp" "src/CMakeFiles/amuse.dir/discovery/membership.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/discovery/membership.cpp.o.d"
  "/root/repo/src/hostmodel/cost_model.cpp" "src/CMakeFiles/amuse.dir/hostmodel/cost_model.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/hostmodel/cost_model.cpp.o.d"
  "/root/repo/src/hostmodel/profiles.cpp" "src/CMakeFiles/amuse.dir/hostmodel/profiles.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/hostmodel/profiles.cpp.o.d"
  "/root/repo/src/net/link_profiles.cpp" "src/CMakeFiles/amuse.dir/net/link_profiles.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/net/link_profiles.cpp.o.d"
  "/root/repo/src/net/loopback.cpp" "src/CMakeFiles/amuse.dir/net/loopback.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/net/loopback.cpp.o.d"
  "/root/repo/src/net/sim_network.cpp" "src/CMakeFiles/amuse.dir/net/sim_network.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/net/sim_network.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/CMakeFiles/amuse.dir/net/transport.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/net/transport.cpp.o.d"
  "/root/repo/src/net/udp_transport.cpp" "src/CMakeFiles/amuse.dir/net/udp_transport.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/net/udp_transport.cpp.o.d"
  "/root/repo/src/policy/ast.cpp" "src/CMakeFiles/amuse.dir/policy/ast.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/policy/ast.cpp.o.d"
  "/root/repo/src/policy/authorisation.cpp" "src/CMakeFiles/amuse.dir/policy/authorisation.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/policy/authorisation.cpp.o.d"
  "/root/repo/src/policy/deployment.cpp" "src/CMakeFiles/amuse.dir/policy/deployment.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/policy/deployment.cpp.o.d"
  "/root/repo/src/policy/expr_eval.cpp" "src/CMakeFiles/amuse.dir/policy/expr_eval.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/policy/expr_eval.cpp.o.d"
  "/root/repo/src/policy/lexer.cpp" "src/CMakeFiles/amuse.dir/policy/lexer.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/policy/lexer.cpp.o.d"
  "/root/repo/src/policy/obligation_engine.cpp" "src/CMakeFiles/amuse.dir/policy/obligation_engine.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/policy/obligation_engine.cpp.o.d"
  "/root/repo/src/policy/parser.cpp" "src/CMakeFiles/amuse.dir/policy/parser.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/policy/parser.cpp.o.d"
  "/root/repo/src/policy/policy_store.cpp" "src/CMakeFiles/amuse.dir/policy/policy_store.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/policy/policy_store.cpp.o.d"
  "/root/repo/src/proxy/bootstrap.cpp" "src/CMakeFiles/amuse.dir/proxy/bootstrap.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/proxy/bootstrap.cpp.o.d"
  "/root/repo/src/proxy/forwarding_proxy.cpp" "src/CMakeFiles/amuse.dir/proxy/forwarding_proxy.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/proxy/forwarding_proxy.cpp.o.d"
  "/root/repo/src/proxy/proxy.cpp" "src/CMakeFiles/amuse.dir/proxy/proxy.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/proxy/proxy.cpp.o.d"
  "/root/repo/src/proxy/translating_proxy.cpp" "src/CMakeFiles/amuse.dir/proxy/translating_proxy.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/proxy/translating_proxy.cpp.o.d"
  "/root/repo/src/pubsub/brute_matcher.cpp" "src/CMakeFiles/amuse.dir/pubsub/brute_matcher.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/pubsub/brute_matcher.cpp.o.d"
  "/root/repo/src/pubsub/codec.cpp" "src/CMakeFiles/amuse.dir/pubsub/codec.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/pubsub/codec.cpp.o.d"
  "/root/repo/src/pubsub/event.cpp" "src/CMakeFiles/amuse.dir/pubsub/event.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/pubsub/event.cpp.o.d"
  "/root/repo/src/pubsub/fastforward_matcher.cpp" "src/CMakeFiles/amuse.dir/pubsub/fastforward_matcher.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/pubsub/fastforward_matcher.cpp.o.d"
  "/root/repo/src/pubsub/filter.cpp" "src/CMakeFiles/amuse.dir/pubsub/filter.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/pubsub/filter.cpp.o.d"
  "/root/repo/src/pubsub/siena_matcher.cpp" "src/CMakeFiles/amuse.dir/pubsub/siena_matcher.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/pubsub/siena_matcher.cpp.o.d"
  "/root/repo/src/pubsub/siena_translation.cpp" "src/CMakeFiles/amuse.dir/pubsub/siena_translation.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/pubsub/siena_translation.cpp.o.d"
  "/root/repo/src/pubsub/value.cpp" "src/CMakeFiles/amuse.dir/pubsub/value.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/pubsub/value.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/CMakeFiles/amuse.dir/sim/executor.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/sim/executor.cpp.o.d"
  "/root/repo/src/sim/real_executor.cpp" "src/CMakeFiles/amuse.dir/sim/real_executor.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/sim/real_executor.cpp.o.d"
  "/root/repo/src/sim/sim_executor.cpp" "src/CMakeFiles/amuse.dir/sim/sim_executor.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/sim/sim_executor.cpp.o.d"
  "/root/repo/src/smc/cell.cpp" "src/CMakeFiles/amuse.dir/smc/cell.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/smc/cell.cpp.o.d"
  "/root/repo/src/smc/federation.cpp" "src/CMakeFiles/amuse.dir/smc/federation.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/smc/federation.cpp.o.d"
  "/root/repo/src/smc/member.cpp" "src/CMakeFiles/amuse.dir/smc/member.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/smc/member.cpp.o.d"
  "/root/repo/src/smc/monitor.cpp" "src/CMakeFiles/amuse.dir/smc/monitor.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/smc/monitor.cpp.o.d"
  "/root/repo/src/typed/event_type.cpp" "src/CMakeFiles/amuse.dir/typed/event_type.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/typed/event_type.cpp.o.d"
  "/root/repo/src/typed/typed_client.cpp" "src/CMakeFiles/amuse.dir/typed/typed_client.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/typed/typed_client.cpp.o.d"
  "/root/repo/src/wire/packet.cpp" "src/CMakeFiles/amuse.dir/wire/packet.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/wire/packet.cpp.o.d"
  "/root/repo/src/wire/reliable_channel.cpp" "src/CMakeFiles/amuse.dir/wire/reliable_channel.cpp.o" "gcc" "src/CMakeFiles/amuse.dir/wire/reliable_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
