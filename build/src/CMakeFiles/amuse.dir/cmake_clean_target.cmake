file(REMOVE_RECURSE
  "libamuse.a"
)
