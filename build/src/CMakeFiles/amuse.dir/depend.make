# Empty dependencies file for amuse.
# This may be replaced when dependencies are built.
