file(REMOVE_RECURSE
  "CMakeFiles/body_area_network.dir/body_area_network.cpp.o"
  "CMakeFiles/body_area_network.dir/body_area_network.cpp.o.d"
  "body_area_network"
  "body_area_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/body_area_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
