# Empty compiler generated dependencies file for body_area_network.
# This may be replaced when dependencies are built.
