# Empty compiler generated dependencies file for policy_adaptation.
# This may be replaced when dependencies are built.
