file(REMOVE_RECURSE
  "CMakeFiles/policy_adaptation.dir/policy_adaptation.cpp.o"
  "CMakeFiles/policy_adaptation.dir/policy_adaptation.cpp.o.d"
  "policy_adaptation"
  "policy_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
