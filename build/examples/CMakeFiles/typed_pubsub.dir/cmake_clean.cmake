file(REMOVE_RECURSE
  "CMakeFiles/typed_pubsub.dir/typed_pubsub.cpp.o"
  "CMakeFiles/typed_pubsub.dir/typed_pubsub.cpp.o.d"
  "typed_pubsub"
  "typed_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typed_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
