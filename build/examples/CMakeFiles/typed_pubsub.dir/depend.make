# Empty dependencies file for typed_pubsub.
# This may be replaced when dependencies are built.
