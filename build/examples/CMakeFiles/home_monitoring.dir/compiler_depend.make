# Empty compiler generated dependencies file for home_monitoring.
# This may be replaced when dependencies are built.
