file(REMOVE_RECURSE
  "CMakeFiles/home_monitoring.dir/home_monitoring.cpp.o"
  "CMakeFiles/home_monitoring.dir/home_monitoring.cpp.o.d"
  "home_monitoring"
  "home_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
