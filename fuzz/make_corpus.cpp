// Seed-corpus generator for the fuzz harnesses. Deterministic: running it
// twice produces byte-identical files, so the checked-in corpus under
// fuzz/corpus/ can be regenerated and diffed at any time:
//
//     ./build-fuzz/fuzz/amuse_make_corpus [output-root]   # default: fuzz/corpus
//
// The packet corpus seeds Packet::decode with the frame shapes the wire
// actually carries — plain/batched/fragmented DATA (including an event
// payload assembled the SharedPayload way: header ++ shared body), ACKs,
// every discovery frame — plus near-miss malformed frames (bad batch
// tiling, truncations, CRC damage) that exercise the rejection paths. The
// codec corpus seeds decode_event/decode_filter through the harness's
// steering byte. libFuzzer treats these as the starting population; the
// gcc standalone driver replays them verbatim under ASan/UBSan in CI.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bus/messages.hpp"
#include "common/bytes.hpp"
#include "pubsub/codec.hpp"
#include "wire/packet.hpp"

namespace {

using namespace amuse;

void write_file(const std::filesystem::path& dir, const std::string& name,
                BytesView bytes) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("%s/%s: %zu bytes\n", dir.string().c_str(), name.c_str(),
              bytes.size());
}

Packet data_frame(std::uint32_t seq, std::uint16_t flags, Bytes payload) {
  Packet p;
  p.type = PacketType::kData;
  p.session = 0x5EED0001;
  p.src = ServiceId::from_addr_port(0x0A000001, 40001);
  p.dst = ServiceId::from_addr_port(0x0A000002, 40002);
  p.seq = seq;
  p.flags = flags;
  p.payload = std::move(payload);
  return p;
}

Bytes batch_payload(const std::vector<Bytes>& subs) {
  Writer w;
  for (const Bytes& sub : subs) {
    w.u16(static_cast<std::uint16_t>(sub.size()));
    w.raw(BytesView(sub.data(), sub.size()));
  }
  return std::move(w).take();
}

Event sample_event() {
  Event e("vitals.heartrate", {{"hr", 142}, {"patient", "bed-7"}});
  e.set_publisher(ServiceId::from_addr_port(0x0A000003, 40003));
  return e;
}

void packet_corpus(const std::filesystem::path& dir) {
  // Plain single-message DATA frame.
  write_file(dir, "data_plain.bin",
             data_frame(3, 0, to_bytes("hello bus")).encode());
  // Empty-payload DATA (a valid zero-length message).
  write_file(dir, "data_empty.bin", data_frame(0, 0, Bytes{}).encode());
  // Cumulative ACK.
  {
    Packet a;
    a.type = PacketType::kAck;
    a.session = 0x5EED0001;
    a.src = ServiceId::from_addr_port(0x0A000002, 40002);
    a.dst = ServiceId::from_addr_port(0x0A000001, 40001);
    a.ack = 17;
    write_file(dir, "ack.bin", a.encode());
  }
  // Batched DATA: three well-tiled sub-messages.
  write_file(dir, "data_batched.bin",
             data_frame(5, kFlagBatched,
                        batch_payload({to_bytes("alpha"), to_bytes("beta"),
                                       to_bytes("gamma")}))
                 .encode());
  // Batched DATA whose payload does NOT tile (length prefix overruns):
  // well-formed at the frame layer, rejected at the batch-split layer.
  {
    Bytes bad = batch_payload({to_bytes("alpha")});
    bad[0] = 0xFF;  // sub-length now far beyond the payload
    write_file(dir, "data_batched_bad_tiling.bin",
               data_frame(5, kFlagBatched, std::move(bad)).encode());
  }
  // Fragmented DATA: a non-final fragment and the final one.
  write_file(
      dir, "data_fragment_more.bin",
      data_frame(8, kFlagMoreFragments, to_bytes("fragment-one|")).encode());
  write_file(dir, "data_fragment_final.bin",
             data_frame(9, 0, to_bytes("fragment-two")).encode());
  // An event delivery assembled the SharedPayload way: per-member header
  // plus the encode-once shared event body (what ForwardingProxy sends).
  {
    Bytes head = BusMessage::encode_event_header({4, 9});
    Bytes body = encode_event(sample_event());
    Bytes joined = head;
    joined.insert(joined.end(), body.begin(), body.end());
    write_file(dir, "data_event_shared_payload.bin",
               data_frame(2, 0, std::move(joined)).encode());
  }
  // A kPublish message as a member's client would send it.
  write_file(dir, "data_publish.bin",
             data_frame(1, 0, BusMessage::encode_publish(sample_event()))
                 .encode());
  // Discovery protocol frames, including the JoinAccept with the reserved
  // proxy-channel session (the newest wire field).
  {
    Packet b;
    b.type = PacketType::kBeacon;
    b.src = ServiceId::from_addr_port(0x0A000001, 40000);
    b.dst = ServiceId{};
    Writer w;
    w.str("patient-cell");
    w.u48(ServiceId::from_addr_port(0x0A000001, 40001).raw());
    b.payload = std::move(w).take();
    write_file(dir, "disc_beacon.bin", b.encode());
  }
  {
    Packet j;
    j.type = PacketType::kJoinAccept;
    j.src = ServiceId::from_addr_port(0x0A000001, 40000);
    j.dst = ServiceId::from_addr_port(0x0A000002, 40002);
    Writer w;
    w.u64(400);       // heartbeat interval
    w.u64(6000);      // purge_after
    w.u48(ServiceId::from_addr_port(0x0A000001, 40001).raw());
    w.u32(0x5EED0002);  // reserved proxy-channel session
    j.payload = std::move(w).take();
    write_file(dir, "disc_join_accept.bin", j.encode());
  }
  {
    Packet c;
    c.type = PacketType::kJoinChallenge;
    c.src = ServiceId::from_addr_port(0x0A000001, 40000);
    c.dst = ServiceId::from_addr_port(0x0A000002, 40002);
    Writer w;
    w.blob16(to_bytes("sixteen-byte-nonce"));
    c.payload = std::move(w).take();
    write_file(dir, "disc_join_challenge.bin", c.encode());
  }
  // Truncated frame: a valid encoding cut mid-payload.
  {
    Bytes whole = data_frame(3, 0, to_bytes("truncate me please")).encode();
    whole.resize(whole.size() - 7);
    write_file(dir, "data_truncated.bin", whole);
  }
  // CRC damage: flip one payload byte after encoding.
  {
    Bytes whole = data_frame(4, 0, to_bytes("crc goes stale")).encode();
    whole[whole.size() - 3] ^= 0x40;
    write_file(dir, "data_bad_crc.bin", whole);
  }
}

void codec_corpus(const std::filesystem::path& dir) {
  // The harness's first byte steers the decoder: even → event, odd → filter.
  auto steered = [](std::uint8_t steer, const Bytes& body) {
    Bytes out;
    out.push_back(steer);
    out.insert(out.end(), body.begin(), body.end());
    return out;
  };
  write_file(dir, "event_simple.bin",
             steered(0, encode_event(sample_event())));
  {
    Event e("sensor.mixed", {});
    e.set("i", Value(std::int64_t{-42}));
    e.set("d", Value(3.25));
    e.set("b", Value(true));
    e.set("s", Value(std::string("text")));
    e.set("raw", Value(Bytes{0x00, 0x01, 0x02, 0xFF}));
    write_file(dir, "event_all_value_types.bin", steered(0, encode_event(e)));
  }
  write_file(dir, "event_no_attrs.bin",
             steered(0, encode_event(Event("bare"))));
  {
    Event e("bulk");
    e.set("data", Value(Bytes(600, std::uint8_t{0xAB})));
    write_file(dir, "event_bulk_bytes.bin", steered(0, encode_event(e)));
  }
  {
    Event e("unicode", {{"name", "Grüße-患者-🚑"}});
    write_file(dir, "event_unicode.bin", steered(0, encode_event(e)));
  }
  {
    Bytes whole = encode_event(sample_event());
    whole.resize(whole.size() / 2);
    write_file(dir, "event_truncated.bin", steered(0, whole));
  }
  write_file(dir, "filter_for_type.bin",
             steered(1, encode_filter(Filter::for_type("vitals.heartrate"))));
  write_file(
      dir, "filter_type_prefix.bin",
      steered(1, encode_filter(Filter::for_type_prefix("smc.member."))));
  {
    Filter f = Filter::for_type("vitals.heartrate");
    f.where("hr", Op::kGt, Value(std::int64_t{150}))
        .where("patient", Op::kPrefix, Value(std::string("bed-")))
        .where("flag", Op::kExists);
    write_file(dir, "filter_multi_constraint.bin",
               steered(1, encode_filter(f)));
  }
  {
    Filter f;
    f.where("level", Op::kNe, Value(std::string("ok")))
        .where("joules", Op::kLe, Value(200.0));
    write_file(dir, "filter_numeric_string_ops.bin",
               steered(1, encode_filter(f)));
  }
  {
    Bytes whole = encode_filter(Filter::for_type("truncated"));
    whole.resize(whole.size() - 3);
    write_file(dir, "filter_truncated.bin", steered(1, whole));
  }
  {
    // A bad value-type tag deep inside an otherwise valid filter.
    Filter f = Filter::for_type("x");
    Bytes whole = encode_filter(f);
    whole[whole.size() - 1] = 0x77;  // last byte sits inside the constraint
    write_file(dir, "filter_bad_value_tag.bin", steered(1, whole));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = argc > 1 ? argv[1] : "fuzz/corpus";
  packet_corpus(root / "packet");
  codec_corpus(root / "codec");
  return 0;
}
