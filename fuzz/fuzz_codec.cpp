// Fuzz entry for the pub/sub codecs (decode_event / decode_filter) — these
// parse attacker-controllable bytes carried inside DATA frames. DecodeError
// is the expected rejection path; any other throw, crash, or sanitizer
// report is a finding. Round-trip property mirrors fuzz_packet.
#include <cstddef>
#include <cstdint>
#include <cstdlib>

#include "pubsub/codec.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  // First byte steers which decoder runs so one corpus covers both.
  amuse::BytesView input(data + 1, size - 1);
  try {
    if ((data[0] & 1) == 0) {
      amuse::Event e = amuse::decode_event(input);
      amuse::Bytes reencoded = amuse::encode_event(e);
      amuse::Event e2 = amuse::decode_event(reencoded);
      if (!(e2 == e)) std::abort();
    } else {
      amuse::Filter f = amuse::decode_filter(input);
      amuse::Bytes reencoded = amuse::encode_filter(f);
      amuse::Filter f2 = amuse::decode_filter(reencoded);
      if (!(f2 == f)) std::abort();
    }
  } catch (const amuse::DecodeError&) {
    // expected rejection of malformed input
  }
  return 0;
}
