// Fuzz entry for wire/Packet::decode — the first parser every datagram from
// the network hits, so it must tolerate arbitrary bytes. decode() returning
// nullopt is the expected rejection path; any throw, crash, or sanitizer
// report is a finding. Round-trip property: whatever decode() accepts must
// re-encode and decode to the same frame. Batched DATA frames add a second
// property: decode() only accepts a kFlagBatched payload that split_batch()
// can tile into sub-messages, and the sub-views must stay in bounds.
#include <cstddef>
#include <cstdint>
#include <cstdlib>

#include "wire/packet.hpp"

namespace {

void check_round_trip(const amuse::Packet& p) {
  amuse::Bytes reencoded = p.encode();
  std::optional<amuse::Packet> q = amuse::Packet::decode(reencoded);
  if (!q) std::abort();  // accepted frames must survive a round trip
  if (q->type != p.type || q->seq != p.seq || q->ack != p.ack ||
      q->session != p.session || q->flags != p.flags || q->src != p.src ||
      q->dst != p.dst || q->payload != p.payload) {
    std::abort();
  }
}

// decode() promised this payload tiles into sub-messages; verify, and touch
// every sub-byte so ASan sees any out-of-bounds view.
void check_batch_splits(const amuse::Packet& p) {
  auto subs = amuse::Packet::split_batch(p.payload);
  if (!subs) std::abort();
  std::size_t total = 0;
  unsigned sink = 0;
  for (amuse::BytesView sub : *subs) {
    total += 2 + sub.size();
    for (std::uint8_t b : sub) sink += b;
  }
  if (total != p.payload.size()) std::abort();
  if (sink == 0xFFFFFFFFu) std::abort();  // keep the reads alive
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  amuse::BytesView input(data, size);
  std::optional<amuse::Packet> p = amuse::Packet::decode(input);
  if (p) {
    check_round_trip(*p);
    if (p->type == amuse::PacketType::kData &&
        (p->flags & amuse::kFlagBatched) != 0) {
      check_batch_splits(*p);
    }
  }

  // Drive the batched-payload validation directly: wrap the raw input as
  // the payload of an otherwise well-formed batched DATA frame. decode()
  // must accept it iff the bytes tile into u16-length-prefixed subs.
  if (size <= 0xFFFF) {
    amuse::Packet b;
    b.type = amuse::PacketType::kData;
    b.flags = amuse::kFlagBatched;
    b.session = 0x5EED;
    b.src = amuse::ServiceId::from_addr_port(0x7F000001u, 1);
    b.dst = amuse::ServiceId::from_addr_port(0x7F000001u, 2);
    b.payload.assign(data, data + size);
    amuse::Bytes wire = b.encode();
    std::optional<amuse::Packet> q = amuse::Packet::decode(wire);
    if (q) {
      check_batch_splits(*q);
      check_round_trip(*q);
    } else if (amuse::Packet::split_batch(b.payload)) {
      std::abort();  // splittable payload must not be rejected
    }
  }
  return 0;
}
