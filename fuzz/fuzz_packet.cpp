// Fuzz entry for wire/Packet::decode — the first parser every datagram from
// the network hits, so it must tolerate arbitrary bytes. decode() returning
// nullopt is the expected rejection path; any throw, crash, or sanitizer
// report is a finding. Round-trip property: whatever decode() accepts must
// re-encode and decode to the same frame.
#include <cstddef>
#include <cstdint>
#include <cstdlib>

#include "wire/packet.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  amuse::BytesView input(data, size);
  std::optional<amuse::Packet> p = amuse::Packet::decode(input);
  if (p) {
    amuse::Bytes reencoded = p->encode();
    std::optional<amuse::Packet> q = amuse::Packet::decode(reencoded);
    if (!q) std::abort();  // accepted frames must survive a round trip
    if (q->type != p->type || q->seq != p->seq || q->ack != p->ack ||
        q->session != p->session || q->flags != p->flags ||
        q->src != p->src || q->dst != p->dst || q->payload != p->payload) {
      std::abort();
    }
  }
  return 0;
}
