// Standalone driver for the fuzz entries, used when the toolchain has no
// libFuzzer (-fsanitize=fuzzer is clang-only; this repo's dev container is
// gcc). It replays any corpus files given on the command line, then runs a
// deterministic seeded sweep: random buffers plus single-byte corruptions
// sliding across the buffer — cheap structure-blind mutation that still
// reaches deep into length-prefix handling because most bytes stay valid.
// Under `ctest -L fuzz` (the asan/fuzz presets) this gives ASan+UBSan a few
// hundred thousand adversarial inputs per run.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

void run_one(const std::vector<std::uint8_t>& buf) {
  LLVMFuzzerTestOneInput(buf.data(), buf.size());
}

int replay_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "standalone_driver: cannot open %s\n", path);
    return 1;
  }
  std::vector<std::uint8_t> buf(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  run_one(buf);
  std::fprintf(stderr, "standalone_driver: replayed %s (%zu bytes)\n", path,
               buf.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    int rc = 0;
    for (int i = 1; i < argc; ++i) rc |= replay_file(argv[i]);
    return rc;
  }

  // Deterministic sweep (fixed seed: a failure reproduces with no corpus).
  std::mt19937_64 rng(0xA5EB2006ULL);
  std::uniform_int_distribution<int> byte(0, 255);

  constexpr int kRandomBuffers = 20000;
  constexpr std::size_t kMaxLen = 512;
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < kRandomBuffers; ++i) {
    buf.resize(rng() % kMaxLen);
    for (auto& b : buf) b = static_cast<std::uint8_t>(byte(rng));
    run_one(buf);
  }

  // Corruption sweep: take random buffers that begin with plausible magic
  // bytes so parsers get past the first fence, then flip each byte in turn.
  constexpr int kSeeds = 200;
  for (int s = 0; s < kSeeds; ++s) {
    buf.resize(64 + rng() % 128);
    for (auto& b : buf) b = static_cast<std::uint8_t>(byte(rng));
    if (!buf.empty()) buf[0] = 0xA5;          // wire magic hi-byte
    if (buf.size() > 1) buf[1] = 0xEB;        // wire magic lo-byte
    if (buf.size() > 2) buf[2] = 1;           // version
    for (std::size_t pos = 0; pos < buf.size(); ++pos) {
      std::uint8_t saved = buf[pos];
      buf[pos] = static_cast<std::uint8_t>(byte(rng));
      run_one(buf);
      buf[pos] = saved;
    }
  }

  std::fprintf(stderr, "standalone_driver: sweep complete\n");
  return 0;
}
