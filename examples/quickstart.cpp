// Quickstart: the event bus in ~60 lines.
//
// Creates a simulated two-host network, an event bus, and two services;
// one subscribes with a content filter, the other publishes. Everything
// the paper's Fig. 3 shows: subscribe (arrow 1), publish with transport
// acknowledgement underneath, matched events pushed back out (arrow 2).
//
// Run: ./quickstart
#include <cstdio>

#include "bus/bus_client.hpp"
#include "bus/event_bus.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

int main() {
  using namespace amuse;

  // A virtual-time executor and a simulated network: one PDA (hosting the
  // bus) and one laptop (hosting the services), joined by the paper's
  // measured USB-IP link.
  SimExecutor executor;
  SimNetwork net(executor, /*seed=*/42);
  net.set_default_link(profiles::usb_ip_link());
  SimHost& pda = net.add_host("ipaq", profiles::pda_ipaq_hx4700());
  SimHost& laptop = net.add_host("laptop", profiles::laptop_p3_1200());

  // The event bus, using the dedicated C-style matching engine.
  EventBusConfig bus_cfg;
  bus_cfg.engine = BusEngine::kCBased;
  bus_cfg.host = &pda;
  EventBus bus(executor, net.create_endpoint(pda), bus_cfg);

  // Two member services. (In a full SMC the discovery service admits them;
  // here we register them with the bus directly.)
  auto sensor_ep = net.create_endpoint(laptop);
  bus.add_member({sensor_ep->local_id(), "sensor.heartrate", "sensor"});
  BusClient sensor(executor, std::move(sensor_ep), bus.bus_id());

  auto console_ep = net.create_endpoint(laptop);
  bus.add_member({console_ep->local_id(), "console.nurse", "nurse"});
  BusClient console(executor, std::move(console_ep), bus.bus_id());

  // Content-based subscription: heart-rate events above 100 bpm only.
  Filter tachycardia;
  tachycardia.where("type", Op::kEq, "vitals.heartrate")
      .where("hr", Op::kGt, 100);
  console.subscribe(tachycardia, [&](const Event& e) {
    std::printf("[console] %6.1f ms  %s\n",
                to_millis(executor.now().time_since_epoch()),
                e.to_string().c_str());
  });
  executor.run();  // let the subscription reach the bus

  // Publish three readings; only the last two match the filter.
  for (double hr : {72.0, 118.0, 131.0}) {
    sensor.publish(Event("vitals.heartrate", {{"hr", hr}, {"unit", "bpm"}}));
  }
  executor.run();  // drive the simulation to quiescence

  std::printf("\nbus stats: published=%llu deliveries=%llu (exactly one "
              "delivery per matching event)\n",
              static_cast<unsigned long long>(bus.stats().published),
              static_cast<unsigned long long>(bus.stats().deliveries));
  return 0;
}
