// Federated cells (§I, §VI): two self-managed cells — a patient's body-area
// cell and a ward-level cell — collaborating peer-to-peer. Alarms raised
// inside the patient cell are exported to the ward cell, where a ward-level
// policy pages the duty doctor; routine vitals stay local.
//
// Run: ./federation_demo
#include <cstdio>

#include "devices/sensors.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "smc/cell.hpp"
#include "smc/federation.hpp"
#include "sim/sim_executor.hpp"

int main() {
  using namespace amuse;

  SimExecutor executor;
  SimNetwork net(executor, /*seed=*/0xFED);
  net.set_default_link(profiles::usb_ip_link());
  SimHost& patient_hub = net.add_host("patient-pda", profiles::ideal_host());
  SimHost& ward_hub = net.add_host("ward-server", profiles::ideal_host());
  SimHost& body = net.add_host("body", profiles::ideal_host());

  // --- Patient cell: sensors + local alarm policy.
  SmcCellConfig pc;
  pc.name = "patient-7";
  pc.pre_shared_key = to_bytes("patient-key");
  pc.discovery.beacon_interval = milliseconds(400);
  pc.discovery.heartbeat_interval = milliseconds(400);
  SelfManagedCell patient_cell(executor, net.create_endpoint(patient_hub),
                               net.create_endpoint(patient_hub), pc);
  register_vital_sensor_proxies(patient_cell.bus().factory());
  patient_cell.load_policies(R"(
    policy cardiac on vitals.heartrate
      when hr > 150
      do publish alarm.cardiac { level = "critical", hr = hr,
                                 patient = "patient-7" };
  )");
  patient_cell.start();

  // --- Ward cell: reacts to alarms arriving from federated patient cells.
  SmcCellConfig wc;
  wc.name = "ward-b";
  wc.pre_shared_key = to_bytes("ward-key");
  SelfManagedCell ward_cell(executor, net.create_endpoint(ward_hub),
                            net.create_endpoint(ward_hub), wc);
  ward_cell.load_policies(R"(
    policy page_doctor on alarm.cardiac
      do publish ward.page { who = "duty-doctor", reason = "cardiac",
                             patient = patient }
         log "paging duty doctor";
  )");
  ward_cell.start();

  // --- Federation: only alarms cross the cell boundary.
  FederationBridge bridge(patient_cell.bus(), ward_cell.bus());
  bridge.share(Filter::for_type_prefix("alarm."));

  std::vector<std::string> pages;
  ward_cell.bus().subscribe_local(Filter::for_type("ward.page"),
                                  [&](const Event& e) {
                                    pages.push_back(e.get_string("patient"));
                                  });
  std::size_t vitals_in_ward = 0;
  ward_cell.bus().subscribe_local(Filter::for_type_prefix("vitals."),
                                  [&](const Event&) { ++vitals_in_ward; });

  // Sensor joins the patient cell and an episode strikes.
  auto patient = std::make_shared<PatientBody>(executor, /*seed=*/5);
  VitalSensor hr(executor, net.create_endpoint(body), patient,
                 VitalKind::kHeartRate,
                 sensor_device_config(VitalKind::kHeartRate, pc.name,
                                      pc.pre_shared_key, milliseconds(500)));
  hr.start();
  executor.run_for(seconds(5));

  patient->model().trigger_episode();
  for (int i = 0; i < 20 && pages.empty(); ++i) {
    executor.run_for(seconds(1));
    patient->model().trigger_episode();
  }
  patient->model().end_episode();
  executor.run_for(seconds(2));

  std::printf("patient cell: %llu events published\n",
              static_cast<unsigned long long>(
                  patient_cell.bus().stats().published));
  std::printf("federated to ward: %llu (alarms only; %zu vitals leaked)\n",
              static_cast<unsigned long long>(bridge.stats().forwarded),
              vitals_in_ward);
  std::printf("ward pages issued: %zu%s\n", pages.size(),
              pages.empty() ? "" : (" (patient " + pages[0] + ")").c_str());
  return 0;
}
