// Type-based publish/subscribe (§VI): "to remove the reliance on arbitrary
// tags as event identifiers".
//
// Declares the e-health event-type hierarchy, then shows what the typed
// layer buys over raw tags: schema validation at the publisher (mistyped
// events never reach the radio) and subscription by declared subtype
// (subscribe "vitals", receive every concrete vital sign) — all compiled
// down to the same content-based bus underneath.
//
// Run: ./typed_pubsub
#include <cstdio>

#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "bus/event_bus.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"
#include "typed/typed_client.hpp"

int main() {
  using namespace amuse;

  SimExecutor executor;
  SimNetwork net(executor, 0x7b);
  net.set_default_link(profiles::usb_ip_link());
  SimHost& host = net.add_host("host", profiles::ideal_host());
  EventBus bus(executor, net.create_endpoint(host));

  auto make_raw = [&](const char* type) {
    auto t = net.create_endpoint(host);
    bus.add_member({t->local_id(), type, "service"});
    return std::make_unique<BusClient>(executor, std::move(t), bus.bus_id());
  };
  auto pub_raw = make_raw("sensor.multi");
  auto sub_raw = make_raw("console.nurse");

  // --- The declared vocabulary replaces ad-hoc string tags.
  TypeRegistry registry;
  declare_ehealth_types(registry);
  std::printf("declared %zu event types; vitals subtree:", registry.size());
  for (const EventType* t : registry.subtree("vitals")) {
    std::printf(" %s", t->name().c_str());
  }
  std::printf("\n\n");

  TypedClient pub(*pub_raw, registry);
  TypedClient sub(*sub_raw, registry);

  // One typed subscription covers the whole subtree.
  sub.subscribe("vitals", [&](const Event& e) {
    std::printf("  [console] %s  %s\n", std::string(e.type()).c_str(),
                e.to_string().c_str());
  });
  executor.run();

  std::printf("— well-typed events flow —\n");
  Event hr("vitals.heartrate");
  hr.set("member", std::int64_t{0xA1});
  hr.set("hr", 72.5);
  pub.publish(std::move(hr));
  Event bp("vitals.bloodpressure");
  bp.set("member", std::int64_t{0xA2});
  bp.set("systolic", 122.0);
  bp.set("diastolic", 81.0);
  pub.publish(std::move(bp));
  executor.run();

  std::printf("\n— schema violations are stopped at the publisher —\n");
  Event typo("vitals.hartrate");  // the classic arbitrary-tag bug
  typo.set("hr", 72.5);
  if (!pub.publish(std::move(typo))) {
    std::printf("  rejected: %s\n", pub.last_error().c_str());
  }
  Event missing("vitals.heartrate");  // forgot required fields
  if (!pub.publish(std::move(missing))) {
    std::printf("  rejected: %s\n", pub.last_error().c_str());
  }
  Event wrong("vitals.heartrate");
  wrong.set("member", std::int64_t{0xA1});
  wrong.set("hr", "seventy-two");  // wrong field type
  if (!pub.publish(std::move(wrong))) {
    std::printf("  rejected: %s\n", pub.last_error().c_str());
  }
  executor.run();

  std::printf("\npublished=%llu rejected=%llu; the bus never saw a "
              "malformed event (bus published=%llu)\n",
              static_cast<unsigned long long>(pub.stats().published),
              static_cast<unsigned long long>(pub.stats().schema_rejections),
              static_cast<unsigned long long>(bus.stats().published));
  return 0;
}
