// Policy-driven adaptation (§II-A): changing the cell's behaviour at
// runtime "without reprogramming" its components.
//
// Demonstrates:
//   1. type-driven policy deployment on admission (a heart-rate sensor
//      joining enables the monitoring policy and pushes it a threshold);
//   2. enabling/disabling obligation policies at runtime;
//   3. policies governing policies (escalation enables a stronger rule);
//   4. role-based authorisation denials.
//
// Run: ./policy_adaptation
#include <cstdio>

#include "devices/sensors.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "smc/cell.hpp"
#include "smc/member.hpp"
#include "sim/sim_executor.hpp"

int main() {
  using namespace amuse;

  const Bytes psk = to_bytes("policy-demo-key");
  SimExecutor executor;
  SimNetwork net(executor, /*seed=*/0x90);
  net.set_default_link(profiles::usb_ip_link());
  SimHost& core = net.add_host("core", profiles::ideal_host());
  SimHost& devices = net.add_host("devices", profiles::ideal_host());

  SmcCellConfig cfg;
  cfg.name = "demo-cell";
  cfg.pre_shared_key = psk;
  cfg.discovery.beacon_interval = milliseconds(400);
  cfg.discovery.heartbeat_interval = milliseconds(400);
  SelfManagedCell cell(executor, net.create_endpoint(core),
                       net.create_endpoint(core), cfg);
  register_vital_sensor_proxies(cell.bus().factory());

  cell.load_policies(R"(
    // Disabled until a heart-rate sensor actually joins the cell.
    policy hr_watch disabled on vitals.heartrate
      when hr > 120
      do publish alarm.cardiac { level = "warning", hr = hr };

    // Escalation: first warning alarm arms the emergency rule and
    // disarms itself — policies governing policies.
    policy escalate on alarm.cardiac
      when level == "warning"
      do enable emergency disable escalate log "escalated";

    policy emergency disabled on vitals.heartrate
      when hr > 120
      do publish alarm.cardiac { level = "critical", hr = hr };

    auth deny role "guest" publish "*";
    auth default permit;
  )");
  cell.start();

  // Deployment rule: when a heart-rate sensor joins, enable hr_watch and
  // push it a 120 bpm threshold (so the *device* also flags readings).
  DeploymentRule rule;
  rule.device_type_prefix = "sensor.heartrate";
  rule.enable_policies = {"hr_watch"};
  Event threshold("control.threshold");
  threshold.set("value", 120.0);
  rule.control_events = {threshold};
  cell.deployer().add_rule(rule);

  // Observe alarms.
  std::vector<std::string> alarm_log;
  cell.bus().subscribe_local(Filter::for_type("alarm.cardiac"),
                             [&](const Event& e) {
                               char line[96];
                               std::snprintf(
                                   line, sizeof(line),
                                   "[%5.1fs] alarm.cardiac level=%s hr=%.0f",
                                   to_seconds(
                                       executor.now().time_since_epoch()),
                                   e.get_string("level").c_str(),
                                   e.get_double("hr"));
                               alarm_log.emplace_back(line);
                             });

  std::printf("policies loaded: ");
  for (const std::string& name : cell.policies().names()) {
    std::printf("%s(%s) ", name.c_str(),
                cell.policies().is_enabled(name) ? "on" : "off");
  }
  std::printf("\n\n— heart-rate sensor joins; deployment enables hr_watch —\n");

  auto patient = std::make_shared<PatientBody>(executor, /*seed=*/21);
  VitalSensor hr(executor, net.create_endpoint(devices), patient,
                 VitalKind::kHeartRate,
                 sensor_device_config(VitalKind::kHeartRate, cfg.name, psk,
                                      milliseconds(500)));
  hr.start();
  executor.run_for(seconds(5));
  std::printf("hr_watch enabled: %s; device threshold now %.0f bpm "
              "(deployed via control event)\n",
              cell.policies().is_enabled("hr_watch") ? "yes" : "no",
              hr.threshold_hi());

  std::printf("\n— cardiac episode: watch warning → escalation → critical —\n");
  patient->model().trigger_episode();
  for (int i = 0; i < 20 && alarm_log.size() < 3; ++i) {
    executor.run_for(seconds(1));
    patient->model().trigger_episode();
  }
  patient->model().end_episode();
  for (const std::string& line : alarm_log) std::printf("%s\n", line.c_str());
  std::printf("after escalation: escalate=%s emergency=%s\n",
              cell.policies().is_enabled("escalate") ? "on" : "off",
              cell.policies().is_enabled("emergency") ? "on" : "off");

  std::printf("\n— runtime disable: silence all cardiac policies —\n");
  cell.policies().disable("hr_watch");
  cell.policies().disable("emergency");
  std::size_t alarms_before = alarm_log.size();
  patient->model().trigger_episode();
  for (int i = 0; i < 5; ++i) {
    executor.run_for(seconds(1));
    patient->model().trigger_episode();
  }
  patient->model().end_episode();
  std::printf("alarms while disabled: %zu (sensor kept publishing: %llu "
              "events on the bus)\n",
              alarm_log.size() - alarms_before,
              static_cast<unsigned long long>(cell.bus().stats().published));

  std::printf("\n— authorisation: a guest service tries to publish —\n");
  SmcMemberConfig gm;
  gm.agent.cell_name = cfg.name;
  gm.agent.pre_shared_key = psk;
  gm.agent.device_type = "app.untrusted";
  gm.agent.role = "guest";
  SmcMember guest(executor, net.create_endpoint(devices), gm);
  guest.start();
  executor.run_for(seconds(3));
  guest.publish(Event("control.threshold", {{"value", 999}}));
  executor.run_for(seconds(2));
  std::printf("denied publishes so far: %llu (guest role blocked by auth "
              "policy)\n",
              static_cast<unsigned long long>(
                  cell.bus().stats().denied_publish));
  return 0;
}
