// Real-transport demo: the prototype's UDP configuration (§IV).
//
// The same SMC stack that runs in the simulator runs here over genuine UDP
// sockets on localhost: the cell core (bus + discovery + policy) and two
// members in one process, a wall-clock executor, OS-assigned ports for the
// 48-bit service ids, and loopback multicast standing in for the
// "arbitrarily chosen port number known by services" broadcast channel.
//
// Run: ./udp_demo   (finishes in ~4 seconds; prints what flowed)
#include <cstdio>

#include "net/udp_transport.hpp"
#include "sim/real_executor.hpp"
#include "smc/cell.hpp"
#include "smc/member.hpp"

int main() {
  using namespace amuse;

  RealExecutor executor;
  const Bytes psk = to_bytes("udp-demo-key");

  std::unique_ptr<UdpTransport> bus_ep;
  std::unique_ptr<UdpTransport> disco_ep;
  std::unique_ptr<UdpTransport> sensor_ep;
  std::unique_ptr<UdpTransport> console_ep;
  try {
    bus_ep = UdpTransport::open(executor);
    disco_ep = UdpTransport::open(executor);
    sensor_ep = UdpTransport::open(executor);
    console_ep = UdpTransport::open(executor);
  } catch (const std::system_error& e) {
    std::printf("UDP sockets unavailable (%s); nothing to demo here.\n",
                e.what());
    return 0;
  }

  std::printf("endpoints (addr:port = 48-bit service ids, ports chosen by "
              "the OS):\n  bus %s, discovery %s, sensor %s, console %s\n",
              bus_ep->local_id().to_string().c_str(),
              disco_ep->local_id().to_string().c_str(),
              sensor_ep->local_id().to_string().c_str(),
              console_ep->local_id().to_string().c_str());

  SmcCellConfig cfg;
  cfg.name = "udp-demo-cell";
  cfg.pre_shared_key = psk;
  cfg.discovery.beacon_interval = milliseconds(200);
  cfg.discovery.heartbeat_interval = milliseconds(200);
  SelfManagedCell cell(executor, std::move(bus_ep), std::move(disco_ep),
                       cfg);
  cell.load_policies(R"(
    policy high_hr on vitals.heartrate
      when hr > 120
      do publish alarm.cardiac { level = "high", hr = hr };
  )");
  cell.start();

  auto member_config = [&](const char* type, const char* role) {
    SmcMemberConfig mc;
    mc.agent.cell_name = cfg.name;
    mc.agent.pre_shared_key = psk;
    mc.agent.device_type = type;
    mc.agent.role = role;
    return mc;
  };
  SmcMember sensor(executor, std::move(sensor_ep),
                   member_config("sensor.heartrate", "sensor"));
  SmcMember console(executor, std::move(console_ep),
                    member_config("console.nurse", "nurse"));

  int vitals_seen = 0;
  int alarms_seen = 0;
  console.subscribe(Filter::for_type_prefix("vitals."),
                    [&](const Event&) { ++vitals_seen; });
  console.subscribe(Filter::for_type_prefix("alarm."), [&](const Event& e) {
    ++alarms_seen;
    std::printf("  [console] ALARM %s hr=%.0f\n", std::string(e.type()).c_str(),
                e.get_double("hr"));
  });

  sensor.set_on_joined([&] {
    std::printf("sensor joined the cell; publishing readings…\n");
    // Publish a few readings over the next second; 140 bpm trips the policy.
    for (int i = 0; i < 5; ++i) {
      executor.schedule_after(milliseconds(150 * i), [&, i] {
        double hr = (i == 3) ? 140.0 : 72.0 + i;
        sensor.publish(Event("vitals.heartrate", {{"hr", hr}}));
      });
    }
  });

  sensor.start();
  console.start();
  executor.run_for(seconds(4));

  std::printf("\nresult over real UDP: members=%zu, console saw %d vitals "
              "and %d alarm(s)\n",
              cell.bus().members().size(), vitals_seen, alarms_seen);
  std::printf("bus stats: published=%llu deliveries=%llu\n",
              static_cast<unsigned long long>(cell.bus().stats().published),
              static_cast<unsigned long long>(cell.bus().stats().deliveries));
  if (alarms_seen == 0) {
    std::printf("(no alarms usually means loopback multicast is filtered in "
                "this environment — discovery beacons never arrived)\n");
  }
  return 0;
}
