// Home monitoring: "on-body and environmental sensors may also be used in
// the home for monitoring elderly patients" (§I) — with device mobility.
//
// A carer's console roams: it leaves the flat (out of radio range) for a
// short walk (masked as a transient disconnect: events queue in its proxy
// and flow on return) and later for a long errand (the cell purges it,
// destroying queued events; it re-joins on return and its subscriptions
// are restored). Also demonstrates the ECG side channel that deliberately
// bypasses the management bus.
//
// Run: ./home_monitoring
#include <cstdio>

#include "devices/console.hpp"
#include "devices/ecg_stream.hpp"
#include "devices/sensors.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "smc/cell.hpp"
#include "sim/sim_executor.hpp"

int main() {
  using namespace amuse;

  const Bytes psk = to_bytes("home-cell-key");
  SimExecutor executor;
  SimNetwork net(executor, /*seed=*/0x803e);
  // 802.11b around the home: a bit lossier than the prototype's USB link.
  net.set_default_link(profiles::wifi_11b_link());

  SimHost& hub = net.add_host("home-hub", profiles::ideal_host());
  SimHost& body = net.add_host("patient", profiles::ideal_host());
  SimHost& carer = net.add_host("carer-pda", profiles::ideal_host());
  SimHost& station = net.add_host("remote-station", profiles::ideal_host());

  SmcCellConfig cfg;
  cfg.name = "flat12";
  cfg.pre_shared_key = psk;
  cfg.discovery.beacon_interval = milliseconds(500);
  cfg.discovery.heartbeat_interval = milliseconds(500);
  cfg.discovery.suspect_after = seconds(2);
  cfg.discovery.purge_after = seconds(15);
  SelfManagedCell cell(executor, net.create_endpoint(hub),
                       net.create_endpoint(hub), cfg);
  register_vital_sensor_proxies(cell.bus().factory());
  cell.load_policies(R"(
    policy fever on vitals.temperature
      when temp_c > 38.0
      do publish alarm.fever { temp_c = temp_c };
  )");
  cell.start();

  // Membership log.
  std::vector<std::string> membership_log;
  cell.bus().subscribe_local(
      Filter::for_type_prefix("smc.member."), [&](const Event& e) {
        char line[128];
        std::snprintf(line, sizeof(line), "[%6.1fs] %-22s %s",
                      to_seconds(executor.now().time_since_epoch()),
                      std::string(e.type()).c_str(),
                      e.get_string("device_type").c_str());
        membership_log.emplace_back(line);
      });

  // On-body sensors.
  auto patient = std::make_shared<PatientBody>(executor, /*seed=*/3);
  VitalSensor hr(executor, net.create_endpoint(body), patient,
                 VitalKind::kHeartRate,
                 sensor_device_config(VitalKind::kHeartRate, cfg.name, psk,
                                      seconds(1)));
  VitalSensor temp(executor, net.create_endpoint(body), patient,
                   VitalKind::kTemperature,
                   sensor_device_config(VitalKind::kTemperature, cfg.name,
                                        psk, seconds(2)));
  hr.start();
  temp.start();

  // The carer's console (roams in and out of range).
  NurseConsole console(executor, net.create_endpoint(carer), cfg.name, psk);
  console.start();

  // The ECG stream goes straight to a remote station — NOT via the bus.
  auto viewer_ep = net.create_endpoint(station);
  ServiceId viewer_id = viewer_ep->local_id();
  EcgViewer viewer(std::move(viewer_ep));
  EcgStreamer ecg(executor, net.create_endpoint(body), viewer_id);
  ecg.start();

  executor.run_for(seconds(10));
  std::printf("t=10s: %zu members; console vitals received: %zu\n",
              cell.bus().members().size(), console.vitals_received());

  // --- Short walk: 6 s out of range (< purge_after) → masked.
  std::printf("\n— carer steps out for 6s (transient, masked) —\n");
  std::size_t received_before = console.vitals_received();
  carer.set_up(false);
  executor.run_for(seconds(6));
  carer.set_up(true);
  executor.run_for(seconds(10));
  std::printf("back: still a member (joins=%llu), vitals caught up "
              "(+%zu received, proxy queue drained)\n",
              static_cast<unsigned long long>(console.member().stats().joins),
              console.vitals_received() - received_before);

  // --- Long errand: 25 s (> purge_after) → purged, later re-admitted.
  std::printf("\n— carer leaves for 25s (purged, then re-joins) —\n");
  carer.set_up(false);
  executor.run_for(seconds(25));
  bool was_purged = !cell.bus().has_member(console.member().id());
  carer.set_up(true);
  executor.run_for(seconds(15));
  std::printf("while away: purged=%s; after return: member=%s, joins=%llu, "
              "subscriptions restored automatically\n",
              was_purged ? "yes" : "no",
              cell.bus().has_member(console.member().id()) ? "yes" : "no",
              static_cast<unsigned long long>(
                  console.member().stats().joins));

  executor.run_for(seconds(5));
  std::printf("\n— membership log —\n");
  for (const std::string& line : membership_log) {
    std::printf("%s\n", line.c_str());
  }

  std::printf("\n— ECG side channel (bypasses the bus) —\n");
  std::printf("packets=%llu samples=%llu lost=%llu (unreliable by design: "
              "freshness over completeness)\n",
              static_cast<unsigned long long>(viewer.stats().packets),
              static_cast<unsigned long long>(viewer.stats().samples),
              static_cast<unsigned long long>(viewer.stats().lost_packets));
  std::printf("management bus carried %llu events in the same period\n",
              static_cast<unsigned long long>(cell.bus().stats().published));
  return 0;
}
