// Body-area network: the paper's motivating scenario (§I) end to end.
//
// A patient wears four vital-sign sensors and a defibrillator, all very
// simple devices speaking the raw device protocol. The SMC core (event bus
// + discovery + policy services) runs on a PDA. Ponder-lite policies raise
// a cardiac alarm when the heart rate spikes and trigger the defibrillator;
// a nurse's console subscribes to vitals and alarms. We script a cardiac
// episode and watch the cell self-manage.
//
// Run: ./body_area_network
#include <cstdio>

#include "devices/actuators.hpp"
#include "devices/console.hpp"
#include "devices/sensors.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "smc/cell.hpp"
#include "sim/sim_executor.hpp"

int main() {
  using namespace amuse;

  const Bytes psk = to_bytes("ward7-cell-key");
  SimExecutor executor;
  SimNetwork net(executor, /*seed=*/0xBA7);
  net.set_default_link(profiles::usb_ip_link());
  SimHost& core_host = net.add_host("pda-core", profiles::ideal_host());
  SimHost& body = net.add_host("patient-body", profiles::ideal_host());
  SimHost& nurse_pda = net.add_host("nurse-pda", profiles::ideal_host());

  // --- The self-managed cell: bus + discovery + policy services.
  SmcCellConfig cfg;
  cfg.name = "ward7-patient3";
  cfg.pre_shared_key = psk;
  cfg.discovery.beacon_interval = milliseconds(500);
  cfg.discovery.heartbeat_interval = milliseconds(500);
  SelfManagedCell cell(executor, net.create_endpoint(core_host),
                       net.create_endpoint(core_host), cfg);
  register_vital_sensor_proxies(cell.bus().factory());
  register_actuator_proxies(cell.bus().factory());

  // Obligation + authorisation policies (Ponder-lite).
  cell.load_policies(R"(
    // Raise a cardiac alarm when the heart-rate sensor reports > 150 bpm.
    policy cardiac_alarm on vitals.heartrate
      when hr > 150
      do publish alarm.cardiac { level = "critical", hr = hr,
                                 member = member }
         log "cardiac alarm raised";

    // A critical cardiac alarm triggers the defibrillator.
    policy defib_response on alarm.cardiac
      when level == "critical"
      do publish actuator.defib.fire { joules = 150 };

    // SpO2 desaturation raises a softer alarm.
    policy desat_alarm on vitals.spo2
      when spo2 < 93
      do publish alarm.desaturation { level = "warning", spo2 = spo2 };

    // Sensors may not listen to other members' vitals; nurses may.
    auth deny   role "sensor" subscribe "vitals.*";
    auth permit role "nurse"  subscribe "*";
    auth default permit;
  )");
  cell.start();

  // --- Devices joining over the air.
  auto patient = std::make_shared<PatientBody>(executor, /*seed=*/7);
  auto sensor = [&](VitalKind kind, Duration period) {
    return std::make_unique<VitalSensor>(
        executor, net.create_endpoint(body), patient, kind,
        sensor_device_config(kind, cfg.name, psk, period));
  };
  auto hr = sensor(VitalKind::kHeartRate, milliseconds(500));
  auto spo2 = sensor(VitalKind::kSpO2, milliseconds(1000));
  auto temp = sensor(VitalKind::kTemperature, seconds(2));
  auto bp = sensor(VitalKind::kBloodPressure, seconds(5));
  DefibrillatorDevice defib(
      executor, net.create_endpoint(body),
      actuator_device_config("actuator.defibrillator", cfg.name, psk));
  NurseConsole console(executor, net.create_endpoint(nurse_pda), cfg.name,
                       psk);

  for (RawDevice* d :
       {static_cast<RawDevice*>(hr.get()), static_cast<RawDevice*>(spo2.get()),
        static_cast<RawDevice*>(temp.get()), static_cast<RawDevice*>(bp.get()),
        static_cast<RawDevice*>(&defib)}) {
    d->start();
  }
  console.start();

  std::printf("— t=0s: cell beaconing; devices discovering —\n");
  executor.run_for(seconds(10));
  std::printf("t=10s: %zu members admitted; console saw %zu joins after its own\n",
              cell.bus().members().size(), console.members_seen());
  std::printf("       console live vitals:");
  for (const auto& [type, value] : console.latest_vitals()) {
    std::printf("  %s=%.1f", type.c_str(), value);
  }
  std::printf("\n");

  std::printf("\n— t=10s: scripted cardiac episode begins —\n");
  patient->model().trigger_episode();
  for (int i = 0; i < 30; ++i) {
    executor.run_for(seconds(1));
    patient->model().trigger_episode();  // hold the episode open
    if (!defib.activations().empty()) break;
  }
  patient->model().end_episode();

  std::printf("alarms at the console: %zu\n", console.alarms().size());
  for (const auto& alarm : console.alarms()) {
    std::printf("  [%6.1fs] %s\n", to_seconds(alarm.when.time_since_epoch()),
                alarm.type.c_str());
    if (&alarm - console.alarms().data() > 3) {
      std::printf("  … (%zu more)\n", console.alarms().size() - 4);
      break;
    }
  }
  std::printf("defibrillator activations: %zu", defib.activations().size());
  if (!defib.activations().empty()) {
    std::printf(" (first at t=%.1fs, %.0f J)",
                to_seconds(defib.activations()[0].when.time_since_epoch()),
                defib.activations()[0].joules);
  }
  std::printf("\n");

  executor.run_for(seconds(5));
  std::printf("\n— summary —\n");
  std::printf("bus: %llu events published, %llu member deliveries, "
              "%llu denied subscriptions\n",
              static_cast<unsigned long long>(cell.bus().stats().published),
              static_cast<unsigned long long>(cell.bus().stats().deliveries),
              static_cast<unsigned long long>(
                  cell.bus().stats().denied_subscribe));
  std::printf("policy engine: %llu triggers, %llu actions\n",
              static_cast<unsigned long long>(
                  cell.obligations().stats().triggers),
              static_cast<unsigned long long>(
                  cell.obligations().stats().actions_run));
  std::printf("console received %zu vitals updates\n",
              console.vitals_received());
  return 0;
}
