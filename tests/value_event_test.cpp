// Tests for the typed value model and event attribute sets.
#include <gtest/gtest.h>

#include "pubsub/codec.hpp"
#include "pubsub/event.hpp"

namespace amuse {
namespace {

TEST(Value, TypeTags) {
  EXPECT_EQ(Value(std::int64_t{4}).type(), ValueType::kInt);
  EXPECT_EQ(Value(4).type(), ValueType::kInt);
  EXPECT_EQ(Value(4.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value("s").type(), ValueType::kString);
  EXPECT_EQ(Value(Bytes{1}).type(), ValueType::kBytes);
}

TEST(Value, NumericFamilyEquality) {
  EXPECT_TRUE(Value(3).equals(Value(3.0)));
  EXPECT_TRUE(Value(3.0).equals(Value(3)));
  EXPECT_FALSE(Value(3).equals(Value(3.5)));
  EXPECT_FALSE(Value(3).equals(Value("3")));
  EXPECT_FALSE(Value(1).equals(Value(true)));  // bool is not numeric
}

TEST(Value, CompareOrdersWithinFamilies) {
  EXPECT_LT(Value(1).compare(Value(2)), 0);
  EXPECT_GT(Value(2.5).compare(Value(2)), 0);
  EXPECT_EQ(Value(2).compare(Value(2.0)), 0);
  EXPECT_LT(Value("abc").compare(Value("abd")), 0);
  EXPECT_EQ(Value("x").compare(Value("x")), 0);
  EXPECT_LT(Value(false).compare(Value(true)), 0);
  EXPECT_LT(Value(Bytes{1, 2}).compare(Value(Bytes{1, 3})), 0);
}

TEST(Value, CrossTypeCompareIsStable) {
  // Arbitrary but total: ordered by type tag.
  EXPECT_NE(Value(1).compare(Value("1")), 0);
  EXPECT_EQ(Value(1).compare(Value("1")), -Value("1").compare(Value(1)));
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value(42).to_string(), "int:42");
  EXPECT_EQ(Value(true).to_string(), "bool:true");
  EXPECT_EQ(Value("hi").to_string(), "str:\"hi\"");
  EXPECT_EQ(Value(Bytes{0xAB}).to_string(), "bytes:1:ab");
}

TEST(Value, EncodeDecodeRoundTrip) {
  std::vector<Value> values = {
      Value(std::int64_t{-123456789}), Value(0),     Value(3.14159),
      Value(-0.0),                     Value(true),  Value(false),
      Value(""),                       Value("text with spaces"),
      Value(Bytes{}),                  Value(Bytes{0, 255, 127}),
  };
  Writer w;
  for (const Value& v : values) v.encode(w);
  Reader r(w.bytes());
  for (const Value& v : values) {
    Value got = Value::decode(r);
    EXPECT_EQ(got.type(), v.type());
    EXPECT_TRUE(got.equals(v)) << v.to_string();
  }
  EXPECT_TRUE(r.done());
}

TEST(Value, DecodeRejectsBadTag) {
  Bytes junk{99, 0, 0};
  Reader r(junk);
  EXPECT_THROW((void)Value::decode(r), DecodeError);
}

TEST(Event, TypeConstructorSetsTypeAttribute) {
  Event e("vitals.heartrate", {{"hr", 72}});
  EXPECT_EQ(e.type(), "vitals.heartrate");
  EXPECT_EQ(e.get_int("hr"), 72);
  EXPECT_EQ(e.size(), 2u);
}

TEST(Event, TypedGettersWithFallbacks) {
  Event e("t");
  e.set("i", 7).set("d", 2.5).set("s", "str").set("b", true);
  EXPECT_EQ(e.get_int("i"), 7);
  EXPECT_EQ(e.get_int("missing", -1), -1);
  EXPECT_EQ(e.get_int("d", -1), -1);  // wrong type → fallback
  EXPECT_DOUBLE_EQ(e.get_double("d"), 2.5);
  EXPECT_DOUBLE_EQ(e.get_double("i"), 7.0);  // int promotes
  EXPECT_EQ(e.get_string("s"), "str");
  EXPECT_EQ(e.get_string("i", "fb"), "fb");
  EXPECT_TRUE(e.has("b"));
  EXPECT_FALSE(e.has("nope"));
  EXPECT_EQ(e.get("nope"), nullptr);
}

TEST(Event, SetReplacesValue) {
  Event e("t");
  e.set("x", 1);
  e.set("x", 2);
  EXPECT_EQ(e.get_int("x"), 2);
  EXPECT_EQ(e.size(), 2u);  // type + x
}

TEST(Event, EqualityIsStructural) {
  Event a("t", {{"x", 1}});
  Event b("t", {{"x", 1}});
  Event c("t", {{"x", 2}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  b.set("y", 0);
  EXPECT_FALSE(a == b);
}

TEST(Event, MetadataRoundTripsThroughCodec) {
  Event e("alarm.cardiac", {{"hr", 190}, {"level", "high"}});
  e.set_publisher(ServiceId(0xABCDEF));
  e.set_publisher_seq(42);
  e.set_timestamp(TimePoint(milliseconds(1500)));

  Event back = decode_event(encode_event(e));
  EXPECT_EQ(back, e);
  EXPECT_EQ(back.publisher(), ServiceId(0xABCDEF));
  EXPECT_EQ(back.publisher_seq(), 42u);
  EXPECT_EQ(back.timestamp(), TimePoint(milliseconds(1500)));
}

TEST(Event, CodecRejectsTrailingBytes) {
  Bytes b = encode_event(Event("t"));
  b.push_back(0);
  EXPECT_THROW((void)decode_event(b), DecodeError);
}

TEST(Event, PayloadSizeTracksContent) {
  Event small("t");
  Event big("t");
  big.set("blob", Bytes(1000, 0x55));
  EXPECT_GT(big.payload_size(), small.payload_size() + 999);
}

TEST(Event, ToStringListsAttributes) {
  Event e("t", {{"a", 1}});
  std::string s = e.to_string();
  EXPECT_NE(s.find("a=int:1"), std::string::npos);
  EXPECT_NE(s.find("type=str:\"t\""), std::string::npos);
}

}  // namespace
}  // namespace amuse
