// Directed HA failover tests (DESIGN.md §13): active core + warm standby
// over the simulated network. Covers the crash → lease expiry → promotion →
// re-home → spool re-delivery pipeline end to end, the split-brain /
// revived-core fencing paths, and the quench-table no-change skip on a
// promoted core. The randomized counterpart lives in the torture suite
// (TortureFailover.*); these tests pin each mechanism individually.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bus/repl_store.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "smc/cell.hpp"
#include "smc/member.hpp"
#include "smc/standby.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

const Bytes kPsk = to_bytes("failover-key");
constexpr const char* kCell = "ha-cell";

LinkModel cut_link() {
  LinkModel m = profiles::usb_ip_link();
  m.loss = 1.0;
  return m;
}

struct HaFixture : ::testing::Test {
  HaFixture() : net(ex, 20260808) {
    net.set_default_link(profiles::usb_ip_link());
    core_host = &net.add_host("core", profiles::ideal_host());
    standby_host = &net.add_host("standby", profiles::ideal_host());

    cell = std::make_unique<SelfManagedCell>(ex, net.create_endpoint(*core_host),
                                             net.create_endpoint(*core_host),
                                             cell_config());
    standby = make_standby(*standby_host);
  }

  std::unique_ptr<StandbyCore> make_standby(SimHost& host,
                                            bool require_quorum = true) {
    StandbyCoreConfig sc;
    sc.agent.cell_name = kCell;
    sc.agent.pre_shared_key = kPsk;
    sc.cell = cell_config();
    sc.require_quorum = require_quorum;
    return std::make_unique<StandbyCore>(
        ex, net.create_endpoint(host), net.create_endpoint(host),
        net.create_endpoint(host), sc);
  }

  static SmcCellConfig cell_config(bool quench = false) {
    SmcCellConfig cfg;
    cfg.name = kCell;
    cfg.pre_shared_key = kPsk;
    cfg.bus.ha = true;
    cfg.bus.epoch = 1;
    cfg.bus.quench = quench;
    cfg.discovery.beacon_interval = milliseconds(300);
    cfg.discovery.heartbeat_interval = milliseconds(300);
    cfg.discovery.suspect_after = seconds(2);
    cfg.discovery.purge_after = seconds(30);
    cfg.discovery.sweep_interval = milliseconds(200);
    return cfg;
  }

  std::unique_ptr<SmcMember> make_member(SimHost& host, const char* type,
                                         bool fence = true) {
    SmcMemberConfig mc;
    mc.agent.cell_name = kCell;
    mc.agent.pre_shared_key = kPsk;
    mc.agent.device_type = type;
    // Re-homing after a failover is fence-driven (the promoted epoch in the
    // rival beacon), not loss-timer-driven; keep the loss timer out of the
    // way so the tests prove the fence alone closes the window.
    mc.agent.cell_lost_after = seconds(60);
    mc.agent.fence_epochs = fence;
    return std::make_unique<SmcMember>(ex, net.create_endpoint(host), mc);
  }

  EventBus& promoted_bus() { return standby->cell()->bus(); }

  SimExecutor ex;
  SimNetwork net;
  SimHost* core_host = nullptr;
  SimHost* standby_host = nullptr;
  std::unique_ptr<SelfManagedCell> cell;
  std::unique_ptr<StandbyCore> standby;
};

// A healthy cell never promotes: the repl stream (updates and bare lease
// renewals) keeps pushing the standby's deadline out indefinitely.
TEST_F(HaFixture, HealthyCoreHoldsTheLease) {
  cell->start();
  standby->start();
  SimHost& h = net.add_host("m", profiles::ideal_host());
  auto member = make_member(h, "sensor");
  member->start();

  ex.run_for(seconds(20));
  EXPECT_FALSE(standby->promoted());
  EXPECT_TRUE(standby->synced());
  EXPECT_GT(standby->stats().updates_applied, 0u);
  EXPECT_EQ(standby->stats().lease_expiries_unsynced, 0u);
  EXPECT_GT(cell->bus().stats().repl_updates, 0u);
}

// Core crashes with routed-but-undelivered traffic in the spool (the
// subscriber was off the air): after promotion and re-home the spool
// re-delivery is the *first* delivery — every event arrives exactly once,
// in publish order, with zero dedup hits.
TEST_F(HaFixture, CrashPromoteRedeliversSpooledTrafficOnce) {
  cell->start();
  standby->start();
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  SimHost& sub_host = net.add_host("sub", profiles::ideal_host());
  auto pub = make_member(pub_host, "sensor");
  auto sub = make_member(sub_host, "console");
  std::vector<long long> got;
  sub->subscribe(Filter::for_type("seq"),
                 [&](const Event& e) { got.push_back(e.get_int("n", -1)); });
  pub->start();
  sub->start();
  ex.run_for(seconds(4));
  ASSERT_TRUE(pub->joined());
  ASSERT_TRUE(sub->joined());
  ASSERT_TRUE(standby->synced());

  // Subscriber drops off the air; the burst lands in its proxy queue and
  // the HA spool, then the core dies before anything is delivered.
  sub_host.set_up(false);
  ex.run_for(milliseconds(500));
  for (int n = 0; n < 10; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(1));  // routed, spooled, replicated
  ASSERT_TRUE(got.empty());
  core_host->set_up(false);

  ex.run_for(seconds(3));  // lease (1.5 s) expires; standby promotes
  ASSERT_TRUE(standby->promoted());
  EXPECT_EQ(promoted_bus().stats().promotions, 1u);
  EXPECT_EQ(promoted_bus().epoch(), 2u);

  sub_host.set_up(true);
  ex.run_for(seconds(5));  // re-home on the epoch-2 beacon, spool replays
  ASSERT_EQ(got.size(), 10u);
  for (int n = 0; n < 10; ++n) EXPECT_EQ(got[n], n);
  EXPECT_EQ(promoted_bus().stats().staleness_redelivered, 10u);
  EXPECT_EQ(sub->stats().ha_duplicates_dropped, 0u);

  // The promoted core is a fully working cell: fresh publishes keep FIFO
  // order behind the re-delivered prefix.
  for (int n = 10; n < 15; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(2));
  ASSERT_EQ(got.size(), 15u);
  for (int n = 0; n < 15; ++n) EXPECT_EQ(got[n], n);
}

// Core crashes after the burst was fully delivered: the promoted core
// dutifully re-delivers its spool, and the member-side (epoch, seq) dedup
// swallows every duplicate — exactly-once across the failover.
TEST_F(HaFixture, CrashPromoteDedupsAlreadyDeliveredTraffic) {
  cell->start();
  standby->start();
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  SimHost& sub_host = net.add_host("sub", profiles::ideal_host());
  auto pub = make_member(pub_host, "sensor");
  auto sub = make_member(sub_host, "console");
  std::vector<long long> got;
  sub->subscribe(Filter::for_type("seq"),
                 [&](const Event& e) { got.push_back(e.get_int("n", -1)); });
  pub->start();
  sub->start();
  ex.run_for(seconds(4));
  ASSERT_TRUE(pub->joined() && sub->joined());
  ASSERT_TRUE(standby->synced());

  for (int n = 0; n < 10; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(1));
  ASSERT_EQ(got.size(), 10u);

  core_host->set_up(false);
  ex.run_for(seconds(6));  // promote + both members re-home
  ASSERT_TRUE(standby->promoted());
  ASSERT_TRUE(sub->joined());
  EXPECT_GE(sub->agent().stats().rehomes, 1u);
  EXPECT_GE(pub->agent().stats().rehomes, 1u);

  // The spool was replayed at the sub's re-home and every event filtered.
  EXPECT_EQ(promoted_bus().stats().staleness_redelivered, 10u);
  EXPECT_EQ(sub->stats().ha_duplicates_dropped, 10u);
  ASSERT_EQ(got.size(), 10u);

  for (int n = 10; n < 15; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(2));
  ASSERT_EQ(got.size(), 15u);
  for (int n = 0; n < 15; ++n) EXPECT_EQ(got[n], n);  // FIFO across promotion
}

// Split brain: the old core stays alive but partitioned from the standby,
// which promotes. Members re-home on the higher epoch; when the partition
// heals, the old core hears the rival's epoch-2 beacon and steps down —
// no event is ever delivered twice.
TEST_F(HaFixture, SplitBrainOldCoreStepsDownOnHeal) {
  cell->start();
  standby->start();
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  SimHost& sub_host = net.add_host("sub", profiles::ideal_host());
  auto pub = make_member(pub_host, "sensor");
  auto sub = make_member(sub_host, "console");
  std::vector<long long> got;
  sub->subscribe(Filter::for_type("seq"),
                 [&](const Event& e) { got.push_back(e.get_int("n", -1)); });
  pub->start();
  sub->start();
  ex.run_for(seconds(4));
  ASSERT_TRUE(pub->joined() && sub->joined());
  ASSERT_TRUE(standby->synced());

  for (int n = 0; n < 5; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(1));
  ASSERT_EQ(got.size(), 5u);

  // Partition core ↔ standby only; members can still reach both sides.
  net.update_link(*core_host, *standby_host, cut_link());
  ex.run_for(seconds(3));
  ASSERT_TRUE(standby->promoted());
  EXPECT_FALSE(cell->bus().deposed());  // can't hear the rival yet

  // Members already fenced over to epoch 2; traffic flows on the new core.
  ex.run_for(seconds(2));
  ASSERT_TRUE(pub->joined() && sub->joined());
  for (int n = 5; n < 10; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(1));

  // Heal: the deposed-to-be core hears the rival beacon and fences itself.
  net.update_link(*core_host, *standby_host, profiles::usb_ip_link());
  ex.run_for(seconds(2));
  EXPECT_TRUE(cell->bus().deposed());
  EXPECT_GE(cell->discovery().stats().rival_step_downs, 1u);
  EXPECT_TRUE(cell->discovery().deposed());

  // Exactly once, in order, across the whole incident.
  ASSERT_EQ(got.size(), 10u);
  for (int n = 0; n < 10; ++n) EXPECT_EQ(got[n], n);
}

// A crashed core that comes back after the failover is fenced everywhere:
// members ignore its stale epoch-1 beacons, and once it can hear the
// promoted core it steps down.
TEST_F(HaFixture, RevivedCoreIsFencedAndDeposed) {
  cell->start();
  standby->start();
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  auto pub = make_member(pub_host, "sensor");
  pub->start();
  ex.run_for(seconds(4));
  ASSERT_TRUE(pub->joined());
  ASSERT_TRUE(standby->synced());

  core_host->set_up(false);
  ex.run_for(seconds(5));
  ASSERT_TRUE(standby->promoted());
  ASSERT_TRUE(pub->joined());
  ASSERT_EQ(pub->agent().max_epoch(), 2u);

  // Revive the old core behind a one-way cut (it cannot hear the promoted
  // core's beacons yet, so it keeps beaconing epoch 1): members must
  // ignore every stale beacon and stay homed on epoch 2.
  net.update_link_oneway(*standby_host, *core_host, cut_link());
  core_host->set_up(true);
  std::uint64_t rehomes_before = pub->agent().stats().rehomes;
  ex.run_for(seconds(2));
  EXPECT_GE(pub->agent().stats().stale_beacons_ignored, 1u);
  EXPECT_EQ(pub->agent().stats().rehomes, rehomes_before);
  EXPECT_TRUE(pub->joined());
  EXPECT_TRUE(promoted_bus().has_member(pub->id()));

  // Once the cut heals the revived core hears epoch 2 and steps down.
  net.update_link_oneway(*standby_host, *core_host, profiles::usb_ip_link());
  ex.run_for(seconds(2));
  EXPECT_TRUE(cell->bus().deposed());
  EXPECT_GE(cell->discovery().stats().rival_step_downs, 1u);
}

// The flag the sensitivity proof reverts: with epoch fencing off a joined
// member never notices the promotion and strands on the dead core. The
// fenced member on the same schedule re-homes promptly.
TEST_F(HaFixture, FencingDisabledStrandsMemberOnDeadCore) {
  cell->start();
  standby->start();
  SimHost& fenced_host = net.add_host("fenced", profiles::ideal_host());
  SimHost& legacy_host = net.add_host("legacy", profiles::ideal_host());
  auto fenced = make_member(fenced_host, "sensor", /*fence=*/true);
  auto legacy = make_member(legacy_host, "sensor", /*fence=*/false);
  fenced->start();
  legacy->start();
  ex.run_for(seconds(4));
  ASSERT_TRUE(fenced->joined() && legacy->joined());
  ASSERT_TRUE(standby->synced());

  core_host->set_up(false);
  ex.run_for(seconds(6));
  ASSERT_TRUE(standby->promoted());

  EXPECT_GE(fenced->agent().stats().rehomes, 1u);
  EXPECT_TRUE(promoted_bus().has_member(fenced->id()));

  EXPECT_EQ(legacy->agent().stats().rehomes, 0u);
  EXPECT_FALSE(promoted_bus().has_member(legacy->id()));
}

// Satellite: the promoted core rebuilds its quench table from the replica
// and compares the canonical digest each re-homing member presented in its
// JOIN_RESP — an unchanged table is never re-pushed.
TEST_F(HaFixture, UnchangedQuenchTableSkippedOnPromotion) {
  cell = std::make_unique<SelfManagedCell>(ex, net.create_endpoint(*core_host),
                                           net.create_endpoint(*core_host),
                                           cell_config(/*quench=*/true));
  StandbyCoreConfig sc;
  sc.agent.cell_name = kCell;
  sc.agent.pre_shared_key = kPsk;
  sc.cell = cell_config(/*quench=*/true);
  standby = std::make_unique<StandbyCore>(
      ex, net.create_endpoint(*standby_host),
      net.create_endpoint(*standby_host), net.create_endpoint(*standby_host),
      sc);

  cell->start();
  standby->start();
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  SimHost& sub_host = net.add_host("sub", profiles::ideal_host());
  auto pub = make_member(pub_host, "sensor");
  auto sub = make_member(sub_host, "console");
  sub->subscribe(Filter::for_type("seq"), [](const Event&) {});
  pub->start();
  sub->start();
  ex.run_for(seconds(4));
  ASSERT_TRUE(pub->joined() && sub->joined());
  ASSERT_TRUE(standby->synced());
  ASSERT_TRUE(pub->client()->quench_received());

  core_host->set_up(false);
  ex.run_for(seconds(6));
  ASSERT_TRUE(standby->promoted());
  ASSERT_TRUE(pub->joined() && sub->joined());

  // The subscription set rode over in the replica, so the rebuilt table is
  // identical and every re-homing member's held digest matches.
  EXPECT_GT(promoted_bus().stats().quench_skipped, 0u);
}

// ---- Multi-standby quorum arbitration (DESIGN.md §13.5).

struct TwoStandbyFixture : HaFixture {
  TwoStandbyFixture() {
    standby2_host = &net.add_host("standby2", profiles::ideal_host());
    standby2 = make_standby(*standby2_host);
  }

  StandbyCore* the_winner() {
    if (standby->promoted()) return standby.get();
    if (standby2->promoted()) return standby2.get();
    return nullptr;
  }
  StandbyCore* the_loser() {
    return the_winner() == standby.get() ? standby2.get() : standby.get();
  }
  SimHost* winner_host() {
    return the_winner() == standby.get() ? standby_host : standby2_host;
  }

  SimHost* standby2_host = nullptr;
  std::unique_ptr<StandbyCore> standby2;
};

// Regression for the quorum arbitration itself: with two standbys racing
// for a dead core's cell, exactly ONE wins a claim round (the peer's vote
// makes the 2-of-2 majority) and promotes at epoch 2. The loser stands
// down, re-homes to the winner's beacon, and re-mirrors at the new epoch —
// the cell is re-armed without operator action. Before the quorum
// arbitration both standbys promoted; see QuorumRevertedBothPromote.
TEST_F(TwoStandbyFixture, ExactlyOneStandbyPromotesUnderQuorum) {
  cell->start();
  standby->start();
  standby2->start();
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  SimHost& sub_host = net.add_host("sub", profiles::ideal_host());
  auto pub = make_member(pub_host, "sensor");
  auto sub = make_member(sub_host, "console");
  std::vector<long long> got;
  sub->subscribe(Filter::for_type("seq"),
                 [&](const Event& e) { got.push_back(e.get_int("n", -1)); });
  pub->start();
  sub->start();
  ex.run_for(seconds(4));
  ASSERT_TRUE(pub->joined() && sub->joined());
  ASSERT_TRUE(standby->synced() && standby2->synced());
  // The roster replicated to both mirrors names both standbys — the quorum
  // denominator each will arbitrate over.
  EXPECT_EQ(standby->mirror().state().standbys.size(), 2u);
  EXPECT_EQ(standby2->mirror().state().standbys.size(), 2u);

  for (int n = 0; n < 5; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(1));
  ASSERT_EQ(got.size(), 5u);

  core_host->set_up(false);
  ex.run_for(seconds(6));

  // Exactly one promotion, at epoch 2, granted by the peer's vote.
  ASSERT_NE(the_winner(), nullptr);
  StandbyCore* winner = the_winner();
  StandbyCore* loser = the_loser();
  EXPECT_NE(winner, loser);
  EXPECT_FALSE(loser->promoted());
  EXPECT_EQ(winner->cell()->bus().epoch(), 2u);
  EXPECT_EQ(winner->cell()->bus().stats().promotions, 1u);
  EXPECT_GE(winner->stats().promotion_claims, 1u);
  EXPECT_GE(loser->stats().promotion_votes, 1u);

  // The loser re-homed to the winner and re-mirrors at the new epoch: the
  // cell is armed for the NEXT failover, not just surviving this one.
  EXPECT_TRUE(loser->synced());
  EXPECT_EQ(loser->agent().bus_id(), winner->cell()->bus().bus_id());
  EXPECT_EQ(loser->mirror().epoch(), 2u);
  EXPECT_EQ(loser->mirror().state().standbys.size(), 1u);

  // Exactly-once FIFO across the promotion.
  ASSERT_TRUE(pub->joined() && sub->joined());
  for (int n = 5; n < 10; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(2));
  ASSERT_EQ(got.size(), 10u);
  for (int n = 0; n < 10; ++n) EXPECT_EQ(got[n], n);
}

// The flag the double-promotion sensitivity proof reverts: without the
// quorum, both standbys notice the lapse and promote unilaterally at the
// SAME epoch — a split cell. This is the pre-arbitration behaviour the
// torture oracle's "double-promotion" check exists to catch
// (TortureFailover.QuorumRevertIsCaught drives the full proof).
TEST_F(TwoStandbyFixture, QuorumRevertedBothPromote) {
  standby = make_standby(*standby_host, /*require_quorum=*/false);
  standby2 = make_standby(*standby2_host, /*require_quorum=*/false);
  cell->start();
  standby->start();
  standby2->start();
  ex.run_for(seconds(4));
  ASSERT_TRUE(standby->synced() && standby2->synced());

  core_host->set_up(false);
  ex.run_for(seconds(6));
  EXPECT_TRUE(standby->promoted());
  EXPECT_TRUE(standby2->promoted());
  EXPECT_EQ(standby->cell()->bus().epoch(), 2u);
  EXPECT_EQ(standby2->cell()->bus().epoch(), 2u);
  EXPECT_EQ(standby->stats().promotion_claims +
                standby2->stats().promotion_claims,
            0u);  // nobody even asked
}

// Standby chains: after the first failover the losing standby re-armed the
// promoted cell, so a SECOND core crash promotes it too — epoch 3, roster
// of one, majority of one is the implicit self-vote. Traffic stays
// exactly-once FIFO across both promotions.
TEST_F(TwoStandbyFixture, SequentialCrashesPromoteDownTheChain) {
  cell->start();
  standby->start();
  standby2->start();
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  SimHost& sub_host = net.add_host("sub", profiles::ideal_host());
  auto pub = make_member(pub_host, "sensor");
  auto sub = make_member(sub_host, "console");
  std::vector<long long> got;
  sub->subscribe(Filter::for_type("seq"),
                 [&](const Event& e) { got.push_back(e.get_int("n", -1)); });
  pub->start();
  sub->start();
  ex.run_for(seconds(4));
  ASSERT_TRUE(pub->joined() && sub->joined());
  ASSERT_TRUE(standby->synced() && standby2->synced());

  for (int n = 0; n < 5; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(1));
  ASSERT_EQ(got.size(), 5u);

  // First crash: one standby wins the arbitration, the other re-arms it.
  core_host->set_up(false);
  ex.run_for(seconds(6));
  ASSERT_NE(the_winner(), nullptr);
  StandbyCore* survivor = the_loser();
  ASSERT_FALSE(survivor->promoted());
  ASSERT_TRUE(survivor->synced());
  ASSERT_EQ(survivor->mirror().epoch(), 2u);

  for (int n = 5; n < 10; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(1));
  ASSERT_EQ(got.size(), 10u);

  // Second crash: the epoch-2 winner dies too. The survivor is the whole
  // roster now, so the implicit self-vote is the majority.
  winner_host()->set_up(false);
  ex.run_for(seconds(6));
  ASSERT_TRUE(survivor->promoted());
  EXPECT_EQ(survivor->cell()->bus().epoch(), 3u);
  EXPECT_EQ(survivor->cell()->bus().stats().promotions, 1u);
  ASSERT_TRUE(pub->joined() && sub->joined());
  EXPECT_EQ(pub->agent().max_epoch(), 3u);

  for (int n = 10; n < 15; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(2));
  ASSERT_EQ(got.size(), 15u);
  for (int n = 0; n < 15; ++n) EXPECT_EQ(got[n], n);
}

// ---- Disk-durable ReplState (DESIGN.md §13.6).

// Full-cell kill-and-restart: the core journals every ReplLog mutation
// through a FileReplStore, dies with routed-but-undelivered traffic in the
// spool, and a fresh process recovers membership + durable subscriptions +
// spool from the journal alone and restarts the cell at epoch + 1. Members
// fence over exactly as they would to a promoted standby, and the spooled
// burst is re-delivered exactly once, in order.
TEST_F(HaFixture, WalRestartRecoversMembershipSubscriptionsAndSpool) {
  const std::string path = ::testing::TempDir() + "amuse-ha-wal.bin";
  std::remove(path.c_str());

  SmcCellConfig cfg = cell_config();
  cfg.bus.repl_store = std::make_shared<FileReplStore>(path);
  cell = std::make_unique<SelfManagedCell>(ex, net.create_endpoint(*core_host),
                                           net.create_endpoint(*core_host),
                                           cfg);
  cell->start();  // no standby: durability must not depend on one
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  SimHost& sub_host = net.add_host("sub", profiles::ideal_host());
  auto pub = make_member(pub_host, "sensor");
  auto sub = make_member(sub_host, "console");
  std::vector<long long> got;
  sub->subscribe(Filter::for_type("seq"),
                 [&](const Event& e) { got.push_back(e.get_int("n", -1)); });
  pub->start();
  sub->start();
  ex.run_for(seconds(4));
  ASSERT_TRUE(pub->joined() && sub->joined());
  const ServiceId pub_id = pub->id();
  const ServiceId sub_id = sub->id();

  // Subscriber off the air; the burst is routed, spooled and journalled
  // but never delivered — then the core dies without warning.
  sub_host.set_up(false);
  ex.run_for(milliseconds(500));
  for (int n = 0; n < 8; ++n) {
    pub->publish(Event("seq", {{"n", n}}));
    ex.run_for(milliseconds(30));
  }
  ex.run_for(seconds(1));
  ASSERT_TRUE(got.empty());
  core_host->set_up(false);
  cell.reset();  // the process is gone; only the journal file remains

  // A fresh store recovers the durable state from the journal.
  auto store = std::make_shared<FileReplStore>(path);
  ReplStore::Recovery rec = store->recover();
  ASSERT_TRUE(rec.state.has_value());
  EXPECT_EQ(store->stats().recoveries, 1u);
  EXPECT_EQ(rec.state->epoch, 1u);
  ASSERT_EQ(rec.state->members.count(pub_id.raw()), 1u);
  ASSERT_EQ(rec.state->members.count(sub_id.raw()), 1u);
  EXPECT_EQ(rec.state->members.at(sub_id.raw()).subs.size(), 1u);
  ASSERT_EQ(rec.state->spool.size(), 8u);

  // Restart the cell from the recovered replica at epoch + 1 — the same
  // restore path a promoted standby takes — journalling into the same
  // store so the next crash is covered too.
  SmcCellConfig restarted = cell_config();
  restarted.bus.epoch = rec.state->epoch + 1;
  restarted.bus.restore =
      std::make_shared<const ReplState>(std::move(*rec.state));
  restarted.bus.repl_store = store;
  core_host->set_up(true);
  cell = std::make_unique<SelfManagedCell>(ex, net.create_endpoint(*core_host),
                                           net.create_endpoint(*core_host),
                                           restarted);
  cell->start();
  sub_host.set_up(true);
  ex.run_for(seconds(6));

  // Members fenced over to the epoch-2 beacon and the spool replayed: the
  // crashed burst arrives exactly once, in publish order.
  ASSERT_TRUE(pub->joined() && sub->joined());
  EXPECT_EQ(pub->agent().max_epoch(), 2u);
  EXPECT_EQ(cell->bus().epoch(), 2u);
  EXPECT_EQ(cell->bus().stats().promotions, 1u);
  ASSERT_EQ(got.size(), 8u);
  for (int n = 0; n < 8; ++n) EXPECT_EQ(got[n], n);
  EXPECT_EQ(cell->bus().stats().staleness_redelivered, 8u);
  EXPECT_EQ(sub->stats().ha_duplicates_dropped, 0u);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace amuse
