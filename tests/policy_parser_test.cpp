// Parser tests for the Ponder-lite policy language, plus expression
// evaluation semantics.
#include "policy/parser.hpp"

#include <gtest/gtest.h>

#include "policy/expr_eval.hpp"

namespace amuse {
namespace {

TEST(Parser, MinimalObligation) {
  PolicyDocument doc = parse_policies(
      "policy p1 on vitals.heartrate do log \"seen\";");
  ASSERT_EQ(doc.obligations.size(), 1u);
  const ObligationPolicy& p = doc.obligations[0];
  EXPECT_EQ(p.name, "p1");
  EXPECT_EQ(p.on_type, "vitals.heartrate");
  EXPECT_FALSE(p.on_prefix);
  EXPECT_EQ(p.condition, nullptr);
  ASSERT_EQ(p.actions.size(), 1u);
  EXPECT_EQ(p.actions[0].kind, PolicyAction::Kind::kLog);
  EXPECT_EQ(p.actions[0].target, "seen");
}

TEST(Parser, PrefixTopicPattern) {
  PolicyDocument doc =
      parse_policies("policy p on vitals.* do log \"x\";");
  EXPECT_TRUE(doc.obligations[0].on_prefix);
  EXPECT_EQ(doc.obligations[0].on_type, "vitals.");
  Filter f = doc.obligations[0].trigger_filter();
  EXPECT_TRUE(f.matches(Event("vitals.spo2")));
  EXPECT_FALSE(f.matches(Event("alarm.x")));
}

TEST(Parser, ConditionAndPublishAction) {
  PolicyDocument doc = parse_policies(R"(
    policy high_hr on vitals.heartrate
      when hr > 120 && exists(member)
      do publish alarm.cardiac { level = "high", hr = hr, m = member };
  )");
  const ObligationPolicy& p = doc.obligations[0];
  ASSERT_NE(p.condition, nullptr);
  ASSERT_EQ(p.actions.size(), 1u);
  EXPECT_EQ(p.actions[0].kind, PolicyAction::Kind::kPublish);
  EXPECT_EQ(p.actions[0].target, "alarm.cardiac");
  EXPECT_EQ(p.actions[0].args.size(), 3u);
  EXPECT_EQ(p.actions[0].args[0].name, "level");
}

TEST(Parser, MultipleActions) {
  PolicyDocument doc = parse_policies(R"(
    policy p on t
      do log "first" publish t2 { } enable other disable p;
  )");
  ASSERT_EQ(doc.obligations[0].actions.size(), 4u);
  EXPECT_EQ(doc.obligations[0].actions[1].kind,
            PolicyAction::Kind::kPublish);
  EXPECT_EQ(doc.obligations[0].actions[2].kind, PolicyAction::Kind::kEnable);
  EXPECT_EQ(doc.obligations[0].actions[3].kind,
            PolicyAction::Kind::kDisable);
}

TEST(Parser, DisabledModifier) {
  PolicyDocument doc =
      parse_policies("policy p disabled on t do log \"x\";");
  EXPECT_TRUE(doc.obligations[0].initially_disabled);
}

TEST(Parser, AuthPolicies) {
  PolicyDocument doc = parse_policies(R"(
    auth permit role "nurse" subscribe "vitals.*";
    auth deny role sensor subscribe "control.*";
    auth deny role * publish "actuator.*";
    auth default deny;
  )");
  ASSERT_EQ(doc.auths.size(), 3u);
  EXPECT_EQ(doc.auths[0].verdict, AuthVerdict::kPermit);
  EXPECT_EQ(doc.auths[0].role, "nurse");
  EXPECT_EQ(doc.auths[0].op, AuthOp::kSubscribe);
  EXPECT_EQ(doc.auths[0].topic_pattern, "vitals.*");
  EXPECT_EQ(doc.auths[1].role, "sensor");
  EXPECT_EQ(doc.auths[2].role, "*");
  EXPECT_EQ(doc.auths[2].op, AuthOp::kPublish);
  ASSERT_TRUE(doc.default_verdict.has_value());
  EXPECT_EQ(*doc.default_verdict, AuthVerdict::kDeny);
}

TEST(Parser, OperatorPrecedenceOrOverAnd) {
  // a == 1 || b == 1 && c == 1 parses as (a==1) || ((b==1) && (c==1)).
  ExprPtr e = parse_policy_expr("a == 1 || b == 1 && c == 1");
  ASSERT_EQ(e->kind, PolicyExpr::Kind::kOr);
  EXPECT_EQ(e->rhs->kind, PolicyExpr::Kind::kAnd);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  ExprPtr e = parse_policy_expr("(a == 1 || b == 1) && c == 1");
  ASSERT_EQ(e->kind, PolicyExpr::Kind::kAnd);
  EXPECT_EQ(e->lhs->kind, PolicyExpr::Kind::kOr);
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_policies("policy"), PolicyParseError);
  EXPECT_THROW((void)parse_policies("policy p on t do;"), PolicyParseError);
  EXPECT_THROW((void)parse_policies("policy p do log \"x\";"),
               PolicyParseError);
  EXPECT_THROW((void)parse_policies("policy p on t do log \"x\""),
               PolicyParseError);  // missing ';'
  EXPECT_THROW((void)parse_policies("policy p on t do fire { };"),
               PolicyParseError);  // unknown action
  EXPECT_THROW((void)parse_policies("auth maybe role x publish t;"),
               PolicyParseError);
  EXPECT_THROW((void)parse_policies("auth permit role x frobnicate t;"),
               PolicyParseError);
  EXPECT_THROW((void)parse_policies("banana;"), PolicyParseError);
}

TEST(Parser, ErrorsCarryLocation) {
  try {
    (void)parse_policies("policy p on t\nwhen hr >\ndo log \"x\";");
    FAIL();
  } catch (const PolicyParseError& e) {
    EXPECT_EQ(e.line(), 3);  // "do" found where a value was expected
  }
}

// ---- Expression evaluation.

Event trigger() {
  Event e("vitals.heartrate");
  e.set("hr", 130);
  e.set("spo2", 93.5);
  e.set("name", "bob");
  e.set("ok", true);
  return e;
}

bool eval_bool(const std::string& src) {
  ExprPtr e = parse_policy_expr(src);
  return eval_condition(e.get(), trigger());
}

TEST(ExprEval, Comparisons) {
  EXPECT_TRUE(eval_bool("hr > 120"));
  EXPECT_FALSE(eval_bool("hr > 130"));
  EXPECT_TRUE(eval_bool("hr >= 130"));
  EXPECT_TRUE(eval_bool("hr == 130"));
  EXPECT_TRUE(eval_bool("hr != 131"));
  EXPECT_TRUE(eval_bool("spo2 < 94.0"));
  EXPECT_TRUE(eval_bool("name == \"bob\""));
  EXPECT_FALSE(eval_bool("name == \"alice\""));
}

TEST(ExprEval, Logic) {
  EXPECT_TRUE(eval_bool("hr > 120 && spo2 < 94"));
  EXPECT_FALSE(eval_bool("hr > 120 && spo2 > 94"));
  EXPECT_TRUE(eval_bool("hr > 200 || spo2 < 94"));
  EXPECT_TRUE(eval_bool("!(hr > 200)"));
  EXPECT_TRUE(eval_bool("ok"));
  EXPECT_FALSE(eval_bool("!ok"));
}

TEST(ExprEval, ExistsAndMissingAttributes) {
  EXPECT_TRUE(eval_bool("exists(hr)"));
  EXPECT_FALSE(eval_bool("exists(bloodtype)"));
  // Missing attributes make comparisons false, never throw.
  EXPECT_FALSE(eval_bool("bloodtype == \"A\""));
  EXPECT_FALSE(eval_bool("bloodtype != \"A\""));  // absent ≠ "not equal"
  EXPECT_TRUE(eval_bool("!(bloodtype == \"A\")"));
}

TEST(ExprEval, NumericFamilyMixing) {
  EXPECT_TRUE(eval_bool("spo2 < 94"));       // double vs int literal
  EXPECT_TRUE(eval_bool("hr == 130.0"));     // int vs double literal
}

TEST(ExprEval, TruthinessRules) {
  EXPECT_TRUE(truthy(Value(1)));
  EXPECT_FALSE(truthy(Value(0)));
  EXPECT_TRUE(truthy(Value(0.5)));
  EXPECT_FALSE(truthy(Value(0.0)));
  EXPECT_TRUE(truthy(Value("x")));
  EXPECT_FALSE(truthy(Value("")));
  EXPECT_TRUE(truthy(Value(true)));
  EXPECT_FALSE(truthy(Value(Bytes{})));
}

TEST(ExprEval, NullConditionIsTrue) {
  EXPECT_TRUE(eval_condition(nullptr, trigger()));
}

TEST(ExprEval, CloneProducesEqualBehaviour) {
  ExprPtr e = parse_policy_expr("hr > 120 && name == \"bob\"");
  ExprPtr c = e->clone();
  EXPECT_EQ(eval_condition(e.get(), trigger()),
            eval_condition(c.get(), trigger()));
  EXPECT_EQ(e->to_string(), c->to_string());
}

TEST(TopicMatches, PatternAlgebra) {
  EXPECT_TRUE(topic_matches("vitals.*", "vitals.heartrate"));
  EXPECT_TRUE(topic_matches("vitals.*", "vitals.*"));
  EXPECT_TRUE(topic_matches("*", "anything"));
  EXPECT_FALSE(topic_matches("vitals.*", "alarm.cardiac"));
  EXPECT_TRUE(topic_matches("vitals.heartrate", "vitals.heartrate"));
  EXPECT_FALSE(topic_matches("vitals.heartrate", "vitals.*"));
  EXPECT_FALSE(topic_matches("vitals.heartrate", "vitals.heartrate2"));
}

}  // namespace
}  // namespace amuse
