// ExecutorPool: per-core sharding of the real datapath (DESIGN.md §12).
// Shard assignment must be a stable pure function of the ServiceId (the
// property channels rely on across leave/rejoin), reasonably balanced, and
// the pool's lifecycle must be race-free however quickly it is torn down.
#include "sim/executor_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

namespace amuse {
namespace {

ServiceId test_id(std::uint32_t n) {
  return ServiceId::from_addr_port(0x7F000001u, static_cast<std::uint16_t>(
                                                    1024 + n));
}

TEST(ExecutorPool, ShardAssignmentIsStableAcrossPoolsAndRejoin) {
  ExecutorPool a({4, /*pin_threads=*/false});
  ExecutorPool b({4, /*pin_threads=*/false});
  for (std::uint32_t n = 0; n < 500; ++n) {
    ServiceId id = test_id(n);
    std::size_t s = a.shard_index(id);
    // Same id, same shard: within one pool (a rejoining peer lands back on
    // its old shard) and across pool instances of the same size.
    EXPECT_EQ(a.shard_index(id), s);
    EXPECT_EQ(b.shard_index(id), s);
    EXPECT_EQ(&a.shard_for(id), &a.shard(s));
    EXPECT_LT(s, a.size());
  }
}

TEST(ExecutorPool, ShardAssignmentIsBalanced) {
  ExecutorPool pool({4, /*pin_threads=*/false});
  std::vector<int> counts(pool.size(), 0);
  constexpr int kIds = 2000;
  for (std::uint32_t n = 0; n < kIds; ++n) {
    ++counts[pool.shard_index(test_id(n))];
  }
  // splitmix64 over sequential ports: every shard sees a meaningful share
  // (no degenerate all-on-one-shard mapping).
  for (std::size_t s = 0; s < counts.size(); ++s) {
    EXPECT_GT(counts[s], kIds / 16) << "shard " << s << " starved";
  }
}

TEST(ExecutorPool, TasksRunOnDistinctShardThreads) {
  ExecutorPool pool({3, /*pin_threads=*/false});
  std::atomic<int> ran{0};
  Mutex mu;
  std::set<std::thread::id> threads;
  for (std::size_t s = 0; s < pool.size(); ++s) {
    for (int i = 0; i < 50; ++i) {
      pool.shard(s).post([&] {
        {
          MutexLock lock(mu);
          threads.insert(std::this_thread::get_id());
        }
        ran.fetch_add(1);
      });
    }
  }
  // stop() posts the shutdown task behind the work, so joining the pool
  // proves all 150 tasks drained first.
  pool.stop();
  EXPECT_EQ(ran.load(), 150);
  MutexLock lock(mu);
  EXPECT_EQ(threads.size(), 3u);
}

TEST(ExecutorPool, ImmediateDestructionDoesNotHang) {
  // The constructor→destructor race: a shard thread may not have entered
  // run() when stop() fires. The posted-stop protocol must terminate it
  // in either order.
  for (int i = 0; i < 25; ++i) {
    ExecutorPool pool({2, /*pin_threads=*/false});
  }
}

TEST(ExecutorPool, StopIsIdempotent) {
  ExecutorPool pool({2, /*pin_threads=*/false});
  std::atomic<int> ran{0};
  pool.shard(0).post([&] { ran.fetch_add(1); });
  pool.stop();
  pool.stop();  // second stop is a no-op
  EXPECT_EQ(ran.load(), 1);
}

TEST(ExecutorPool, DefaultSizeUsesHardwareConcurrency) {
  ExecutorPool pool({0, /*pin_threads=*/false});
  EXPECT_GE(pool.size(), 1u);
}

TEST(ExecutorPool, DrainStatsAccumulatePerShard) {
  ExecutorPool pool({2, /*pin_threads=*/false});
  for (int i = 0; i < 40; ++i) {
    pool.shard(0).post([] {});
  }
  pool.stop();
  RealExecutorStats s = pool.shard(0).stats();
  EXPECT_EQ(s.tasks_run, 41u);  // 40 work tasks + the posted stop task
  EXPECT_GE(s.wakeups, 1u);
  EXPECT_LE(s.wakeups, s.tasks_run);
  EXPECT_GE(s.max_drain, 1u);
}

}  // namespace
}  // namespace amuse
