// Unit tests for the byte-array Writer/Reader — the serialisation substrate
// every wire format in the SMC builds on.
#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace amuse {
namespace {

TEST(Writer, FixedWidthIntegersAreBigEndian) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 0xAB);
  EXPECT_EQ(b[1], 0x12);
  EXPECT_EQ(b[2], 0x34);
  EXPECT_EQ(b[3], 0xDE);
  EXPECT_EQ(b[4], 0xAD);
  EXPECT_EQ(b[5], 0xBE);
  EXPECT_EQ(b[6], 0xEF);
}

TEST(Writer, U48UsesSixBytes) {
  Writer w;
  w.u48(0x0000FFFFFFFFFFFFULL);
  EXPECT_EQ(w.size(), 6u);
  Reader r(w.bytes());
  EXPECT_EQ(r.u48(), 0x0000FFFFFFFFFFFFULL);
}

TEST(RoundTrip, AllScalarTypes) {
  Writer w;
  w.u8(7);
  w.u16(65535);
  w.u32(4'000'000'000U);
  w.u64(0x0123456789ABCDEFULL);
  w.u48(0x123456789ABCULL);
  w.i64(-42);
  w.f64(3.14159265358979);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 4'000'000'000U);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.u48(), 0x123456789ABCULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(RoundTrip, FloatSpecialValues) {
  Writer w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  Reader r(w.bytes());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(RoundTrip, StringsAndBlobs) {
  Writer w;
  w.str("hello");
  w.str("");
  w.str(std::string("emb\0edded", 9));
  Bytes blob{1, 2, 3, 255};
  w.blob16(blob);
  w.blob32(blob);

  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("emb\0edded", 9));
  EXPECT_EQ(r.blob16(), blob);
  EXPECT_EQ(r.blob32(), blob);
}

TEST(Writer, Blob16RejectsOversize) {
  Writer w;
  Bytes big(0x10000, 0);
  EXPECT_THROW(w.blob16(big), std::length_error);
}

TEST(Writer, PatchU16FixesUpLengths) {
  Writer w;
  w.u16(0);  // placeholder
  w.str("payload");
  w.patch_u16(0, static_cast<std::uint16_t>(w.size()));
  Reader r(w.bytes());
  EXPECT_EQ(r.u16(), w.size());
}

TEST(Writer, PatchU16OutOfRangeThrows) {
  Writer w;
  w.u8(1);
  EXPECT_THROW(w.patch_u16(0, 5), std::out_of_range);
}

TEST(Reader, TruncatedReadsThrowDecodeError) {
  Bytes b{1, 2, 3};
  Reader r(b);
  EXPECT_EQ(r.u16(), 0x0102);  // NOLINT
  EXPECT_THROW((void)r.u16(), DecodeError);
  // Reader survives the throw with its position intact.
  EXPECT_EQ(r.u8(), 3);
  EXPECT_THROW((void)r.u8(), DecodeError);
}

TEST(Reader, BlobLengthBeyondBufferThrows) {
  Writer w;
  w.u16(100);  // claims 100 bytes follow
  w.u8(1);
  Reader r(w.bytes());
  EXPECT_THROW(r.blob16(), DecodeError);
}

TEST(Reader, RemainingAndPositionTrack) {
  Bytes b{1, 2, 3, 4};
  Reader r(b);
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.u16();
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_FALSE(r.done());
  (void)r.raw(2);
  EXPECT_TRUE(r.done());
}

TEST(Hex, EncodesLowercase) {
  Bytes b{0x00, 0xFF, 0xA5};
  EXPECT_EQ(to_hex(b), "00ffa5");
  EXPECT_EQ(to_hex(Bytes{}), "");
}

TEST(Conversions, StringBytesRoundTrip) {
  EXPECT_EQ(to_string(to_bytes("round trip")), "round trip");
}

}  // namespace
}  // namespace amuse
