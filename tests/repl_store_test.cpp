// ReplStore crash-recovery tests (DESIGN.md §13.6): the length+CRC framed
// journal behind the disk-durable ReplState. The centrepiece is a property
// sweep — truncate the journal at EVERY byte offset and corrupt EVERY byte
// of its last record — proving recovery always yields exactly the state at
// the last intact record boundary, never crashes, and never applies a
// partial op. Mem and File stores replay the same bytes to the same state.
#include "bus/repl_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bus/replication.hpp"
#include "pubsub/codec.hpp"
#include "pubsub/filter.hpp"

namespace amuse {
namespace {

Filter fa() { return Filter::for_type("a"); }
Filter fb() { return Filter::for_type_prefix("b."); }

// A journalled mutation history: a ReplLog attached to a MemReplStore,
// with the journal offset and canonical state captured after the baseline
// snapshot and after every subsequent op record. boundaries[i] / states[i]
// is the truth recovery must reproduce for any prefix ending there.
struct JournalHistory {
  std::shared_ptr<MemReplStore> store = std::make_shared<MemReplStore>();
  ReplLog log;
  std::vector<std::size_t> boundaries;
  std::vector<Bytes> states;  // canonical encodings, index-matched

  JournalHistory() {
    // set_epoch persists a compacting snapshot, so fix the epoch before
    // attaching the store: every boundary below stays a stable offset.
    log.set_epoch(1);
    log.set_store(store);  // baseline snapshot record
    mark();
    log.member_admitted(ServiceId(5), "sensor", "service");
    mark();
    log.sub_added(ServiceId(5), 1, fa());
    mark();
    log.member_admitted(ServiceId(6), "console", "nurse");
    mark();
    log.sub_added(ServiceId(6), 4, fb());
    mark();
    log.standby_admitted(ServiceId(9));
    mark();
    log.counters_changed(100, 7, 42, 2);
    mark();
    Event e("a");
    e.set(kHaEpochAttr, std::int64_t{1});
    e.set(kHaSeqAttr, std::int64_t{1});
    (void)log.spool_append(1, 1, encode_event(e));
    mark();
    log.sub_removed(ServiceId(5), 1);
    mark();
  }

  void mark() {
    boundaries.push_back(store->journal().size());
    states.push_back(log.state().encode());
  }

  // Index of the last boundary at or before `offset`, or npos when the
  // prefix does not even hold the baseline snapshot.
  [[nodiscard]] std::size_t boundary_before(std::size_t offset) const {
    std::size_t at = std::string::npos;
    for (std::size_t i = 0; i < boundaries.size(); ++i) {
      if (boundaries[i] <= offset) at = i;
    }
    return at;
  }
};

// ---- Round trips.

TEST(ReplStore, MemRecoversJournalledState) {
  JournalHistory h;
  ReplStore::Recovery rec = h.store->recover();
  ASSERT_TRUE(rec.state.has_value());
  EXPECT_EQ(rec.state->encode(), h.log.state().encode());
  EXPECT_EQ(rec.records, h.boundaries.size());  // snapshot + one per op
  EXPECT_EQ(h.store->stats().recoveries, 1u);
  EXPECT_EQ(h.store->stats().torn_tails, 0u);
  EXPECT_EQ(h.store->stats().ops_appended, h.boundaries.size() - 1);
}

TEST(ReplStore, EmptyStoreRecoversNothing) {
  MemReplStore store;
  ReplStore::Recovery rec = store.recover();
  EXPECT_FALSE(rec.state.has_value());
  EXPECT_EQ(rec.records, 0u);
  EXPECT_EQ(store.stats().torn_tails, 0u);
}

// ---- The crash-recovery property sweep (satellite S3).

// Truncate the journal at every byte offset: recovery must return exactly
// the state at the last intact record boundary, flag a torn tail iff the
// cut falls mid-record, and never throw. This is the crash model — the
// process died mid-append and the tail of the last record never hit disk.
TEST(ReplStore, TruncationAtEveryByteRecoversThePrefix) {
  JournalHistory h;
  const Bytes full = h.store->journal();
  ASSERT_GT(full.size(), 0u);

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    Bytes prefix(full.begin(), full.begin() + static_cast<long>(cut));
    JournalReplay rep = replay_repl_journal(BytesView(prefix));

    std::size_t at = h.boundary_before(cut);
    if (at == std::string::npos) {
      // Not even the baseline snapshot survived.
      EXPECT_FALSE(rep.recovery.state.has_value()) << "cut=" << cut;
      EXPECT_EQ(rep.valid_bytes, 0u) << "cut=" << cut;
      EXPECT_EQ(rep.torn, cut != 0) << "cut=" << cut;
      continue;
    }
    EXPECT_EQ(rep.valid_bytes, h.boundaries[at]) << "cut=" << cut;
    EXPECT_EQ(rep.torn, cut != h.boundaries[at]) << "cut=" << cut;
    EXPECT_EQ(rep.recovery.records, at + 1) << "cut=" << cut;
    ASSERT_TRUE(rep.recovery.state.has_value()) << "cut=" << cut;
    EXPECT_EQ(rep.recovery.state->encode(), h.states[at]) << "cut=" << cut;
  }
}

// Corrupt every byte of the last record (each with a shifting bit flip):
// the CRC frame must reject the record — recovery falls back to the state
// one boundary earlier, truncates the journal there, and counts one torn
// tail. A flip in the length field may also masquerade as a longer/shorter
// record; either way nothing past the last intact boundary survives.
TEST(ReplStore, CorruptionOfEveryLastRecordByteIsATornTail) {
  JournalHistory h;
  const Bytes full = h.store->journal();
  const std::size_t last_start = h.boundaries[h.boundaries.size() - 2];
  const Bytes& prior_state = h.states[h.states.size() - 2];
  ASSERT_LT(last_start, full.size());

  for (std::size_t at = last_start; at < full.size(); ++at) {
    MemReplStore store;
    store.journal() = full;
    store.journal()[at] ^= static_cast<std::uint8_t>(1u << (at % 8));

    ReplStore::Recovery rec = store.recover();
    ASSERT_TRUE(rec.state.has_value()) << "corrupt@" << at;
    EXPECT_EQ(rec.state->encode(), prior_state) << "corrupt@" << at;
    EXPECT_EQ(rec.records, h.boundaries.size() - 1) << "corrupt@" << at;
    EXPECT_EQ(store.stats().torn_tails, 1u) << "corrupt@" << at;
    // recover() repaired the store in place: the tail is gone.
    EXPECT_EQ(store.journal().size(), last_start) << "corrupt@" << at;
  }
}

// An op record before any snapshot cannot apply (there is no base state):
// it is a torn tail from byte zero, not a crash.
TEST(ReplStore, OpsBeforeSnapshotAreTorn) {
  Bytes journal;
  ReplLog log;
  log.set_epoch(1);
  frame_repl_record(journal, kReplRecordOps, BytesView(log.state().encode()));
  JournalReplay rep = replay_repl_journal(BytesView(journal));
  EXPECT_TRUE(rep.torn);
  EXPECT_EQ(rep.valid_bytes, 0u);
  EXPECT_FALSE(rep.recovery.state.has_value());
}

TEST(ReplStore, UnknownRecordTypeIsTorn) {
  JournalHistory h;
  Bytes journal = h.store->journal();
  frame_repl_record(journal, 7, BytesView(h.states.back()));
  JournalReplay rep = replay_repl_journal(BytesView(journal));
  EXPECT_TRUE(rep.torn);
  EXPECT_EQ(rep.valid_bytes, h.boundaries.back());
  ASSERT_TRUE(rep.recovery.state.has_value());
  EXPECT_EQ(rep.recovery.state->encode(), h.states.back());
}

// A later snapshot record subsumes everything before it: replay restarts
// from the newest snapshot, ops after it apply on top.
TEST(ReplStore, ReplayRestartsFromTheNewestSnapshot) {
  JournalHistory h;
  ReplLog other;
  other.set_epoch(3);
  other.member_admitted(ServiceId(11), "gateway", "gateway");
  (void)other.take_update();

  Bytes journal = h.store->journal();
  frame_repl_record(journal, kReplRecordSnapshot,
                    BytesView(other.state().encode()));
  JournalReplay rep = replay_repl_journal(BytesView(journal));
  EXPECT_FALSE(rep.torn);
  ASSERT_TRUE(rep.recovery.state.has_value());
  EXPECT_EQ(rep.recovery.state->encode(), other.state().encode());
}

// ---- Compaction.

// Once wal_compact_bytes of ops accumulate, ReplLog persists a fresh
// snapshot and the store drops the op tail it subsumes: the journal stays
// bounded while recovery stays exact.
TEST(ReplStore, CompactionBoundsTheJournal) {
  ReplLog::Limits limits;
  limits.wal_compact_bytes = 256;
  ReplLog log(limits);
  auto store = std::make_shared<MemReplStore>();
  log.set_store(store);
  log.set_epoch(1);
  log.member_admitted(ServiceId(5), "sensor", "service");

  for (std::uint64_t i = 0; i < 64; ++i) {
    log.sub_added(ServiceId(5), i + 1, fa());
    log.sub_removed(ServiceId(5), i + 1);
  }
  // Far more op bytes than wal_compact_bytes were appended, so compaction
  // must have run at least once and the journal cannot have kept them all.
  EXPECT_GT(store->stats().snapshots_written, 1u);
  EXPECT_LT(store->journal().size(), 128 * limits.wal_compact_bytes);

  ReplStore::Recovery rec = store->recover();
  ASSERT_TRUE(rec.state.has_value());
  EXPECT_EQ(rec.state->encode(), log.state().encode());
}

// ---- FileReplStore: the same semantics on a real file.

struct TempJournal {
  TempJournal() : path(::testing::TempDir() + "amuse-repl-store-test.bin") {
    std::remove(path.c_str());
  }
  ~TempJournal() { std::remove(path.c_str()); }
  std::string path;
};

TEST(ReplStore, FileRoundTripMatchesMem) {
  JournalHistory h;
  TempJournal tmp;
  {
    std::ofstream f(tmp.path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(h.store->journal().data()),
            static_cast<std::streamsize>(h.store->journal().size()));
  }
  FileReplStore store(tmp.path);
  ReplStore::Recovery rec = store.recover();
  ASSERT_TRUE(rec.state.has_value());
  EXPECT_EQ(rec.state->encode(), h.log.state().encode());
  EXPECT_EQ(rec.records, h.boundaries.size());
  EXPECT_EQ(store.stats().torn_tails, 0u);
}

TEST(ReplStore, FileTruncatesTornTailOnDisk) {
  JournalHistory h;
  TempJournal tmp;
  const std::size_t keep = h.boundaries[h.boundaries.size() - 2] + 3;
  {
    std::ofstream f(tmp.path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(h.store->journal().data()),
            static_cast<std::streamsize>(keep));  // mid-record crash
  }
  FileReplStore store(tmp.path);
  ReplStore::Recovery rec = store.recover();
  ASSERT_TRUE(rec.state.has_value());
  EXPECT_EQ(rec.state->encode(), h.states[h.states.size() - 2]);
  EXPECT_EQ(store.stats().torn_tails, 1u);

  // The file itself was truncated back to the intact prefix: a second
  // recovery sees a clean journal.
  FileReplStore again(tmp.path);
  ReplStore::Recovery rec2 = again.recover();
  ASSERT_TRUE(rec2.state.has_value());
  EXPECT_EQ(rec2.state->encode(), h.states[h.states.size() - 2]);
  EXPECT_EQ(again.stats().torn_tails, 0u);
}

TEST(ReplStore, FileAppendsSurviveReopen) {
  TempJournal tmp;
  Bytes expected;
  {
    ReplLog log;
    log.set_store(std::make_shared<FileReplStore>(tmp.path));
    log.set_epoch(2);
    log.member_admitted(ServiceId(5), "sensor", "service");
    log.sub_added(ServiceId(5), 1, fa());
    log.standby_admitted(ServiceId(9));
    expected = log.state().encode();
  }  // process gone
  FileReplStore store(tmp.path);
  ReplStore::Recovery rec = store.recover();
  ASSERT_TRUE(rec.state.has_value());
  EXPECT_EQ(rec.state->encode(), expected);
}

}  // namespace
}  // namespace amuse
