// Tests for the simulated network: link latency/jitter/loss/bandwidth, host
// CPU charging, broadcast domains and partition control.
#include "net/sim_network.hpp"

#include <gtest/gtest.h>

#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

struct NetFixture : ::testing::Test {
  SimExecutor ex;
  SimNetwork net{ex, /*seed=*/1234};
};

TEST_F(NetFixture, DeliversUnicastDatagram) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", profiles::ideal_host());
  net.set_default_link(profiles::perfect_link());
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);

  Bytes received;
  ServiceId from;
  tb->set_receive_handler([&](ServiceId src, BytesView data) {
    from = src;
    received = Bytes(data.begin(), data.end());
  });
  ta->send(tb->local_id(), to_bytes("ping"));
  ex.run();
  EXPECT_EQ(to_string(received), "ping");
  EXPECT_EQ(from, ta->local_id());
  EXPECT_EQ(net.stats().datagrams_delivered, 1u);
}

TEST_F(NetFixture, ServiceIdsFollowAddrPortRule) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  auto t1 = net.create_endpoint(a);
  auto t2 = net.create_endpoint(a);
  EXPECT_EQ(t1->local_id().addr(), a.addr());
  EXPECT_EQ(t2->local_id().addr(), a.addr());
  EXPECT_NE(t1->local_id().port(), t2->local_id().port());
}

TEST_F(NetFixture, LatencyWithinConfiguredBounds) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", profiles::ideal_host());
  LinkModel link;
  link.latency_min = milliseconds(2);
  link.latency_spread = milliseconds(3);
  link.bandwidth_bps = 0;
  net.set_default_link(link);
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);

  std::vector<Duration> arrivals;
  tb->set_receive_handler([&](ServiceId, BytesView) {
    arrivals.push_back(ex.now().time_since_epoch());
  });
  for (int i = 0; i < 200; ++i) {
    ex.schedule_at(TimePoint(seconds(i)), [&, i] {
      ta->send(tb->local_id(), to_bytes("x"));
    });
  }
  ex.run();
  ASSERT_EQ(arrivals.size(), 200u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    Duration latency = arrivals[i] - seconds(static_cast<int>(i));
    EXPECT_GE(latency, milliseconds(2));
    EXPECT_LT(latency, milliseconds(5) + microseconds(10));
  }
}

TEST_F(NetFixture, PaperLinkLatencyProfileMatchesReportedStats) {
  // §V: "latency on the link is 1.5ms on average (0.6ms min, 2.3ms max)".
  SimHost& a = net.add_host("pda", profiles::ideal_host());
  SimHost& b = net.add_host("laptop", profiles::ideal_host());
  net.set_default_link(profiles::usb_ip_link());
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);

  std::vector<double> latencies_ms;
  TimePoint sent;
  tb->set_receive_handler([&](ServiceId, BytesView) {
    latencies_ms.push_back(to_millis(ex.now() - sent));
  });
  for (int i = 0; i < 2000; ++i) {
    ex.schedule_at(TimePoint(seconds(i)), [&, i] {
      sent = TimePoint(seconds(i));
      ta->send(tb->local_id(), to_bytes("p"));
    });
  }
  ex.run();
  ASSERT_EQ(latencies_ms.size(), 2000u);
  double sum = 0;
  double mn = 1e9;
  double mx = 0;
  for (double v : latencies_ms) {
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_NEAR(sum / latencies_ms.size(), 1.45, 0.1);
  EXPECT_GE(mn, 0.6);
  EXPECT_LE(mx, 2.3 + 0.01);
}

TEST_F(NetFixture, LossRateIsRespected) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", profiles::ideal_host());
  net.set_default_link(profiles::lossy_link(0.3));
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);
  int received = 0;
  tb->set_receive_handler([&](ServiceId, BytesView) { ++received; });
  constexpr int kSent = 5000;
  for (int i = 0; i < kSent; ++i) {
    ex.schedule_at(TimePoint(milliseconds(i * 10)), [&] {
      ta->send(tb->local_id(), to_bytes("x"));
    });
  }
  ex.run();
  EXPECT_NEAR(received, kSent * 0.7, kSent * 0.03);
  EXPECT_EQ(net.stats().dropped_loss + net.stats().datagrams_delivered,
            static_cast<std::uint64_t>(kSent));
}

TEST_F(NetFixture, BandwidthSerialisesBackToBackSends) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", profiles::ideal_host());
  LinkModel link;
  link.latency_min = Duration{};
  link.latency_spread = Duration{};
  link.bandwidth_bps = 1000.0;  // 1 KB/s: 100 bytes take 100 ms each
  net.set_default_link(link);
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);

  std::vector<Duration> arrivals;
  tb->set_receive_handler([&](ServiceId, BytesView) {
    arrivals.push_back(ex.now().time_since_epoch());
  });
  Bytes payload(100, 0);
  for (int i = 0; i < 3; ++i) ta->send(tb->local_id(), payload);
  ex.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(to_millis(arrivals[0]), 100.0, 1.0);
  EXPECT_NEAR(to_millis(arrivals[1]), 200.0, 1.0);
  EXPECT_NEAR(to_millis(arrivals[2]), 300.0, 1.0);
}

TEST_F(NetFixture, RawLinkThroughputMatchesPaperCapacity) {
  // §V: the link "can sustain a throughput of approximately 575KB/s".
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", profiles::ideal_host());
  net.set_default_link(profiles::usb_ip_link());
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);
  std::uint64_t bytes = 0;
  TimePoint last{};
  tb->set_receive_handler([&](ServiceId, BytesView data) {
    bytes += data.size();
    last = ex.now();
  });
  Bytes payload(1400, 0);
  for (int i = 0; i < 2000; ++i) ta->send(tb->local_id(), payload);
  ex.run();
  double seconds_elapsed = to_seconds(last.time_since_epoch());
  double kbps = static_cast<double>(bytes) / 1024.0 / seconds_elapsed;
  EXPECT_NEAR(kbps, 575.0, 15.0);
}

TEST_F(NetFixture, HostCpuSerialisesReceiveProcessing) {
  CostModel slow;
  slow.per_packet_recv = milliseconds(10);
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", slow);
  net.set_default_link(profiles::perfect_link());
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);
  std::vector<Duration> handled;
  tb->set_receive_handler([&](ServiceId, BytesView) {
    handled.push_back(ex.now().time_since_epoch());
  });
  for (int i = 0; i < 3; ++i) ta->send(tb->local_id(), to_bytes("x"));
  ex.run();
  ASSERT_EQ(handled.size(), 3u);
  // Each packet costs 10 ms of CPU; they queue behind each other.
  EXPECT_GE(to_millis(handled[1] - handled[0]), 9.9);
  EXPECT_GE(to_millis(handled[2] - handled[1]), 9.9);
  EXPECT_GE(b.busy_time(), milliseconds(30));
}

TEST_F(NetFixture, BroadcastReachesAllOtherEndpoints) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", profiles::ideal_host());
  net.set_default_link(profiles::perfect_link());
  auto t1 = net.create_endpoint(a);
  auto t2 = net.create_endpoint(b);
  auto t3 = net.create_endpoint(b);
  int got1 = 0;
  int got2 = 0;
  int got3 = 0;
  t1->set_receive_handler([&](ServiceId, BytesView) { ++got1; });
  t2->set_receive_handler([&](ServiceId, BytesView) { ++got2; });
  t3->set_receive_handler([&](ServiceId, BytesView) { ++got3; });
  t1->broadcast(to_bytes("beacon"));
  ex.run();
  EXPECT_EQ(got1, 0);  // no self-delivery
  EXPECT_EQ(got2, 1);
  EXPECT_EQ(got3, 1);
}

TEST_F(NetFixture, DownHostsLoseTraffic) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", profiles::ideal_host());
  net.set_default_link(profiles::perfect_link());
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);
  int got = 0;
  tb->set_receive_handler([&](ServiceId, BytesView) { ++got; });

  b.set_up(false);
  ta->send(tb->local_id(), to_bytes("lost"));
  ex.run();
  EXPECT_EQ(got, 0);
  EXPECT_GE(net.stats().dropped_down, 1u);

  b.set_up(true);
  ta->send(tb->local_id(), to_bytes("found"));
  ex.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, MtuDropsOversizedDatagrams) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", profiles::ideal_host());
  LinkModel link = profiles::perfect_link();
  link.mtu = 100;
  net.set_default_link(link);
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);
  int got = 0;
  tb->set_receive_handler([&](ServiceId, BytesView) { ++got; });
  ta->send(tb->local_id(), Bytes(101, 0));
  ta->send(tb->local_id(), Bytes(100, 0));
  ex.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net.stats().dropped_mtu, 1u);
}

TEST_F(NetFixture, DuplicationDeliversTwice) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", profiles::ideal_host());
  LinkModel link = profiles::perfect_link();
  link.dup = 1.0;
  net.set_default_link(link);
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);
  int got = 0;
  tb->set_receive_handler([&](ServiceId, BytesView) { ++got; });
  ta->send(tb->local_id(), to_bytes("x"));
  ex.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST_F(NetFixture, BurstyLossLosesInBursts) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  SimHost& b = net.add_host("b", profiles::ideal_host());
  LinkModel link = profiles::perfect_link();
  link.bursty = true;
  link.loss = 0.0;
  link.p_good_to_bad = 0.05;
  link.p_bad_to_good = 0.2;
  link.loss_bad = 1.0;
  net.set_default_link(link);
  auto ta = net.create_endpoint(a);
  auto tb = net.create_endpoint(b);
  std::vector<bool> delivered;
  int idx = 0;
  tb->set_receive_handler([&](ServiceId, BytesView data) {
    Reader r(data);
    std::uint32_t seq = r.u32();
    while (static_cast<std::uint32_t>(delivered.size()) < seq) {
      delivered.push_back(false);
    }
    delivered.push_back(true);
  });
  for (int i = 0; i < 3000; ++i) {
    ex.schedule_at(TimePoint(milliseconds(i)), [&, i] {
      Writer w;
      w.u32(static_cast<std::uint32_t>(idx++));
      ta->send(tb->local_id(), w.bytes());
    });
  }
  ex.run();
  // Count loss runs ≥ 2: with bursty loss there should be many.
  int runs2 = 0;
  int losses = 0;
  int run = 0;
  for (bool ok : delivered) {
    if (!ok) {
      ++losses;
      ++run;
    } else {
      if (run >= 2) ++runs2;
      run = 0;
    }
  }
  EXPECT_GT(losses, 100);
  EXPECT_GT(runs2, 10);
}

TEST_F(NetFixture, SendToUnknownEndpointCounted) {
  SimHost& a = net.add_host("a", profiles::ideal_host());
  net.set_default_link(profiles::perfect_link());
  auto ta = net.create_endpoint(a);
  ta->send(ServiceId(0xDEAD), to_bytes("nobody"));
  ex.run();
  EXPECT_EQ(net.stats().dropped_no_endpoint, 1u);
}

}  // namespace
}  // namespace amuse
