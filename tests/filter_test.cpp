// Filter semantics: every operator, conjunction behaviour, serialisation,
// and the covering relation the Siena poset is built on.
#include "pubsub/filter.hpp"

#include <gtest/gtest.h>

#include "pubsub/codec.hpp"

namespace amuse {
namespace {

Event ev(std::initializer_list<std::pair<const std::string, Value>> attrs) {
  Event e;
  for (auto& [k, v] : attrs) e.set(k, v);
  return e;
}

TEST(Constraint, NumericOperators) {
  Constraint lt{"x", Op::kLt, 10};
  EXPECT_TRUE(lt.matches(Value(9)));
  EXPECT_TRUE(lt.matches(Value(9.999)));
  EXPECT_FALSE(lt.matches(Value(10)));
  EXPECT_FALSE(lt.matches(Value("9")));  // type mismatch

  Constraint le{"x", Op::kLe, 10};
  EXPECT_TRUE(le.matches(Value(10)));
  EXPECT_FALSE(le.matches(Value(10.001)));

  Constraint gt{"x", Op::kGt, 10};
  EXPECT_TRUE(gt.matches(Value(11)));
  EXPECT_FALSE(gt.matches(Value(10)));

  Constraint ge{"x", Op::kGe, 10};
  EXPECT_TRUE(ge.matches(Value(10.0)));
  EXPECT_FALSE(ge.matches(Value(9)));

  Constraint eq{"x", Op::kEq, 10};
  EXPECT_TRUE(eq.matches(Value(10)));
  EXPECT_TRUE(eq.matches(Value(10.0)));
  EXPECT_FALSE(eq.matches(Value(11)));

  Constraint ne{"x", Op::kNe, 10};
  EXPECT_TRUE(ne.matches(Value(11)));
  EXPECT_FALSE(ne.matches(Value(10)));
  EXPECT_FALSE(ne.matches(Value("ten")));  // incomparable → not "not equal"
}

TEST(Constraint, StringOperators) {
  EXPECT_TRUE((Constraint{"s", Op::kPrefix, "vitals."}.matches(
      Value("vitals.heartrate"))));
  EXPECT_FALSE((Constraint{"s", Op::kPrefix, "vitals."}.matches(
      Value("alarm.cardiac"))));
  EXPECT_TRUE((Constraint{"s", Op::kSuffix, "rate"}.matches(
      Value("vitals.heartrate"))));
  EXPECT_FALSE((Constraint{"s", Op::kSuffix, "rate"}.matches(
      Value("vitals.spo2"))));
  EXPECT_TRUE((Constraint{"s", Op::kContains, "heart"}.matches(
      Value("vitals.heartrate"))));
  EXPECT_FALSE((Constraint{"s", Op::kContains, "heart"}.matches(
      Value("vitals.spo2"))));
  // String ordering is lexicographic.
  EXPECT_TRUE((Constraint{"s", Op::kLt, "b"}.matches(Value("a"))));
  EXPECT_FALSE((Constraint{"s", Op::kLt, "b"}.matches(Value("c"))));
  // Substring ops on non-strings fail rather than match.
  EXPECT_FALSE((Constraint{"s", Op::kPrefix, "1"}.matches(Value(123))));
}

TEST(Constraint, ExistsMatchesAnyValue) {
  Constraint ex{"x", Op::kExists, Value()};
  EXPECT_TRUE(ex.matches(Value(1)));
  EXPECT_TRUE(ex.matches(Value("s")));
  EXPECT_TRUE(ex.matches(Value(false)));
}

TEST(Constraint, BoolAndBytesEquality) {
  EXPECT_TRUE((Constraint{"b", Op::kEq, true}.matches(Value(true))));
  EXPECT_FALSE((Constraint{"b", Op::kEq, true}.matches(Value(false))));
  EXPECT_TRUE((Constraint{"y", Op::kEq, Bytes{1, 2}}.matches(
      Value(Bytes{1, 2}))));
  EXPECT_FALSE((Constraint{"y", Op::kEq, Bytes{1, 2}}.matches(
      Value(Bytes{1}))));
}

TEST(Filter, ConjunctionRequiresAllConstraints) {
  Filter f;
  f.where("type", Op::kEq, "vitals.heartrate").where("hr", Op::kGt, 120);
  EXPECT_TRUE(f.matches(ev({{"type", "vitals.heartrate"}, {"hr", 130}})));
  EXPECT_FALSE(f.matches(ev({{"type", "vitals.heartrate"}, {"hr", 110}})));
  EXPECT_FALSE(f.matches(ev({{"type", "vitals.spo2"}, {"hr", 130}})));
  EXPECT_FALSE(f.matches(ev({{"hr", 130}})));  // missing attribute
}

TEST(Filter, EmptyFilterMatchesEverything) {
  Filter f;
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.matches(ev({})));
  EXPECT_TRUE(f.matches(ev({{"anything", 1}})));
}

TEST(Filter, RangeViaTwoConstraintsOnSameAttribute) {
  Filter f;
  f.where("hr", Op::kGe, 60).where("hr", Op::kLe, 100);
  EXPECT_TRUE(f.matches(ev({{"hr", 72}})));
  EXPECT_FALSE(f.matches(ev({{"hr", 55}})));
  EXPECT_FALSE(f.matches(ev({{"hr", 140}})));
}

TEST(Filter, ForTypeHelpers) {
  EXPECT_TRUE(Filter::for_type("a.b").matches(ev({{"type", "a.b"}})));
  EXPECT_FALSE(Filter::for_type("a.b").matches(ev({{"type", "a.c"}})));
  EXPECT_TRUE(Filter::for_type_prefix("a.").matches(ev({{"type", "a.c"}})));
  EXPECT_FALSE(Filter::for_type_prefix("a.").matches(ev({{"type", "b.c"}})));
}

TEST(Filter, SerialisationRoundTrip) {
  Filter f;
  f.where("type", Op::kPrefix, "vitals.")
      .where("hr", Op::kGt, 120)
      .where("note", Op::kContains, "urgent")
      .where("flag", Op::kExists);
  Filter g = decode_filter(encode_filter(f));
  EXPECT_EQ(f, g);
  EXPECT_EQ(g.to_string(), f.to_string());
}

TEST(Filter, DecodeRejectsBadOp) {
  Writer w;
  w.u16(1);
  w.str("attr");
  w.u8(200);  // invalid op
  Value(1).encode(w);
  EXPECT_THROW((void)decode_filter(w.bytes()), DecodeError);
}

// ---- Covering relation (the poset order).

TEST(Covers, EmptyFilterCoversEverything) {
  Filter any;
  Filter strict;
  strict.where("x", Op::kEq, 1);
  EXPECT_TRUE(covers(any, strict));
  EXPECT_FALSE(covers(strict, any));
}

TEST(Covers, ReflexiveOnEqualFilters) {
  Filter f;
  f.where("x", Op::kGt, 10).where("t", Op::kEq, "a");
  Filter g;
  g.where("x", Op::kGt, 10).where("t", Op::kEq, "a");
  EXPECT_TRUE(covers(f, g));
  EXPECT_TRUE(covers(g, f));
}

TEST(Covers, WiderNumericRangeCoversNarrower) {
  Filter wide;
  wide.where("x", Op::kGt, 0);
  Filter narrow;
  narrow.where("x", Op::kGt, 10);
  EXPECT_TRUE(covers(wide, narrow));
  EXPECT_FALSE(covers(narrow, wide));
}

TEST(Covers, EqImpliesEverythingItSatisfies) {
  Filter pin;
  pin.where("x", Op::kEq, 5);
  Filter lt;
  lt.where("x", Op::kLt, 10);
  Filter ge;
  ge.where("x", Op::kGe, 5);
  Filter ne;
  ne.where("x", Op::kNe, 7);
  EXPECT_TRUE(covers(lt, pin));
  EXPECT_TRUE(covers(ge, pin));
  EXPECT_TRUE(covers(ne, pin));
  EXPECT_FALSE(covers(pin, lt));
}

TEST(Covers, PrefixAlgebra) {
  Filter broad;
  broad.where("t", Op::kPrefix, "vitals.");
  Filter narrow;
  narrow.where("t", Op::kPrefix, "vitals.heart");
  Filter contains;
  contains.where("t", Op::kContains, "tal");
  EXPECT_TRUE(covers(broad, narrow));
  EXPECT_FALSE(covers(narrow, broad));
  EXPECT_TRUE(covers(contains, broad));  // "vitals." contains "tal"
}

TEST(Covers, ExistsCoveredByAnyConstraintOnAttr) {
  Filter exists;
  exists.where("x", Op::kExists);
  Filter eq;
  eq.where("x", Op::kEq, 3);
  EXPECT_TRUE(covers(exists, eq));
  EXPECT_FALSE(covers(eq, exists));
}

TEST(Covers, UnrelatedAttributesDoNotCover) {
  Filter fx;
  fx.where("x", Op::kGt, 0);
  Filter fy;
  fy.where("y", Op::kGt, 0);
  EXPECT_FALSE(covers(fx, fy));
  EXPECT_FALSE(covers(fy, fx));
}

// Soundness property: whenever covers(G, S) claims coverage, every event
// matching S must match G. Randomised check over a small value universe.
TEST(Covers, SoundnessOnRandomisedUniverse) {
  std::vector<Filter> filters;
  const std::vector<Op> ops = {Op::kEq, Op::kNe, Op::kLt,     Op::kLe,
                               Op::kGt, Op::kGe, Op::kExists};
  for (Op op : ops) {
    for (int bound : {0, 5, 10}) {
      Filter f;
      f.where("x", op, bound);
      filters.push_back(f);
    }
  }
  // Pairwise: if covers() says yes, verify on every point of the universe.
  for (const Filter& g : filters) {
    for (const Filter& s : filters) {
      if (!covers(g, s)) continue;
      for (int v = -2; v <= 12; ++v) {
        Event e = ev({{"x", v}});
        if (s.matches(e)) {
          EXPECT_TRUE(g.matches(e))
              << g.to_string() << " claimed to cover " << s.to_string()
              << " but fails at x=" << v;
        }
      }
    }
  }
}

TEST(Covers, ImpliesChainTransitivitySamples) {
  // The poset relies on provable implication being transitive in practice.
  Constraint eq5{"x", Op::kEq, 5};
  Constraint lt10{"x", Op::kLt, 10};
  Constraint le10{"x", Op::kLe, 10};
  Constraint le12{"x", Op::kLe, 12};
  EXPECT_TRUE(eq5.implies(lt10));
  EXPECT_TRUE(lt10.implies(le10));
  EXPECT_TRUE(le10.implies(le12));
  EXPECT_TRUE(eq5.implies(le10));
  EXPECT_TRUE(eq5.implies(le12));
  EXPECT_TRUE(lt10.implies(le12));
}

TEST(Filter, ToStringIsReadable) {
  Filter f;
  f.where("hr", Op::kGt, 120).where("flag", Op::kExists);
  EXPECT_EQ(f.to_string(), "hr > int:120 && flag exists");
  EXPECT_EQ(Filter().to_string(), "(any)");
}

}  // namespace
}  // namespace amuse
