// InterestTable / InterestMirror / OriginDedup unit tests, plus the
// kInterestUpdate wire codec — the routing state machine federation rides
// on (DESIGN.md §11).
#include "bus/interest_table.hpp"

#include <gtest/gtest.h>

#include "bus/messages.hpp"

namespace amuse {
namespace {

Filter fa() { return Filter::for_type("a"); }
Filter fb() { return Filter::for_type_prefix("b."); }
Filter fc() { return Filter().where("x", Op::kGt, 3); }

// ---- Wire codec.

TEST(InterestUpdateCodec, FullUpdateRoundTrip) {
  InterestUpdate u;
  u.version = 7;
  u.full = true;
  u.added = {fa(), fb()};
  FilterSet table(u.added);
  u.digest = table.digest();

  BusMessage back = BusMessage::decode(BusMessage::interest_update(u).encode());
  EXPECT_EQ(back.type, BusMsgType::kInterestUpdate);
  ASSERT_TRUE(back.interest.has_value());
  EXPECT_EQ(back.interest->version, 7u);
  EXPECT_TRUE(back.interest->full);
  EXPECT_FALSE(back.interest->request_resync);
  EXPECT_EQ(back.interest->added, u.added);
  EXPECT_TRUE(back.interest->removed.empty());
  EXPECT_TRUE(digest_equal(back.interest->digest, u.digest));
}

TEST(InterestUpdateCodec, IncrementalRoundTrip) {
  InterestUpdate u;
  u.version = 3;
  u.added = {fc()};
  u.removed = {fa(), fb()};
  BusMessage back = BusMessage::decode(BusMessage::interest_update(u).encode());
  ASSERT_TRUE(back.interest.has_value());
  EXPECT_FALSE(back.interest->full);
  EXPECT_EQ(back.interest->added, u.added);
  EXPECT_EQ(back.interest->removed, u.removed);
}

TEST(InterestUpdateCodec, ResyncRequestRoundTrip) {
  BusMessage back =
      BusMessage::decode(BusMessage::interest_resync_request().encode());
  EXPECT_EQ(back.type, BusMsgType::kInterestUpdate);
  ASSERT_TRUE(back.interest.has_value());
  EXPECT_TRUE(back.interest->request_resync);
  EXPECT_TRUE(back.interest->added.empty());
}

TEST(InterestUpdateCodec, RejectsUnknownFlags) {
  Bytes frame = BusMessage::interest_resync_request().encode();
  // Byte 0 is the message type; byte 1 the flag octet.
  frame[1] = 0x80;
  EXPECT_THROW((void)BusMessage::decode(frame), DecodeError);
}

// ---- InterestTable: split-horizon export views and versioned diffs.

TEST(InterestTable, ExportViewExcludesTheLinkItself) {
  ServiceId member(1);
  ServiceId gateway(2);
  InterestTable t;
  t.rebuild({{member, {fa()}}, {gateway, {fb()}}});

  // The quench view holds everything …
  EXPECT_EQ(t.all().size(), 2u);
  // … but the gateway's export never echoes its own interests back.
  FilterSet for_gateway = t.export_for(gateway);
  EXPECT_EQ(for_gateway.size(), 1u);
  EXPECT_TRUE(for_gateway.contains(fa()));
  // A different link sees the gateway's interests.
  FilterSet for_member = t.export_for(member);
  EXPECT_TRUE(for_member.contains(fb()));
}

TEST(InterestTable, ExportViewIsCompacted) {
  ServiceId member(1);
  InterestTable t;
  t.rebuild({{member,
              {Filter::for_type_prefix("alarm."),
               Filter::for_type("alarm.cardiac")}}});
  EXPECT_EQ(t.all().size(), 2u);  // quench view stays uncompacted
  FilterSet exported = t.export_for(ServiceId(9));
  EXPECT_EQ(exported.size(), 1u);
  EXPECT_TRUE(exported.contains(Filter::for_type_prefix("alarm.")));
}

TEST(InterestTable, RefreshLinkDiffsAgainstLastPush) {
  ServiceId member(1);
  ServiceId link(9);
  InterestTable t;
  t.rebuild({{member, {fa()}}});

  auto first = t.refresh_link(link);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->full);
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->added, std::vector<Filter>{fa()});

  // Unchanged view → nothing to push.
  EXPECT_FALSE(t.refresh_link(link).has_value());
  EXPECT_EQ(t.link_version(link), 1u);

  t.rebuild({{member, {fa(), fc()}}});
  auto second = t.refresh_link(link);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->full);
  EXPECT_EQ(second->version, 2u);
  EXPECT_EQ(second->added, std::vector<Filter>{fc()});
  EXPECT_TRUE(second->removed.empty());

  t.rebuild({{member, {fc()}}});
  auto third = t.refresh_link(link);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->removed, std::vector<Filter>{fa()});
}

TEST(InterestTable, DropLinkForcesFullPushOnReturn) {
  ServiceId member(1);
  ServiceId link(9);
  InterestTable t;
  t.rebuild({{member, {fa()}}});
  ASSERT_TRUE(t.refresh_link(link).has_value());
  t.drop_link(link);
  EXPECT_EQ(t.link_version(link), 0u);
  auto again = t.refresh_link(link);
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->full);
}

TEST(InterestTable, FullUpdateAlwaysBumpsVersion) {
  ServiceId member(1);
  ServiceId link(9);
  InterestTable t;
  t.rebuild({{member, {fa()}}});
  ASSERT_TRUE(t.refresh_link(link).has_value());
  // A resync for an unchanged table must still carry a fresh version so a
  // rejoined mirror adopts it unconditionally.
  InterestUpdate resync = t.full_update(link);
  EXPECT_TRUE(resync.full);
  EXPECT_EQ(resync.version, 2u);
  EXPECT_EQ(resync.added, std::vector<Filter>{fa()});
}

// ---- InterestMirror: the gateway-side replica.

TEST(InterestMirror, AppliesFullThenIncrements) {
  InterestTable t;
  InterestMirror m;
  ServiceId member(1);
  ServiceId link(9);

  t.rebuild({{member, {fa()}}});
  EXPECT_EQ(m.apply(*t.refresh_link(link)), InterestMirror::Apply::kApplied);
  EXPECT_TRUE(m.synced());
  EXPECT_TRUE(m.interests().contains(fa()));

  t.rebuild({{member, {fa(), fc()}}});
  EXPECT_EQ(m.apply(*t.refresh_link(link)), InterestMirror::Apply::kApplied);
  EXPECT_TRUE(m.interests().contains(fc()));
  EXPECT_EQ(m.version(), t.link_version(link));
}

TEST(InterestMirror, IncrementBeforeFullTableNeedsResync) {
  InterestMirror m;
  InterestUpdate inc;
  inc.version = 1;
  inc.added = {fa()};
  EXPECT_EQ(m.apply(inc), InterestMirror::Apply::kResyncNeeded);
  EXPECT_FALSE(m.synced());
}

TEST(InterestMirror, VersionGapNeedsResync) {
  InterestTable t;
  InterestMirror m;
  ServiceId member(1);
  ServiceId link(9);
  t.rebuild({{member, {fa()}}});
  ASSERT_EQ(m.apply(*t.refresh_link(link)), InterestMirror::Apply::kApplied);

  // Two rebuilds; the first increment is lost in transit.
  t.rebuild({{member, {fa(), fb()}}});
  (void)t.refresh_link(link);  // v2, never delivered
  t.rebuild({{member, {fa(), fb(), fc()}}});
  auto v3 = t.refresh_link(link);
  ASSERT_TRUE(v3.has_value());
  EXPECT_EQ(m.apply(*v3), InterestMirror::Apply::kResyncNeeded);
  EXPECT_FALSE(m.synced());

  // Recovery: the bus answers with a full table.
  EXPECT_EQ(m.apply(t.full_update(link)), InterestMirror::Apply::kApplied);
  EXPECT_TRUE(m.synced());
  EXPECT_EQ(m.interests().size(), 3u);
}

TEST(InterestMirror, DigestMismatchNeedsResync) {
  InterestMirror m;
  InterestUpdate full;
  full.version = 1;
  full.full = true;
  full.added = {fa()};
  full.digest = FilterSet({fa()}).digest();
  ASSERT_EQ(m.apply(full), InterestMirror::Apply::kApplied);

  InterestUpdate inc;
  inc.version = 2;
  inc.added = {fb()};
  inc.digest = FilterSet({fb(), fc()}).digest();  // table disagrees
  EXPECT_EQ(m.apply(inc), InterestMirror::Apply::kResyncNeeded);
  EXPECT_FALSE(m.synced());
}

TEST(InterestMirror, ResetForgetsEverything) {
  InterestMirror m;
  InterestUpdate full;
  full.version = 5;
  full.full = true;
  full.added = {fa()};
  full.digest = FilterSet({fa()}).digest();
  ASSERT_EQ(m.apply(full), InterestMirror::Apply::kApplied);
  m.reset();
  EXPECT_FALSE(m.synced());
  EXPECT_EQ(m.version(), 0u);
  EXPECT_TRUE(m.interests().empty());
}

// ---- OriginDedup: first-arrival-wins over (origin cell, seq).

TEST(OriginDedup, FirstArrivalWins) {
  OriginDedup d;
  EXPECT_TRUE(d.admit(1, 1));
  EXPECT_FALSE(d.admit(1, 1));  // multipath duplicate
  EXPECT_TRUE(d.admit(1, 2));
  EXPECT_TRUE(d.admit(2, 1));  // origins are independent
  EXPECT_FALSE(d.admit(2, 1));
}

TEST(OriginDedup, OutOfOrderWithinWindowAdmits) {
  OriginDedup d;
  EXPECT_TRUE(d.admit(1, 5));
  EXPECT_TRUE(d.admit(1, 3));  // reordered, never seen — route it
  EXPECT_FALSE(d.admit(1, 3));
}

TEST(OriginDedup, EvictedSeqsArePresumedSeen) {
  OriginDedup d(4);
  for (std::uint64_t s = 1; s <= 5; ++s) EXPECT_TRUE(d.admit(1, s));
  // seq 1 fell off the window: dedup over-drops rather than re-routing.
  EXPECT_FALSE(d.admit(1, 1));
  // In-window stamps keep exact semantics.
  EXPECT_FALSE(d.admit(1, 5));
  EXPECT_TRUE(d.admit(1, 6));
}

TEST(OriginDedup, ClearForgets) {
  OriginDedup d;
  EXPECT_TRUE(d.admit(1, 1));
  d.clear();
  EXPECT_TRUE(d.admit(1, 1));
}

}  // namespace
}  // namespace amuse
