// Tests for the discrete-event executor: deterministic ordering is what the
// whole simulated evaluation rests on.
#include "sim/sim_executor.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amuse {
namespace {

TEST(SimExecutor, StartsAtEpochAndIdle) {
  SimExecutor ex;
  EXPECT_EQ(ex.now().time_since_epoch().count(), 0);
  EXPECT_TRUE(ex.idle());
  EXPECT_FALSE(ex.step());
}

TEST(SimExecutor, RunsTasksInTimeOrder) {
  SimExecutor ex;
  std::vector<int> order;
  ex.schedule_at(TimePoint(milliseconds(30)), [&] { order.push_back(3); });
  ex.schedule_at(TimePoint(milliseconds(10)), [&] { order.push_back(1); });
  ex.schedule_at(TimePoint(milliseconds(20)), [&] { order.push_back(2); });
  ex.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ex.now(), TimePoint(milliseconds(30)));
}

TEST(SimExecutor, SameInstantRunsInScheduleOrder) {
  SimExecutor ex;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    ex.schedule_at(TimePoint(milliseconds(5)), [&, i] { order.push_back(i); });
  }
  ex.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimExecutor, PostRunsAtCurrentTime) {
  SimExecutor ex;
  TimePoint when;
  ex.schedule_at(TimePoint(seconds(2)), [&] {
    ex.post([&] { when = ex.now(); });
  });
  ex.run();
  EXPECT_EQ(when, TimePoint(seconds(2)));
}

TEST(SimExecutor, SchedulingInThePastClampsToNow) {
  SimExecutor ex;
  ex.schedule_at(TimePoint(seconds(5)), [&] {
    ex.schedule_at(TimePoint(seconds(1)), [&] {
      EXPECT_EQ(ex.now(), TimePoint(seconds(5)));
    });
  });
  ex.run();
  EXPECT_EQ(ex.now(), TimePoint(seconds(5)));
}

TEST(SimExecutor, CancelPreventsExecution) {
  SimExecutor ex;
  bool ran = false;
  TimerId id = ex.schedule_after(seconds(1), [&] { ran = true; });
  ex.cancel(id);
  ex.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(ex.tasks_executed(), 0u);
}

TEST(SimExecutor, CancelUnknownIdIsNoop) {
  SimExecutor ex;
  ex.cancel(999);
  ex.cancel(kNoTimer);
  EXPECT_TRUE(ex.idle());
}

TEST(SimExecutor, CancelFromWithinTask) {
  SimExecutor ex;
  bool second_ran = false;
  TimerId second = ex.schedule_after(seconds(2), [&] { second_ran = true; });
  ex.schedule_after(seconds(1), [&] { ex.cancel(second); });
  ex.run();
  EXPECT_FALSE(second_ran);
}

TEST(SimExecutor, RunUntilAdvancesClockToDeadline) {
  SimExecutor ex;
  int count = 0;
  ex.schedule_after(milliseconds(100), [&] { ++count; });
  ex.schedule_after(milliseconds(900), [&] { ++count; });
  ex.run_until(TimePoint(milliseconds(500)));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(ex.now(), TimePoint(milliseconds(500)));
  EXPECT_EQ(ex.pending(), 1u);
  ex.run_for(seconds(1));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(ex.now(), TimePoint(milliseconds(1500)));
}

TEST(SimExecutor, RunUntilIncludesTasksAtDeadline) {
  SimExecutor ex;
  bool ran = false;
  ex.schedule_at(TimePoint(seconds(1)), [&] { ran = true; });
  ex.run_until(TimePoint(seconds(1)));
  EXPECT_TRUE(ran);
}

TEST(SimExecutor, RunLimitBoundsWork) {
  SimExecutor ex;
  // A self-rescheduling task would run forever without the limit.
  std::function<void()> loop = [&] { ex.schedule_after(milliseconds(1), loop); };
  ex.schedule_after(milliseconds(1), loop);
  std::size_t executed = ex.run(100);
  EXPECT_EQ(executed, 100u);
}

TEST(SimExecutor, ScheduleAfterUsesCurrentTime) {
  SimExecutor ex;
  TimePoint fired;
  ex.schedule_after(seconds(1), [&] {
    ex.schedule_after(seconds(2), [&] { fired = ex.now(); });
  });
  ex.run();
  EXPECT_EQ(fired, TimePoint(seconds(3)));
}

TEST(SimExecutor, TasksExecutedCounter) {
  SimExecutor ex;
  for (int i = 0; i < 5; ++i) ex.post([] {});
  ex.run();
  EXPECT_EQ(ex.tasks_executed(), 5u);
}

}  // namespace
}  // namespace amuse
