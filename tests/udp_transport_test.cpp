// Real-UDP transport smoke tests (the prototype configuration, §IV).
// Skipped gracefully where the sandbox forbids sockets or multicast.
#include "net/udp_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>

#include "sim/executor_pool.hpp"
#include "sim/real_executor.hpp"

namespace amuse {
namespace {

std::unique_ptr<UdpTransport> try_open(Executor& ex, std::uint16_t bport,
                                       bool batch_io = true) {
  UdpOptions opts;
  opts.broadcast_port = bport;
  opts.batch_io = batch_io;
  try {
    return UdpTransport::open(ex, opts);
  } catch (const std::system_error& e) {
    return nullptr;
  }
}

/// 4-byte little-endian sequence payloads for FIFO checks.
Bytes seq_payload(std::uint32_t n, std::size_t pad = 0) {
  Bytes b(4 + pad, 0xEE);
  std::memcpy(b.data(), &n, sizeof(n));
  return b;
}

TEST(UdpTransport, UnicastRoundTripOnLocalhost) {
  RealExecutor ex;
  auto a = try_open(ex, 46901);
  auto b = try_open(ex, 46901);
  if (!a || !b) GTEST_SKIP() << "UDP sockets unavailable in this sandbox";

  // The 48-bit id follows the prototype rule: loopback address + OS port.
  EXPECT_EQ(a->local_id().addr(), 0x7F000001u);
  EXPECT_NE(a->local_id().port(), 0);
  EXPECT_NE(a->local_id(), b->local_id());

  std::atomic<int> got{0};
  ServiceId from{};
  Bytes payload;
  b->set_receive_handler([&](ServiceId src, BytesView data) {
    from = src;
    payload = Bytes(data.begin(), data.end());
    got.fetch_add(1);
    ex.stop();
  });
  a->send(b->local_id(), to_bytes("over real sockets"));
  ex.run_for(seconds(5));

  ASSERT_EQ(got.load(), 1);
  EXPECT_EQ(from, a->local_id());
  EXPECT_EQ(to_string(payload), "over real sockets");
}

TEST(UdpTransport, BroadcastReachesOtherEndpointsNotSelf) {
  RealExecutor ex;
  auto a = try_open(ex, 46902);
  auto b = try_open(ex, 46902);
  auto c = try_open(ex, 46902);
  if (!a || !b || !c) GTEST_SKIP() << "UDP sockets unavailable";

  std::atomic<int> got_a{0};
  std::atomic<int> got_b{0};
  std::atomic<int> got_c{0};
  a->set_receive_handler([&](ServiceId, BytesView) { got_a.fetch_add(1); });
  b->set_receive_handler([&](ServiceId, BytesView) { got_b.fetch_add(1); });
  c->set_receive_handler([&](ServiceId, BytesView) { got_c.fetch_add(1); });

  a->broadcast(to_bytes("beacon"));
  ex.run_for(milliseconds(1500));

  if (got_b.load() == 0 && got_c.load() == 0) {
    GTEST_SKIP() << "loopback multicast unavailable in this sandbox";
  }
  EXPECT_EQ(got_a.load(), 0);  // no self-delivery
  EXPECT_GE(got_b.load(), 1);
  EXPECT_GE(got_c.load(), 1);
}

// The batched (recvmmsg/sendmmsg) and legacy (recvfrom/sendto) paths are
// byte-identical on the wire: either side may run either mode and the
// payloads and per-peer order must come through unchanged.
void check_interop(bool sender_batched, bool receiver_batched) {
  RealExecutor ex;
  auto tx = try_open(ex, 46903, sender_batched);
  auto rx = try_open(ex, 46903, receiver_batched);
  if (!tx || !rx) GTEST_SKIP() << "UDP sockets unavailable in this sandbox";

  constexpr std::uint32_t kCount = 200;
  std::vector<std::uint32_t> seen;
  std::vector<std::size_t> sizes;
  rx->set_receive_handler([&](ServiceId src, BytesView data) {
    EXPECT_EQ(src, tx->local_id());
    ASSERT_GE(data.size(), 4u);
    std::uint32_t n = 0;
    std::memcpy(&n, data.data(), sizeof(n));
    seen.push_back(n);
    sizes.push_back(data.size());
    if (seen.size() == kCount) ex.stop();
  });

  // Mixed burst sizes exercise both single sends and sendmmsg flushes.
  std::vector<Bytes> payloads;
  payloads.reserve(kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    payloads.push_back(seq_payload(i, /*pad=*/i % 97));
  }
  std::size_t i = 0;
  while (i < kCount) {
    std::size_t burst = std::min<std::size_t>(1 + i % 7, kCount - i);
    std::vector<Transport::Datagram> dgrams;
    for (std::size_t k = 0; k < burst; ++k) {
      dgrams.push_back(
          Transport::Datagram{rx->local_id(), BytesView(payloads[i + k])});
    }
    tx->send_batch(dgrams);
    i += burst;
  }
  ex.run_for(seconds(10));

  ASSERT_EQ(seen.size(), kCount) << "loopback dropped datagrams";
  for (std::uint32_t n = 0; n < kCount; ++n) {
    EXPECT_EQ(seen[n], n);                 // per-peer FIFO
    EXPECT_EQ(sizes[n], 4u + n % 97);      // byte-identical payloads
  }
}

TEST(UdpTransport, InteropBatchedSenderLegacyReceiver) {
  check_interop(/*sender_batched=*/true, /*receiver_batched=*/false);
}

TEST(UdpTransport, InteropLegacySenderBatchedReceiver) {
  check_interop(/*sender_batched=*/false, /*receiver_batched=*/true);
}

TEST(UdpTransport, BatchedCountersAndFreelistRecycle) {
  RealExecutor ex;
  auto tx = try_open(ex, 46904, true);
  auto rx = try_open(ex, 46904, true);
  if (!tx || !rx) GTEST_SKIP() << "UDP sockets unavailable in this sandbox";

  constexpr std::uint32_t kCount = 512;
  std::atomic<std::uint32_t> got{0};
  rx->set_receive_handler([&](ServiceId, BytesView) {
    if (got.fetch_add(1) + 1 == kCount) ex.stop();
  });

  std::vector<Bytes> payloads;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    payloads.push_back(seq_payload(i, 60));
  }
  for (std::uint32_t i = 0; i < kCount; i += 16) {
    std::vector<Transport::Datagram> dgrams;
    for (std::uint32_t k = 0; k < 16; ++k) {
      dgrams.push_back(
          Transport::Datagram{rx->local_id(), BytesView(payloads[i + k])});
    }
    tx->send_batch(dgrams);
  }
  ex.run_for(seconds(10));
  ASSERT_EQ(got.load(), kCount) << "loopback dropped datagrams";

  UdpTransportStats txs = tx->stats();
  EXPECT_EQ(txs.datagrams_sent, kCount);
  EXPECT_EQ(txs.send_failures, 0u);
  EXPECT_GT(txs.bytes_sent, 0u);
#if defined(AMUSE_HAVE_MMSG)
  // 16-datagram bursts through sendmmsg: far fewer syscalls than sends.
  EXPECT_GT(txs.batches_sent, 0u);
  EXPECT_LT(txs.send_syscalls, txs.datagrams_sent);
#endif

  UdpTransportStats rxs = rx->stats();
  EXPECT_EQ(rxs.datagrams_received, kCount);
  EXPECT_GT(rxs.recv_syscalls, 0u);
  EXPECT_GE(rxs.max_recv_batch, 1u);
  // The freelist must actually recycle: without it every acquire would be a
  // fresh allocation, so fresh >= kCount. How far below kCount fresh lands
  // depends on delivery-task lag (in-flight batches hold their slots), so
  // only the strict saving is asserted, not a fixed pool-depth bound.
  EXPECT_GT(rxs.buffers_recycled, 0u);
  EXPECT_GT(rxs.buffers_fresh, 0u);
  EXPECT_LT(rxs.buffers_fresh, kCount);
}

TEST(UdpTransport, ShardedPoolPreservesPerPeerFifo) {
  ExecutorPool pool({2, /*pin_threads=*/false});
  UdpOptions opts;
  opts.broadcast_port = 46905;
  std::unique_ptr<UdpTransport> rx;
  try {
    rx = UdpTransport::open(pool, opts);
  } catch (const std::system_error&) {
    GTEST_SKIP() << "UDP sockets unavailable in this sandbox";
  }
  RealExecutor tx_ex;
  auto tx_a = try_open(tx_ex, 46905);
  auto tx_b = try_open(tx_ex, 46905);
  if (!tx_a || !tx_b) GTEST_SKIP() << "UDP sockets unavailable";

  constexpr std::uint32_t kPerPeer = 150;
  Mutex mu;
  std::map<std::uint64_t, std::vector<std::uint32_t>> per_peer;
  std::atomic<std::uint32_t> total{0};
  rx->set_receive_handler([&](ServiceId src, BytesView data) {
    std::uint32_t n = 0;
    std::memcpy(&n, data.data(), sizeof(n));
    {
      MutexLock lock(mu);
      per_peer[src.raw()].push_back(n);
    }
    total.fetch_add(1);
  });

  for (std::uint32_t i = 0; i < kPerPeer; ++i) {
    tx_a->send(rx->local_id(), seq_payload(i));
    tx_b->send(rx->local_id(), seq_payload(i));
  }
  for (int spins = 0; spins < 100 && total.load() < 2 * kPerPeer; ++spins) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  ASSERT_EQ(total.load(), 2 * kPerPeer) << "loopback dropped datagrams";

  MutexLock lock(mu);
  ASSERT_EQ(per_peer.size(), 2u);
  for (auto& [peer, seqs] : per_peer) {
    ASSERT_EQ(seqs.size(), kPerPeer);
    for (std::uint32_t n = 0; n < kPerPeer; ++n) {
      EXPECT_EQ(seqs[n], n) << "per-peer FIFO broken for " << peer;
    }
  }
  rx.reset();
  pool.stop();
}

TEST(RealExecutor, StatsCountBatchDrains) {
  RealExecutor ex;
  std::atomic<int> ran{0};
  // All four tasks are queued before run_for() starts, so the first drain
  // collects them as one batch under one lock acquisition.
  for (int i = 0; i < 3; ++i) {
    ex.post([&ran] { ran.fetch_add(1); });
  }
  ex.post([&ex] { ex.stop(); });
  ex.run_for(seconds(30));
  EXPECT_EQ(ran.load(), 3);

  RealExecutorStats s = ex.stats();
  EXPECT_EQ(s.tasks_run, 4u);
  EXPECT_EQ(s.wakeups, 1u);
  EXPECT_EQ(s.max_drain, 4u);
}

TEST(RealExecutor, RunsPostedTasksAndTimers) {
  RealExecutor ex;
  std::vector<int> order;
  ex.post([&] { order.push_back(1); });
  ex.schedule_after(milliseconds(30), [&] {
    order.push_back(2);
    ex.stop();
  });
  ex.run_for(seconds(5));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(RealExecutor, CancelWorks) {
  RealExecutor ex;
  bool ran = false;
  TimerId id = ex.schedule_after(milliseconds(20), [&] { ran = true; });
  ex.cancel(id);
  ex.run_for(milliseconds(100));
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace amuse
