// Real-UDP transport smoke tests (the prototype configuration, §IV).
// Skipped gracefully where the sandbox forbids sockets or multicast.
#include "net/udp_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "sim/real_executor.hpp"

namespace amuse {
namespace {

std::unique_ptr<UdpTransport> try_open(Executor& ex, std::uint16_t bport) {
  UdpOptions opts;
  opts.broadcast_port = bport;
  try {
    return UdpTransport::open(ex, opts);
  } catch (const std::system_error& e) {
    return nullptr;
  }
}

TEST(UdpTransport, UnicastRoundTripOnLocalhost) {
  RealExecutor ex;
  auto a = try_open(ex, 46901);
  auto b = try_open(ex, 46901);
  if (!a || !b) GTEST_SKIP() << "UDP sockets unavailable in this sandbox";

  // The 48-bit id follows the prototype rule: loopback address + OS port.
  EXPECT_EQ(a->local_id().addr(), 0x7F000001u);
  EXPECT_NE(a->local_id().port(), 0);
  EXPECT_NE(a->local_id(), b->local_id());

  std::atomic<int> got{0};
  ServiceId from{};
  Bytes payload;
  b->set_receive_handler([&](ServiceId src, BytesView data) {
    from = src;
    payload = Bytes(data.begin(), data.end());
    got.fetch_add(1);
    ex.stop();
  });
  a->send(b->local_id(), to_bytes("over real sockets"));
  ex.run_for(seconds(5));

  ASSERT_EQ(got.load(), 1);
  EXPECT_EQ(from, a->local_id());
  EXPECT_EQ(to_string(payload), "over real sockets");
}

TEST(UdpTransport, BroadcastReachesOtherEndpointsNotSelf) {
  RealExecutor ex;
  auto a = try_open(ex, 46902);
  auto b = try_open(ex, 46902);
  auto c = try_open(ex, 46902);
  if (!a || !b || !c) GTEST_SKIP() << "UDP sockets unavailable";

  std::atomic<int> got_a{0};
  std::atomic<int> got_b{0};
  std::atomic<int> got_c{0};
  a->set_receive_handler([&](ServiceId, BytesView) { got_a.fetch_add(1); });
  b->set_receive_handler([&](ServiceId, BytesView) { got_b.fetch_add(1); });
  c->set_receive_handler([&](ServiceId, BytesView) { got_c.fetch_add(1); });

  a->broadcast(to_bytes("beacon"));
  ex.run_for(milliseconds(1500));

  if (got_b.load() == 0 && got_c.load() == 0) {
    GTEST_SKIP() << "loopback multicast unavailable in this sandbox";
  }
  EXPECT_EQ(got_a.load(), 0);  // no self-delivery
  EXPECT_GE(got_b.load(), 1);
  EXPECT_GE(got_c.load(), 1);
}

TEST(RealExecutor, RunsPostedTasksAndTimers) {
  RealExecutor ex;
  std::vector<int> order;
  ex.post([&] { order.push_back(1); });
  ex.schedule_after(milliseconds(30), [&] {
    order.push_back(2);
    ex.stop();
  });
  ex.run_for(seconds(5));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(RealExecutor, CancelWorks) {
  RealExecutor ex;
  bool ran = false;
  TimerId id = ex.schedule_after(milliseconds(20), [&] { ran = true; });
  ex.cancel(id);
  ex.run_for(milliseconds(100));
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace amuse
