// Full-system integration tests: the complete SMC (bus + discovery + policy
// + proxies + devices) running over the simulated wireless network —
// the paper's body-area-network scenario end to end, plus delivery-semantics
// property tests under lossy links.
#include <gtest/gtest.h>

#include "devices/actuators.hpp"
#include "devices/console.hpp"
#include "devices/sensors.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "smc/cell.hpp"
#include "smc/member.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

const Bytes kPsk = to_bytes("integration-key");

struct SmcFixture : ::testing::Test {
  explicit SmcFixture(LinkModel link = profiles::usb_ip_link())
      : net(ex, 20260706) {
    net.set_default_link(link);
    core = &net.add_host("pda-core", profiles::ideal_host());

    SmcCellConfig cfg;
    cfg.name = "patient-cell";
    cfg.pre_shared_key = kPsk;
    cfg.discovery.beacon_interval = milliseconds(400);
    cfg.discovery.heartbeat_interval = milliseconds(400);
    cfg.discovery.suspect_after = seconds(2);
    cfg.discovery.purge_after = seconds(6);
    cfg.discovery.sweep_interval = milliseconds(200);
    cell = std::make_unique<SelfManagedCell>(ex, net.create_endpoint(*core),
                                             net.create_endpoint(*core), cfg);
    register_vital_sensor_proxies(cell->bus().factory());
    register_actuator_proxies(cell->bus().factory());
  }

  SimExecutor ex;
  SimNetwork net;
  SimHost* core = nullptr;
  std::unique_ptr<SelfManagedCell> cell;
};

TEST_F(SmcFixture, BodyAreaNetworkEndToEnd) {
  // The motivating scenario (§I): sensors on the patient, obligation
  // policies raising a cardiac alarm, a defibrillator triggered by it and
  // a nurse console observing everything.
  cell->load_policies(R"(
    policy cardiac_alarm on vitals.heartrate
      when hr > 150
      do publish alarm.cardiac { level = "critical", hr = hr,
                                 member = member };
    policy defib on alarm.cardiac
      when level == "critical"
      do publish actuator.defib.fire { joules = 150 };
    auth deny role "sensor" subscribe "vitals.*";
    auth default permit;
  )");
  cell->start();

  auto patient = std::make_shared<PatientBody>(ex, 555);
  SimHost& body = net.add_host("body", profiles::ideal_host());

  VitalSensor hr_sensor(ex, net.create_endpoint(body), patient,
                        VitalKind::kHeartRate,
                        sensor_device_config(VitalKind::kHeartRate,
                                             "patient-cell", kPsk,
                                             milliseconds(400)));
  VitalSensor temp_sensor(ex, net.create_endpoint(body), patient,
                          VitalKind::kTemperature,
                          sensor_device_config(VitalKind::kTemperature,
                                               "patient-cell", kPsk,
                                               milliseconds(800)));
  DefibrillatorDevice defib(
      ex, net.create_endpoint(body),
      actuator_device_config("actuator.defibrillator", "patient-cell", kPsk));

  SimHost& pda = net.add_host("nurse-pda", profiles::ideal_host());
  NurseConsole console(ex, net.create_endpoint(pda), "patient-cell", kPsk);

  hr_sensor.start();
  temp_sensor.start();
  defib.start();
  console.start();

  // Let everyone join and vitals flow at baseline.
  ex.run_for(seconds(10));
  ASSERT_TRUE(hr_sensor.joined());
  ASSERT_TRUE(temp_sensor.joined());
  ASSERT_TRUE(defib.joined());
  ASSERT_TRUE(console.joined());
  EXPECT_EQ(cell->bus().members().size(), 4u);
  EXPECT_GT(console.vitals_received(), 5u);
  EXPECT_TRUE(console.alarms().empty());  // baseline vitals: no alarm

  // Force a cardiac episode.
  patient->model().trigger_episode();
  for (int i = 0; i < 40; ++i) {
    ex.run_for(milliseconds(500));
    patient->model().trigger_episode();  // hold it open
  }

  // The policy chain fired: alarm → defibrillator.
  EXPECT_FALSE(console.alarms().empty());
  EXPECT_FALSE(defib.activations().empty());
  EXPECT_DOUBLE_EQ(defib.activations()[0].joules, 150.0);
  // Status event came back from the actuator through its proxy.
  EXPECT_GT(cell->obligations().stats().publishes, 0u);

  // Authorisation: the sensors' proxies could not subscribe to vitals even
  // if they tried; nurse console could. Check nothing was denied for the
  // console and that publish flow was permitted throughout.
  EXPECT_EQ(cell->bus().stats().denied_publish, 0u);
}

TEST_F(SmcFixture, MemberEventsAppearOnBus) {
  cell->start();
  std::vector<std::string> events;
  cell->bus().subscribe_local(Filter::for_type_prefix("smc.member."),
                              [&](const Event& e) {
                                events.emplace_back(e.type());
                              });
  SimHost& host = net.add_host("dev", profiles::ideal_host());
  SmcMemberConfig mc;
  mc.agent.cell_name = "patient-cell";
  mc.agent.pre_shared_key = kPsk;
  mc.agent.device_type = "svc";
  auto m = std::make_unique<SmcMember>(ex, net.create_endpoint(host), mc);
  m->start();
  ex.run_for(seconds(3));
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0], smc_events::kNewMember);

  host.set_up(false);
  ex.run_for(seconds(10));
  EXPECT_EQ(events.back(), smc_events::kPurgeMember);
  bool saw_suspect = false;
  for (const auto& t : events) {
    if (t == smc_events::kSuspectMember) saw_suspect = true;
  }
  EXPECT_TRUE(saw_suspect);
}

TEST_F(SmcFixture, PersistentDeliveryAcrossTransientDisconnect) {
  cell->start();
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  SimHost& sub_host = net.add_host("sub", profiles::ideal_host());

  auto make = [&](SimHost& h, const char* type) {
    SmcMemberConfig mc;
    mc.agent.cell_name = "patient-cell";
    mc.agent.pre_shared_key = kPsk;
    mc.agent.device_type = type;
    mc.agent.cell_lost_after = seconds(60);  // don't give up during the test
    return std::make_unique<SmcMember>(ex, net.create_endpoint(h), mc);
  };
  auto pub = make(pub_host, "svc.pub");
  auto sub = make(sub_host, "svc.sub");
  std::vector<std::int64_t> got;
  sub->subscribe(Filter::for_type("seq"),
                 [&](const Event& e) { got.push_back(e.get_int("n")); });
  pub->start();
  sub->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(pub->joined() && sub->joined());

  pub->publish(Event("seq", {{"n", 0}}));
  ex.run_for(seconds(1));
  ASSERT_EQ(got.size(), 1u);

  // Subscriber vanishes briefly (shorter than purge_after = 6 s); events
  // published meanwhile must be queued by its proxy and delivered on
  // return — "queueing and repeating attempts to deliver events to
  // services which are unavailable, but have not yet been declared to
  // have left the SMC" (§VI).
  sub_host.set_up(false);
  ex.run_for(seconds(1));
  for (int i = 1; i <= 5; ++i) pub->publish(Event("seq", {{"n", i}}));
  ex.run_for(seconds(2));
  EXPECT_EQ(got.size(), 1u);  // nothing arrived while down

  sub_host.set_up(true);
  ex.run_for(seconds(20));
  ASSERT_EQ(got.size(), 6u);
  for (int i = 0; i <= 5; ++i) EXPECT_EQ(got[i], i);
  EXPECT_TRUE(cell->bus().has_member(sub->id()));  // never purged
}

TEST_F(SmcFixture, PurgeDestroysQueuedEventsAndRejoinStartsClean) {
  cell->start();
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  SimHost& sub_host = net.add_host("sub", profiles::ideal_host());
  SmcMemberConfig mc;
  mc.agent.cell_name = "patient-cell";
  mc.agent.pre_shared_key = kPsk;
  auto pub = std::make_unique<SmcMember>(ex, net.create_endpoint(pub_host), mc);
  SmcMemberConfig mc2 = mc;
  mc2.agent.cell_lost_after = seconds(3);
  auto sub = std::make_unique<SmcMember>(ex, net.create_endpoint(sub_host), mc2);
  std::vector<std::int64_t> got;
  sub->subscribe(Filter::for_type("seq"),
                 [&](const Event& e) { got.push_back(e.get_int("n")); });
  pub->start();
  sub->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(sub->joined());

  // Down long enough to be purged (purge_after = 6 s).
  sub_host.set_up(false);
  ex.run_for(seconds(1));
  for (int i = 0; i < 5; ++i) pub->publish(Event("seq", {{"n", i}}));
  ex.run_for(seconds(8));
  EXPECT_FALSE(cell->bus().has_member(sub->id()));

  // Rejoin: queued events were destroyed with the proxy; only new events
  // flow — exactly-once "as long as the component remains a member".
  sub_host.set_up(true);
  ex.run_for(seconds(8));
  ASSERT_TRUE(sub->joined());
  pub->publish(Event("seq", {{"n", 100}}));
  ex.run_for(seconds(3));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 100);
}

TEST_F(SmcFixture, RejoinAfterPurgeRejectsOldIncarnationBacklog) {
  // Converse of the test above, exercising the race it cannot reach: the
  // old proxy's seq-0 DATA frame (the queued backlog — nothing was ever
  // acknowledged, so the queue head is seq 0) is still in flight when the
  // purged member rejoins. A fresh receiver adopts new peer streams at
  // seq 0, so without the admission-session floor it would adopt the stale
  // frame and deliver the previous incarnation's backlog.
  cell->start();
  SimHost& pub_host = net.add_host("pub", profiles::ideal_host());
  SimHost& sub_host = net.add_host("sub", profiles::ideal_host());
  SmcMemberConfig mc;
  mc.agent.cell_name = "patient-cell";
  mc.agent.pre_shared_key = kPsk;
  auto pub = std::make_unique<SmcMember>(ex, net.create_endpoint(pub_host), mc);
  SmcMemberConfig mc2 = mc;
  mc2.agent.cell_lost_after = seconds(3);
  auto sub = std::make_unique<SmcMember>(ex, net.create_endpoint(sub_host), mc2);
  std::vector<std::int64_t> got;
  sub->subscribe(Filter::for_type("seq"),
                 [&](const Event& e) { got.push_back(e.get_int("n")); });
  pub->start();
  sub->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(pub->joined() && sub->joined());

  // Asymmetric outage: sub → core drops everything (heartbeats vanish, so
  // the member is purged), while core → sub *delays* every frame by 9 s
  // instead of dropping it. The old proxy's backlog retransmissions are
  // therefore still in flight long after the proxy itself is destroyed,
  // and land only once the member has rejoined.
  LinkModel drop = net.default_link();
  drop.loss = 1.0;
  LinkModel slow = net.default_link();
  slow.latency_min = seconds(9);
  slow.latency_spread = Duration{};
  net.update_link_oneway(sub_host, *core, drop);
  net.update_link_oneway(*core, sub_host, slow);

  ex.run_for(milliseconds(500));
  for (int i = 0; i < 5; ++i) pub->publish(Event("seq", {{"n", i}}));
  ex.run_for(seconds(8));  // silence → suspect → purge (purge_after = 6 s)
  EXPECT_FALSE(cell->bus().has_member(sub->id()));

  // Heal both directions. Frames already in flight keep their slow arrival
  // times: the stale seq-0 retransmissions arrive *after* the rejoin.
  net.update_link_oneway(sub_host, *core, net.default_link());
  net.update_link_oneway(*core, sub_host, net.default_link());
  ex.run_for(seconds(10));
  ASSERT_TRUE(sub->joined());
  EXPECT_GE(sub->stats().joins, 2u);

  // The old incarnation's backlog was rejected at the channel, not
  // delivered: the race genuinely happened (stale frames reached the fresh
  // client) and nothing leaked across the purge.
  ASSERT_NE(sub->client(), nullptr);
  EXPECT_GE(sub->client()->channel_stats().stale_session_dropped, 1u);
  EXPECT_TRUE(got.empty());

  // The new incarnation's traffic flows normally.
  pub->publish(Event("seq", {{"n", 100}}));
  ex.run_for(seconds(3));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 100);
}

TEST(SmcZigbee, LargeEventsCrossSmallMtuTransport) {
  // §VI: migration to ZigBee. Its 1024 B MTU cannot carry a 2 KB event in
  // one datagram; channel-level fragmentation makes the same bus code work.
  SimExecutor ex;
  SimNetwork net(ex, 99);
  net.set_default_link(profiles::zigbee_link());
  SimHost& core = net.add_host("core", profiles::ideal_host());
  SimHost& dev = net.add_host("dev", profiles::ideal_host());

  SmcCellConfig cfg;
  cfg.name = "zigbee-cell";
  cfg.pre_shared_key = kPsk;
  cfg.bus.channel.max_fragment_payload = 700;
  cfg.discovery.beacon_interval = milliseconds(400);
  cfg.discovery.heartbeat_interval = milliseconds(400);
  cfg.discovery.purge_after = seconds(60);
  SelfManagedCell cell(ex, net.create_endpoint(core),
                       net.create_endpoint(core), cfg);
  cell.start();

  auto make = [&](const char* type) {
    SmcMemberConfig mc;
    mc.agent.cell_name = "zigbee-cell";
    mc.agent.pre_shared_key = kPsk;
    mc.agent.device_type = type;
    mc.agent.cell_lost_after = seconds(60);
    mc.channel.max_fragment_payload = 700;
    return std::make_unique<SmcMember>(ex, net.create_endpoint(dev), mc);
  };
  auto pub = make("svc.pub");
  auto sub = make("svc.sub");
  std::vector<std::size_t> sizes;
  sub->subscribe(Filter::for_type("bulk"), [&](const Event& e) {
    sizes.push_back(e.get("data")->as_bytes().size());
  });
  pub->start();
  sub->start();
  ex.run_for(seconds(10));
  ASSERT_TRUE(pub->joined() && sub->joined());

  for (int i = 0; i < 3; ++i) {
    Event e("bulk");
    e.set("data", Bytes(2000 + static_cast<std::size_t>(i), 0x77));
    pub->publish(std::move(e));
  }
  ex.run_for(seconds(60));
  ASSERT_EQ(sizes.size(), 3u);  // exactly once each, despite bursty loss
  EXPECT_EQ(sizes[0], 2000u);
  EXPECT_EQ(sizes[2], 2002u);
  EXPECT_EQ(net.stats().dropped_mtu, 0u);  // nothing exceeded the MTU
}

// Delivery semantics under sustained loss, for both engines.
class LossyBusSemantics
    : public ::testing::TestWithParam<std::tuple<BusEngine, std::uint64_t>> {
};

TEST_P(LossyBusSemantics, ExactlyOncePerSenderFifoUnderLoss) {
  auto [engine, seed] = GetParam();
  SimExecutor ex;
  SimNetwork net(ex, seed);
  LinkModel lossy = profiles::usb_ip_link();
  lossy.loss = 0.15;
  lossy.dup = 0.05;
  net.set_default_link(lossy);
  SimHost& core = net.add_host("core", profiles::ideal_host());

  SmcCellConfig cfg;
  cfg.name = "cell";
  cfg.pre_shared_key = kPsk;
  cfg.bus.engine = engine;
  cfg.discovery.beacon_interval = milliseconds(300);
  cfg.discovery.heartbeat_interval = milliseconds(300);
  cfg.discovery.purge_after = seconds(30);
  SelfManagedCell cell(ex, net.create_endpoint(core),
                       net.create_endpoint(core), cfg);
  cell.start();

  SimHost& h1 = net.add_host("p1", profiles::ideal_host());
  SimHost& h2 = net.add_host("p2", profiles::ideal_host());
  SimHost& h3 = net.add_host("s", profiles::ideal_host());
  auto make = [&](SimHost& h) {
    SmcMemberConfig mc;
    mc.agent.cell_name = "cell";
    mc.agent.pre_shared_key = kPsk;
    mc.agent.cell_lost_after = seconds(60);
    return std::make_unique<SmcMember>(ex, net.create_endpoint(h), mc);
  };
  auto pub1 = make(h1);
  auto pub2 = make(h2);
  auto sub = make(h3);

  std::map<std::uint64_t, std::vector<std::int64_t>> by_sender;
  sub->subscribe(Filter::for_type("seq"), [&](const Event& e) {
    by_sender[e.publisher().raw()].push_back(e.get_int("n"));
  });
  pub1->start();
  pub2->start();
  sub->start();
  ex.run_for(seconds(5));
  ASSERT_TRUE(pub1->joined() && pub2->joined() && sub->joined());

  constexpr int kEach = 40;
  for (int i = 0; i < kEach; ++i) {
    int delay = i * 100;
    ex.schedule_after(milliseconds(delay), [&, i] {
      pub1->publish(Event("seq", {{"n", i}}));
    });
    ex.schedule_after(milliseconds(delay + 50), [&, i] {
      pub2->publish(Event("seq", {{"n", i}}));
    });
  }
  ex.run_for(seconds(120));

  // Exactly once, in order, per sender — interleaving across senders free.
  ASSERT_EQ(by_sender.size(), 2u);
  for (const auto& [sender, seqs] : by_sender) {
    ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kEach))
        << "sender " << sender << " engine " << to_string(engine);
    for (int i = 0; i < kEach; ++i) EXPECT_EQ(seqs[i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSeeds, LossyBusSemantics,
    ::testing::Combine(::testing::Values(BusEngine::kCBased,
                                         BusEngine::kSienaBased),
                       ::testing::Values(11, 22, 33)));

}  // namespace
}  // namespace amuse
