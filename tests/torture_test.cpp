// Protocol-torture smoke test (ctest label "torture"): random fault
// schedules replayed against both matching engines, checked by the
// DeliveryOracle. On a violation the harness shrinks the schedule to a
// minimal failing sub-schedule, dumps a replayable trace and prints the
// one-line reproduction command.
//
// Environment:
//   TORTURE_SEED=<n>   replay exactly one seed (both engines);
//   TORTURE_SEEDS=<k>  run k consecutive seeds (default 20; fewer under
//                      sanitizers);
//   TORTURE_TRACE_DIR  where failing traces are written (default: cwd).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"
#include "torture/driver.hpp"
#include "torture/failover.hpp"
#include "torture/multicell.hpp"
#include "torture/shrink.hpp"

namespace amuse {
namespace {

using torture::Schedule;
using torture::TortureConfig;
using torture::TortureResult;

constexpr std::uint64_t kBaseSeed = 0x702e5eed;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kDefaultSeeds = 8;
#else
constexpr int kDefaultSeeds = 20;
#endif

std::string dump_trace(const Schedule& schedule, const TortureConfig& config,
                       const TortureResult& result) {
  const char* dir = std::getenv("TORTURE_TRACE_DIR");
  std::string path = std::string(dir != nullptr ? dir : ".") +
                     "/torture_trace_seed" + std::to_string(schedule.seed) +
                     "_" + to_string(config.engine) + ".txt";
  std::ofstream out(path);
  out << torture::format_trace(schedule, config, result);
  return path;
}

void run_seed(std::uint64_t seed, BusEngine engine) {
  TortureConfig config;
  config.engine = engine;
  Schedule schedule = torture::generate_schedule(seed, config);
  TortureResult result = torture::run_torture(schedule, config);
  if (std::getenv("TORTURE_VERBOSE") != nullptr) {
    std::fprintf(stderr,
                 "[torture] seed %llu engine %s: steps=%zu publishes=%llu "
                 "deliveries=%llu %s\n",
                 static_cast<unsigned long long>(seed), to_string(engine),
                 schedule.steps.size(),
                 static_cast<unsigned long long>(result.publishes),
                 static_cast<unsigned long long>(result.deliveries),
                 result.ok ? "ok" : result.invariant.c_str());
  }
  if (result.ok) {
    EXPECT_GT(result.publishes, 0u) << "schedule published nothing; the "
                                       "generator lost its publish weight";
    return;
  }

  torture::ShrinkResult small = torture::shrink(schedule, config);
  std::string trace = dump_trace(small.schedule, config, small.result);
  FAIL() << "delivery-guarantee violation [" << result.invariant << "] "
         << result.violation << "\n  seed " << seed << ", engine "
         << to_string(engine) << "\n  shrunk to "
         << small.schedule.steps.size() << " steps (from "
         << schedule.steps.size() << ", " << small.runs
         << " shrink runs): [" << small.result.invariant << "] "
         << small.result.violation << "\n  trace written to " << trace
         << "\n  reproduce with: TORTURE_SEED=" << seed
         << " ctest -R torture.smoke --output-on-failure";
}

TEST(Torture, Smoke) {
  std::vector<std::uint64_t> seeds;
  if (const char* one = std::getenv("TORTURE_SEED")) {
    seeds.push_back(std::strtoull(one, nullptr, 0));
  } else {
    int count = kDefaultSeeds;
    if (const char* many = std::getenv("TORTURE_SEEDS")) {
      count = std::max(1, std::atoi(many));
    }
    for (int i = 0; i < count; ++i) {
      seeds.push_back(kBaseSeed + static_cast<std::uint64_t>(i));
    }
  }
  for (std::uint64_t seed : seeds) {
    for (BusEngine engine : {BusEngine::kCBased, BusEngine::kSienaBased}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " engine " +
                   std::string(to_string(engine)));
      run_seed(seed, engine);
      if (HasFatalFailure()) return;  // trace dumped; stop at first failure
    }
  }
}

// Directed slow-consumer run (ctest: torture.slow_consumer, label
// "overload"): one member's inbound link is blackholed (its own heartbeats
// keep it admitted) while another floods, so the proxy queue overflows the
// tight per-member delivery budget. The run must still satisfy the oracle:
// healthy members receive every event in FIFO order, and each delivery
// missing at the stalled member is covered by a shed record — the refined
// guarantee (c), "accounted, never silent".
TEST(Torture, SlowConsumer) {
  using torture::TortureOp;
  using torture::TortureStep;
  for (BusEngine engine : {BusEngine::kCBased, BusEngine::kSienaBased}) {
    SCOPED_TRACE(std::string("engine ") + to_string(engine));
    TortureConfig config;
    config.engine = engine;
    Schedule schedule;
    schedule.seed = 0x51000;
    // Stall shorter than the agent's cell-lost timeout (2 s): member 0
    // stays joined on both sides the whole time, so guarantee (c) applies
    // to it and only shed records may excuse its missing deliveries.
    schedule.steps = {
        TortureStep{from_seconds(0.5), TortureOp::kStall, 0},
        TortureStep{from_seconds(0.7), TortureOp::kBurst, 1, 40},
        TortureStep{from_seconds(2.2), TortureOp::kLinkHeal, 0},
    };
    TortureResult result = torture::run_torture(schedule, config);
    EXPECT_TRUE(result.ok) << "[" << result.invariant << "] "
                           << result.violation;
    // 40 events × ~100 encoded bytes against a 2 KB per-member budget must
    // overflow: the machinery under test has to actually engage.
    EXPECT_GT(result.sheds, 0u)
        << "stall+burst never tripped the delivery budget";
    EXPECT_GT(result.deliveries, 0u);
  }
}

TEST(Torture, ScheduleGenerationIsDeterministic) {
  TortureConfig config;
  Schedule a = torture::generate_schedule(42, config);
  Schedule b = torture::generate_schedule(42, config);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].to_string(), b.steps[i].to_string());
  }
  Schedule c = torture::generate_schedule(43, config);
  bool identical = a.steps.size() == c.steps.size();
  if (identical) {
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
      identical = identical && a.steps[i].to_string() == c.steps[i].to_string();
    }
  }
  EXPECT_FALSE(identical) << "different seeds produced identical schedules";
}

// The scriptable fault surface the driver relies on, covered directly.

TEST(SimNetworkFaults, PartitionBlocksTrafficUntilHealed) {
  SimExecutor ex;
  SimNetwork net(ex, 7);
  SimHost& a = net.add_host("a", CostModel{});
  SimHost& b = net.add_host("b", CostModel{});
  auto ea = net.create_endpoint(a);
  auto eb = net.create_endpoint(b);
  int received = 0;
  eb->set_receive_handler([&](ServiceId, BytesView) { ++received; });

  net.set_partition_group(a, 1);
  net.set_partition_group(b, 2);
  ea->send(eb->local_id(), to_bytes("x"));
  ex.run_for(seconds(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped_partition, 1u);

  net.clear_partitions();
  ea->send(eb->local_id(), to_bytes("x"));
  ex.run_for(seconds(1));
  EXPECT_EQ(received, 1);
}

// ---- Multi-cell federation torture (ctest: torture.multicell, labels
// "torture;federation"): seeded fault schedules against line/tree/cycle
// broker overlays — gateway host crashes straddling the purge timeout,
// member churn, lossy links — checked by the cross-cell oracle in
// tests/torture/multicell.hpp. MULTICELL_TOPOLOGY=line|tree|cycle
// restricts the sweep (the CI seed matrix cranks TORTURE_SEEDS on cycle,
// the topology with genuinely disjoint multipaths).

std::string dump_multicell_trace(const torture::McSchedule& schedule,
                                 const torture::McConfig& config,
                                 const torture::McResult& result) {
  const char* dir = std::getenv("TORTURE_TRACE_DIR");
  std::string path = std::string(dir != nullptr ? dir : ".") +
                     "/multicell_trace_seed" + std::to_string(schedule.seed) +
                     "_" + torture::to_string(config.topology) + "_" +
                     to_string(config.engine) + ".txt";
  std::ofstream out(path);
  out << torture::format_multicell_trace(schedule, config, result);
  return path;
}

void run_multicell_seed(std::uint64_t seed, torture::McTopology topology,
                        BusEngine engine) {
  torture::McConfig config;
  config.engine = engine;
  config.topology = topology;
  torture::McSchedule schedule =
      torture::generate_multicell_schedule(seed, config);
  torture::McResult result = torture::run_multicell(schedule, config);
  if (std::getenv("TORTURE_VERBOSE") != nullptr) {
    std::fprintf(
        stderr,
        "[multicell] seed %llu %s/%s: steps=%zu publishes=%llu "
        "deliveries=%llu cross=%llu dups-dropped=%llu suppressed=%llu %s\n",
        static_cast<unsigned long long>(seed), torture::to_string(topology),
        to_string(engine), schedule.steps.size(),
        static_cast<unsigned long long>(result.publishes),
        static_cast<unsigned long long>(result.deliveries),
        static_cast<unsigned long long>(result.cross_cell),
        static_cast<unsigned long long>(result.fed_dups_dropped),
        static_cast<unsigned long long>(result.fed_suppressed),
        result.ok ? "ok" : result.invariant.c_str());
  }
  if (result.ok) {
    // The barrage alone crosses cells, so a run that saw zero cross-cell
    // deliveries means federation never engaged at all.
    EXPECT_GT(result.cross_cell, 0u)
        << "no event ever crossed a cell boundary";
    if (topology == torture::McTopology::kCycle) {
      // Two disjoint paths per pair: the second arrival must be getting
      // dropped somewhere, or the dedup is not actually engaging.
      EXPECT_GT(result.fed_dups_dropped, 0u)
          << "cycle run never exercised multipath dedup";
    }
    return;
  }
  std::string trace = dump_multicell_trace(schedule, config, result);
  FAIL() << "federation-guarantee violation [" << result.invariant << "] "
         << result.violation << "\n  seed " << seed << ", topology "
         << torture::to_string(topology) << ", engine " << to_string(engine)
         << "\n  trace written to " << trace
         << "\n  reproduce with: TORTURE_SEED=" << seed
         << " MULTICELL_TOPOLOGY=" << torture::to_string(topology)
         << " ctest -R torture.multicell --output-on-failure";
}

TEST(MulticellTorture, Smoke) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  int count = 3;
#else
  int count = 6;
#endif
  std::vector<std::uint64_t> seeds;
  if (const char* one = std::getenv("TORTURE_SEED")) {
    seeds.push_back(std::strtoull(one, nullptr, 0));
  } else {
    if (const char* many = std::getenv("TORTURE_SEEDS")) {
      count = std::max(1, std::atoi(many));
    }
    for (int i = 0; i < count; ++i) {
      seeds.push_back(0x3c3110 + static_cast<std::uint64_t>(i));
    }
  }
  std::vector<torture::McTopology> topologies = {torture::McTopology::kLine,
                                                 torture::McTopology::kTree,
                                                 torture::McTopology::kCycle};
  if (const char* only = std::getenv("MULTICELL_TOPOLOGY")) {
    std::string want(only);
    topologies.erase(
        std::remove_if(topologies.begin(), topologies.end(),
                       [&](torture::McTopology t) {
                         return want != torture::to_string(t);
                       }),
        topologies.end());
  }
  for (std::uint64_t seed : seeds) {
    for (torture::McTopology topology : topologies) {
      for (BusEngine engine :
           {BusEngine::kCBased, BusEngine::kSienaBased}) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " topology " +
                     std::string(torture::to_string(topology)) + " engine " +
                     std::string(to_string(engine)));
        run_multicell_seed(seed, topology, engine);
        if (HasFatalFailure()) return;
      }
    }
  }
}

// Directed S6 regression: a gateway host crash that straddles both cells'
// purge timeouts, with interests changing while it is gone. The rejoined
// incarnation must route on a freshly-pushed table — bursts published well
// after recovery still have to reach every cell (the barrage check), and
// nothing may duplicate on the way back in.
TEST(MulticellTorture, GatewayCrashRejoin) {
  using torture::McOp;
  using torture::McStep;
  for (BusEngine engine : {BusEngine::kCBased, BusEngine::kSienaBased}) {
    SCOPED_TRACE(std::string("engine ") + to_string(engine));
    torture::McConfig config;
    config.engine = engine;
    config.topology = torture::McTopology::kLine;
    torture::McSchedule schedule;
    schedule.seed = 0x6c0a1;
    schedule.steps = {
        McStep{from_seconds(0.5), McOp::kBurst, 0, 3},
        // The middle link goes dark for 7 s — well past purge_after (3 s)
        // and cell_lost_after (2 s): both cells purge the gateway and the
        // gateway notices the loss, so recovery is a genuine re-join with
        // a full interest-table resync, not a heartbeat hiccup.
        McStep{from_seconds(2.0), McOp::kGwCrash, 1},
        McStep{from_seconds(3.0), McOp::kBurst, 2, 2},
        McStep{from_seconds(9.0), McOp::kGwRecover, 1},
        McStep{from_seconds(16.0), McOp::kBurst, 0, 3},
        McStep{from_seconds(17.0), McOp::kBurst, 6, 2},
    };
    torture::McResult result = torture::run_multicell(schedule, config);
    EXPECT_TRUE(result.ok) << "[" << result.invariant << "] "
                           << result.violation;
    EXPECT_GT(result.cross_cell, 0u);
  }
}

// ---- HA failover torture (ctest: torture.failover, labels
// "torture;failover"): seeded schedules with one primary core incident —
// crash+revive or split-brain+heal — against an active core plus
// TORTURE_STANDBYS warm standbys (default 2, quorum arbitration), an
// overload cluster straddling the incident, an optional chain crash of the
// promoted winner, plus the usual member fault storm, checked by the
// oracle's failover rules F1–F5 (tests/torture/oracle.hpp). The CI seed
// matrix reruns this with TORTURE_SEEDS=50 on both engines.

std::string dump_failover_trace(const Schedule& schedule,
                                const torture::FailoverConfig& config,
                                const TortureResult& result) {
  const char* dir = std::getenv("TORTURE_TRACE_DIR");
  std::string path = std::string(dir != nullptr ? dir : ".") +
                     "/failover_trace_seed" + std::to_string(schedule.seed) +
                     "_" + to_string(config.engine) + ".txt";
  // format_trace only reads the fields FailoverConfig shares with
  // TortureConfig (engine, members, horizon), so the trace file stays on
  // the one serialiser.
  TortureConfig shadow;
  shadow.engine = config.engine;
  shadow.members = config.members;
  shadow.horizon = config.horizon;
  std::ofstream out(path);
  out << torture::format_trace(schedule, shadow, result);
  return path;
}

void run_failover_seed(std::uint64_t seed, BusEngine engine) {
  if (std::getenv("TORTURE_LOG") != nullptr) {
    set_log_level(LogLevel::kDebug);  // per-event bus/discovery narration
  }
  torture::FailoverConfig config;
  config.engine = engine;
  if (const char* standbys = std::getenv("TORTURE_STANDBYS")) {
    config.standbys = std::max(1, std::atoi(standbys));
  }
  Schedule schedule = torture::generate_failover_schedule(seed, config);
  TortureResult result = torture::run_failover_torture(schedule, config);
  if (std::getenv("TORTURE_VERBOSE") != nullptr) {
    std::fprintf(stderr,
                 "[failover] seed %llu engine %s: steps=%zu publishes=%llu "
                 "deliveries=%llu sheds=%llu %s\n",
                 static_cast<unsigned long long>(seed), to_string(engine),
                 schedule.steps.size(),
                 static_cast<unsigned long long>(result.publishes),
                 static_cast<unsigned long long>(result.deliveries),
                 static_cast<unsigned long long>(result.sheds),
                 result.ok ? "ok" : result.invariant.c_str());
  }
  if (result.ok) {
    EXPECT_GT(result.publishes, 0u) << "schedule published nothing";
    return;
  }
  // No shrinker here: removing the core incident changes which oracle
  // rules even apply, so a shrunk schedule rarely preserves the failure.
  std::string trace = dump_failover_trace(schedule, config, result);
  FAIL() << "failover-guarantee violation [" << result.invariant << "] "
         << result.violation << "\n  seed " << seed << ", engine "
         << to_string(engine) << "\n  trace written to " << trace
         << "\n  reproduce with: TORTURE_SEED=" << seed
         << " ctest -R torture.failover --output-on-failure";
}

TEST(TortureFailover, Smoke) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  int count = 5;
#else
  int count = 10;
#endif
  std::vector<std::uint64_t> seeds;
  if (const char* one = std::getenv("TORTURE_SEED")) {
    seeds.push_back(std::strtoull(one, nullptr, 0));
  } else {
    if (const char* many = std::getenv("TORTURE_SEEDS")) {
      count = std::max(1, std::atoi(many));
    }
    for (int i = 0; i < count; ++i) {
      seeds.push_back(0xFA170 + static_cast<std::uint64_t>(i));
    }
  }
  for (std::uint64_t seed : seeds) {
    for (BusEngine engine : {BusEngine::kCBased, BusEngine::kSienaBased}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " engine " +
                   std::string(to_string(engine)));
      run_failover_seed(seed, engine);
      if (HasFatalFailure()) return;  // trace dumped; stop at first failure
    }
  }
}

// Every failover schedule: exactly one primary core incident, always
// healed; at most one chain crash, always paired with a revive and only on
// crash schedules; an overload stall in every schedule; and none of the
// ops the failover oracle excludes by design.
TEST(TortureFailover, ScheduleShapeAndDeterminism) {
  using torture::TortureOp;
  torture::FailoverConfig config;
  bool any_chain = false;
  for (std::uint64_t seed = 0xFA170; seed < 0xFA170 + 12; ++seed) {
    Schedule a = torture::generate_failover_schedule(seed, config);
    Schedule b = torture::generate_failover_schedule(seed, config);
    ASSERT_EQ(a.steps.size(), b.steps.size());
    int core_incidents = 0;
    int core_heals = 0;
    int core_crashes = 0;
    int chain_crashes = 0;
    int chain_revives = 0;
    int stalls = 0;
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
      EXPECT_EQ(a.steps[i].to_string(), b.steps[i].to_string());
      TortureOp op = a.steps[i].op;
      if (op == TortureOp::kCoreCrash || op == TortureOp::kSplitBrain) {
        ++core_incidents;
      }
      if (op == TortureOp::kCoreCrash) ++core_crashes;
      if (op == TortureOp::kCoreRevive || op == TortureOp::kHealPartition) {
        ++core_heals;
      }
      if (op == TortureOp::kChainCrash) ++chain_crashes;
      if (op == TortureOp::kChainRevive) ++chain_revives;
      if (op == TortureOp::kStall) ++stalls;
      EXPECT_LE(a.steps[i].at, config.horizon) << "seed " << seed;
      EXPECT_NE(op, TortureOp::kPartition);
      EXPECT_NE(op, TortureOp::kSubAdd);
      EXPECT_NE(op, TortureOp::kSubDrop);
    }
    EXPECT_EQ(core_incidents, 1) << "seed " << seed;
    EXPECT_EQ(core_heals, 1) << "seed " << seed;
    EXPECT_LE(chain_crashes, 1) << "seed " << seed;
    EXPECT_EQ(chain_crashes, chain_revives) << "seed " << seed;
    if (chain_crashes > 0) {
      EXPECT_EQ(core_crashes, 1)
          << "seed " << seed << ": chain crash on a split-brain schedule";
      any_chain = true;
    }
    EXPECT_GE(stalls, 1) << "seed " << seed << ": no overload stall";
  }
  EXPECT_TRUE(any_chain)
      << "no chain-crash schedule in the probe range; the double-crash "
         "surface is not being exercised";

  // A single-standby deployment has no chain to crash down.
  torture::FailoverConfig solo = config;
  solo.standbys = 1;
  for (std::uint64_t seed = 0xFA170; seed < 0xFA170 + 12; ++seed) {
    Schedule s = torture::generate_failover_schedule(seed, solo);
    for (const auto& step : s.steps) {
      EXPECT_NE(step.op, TortureOp::kChainCrash) << "seed " << seed;
    }
  }
}

// The sensitivity proof for the epoch-fencing fix: the same schedule, run
// twice — with the members' beacon fencing on it must pass; with the fence
// reverted it must fail. The bite needs a *split-brain* schedule: after a
// plain crash the dead core's sweep (its process outlives the host outage)
// purges everyone, so the revived core evicts the stale heartbeats and
// unfenced members recover through a fresh search — legitimate, fence-free
// recovery. In a split brain the old core keeps serving its members until
// the heal deposes it; only the fence pulls them onto the promoted epoch,
// so reverting it strands them on a silent core until the (deliberately
// distant, 60 s) loss timer — far past this test's quiesce cap. A torture
// suite that passed both ways would be checking nothing; this pins that
// the harness actually bites on the bug the fence fixes.
TEST(TortureFailover, FencingRevertIsCaught) {
  using torture::TortureOp;
  torture::FailoverConfig config;
  // Below the members' 60 s cell-lost timer, comfortably above the few
  // seconds a fenced re-home needs.
  config.quiesce_cap = seconds(30);
  // First seed in the probe range whose schedule rolls a split brain —
  // deterministic, and robust to generator drift.
  Schedule schedule;
  bool has_split = false;
  for (std::uint64_t seed = 0xFA180; seed < 0xFA1A0 && !has_split; ++seed) {
    schedule = torture::generate_failover_schedule(seed, config);
    for (const auto& s : schedule.steps) {
      has_split = has_split || s.op == TortureOp::kSplitBrain;
    }
  }
  ASSERT_TRUE(has_split)
      << "no split-brain schedule in the probe range; widen it";

  config.fence_epochs = true;
  TortureResult fenced = torture::run_failover_torture(schedule, config);
  EXPECT_TRUE(fenced.ok) << "[" << fenced.invariant << "] "
                         << fenced.violation;

  config.fence_epochs = false;
  TortureResult reverted = torture::run_failover_torture(schedule, config);
  EXPECT_FALSE(reverted.ok)
      << "epoch-fencing revert sailed through the failover torture — the "
         "suite has lost its sensitivity to the bug it exists to catch";
  if (std::getenv("TORTURE_VERBOSE") != nullptr && !reverted.ok) {
    std::fprintf(stderr, "[failover] revert caught as [%s] %s\n",
                 reverted.invariant.c_str(), reverted.violation.c_str());
  }
}

// The sensitivity proof for the quorum arbitration (DESIGN.md §13.5): the
// same two-standby schedule, run twice. With require_quorum on, the
// claim/vote protocol elects exactly one winner and the run passes. With
// it reverted — each standby promotes unilaterally the moment its own
// lease lapses, the pre-arbitration behaviour — both standbys promote at
// the same epoch and the harness must report the split cell as
// "double-promotion". A chain-free crash schedule keeps the failure mode
// pure: one incident, two rival claimants, one epoch.
TEST(TortureFailover, QuorumRevertIsCaught) {
  using torture::TortureOp;
  torture::FailoverConfig config;
  config.quiesce_cap = seconds(30);
  Schedule schedule;
  bool found = false;
  for (std::uint64_t seed = 0xFA1C0; seed < 0xFA1E0 && !found; ++seed) {
    schedule = torture::generate_failover_schedule(seed, config);
    bool crash = false;
    bool chain = false;
    for (const auto& s : schedule.steps) {
      crash = crash || s.op == TortureOp::kCoreCrash;
      chain = chain || s.op == TortureOp::kChainCrash;
    }
    found = crash && !chain;
  }
  ASSERT_TRUE(found)
      << "no chain-free crash schedule in the probe range; widen it";

  config.require_quorum = true;
  TortureResult arbitrated = torture::run_failover_torture(schedule, config);
  EXPECT_TRUE(arbitrated.ok)
      << "[" << arbitrated.invariant << "] " << arbitrated.violation;

  config.require_quorum = false;
  TortureResult reverted = torture::run_failover_torture(schedule, config);
  EXPECT_FALSE(reverted.ok)
      << "quorum revert sailed through the failover torture — with "
         "unilateral promotion two standbys must split the cell";
  EXPECT_EQ(reverted.invariant, "double-promotion")
      << "[" << reverted.invariant << "] " << reverted.violation;
}

TEST(SimNetworkFaults, UpdateLinkSwapsModelInPlace) {
  SimExecutor ex;
  SimNetwork net(ex, 7);
  SimHost& a = net.add_host("a", CostModel{});
  SimHost& b = net.add_host("b", CostModel{});
  auto ea = net.create_endpoint(a);
  auto eb = net.create_endpoint(b);
  int received = 0;
  eb->set_receive_handler([&](ServiceId, BytesView) { ++received; });

  LinkModel squeezed = net.default_link();
  squeezed.mtu = 4;
  net.update_link(a, b, squeezed);
  EXPECT_EQ(net.link_model(a, b).mtu, 4u);
  ea->send(eb->local_id(), to_bytes("too big"));
  ex.run_for(seconds(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped_mtu, 1u);

  net.update_link(a, b, net.default_link());
  ea->send(eb->local_id(), to_bytes("too big"));
  ex.run_for(seconds(1));
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace amuse
