// Tests for the deterministic simulation RNG.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace amuse {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42, 1);
  Rng b(42, 1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(42, 1);
  Rng b(43, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 1);
  Rng b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.bounded(17), 17u);
  }
  EXPECT_EQ(r.bounded(0), 0u);
  EXPECT_EQ(r.bounded(1), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng r(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[r.bounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    std::int64_t v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenRange) {
  Rng r(11);
  for (int i = 0; i < 10'000; ++i) {
    double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 1'000; ++i) {
    double v = r.uniform(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng r(123);
  constexpr int kN = 50'000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < kN; ++i) {
    double v = r.normal();
    sum += v;
    sq += v * v;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng r(321);
  constexpr int kN = 50'000;
  double sum = 0;
  for (int i = 0; i < kN; ++i) {
    double v = r.exponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 4.0, 0.15);
}

TEST(Rng, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace amuse
