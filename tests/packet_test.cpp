// Wire-frame tests: round-trips, corruption rejection, foreign datagrams.
#include "wire/packet.hpp"

#include <gtest/gtest.h>

namespace amuse {
namespace {

Packet sample_packet() {
  Packet p;
  p.type = PacketType::kData;
  p.flags = 0x00A5;
  p.session = 0xCAFEBABE;
  p.src = ServiceId::from_addr_port(0x0A000001, 40001);
  p.dst = ServiceId::from_addr_port(0x0A000002, 40002);
  p.seq = 1234;
  p.ack = 99;
  p.payload = to_bytes("the payload");
  return p;
}

TEST(Packet, RoundTripsAllFields) {
  Packet p = sample_packet();
  Bytes wire = p.encode();
  std::optional<Packet> q = Packet::decode(wire);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->type, p.type);
  EXPECT_EQ(q->flags, p.flags);
  EXPECT_EQ(q->session, p.session);
  EXPECT_EQ(q->src, p.src);
  EXPECT_EQ(q->dst, p.dst);
  EXPECT_EQ(q->seq, p.seq);
  EXPECT_EQ(q->ack, p.ack);
  EXPECT_EQ(q->payload, p.payload);
}

TEST(Packet, EmptyPayloadRoundTrips) {
  Packet p = sample_packet();
  p.payload.clear();
  std::optional<Packet> q = Packet::decode(p.encode());
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->payload.empty());
}

TEST(Packet, OverheadConstantIsAccurate) {
  Packet p = sample_packet();
  EXPECT_EQ(p.encode().size(), Packet::kOverhead + p.payload.size());
}

TEST(Packet, EveryPacketTypeRoundTrips) {
  for (PacketType t :
       {PacketType::kData, PacketType::kAck, PacketType::kBeacon,
        PacketType::kJoinRequest, PacketType::kJoinChallenge,
        PacketType::kJoinResponse, PacketType::kJoinAccept,
        PacketType::kJoinReject, PacketType::kLeave,
        PacketType::kHeartbeat}) {
    Packet p = sample_packet();
    p.type = t;
    std::optional<Packet> q = Packet::decode(p.encode());
    ASSERT_TRUE(q.has_value()) << to_string(t);
    EXPECT_EQ(q->type, t);
  }
}

TEST(Packet, RejectsEveryPossibleSingleByteCorruption) {
  Bytes wire = sample_packet().encode();
  Packet original = *Packet::decode(wire);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (std::uint8_t flip : {0x01, 0x80}) {
      Bytes corrupt = wire;
      corrupt[i] ^= flip;
      std::optional<Packet> q = Packet::decode(corrupt);
      // CRC-32 catches all single-bit errors; nothing may decode
      // successfully to different contents.
      EXPECT_FALSE(q.has_value()) << "byte " << i;
      (void)original;
    }
  }
}

TEST(Packet, RejectsTruncation) {
  Bytes wire = sample_packet().encode();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        Packet::decode(BytesView(wire.data(), len)).has_value())
        << "len " << len;
  }
}

TEST(Packet, RejectsForeignMagic) {
  Bytes wire = sample_packet().encode();
  wire[0] = 0x00;  // break magic (CRC also breaks, but magic first)
  EXPECT_FALSE(Packet::decode(wire).has_value());
}

TEST(Packet, RejectsTrailingGarbage) {
  Bytes wire = sample_packet().encode();
  wire.push_back(0x42);
  EXPECT_FALSE(Packet::decode(wire).has_value());
}

TEST(Packet, RejectsRandomNoise) {
  // Random buffers must essentially never decode (CRC + magic).
  std::uint32_t x = 123456789;
  auto next = [&] {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    return static_cast<std::uint8_t>(x);
  };
  int decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes noise(40 + trial % 64);
    for (auto& b : noise) b = next();
    if (Packet::decode(noise)) ++decoded;
  }
  EXPECT_EQ(decoded, 0);
}

TEST(ServiceId, FormatsAndFields) {
  ServiceId id = ServiceId::from_addr_port(0xC0A80117, 8080);
  EXPECT_EQ(id.to_string(), "192.168.1.23:8080");
  EXPECT_EQ(id.addr(), 0xC0A80117u);
  EXPECT_EQ(id.port(), 8080);
  EXPECT_EQ(ServiceId().to_string(), "nil");
  EXPECT_EQ(ServiceId::broadcast().to_string(), "*");
  EXPECT_TRUE(ServiceId().is_nil());
  EXPECT_FALSE(id.is_nil());
}

TEST(ServiceId, MasksTo48Bits) {
  ServiceId id(0xFFFF'FFFF'FFFF'FFFFULL);
  EXPECT_EQ(id.raw(), ServiceId::kMask);
  EXPECT_EQ(id, ServiceId::broadcast());
}

}  // namespace
}  // namespace amuse
