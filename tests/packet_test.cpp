// Wire-frame tests: round-trips, corruption rejection, foreign datagrams.
#include "wire/packet.hpp"

#include <gtest/gtest.h>

namespace amuse {
namespace {

Packet sample_packet() {
  Packet p;
  p.type = PacketType::kData;
  p.flags = 0x00A5;
  p.session = 0xCAFEBABE;
  p.src = ServiceId::from_addr_port(0x0A000001, 40001);
  p.dst = ServiceId::from_addr_port(0x0A000002, 40002);
  p.seq = 1234;
  p.ack = 99;
  p.payload = to_bytes("the payload");
  return p;
}

TEST(Packet, RoundTripsAllFields) {
  Packet p = sample_packet();
  Bytes wire = p.encode();
  std::optional<Packet> q = Packet::decode(wire);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->type, p.type);
  EXPECT_EQ(q->flags, p.flags);
  EXPECT_EQ(q->session, p.session);
  EXPECT_EQ(q->src, p.src);
  EXPECT_EQ(q->dst, p.dst);
  EXPECT_EQ(q->seq, p.seq);
  EXPECT_EQ(q->ack, p.ack);
  EXPECT_EQ(q->payload, p.payload);
}

TEST(Packet, EmptyPayloadRoundTrips) {
  Packet p = sample_packet();
  p.payload.clear();
  std::optional<Packet> q = Packet::decode(p.encode());
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->payload.empty());
}

TEST(Packet, OverheadConstantIsAccurate) {
  Packet p = sample_packet();
  EXPECT_EQ(p.encode().size(), Packet::kOverhead + p.payload.size());
}

TEST(Packet, EveryPacketTypeRoundTrips) {
  for (PacketType t :
       {PacketType::kData, PacketType::kAck, PacketType::kBeacon,
        PacketType::kJoinRequest, PacketType::kJoinChallenge,
        PacketType::kJoinResponse, PacketType::kJoinAccept,
        PacketType::kJoinReject, PacketType::kLeave,
        PacketType::kHeartbeat}) {
    Packet p = sample_packet();
    p.type = t;
    std::optional<Packet> q = Packet::decode(p.encode());
    ASSERT_TRUE(q.has_value()) << to_string(t);
    EXPECT_EQ(q->type, t);
  }
}

TEST(Packet, RejectsEveryPossibleSingleByteCorruption) {
  Bytes wire = sample_packet().encode();
  Packet original = *Packet::decode(wire);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (std::uint8_t flip : {0x01, 0x80}) {
      Bytes corrupt = wire;
      corrupt[i] ^= flip;
      std::optional<Packet> q = Packet::decode(corrupt);
      // CRC-32 catches all single-bit errors; nothing may decode
      // successfully to different contents.
      EXPECT_FALSE(q.has_value()) << "byte " << i;
      (void)original;
    }
  }
}

TEST(Packet, RejectsTruncation) {
  Bytes wire = sample_packet().encode();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        Packet::decode(BytesView(wire.data(), len)).has_value())
        << "len " << len;
  }
}

TEST(Packet, RejectsForeignMagic) {
  Bytes wire = sample_packet().encode();
  wire[0] = 0x00;  // break magic (CRC also breaks, but magic first)
  EXPECT_FALSE(Packet::decode(wire).has_value());
}

TEST(Packet, RejectsTrailingGarbage) {
  Bytes wire = sample_packet().encode();
  wire.push_back(0x42);
  EXPECT_FALSE(Packet::decode(wire).has_value());
}

TEST(Packet, RejectsRandomNoise) {
  // Random buffers must essentially never decode (CRC + magic).
  std::uint32_t x = 123456789;
  auto next = [&] {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    return static_cast<std::uint8_t>(x);
  };
  int decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes noise(40 + trial % 64);
    for (auto& b : noise) b = next();
    if (Packet::decode(noise)) ++decoded;
  }
  EXPECT_EQ(decoded, 0);
}

// ---- Batched DATA frames (kFlagBatched): N length-prefixed sub-messages
// share one datagram. Flag-gated under the same packet version.

Packet sample_batched() {
  static const Bytes head0 = to_bytes("sub-");
  static const Bytes tail0 = to_bytes("zero");
  static const Bytes mid = to_bytes("middle sub");
  static const Bytes tail2 = to_bytes("tail-only sub");
  Packet p = sample_packet();
  p.flags = kFlagBatched;
  p.payload.clear();
  p.batch = {Packet::Sub{BytesView(head0), BytesView(tail0)},
             Packet::Sub{BytesView(mid), BytesView{}},
             Packet::Sub{BytesView{}, BytesView(tail2)}};
  return p;
}

TEST(PacketBatch, EncodeDecodeSplitsBackIntoSubs) {
  Packet p = sample_batched();
  std::optional<Packet> q = Packet::decode(p.encode());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->flags, kFlagBatched);
  EXPECT_TRUE(q->batch.empty());  // decode yields the contiguous form
  auto subs = Packet::split_batch(q->payload);
  ASSERT_TRUE(subs.has_value());
  ASSERT_EQ(subs->size(), 3u);
  EXPECT_EQ(Bytes((*subs)[0].begin(), (*subs)[0].end()),
            to_bytes("sub-zero"));
  EXPECT_EQ(Bytes((*subs)[1].begin(), (*subs)[1].end()),
            to_bytes("middle sub"));
  EXPECT_EQ(Bytes((*subs)[2].begin(), (*subs)[2].end()),
            to_bytes("tail-only sub"));
}

TEST(PacketBatch, DecodedFrameReencodesToSameBytes) {
  Bytes wire = sample_batched().encode();
  std::optional<Packet> q = Packet::decode(wire);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->encode(), wire);
}

TEST(PacketBatch, WireSizeAccountsPerSubLengthPrefix) {
  Packet p = sample_batched();
  // 3 subs: 2-byte length prefix each + 8 + 10 + 13 payload bytes.
  EXPECT_EQ(p.payload_wire_size(), 3u * 2u + 8u + 10u + 13u);
  EXPECT_EQ(p.encode().size(), Packet::kOverhead + p.payload_wire_size());
}

TEST(PacketBatch, EmptySubMessageRoundTrips) {
  Packet p = sample_packet();
  p.flags = kFlagBatched;
  p.payload.clear();
  static const Bytes only = to_bytes("x");
  p.batch = {Packet::Sub{}, Packet::Sub{BytesView(only), BytesView{}}};
  std::optional<Packet> q = Packet::decode(p.encode());
  ASSERT_TRUE(q.has_value());
  auto subs = Packet::split_batch(q->payload);
  ASSERT_TRUE(subs.has_value());
  ASSERT_EQ(subs->size(), 2u);
  EXPECT_TRUE((*subs)[0].empty());
  EXPECT_EQ((*subs)[1].size(), 1u);
}

TEST(PacketBatch, RejectsSubLengthPastEnd) {
  Packet p = sample_packet();
  p.flags = kFlagBatched;
  p.payload = {0x00, 0x05, 'a', 'b', 'c'};  // claims 5 bytes, has 3
  // The frame itself is structurally sound (CRC fine), but the batched
  // payload does not tile — decode must reject it.
  EXPECT_FALSE(Packet::decode(p.encode()).has_value());
  EXPECT_FALSE(Packet::split_batch(p.payload).has_value());
}

TEST(PacketBatch, RejectsTruncatedLengthPrefix) {
  Packet p = sample_packet();
  p.flags = kFlagBatched;
  p.payload = {0x00, 0x01, 'a', 0x00};  // dangling half-prefix
  EXPECT_FALSE(Packet::decode(p.encode()).has_value());
}

TEST(PacketBatch, RejectsEmptyBatchedPayload) {
  Packet p = sample_packet();
  p.flags = kFlagBatched;
  p.payload.clear();
  EXPECT_FALSE(Packet::decode(p.encode()).has_value());
  EXPECT_FALSE(Packet::split_batch(BytesView{}).has_value());
}

TEST(PacketBatch, FlagOnlyGatesData) {
  // Non-DATA frames ignore the batch flag (no sub-frame validation).
  Packet p = sample_packet();
  p.type = PacketType::kAck;
  p.flags = kFlagBatched;
  p.payload.clear();
  EXPECT_TRUE(Packet::decode(p.encode()).has_value());
}

TEST(ServiceId, FormatsAndFields) {
  ServiceId id = ServiceId::from_addr_port(0xC0A80117, 8080);
  EXPECT_EQ(id.to_string(), "192.168.1.23:8080");
  EXPECT_EQ(id.addr(), 0xC0A80117u);
  EXPECT_EQ(id.port(), 8080);
  EXPECT_EQ(ServiceId().to_string(), "nil");
  EXPECT_EQ(ServiceId::broadcast().to_string(), "*");
  EXPECT_TRUE(ServiceId().is_nil());
  EXPECT_FALSE(id.is_nil());
}

TEST(ServiceId, MasksTo48Bits) {
  ServiceId id(0xFFFF'FFFF'FFFF'FFFFULL);
  EXPECT_EQ(id.raw(), ServiceId::kMask);
  EXPECT_EQ(id, ServiceId::broadcast());
}

}  // namespace
}  // namespace amuse
