// ReliableChannel tests: the delivery semantics of §II-C — exactly-once,
// per-sender FIFO, acknowledged and retransmitted — under loss, duplication,
// reordering and peer failure.
#include "wire/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

// Two channels joined by a controllable lossy pipe.
class ChannelPair {
 public:
  explicit ChannelPair(ReliableChannelConfig config = {}) {
    // A channel's deliver callback fires for messages it *receives*:
    // channel a receives what b sent (sink at_a) and vice versa.
    a = std::make_unique<ReliableChannel>(
        ex, id_a, id_b, 111, config,
        [this](const Packet& p) { pipe(p, drop_from_a, b); },
        [this](BytesView msg) { at_a.emplace_back(to_string(msg)); },
        [this] { ++failures; });
    b = std::make_unique<ReliableChannel>(
        ex, id_b, id_a, 222, config,
        [this](const Packet& p) { pipe(p, drop_from_b, a); },
        [this](BytesView msg) { at_b.emplace_back(to_string(msg)); },
        [this] { ++failures; });
  }

  void pipe(const Packet& p, std::function<bool(const Packet&)>& drop,
            std::unique_ptr<ReliableChannel>& target) {
    if (drop && drop(p)) return;
    Duration delay = base_delay;
    if (jitter > Duration{}) {
      delay += Duration(static_cast<std::int64_t>(
          rng.uniform() * static_cast<double>(jitter.count())));
    }
    Bytes wire = p.encode();
    ex.schedule_after(delay, [&target, wire] {
      if (target) {
        std::optional<Packet> q = Packet::decode(wire);
        if (q) target->on_packet(*q);
      }
    });
  }

  SimExecutor ex;
  Rng rng{987};
  ServiceId id_a = ServiceId::from_addr_port(0x0A000001, 1000);
  ServiceId id_b = ServiceId::from_addr_port(0x0A000002, 2000);
  Duration base_delay = milliseconds(1);
  Duration jitter{};
  std::function<bool(const Packet&)> drop_from_a;
  std::function<bool(const Packet&)> drop_from_b;
  std::unique_ptr<ReliableChannel> a;
  std::unique_ptr<ReliableChannel> b;
  std::vector<std::string> at_a;  // messages delivered to a (sent by b)
  std::vector<std::string> at_b;
  int failures = 0;
};

TEST(ReliableChannel, DeliversInOrderOnCleanLink) {
  ChannelPair p;
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(p.a->send(to_bytes("msg" + std::to_string(i))));
  }
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.at_b[i], "msg" + std::to_string(i));
  }
  EXPECT_EQ(p.a->stats().retransmissions, 0u);
  EXPECT_EQ(p.a->in_flight(), 0u);
}

TEST(ReliableChannel, BidirectionalTrafficCoexists) {
  ChannelPair p;
  for (int i = 0; i < 10; ++i) {
    (void)p.a->send(to_bytes("a" + std::to_string(i)));
    (void)p.b->send(to_bytes("b" + std::to_string(i)));
  }
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 10u);
  ASSERT_EQ(p.at_a.size(), 10u);
  EXPECT_EQ(p.at_b[9], "a9");
  EXPECT_EQ(p.at_a[9], "b9");
}

TEST(ReliableChannel, RetransmitsThroughLoss) {
  ChannelPair p;
  int dropped = 0;
  // Drop the first transmission of every DATA packet.
  std::set<std::uint32_t> seen;
  p.drop_from_a = [&](const Packet& pk) {
    if (pk.type == PacketType::kData && seen.insert(pk.seq).second) {
      ++dropped;
      return true;
    }
    return false;
  };
  for (int i = 0; i < 8; ++i) (void)p.a->send(to_bytes(std::to_string(i)));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(p.at_b[i], std::to_string(i));
  EXPECT_GT(dropped, 0);
  EXPECT_GT(p.a->stats().retransmissions, 0u);
  EXPECT_EQ(p.failures, 0);
}

TEST(ReliableChannel, SurvivesTotalAckLoss) {
  ChannelPair p;
  int acks_eaten = 0;
  p.drop_from_b = [&](const Packet& pk) {
    if (pk.type == PacketType::kAck && acks_eaten < 3) {
      ++acks_eaten;
      return true;
    }
    return false;
  };
  (void)p.a->send(to_bytes("persist"));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  // Duplicates caused by retransmission were absorbed, not redelivered.
  EXPECT_EQ(p.at_b[0], "persist");
  EXPECT_GT(p.b->stats().duplicates_dropped, 0u);
}

TEST(ReliableChannel, WindowLimitsInFlight) {
  ReliableChannelConfig cfg;
  cfg.window = 4;
  ChannelPair p(cfg);
  // Block the pipe completely and observe the window cap.
  p.drop_from_a = [](const Packet&) { return true; };
  for (int i = 0; i < 100; ++i) (void)p.a->send(to_bytes("m"));
  EXPECT_EQ(p.a->in_flight(), 4u);
  EXPECT_EQ(p.a->queued(), 96u);
}

TEST(ReliableChannel, QueueBoundRejectsExcess) {
  ReliableChannelConfig cfg;
  cfg.window = 1;
  cfg.max_queue = 10;
  ChannelPair p(cfg);
  p.drop_from_a = [](const Packet&) { return true; };
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    if (p.a->send(to_bytes("m"))) ++accepted;
  }
  // window(1) + queue(10)… the first send goes straight to the window.
  EXPECT_EQ(accepted, 11);
}

TEST(ReliableChannel, FailureReportedAfterMaxRetries) {
  ReliableChannelConfig cfg;
  cfg.max_retries = 3;
  cfg.rto_initial = milliseconds(10);
  ChannelPair p(cfg);
  p.drop_from_a = [](const Packet&) { return true; };
  (void)p.a->send(to_bytes("doomed"));
  p.ex.run_for(seconds(60));
  EXPECT_EQ(p.failures, 1);
  EXPECT_TRUE(p.a->failed());
  // The message is retained, not dropped (persistence until purge).
  EXPECT_EQ(p.a->in_flight(), 1u);
}

TEST(ReliableChannel, PokeResumesAfterFailure) {
  ReliableChannelConfig cfg;
  cfg.max_retries = 2;
  cfg.rto_initial = milliseconds(10);
  ChannelPair p(cfg);
  bool blocked = true;
  p.drop_from_a = [&](const Packet&) { return blocked; };
  (void)p.a->send(to_bytes("delayed"));
  p.ex.run_for(seconds(10));
  ASSERT_TRUE(p.a->failed());

  blocked = false;
  p.a->poke();
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0], "delayed");
  EXPECT_FALSE(p.a->failed());
}

TEST(ReliableChannel, IncomingAckAlsoClearsFailure) {
  ReliableChannelConfig cfg;
  cfg.max_retries = 2;
  cfg.rto_initial = milliseconds(10);
  ChannelPair p(cfg);
  bool blocked = true;
  p.drop_from_a = [&](const Packet&) { return blocked; };
  (void)p.a->send(to_bytes("first"));
  p.ex.run_for(seconds(10));
  ASSERT_TRUE(p.a->failed());
  blocked = false;
  // Traffic from the peer (its own DATA carrying an ack) revives us after
  // poke(); simulate the discovery service noticing and poking.
  p.a->poke();
  p.ex.run();
  EXPECT_EQ(p.at_b.size(), 1u);
}

TEST(ReliableChannel, ResetDropsOutboundData) {
  ChannelPair p;
  p.drop_from_a = [](const Packet&) { return true; };
  for (int i = 0; i < 5; ++i) (void)p.a->send(to_bytes("queued"));
  EXPECT_GT(p.a->in_flight() + p.a->queued(), 0u);
  p.a->reset();
  EXPECT_EQ(p.a->in_flight(), 0u);
  EXPECT_EQ(p.a->queued(), 0u);
  // After reset the channel still works for new messages.
  p.drop_from_a = nullptr;
  (void)p.a->send(to_bytes("after-reset"));
  p.ex.run();
  // Seqs 0..4 never reached the peer, so it never adopted session 111;
  // the post-reset message arrives mid-stream (seq 5) in an unknown session
  // and is dropped — which is why a purge-then-readmit always uses a fresh
  // session starting at seq 0 (tested below).
  EXPECT_TRUE(p.at_b.empty());
  // ≥1: the sender retransmits the unacknowledged message, and every copy
  // is dropped as stale.
  EXPECT_GE(p.b->stats().stale_session_dropped, 1u);
}

TEST(ReliableChannel, NewSessionAdoptedAtSeqZero) {
  ChannelPair p;
  (void)p.a->send(to_bytes("one"));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);

  // The member is purged and re-admitted: a fresh channel incarnation with
  // a new session id starts at seq 0 again.
  ReliableChannelConfig cfg;
  auto fresh = std::make_unique<ReliableChannel>(
      p.ex, p.id_a, p.id_b, /*session=*/333, cfg,
      [&p](const Packet& pk) {
        Bytes wire = pk.encode();
        p.ex.schedule_after(milliseconds(1), [&p, wire] {
          std::optional<Packet> q = Packet::decode(wire);
          if (q) p.b->on_packet(*q);
        });
      },
      [](BytesView) {});
  (void)fresh->send(to_bytes("fresh"));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 2u);
  EXPECT_EQ(p.at_b[1], "fresh");
}

TEST(ReliableChannel, StaleSessionPacketsDropped) {
  ChannelPair p;
  (void)p.a->send(to_bytes("current"));
  p.ex.run();

  // Forge a mid-stream packet from an unknown session: must be ignored.
  Packet stale;
  stale.type = PacketType::kData;
  stale.session = 999;
  stale.src = p.id_a;
  stale.dst = p.id_b;
  stale.seq = 7;  // not zero → cannot start a new incarnation
  stale.payload = to_bytes("ghost");
  p.b->on_packet(stale);
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.b->stats().stale_session_dropped, 1u);
}

TEST(ReliableChannel, IgnoresPacketsFromWrongPeer) {
  ChannelPair p;
  Packet foreign;
  foreign.type = PacketType::kData;
  foreign.session = 1;
  foreign.src = ServiceId(0xBEEF);
  foreign.dst = p.id_b;
  foreign.seq = 0;
  foreign.payload = to_bytes("intruder");
  p.b->on_packet(foreign);
  p.ex.run();
  EXPECT_TRUE(p.at_b.empty());
}

TEST(ReliableChannel, NonsenseAckIgnored) {
  ChannelPair p;
  (void)p.a->send(to_bytes("x"));
  Packet bogus;
  bogus.type = PacketType::kAck;
  bogus.session = 222;
  bogus.src = p.id_b;
  bogus.dst = p.id_a;
  bogus.ack = 1000;  // acks messages never sent
  p.a->on_packet(bogus);
  p.ex.run();
  EXPECT_EQ(p.at_b.size(), 1u);  // normal flow unaffected
}

// ---- Property test: exactly-once, per-sender FIFO under randomised chaos.

class ChannelChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelChaosTest, ExactlyOnceInOrderUnderLossDupReorder) {
  ReliableChannelConfig cfg;
  cfg.rto_initial = milliseconds(30);
  cfg.max_retries = 30;
  ChannelPair p(cfg);
  Rng chaos(GetParam());
  p.jitter = milliseconds(8);  // reordering via random delays
  double loss = 0.05 + 0.3 * chaos.uniform();
  p.drop_from_a = [&, loss](const Packet&) mutable {
    return chaos.chance(loss);
  };
  p.drop_from_b = [&, loss](const Packet&) mutable {
    return chaos.chance(loss * 0.5);
  };

  constexpr int kMessages = 120;
  int sent = 0;
  // Trickle sends over time so the window never hard-blocks the test.
  std::function<void()> pump = [&] {
    for (int burst = 0; burst < 4 && sent < kMessages; ++burst) {
      ASSERT_TRUE(p.a->send(to_bytes("m" + std::to_string(sent))));
      ++sent;
    }
    if (sent < kMessages) {
      p.ex.schedule_after(milliseconds(20), pump);
    }
  };
  pump();
  p.ex.run_for(seconds(120));
  p.ex.run();

  ASSERT_EQ(p.at_b.size(), static_cast<std::size_t>(kMessages))
      << "seed " << GetParam() << " loss " << loss;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(p.at_b[i], "m" + std::to_string(i)) << "seed " << GetParam();
  }
  EXPECT_EQ(p.failures, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelChaosTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---- Fragmentation (small-MTU transports like ZigBee, §VI).

TEST(ReliableChannelFragmentation, LargeMessageIsSplitAndReassembled) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 100;
  ChannelPair p(cfg);
  Bytes big(350, 0);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(p.a->send(Bytes(big)));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(Bytes(p.at_b[0].begin(), p.at_b[0].end()), big);
  EXPECT_EQ(p.a->stats().fragments_sent, 4u);  // 100+100+100+50
  EXPECT_EQ(p.b->stats().messages_reassembled, 1u);
  EXPECT_EQ(p.b->stats().messages_delivered, 1u);  // one *message*
}

TEST(ReliableChannelFragmentation, SmallMessagesAreNotFragmented) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 100;
  ChannelPair p(cfg);
  ASSERT_TRUE(p.a->send(to_bytes("short")));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.a->stats().fragments_sent, 0u);
  EXPECT_EQ(p.b->stats().messages_reassembled, 0u);
}

TEST(ReliableChannelFragmentation, ExactMultipleBoundary) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 100;
  ChannelPair p(cfg);
  ASSERT_TRUE(p.a->send(Bytes(200, 7)));  // exactly two full fragments
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0].size(), 200u);
  EXPECT_EQ(p.a->stats().fragments_sent, 2u);
}

TEST(ReliableChannelFragmentation, InterleavedWithSmallMessagesStaysOrdered) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 50;
  ChannelPair p(cfg);
  (void)p.a->send(to_bytes("first"));
  (void)p.a->send(Bytes(120, 'x'));  // 3 fragments
  (void)p.a->send(to_bytes("last"));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 3u);
  EXPECT_EQ(p.at_b[0], "first");
  EXPECT_EQ(p.at_b[1].size(), 120u);
  EXPECT_EQ(p.at_b[2], "last");
}

TEST(ReliableChannelFragmentation, SurvivesFragmentLoss) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 64;
  cfg.rto_initial = milliseconds(30);
  ChannelPair p(cfg);
  Rng chaos(77);
  p.drop_from_a = [&](const Packet& pk) {
    return pk.type == PacketType::kData && chaos.chance(0.3);
  };
  Bytes big(1000, 0);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  ASSERT_TRUE(p.a->send(Bytes(big)));
  p.ex.run_for(seconds(60));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(Bytes(p.at_b[0].begin(), p.at_b[0].end()), big);
}

TEST(ReliableChannelFragmentation, QueueBoundIsAllOrNothing) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 10;
  cfg.window = 1;
  cfg.max_queue = 5;
  ChannelPair p(cfg);
  p.drop_from_a = [](const Packet&) { return true; };  // wedge the window
  // 60 bytes → 6 fragments > queue bound of 5 after the first message.
  ASSERT_TRUE(p.a->send(Bytes(30, 1)));   // 3 fragments fit
  ASSERT_FALSE(p.a->send(Bytes(60, 2)));  // would need 6 slots: rejected
  EXPECT_EQ(p.a->queued() + p.a->in_flight(), 3u);
}

TEST(ReliableChannelFragmentation, ReassemblyOverflowDropsMessage) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 100;
  cfg.max_reassembly_bytes = 250;
  ChannelPair p(cfg);
  ASSERT_TRUE(p.a->send(Bytes(400, 9)));  // exceeds the receiver's bound
  ASSERT_TRUE(p.a->send(to_bytes("after")));
  p.ex.run();
  // The oversized message is dropped but the stream continues.
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0], "after");
  EXPECT_GE(p.b->stats().reassembly_overflow_dropped, 1u);
}

TEST(ReliableChannelFragmentation, AdaptiveRtoStillLearns) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 64;
  ChannelPair p(cfg);
  (void)p.a->send(Bytes(500, 3));
  p.ex.run();
  EXPECT_GT(p.a->srtt(), Duration{});
}

// ---- SharedPayload: owned head + shared immutable tail (encode-once
// fan-out support).

TEST(ReliableChannelSharedPayload, HeadAndTailArriveAsOneMessage) {
  ChannelPair p;
  auto tail = std::make_shared<const Bytes>(to_bytes("shared-body"));
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("head:"), tail}));
  // The same tail can back many messages without copying.
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("other:"), tail}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 2u);
  EXPECT_EQ(p.at_b[0], "head:shared-body");
  EXPECT_EQ(p.at_b[1], "other:shared-body");
}

TEST(ReliableChannelSharedPayload, NullTailIsHeadOnly) {
  ChannelPair p;
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("solo"), nullptr}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0], "solo");
}

TEST(ReliableChannelSharedPayload, TailSurvivesSenderReleasingItsReference) {
  // The channel keeps the tail alive across retransmissions even after the
  // fan-out that produced it is long gone.
  ReliableChannelConfig cfg;
  ChannelPair p(cfg);
  int dropped = 0;
  p.drop_from_a = [&](const Packet& pk) {
    // Drop the first two transmissions.
    return pk.type == PacketType::kData && ++dropped <= 2;
  };
  {
    auto tail = std::make_shared<const Bytes>(to_bytes("-persistent"));
    ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("msg"), tail}));
  }  // sender's reference gone; only the channel holds the bytes now
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0], "msg-persistent");
  EXPECT_GT(p.a->stats().retransmissions, 0u);
}

TEST(ReliableChannelSharedPayload, OversizeSharedMessageIsFragmented) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 64;
  ChannelPair p(cfg);
  Bytes body(150, 0);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::uint8_t>(i);
  }
  auto tail = std::make_shared<const Bytes>(body);
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("hdr"), tail}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  Bytes expected = to_bytes("hdr");
  expected.insert(expected.end(), body.begin(), body.end());
  EXPECT_EQ(Bytes(p.at_b[0].begin(), p.at_b[0].end()), expected);
  EXPECT_EQ(p.b->stats().messages_reassembled, 1u);
}

}  // namespace
}  // namespace amuse
