// ReliableChannel tests: the delivery semantics of §II-C — exactly-once,
// per-sender FIFO, acknowledged and retransmitted — under loss, duplication,
// reordering and peer failure.
#include "wire/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

// Two channels joined by a controllable lossy pipe. An optional second
// config gives b its own knobs (e.g. interop between a legacy-configured
// sender and a batch-capable receiver).
class ChannelPair {
 public:
  explicit ChannelPair(ReliableChannelConfig config = {},
                       std::optional<ReliableChannelConfig> config_b =
                           std::nullopt) {
    // A channel's deliver callback fires for messages it *receives*:
    // channel a receives what b sent (sink at_a) and vice versa.
    a = std::make_unique<ReliableChannel>(
        ex, id_a, id_b, 111, config,
        [this](const Packet& p) { pipe(p, tap_from_a, drop_from_a, b); },
        [this](BytesView msg) { at_a.emplace_back(to_string(msg)); },
        [this] { ++failures; });
    b = std::make_unique<ReliableChannel>(
        ex, id_b, id_a, 222, config_b.value_or(config),
        [this](const Packet& p) { pipe(p, tap_from_b, drop_from_b, a); },
        [this](BytesView msg) { at_b.emplace_back(to_string(msg)); },
        [this] { ++failures; });
  }

  void pipe(const Packet& p, std::function<void(const Packet&)>& tap,
            std::function<bool(const Packet&)>& drop,
            std::unique_ptr<ReliableChannel>& target) {
    if (tap) tap(p);
    if (drop && drop(p)) return;
    Duration delay = base_delay;
    if (jitter > Duration{}) {
      delay += Duration(static_cast<std::int64_t>(
          rng.uniform() * static_cast<double>(jitter.count())));
    }
    Bytes wire = p.encode();
    ex.schedule_after(delay, [&target, wire] {
      if (target) {
        std::optional<Packet> q = Packet::decode(wire);
        if (q) target->on_packet(*q);
      }
    });
  }

  SimExecutor ex;
  Rng rng{987};
  ServiceId id_a = ServiceId::from_addr_port(0x0A000001, 1000);
  ServiceId id_b = ServiceId::from_addr_port(0x0A000002, 2000);
  Duration base_delay = milliseconds(1);
  Duration jitter{};
  std::function<void(const Packet&)> tap_from_a;  // sees every frame a sends
  std::function<void(const Packet&)> tap_from_b;
  std::function<bool(const Packet&)> drop_from_a;
  std::function<bool(const Packet&)> drop_from_b;
  std::unique_ptr<ReliableChannel> a;
  std::unique_ptr<ReliableChannel> b;
  std::vector<std::string> at_a;  // messages delivered to a (sent by b)
  std::vector<std::string> at_b;
  int failures = 0;
};

TEST(ReliableChannel, DeliversInOrderOnCleanLink) {
  ChannelPair p;
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(p.a->send(to_bytes("msg" + std::to_string(i))));
  }
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.at_b[i], "msg" + std::to_string(i));
  }
  EXPECT_EQ(p.a->stats().retransmissions, 0u);
  EXPECT_EQ(p.a->in_flight(), 0u);
}

TEST(ReliableChannel, BidirectionalTrafficCoexists) {
  ChannelPair p;
  for (int i = 0; i < 10; ++i) {
    (void)p.a->send(to_bytes("a" + std::to_string(i)));
    (void)p.b->send(to_bytes("b" + std::to_string(i)));
  }
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 10u);
  ASSERT_EQ(p.at_a.size(), 10u);
  EXPECT_EQ(p.at_b[9], "a9");
  EXPECT_EQ(p.at_a[9], "b9");
}

TEST(ReliableChannel, RetransmitsThroughLoss) {
  ChannelPair p;
  int dropped = 0;
  // Drop the first transmission of every DATA packet.
  std::set<std::uint32_t> seen;
  p.drop_from_a = [&](const Packet& pk) {
    if (pk.type == PacketType::kData && seen.insert(pk.seq).second) {
      ++dropped;
      return true;
    }
    return false;
  };
  for (int i = 0; i < 8; ++i) (void)p.a->send(to_bytes(std::to_string(i)));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(p.at_b[i], std::to_string(i));
  EXPECT_GT(dropped, 0);
  EXPECT_GT(p.a->stats().retransmissions, 0u);
  EXPECT_EQ(p.failures, 0);
}

TEST(ReliableChannel, SurvivesTotalAckLoss) {
  ChannelPair p;
  int acks_eaten = 0;
  p.drop_from_b = [&](const Packet& pk) {
    if (pk.type == PacketType::kAck && acks_eaten < 3) {
      ++acks_eaten;
      return true;
    }
    return false;
  };
  (void)p.a->send(to_bytes("persist"));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  // Duplicates caused by retransmission were absorbed, not redelivered.
  EXPECT_EQ(p.at_b[0], "persist");
  EXPECT_GT(p.b->stats().duplicates_dropped, 0u);
}

TEST(ReliableChannel, WindowLimitsInFlight) {
  ReliableChannelConfig cfg;
  cfg.window = 4;
  ChannelPair p(cfg);
  // Block the pipe completely and observe the window cap.
  p.drop_from_a = [](const Packet&) { return true; };
  for (int i = 0; i < 100; ++i) (void)p.a->send(to_bytes("m"));
  EXPECT_EQ(p.a->in_flight(), 4u);
  EXPECT_EQ(p.a->queued(), 96u);
}

TEST(ReliableChannel, QueueBoundRejectsExcess) {
  ReliableChannelConfig cfg;
  cfg.window = 1;
  cfg.max_queue = 10;
  ChannelPair p(cfg);
  p.drop_from_a = [](const Packet&) { return true; };
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    if (p.a->send(to_bytes("m"))) ++accepted;
  }
  // window(1) + queue(10)… the first send goes straight to the window.
  EXPECT_EQ(accepted, 11);
}

TEST(ReliableChannel, FailureReportedAfterMaxRetries) {
  ReliableChannelConfig cfg;
  cfg.max_retries = 3;
  cfg.rto_initial = milliseconds(10);
  ChannelPair p(cfg);
  p.drop_from_a = [](const Packet&) { return true; };
  (void)p.a->send(to_bytes("doomed"));
  p.ex.run_for(seconds(60));
  EXPECT_EQ(p.failures, 1);
  EXPECT_TRUE(p.a->failed());
  // The message is retained, not dropped (persistence until purge).
  EXPECT_EQ(p.a->in_flight(), 1u);
}

TEST(ReliableChannel, PokeResumesAfterFailure) {
  ReliableChannelConfig cfg;
  cfg.max_retries = 2;
  cfg.rto_initial = milliseconds(10);
  ChannelPair p(cfg);
  bool blocked = true;
  p.drop_from_a = [&](const Packet&) { return blocked; };
  (void)p.a->send(to_bytes("delayed"));
  p.ex.run_for(seconds(10));
  ASSERT_TRUE(p.a->failed());

  blocked = false;
  p.a->poke();
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0], "delayed");
  EXPECT_FALSE(p.a->failed());
}

TEST(ReliableChannel, IncomingAckAlsoClearsFailure) {
  ReliableChannelConfig cfg;
  cfg.max_retries = 2;
  cfg.rto_initial = milliseconds(10);
  ChannelPair p(cfg);
  bool blocked = true;
  p.drop_from_a = [&](const Packet&) { return blocked; };
  (void)p.a->send(to_bytes("first"));
  p.ex.run_for(seconds(10));
  ASSERT_TRUE(p.a->failed());
  blocked = false;
  // Traffic from the peer (its own DATA carrying an ack) revives us after
  // poke(); simulate the discovery service noticing and poking.
  p.a->poke();
  p.ex.run();
  EXPECT_EQ(p.at_b.size(), 1u);
}

TEST(ReliableChannel, ResetDropsOutboundData) {
  ChannelPair p;
  p.drop_from_a = [](const Packet&) { return true; };
  for (int i = 0; i < 5; ++i) (void)p.a->send(to_bytes("queued"));
  EXPECT_GT(p.a->in_flight() + p.a->queued(), 0u);
  p.a->reset();
  EXPECT_EQ(p.a->in_flight(), 0u);
  EXPECT_EQ(p.a->queued(), 0u);
  // After reset the channel still works for new messages.
  p.drop_from_a = nullptr;
  (void)p.a->send(to_bytes("after-reset"));
  p.ex.run();
  // Seqs 0..4 never reached the peer, so it never adopted session 111;
  // the post-reset message arrives mid-stream (seq 5) in an unknown session
  // and is dropped — which is why a purge-then-readmit always uses a fresh
  // session starting at seq 0 (tested below).
  EXPECT_TRUE(p.at_b.empty());
  // ≥1: the sender retransmits the unacknowledged message, and every copy
  // is dropped as stale.
  EXPECT_GE(p.b->stats().stale_session_dropped, 1u);
}

TEST(ReliableChannel, NewSessionAdoptedAtSeqZero) {
  ChannelPair p;
  (void)p.a->send(to_bytes("one"));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);

  // The member is purged and re-admitted: a fresh channel incarnation with
  // a new session id starts at seq 0 again.
  ReliableChannelConfig cfg;
  auto fresh = std::make_unique<ReliableChannel>(
      p.ex, p.id_a, p.id_b, /*session=*/333, cfg,
      [&p](const Packet& pk) {
        Bytes wire = pk.encode();
        p.ex.schedule_after(milliseconds(1), [&p, wire] {
          std::optional<Packet> q = Packet::decode(wire);
          if (q) p.b->on_packet(*q);
        });
      },
      [](BytesView) {});
  (void)fresh->send(to_bytes("fresh"));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 2u);
  EXPECT_EQ(p.at_b[1], "fresh");
}

TEST(ReliableChannel, StaleSessionPacketsDropped) {
  ChannelPair p;
  (void)p.a->send(to_bytes("current"));
  p.ex.run();

  // Forge a mid-stream packet from an unknown session: must be ignored.
  Packet stale;
  stale.type = PacketType::kData;
  stale.session = 999;
  stale.src = p.id_a;
  stale.dst = p.id_b;
  stale.seq = 7;  // not zero → cannot start a new incarnation
  stale.payload = to_bytes("ghost");
  p.b->on_packet(stale);
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.b->stats().stale_session_dropped, 1u);
}

TEST(ReliableChannel, RejoinedPeerNeverDeliversStaleBatchedBacklog) {
  // A purged-and-rejoined peer's fresh receiver is told (by the membership
  // handshake) the session its new stream will speak. Retransmissions from
  // the previous incarnation — including the seq-0 frame that would win
  // the adoption race, and a batched frame whose sub-messages are the old
  // queued backlog — must be dropped whole, not delivered or acknowledged.
  ChannelPair p;
  Bytes stale_seq0, stale_batch;
  p.tap_from_a = [&](const Packet& pk) {
    if (pk.type != PacketType::kData) return;
    if (pk.seq == 0) stale_seq0 = pk.encode();
    if (pk.flags & kFlagBatched) stale_batch = pk.encode();
  };
  for (int i = 0; i < 5; ++i) {
    (void)p.a->send(to_bytes("old" + std::to_string(i)));
  }
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 5u);  // old incarnation: all delivered
  ASSERT_FALSE(stale_seq0.empty());
  ASSERT_FALSE(stale_batch.empty());  // old1..old4 coalesced after the ack

  // Fresh receiver incarnation; the reserved session for the new stream is
  // 444, so anything below is a relic of the purged incarnation.
  ReliableChannelConfig fresh_cfg;
  fresh_cfg.min_peer_session = 444;
  std::vector<std::string> at_b2;
  std::vector<Packet> b2_out;
  std::function<void(const Packet&)> b2_send =
      [&](const Packet& pk) { b2_out.push_back(pk); };
  ReliableChannel b2(
      p.ex, p.id_b, p.id_a, /*session=*/334, fresh_cfg,
      [&](const Packet& pk) { b2_send(pk); },
      [&](BytesView m) { at_b2.emplace_back(to_string(m)); });

  b2.on_packet(*Packet::decode(stale_seq0));   // adoption race: seq 0
  b2.on_packet(*Packet::decode(stale_batch));  // stale batched backlog
  p.ex.run();
  EXPECT_TRUE(at_b2.empty());
  EXPECT_EQ(b2.stats().stale_session_dropped, 2u);
  // A stale frame must not even be acknowledged — an ack would let the old
  // incarnation's sender advance as if the new member had the data.
  EXPECT_TRUE(b2_out.empty());

  // The reserved-session sender delivers normally, batching included.
  ReliableChannel a2(
      p.ex, p.id_a, p.id_b, /*session=*/444, ReliableChannelConfig{},
      [&](const Packet& pk) {
        Bytes wire = pk.encode();
        p.ex.schedule_after(milliseconds(1), [&b2, wire] {
          std::optional<Packet> q = Packet::decode(wire);
          if (q) b2.on_packet(*q);
        });
      },
      [](BytesView) {});
  b2_send = [&](const Packet& pk) {
    Bytes wire = pk.encode();
    p.ex.schedule_after(milliseconds(1), [&a2, wire] {
      std::optional<Packet> q = Packet::decode(wire);
      if (q) a2.on_packet(*q);
    });
  };
  for (int i = 0; i < 5; ++i) {
    (void)a2.send(to_bytes("new" + std::to_string(i)));
  }
  p.ex.run();
  ASSERT_EQ(at_b2.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(at_b2[i], "new" + std::to_string(i));
  }
}

TEST(ReliableChannel, IgnoresPacketsFromWrongPeer) {
  ChannelPair p;
  Packet foreign;
  foreign.type = PacketType::kData;
  foreign.session = 1;
  foreign.src = ServiceId(0xBEEF);
  foreign.dst = p.id_b;
  foreign.seq = 0;
  foreign.payload = to_bytes("intruder");
  p.b->on_packet(foreign);
  p.ex.run();
  EXPECT_TRUE(p.at_b.empty());
}

TEST(ReliableChannel, NonsenseAckIgnored) {
  ChannelPair p;
  (void)p.a->send(to_bytes("x"));
  Packet bogus;
  bogus.type = PacketType::kAck;
  bogus.session = 222;
  bogus.src = p.id_b;
  bogus.dst = p.id_a;
  bogus.ack = 1000;  // acks messages never sent
  p.a->on_packet(bogus);
  p.ex.run();
  EXPECT_EQ(p.at_b.size(), 1u);  // normal flow unaffected
}

// ---- Property test: exactly-once, per-sender FIFO under randomised chaos.

class ChannelChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelChaosTest, ExactlyOnceInOrderUnderLossDupReorder) {
  ReliableChannelConfig cfg;
  cfg.rto_initial = milliseconds(30);
  cfg.max_retries = 30;
  ChannelPair p(cfg);
  Rng chaos(GetParam());
  p.jitter = milliseconds(8);  // reordering via random delays
  double loss = 0.05 + 0.3 * chaos.uniform();
  p.drop_from_a = [&, loss](const Packet&) mutable {
    return chaos.chance(loss);
  };
  p.drop_from_b = [&, loss](const Packet&) mutable {
    return chaos.chance(loss * 0.5);
  };

  constexpr int kMessages = 120;
  int sent = 0;
  // Trickle sends over time so the window never hard-blocks the test.
  std::function<void()> pump = [&] {
    for (int burst = 0; burst < 4 && sent < kMessages; ++burst) {
      ASSERT_TRUE(p.a->send(to_bytes("m" + std::to_string(sent))));
      ++sent;
    }
    if (sent < kMessages) {
      p.ex.schedule_after(milliseconds(20), pump);
    }
  };
  pump();
  p.ex.run_for(seconds(120));
  p.ex.run();

  ASSERT_EQ(p.at_b.size(), static_cast<std::size_t>(kMessages))
      << "seed " << GetParam() << " loss " << loss;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(p.at_b[i], "m" + std::to_string(i)) << "seed " << GetParam();
  }
  EXPECT_EQ(p.failures, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelChaosTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---- Fragmentation (small-MTU transports like ZigBee, §VI).

TEST(ReliableChannelFragmentation, LargeMessageIsSplitAndReassembled) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 100;
  ChannelPair p(cfg);
  Bytes big(350, 0);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(p.a->send(Bytes(big)));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(Bytes(p.at_b[0].begin(), p.at_b[0].end()), big);
  EXPECT_EQ(p.a->stats().fragments_sent, 4u);  // 100+100+100+50
  EXPECT_EQ(p.b->stats().messages_reassembled, 1u);
  EXPECT_EQ(p.b->stats().messages_delivered, 1u);  // one *message*
}

TEST(ReliableChannelFragmentation, SmallMessagesAreNotFragmented) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 100;
  ChannelPair p(cfg);
  ASSERT_TRUE(p.a->send(to_bytes("short")));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.a->stats().fragments_sent, 0u);
  EXPECT_EQ(p.b->stats().messages_reassembled, 0u);
}

TEST(ReliableChannelFragmentation, ExactMultipleBoundary) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 100;
  ChannelPair p(cfg);
  ASSERT_TRUE(p.a->send(Bytes(200, 7)));  // exactly two full fragments
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0].size(), 200u);
  EXPECT_EQ(p.a->stats().fragments_sent, 2u);
}

TEST(ReliableChannelFragmentation, InterleavedWithSmallMessagesStaysOrdered) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 50;
  ChannelPair p(cfg);
  (void)p.a->send(to_bytes("first"));
  (void)p.a->send(Bytes(120, 'x'));  // 3 fragments
  (void)p.a->send(to_bytes("last"));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 3u);
  EXPECT_EQ(p.at_b[0], "first");
  EXPECT_EQ(p.at_b[1].size(), 120u);
  EXPECT_EQ(p.at_b[2], "last");
}

TEST(ReliableChannelFragmentation, SurvivesFragmentLoss) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 64;
  cfg.rto_initial = milliseconds(30);
  ChannelPair p(cfg);
  Rng chaos(77);
  p.drop_from_a = [&](const Packet& pk) {
    return pk.type == PacketType::kData && chaos.chance(0.3);
  };
  Bytes big(1000, 0);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  ASSERT_TRUE(p.a->send(Bytes(big)));
  p.ex.run_for(seconds(60));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(Bytes(p.at_b[0].begin(), p.at_b[0].end()), big);
}

TEST(ReliableChannelFragmentation, QueueBoundIsAllOrNothing) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 10;
  cfg.window = 1;
  cfg.max_queue = 5;
  ChannelPair p(cfg);
  p.drop_from_a = [](const Packet&) { return true; };  // wedge the window
  // 60 bytes → 6 fragments > queue bound of 5 after the first message.
  ASSERT_TRUE(p.a->send(Bytes(30, 1)));   // 3 fragments fit
  ASSERT_FALSE(p.a->send(Bytes(60, 2)));  // would need 6 slots: rejected
  EXPECT_EQ(p.a->queued() + p.a->in_flight(), 3u);
}

TEST(ReliableChannelFragmentation, ReassemblyOverflowDropsMessage) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 100;
  cfg.max_reassembly_bytes = 250;
  ChannelPair p(cfg);
  ASSERT_TRUE(p.a->send(Bytes(400, 9)));  // exceeds the receiver's bound
  ASSERT_TRUE(p.a->send(to_bytes("after")));
  p.ex.run();
  // The oversized message is dropped but the stream continues.
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0], "after");
  EXPECT_GE(p.b->stats().reassembly_overflow_dropped, 1u);
}

TEST(ReliableChannelFragmentation, AdaptiveRtoStillLearns) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 64;
  ChannelPair p(cfg);
  (void)p.a->send(Bytes(500, 3));
  p.ex.run();
  EXPECT_GT(p.a->srtt(), Duration{});
}

// ---- SharedPayload: owned head + shared immutable tail (encode-once
// fan-out support).

TEST(ReliableChannelSharedPayload, HeadAndTailArriveAsOneMessage) {
  ChannelPair p;
  auto tail = std::make_shared<const Bytes>(to_bytes("shared-body"));
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("head:"), tail}));
  // The same tail can back many messages without copying.
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("other:"), tail}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 2u);
  EXPECT_EQ(p.at_b[0], "head:shared-body");
  EXPECT_EQ(p.at_b[1], "other:shared-body");
}

TEST(ReliableChannelSharedPayload, NullTailIsHeadOnly) {
  ChannelPair p;
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("solo"), nullptr}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0], "solo");
}

TEST(ReliableChannelSharedPayload, TailSurvivesSenderReleasingItsReference) {
  // The channel keeps the tail alive across retransmissions even after the
  // fan-out that produced it is long gone.
  ReliableChannelConfig cfg;
  ChannelPair p(cfg);
  int dropped = 0;
  p.drop_from_a = [&](const Packet& pk) {
    // Drop the first two transmissions.
    return pk.type == PacketType::kData && ++dropped <= 2;
  };
  {
    auto tail = std::make_shared<const Bytes>(to_bytes("-persistent"));
    ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("msg"), tail}));
  }  // sender's reference gone; only the channel holds the bytes now
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0], "msg-persistent");
  EXPECT_GT(p.a->stats().retransmissions, 0u);
}

TEST(ReliableChannelSharedPayload, OversizeSharedMessageIsFragmented) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 64;
  ChannelPair p(cfg);
  Bytes body(150, 0);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::uint8_t>(i);
  }
  auto tail = std::make_shared<const Bytes>(body);
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("hdr"), tail}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  Bytes expected = to_bytes("hdr");
  expected.insert(expected.end(), body.begin(), body.end());
  EXPECT_EQ(Bytes(p.at_b[0].begin(), p.at_b[0].end()), expected);
  EXPECT_EQ(p.b->stats().messages_reassembled, 1u);
}

// ---- Frame coalescing: queued small messages share one batched DATA
// frame; knobs off reproduce the legacy wire format byte for byte.

// Builds a batched DATA frame the way a remote sender would put it on the
// wire (encode → decode round trip yields the contiguous payload form).
Packet forge_batched(ServiceId src, ServiceId dst, std::uint32_t session,
                     std::uint32_t seq,
                     const std::vector<Bytes>& messages) {
  Packet p;
  p.type = PacketType::kData;
  p.flags = kFlagBatched;
  p.session = session;
  p.src = src;
  p.dst = dst;
  p.seq = seq;
  for (const Bytes& m : messages) {
    p.batch.push_back(Packet::Sub{BytesView(m), BytesView{}});
  }
  std::optional<Packet> q = Packet::decode(p.encode());
  EXPECT_TRUE(q.has_value());
  return *q;
}

TEST(ReliableChannelCoalescing, DisabledKnobsAreByteIdenticalLegacy) {
  ReliableChannelConfig off;
  off.max_batch_messages = 0;
  off.max_batch_bytes = 0;
  off.ack_delay = Duration{};
  ChannelPair p(off);
  std::vector<Bytes> data_frames;
  int ack_frames = 0;
  p.tap_from_a = [&](const Packet& pk) {
    if (pk.type == PacketType::kData) data_frames.push_back(pk.encode());
  };
  p.tap_from_b = [&](const Packet& pk) {
    if (pk.type == PacketType::kAck) ++ack_frames;
  };
  ASSERT_TRUE(p.a->send(to_bytes("alpha")));
  ASSERT_TRUE(p.a->send(to_bytes("beta")));
  p.ex.run();

  ASSERT_EQ(p.at_b.size(), 2u);
  ASSERT_EQ(data_frames.size(), 2u);
  // Reconstruct what the pre-coalescing wire format put on the link.
  Packet want;
  want.type = PacketType::kData;
  want.session = 111;
  want.src = p.id_a;
  want.dst = p.id_b;
  want.seq = 0;
  want.ack = 0;
  want.payload = to_bytes("alpha");
  EXPECT_EQ(data_frames[0], want.encode());
  want.seq = 1;
  want.payload = to_bytes("beta");
  EXPECT_EQ(data_frames[1], want.encode());
  // …and the legacy ack discipline: one immediate ack per DATA frame.
  EXPECT_EQ(ack_frames, 2);
  EXPECT_EQ(p.b->stats().acks_delayed, 0u);
  EXPECT_EQ(p.a->stats().batches_sent, 0u);
}

TEST(ReliableChannelCoalescing, QueuedSmallMessagesShareOneFrame) {
  ChannelPair p;  // defaults: coalescing + delayed acks on
  int data_frames = 0;
  int batched_frames = 0;
  p.tap_from_a = [&](const Packet& pk) {
    if (pk.type != PacketType::kData) return;
    ++data_frames;
    if ((pk.flags & kFlagBatched) != 0) ++batched_frames;
  };
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(p.a->send(to_bytes("m" + std::to_string(i))));
  }
  p.ex.run();

  ASSERT_EQ(p.at_b.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.at_b[i], "m" + std::to_string(i));
  }
  // First message goes out alone (nothing in flight to wait behind); the
  // rest coalesce ack-clocked: window space 8 → one batch of 8, then the
  // last message alone. 3 datagrams carry 10 messages.
  EXPECT_EQ(data_frames, 3);
  EXPECT_EQ(batched_frames, 1);
  EXPECT_EQ(p.a->stats().batches_sent, 1u);
  EXPECT_EQ(p.a->stats().batched_messages, 8u);
  EXPECT_EQ(p.a->stats().datagrams_sent, 3u);
  EXPECT_EQ(p.a->stats().retransmissions, 0u);
}

TEST(ReliableChannelCoalescing, SaturationDatagramEconomy) {
  ChannelPair p;
  constexpr int kMessages = 48;
  int sent = 0;
  std::function<void()> pump = [&] {
    for (int burst = 0; burst < 8 && sent < kMessages; ++burst) {
      ASSERT_TRUE(p.a->send(to_bytes("m" + std::to_string(sent++))));
    }
    if (sent < kMessages) p.ex.schedule_after(milliseconds(5), pump);
  };
  pump();
  p.ex.run();

  ASSERT_EQ(p.at_b.size(), static_cast<std::size_t>(kMessages));
  // Both directions together (DATA + ACK datagrams) stay well under the
  // legacy cost of 2 datagrams per message — the PR's headline invariant.
  std::uint64_t total = p.a->stats().datagrams_sent +
                        p.b->stats().datagrams_sent;
  EXPECT_LT(static_cast<double>(total) / kMessages, 1.2);
  EXPECT_GT(p.a->stats().batches_sent, 0u);
  EXPECT_GT(p.b->stats().acks_delayed, 0u);
}

TEST(ReliableChannelCoalescing, LostBatchIsRetransmittedAndDeliveredOnce) {
  ChannelPair p;
  bool dropped_one = false;
  p.drop_from_a = [&](const Packet& pk) {
    if (!dropped_one && (pk.flags & kFlagBatched) != 0) {
      dropped_one = true;
      return true;
    }
    return false;
  };
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(p.a->send(to_bytes("m" + std::to_string(i))));
  }
  p.ex.run();

  ASSERT_TRUE(dropped_one);
  ASSERT_EQ(p.at_b.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(p.at_b[i], "m" + std::to_string(i));
  // The whole lost batch was retransmitted (go-back-N re-coalesces it).
  EXPECT_GT(p.a->stats().retransmissions, 0u);
  EXPECT_GE(p.a->stats().batches_sent, 2u);
  EXPECT_EQ(p.failures, 0);
}

TEST(ReliableChannelCoalescing, PartialBatchOverlapDeliversOnlyUnseenTail) {
  ChannelPair p;
  // Adopt a forged session at seq 0 with a batch of two, then replay a
  // batch covering [1, 3): sub at seq 1 is already delivered (a partially
  // acked batch retransmitted by a peer that missed our ack), only seq 2
  // is new.
  p.b->on_packet(forge_batched(p.id_a, p.id_b, /*session=*/111, /*seq=*/0,
                               {to_bytes("A"), to_bytes("B")}));
  std::uint64_t dup_before = p.b->stats().duplicates_dropped;
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, /*seq=*/1,
                               {to_bytes("B"), to_bytes("C")}));
  p.ex.run();

  ASSERT_EQ(p.at_b.size(), 3u);
  EXPECT_EQ(p.at_b[0], "A");
  EXPECT_EQ(p.at_b[1], "B");
  EXPECT_EQ(p.at_b[2], "C");
  EXPECT_EQ(p.b->stats().duplicates_dropped, dup_before + 1);
}

TEST(ReliableChannelCoalescing, WhollyStaleBatchCountsOneDuplicate) {
  ChannelPair p;
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, 0,
                               {to_bytes("A"), to_bytes("B")}));
  ASSERT_EQ(p.at_b.size(), 2u);
  std::uint64_t acks_before = p.b->stats().acks_sent;
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, 0,
                               {to_bytes("A"), to_bytes("B")}));
  EXPECT_EQ(p.at_b.size(), 2u);  // nothing redelivered
  // The re-ack is delayed, not immediate.
  EXPECT_EQ(p.b->stats().acks_sent, acks_before);
  p.ex.run();
  EXPECT_EQ(p.b->stats().acks_sent, acks_before + 1);
}

TEST(ReliableChannelCoalescing, OutOfOrderBatchIsBufferedPerSeq) {
  ChannelPair p;
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, 0, {to_bytes("m0")}));
  ASSERT_EQ(p.at_b.size(), 1u);
  std::uint64_t acks_before = p.b->stats().acks_sent;
  // A batch ahead of the stream: buffer its subs, ack immediately (the
  // duplicate cumulative ack drives the sender's fast retransmit).
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, /*seq=*/2,
                               {to_bytes("m2"), to_bytes("m3")}));
  EXPECT_EQ(p.b->stats().acks_sent, acks_before + 1);
  EXPECT_EQ(p.b->stats().out_of_order_buffered, 2u);
  EXPECT_EQ(p.at_b.size(), 1u);
  // The hole fills: buffered subs drain in order.
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, 1, {to_bytes("m1")}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(p.at_b[i], "m" + std::to_string(i));
}

TEST(ReliableChannelCoalescing, MalformedBatchIsDroppedWithoutStateChange) {
  ChannelPair p;
  Packet bad;
  bad.type = PacketType::kData;
  bad.flags = kFlagBatched;
  bad.session = 111;
  bad.src = p.id_a;
  bad.dst = p.id_b;
  bad.seq = 0;
  bad.payload = to_bytes("\x00\x09x");  // claims 9 bytes, has 1
  p.b->on_packet(bad);
  p.ex.run();
  EXPECT_TRUE(p.at_b.empty());
  EXPECT_EQ(p.b->stats().malformed_batch_dropped, 1u);
  // The garbage frame must not have adopted a session: a valid stream from
  // a different incarnation still starts cleanly at seq 0.
  p.b->on_packet(forge_batched(p.id_a, p.id_b, /*session=*/777, 0,
                               {to_bytes("ok")}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.at_b[0], "ok");
}

TEST(ReliableChannelCoalescing, FragmentsAreNeverBatched) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 100;
  ChannelPair p(cfg);
  p.tap_from_a = [&](const Packet& pk) {
    // A frame is a fragment or a batch, never both.
    EXPECT_FALSE((pk.flags & kFlagBatched) != 0 &&
                 (pk.flags & kFlagMoreFragments) != 0);
    if ((pk.flags & kFlagBatched) != 0) {
      // Sender-side batches hold subs in `batch`; the wire form must
      // decode (i.e. tile into sub-messages) on the receiving side.
      std::optional<Packet> q = Packet::decode(pk.encode());
      ASSERT_TRUE(q.has_value());
      ASSERT_TRUE(Packet::split_batch(q->payload).has_value());
    }
  };
  ASSERT_TRUE(p.a->send(Bytes(350, 0x42)));  // 4 fragments
  ASSERT_TRUE(p.a->send(to_bytes("tail-1")));
  ASSERT_TRUE(p.a->send(to_bytes("tail-2")));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 3u);
  EXPECT_EQ(p.at_b[0].size(), 350u);
  EXPECT_EQ(p.at_b[1], "tail-1");
  EXPECT_EQ(p.at_b[2], "tail-2");
  EXPECT_EQ(p.b->stats().messages_reassembled, 1u);
}

TEST(ReliableChannelCoalescing, BatchRespectsFragmentSizeBudget) {
  // On a small-MTU transport every frame — batched or not — must stay
  // within the fragment payload bound.
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 100;
  ChannelPair p(cfg);
  std::size_t max_frame = 0;
  p.tap_from_a = [&](const Packet& pk) {
    max_frame = std::max(max_frame, pk.encode().size());
  };
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(p.a->send(Bytes(40, static_cast<std::uint8_t>(i))));
  }
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 10u);
  EXPECT_LE(max_frame, 100u + Packet::kOverhead);
  EXPECT_GT(p.a->stats().batches_sent, 0u);
}

TEST(ReliableChannelCoalescing, OversizedMessageTravelsAloneUnbatched) {
  ChannelPair p;  // default budget 8192 B
  std::vector<std::uint32_t> batched_seqs;
  p.tap_from_a = [&](const Packet& pk) {
    if ((pk.flags & kFlagBatched) != 0) batched_seqs.push_back(pk.seq);
  };
  ASSERT_TRUE(p.a->send(Bytes(9000, 0x7E)));  // over budget: legacy frame
  ASSERT_TRUE(p.a->send(to_bytes("s0")));
  ASSERT_TRUE(p.a->send(to_bytes("s1")));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 3u);
  EXPECT_EQ(p.at_b[0].size(), 9000u);
  // Only the two small messages coalesced (as seq 1).
  ASSERT_EQ(batched_seqs.size(), 1u);
  EXPECT_EQ(batched_seqs[0], 1u);
}

TEST(ReliableChannelCoalescing, SharedTailsBlitIntoBatchedFrames) {
  ChannelPair p;
  auto tail = std::make_shared<const Bytes>(to_bytes("|shared-body"));
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("h0"), tail}));
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("h1"), tail}));
  ASSERT_TRUE(p.a->send(SharedPayload{to_bytes("h2"), tail}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 3u);
  EXPECT_EQ(p.at_b[0], "h0|shared-body");
  EXPECT_EQ(p.at_b[1], "h1|shared-body");
  EXPECT_EQ(p.at_b[2], "h2|shared-body");
  // h1 and h2 coalesced behind h0's flight.
  EXPECT_EQ(p.a->stats().batches_sent, 1u);
  EXPECT_EQ(p.a->stats().batched_messages, 2u);
}

TEST(ReliableChannelCoalescing, ChaosWithLossKeepsExactlyOnceFifo) {
  // The generic chaos suite runs with default (coalescing) config too, but
  // pin one seed with heavy loss so partial-batch ack + re-batched
  // retransmission paths are exercised deterministically in this suite.
  ReliableChannelConfig cfg;
  cfg.rto_initial = milliseconds(30);
  cfg.max_retries = 30;
  ChannelPair p(cfg);
  Rng chaos(4242);
  p.jitter = milliseconds(8);
  p.drop_from_a = [&](const Packet&) { return chaos.chance(0.3); };
  p.drop_from_b = [&](const Packet&) { return chaos.chance(0.15); };
  constexpr int kMessages = 100;
  int sent = 0;
  std::function<void()> pump = [&] {
    for (int burst = 0; burst < 6 && sent < kMessages; ++burst) {
      ASSERT_TRUE(p.a->send(to_bytes("m" + std::to_string(sent++))));
    }
    if (sent < kMessages) p.ex.schedule_after(milliseconds(15), pump);
  };
  pump();
  p.ex.run_for(seconds(120));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(p.at_b[i], "m" + std::to_string(i));
  }
  EXPECT_GT(p.a->stats().batches_sent, 0u);
  EXPECT_EQ(p.failures, 0);
}

// ---- Interop: batching is flag-gated under the same packet version, so
// mixed deployments (upgraded bus, legacy members — or vice versa) work.

TEST(ReliableChannelInterop, UnbatchedSenderToBatchCapableReceiver) {
  ReliableChannelConfig legacy;
  legacy.max_batch_messages = 0;
  legacy.max_batch_bytes = 0;
  legacy.ack_delay = Duration{};
  ChannelPair p(legacy, ReliableChannelConfig{});  // a legacy, b modern
  p.tap_from_a = [&](const Packet& pk) {
    EXPECT_EQ(pk.flags & kFlagBatched, 0);
  };
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(p.a->send(to_bytes("v1-" + std::to_string(i))));
  }
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(p.at_b[i], "v1-" + std::to_string(i));
  }
  EXPECT_EQ(p.a->stats().batches_sent, 0u);
}

TEST(ReliableChannelInterop, BatchingSenderToLegacyConfiguredReceiver) {
  // The receive path understands batched frames regardless of config —
  // the knobs only govern what a sender emits and how acks are timed.
  ReliableChannelConfig legacy;
  legacy.max_batch_messages = 0;
  legacy.max_batch_bytes = 0;
  legacy.ack_delay = Duration{};
  ChannelPair p(legacy, ReliableChannelConfig{});  // b is the modern sender
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(p.b->send(to_bytes("v2-" + std::to_string(i))));
  }
  p.ex.run();
  ASSERT_EQ(p.at_a.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(p.at_a[i], "v2-" + std::to_string(i));
  }
  EXPECT_GT(p.b->stats().batches_sent, 0u);
}

// ---- Delayed acks (RFC 1122-style ack-every-2nd-or-timeout).

TEST(ReliableChannelDelayedAck, SingleFrameAckedOnceAfterDelay) {
  ChannelPair p;
  ASSERT_TRUE(p.a->send(to_bytes("lonely")));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  EXPECT_EQ(p.b->stats().acks_sent, 1u);
  EXPECT_EQ(p.b->stats().acks_delayed, 1u);
  EXPECT_EQ(p.a->in_flight(), 0u);  // the delayed ack did arrive
}

TEST(ReliableChannelDelayedAck, SecondFrameForcesImmediateAck) {
  // Disable batching on the sender so two messages mean two DATA frames.
  ReliableChannelConfig no_batch;
  no_batch.max_batch_messages = 0;
  no_batch.max_batch_bytes = 0;
  ChannelPair p(no_batch);
  ASSERT_TRUE(p.a->send(to_bytes("one")));
  ASSERT_TRUE(p.a->send(to_bytes("two")));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 2u);
  // Frame 1 deferred its ack; frame 2 hit the every-2nd rule: one ack
  // covered both, sent without waiting for the timer.
  EXPECT_EQ(p.b->stats().acks_sent, 1u);
  EXPECT_EQ(p.b->stats().acks_delayed, 1u);
}

TEST(ReliableChannelDelayedAck, DuplicateBurstYieldsSingleAck) {
  ChannelPair p;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(p.a->send(to_bytes("m" + std::to_string(i))));
  }
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 4u);

  // A go-back-N window retransmitted after our acks were lost: four stale
  // DATA frames land back to back. Legacy behaviour answered each with an
  // immediate ack (a window-sized ack burst); now they share one delayed
  // ack.
  std::uint64_t acks_before = p.b->stats().acks_sent;
  std::uint64_t dups_before = p.b->stats().duplicates_dropped;
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    Packet stale;
    stale.type = PacketType::kData;
    stale.session = 111;
    stale.src = p.id_a;
    stale.dst = p.id_b;
    stale.seq = seq;
    stale.payload = to_bytes("m" + std::to_string(seq));
    p.b->on_packet(stale);
  }
  EXPECT_EQ(p.b->stats().acks_sent, acks_before);  // nothing yet
  p.ex.run();
  EXPECT_EQ(p.b->stats().acks_sent, acks_before + 1);
  EXPECT_EQ(p.b->stats().duplicates_dropped, dups_before + 4);
  EXPECT_EQ(p.at_b.size(), 4u);  // and nothing redelivered
}

TEST(ReliableChannelDelayedAck, OutOfOrderFrameAckedImmediately) {
  ChannelPair p;
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, 0, {to_bytes("m0")}));
  std::uint64_t acks_before = p.b->stats().acks_sent;
  Packet ahead;
  ahead.type = PacketType::kData;
  ahead.session = 111;
  ahead.src = p.id_a;
  ahead.dst = p.id_b;
  ahead.seq = 3;
  ahead.payload = to_bytes("m3");
  p.b->on_packet(ahead);
  // No timer wait: the duplicate cumulative ack goes out synchronously so
  // the sender's fast-retransmit clock keeps ticking.
  EXPECT_EQ(p.b->stats().acks_sent, acks_before + 1);
}

TEST(ReliableChannelDelayedAck, PiggybackedAckCancelsPendingDelayedAck) {
  ChannelPair p;
  int explicit_acks = 0;
  p.tap_from_b = [&](const Packet& pk) {
    if (pk.type == PacketType::kAck) ++explicit_acks;
  };
  ASSERT_TRUE(p.a->send(to_bytes("ping")));
  // b receives at +1 ms and owes an ack; its own reverse DATA goes out
  // before the 2 ms ack timer fires and carries the cumulative ack.
  p.ex.schedule_after(milliseconds(1), [&] {
    ASSERT_TRUE(p.b->send(to_bytes("pong")));
  });
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 1u);
  ASSERT_EQ(p.at_a.size(), 1u);
  EXPECT_EQ(explicit_acks, 0);  // piggyback replaced the explicit ack
  EXPECT_EQ(p.a->in_flight(), 0u);
}

// ---- Receive-side reorder-buffer overflow (max_reorder hit).

TEST(ReliableChannelReorder, OverflowDropsExcessAndStreamRecovers) {
  ReliableChannelConfig cfg;
  cfg.max_reorder = 2;
  ChannelPair p(cfg);
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, 0, {to_bytes("m0")}));
  ASSERT_EQ(p.at_b.size(), 1u);

  // Three frames beyond the hole at seq 1: only two fit the buffer.
  for (std::uint32_t seq : {5u, 6u, 7u}) {
    Packet ahead;
    ahead.type = PacketType::kData;
    ahead.session = 111;
    ahead.src = p.id_a;
    ahead.dst = p.id_b;
    ahead.seq = seq;
    ahead.payload = to_bytes("m" + std::to_string(seq));
    p.b->on_packet(ahead);
  }
  EXPECT_EQ(p.b->stats().out_of_order_buffered, 2u);
  EXPECT_GE(p.b->stats().duplicates_dropped, 1u);  // m7 had no buffer slot

  // The sender (go-back-N) would replay from the cumulative ack point:
  // filling seqs 1..4 drains the two buffered frames; m7 must arrive again.
  for (std::uint32_t seq = 1; seq <= 4; ++seq) {
    p.b->on_packet(
        forge_batched(p.id_a, p.id_b, 111, seq,
                      {to_bytes("m" + std::to_string(seq))}));
  }
  ASSERT_EQ(p.at_b.size(), 7u);  // m0..m6
  for (int i = 0; i < 7; ++i) EXPECT_EQ(p.at_b[i], "m" + std::to_string(i));
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, 7, {to_bytes("m7")}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 8u);
  EXPECT_EQ(p.at_b[7], "m7");
}

TEST(ReliableChannelReorder, OverflowingBatchBuffersPartially) {
  ReliableChannelConfig cfg;
  cfg.max_reorder = 2;
  ChannelPair p(cfg);
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, 0, {to_bytes("m0")}));
  // One out-of-order batch of three: two subs fit, the third is dropped.
  p.b->on_packet(forge_batched(
      p.id_a, p.id_b, 111, 2,
      {to_bytes("m2"), to_bytes("m3"), to_bytes("m4")}));
  EXPECT_EQ(p.b->stats().out_of_order_buffered, 2u);
  EXPECT_GE(p.b->stats().duplicates_dropped, 1u);
  p.b->on_packet(forge_batched(p.id_a, p.id_b, 111, 1, {to_bytes("m1")}));
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 4u);  // m0..m3; m4 awaits retransmission
  for (int i = 0; i < 4; ++i) EXPECT_EQ(p.at_b[i], "m" + std::to_string(i));
}

}  // namespace
}  // namespace amuse
