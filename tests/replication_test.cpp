// ReplState / ReplLog / ReplMirror unit tests, plus the kReplUpdate /
// kReplSnapshot wire codec — the warm-standby replication stream the HA
// core rides on (DESIGN.md §13). Mirrors the InterestMirror suite: version
// gap → resync, digest mismatch → refuse-and-resync, increment before any
// full snapshot → rejected, snapshots idempotent on a warm standby.
#include "bus/replication.hpp"

#include <gtest/gtest.h>

#include <set>

#include "bus/messages.hpp"
#include "common/rng.hpp"
#include "pubsub/codec.hpp"

namespace amuse {
namespace {

Filter fa() { return Filter::for_type("a"); }
Filter fb() { return Filter::for_type_prefix("b."); }

Bytes event_bytes(const char* type, std::uint64_t epoch, std::uint64_t seq) {
  Event e(type);
  e.set(kHaEpochAttr, static_cast<std::int64_t>(epoch));
  e.set(kHaSeqAttr, static_cast<std::int64_t>(seq));
  return encode_event(e);
}

// A log with one member and one subscription, pending ops drained — the
// state a live bus is in between mutations (the bus always drains before
// snapshotting; see EventBus::push_repl_snapshot).
ReplLog seeded_log() {
  ReplLog log;
  log.set_epoch(1);
  log.member_admitted(ServiceId(5), "sensor", "service");
  log.sub_added(ServiceId(5), 1, fa());
  (void)log.take_update();
  return log;
}

// ---- Wire codec.

TEST(ReplUpdateCodec, IncrementalRoundTrip) {
  ReplUpdate u;
  u.version = 9;
  u.epoch = 3;
  u.ops = {0x01, 0x02, 0x03};
  u.digest = Sha256::hash(BytesView(u.ops));

  BusMessage back = BusMessage::decode(BusMessage::repl_update(u).encode());
  EXPECT_EQ(back.type, BusMsgType::kReplUpdate);
  ASSERT_TRUE(back.repl.has_value());
  EXPECT_EQ(back.repl->version, 9u);
  EXPECT_EQ(back.repl->epoch, 3u);
  EXPECT_FALSE(back.repl->full);
  EXPECT_FALSE(back.repl->lease);
  EXPECT_FALSE(back.repl->request_resync);
  EXPECT_EQ(back.repl->ops, u.ops);
  EXPECT_TRUE(digest_equal(back.repl->digest, u.digest));
}

TEST(ReplUpdateCodec, SnapshotRoundTrip) {
  ReplLog log = seeded_log();
  ReplUpdate snap = log.snapshot();
  BusMessage back = BusMessage::decode(BusMessage::repl_update(snap).encode());
  EXPECT_EQ(back.type, BusMsgType::kReplSnapshot);
  ASSERT_TRUE(back.repl.has_value());
  EXPECT_TRUE(back.repl->full);
  EXPECT_EQ(back.repl->ops, snap.ops);
}

TEST(ReplUpdateCodec, LeaseRoundTrip) {
  ReplLog log = seeded_log();
  ReplUpdate lease = log.take_update();  // nothing pending → bare lease
  EXPECT_TRUE(lease.lease);
  BusMessage back = BusMessage::decode(BusMessage::repl_update(lease).encode());
  ASSERT_TRUE(back.repl.has_value());
  EXPECT_TRUE(back.repl->lease);
  EXPECT_TRUE(back.repl->ops.empty());
}

TEST(ReplUpdateCodec, ResyncRequestRoundTrip) {
  BusMessage back =
      BusMessage::decode(BusMessage::repl_resync_request().encode());
  EXPECT_EQ(back.type, BusMsgType::kReplUpdate);
  ASSERT_TRUE(back.repl.has_value());
  EXPECT_TRUE(back.repl->request_resync);
}

TEST(ReplUpdateCodec, RejectsUnknownFlags) {
  Bytes frame = BusMessage::repl_resync_request().encode();
  // Byte 0 is the message type; byte 1 the flag octet.
  frame[1] = 0x80;
  EXPECT_THROW((void)BusMessage::decode(frame), DecodeError);
}

TEST(ReplUpdateCodec, RejectsSnapshotTypeWithoutFullFlag) {
  ReplLog log = seeded_log();
  Bytes frame = BusMessage::repl_update(log.snapshot()).encode();
  frame[1] &= static_cast<std::uint8_t>(~0x01);  // clear the `full` flag
  EXPECT_THROW((void)BusMessage::decode(frame), DecodeError);
}

// ---- ReplState: canonical encoding.

TEST(ReplState, EncodeDecodeRoundTrip) {
  ReplLog log = seeded_log();
  log.member_admitted(ServiceId(6), "console", "nurse");
  log.sub_added(ServiceId(6), 4, fb());
  log.counters_changed(100, 7, 42, 13);
  auto evicted = log.spool_append(1, 13, event_bytes("a", 1, 13));
  EXPECT_TRUE(evicted.empty());

  ReplState back = ReplState::decode(log.state().encode());
  EXPECT_EQ(back.epoch, 1u);
  EXPECT_EQ(back.session_base, 100u);
  EXPECT_EQ(back.proxy_incarnations, 7u);
  EXPECT_EQ(back.fed_seq, 42u);
  EXPECT_EQ(back.route_seq, 13u);
  EXPECT_EQ(back.members.size(), 2u);
  EXPECT_EQ(back.members.at(5).subs.size(), 1u);
  EXPECT_EQ(back.members.at(6).role, "nurse");
  ASSERT_EQ(back.spool.size(), 1u);
  EXPECT_EQ(back.spool.front().seq, 13u);
  EXPECT_TRUE(digest_equal(back.digest(), log.state().digest()));
}

TEST(ReplState, SpoolEvictionIsBoundedAndReturned) {
  ReplLog::Limits limits;
  limits.max_spool_events = 3;
  ReplLog log(limits);
  log.set_epoch(1);
  for (std::uint64_t s = 1; s <= 5; ++s) {
    auto evicted = log.spool_append(1, s, event_bytes("a", 1, s));
    if (s <= 3) {
      EXPECT_TRUE(evicted.empty());
    } else {
      // Every entry that falls off the budget is handed back so the bus
      // can account it as a staleness-shed before the record disappears.
      ASSERT_EQ(evicted.size(), 1u);
      EXPECT_EQ(evicted.front().seq, s - 3);
    }
  }
  EXPECT_EQ(log.state().spool.size(), 3u);
  EXPECT_EQ(log.state().spool.front().seq, 3u);
}

// ---- ReplLog → ReplMirror: the streaming contract.

TEST(ReplMirror, SnapshotThenIncrementsApply) {
  ReplLog log = seeded_log();
  ReplMirror m;
  EXPECT_EQ(m.apply(log.snapshot()), ReplMirror::Apply::kApplied);
  EXPECT_TRUE(m.synced());
  EXPECT_EQ(m.state().members.size(), 1u);

  log.sub_added(ServiceId(5), 2, fb());
  EXPECT_EQ(m.apply(log.take_update()), ReplMirror::Apply::kApplied);
  EXPECT_EQ(m.state().members.at(5).subs.size(), 2u);
  EXPECT_EQ(m.version(), log.version());

  log.member_purged(ServiceId(5));
  EXPECT_EQ(m.apply(log.take_update()), ReplMirror::Apply::kApplied);
  EXPECT_TRUE(m.state().members.empty());
  EXPECT_TRUE(digest_equal(m.state().digest(), log.state().digest()));
}

TEST(ReplMirror, IncrementBeforeFullSnapshotNeedsResync) {
  ReplLog log = seeded_log();
  log.sub_added(ServiceId(5), 2, fb());
  ReplMirror m;
  EXPECT_EQ(m.apply(log.take_update()), ReplMirror::Apply::kResyncNeeded);
  EXPECT_FALSE(m.synced());
}

TEST(ReplMirror, VersionGapNeedsResync) {
  ReplLog log = seeded_log();
  ReplMirror m;
  ASSERT_EQ(m.apply(log.snapshot()), ReplMirror::Apply::kApplied);

  log.sub_added(ServiceId(5), 2, fb());
  (void)log.take_update();  // lost in transit
  log.sub_removed(ServiceId(5), 1);
  EXPECT_EQ(m.apply(log.take_update()), ReplMirror::Apply::kResyncNeeded);
  EXPECT_FALSE(m.synced());

  // Recovery: the bus answers the resync request with a snapshot.
  EXPECT_EQ(m.apply(log.snapshot()), ReplMirror::Apply::kApplied);
  EXPECT_TRUE(m.synced());
  EXPECT_TRUE(digest_equal(m.state().digest(), log.state().digest()));
}

TEST(ReplMirror, DigestMismatchNeedsResync) {
  ReplLog log = seeded_log();
  ReplMirror m;
  ASSERT_EQ(m.apply(log.snapshot()), ReplMirror::Apply::kApplied);

  log.sub_added(ServiceId(5), 2, fb());
  ReplUpdate u = log.take_update();
  u.digest = Digest256{};  // corrupted in transit / buggy sender
  EXPECT_EQ(m.apply(u), ReplMirror::Apply::kResyncNeeded);
  // Never route a promotion off a suspect replica.
  EXPECT_FALSE(m.synced());
}

TEST(ReplMirror, SnapshotIdempotentOnWarmStandby) {
  ReplLog log = seeded_log();
  ReplMirror m;
  ReplUpdate snap = log.snapshot();
  ASSERT_EQ(m.apply(snap), ReplMirror::Apply::kApplied);
  Digest256 before = m.state().digest();
  // The same snapshot again (admission retransmit, resync race): adopted
  // wholesale, state unchanged.
  EXPECT_EQ(m.apply(snap), ReplMirror::Apply::kApplied);
  EXPECT_TRUE(m.synced());
  EXPECT_TRUE(digest_equal(m.state().digest(), before));
}

TEST(ReplMirror, LeaseRenewalAppliesOnlyAtMatchingVersion) {
  ReplLog log = seeded_log();
  ReplMirror m;
  ASSERT_EQ(m.apply(log.snapshot()), ReplMirror::Apply::kApplied);

  ReplUpdate bare = log.take_update();
  ASSERT_TRUE(bare.lease);
  EXPECT_EQ(m.apply(bare), ReplMirror::Apply::kApplied);

  // A lease for a version we do not hold proves we missed an update.
  bare.version += 1;
  EXPECT_EQ(m.apply(bare), ReplMirror::Apply::kResyncNeeded);
}

TEST(ReplMirror, StaleEpochIsIgnoredNotResynced) {
  ReplLog old_core = seeded_log();
  ReplLog new_core;
  new_core.set_epoch(2);
  new_core.member_admitted(ServiceId(7), "sensor", "service");

  ReplMirror m;
  ASSERT_EQ(m.apply(new_core.snapshot()), ReplMirror::Apply::kApplied);
  EXPECT_EQ(m.epoch(), 2u);

  // The deposed core keeps streaming after the split brain: its state
  // must neither apply nor trigger a resync *from it*.
  EXPECT_EQ(m.apply(old_core.snapshot()), ReplMirror::Apply::kStaleEpoch);
  old_core.sub_added(ServiceId(5), 2, fb());
  EXPECT_EQ(m.apply(old_core.take_update()), ReplMirror::Apply::kStaleEpoch);
  EXPECT_TRUE(m.synced());
  EXPECT_EQ(m.state().members.count(7), 1u);
  EXPECT_EQ(m.state().members.count(5), 0u);
}

TEST(ReplMirror, TakeStateConsumesTheReplica) {
  ReplLog log = seeded_log();
  ReplMirror m;
  ASSERT_EQ(m.apply(log.snapshot()), ReplMirror::Apply::kApplied);
  ReplState replica = m.take_state();
  EXPECT_EQ(replica.members.size(), 1u);
  EXPECT_EQ(replica.epoch, 1u);
}

// ---- Standby roster replication (DESIGN.md §13.5): the quorum
// denominator every standby arbitrates over rides in the repl stream like
// any other durable state.

TEST(ReplState, StandbyRosterRoundTripsAndChangesTheDigest) {
  ReplLog log = seeded_log();
  Digest256 before = log.state().digest();
  log.standby_admitted(ServiceId(7));
  log.standby_admitted(ServiceId(9));
  (void)log.take_update();

  ReplState back = ReplState::decode(log.state().encode());
  EXPECT_EQ(back.standbys, (std::set<std::uint64_t>{7, 9}));
  // The roster is part of the canonical identity: two states differing
  // only in it must not share a digest.
  EXPECT_FALSE(digest_equal(log.state().digest(), before));
}

TEST(ReplMirror, StandbyRosterOpsApplyIncrementally) {
  ReplLog log = seeded_log();
  ReplMirror m;
  ASSERT_EQ(m.apply(log.snapshot()), ReplMirror::Apply::kApplied);
  EXPECT_TRUE(m.state().standbys.empty());

  log.standby_admitted(ServiceId(7));
  log.standby_admitted(ServiceId(9));
  EXPECT_EQ(m.apply(log.take_update()), ReplMirror::Apply::kApplied);
  EXPECT_EQ(m.state().standbys, (std::set<std::uint64_t>{7, 9}));

  log.standby_purged(ServiceId(7));
  EXPECT_EQ(m.apply(log.take_update()), ReplMirror::Apply::kApplied);
  EXPECT_EQ(m.state().standbys, (std::set<std::uint64_t>{9}));
  EXPECT_TRUE(digest_equal(m.state().digest(), log.state().digest()));
}

// ---- ResyncThrottle (satellite S1): a lossy repl link must cost a bounded
// number of snapshots, not one per gap.

TEST(ResyncThrottle, GrantsAtMostOnePerInterval) {
  ResyncThrottle t(milliseconds(600));
  TimePoint now{};
  EXPECT_TRUE(t.allow(now));  // first request always goes out
  now += milliseconds(100);
  EXPECT_FALSE(t.allow(now));
  now += milliseconds(100);
  EXPECT_FALSE(t.allow(now));
  EXPECT_EQ(t.suppressed(), 2u);
  now += milliseconds(500);  // past the interval
  EXPECT_TRUE(t.allow(now));
  EXPECT_EQ(t.suppressed(), 2u);
}

// 30% of the repl stream lost: every surviving update after a gap would
// ask for a full snapshot, but the throttle caps the resyncs at one per
// min_interval — the rest are suppressed (counted) and retried on the next
// update. The mirror still converges once the link lets a snapshot through.
TEST(ResyncThrottle, LossyLinkCostsBoundedResyncs) {
  ReplLog log = seeded_log();
  ReplMirror m;
  ASSERT_EQ(m.apply(log.snapshot()), ReplMirror::Apply::kApplied);

  ResyncThrottle throttle(milliseconds(600));
  Rng rng(0xC0FFEE);
  constexpr int kUpdates = 200;
  constexpr auto kTick = milliseconds(50);
  TimePoint now{};
  std::uint64_t gaps = 0;
  std::uint64_t resyncs = 0;
  for (int i = 0; i < kUpdates; ++i) {
    now += kTick;
    log.sub_added(ServiceId(5), 100 + static_cast<std::uint64_t>(i), fb());
    ReplUpdate u = log.take_update();
    if (rng.chance(0.3)) continue;  // lost in transit
    if (m.apply(u) == ReplMirror::Apply::kResyncNeeded) {
      ++gaps;
      // The standby's resync path: ask only when the throttle allows, and
      // the (reliable, control-class) answer is a full snapshot.
      if (throttle.allow(now)) {
        ++resyncs;
        ASSERT_EQ(m.apply(log.snapshot()), ReplMirror::Apply::kApplied);
      }
    }
  }
  ASSERT_EQ(m.apply(log.snapshot()), ReplMirror::Apply::kApplied);
  EXPECT_TRUE(m.synced());
  EXPECT_TRUE(digest_equal(m.state().digest(), log.state().digest()));

  // ~30% loss over 200 updates tears the stream far more often than the
  // throttle lets a snapshot out: the cap is wall-clock, not loss-rate.
  EXPECT_GT(gaps, resyncs);
  EXPECT_GT(throttle.suppressed(), 0u);
  EXPECT_EQ(gaps, resyncs + throttle.suppressed());
  const std::uint64_t cap =
      static_cast<std::uint64_t>((kUpdates * kTick) / milliseconds(600)) + 1;
  EXPECT_LE(resyncs, cap);
}

TEST(ReplLog, RestoreSeedsPromotedCore) {
  ReplLog log = seeded_log();
  log.counters_changed(50, 3, 9, 21);
  ReplState replica = ReplState::decode(log.state().encode());

  // The promoted core restores the replica at its own (higher) epoch.
  replica.epoch = 2;
  ReplLog promoted;
  promoted.restore(replica);
  EXPECT_EQ(promoted.state().epoch, 2u);
  EXPECT_EQ(promoted.state().members.size(), 1u);
  EXPECT_EQ(promoted.state().route_seq, 21u);

  // A standby admitted to the promoted core starts from its snapshot.
  ReplMirror m;
  EXPECT_EQ(m.apply(promoted.snapshot()), ReplMirror::Apply::kApplied);
  EXPECT_TRUE(digest_equal(m.state().digest(), promoted.state().digest()));
}

}  // namespace
}  // namespace amuse
