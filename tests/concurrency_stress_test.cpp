// Concurrency stress suite (ctest label: tsan).
//
// These tests exist to give ThreadSanitizer something to bite on: they
// hammer every cross-thread surface in the tree — RealExecutor's
// post/schedule_at/cancel/stop from producer threads racing the consumer
// loop, UdpTransport's receive thread racing send/broadcast and
// set_receive_handler swaps, and the global log sink swap racing emitters.
// They also pin down two previously-untested RealExecutor paths: cancelling
// an already-fired timer and stop() racing run_for().
//
// Every test is deterministic in outcome (counters, not timing assertions)
// so the suite is equally valid in uninstrumented builds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "net/udp_transport.hpp"
#include "sim/executor_pool.hpp"
#include "sim/real_executor.hpp"

namespace amuse {
namespace {

// --------------------------------------------------------------------------
// RealExecutor
// --------------------------------------------------------------------------

TEST(ExecutorStress, ManyProducersPostWhileConsumerRuns) {
  RealExecutor ex;
  constexpr int kThreads = 8;
  constexpr int kPostsPerThread = 500;
  std::atomic<int> executed{0};

  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&ex, &executed] {
      for (int i = 0; i < kPostsPerThread; ++i) {
        ex.post([&executed] { executed.fetch_add(1); });
      }
    });
  }
  for (auto& th : producers) th.join();

  // All tasks are queued; one run_for drains them (tasks are immediate).
  ex.post([&ex] { ex.stop(); });
  ex.run_for(seconds(30));
  // The stop() task was posted after every producer joined, so FIFO order
  // guarantees all producer tasks ran first.
  EXPECT_EQ(executed.load(), kThreads * kPostsPerThread);
}

TEST(ExecutorStress, ScheduleAndCancelRaceAcrossThreads) {
  RealExecutor ex;
  constexpr int kThreads = 4;
  constexpr int kTimersPerThread = 250;
  std::atomic<int> fired{0};
  std::atomic<bool> done{false};

  // The consumer runs while producers schedule timers into the near future
  // and immediately cancel every other one. Whether a given timer fires or
  // is cancelled first is a legitimate race; what must hold is: no crash,
  // no TSan report, and no cancelled-before-scheduled timer firing.
  std::thread consumer([&ex, &done] {
    while (!done.load()) ex.run_for(milliseconds(10));
  });

  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  std::atomic<int> never_expected{0};
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kTimersPerThread; ++i) {
        TimerId keep = ex.schedule_after(milliseconds(i % 5),
                                         [&fired] { fired.fetch_add(1); });
        TimerId drop = ex.schedule_after(
            seconds(86400), [&never_expected] { never_expected.fetch_add(1); });
        ex.cancel(drop);
        (void)keep;
      }
    });
  }
  for (auto& th : producers) th.join();

  // Drain what remains: every kept timer is at most 5ms out.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fired.load() < kThreads * kTimersPerThread &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  done.store(true);
  consumer.join();

  EXPECT_EQ(fired.load(), kThreads * kTimersPerThread);
  EXPECT_EQ(never_expected.load(), 0);
}

TEST(ExecutorStress, CancelAlreadyFiredTimerIsHarmless) {
  RealExecutor ex;
  bool ran = false;
  TimerId id = ex.schedule_after(milliseconds(1), [&] { ran = true; });
  ex.schedule_after(milliseconds(20), [&] { ex.stop(); });
  ex.run_for(seconds(10));
  ASSERT_TRUE(ran);

  // The id was consumed when the timer fired; cancelling it now must be a
  // no-op (and must not cancel an unrelated timer that reused state).
  ex.cancel(id);
  bool second = false;
  ex.schedule_after(milliseconds(1), [&] {
    second = true;
    ex.stop();
  });
  ex.cancel(id);  // still a no-op, even with a pending timer in the queue
  ex.run_for(seconds(10));
  EXPECT_TRUE(second);
}

TEST(ExecutorStress, CancelUnknownIdIsHarmless) {
  RealExecutor ex;
  ex.cancel(kNoTimer);
  ex.cancel(12345);  // never issued
  bool ran = false;
  ex.post([&] {
    ran = true;
    ex.stop();
  });
  ex.run_for(seconds(10));
  EXPECT_TRUE(ran);
}

TEST(ExecutorStress, StopRacesRunFor) {
  // stop() called from another thread while run_for() is live must wake the
  // loop promptly rather than relying on the poll tick or the deadline. We
  // synchronise on a posted task so stop() is only issued once the loop is
  // provably inside run_for (a stop before the loop starts is documented to
  // be cleared).
  for (int round = 0; round < 20; ++round) {
    RealExecutor ex;
    std::atomic<bool> entered{false};
    ex.post([&entered] { entered.store(true); });
    std::thread stopper([&] {
      while (!entered.load()) std::this_thread::yield();
      ex.stop();
    });
    auto t0 = std::chrono::steady_clock::now();
    ex.run_for(seconds(60));
    auto elapsed = std::chrono::steady_clock::now() - t0;
    stopper.join();
    // Far below the 60s deadline proves stop() took effect.
    EXPECT_LT(elapsed, std::chrono::seconds(10));
  }
}

TEST(ExecutorStress, StopFromManyThreadsAtOnce) {
  RealExecutor ex;
  std::atomic<bool> entered{false};
  ex.post([&entered] { entered.store(true); });
  std::vector<std::thread> stoppers;
  stoppers.reserve(4);
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&] {
      while (!entered.load()) std::this_thread::yield();
      ex.stop();
    });
  }
  ex.run_for(seconds(60));
  for (auto& th : stoppers) th.join();
  SUCCEED();  // termination without a TSan report is the assertion
}

// --------------------------------------------------------------------------
// Log sink (regression for the set_log_sink vs emit race window)
// --------------------------------------------------------------------------

std::atomic<int> g_sink_a_hits{0};
std::atomic<int> g_sink_b_hits{0};
void counting_sink_a(LogLevel, std::string_view, std::string_view) {
  g_sink_a_hits.fetch_add(1, std::memory_order_relaxed);
}
void counting_sink_b(LogLevel, std::string_view, std::string_view) {
  g_sink_b_hits.fetch_add(1, std::memory_order_relaxed);
}

TEST(LogStress, SinkSwapRacesEmitters) {
  g_sink_a_hits.store(0);
  g_sink_b_hits.store(0);
  set_log_level(LogLevel::kTrace);
  set_log_sink(&counting_sink_a);

  constexpr int kEmitters = 4;
  constexpr int kLinesPerEmitter = 2000;
  std::vector<std::thread> emitters;
  emitters.reserve(kEmitters);
  for (int t = 0; t < kEmitters; ++t) {
    emitters.emplace_back([] {
      Logger log("stress");
      for (int i = 0; i < kLinesPerEmitter; ++i) log.info("line ", i);
    });
  }
  std::thread swapper([] {
    for (int i = 0; i < 2000; ++i) {
      set_log_sink(i % 2 ? &counting_sink_a : &counting_sink_b);
    }
  });
  for (auto& th : emitters) th.join();
  swapper.join();

  // Every line landed in exactly one of the two sinks — none lost, none
  // duplicated, no call through a torn pointer.
  EXPECT_EQ(g_sink_a_hits.load() + g_sink_b_hits.load(),
            kEmitters * kLinesPerEmitter);

  set_log_sink(nullptr);  // restore default
  set_log_level(LogLevel::kWarn);
}

// --------------------------------------------------------------------------
// UdpTransport
// --------------------------------------------------------------------------

std::unique_ptr<UdpTransport> try_open(Executor& ex, std::uint16_t bport) {
  UdpOptions opts;
  opts.broadcast_port = bport;
  try {
    return UdpTransport::open(ex, opts);
  } catch (const std::system_error&) {
    return nullptr;
  }
}

TEST(UdpStress, ConcurrentSendersAndHandlerSwaps) {
  RealExecutor ex;
  auto a = try_open(ex, 46911);
  auto b = try_open(ex, 46911);
  if (!a || !b) GTEST_SKIP() << "UDP sockets unavailable in this sandbox";

  std::atomic<int> received{0};
  // Swap the handler continuously from a foreign thread while the receive
  // thread is posting datagrams — the race the shared_ptr snapshot design
  // exists to make safe. Both handlers count into the same counter so the
  // assertion is swap-agnostic.
  b->set_receive_handler(
      [&received](ServiceId, BytesView) { received.fetch_add(1); });

  constexpr int kSenders = 4;
  constexpr int kPacketsPerSender = 200;
  std::atomic<bool> swapping{true};
  std::thread swapper([&] {
    while (swapping.load()) {
      b->set_receive_handler(
          [&received](ServiceId, BytesView) { received.fetch_add(1); });
    }
  });

  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (int t = 0; t < kSenders; ++t) {
    senders.emplace_back([&, t] {
      Bytes payload = to_bytes("stress-" + std::to_string(t));
      for (int i = 0; i < kPacketsPerSender; ++i) {
        a->send(b->local_id(), payload);
      }
    });
  }
  for (auto& th : senders) th.join();

  // UDP on loopback is near-lossless but not guaranteed; require only that
  // a healthy fraction arrived and that nothing crashed or raced. Stop
  // swapping before the final drain so late datagrams aren't posted with a
  // just-expired handler.
  ex.run_for(milliseconds(500));
  swapping.store(false);
  swapper.join();
  ex.run_for(milliseconds(250));
  EXPECT_GT(received.load(), 0);
  EXPECT_LE(received.load(), kSenders * kPacketsPerSender);
}

TEST(UdpStress, DestructionRacesInFlightDatagrams) {
  // Tear the receiving transport down while datagrams are still arriving
  // and its posted tasks are still queued: the weak_ptr snapshot must turn
  // those tasks into no-ops instead of calling into a destroyed handler.
  for (int round = 0; round < 5; ++round) {
    RealExecutor ex;
    auto a = try_open(ex, 46912);
    auto b = try_open(ex, 46912);
    if (!a || !b) GTEST_SKIP() << "UDP sockets unavailable in this sandbox";

    auto counter = std::make_shared<std::atomic<int>>(0);
    b->set_receive_handler(
        [counter](ServiceId, BytesView) { counter->fetch_add(1); });

    std::thread sender([&a, dst = b->local_id()] {
      Bytes payload = to_bytes("teardown");
      for (int i = 0; i < 100; ++i) a->send(dst, payload);
    });
    // Destroy b while the sender is mid-burst; queued executor tasks for b
    // must not touch the dead handler when the loop runs afterwards.
    b.reset();
    sender.join();
    ex.run_for(milliseconds(100));
  }
  SUCCEED();
}

TEST(UdpStress, SendBatchHammeredFromManyThreads) {
  // send_batch is AMUSE_EGRESS_CONTEXT: callable from any thread with no
  // executor affinity. Hammer it concurrently (alongside plain send) into
  // a sharded receiver — the counters and freelist are the shared state
  // tsan gets to bite on.
  ExecutorPool pool({2, /*pin_threads=*/false});
  std::unique_ptr<UdpTransport> rx;
  UdpOptions opts;
  opts.broadcast_port = 46914;
  try {
    rx = UdpTransport::open(pool, opts);
  } catch (const std::system_error&) {
    GTEST_SKIP() << "UDP sockets unavailable in this sandbox";
  }
  RealExecutor tx_ex;
  auto tx = try_open(tx_ex, 46914);
  if (!tx) GTEST_SKIP() << "UDP sockets unavailable in this sandbox";

  std::atomic<int> received{0};
  rx->set_receive_handler(
      [&received](ServiceId, BytesView) { received.fetch_add(1); });

  constexpr int kThreads = 4;
  constexpr int kBurstsPerThread = 50;
  constexpr int kBurstSize = 8;
  std::vector<std::thread> senders;
  senders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&, t] {
      Bytes payload = to_bytes("burst-" + std::to_string(t));
      for (int i = 0; i < kBurstsPerThread; ++i) {
        std::vector<Transport::Datagram> burst(
            kBurstSize, Transport::Datagram{rx->local_id(),
                                            BytesView(payload)});
        tx->send_batch(burst);
        tx->send(rx->local_id(), payload);  // interleave the single path
      }
    });
  }
  for (auto& th : senders) th.join();

  constexpr int kTotal = kThreads * kBurstsPerThread * (kBurstSize + 1);
  for (int spins = 0; spins < 100 && received.load() < kTotal; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Loopback is near-lossless; require a healthy fraction and consistent
  // counters rather than exact delivery.
  EXPECT_GT(received.load(), kTotal / 2);
  UdpTransportStats txs = tx->stats();
  EXPECT_EQ(txs.datagrams_sent, static_cast<std::uint64_t>(kTotal));
  EXPECT_LE(txs.send_syscalls, txs.datagrams_sent);
  rx.reset();
  pool.stop();
}

TEST(UdpStress, BroadcastStormAcrossEndpoints) {
  RealExecutor ex;
  auto a = try_open(ex, 46913);
  auto b = try_open(ex, 46913);
  auto c = try_open(ex, 46913);
  if (!a || !b || !c) GTEST_SKIP() << "UDP sockets unavailable";

  std::atomic<int> got_b{0};
  std::atomic<int> got_c{0};
  b->set_receive_handler([&](ServiceId, BytesView) { got_b.fetch_add(1); });
  c->set_receive_handler([&](ServiceId, BytesView) { got_c.fetch_add(1); });

  std::vector<std::thread> broadcasters;
  broadcasters.reserve(3);
  for (int t = 0; t < 3; ++t) {
    broadcasters.emplace_back([&a] {
      for (int i = 0; i < 50; ++i) a->broadcast(to_bytes("beacon"));
    });
  }
  for (auto& th : broadcasters) th.join();
  ex.run_for(milliseconds(1000));

  if (got_b.load() == 0 && got_c.load() == 0) {
    GTEST_SKIP() << "loopback multicast unavailable in this sandbox";
  }
  EXPECT_GE(got_b.load(), 1);
  EXPECT_GE(got_c.load(), 1);
}

}  // namespace
}  // namespace amuse
