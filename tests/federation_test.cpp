// Federation tests: peer-to-peer event sharing between cells with
// interest-driven routing, immutable origin stamps for loop termination
// and multi-path dedup (DESIGN.md §11) — no mutable hop counters.
#include "smc/federation.hpp"

#include <gtest/gtest.h>

#include "bus/interest_table.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "net/loopback.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"
#include "smc/cell.hpp"
#include "smc/gateway.hpp"

namespace amuse {
namespace {

struct FederationFixture : ::testing::Test {
  FederationFixture()
      : net(ex),
        cell_a(ex, net.create_endpoint()),
        cell_b(ex, net.create_endpoint()) {}

  SimExecutor ex;
  LoopbackNetwork net;
  EventBus cell_a;
  EventBus cell_b;
};

TEST_F(FederationFixture, SharedEventsCrossCells) {
  FederationBridge bridge(cell_a, cell_b);
  bridge.share(Filter::for_type_prefix("alarm."));

  std::vector<Event> in_b;
  cell_b.subscribe_local(Filter::for_type_prefix("alarm."),
                         [&](const Event& e) { in_b.push_back(e); });

  cell_a.publish_local(Event("alarm.cardiac", {{"level", "high"}}));
  cell_a.publish_local(Event("vitals.heartrate"));  // not shared
  ex.run();

  ASSERT_EQ(in_b.size(), 1u);
  EXPECT_EQ(in_b[0].type(), "alarm.cardiac");
  // The immutable origin stamp: (origin cell, per-cell sequence).
  EXPECT_EQ(in_b[0].get_int(kFedOriginCellAttr),
            static_cast<std::int64_t>(cell_a.bus_id().raw()));
  EXPECT_TRUE(in_b[0].has(kFedOriginSeqAttr));
  EXPECT_EQ(bridge.stats().forwarded, 1u);
}

TEST_F(FederationFixture, BidirectionalBridgesTerminateLoops) {
  FederationBridge ab(cell_a, cell_b);
  FederationBridge ba(cell_b, cell_a);
  ab.share(Filter::for_type("alarm.cardiac"));
  ba.share(Filter::for_type("alarm.cardiac"));

  int seen_a = 0;
  int seen_b = 0;
  cell_a.subscribe_local(Filter::for_type("alarm.cardiac"),
                         [&](const Event&) { ++seen_a; });
  cell_b.subscribe_local(Filter::for_type("alarm.cardiac"),
                         [&](const Event&) { ++seen_b; });

  cell_a.publish_local(Event("alarm.cardiac"));
  ex.run();

  // Exactly-once per live member: the copy in b is recognised as a's own
  // event by the reverse bridge and never bounces home — no hop counter,
  // and no duplicate delivery in a.
  EXPECT_EQ(seen_b, 1);
  EXPECT_EQ(seen_a, 1);
  EXPECT_EQ(ab.stats().forwarded, 1u);
  EXPECT_EQ(ba.stats().loopback_suppressed, 1u);
}

TEST_F(FederationFixture, MultipleShares) {
  FederationBridge bridge(cell_a, cell_b);
  bridge.share(Filter::for_type("a"));
  bridge.share(Filter::for_type("b"));
  std::vector<std::string> types;
  cell_b.subscribe_local(Filter(),
                         [&](const Event& e) { types.emplace_back(e.type()); });
  cell_a.publish_local(Event("a"));
  cell_a.publish_local(Event("b"));
  cell_a.publish_local(Event("c"));
  ex.run();
  EXPECT_EQ(types, (std::vector<std::string>{"a", "b"}));
}

TEST_F(FederationFixture, OverlappingSharesForwardOnce) {
  FederationBridge bridge(cell_a, cell_b);
  bridge.share(Filter::for_type_prefix("alarm."));
  bridge.share(Filter::for_type("alarm.cardiac"));  // covered by the prefix

  int seen_b = 0;
  cell_b.subscribe_local(Filter::for_type("alarm.cardiac"),
                         [&](const Event&) { ++seen_b; });
  cell_a.publish_local(Event("alarm.cardiac"));
  ex.run();

  EXPECT_EQ(seen_b, 1);
  EXPECT_EQ(bridge.stats().forwarded, 1u);
  EXPECT_EQ(bridge.stats().local_dups_suppressed, 1u);
}

TEST_F(FederationFixture, SelfOriginatedEventNeverRoutesTwice) {
  cell_a.enable_federation();
  int seen = 0;
  cell_a.subscribe_local(Filter::for_type("x"), [&](const Event&) { ++seen; });
  cell_a.publish_local(Event("x"));
  ex.run();
  ASSERT_EQ(seen, 1);

  // An event claiming to originate *here* must be a loop come home.
  Event echo("x");
  echo.set(kFedOriginCellAttr, static_cast<std::int64_t>(cell_a.bus_id().raw()));
  echo.set(kFedOriginSeqAttr, std::int64_t{1});
  auto published_before = cell_a.stats().published;
  cell_a.publish_local(std::move(echo));
  ex.run();
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(cell_a.stats().published, published_before);
  EXPECT_EQ(cell_a.stats().fed_duplicates_dropped, 1u);
}

TEST(FederationTopology, DiamondDeliversExactlyOnce) {
  // Multi-path: a → {b, c} → d. d hears the event over two paths and must
  // deliver it exactly once, dropping the second arrival by origin stamp.
  SimExecutor ex;
  LoopbackNetwork net(ex);
  EventBus a(ex, net.create_endpoint());
  EventBus b(ex, net.create_endpoint());
  EventBus c(ex, net.create_endpoint());
  EventBus d(ex, net.create_endpoint());

  FederationBridge ab(a, b);
  FederationBridge ac(a, c);
  FederationBridge bd(b, d);
  FederationBridge cd(c, d);
  for (FederationBridge* br : {&ab, &ac, &bd, &cd}) {
    br->share(Filter::for_type("x"));
  }

  int seen_d = 0;
  d.subscribe_local(Filter::for_type("x"), [&](const Event&) { ++seen_d; });
  a.publish_local(Event("x"));
  ex.run();

  EXPECT_EQ(seen_d, 1);
  EXPECT_EQ(d.stats().fed_duplicates_dropped, 1u);
  EXPECT_EQ(bd.stats().forwarded + cd.stats().forwarded, 2u);
}

TEST(FederationTopology, CycleTerminatesWithoutHopCounter) {
  SimExecutor ex;
  LoopbackNetwork net(ex);
  EventBus a(ex, net.create_endpoint());
  EventBus b(ex, net.create_endpoint());
  EventBus c(ex, net.create_endpoint());

  FederationBridge ab(a, b);
  FederationBridge bc(b, c);
  FederationBridge ca(c, a);
  for (FederationBridge* br : {&ab, &bc, &ca}) {
    br->share(Filter::for_type("x"));
  }

  int seen_a = 0, seen_b = 0, seen_c = 0;
  a.subscribe_local(Filter::for_type("x"), [&](const Event&) { ++seen_a; });
  b.subscribe_local(Filter::for_type("x"), [&](const Event&) { ++seen_b; });
  c.subscribe_local(Filter::for_type("x"), [&](const Event&) { ++seen_c; });
  a.publish_local(Event("x"));
  ex.run();

  EXPECT_EQ(seen_a, 1);
  EXPECT_EQ(seen_b, 1);
  EXPECT_EQ(seen_c, 1);
  // The c → a bridge recognises a's own event and never re-injects it.
  EXPECT_EQ(ca.stats().loopback_suppressed, 1u);
}

// ---- Networked federation via a dual-homed gateway member.

struct GatewayFixture : ::testing::Test {
  GatewayFixture() : net(ex, 0xF3D) {
    net.set_default_link(profiles::usb_ip_link());
    host_a = &net.add_host("cell-a-core", profiles::ideal_host());
    host_b = &net.add_host("cell-b-core", profiles::ideal_host());
    gw_host = &net.add_host("gateway", profiles::ideal_host());

    cell_a = make_cell(*host_a, "cell-a", to_bytes("key-a"));
    cell_b = make_cell(*host_b, "cell-b", to_bytes("key-b"));

    gw_in_a = make_member(*gw_host, "cell-a", to_bytes("key-a"), seconds(5));
    gw_in_b = make_member(*gw_host, "cell-b", to_bytes("key-b"), seconds(5));
    gateway = std::make_unique<FederationGateway>(*gw_in_a, *gw_in_b);
  }

  std::unique_ptr<SelfManagedCell> make_cell(SimHost& host,
                                             const std::string& name,
                                             Bytes psk) {
    SmcCellConfig cfg;
    cfg.name = name;
    cfg.pre_shared_key = std::move(psk);
    cfg.discovery.beacon_interval = milliseconds(300);
    cfg.discovery.heartbeat_interval = milliseconds(300);
    auto cell = std::make_unique<SelfManagedCell>(
        ex, net.create_endpoint(host), net.create_endpoint(host), cfg);
    cell->start();
    return cell;
  }

  std::unique_ptr<SmcMember> make_member(SimHost& host,
                                         const std::string& cell, Bytes psk,
                                         Duration lost_after) {
    SmcMemberConfig mc;
    mc.agent.cell_name = cell;
    mc.agent.pre_shared_key = std::move(psk);
    mc.agent.device_type = "gateway";
    mc.agent.role = "gateway";
    mc.agent.cell_lost_after = lost_after;
    mc.offline_buffer = 64;
    return std::make_unique<SmcMember>(ex, net.create_endpoint(host), mc);
  }

  SimExecutor ex;
  SimNetwork net;
  SimHost* host_a = nullptr;
  SimHost* host_b = nullptr;
  SimHost* gw_host = nullptr;
  std::unique_ptr<SelfManagedCell> cell_a;
  std::unique_ptr<SelfManagedCell> cell_b;
  std::unique_ptr<SmcMember> gw_in_a;
  std::unique_ptr<SmcMember> gw_in_b;
  std::unique_ptr<FederationGateway> gateway;
};

TEST_F(GatewayFixture, InterestDrivenForwarding) {
  gw_in_a->start();
  gw_in_b->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(gw_in_a->joined() && gw_in_b->joined());

  // No static share: the only reason anything crosses is cell b's own
  // aggregated interest, learned through the kInterestUpdate push and
  // subscribed in cell a by the gateway.
  std::vector<Event> in_b;
  cell_b->bus().subscribe_local(Filter::for_type_prefix("alarm."),
                                [&](const Event& e) { in_b.push_back(e); });
  ex.run_for(seconds(2));  // interest propagates a-ward
  EXPECT_GT(gateway->interest_subscriptions(), 0u);

  auto suppressed_before = cell_a->bus().stats().fed_events_suppressed;
  cell_a->bus().publish_local(Event("alarm.cardiac", {{"level", "high"}}));
  cell_a->bus().publish_local(Event("vitals.heartrate"));  // nobody remote
  ex.run_for(seconds(3));

  ASSERT_EQ(in_b.size(), 1u);
  EXPECT_EQ(in_b[0].type(), "alarm.cardiac");
  EXPECT_EQ(in_b[0].get_int(kFedOriginCellAttr),
            static_cast<std::int64_t>(cell_a->bus().bus_id().raw()));
  EXPECT_EQ(gateway->stats().forwarded, 1u);
  // The event nobody downstream wanted crossed zero links.
  EXPECT_GT(cell_a->bus().stats().fed_events_suppressed, suppressed_before);
  EXPECT_GT(cell_b->bus().stats().interests_propagated, 0u);
  // Different pre-shared keys: each cell only admitted its own members.
  EXPECT_EQ(cell_a->bus().members().size(), 1u);
  EXPECT_EQ(cell_b->bus().members().size(), 1u);
}

TEST_F(GatewayFixture, EncodesStayFlatAcrossTwoCellFanOut) {
  gateway->share(Filter::for_type_prefix("alarm."));
  gw_in_a->start();
  gw_in_b->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(gw_in_a->joined() && gw_in_b->joined());

  int in_b = 0;
  cell_b->bus().subscribe_local(Filter::for_type_prefix("alarm."),
                                [&](const Event&) { ++in_b; });
  ex.run_for(seconds(2));

  auto enc_a = cell_a->bus().stats().encodes;
  auto pub_a = cell_a->bus().stats().published;
  auto enc_b = cell_b->bus().stats().encodes;
  auto pub_b = cell_b->bus().stats().published;
  for (int i = 0; i < 8; ++i) {
    cell_a->bus().publish_local(Event("alarm.cardiac", {{"n", i}}));
  }
  ex.run_for(seconds(3));
  EXPECT_EQ(in_b, 8);

  // Encode-once across cells (PR 2's invariant extended to federation):
  // each bus serialises a forwarded event at most once, regardless of the
  // fan-out on either side — never per member, never per hop extra.
  EXPECT_LE(cell_a->bus().stats().encodes - enc_a,
            cell_a->bus().stats().published - pub_a);
  EXPECT_LE(cell_b->bus().stats().encodes - enc_b,
            cell_b->bus().stats().published - pub_b);
  EXPECT_GE(cell_a->bus().stats().published - pub_a, 8u);
}

TEST_F(GatewayFixture, DestinationOutageBuffersAndFlushes) {
  gateway->share(Filter::for_type("alarm.cardiac"));
  gw_in_a->start();
  gw_in_b->start();
  ex.run_for(seconds(3));

  int in_b = 0;
  cell_b->bus().subscribe_local(Filter::for_type("alarm.cardiac"),
                                [&](const Event&) { ++in_b; });

  // Cell B's core goes dark; once the gateway's B-side member notices the
  // loss (cell_lost_after = 5 s), forwarded events land in its offline
  // buffer …
  host_b->set_up(false);
  ex.run_for(seconds(11));  // past the loss-detection window
  cell_a->bus().publish_local(Event("alarm.cardiac", {{"level", "high"}}));
  ex.run_for(seconds(3));
  EXPECT_EQ(in_b, 0);

  // … and flushes when cell B returns and the gateway re-joins.
  host_b->set_up(true);
  ex.run_for(seconds(15));
  EXPECT_EQ(in_b, 1);
}

TEST_F(GatewayFixture, RejoinResyncsInterestTable) {
  gw_in_a->start();
  gw_in_b->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(gw_in_a->joined() && gw_in_b->joined());

  cell_b->bus().subscribe_local(Filter::for_type("alarm.cardiac"),
                                [&](const Event&) {});
  ex.run_for(seconds(2));
  auto subs_before = gateway->interest_subscriptions();
  EXPECT_GT(subs_before, 0u);

  // The gateway crashes (network-wise) long enough for both cells to purge
  // it and for it to notice the loss.
  gw_host->set_up(false);
  ex.run_for(seconds(12));
  EXPECT_FALSE(gw_in_b->joined());

  // Cell b's interests change while the gateway is gone: a stale mirror
  // would route on the old table and miss this.
  int ecg_in_b = 0;
  cell_b->bus().subscribe_local(Filter::for_type("vitals.ecg"),
                                [&](const Event& e) {
                                  (void)e;
                                  ++ecg_in_b;
                                });

  gw_host->set_up(true);
  ex.run_for(seconds(15));
  ASSERT_TRUE(gw_in_a->joined() && gw_in_b->joined());

  // Admission pushed a full table; the rejoined incarnation routes on the
  // *new* interests.
  cell_a->bus().publish_local(Event("vitals.ecg", {{"bpm", 72}}));
  ex.run_for(seconds(3));
  EXPECT_EQ(ecg_in_b, 1);
  EXPECT_GE(cell_b->bus().stats().interests_propagated, 2u);
}

TEST_F(FederationFixture, BridgeDestructionStopsForwarding) {
  int seen_b = 0;
  cell_b.subscribe_local(Filter::for_type("x"),
                         [&](const Event&) { ++seen_b; });
  {
    FederationBridge bridge(cell_a, cell_b);
    bridge.share(Filter::for_type("x"));
    cell_a.publish_local(Event("x"));
    ex.run();
    EXPECT_EQ(seen_b, 1);
  }
  cell_a.publish_local(Event("x"));
  ex.run();
  EXPECT_EQ(seen_b, 1);
}

}  // namespace
}  // namespace amuse
