// Federation tests: peer-to-peer event sharing between two cells' buses
// with hop-count loop termination.
#include "smc/federation.hpp"

#include <gtest/gtest.h>

#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "net/loopback.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"
#include "smc/cell.hpp"
#include "smc/gateway.hpp"

namespace amuse {
namespace {

struct FederationFixture : ::testing::Test {
  FederationFixture()
      : net(ex),
        cell_a(ex, net.create_endpoint()),
        cell_b(ex, net.create_endpoint()) {}

  SimExecutor ex;
  LoopbackNetwork net;
  EventBus cell_a;
  EventBus cell_b;
};

TEST_F(FederationFixture, SharedEventsCrossCells) {
  FederationBridge bridge(cell_a, cell_b);
  bridge.share(Filter::for_type_prefix("alarm."));

  std::vector<Event> in_b;
  cell_b.subscribe_local(Filter::for_type_prefix("alarm."),
                         [&](const Event& e) { in_b.push_back(e); });

  cell_a.publish_local(Event("alarm.cardiac", {{"level", "high"}}));
  cell_a.publish_local(Event("vitals.heartrate"));  // not shared
  ex.run();

  ASSERT_EQ(in_b.size(), 1u);
  EXPECT_EQ(in_b[0].type(), "alarm.cardiac");
  EXPECT_EQ(in_b[0].get_int("x-fed-hops"), 1);
  EXPECT_TRUE(in_b[0].has("x-fed-origin"));
  EXPECT_EQ(bridge.stats().forwarded, 1u);
}

TEST_F(FederationFixture, BidirectionalBridgesTerminateLoops) {
  FederationConfig cfg;
  cfg.max_hops = 2;
  FederationBridge ab(cell_a, cell_b, cfg);
  FederationBridge ba(cell_b, cell_a, cfg);
  ab.share(Filter::for_type("alarm.cardiac"));
  ba.share(Filter::for_type("alarm.cardiac"));

  int seen_a = 0;
  int seen_b = 0;
  cell_a.subscribe_local(Filter::for_type("alarm.cardiac"),
                         [&](const Event&) { ++seen_a; });
  cell_b.subscribe_local(Filter::for_type("alarm.cardiac"),
                         [&](const Event&) { ++seen_b; });

  cell_a.publish_local(Event("alarm.cardiac"));
  ex.run();

  // a: original + the one bounced back (hops=2). b: one forwarded copy.
  // The hops=2 copy in a is NOT forwarded again (max_hops reached).
  EXPECT_EQ(seen_b, 1);
  EXPECT_EQ(seen_a, 2);
  EXPECT_GE(ab.stats().forwarded + ba.stats().forwarded, 2u);
  EXPECT_GE(ab.stats().hop_limited + ba.stats().hop_limited, 1u);
}

TEST_F(FederationFixture, MultipleShares) {
  FederationBridge bridge(cell_a, cell_b);
  bridge.share(Filter::for_type("a"));
  bridge.share(Filter::for_type("b"));
  std::vector<std::string> types;
  cell_b.subscribe_local(Filter(),
                         [&](const Event& e) { types.emplace_back(e.type()); });
  cell_a.publish_local(Event("a"));
  cell_a.publish_local(Event("b"));
  cell_a.publish_local(Event("c"));
  ex.run();
  EXPECT_EQ(types, (std::vector<std::string>{"a", "b"}));
}

// ---- Networked federation via a dual-homed gateway member.

struct GatewayFixture : ::testing::Test {
  GatewayFixture() : net(ex, 0xF3D) {
    net.set_default_link(profiles::usb_ip_link());
    host_a = &net.add_host("cell-a-core", profiles::ideal_host());
    host_b = &net.add_host("cell-b-core", profiles::ideal_host());
    gw_host = &net.add_host("gateway", profiles::ideal_host());

    cell_a = make_cell(*host_a, "cell-a", to_bytes("key-a"));
    cell_b = make_cell(*host_b, "cell-b", to_bytes("key-b"));

    gw_in_a = make_member(*gw_host, "cell-a", to_bytes("key-a"), seconds(5));
    gw_in_b = make_member(*gw_host, "cell-b", to_bytes("key-b"), seconds(5));
    gateway = std::make_unique<FederationGateway>(*gw_in_a, *gw_in_b);
  }

  std::unique_ptr<SelfManagedCell> make_cell(SimHost& host,
                                             const std::string& name,
                                             Bytes psk) {
    SmcCellConfig cfg;
    cfg.name = name;
    cfg.pre_shared_key = std::move(psk);
    cfg.discovery.beacon_interval = milliseconds(300);
    cfg.discovery.heartbeat_interval = milliseconds(300);
    auto cell = std::make_unique<SelfManagedCell>(
        ex, net.create_endpoint(host), net.create_endpoint(host), cfg);
    cell->start();
    return cell;
  }

  std::unique_ptr<SmcMember> make_member(SimHost& host,
                                         const std::string& cell, Bytes psk,
                                         Duration lost_after) {
    SmcMemberConfig mc;
    mc.agent.cell_name = cell;
    mc.agent.pre_shared_key = std::move(psk);
    mc.agent.device_type = "gateway";
    mc.agent.role = "gateway";
    mc.agent.cell_lost_after = lost_after;
    mc.offline_buffer = 64;
    return std::make_unique<SmcMember>(ex, net.create_endpoint(host), mc);
  }

  SimExecutor ex;
  SimNetwork net;
  SimHost* host_a = nullptr;
  SimHost* host_b = nullptr;
  SimHost* gw_host = nullptr;
  std::unique_ptr<SelfManagedCell> cell_a;
  std::unique_ptr<SelfManagedCell> cell_b;
  std::unique_ptr<SmcMember> gw_in_a;
  std::unique_ptr<SmcMember> gw_in_b;
  std::unique_ptr<FederationGateway> gateway;
};

TEST_F(GatewayFixture, EventsCrossCellsOverTheNetwork) {
  gateway->share(Filter::for_type_prefix("alarm."));
  gw_in_a->start();
  gw_in_b->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(gw_in_a->joined() && gw_in_b->joined());

  std::vector<Event> in_b;
  cell_b->bus().subscribe_local(Filter::for_type_prefix("alarm."),
                                [&](const Event& e) { in_b.push_back(e); });

  cell_a->bus().publish_local(Event("alarm.cardiac", {{"level", "high"}}));
  cell_a->bus().publish_local(Event("vitals.heartrate"));  // not shared
  ex.run_for(seconds(3));

  ASSERT_EQ(in_b.size(), 1u);
  EXPECT_EQ(in_b[0].type(), "alarm.cardiac");
  EXPECT_EQ(in_b[0].get_int("x-fed-hops"), 1);
  EXPECT_EQ(gateway->stats().forwarded, 1u);
  // Different pre-shared keys: each cell only admitted its own members.
  EXPECT_EQ(cell_a->bus().members().size(), 1u);
  EXPECT_EQ(cell_b->bus().members().size(), 1u);
}

TEST_F(GatewayFixture, DestinationOutageBuffersAndFlushes) {
  gateway->share(Filter::for_type("alarm.cardiac"));
  gw_in_a->start();
  gw_in_b->start();
  ex.run_for(seconds(3));

  int in_b = 0;
  cell_b->bus().subscribe_local(Filter::for_type("alarm.cardiac"),
                                [&](const Event&) { ++in_b; });

  // Cell B's core goes dark; once the gateway's B-side member notices the
  // loss (cell_lost_after = 5 s), forwarded events land in its offline
  // buffer …
  host_b->set_up(false);
  ex.run_for(seconds(11));  // past the loss-detection window
  cell_a->bus().publish_local(Event("alarm.cardiac", {{"level", "high"}}));
  ex.run_for(seconds(3));
  EXPECT_EQ(in_b, 0);

  // … and flushes when cell B returns and the gateway re-joins.
  host_b->set_up(true);
  ex.run_for(seconds(15));
  EXPECT_EQ(in_b, 1);
}

TEST_F(FederationFixture, BridgeDestructionStopsForwarding) {
  int seen_b = 0;
  cell_b.subscribe_local(Filter::for_type("x"),
                         [&](const Event&) { ++seen_b; });
  {
    FederationBridge bridge(cell_a, cell_b);
    bridge.share(Filter::for_type("x"));
    cell_a.publish_local(Event("x"));
    ex.run();
    EXPECT_EQ(seen_b, 1);
  }
  cell_a.publish_local(Event("x"));
  ex.run();
  EXPECT_EQ(seen_b, 1);
}

}  // namespace
}  // namespace amuse
