// SelfMonitor tests: the autonomic loop closed through the cell's own bus.
#include "smc/monitor.hpp"

#include <gtest/gtest.h>

#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "smc/member.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

struct MonitorFixture : ::testing::Test {
  MonitorFixture() : net(ex, 0x40) {
    net.set_default_link(profiles::usb_ip_link());
    core = &net.add_host("core", profiles::ideal_host());
    SmcCellConfig cfg;
    cfg.name = "cell";
    cfg.pre_shared_key = to_bytes("k");
    cfg.discovery.beacon_interval = milliseconds(400);
    cfg.discovery.heartbeat_interval = milliseconds(400);
    cell = std::make_unique<SelfManagedCell>(ex, net.create_endpoint(*core),
                                             net.create_endpoint(*core), cfg);
    cell->start();
  }

  SimExecutor ex;
  SimNetwork net;
  SimHost* core = nullptr;
  std::unique_ptr<SelfManagedCell> cell;
};

TEST_F(MonitorFixture, PublishesPeriodicHealthEvents) {
  SelfMonitorConfig mc;
  mc.interval = seconds(2);
  SelfMonitor monitor(ex, *cell, mc);

  std::vector<Event> health;
  cell->bus().subscribe_local(Filter::for_type("smc.health"),
                              [&](const Event& e) { health.push_back(e); });
  monitor.start();
  ex.run_for(seconds(11));

  ASSERT_GE(health.size(), 5u);
  const Event& h = health.back();
  EXPECT_TRUE(h.has("members"));
  EXPECT_TRUE(h.has("event_rate"));
  EXPECT_TRUE(h.has("max_backlog"));
  EXPECT_EQ(monitor.reports_published(), health.size());

  monitor.stop();
  std::size_t count = health.size();
  ex.run_for(seconds(5));
  EXPECT_EQ(health.size(), count);
}

TEST_F(MonitorFixture, EventRateReflectsTraffic) {
  SelfMonitorConfig mc;
  mc.interval = seconds(2);
  SelfMonitor monitor(ex, *cell, mc);
  std::vector<double> rates;
  cell->bus().subscribe_local(
      Filter::for_type("smc.health"),
      [&](const Event& e) { rates.push_back(e.get_double("event_rate")); });
  monitor.start();

  // Quiet first interval, then 10 events/s.
  ex.run_for(seconds(2));
  for (int i = 0; i < 40; ++i) {
    ex.schedule_after(milliseconds(100 * i),
                      [&] { cell->bus().publish_local(Event("tick")); });
  }
  ex.run_for(seconds(4));
  ASSERT_GE(rates.size(), 3u);
  EXPECT_LT(rates.front(), 1.0);
  double peak = 0;
  for (double r : rates) peak = std::max(peak, r);
  EXPECT_GT(peak, 5.0);
}

TEST_F(MonitorFixture, PoliciesCloseTheAutonomicLoop) {
  // An obligation policy reacts to the cell's own health report — the
  // self-management story end to end with no code changes.
  cell->load_policies(R"(
    policy overload on smc.health
      when event_rate > 5.0
      do publish alarm.overload { rate = event_rate };
  )");
  SelfMonitorConfig mc;
  mc.interval = seconds(2);
  SelfMonitor monitor(ex, *cell, mc);
  int overloads = 0;
  cell->bus().subscribe_local(Filter::for_type("alarm.overload"),
                              [&](const Event&) { ++overloads; });
  monitor.start();

  ex.run_for(seconds(2));
  EXPECT_EQ(overloads, 0);  // quiet cell: no alarm
  for (int i = 0; i < 60; ++i) {
    ex.schedule_after(milliseconds(50 * i),
                      [&] { cell->bus().publish_local(Event("tick")); });
  }
  ex.run_for(seconds(6));
  EXPECT_GE(overloads, 1);
}

TEST_F(MonitorFixture, BacklogVisibleWhenMemberUnreachable) {
  SimHost& dev = net.add_host("dev", profiles::ideal_host());
  SmcMemberConfig mc;
  mc.agent.cell_name = "cell";
  mc.agent.pre_shared_key = to_bytes("k");
  mc.agent.cell_lost_after = seconds(60);
  SmcMember member(ex, net.create_endpoint(dev), mc);
  member.subscribe(Filter::for_type("tick"), [](const Event&) {});
  member.start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(member.joined());

  SelfMonitorConfig smc_cfg;
  smc_cfg.interval = seconds(1);
  SelfMonitor monitor(ex, *cell, smc_cfg);
  std::int64_t max_backlog_seen = 0;
  cell->bus().subscribe_local(
      Filter::for_type("smc.health"), [&](const Event& e) {
        max_backlog_seen = std::max(max_backlog_seen,
                                    e.get_int("max_backlog"));
      });
  monitor.start();

  dev.set_up(false);  // deliveries to the member now queue in its proxy
  for (int i = 0; i < 10; ++i) {
    ex.schedule_after(milliseconds(200 * i),
                      [&] { cell->bus().publish_local(Event("tick")); });
  }
  ex.run_for(seconds(5));
  EXPECT_GE(max_backlog_seen, 5);
}

}  // namespace
}  // namespace amuse
