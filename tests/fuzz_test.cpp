// Randomised robustness and determinism tests:
//  - codec fuzz: random events/filters round-trip bit-exactly; mutated
//    encodings either decode cleanly or throw DecodeError — never crash;
//  - the Siena text translation round-trips random typed content;
//  - simulation determinism: identical seeds produce identical traces.
#include <gtest/gtest.h>

#include "bus/messages.hpp"
#include "common/rng.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "pubsub/codec.hpp"
#include "pubsub/siena_translation.hpp"
#include "smc/cell.hpp"
#include "smc/member.hpp"
#include "sim/sim_executor.hpp"
#include "wire/packet.hpp"

namespace amuse {
namespace {

Value random_value(Rng& rng) {
  switch (rng.bounded(5)) {
    case 0:
      return Value(static_cast<std::int64_t>(rng.next_u64()));
    case 1:
      return Value(rng.uniform(-1e6, 1e6));
    case 2:
      return Value(rng.chance(0.5));
    case 3: {
      std::string s;
      std::size_t n = rng.bounded(40);
      for (std::size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(32 + rng.bounded(95)));
      }
      return Value(std::move(s));
    }
    default: {
      Bytes b(rng.bounded(64));
      for (auto& x : b) x = static_cast<std::uint8_t>(rng.bounded(256));
      return Value(std::move(b));
    }
  }
}

Event random_event(Rng& rng) {
  Event e;
  std::size_t n = rng.bounded(8);
  for (std::size_t i = 0; i < n; ++i) {
    e.set("attr" + std::to_string(rng.bounded(12)), random_value(rng));
  }
  e.set_publisher(ServiceId(rng.next_u64()));
  e.set_publisher_seq(rng.next_u64());
  e.set_timestamp(TimePoint(Duration(
      static_cast<std::int64_t>(rng.next_u64() >> 1))));
  return e;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomEventsRoundTripExactly) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    Event e = random_event(rng);
    Event back = decode_event(encode_event(e));
    EXPECT_EQ(back, e);
    EXPECT_EQ(back.publisher(), e.publisher());
    EXPECT_EQ(back.publisher_seq(), e.publisher_seq());
    EXPECT_EQ(back.timestamp(), e.timestamp());
  }
}

TEST_P(CodecFuzz, MutatedEncodingsNeverCrash) {
  Rng rng(GetParam() ^ 0xDEAD);
  int decoded = 0;
  int rejected = 0;
  for (int i = 0; i < 200; ++i) {
    Bytes wire = encode_event(random_event(rng));
    // Flip 1-4 random bytes.
    int flips = 1 + static_cast<int>(rng.bounded(4));
    for (int f = 0; f < flips && !wire.empty(); ++f) {
      wire[rng.bounded(static_cast<std::uint32_t>(wire.size()))] ^=
          static_cast<std::uint8_t>(1 + rng.bounded(255));
    }
    try {
      Event e = decode_event(wire);
      (void)e.to_string();  // whatever decoded must be safely usable
      ++decoded;
    } catch (const DecodeError&) {
      ++rejected;
    } catch (const std::length_error&) {
      ++rejected;  // a corrupted length prefix may exceed blob limits
    }
  }
  EXPECT_EQ(decoded + rejected, 200);
}

TEST_P(CodecFuzz, TruncatedEncodingsNeverCrash) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 100; ++i) {
    Bytes wire = encode_event(random_event(rng));
    std::size_t cut = rng.bounded(static_cast<std::uint32_t>(wire.size() + 1));
    try {
      (void)decode_event(BytesView(wire.data(), cut));
    } catch (const DecodeError&) {
      // expected for most cuts
    }
  }
}

TEST_P(CodecFuzz, SienaTranslationRoundTripsRandomEvents) {
  Rng rng(GetParam() ^ 0x51E4A);
  for (int i = 0; i < 150; ++i) {
    Event e = random_event(rng);
    EXPECT_EQ(siena_round_trip(e), e);
  }
}

TEST_P(CodecFuzz, BusMessagesSurviveMutation) {
  Rng rng(GetParam() ^ 0xB05);
  for (int i = 0; i < 150; ++i) {
    BusMessage m = BusMessage::publish(random_event(rng));
    Bytes wire = m.encode();
    wire[rng.bounded(static_cast<std::uint32_t>(wire.size()))] ^= 0x40;
    try {
      (void)BusMessage::decode(wire);
    } catch (const DecodeError&) {
    } catch (const std::length_error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1001, 2002, 3003, 4004));

// ---- Simulation determinism: the bedrock of reproducible experiments.

struct TraceRecorder {
  std::vector<std::string> lines;
};

std::vector<std::string> run_smc_trace(std::uint64_t seed) {
  SimExecutor ex;
  SimNetwork net(ex, seed);
  LinkModel link = profiles::usb_ip_link();
  link.loss = 0.1;
  net.set_default_link(link);
  SimHost& core = net.add_host("core", profiles::ideal_host());
  SimHost& dev = net.add_host("dev", profiles::ideal_host());

  SmcCellConfig cfg;
  cfg.name = "det";
  cfg.pre_shared_key = to_bytes("k");
  cfg.discovery.beacon_interval = milliseconds(300);
  cfg.discovery.heartbeat_interval = milliseconds(300);
  SelfManagedCell cell(ex, net.create_endpoint(core),
                       net.create_endpoint(core), cfg);
  cell.start();

  SmcMemberConfig mc;
  mc.agent.cell_name = "det";
  mc.agent.pre_shared_key = to_bytes("k");
  SmcMember pub(ex, net.create_endpoint(dev), mc);
  SmcMember sub(ex, net.create_endpoint(dev), mc);

  std::vector<std::string> trace;
  sub.subscribe(Filter::for_type("t"), [&](const Event& e) {
    trace.push_back(std::to_string(ex.now().time_since_epoch().count()) +
                    ":" + std::to_string(e.get_int("n")));
  });
  pub.start();
  sub.start();
  for (int i = 0; i < 30; ++i) {
    ex.schedule_at(TimePoint(milliseconds(3000 + i * 200)), [&, i] {
      pub.publish(Event("t", {{"n", i}}));
    });
  }
  ex.run_for(seconds(30));
  trace.push_back("published=" +
                  std::to_string(cell.bus().stats().published));
  trace.push_back("datagrams=" +
                  std::to_string(net.stats().datagrams_sent));
  trace.push_back("dropped=" + std::to_string(net.stats().dropped_loss));
  return trace;
}

TEST(Determinism, IdenticalSeedsProduceIdenticalTraces) {
  auto a = run_smc_trace(777);
  auto b = run_smc_trace(777);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 30u);  // the run actually did something
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto a = run_smc_trace(777);
  auto b = run_smc_trace(778);
  EXPECT_NE(a, b);  // loss pattern and jitter differ
}

}  // namespace
}  // namespace amuse
