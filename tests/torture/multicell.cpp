#include "torture/multicell.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>

#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"
#include "smc/cell.hpp"
#include "smc/gateway.hpp"
#include "smc/member.hpp"

namespace amuse::torture {
namespace {

struct Edge {
  int x;
  int y;
};

struct Layout {
  int cells = 0;
  std::vector<Edge> edges;
};

Layout layout_for(McTopology t) {
  switch (t) {
    case McTopology::kLine:
      return {4, {{0, 1}, {1, 2}, {2, 3}}};
    case McTopology::kTree:
      return {4, {{0, 1}, {0, 2}, {1, 3}}};
    case McTopology::kCycle:
      return {3, {{0, 1}, {1, 2}, {2, 0}}};
  }
  return {0, {}};
}

std::string fmt_time(TimePoint t) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3)
     << to_seconds(t.time_since_epoch()) << "s";
  return os.str();
}

/// Cross-cell ground truth: every delivery funnels through here.
class McOracle {
 public:
  struct Violation {
    std::string invariant;
    std::string detail;
  };

  void set_cell_ids(std::vector<std::uint64_t> ids) {
    cell_ids_ = std::move(ids);
  }

  void on_publish(int sender, std::int64_t n) {
    ++publishes_;
    (void)sender;
    (void)n;
  }

  void on_delivery(int receiver, int receiver_cell, std::uint64_t incarnation,
                   const Event& e) {
    ++deliveries_;
    auto sender = e.get_int("m", -1);
    auto n = e.get_int("n", -1);
    auto sender_cell = e.get_int("c", -1);
    if (sender < 0 || n < 0 || sender_cell < 0) {
      fail("phantom-event", "delivery without sender attributes at member " +
                                std::to_string(receiver));
      return;
    }
    if (sender_cell != receiver_cell) ++cross_cell_;

    // (d) origin-stamp discipline: the stamp is immutable and names the
    // true origin cell; a stamp naming the *receiver's* cell on a
    // cross-cell delivery means a federated loop came home.
    auto stamp = static_cast<std::uint64_t>(e.get_int(kFedOriginCellAttr, 0));
    if (stamp == 0 || !e.has(kFedOriginSeqAttr)) {
      fail("missing-origin-stamp",
           "event (m=" + std::to_string(sender) + ", n=" + std::to_string(n) +
               ") delivered without an origin stamp");
      return;
    }
    if (stamp != cell_ids_[static_cast<std::size_t>(sender_cell)]) {
      fail("wrong-origin-stamp",
           "event (m=" + std::to_string(sender) + ", n=" + std::to_string(n) +
               ") stamped with a cell other than its origin");
      return;
    }
    if (sender_cell != receiver_cell &&
        stamp == cell_ids_[static_cast<std::size_t>(receiver_cell)]) {
      fail("federated-loop", "event (m=" + std::to_string(sender) +
                                 ", n=" + std::to_string(n) +
                                 ") looped home to its origin cell");
      return;
    }

    // (a) no duplicate delivery, ever — across incarnations and no matter
    // how many gateway paths carried it.
    if (!seen_.insert({receiver, sender, n}).second) {
      fail("duplicate-delivery",
           "member " + std::to_string(receiver) + " saw (m=" +
               std::to_string(sender) + ", n=" + std::to_string(n) +
               ") twice");
      return;
    }

    // (b) per-sender FIFO end-to-end within a receiver incarnation.
    auto key = std::tuple{receiver, incarnation, sender};
    auto it = fifo_.find(key);
    if (it != fifo_.end() && n <= it->second) {
      fail("fifo", "member " + std::to_string(receiver) + " inc " +
                       std::to_string(incarnation) + " saw (m=" +
                       std::to_string(sender) + ") n=" + std::to_string(n) +
                       " after n=" + std::to_string(it->second));
      return;
    }
    fifo_[key] = n;
  }

  /// (c) post-heal completeness: every barrage publish must have reached
  /// every member.
  void check_barrage(const std::vector<std::pair<int, std::int64_t>>& barrage,
                     int members) {
    for (const auto& [sender, n] : barrage) {
      for (int r = 0; r < members; ++r) {
        if (!seen_.contains({r, sender, n})) {
          fail("lost-delivery",
               "post-heal barrage event (m=" + std::to_string(sender) +
                   ", n=" + std::to_string(n) + ") never reached member " +
                   std::to_string(r));
          return;
        }
      }
    }
  }

  [[nodiscard]] const std::optional<Violation>& violation() const {
    return violation_;
  }
  [[nodiscard]] std::uint64_t publishes() const { return publishes_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t cross_cell() const { return cross_cell_; }

 private:
  void fail(std::string invariant, std::string detail) {
    if (violation_) return;  // keep the first
    violation_ = Violation{std::move(invariant), std::move(detail)};
  }

  std::vector<std::uint64_t> cell_ids_;
  std::set<std::tuple<int, std::int64_t, std::int64_t>> seen_;
  std::map<std::tuple<int, std::uint64_t, std::int64_t>, std::int64_t> fifo_;
  std::uint64_t publishes_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t cross_cell_ = 0;
  std::optional<Violation> violation_;
};

}  // namespace

const char* to_string(McTopology t) {
  switch (t) {
    case McTopology::kLine: return "line";
    case McTopology::kTree: return "tree";
    case McTopology::kCycle: return "cycle";
  }
  return "?";
}

const char* to_string(McOp op) {
  switch (op) {
    case McOp::kBurst: return "burst";
    case McOp::kGwCrash: return "gw-crash";
    case McOp::kGwRecover: return "gw-recover";
    case McOp::kMemberCrash: return "member-crash";
    case McOp::kMemberRecover: return "member-recover";
    case McOp::kLinkFault: return "link-fault";
    case McOp::kLinkHeal: return "link-heal";
  }
  return "?";
}

std::string McStep::to_string() const {
  std::ostringstream os;
  os << "@" << std::fixed << std::setprecision(3) << to_seconds(at) << "s "
     << torture::to_string(op) << " target=" << target;
  if (a != 0) os << " a=" << a;
  return os.str();
}

McSchedule generate_multicell_schedule(std::uint64_t seed,
                                       const McConfig& config) {
  McSchedule sched;
  sched.seed = seed;
  Rng rng(seed, /*stream=*/0x3C31);

  Layout layout = layout_for(config.topology);
  const int links = static_cast<int>(layout.edges.size());
  const int members = layout.cells * config.members_per_cell;
  const double horizon_s = to_seconds(config.horizon);
  auto push = [&](Duration t, McOp op, int target, int a = 0) {
    sched.steps.push_back(McStep{t, op, target, a});
  };

  // Faults first, bursts second: on the cycle topology, a burst must never
  // land inside a gateway blackout window, or multipath first-arrival-wins
  // can legitimately reorder a sender's stream (invariant (b) relies on
  // "no path silently drops").
  struct Window {
    double lo;
    double hi;
  };
  std::vector<Window> blackouts;
  int bursts_wanted = 0;

  for (int i = 0; i < config.incidents; ++i) {
    double roll = rng.uniform();
    if (roll < 0.45) {
      ++bursts_wanted;
    } else if (roll < 0.65) {
      int link = static_cast<int>(rng.bounded(static_cast<std::uint32_t>(links)));
      double t = rng.uniform(0.5, horizon_s - 10.0);
      double d = rng.uniform(0.8, 8.0);  // sometimes straddles the purge
      push(from_seconds(t), McOp::kGwCrash, link);
      push(from_seconds(t + d), McOp::kGwRecover, link);
      blackouts.push_back({t - 1.2, t + d + 10.0});
    } else if (roll < 0.80) {
      int m = static_cast<int>(
          rng.bounded(static_cast<std::uint32_t>(members)));
      double t = rng.uniform(0.5, horizon_s - 10.0);
      push(from_seconds(t), McOp::kMemberCrash, m);
      push(from_seconds(t + rng.uniform(0.8, 8.0)), McOp::kMemberRecover, m);
    } else {
      int link = static_cast<int>(rng.bounded(static_cast<std::uint32_t>(links)));
      double t = rng.uniform(0.5, horizon_s - 8.0);
      push(from_seconds(t), McOp::kLinkFault, link,
           20 + static_cast<int>(rng.bounded(41)));
      push(from_seconds(t + rng.uniform(1.0, 6.0)), McOp::kLinkHeal, link);
    }
  }

  auto blocked = [&](double t) {
    return std::ranges::any_of(blackouts, [&](const Window& w) {
      return t >= w.lo && t <= w.hi;
    });
  };
  for (int i = 0; i < bursts_wanted; ++i) {
    int m =
        static_cast<int>(rng.bounded(static_cast<std::uint32_t>(members)));
    int count = 1 + static_cast<int>(rng.bounded(5));
    for (int attempt = 0; attempt < 24; ++attempt) {
      double t = rng.uniform(0.3, horizon_s - 1.0);
      if (config.topology == McTopology::kCycle && blocked(t)) continue;
      push(from_seconds(t), McOp::kBurst, m, count);
      break;
    }  // a fully-blacked-out horizon just drops the burst
  }

  std::stable_sort(
      sched.steps.begin(), sched.steps.end(),
      [](const McStep& a, const McStep& b) { return a.at < b.at; });
  return sched;
}

McResult run_multicell(const McSchedule& schedule, const McConfig& config) {
  McResult result;
  Layout layout = layout_for(config.topology);
  const int n_cells = layout.cells;
  const int per_cell = config.members_per_cell;
  const int n_members = n_cells * per_cell;
  const int n_links = static_cast<int>(layout.edges.size());

  SimExecutor ex;
  SimNetwork net(ex, schedule.seed ^ 0xfeedc0de12345678ull);
  LinkModel base = profiles::usb_ip_link();
  net.set_default_link(base);

  // One core host per cell, each cell with its own name and PSK.
  std::vector<SimHost*> cores;
  std::vector<std::unique_ptr<SelfManagedCell>> cells;
  for (int c = 0; c < n_cells; ++c) {
    SimHost& h = net.add_host("core" + std::to_string(c),
                              profiles::ideal_host());
    cores.push_back(&h);
    SmcCellConfig cc;
    cc.name = "mc-cell-" + std::to_string(c);
    cc.pre_shared_key = to_bytes("mc-key-" + std::to_string(c));
    cc.bus.engine = config.engine;
    cc.discovery.beacon_interval = milliseconds(300);
    cc.discovery.heartbeat_interval = milliseconds(300);
    cc.discovery.suspect_after = milliseconds(1200);
    cc.discovery.purge_after = seconds(3);
    cc.discovery.sweep_interval = milliseconds(150);
    auto cell = std::make_unique<SelfManagedCell>(
        ex, net.create_endpoint(h), net.create_endpoint(h), cc);
    cell->start();
    cells.push_back(std::move(cell));
  }

  McOracle oracle;
  {
    std::vector<std::uint64_t> ids;
    for (auto& c : cells) ids.push_back(c->bus().bus_id().raw());
    oracle.set_cell_ids(std::move(ids));
  }

  auto member_config = [&](int cell, const std::string& device,
                           const char* role) {
    SmcMemberConfig mc;
    mc.agent.cell_name = "mc-cell-" + std::to_string(cell);
    mc.agent.pre_shared_key = to_bytes("mc-key-" + std::to_string(cell));
    mc.agent.device_type = device;
    mc.agent.role = role;
    mc.agent.cell_lost_after = seconds(2);
    mc.offline_buffer = 128;
    return mc;
  };

  // Ordinary members: per_cell per cell, each on its own host, one broad
  // recorder subscription each.
  std::vector<SimHost*> member_hosts;
  std::vector<std::unique_ptr<SmcMember>> members;
  std::vector<int> member_cell;
  std::vector<std::int64_t> pub_n(static_cast<std::size_t>(n_members), 0);
  for (int c = 0; c < n_cells; ++c) {
    for (int j = 0; j < per_cell; ++j) {
      int uid = c * per_cell + j;
      SimHost& h = net.add_host(
          "c" + std::to_string(c) + "m" + std::to_string(j),
          profiles::ideal_host());
      member_hosts.push_back(&h);
      auto member = std::make_unique<SmcMember>(
          ex, net.create_endpoint(h),
          member_config(c, "mc.m" + std::to_string(uid), ""));
      SmcMember* m = member.get();
      (void)m->subscribe(Filter::for_type("mc"), [&oracle, m, uid,
                                                  c](const Event& e) {
        oracle.on_delivery(uid, c, m->stats().joins, e);
      });
      m->start();
      members.push_back(std::move(member));
      member_cell.push_back(c);
    }
  }

  // Gateway links: one dual-homed host per edge, two members (one per
  // cell), two gateways (one per direction).
  std::vector<SimHost*> gw_hosts;
  std::vector<std::unique_ptr<SmcMember>> gw_members;   // 2 per link
  std::vector<std::unique_ptr<FederationGateway>> gateways;  // 2 per link
  for (int l = 0; l < n_links; ++l) {
    const Edge& e = layout.edges[static_cast<std::size_t>(l)];
    SimHost& h = net.add_host("gw" + std::to_string(l),
                              profiles::ideal_host());
    gw_hosts.push_back(&h);
    auto mx = std::make_unique<SmcMember>(
        ex, net.create_endpoint(h),
        member_config(e.x, "gateway", kGatewayRole.data()));
    auto my = std::make_unique<SmcMember>(
        ex, net.create_endpoint(h),
        member_config(e.y, "gateway", kGatewayRole.data()));
    gateways.push_back(std::make_unique<FederationGateway>(*mx, *my));
    gateways.push_back(std::make_unique<FederationGateway>(*my, *mx));
    mx->start();
    my->start();
    gw_members.push_back(std::move(mx));
    gw_members.push_back(std::move(my));
  }

  auto log_step = [&](const McStep& s) {
    result.log.push_back(fmt_time(ex.now()) + " " + s.to_string());
  };

  auto apply = [&](const McStep& s) {
    log_step(s);
    switch (s.op) {
      case McOp::kBurst: {
        auto m = static_cast<std::size_t>(s.target);
        for (int k = 0; k < s.a; ++k) {
          Event e("mc");
          e.set("m", s.target);
          e.set("n", pub_n[m]);
          e.set("c", member_cell[m]);
          oracle.on_publish(s.target, pub_n[m]);
          ++pub_n[m];
          (void)members[m]->publish(std::move(e));
        }
        break;
      }
      case McOp::kGwCrash:
        gw_hosts[static_cast<std::size_t>(s.target)]->set_up(false);
        break;
      case McOp::kGwRecover:
        gw_hosts[static_cast<std::size_t>(s.target)]->set_up(true);
        break;
      case McOp::kMemberCrash:
        member_hosts[static_cast<std::size_t>(s.target)]->set_up(false);
        break;
      case McOp::kMemberRecover:
        member_hosts[static_cast<std::size_t>(s.target)]->set_up(true);
        break;
      case McOp::kLinkFault: {
        LinkModel lm = base;
        lm.loss = static_cast<double>(s.a) / 100.0;
        const Edge& e = layout.edges[static_cast<std::size_t>(s.target)];
        SimHost* gw = gw_hosts[static_cast<std::size_t>(s.target)];
        net.update_link(*gw, *cores[static_cast<std::size_t>(e.x)], lm);
        net.update_link(*gw, *cores[static_cast<std::size_t>(e.y)], lm);
        break;
      }
      case McOp::kLinkHeal: {
        const Edge& e = layout.edges[static_cast<std::size_t>(s.target)];
        SimHost* gw = gw_hosts[static_cast<std::size_t>(s.target)];
        net.update_link(*gw, *cores[static_cast<std::size_t>(e.x)], base);
        net.update_link(*gw, *cores[static_cast<std::size_t>(e.y)], base);
        break;
      }
    }
  };

  // Let every cell form and the interest tables converge transitively.
  ex.run_for(seconds(4));
  TimePoint start = ex.now();
  for (const McStep& step : schedule.steps) {
    ex.schedule_at(start + step.at, [&apply, &step] { apply(step); });
  }
  ex.run_for(config.horizon);

  result.log.push_back(fmt_time(ex.now()) + " === heal all ===");
  for (SimHost* h : gw_hosts) h->set_up(true);
  for (SimHost* h : member_hosts) h->set_up(true);
  for (int l = 0; l < n_links; ++l) {
    const Edge& e = layout.edges[static_cast<std::size_t>(l)];
    SimHost* gw = gw_hosts[static_cast<std::size_t>(l)];
    net.update_link(*gw, *cores[static_cast<std::size_t>(e.x)], base);
    net.update_link(*gw, *cores[static_cast<std::size_t>(e.y)], base);
  }

  std::vector<int> degree(static_cast<std::size_t>(n_cells), 0);
  for (const Edge& e : layout.edges) {
    ++degree[static_cast<std::size_t>(e.x)];
    ++degree[static_cast<std::size_t>(e.y)];
  }
  auto quiet = [&] {
    for (int c = 0; c < n_cells; ++c) {
      auto expect = static_cast<std::size_t>(per_cell) +
                    static_cast<std::size_t>(degree[static_cast<std::size_t>(c)]);
      if (cells[static_cast<std::size_t>(c)]->bus().members().size() != expect) {
        return false;
      }
      if (cells[static_cast<std::size_t>(c)]->bus().max_proxy_backlog() != 0) {
        return false;
      }
    }
    auto settled = [](const std::unique_ptr<SmcMember>& m) {
      return m->joined() && m->client()->backlog() == 0 &&
             m->offline_pending() == 0;
    };
    if (!std::ranges::all_of(members, settled)) return false;
    if (!std::ranges::all_of(gw_members, settled)) return false;
    // Interest-driven routing must be live on every directed link.
    return std::ranges::all_of(gateways, [](const auto& g) {
      return g->interest_subscriptions() > 0;
    });
  };

  auto drain = [&](TimePoint deadline) {
    int stable = 0;
    std::uint64_t last = oracle.deliveries();
    while (ex.now() < deadline && stable < 4) {
      ex.run_for(milliseconds(500));
      bool still = quiet() && oracle.deliveries() == last;
      last = oracle.deliveries();
      stable = still ? stable + 1 : 0;
    }
    return stable >= 4;
  };

  auto collect = [&] {
    result.publishes = oracle.publishes();
    result.deliveries = oracle.deliveries();
    result.cross_cell = oracle.cross_cell();
    for (auto& c : cells) {
      result.fed_dups_dropped += c->bus().stats().fed_duplicates_dropped;
      result.fed_suppressed += c->bus().stats().fed_events_suppressed;
    }
  };

  TimePoint deadline = ex.now() + config.quiesce_cap;
  if (!drain(deadline)) {
    collect();
    std::ostringstream os;
    os << "overlay healed but did not quiesce within "
       << to_seconds(config.quiesce_cap) << "s:";
    for (int c = 0; c < n_cells; ++c) {
      os << " cell" << c << "="
         << cells[static_cast<std::size_t>(c)]->bus().members().size();
    }
    std::size_t gws = 0;
    for (auto& g : gateways) gws += g->interest_subscriptions() > 0 ? 1 : 0;
    os << " live-gateways=" << gws << "/" << gateways.size();
    result.invariant = "failed-to-quiesce";
    result.violation = os.str();
    return result;
  }

  // Post-heal barrage: every member publishes on the fully-live overlay;
  // invariant (c) demands full-mesh delivery.
  result.log.push_back(fmt_time(ex.now()) + " === final barrage ===");
  std::vector<std::pair<int, std::int64_t>> barrage;
  for (int m = 0; m < n_members; ++m) {
    auto idx = static_cast<std::size_t>(m);
    for (int k = 0; k < 2; ++k) {
      Event e("mc");
      e.set("m", m);
      e.set("n", pub_n[idx]);
      e.set("c", member_cell[idx]);
      oracle.on_publish(m, pub_n[idx]);
      barrage.emplace_back(m, pub_n[idx]);
      ++pub_n[idx];
      (void)members[idx]->publish(std::move(e));
    }
  }
  if (!drain(deadline)) {
    collect();
    result.invariant = "failed-to-quiesce";
    result.violation = "post-barrage deliveries never settled";
    return result;
  }

  oracle.check_barrage(barrage, n_members);
  collect();
  if (oracle.violation()) {
    result.invariant = oracle.violation()->invariant;
    result.violation = oracle.violation()->detail;
    return result;
  }
  result.ok = true;
  return result;
}

std::string format_multicell_trace(const McSchedule& schedule,
                                   const McConfig& config,
                                   const McResult& result) {
  std::ostringstream os;
  os << "multicell torture trace\n"
     << "seed: " << schedule.seed << "\n"
     << "topology: " << to_string(config.topology) << "\n"
     << "engine: " << amuse::to_string(config.engine) << "\n"
     << "publishes: " << result.publishes
     << " deliveries: " << result.deliveries
     << " cross-cell: " << result.cross_cell
     << " fed-dups-dropped: " << result.fed_dups_dropped
     << " fed-suppressed: " << result.fed_suppressed << "\n"
     << "violation: [" << result.invariant << "] " << result.violation
     << "\n\nschedule (" << schedule.steps.size() << " steps):\n";
  for (const McStep& s : schedule.steps) os << "  " << s.to_string() << "\n";
  os << "\nrun log:\n";
  for (const std::string& line : result.log) os << "  " << line << "\n";
  return os.str();
}

}  // namespace amuse::torture
