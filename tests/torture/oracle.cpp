#include "torture/oracle.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace amuse::torture {
namespace {

constexpr std::uint64_t kOpen = std::numeric_limits<std::uint64_t>::max();

bool is_torture_event(const Event& e) { return e.type() == "torture"; }

std::string describe(const Event& e) {
  std::ostringstream os;
  os << "(sender=" << e.publisher().to_string() << " n=" << e.get_int("n")
     << " shard=" << e.get_int("shard") << " v=" << e.get_int("v") << ")";
  return os.str();
}

}  // namespace

void DeliveryOracle::attach(EventBus& bus, std::function<TimePoint()> now) {
  now_ = std::move(now);
  attach_tagged(bus, 0);
}

void DeliveryOracle::attach_promoted(EventBus& bus) {
  // The promoted core's own admissions ARE its replica from here on.
  severed_ = false;
  attach_tagged(bus, ++active_tag_);
}

void DeliveryOracle::core_incident(TimePoint when) {
  // Repl-lag slack: the active core flushes the replication stream on every
  // routed event, but an update in flight (plus a couple of 120 ms RTOs on
  // the control channel) dies with the core. Anything older must be in the
  // replica — and therefore re-delivered or staleness-accounted.
  incident_windows_.emplace_back(when - milliseconds(1000), when);
}

bool DeliveryOracle::in_incident_window(TimePoint routed_at) const {
  for (const auto& [lo, hi] : incident_windows_) {
    if (lo <= routed_at && routed_at <= hi) return true;
  }
  return false;
}

void DeliveryOracle::attach_tagged(EventBus& bus, int tag) {
  BusObserver obs;
  // Membership and subscription truth follows the active bus (F5): once a
  // standby promotes, the dead/deposed incarnation's admissions and purges
  // no longer move the intervals — but its routing taps below still count.
  obs.on_member_admitted = [this, tag](const MemberInfo& info) {
    engine_mirror_[tag][info.id].clear();
    if (tag != active_tag_) return;
    ++seq_;
    auto& iv = intervals_[info.id];
    if (!iv.empty() && iv.back().close_seq == kOpen) iv.back().close_seq = seq_;
    iv.push_back(Interval{seq_, kOpen, false, severed_});
    mirror_[info.id].clear();
  };
  obs.on_member_purged = [this, tag](ServiceId id) {
    engine_mirror_[tag][id].clear();
    if (tag != active_tag_) return;
    ++seq_;
    auto& iv = intervals_[id];
    if (!iv.empty() && iv.back().close_seq == kOpen) {
      iv.back().close_seq = seq_;
      iv.back().purged = true;
    }
    mirror_[id].clear();
  };
  obs.on_subscribe = [this, tag](ServiceId member, std::uint64_t local_id,
                                 const Filter& filter) {
    engine_mirror_[tag][member][local_id] = filter;
    if (tag != active_tag_) return;
    ++seq_;
    mirror_[member][local_id] = filter;
  };
  obs.on_unsubscribe = [this, tag](ServiceId member, std::uint64_t local_id) {
    engine_mirror_[tag][member].erase(local_id);
    if (tag != active_tag_) return;
    ++seq_;
    mirror_[member].erase(local_id);
  };
  obs.on_publish = [this](const Event& e) { bus_publish(e); };
  obs.on_deliver = [this, tag](ServiceId member, const Event& e,
                               const std::vector<std::uint64_t>& locals) {
    bus_deliver(tag, member, e, locals);
  };
  obs.on_shed = [this](ServiceId member, const Event& e) {
    ++seq_;
    if (!is_torture_event(e)) return;
    shed_.insert(std::make_tuple(member.raw(), e.publisher().raw(),
                                 e.get_int("n", -1)));
  };
  obs.on_redeliver = [this](ServiceId member, const Event& e) {
    ++seq_;
    if (!is_torture_event(e)) return;
    redelivered_.insert(std::make_tuple(member.raw(), e.publisher().raw(),
                                        e.get_int("n", -1)));
  };
  obs.on_staleness = [this](const Event& e) {
    ++seq_;
    if (!is_torture_event(e)) return;
    staleness_.insert(std::make_pair(e.publisher().raw(), e.get_int("n", -1)));
  };
  bus.set_observer(std::move(obs));
}

void DeliveryOracle::on_member_joined(std::size_t member_idx,
                                      std::uint64_t incarnation,
                                      TimePoint when) {
  join_time_.emplace(std::make_pair(member_idx, incarnation), when);
}

void DeliveryOracle::fail(std::string invariant, std::string detail) {
  if (violation_) return;  // keep the first violation
  violation_ = Violation{std::move(invariant), std::move(detail)};
}

void DeliveryOracle::bus_publish(const Event& e) {
  ++seq_;
  if (!is_torture_event(e)) return;
  std::uint64_t sender = e.publisher().raw();
  std::int64_t n = e.get_int("n", -1);
  auto key = std::make_pair(sender, n);
  if (publishes_.contains(key)) {
    fail("duplicate-publish",
         "event " + describe(e) +
             " reached the bus twice; a stale channel incarnation leaked");
    return;
  }
  PublishRecord rec;
  rec.seq = seq_;
  rec.order = ++sender_order_[sender];
  rec.routed_at = now_();
  // Candidate receivers: every currently-admitted member (with an open
  // interval) whose mirrored subscription set matches the event now.
  for (const auto& [member, subs] : mirror_) {
    const auto iv = intervals_.find(member);
    if (iv == intervals_.end() || iv->second.empty() ||
        iv->second.back().close_seq != kOpen) {
      continue;
    }
    std::vector<std::uint64_t> matching;
    for (const auto& [local_id, filter] : subs) {
      if (filter.matches(e)) matching.push_back(local_id);
    }
    if (!matching.empty()) rec.candidates.emplace(member, std::move(matching));
  }
  publishes_.emplace(key, std::move(rec));
}

void DeliveryOracle::bus_deliver(int tag, ServiceId member, const Event& e,
                                 const std::vector<std::uint64_t>& locals) {
  ++seq_;
  if (!is_torture_event(e)) return;
  // (d) The engine's matched set must equal the brute-force specification —
  // checked against the delivering bus's OWN subscription stream, not the
  // active-membership truth (a deposed core's registry lags legitimately).
  std::vector<std::uint64_t> expect;
  const auto& engine = engine_mirror_[tag];
  auto mit = engine.find(member);
  if (mit != engine.end()) {
    for (const auto& [local_id, filter] : mit->second) {
      if (filter.matches(e)) expect.push_back(local_id);
    }
  }
  std::vector<std::uint64_t> got = locals;
  std::sort(got.begin(), got.end());
  if (got != expect) {
    std::ostringstream os;
    os << "delivery of " << describe(e) << " to " << member.to_string()
       << " matched locals {";
    for (auto id : got) os << id << ",";
    os << "} but the subscription mirror expects {";
    for (auto id : expect) os << id << ",";
    os << "}";
    fail(expect.empty() ? "quench-consistency" : "matching-mismatch",
         os.str());
  }
}

void DeliveryOracle::on_member_delivery(std::size_t member_idx,
                                        ServiceId member_id,
                                        std::uint64_t incarnation,
                                        std::uint64_t sub_tag,
                                        const Event& e) {
  if (!is_torture_event(e)) return;
  ++delivery_count_;
  std::uint64_t sender = e.publisher().raw();
  std::int64_t n = e.get_int("n", -1);

  auto pub = publishes_.find(std::make_pair(sender, n));
  if (pub == publishes_.end()) {
    fail("phantom-delivery",
         "member " + member_id.to_string() + " received " + describe(e) +
             " which the bus never routed");
    return;
  }
  // (F4) a spool re-delivery from a promoted core legitimately arrives
  // long after the receiving incarnation joined — exempt from (e) and
  // from the FIFO regression check in (F2).
  bool redelivered =
      ha_mode_ && redelivered_.contains(std::make_tuple(member_id.raw(),
                                                        sender, n));
  // (e) stale delivery: the event was routed by the bus well before this
  // incarnation of the receiver joined, so it can only have arrived through
  // channel state leaked across a purge. The 250 ms slack generously covers
  // the legitimate window (proxy created at admission, client created when
  // the JoinAccept lands one datagram-flight later).
  auto jt = join_time_.find(std::make_pair(member_idx, incarnation));
  if (!redelivered && jt != join_time_.end() &&
      pub->second.routed_at + milliseconds(250) < jt->second) {
    fail("stale-delivery",
         "member " + member_id.to_string() + " incarnation " +
             std::to_string(incarnation) + " (joined at " +
             std::to_string(to_seconds(jt->second.time_since_epoch())) +
             "s) received " + describe(e) + " routed at " +
             std::to_string(
                 to_seconds(pub->second.routed_at.time_since_epoch())) +
             "s — backlog leaked from a previous incarnation");
    return;
  }
  // (a) exactly once per (receiver incarnation, subscription, sender, n).
  auto dup_key = std::make_tuple(member_idx, incarnation, sub_tag, sender, n);
  if (!seen_.insert(dup_key).second) {
    fail("duplicate-delivery",
         "member " + member_id.to_string() + " (incarnation " +
             std::to_string(incarnation) + ", sub " +
             std::to_string(sub_tag) + ") received " + describe(e) +
             " twice");
    return;
  }
  // (F1) exactly-once across ALL incarnations: a failover may re-deliver,
  // but the member-side (epoch, seq) dedup must swallow anything the
  // member already saw in a previous incarnation.
  if (ha_mode_ &&
      !ha_seen_.insert(std::make_tuple(member_idx, sub_tag, sender, n))
           .second) {
    fail("ha-duplicate-delivery",
         "member " + member_id.to_string() + " (sub " +
             std::to_string(sub_tag) + ") received " + describe(e) +
             " in two incarnations — the (epoch, seq) origin dedup failed"
             " across the promotion");
    return;
  }
  // (b) per-sender FIFO within one receiver incarnation: the per-sender
  // publish order must be strictly increasing (gaps = losses across purges
  // are legal; reordering is not).
  auto fifo_key = std::make_tuple(member_idx, incarnation, sub_tag, sender);
  auto [it, fresh] = fifo_.try_emplace(fifo_key, pub->second.order);
  if (!fresh) {
    if (pub->second.order <= it->second) {
      fail("fifo", "member " + member_id.to_string() + " (incarnation " +
                       std::to_string(incarnation) + ") received " +
                       describe(e) + " with per-sender order " +
                       std::to_string(pub->second.order) +
                       " after already seeing order " +
                       std::to_string(it->second));
      return;
    }
    it->second = pub->second.order;
  }
  // (F2) per-sender FIFO across the promotion: the watermark survives the
  // re-home. A regression is legal only for a spool re-delivery (healing
  // an event the old core shed out from under a later delivery).
  if (ha_mode_) {
    auto hk = std::make_tuple(member_idx, sub_tag, sender);
    auto [hit, hfresh] = ha_fifo_.try_emplace(hk, pub->second.order);
    if (!hfresh) {
      if (pub->second.order <= hit->second) {
        if (!redelivered) {
          fail("ha-fifo",
               "member " + member_id.to_string() + " received " +
                   describe(e) + " with per-sender order " +
                   std::to_string(pub->second.order) +
                   " after already seeing order " +
                   std::to_string(hit->second) +
                   " in an earlier incarnation, and it was not a spool"
                   " re-delivery");
          return;
        }
      } else {
        hit->second = pub->second.order;
      }
    }
  }
  delivered_.insert(std::make_tuple(member_id.raw(), sender, n));
}

void DeliveryOracle::finish() {
  if (violation_) return;
  // (c) lost delivery: for every publish, every candidate member whose
  // admission interval stayed open from the publish to the end of the run,
  // and at least one of whose matching subscriptions survived to the end,
  // must have received the event.
  //
  // (F3) extends (c) across a promotion: a candidate whose interval was
  // closed by a RE-ADMISSION (re-home onto the promoted core — not a
  // purge, which legally destroys queues) must also have received the
  // event, unless a shed record, a staleness-budget record, or the
  // repl-lag window before a core crash accounts for it.
  for (const auto& [key, rec] : publishes_) {
    for (const auto& [member, matching] : rec.candidates) {
      ++tally_.pairs;
      if (delivered_.contains(
              std::make_tuple(member.raw(), key.first, key.second))) {
        ++tally_.delivered;
        continue;
      }
      // Overload shedding is always a legal excuse when the bus accounted
      // for it with a shed record for exactly this (member, event) pair.
      if (shed_.contains(
              std::make_tuple(member.raw(), key.first, key.second))) {
        ++tally_.shed;
        continue;
      }
      if (ha_mode_) {
        // The staleness budget accounted for the event (spool eviction,
        // deposed-core route, or the step-down drain) — bounded staleness
        // is the contract, silent loss is not.
        if (staleness_.contains(std::make_pair(key.first, key.second))) {
          ++tally_.staleness;
          continue;
        }
        if (in_incident_window(rec.routed_at)) {
          ++tally_.repl_lag;
          continue;
        }
      }
      const auto iv = intervals_.find(member);
      if (iv == intervals_.end() || iv->second.empty()) {
        ++tally_.exempt;
        continue;
      }
      // Find the admission interval that was open at publish time.
      const Interval* at_pub = nullptr;
      for (const Interval& i : iv->second) {
        if (i.open_seq <= rec.seq &&
            (i.close_seq == kOpen || rec.seq <= i.close_seq)) {
          at_pub = &i;
          break;
        }
      }
      if (at_pub == nullptr) {
        ++tally_.exempt;
        continue;
      }
      if (at_pub->close_seq == kOpen) {
        // Still admitted, never re-homed: the base guarantee, provided at
        // least one matching subscription survived to the end of the run.
        const auto mit = mirror_.find(member);
        if (mit == mirror_.end()) {
          ++tally_.unsubscribed;
          continue;
        }
        bool survived = std::any_of(
            matching.begin(), matching.end(),
            [&](std::uint64_t id) { return mit->second.contains(id); });
        if (!survived) {
          ++tally_.unsubscribed;
          continue;
        }
        fail("lost-delivery",
             "member " + member.to_string() +
                 " stayed admitted and subscribed but never received event"
                 " (sender=" +
                 std::to_string(key.first) +
                 " n=" + std::to_string(key.second) +
                 "), and no shed record accounts for it");
        return;
      }
      // An admission the severed repl stream never carried to the standby
      // is invisible to the promoted core — the member's later join there
      // is a fresh join, not a covered re-home, so F3 does not apply.
      if (ha_mode_ && !at_pub->purged && !at_pub->unreplicated) {
        fail("ha-lost-delivery",
             "member " + member.to_string() +
                 " re-homed across the promotion but never received event"
                 " (sender=" +
                 std::to_string(key.first) +
                 " n=" + std::to_string(key.second) +
                 "), and no shed, staleness, or repl-lag record accounts"
                 " for it");
        return;
      }
      if (at_pub->purged) {
        ++tally_.purged;
      } else if (at_pub->unreplicated) {
        ++tally_.unreplicated;
      } else {
        ++tally_.exempt;  // non-HA re-home: (c) does not reach across it
      }
    }
  }
}

}  // namespace amuse::torture
