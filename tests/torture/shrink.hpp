// Schedule shrinker: given a failing (schedule, config) pair, finds a small
// sub-schedule that still fails. Two passes:
//   1. prefix bisection — binary-search the shortest failing prefix;
//   2. single-step removal — greedily drop steps that are not needed.
// Both rely on run_torture() being deterministic in its inputs, so every
// candidate either reproducibly fails or reproducibly passes.
#pragma once

#include "torture/driver.hpp"

namespace amuse::torture {

struct ShrinkResult {
  Schedule schedule;     // minimal failing schedule found
  TortureResult result;  // its failure
  int runs = 0;          // torture runs spent shrinking
};

/// `failing` must fail under `config`. Runs at most `max_runs` replays.
[[nodiscard]] ShrinkResult shrink(const Schedule& failing,
                                  const TortureConfig& config,
                                  int max_runs = 200);

}  // namespace amuse::torture
