// DeliveryOracle: records ground truth on both sides of the bus and checks
// the paper's delivery guarantees (§III / §VI) after a torture run:
//
//   (a) no duplicate delivery — "exactly once ... as long as the component
//       remains a member";
//   (b) per-sender FIFO at every receiver — "events from a single sender
//       are delivered in the order they were published";
//   (c) no silent loss — every matching event published while a member was
//       admitted-and-never-since-purged is eventually delivered, OR the bus
//       recorded shedding it for that member under overload (DESIGN.md §9:
//       "accounted, never silent"). A missing delivery without a matching
//       shed record is a violation;
//   (d) quench/matching consistency — an event is handed to a member's
//       proxy exactly for the member's subscriptions that match it (the
//       oracle's brute-force Filter::matches is the specification the
//       engines are checked against);
//   (e) no stale delivery — a rejoined member must not receive backlog
//       queued for a previous incarnation ("purge destroys queued
//       events"): an event routed long before the receiving incarnation
//       joined can only arrive through leaked channel state.
//
// The HA failover harness (tests/torture/failover.cpp) additionally calls
// enable_ha_rules() / attach_promoted() / core_incident(), which extend
// the guarantees across a standby promotion (DESIGN.md §13):
//
//   (F1) exactly-once across promotion — one (sender, n) publish reaches a
//        member's subscription at most once over ALL its incarnations: the
//        promoted core's spool re-delivery must be swallowed by the
//        member-side (epoch, seq) dedup when the event was already seen;
//   (F2) per-sender FIFO across promotion — the per-sender publish order
//        stays strictly increasing across the re-home. Spool re-delivery
//        at admission is exempt from the regression check (re-delivering
//        an event the old core shed is a legal heal, not a reorder);
//   (F3) accounted failover loss — a member that re-homed (its admission
//        interval was closed by a new admission, not a purge) must receive
//        every pre-promotion candidate event, unless the bus recorded a
//        shed for that (member, event), a staleness-budget record for the
//        event (spool eviction / deposed-core route / step-down drain), or
//        the event was routed inside the repl-lag window just before a
//        core crash (the dead core could not have replicated it);
//   (F4) re-delivery is exempt from (e) — on_redeliver-tagged events may
//        legitimately arrive long after the receiving incarnation's join;
//   (F5) membership truth follows the promotion — after attach_promoted()
//        only the promoted bus's admissions/purges move the oracle's
//        intervals, so a member stranded on the dead incarnation can never
//        satisfy (F3) by "staying admitted" there. (This is the rule a
//        fence_epochs revert trips: stranded members miss the barrage.)
//
// Bus-side truth comes from a BusObserver; member-side truth from the
// harness's subscription handlers (on_member_delivery). All containers are
// ordered (std::map/std::set) so violation reports are deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bus/event_bus.hpp"

namespace amuse::torture {

class DeliveryOracle {
 public:
  struct Violation {
    std::string invariant;  // "duplicate-delivery", "fifo", ...
    std::string detail;
  };

  /// Justification ledger, filled by finish(): every (candidate member,
  /// publish) pair is attributed to EXACTLY ONE bucket, in priority order
  /// delivered > shed > staleness > repl-lag > purged > unreplicated >
  /// unsubscribed > exempt. `pairs` equals the sum of all buckets by
  /// construction — the directed overload test asserts that the shed and
  /// staleness ledgers compose: shedding under §9 budgets and spool
  /// eviction under §13 each justify their own losses, no pair needs two
  /// excuses and none goes silent.
  struct Tally {
    std::uint64_t pairs = 0;         // candidate (member, publish) pairs
    std::uint64_t delivered = 0;     // received at least once
    std::uint64_t shed = 0;          // §9 shed record for this exact pair
    std::uint64_t staleness = 0;     // §13 staleness-budget record
    std::uint64_t repl_lag = 0;      // routed inside a crash's lag window
    std::uint64_t purged = 0;        // interval closed by a purge
    std::uint64_t unreplicated = 0;  // admission never reached the replica
    std::uint64_t unsubscribed = 0;  // matching subscription dropped
    std::uint64_t exempt = 0;        // non-HA re-home / defensive paths
  };

  /// Installs the bus observer. `now` supplies the simulation clock (used
  /// to timestamp publishes for the stale-delivery check). The oracle must
  /// outlive the bus.
  void attach(EventBus& bus, std::function<TimePoint()> now);

  /// Switches on the cross-promotion rules F1–F5 (HA failover harness).
  void enable_ha_rules() { ha_mode_ = true; }

  /// Re-points membership truth at a promoted core's bus (F5). The old
  /// bus's observer stays installed — its publishes, deliveries and
  /// accounting taps still count (split brain: the deposed-to-be core
  /// keeps serving members until they fence over) — but its admissions
  /// and purges no longer move the intervals.
  void attach_promoted(EventBus& bus);

  /// Marks a core crash at `when`: publishes routed within the repl-lag
  /// slack before it may vanish without accounting — the dying core had
  /// no chance to replicate them (F3's bounded-staleness window).
  void core_incident(TimePoint when);

  /// Marks the replication stream severed (core crash or split brain).
  /// Admissions on the active core from here until attach_promoted() can
  /// never reach the standby's replica, so the promoted core legitimately
  /// does not know those members: F3's strong guarantee does not cover
  /// them (their later join to the promoted core is a fresh join, not a
  /// re-home). Deliveries they DO receive stay fully checked.
  void repl_severed() { severed_ = true; }

  /// Called by the harness whenever a member (re-)joins, with the member's
  /// new join count.
  void on_member_joined(std::size_t member_idx, std::uint64_t incarnation,
                        TimePoint when);

  /// Called by the harness from every recorder subscription handler.
  /// `incarnation` is the member's join count at delivery time; `sub_tag`
  /// identifies the durable subscription the handler belongs to.
  void on_member_delivery(std::size_t member_idx, ServiceId member_id,
                          std::uint64_t incarnation, std::uint64_t sub_tag,
                          const Event& e);

  /// End-of-run check (after quiescence): lost deliveries. Online checks
  /// (duplicates, FIFO, quench consistency, duplicate/phantom publishes)
  /// have already been recorded as they happened.
  void finish();

  [[nodiscard]] const std::optional<Violation>& violation() const {
    return violation_;
  }
  /// Valid after finish() (empty if finish() bailed on a prior violation).
  [[nodiscard]] const Tally& tally() const { return tally_; }
  [[nodiscard]] std::uint64_t publishes() const { return publishes_.size(); }
  [[nodiscard]] std::uint64_t deliveries() const { return delivery_count_; }
  [[nodiscard]] std::uint64_t sheds() const { return shed_.size(); }

 private:
  struct Interval {
    std::uint64_t open_seq;
    std::uint64_t close_seq;  // UINT64_MAX while open
    // true: closed by a purge (queued events legally destroyed);
    // false + closed: closed by a re-admission (re-home) — F3 applies.
    bool purged = false;
    // Opened while the repl stream was severed: the standby's replica
    // cannot contain this admission, so F3 does not apply to it.
    bool unreplicated = false;
  };
  struct PublishRecord {
    std::uint64_t seq;        // global observer order
    std::uint64_t order;      // per-sender publish index (FIFO reference)
    TimePoint routed_at{};    // sim time the bus routed the event
    // Admitted members whose mirror matched at publish time, with the
    // matching local subscription ids (for the survived-to-end test).
    std::map<ServiceId, std::vector<std::uint64_t>> candidates;
  };

  void fail(std::string invariant, std::string detail);
  void attach_tagged(EventBus& bus, int tag);
  void bus_publish(const Event& e);
  void bus_deliver(int tag, ServiceId member, const Event& e,
                   const std::vector<std::uint64_t>& locals);
  [[nodiscard]] bool in_incident_window(TimePoint routed_at) const;

  std::uint64_t seq_ = 0;  // bumped on every observed bus action
  std::function<TimePoint()> now_;
  bool ha_mode_ = false;
  bool severed_ = false;  // repl stream down; cleared by attach_promoted()
  int active_tag_ = 0;  // the bus whose admissions define membership truth
  std::vector<std::pair<TimePoint, TimePoint>> incident_windows_;

  // (member_idx, incarnation) → sim time that join completed.
  std::map<std::pair<std::size_t, std::uint64_t>, TimePoint> join_time_;

  // Bus-side mirrors (the oracle's own bookkeeping, independent of the
  // registry implementation under test). mirror_ is membership TRUTH —
  // updated only by the active bus, used for candidate computation.
  std::map<ServiceId, std::map<std::uint64_t, Filter>> mirror_;
  std::map<ServiceId, std::vector<Interval>> intervals_;
  // Per-bus engine mirrors for rule (d): each bus's deliveries are checked
  // against ITS OWN subscription stream — during a split brain the deposed
  // core's registry legitimately diverges from the promoted one's (stale
  // members it has not purged yet), and that divergence is not a matching
  // bug.
  std::map<int, std::map<ServiceId, std::map<std::uint64_t, Filter>>>
      engine_mirror_;

  // (sender raw, n) → publish record; per-sender publish counters.
  std::map<std::pair<std::uint64_t, std::int64_t>, PublishRecord> publishes_;
  std::map<std::uint64_t, std::uint64_t> sender_order_;

  // Member-side records. Dup key: (member_idx, incarnation, sub_tag,
  // sender raw, n). FIFO state: last publish order per (member_idx,
  // incarnation, sub_tag, sender raw).
  std::set<std::tuple<std::size_t, std::uint64_t, std::uint64_t,
                      std::uint64_t, std::int64_t>> seen_;
  std::map<std::tuple<std::size_t, std::uint64_t, std::uint64_t,
                      std::uint64_t>, std::uint64_t> fifo_;
  // (member raw, sender raw, n) delivered at least once — for (c).
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>> delivered_;
  // (member raw, sender raw, n) the bus recorded as shed for that member —
  // the only legal excuse for a missing delivery in (c).
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>> shed_;
  // HA bookkeeping (populated only when the failover harness attaches the
  // extra observer taps). redelivered_: (member raw, sender raw, n) the
  // promoted core re-offered from its spool (F2/F4 exemptions).
  // staleness_: (sender raw, n) the staleness budget accounted for (spool
  // eviction, deposed-core route, step-down drain) — an F3 excuse.
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>>
      redelivered_;
  std::set<std::pair<std::uint64_t, std::int64_t>> staleness_;
  // Cross-incarnation exactly-once (F1) and FIFO watermarks (F2), keyed
  // without the incarnation on purpose.
  std::set<std::tuple<std::size_t, std::uint64_t, std::uint64_t,
                      std::int64_t>> ha_seen_;
  std::map<std::tuple<std::size_t, std::uint64_t, std::uint64_t>,
           std::uint64_t> ha_fifo_;
  std::uint64_t delivery_count_ = 0;
  Tally tally_;

  std::optional<Violation> violation_;
};

}  // namespace amuse::torture
