// DeliveryOracle: records ground truth on both sides of the bus and checks
// the paper's delivery guarantees (§III / §VI) after a torture run:
//
//   (a) no duplicate delivery — "exactly once ... as long as the component
//       remains a member";
//   (b) per-sender FIFO at every receiver — "events from a single sender
//       are delivered in the order they were published";
//   (c) no silent loss — every matching event published while a member was
//       admitted-and-never-since-purged is eventually delivered, OR the bus
//       recorded shedding it for that member under overload (DESIGN.md §9:
//       "accounted, never silent"). A missing delivery without a matching
//       shed record is a violation;
//   (d) quench/matching consistency — an event is handed to a member's
//       proxy exactly for the member's subscriptions that match it (the
//       oracle's brute-force Filter::matches is the specification the
//       engines are checked against);
//   (e) no stale delivery — a rejoined member must not receive backlog
//       queued for a previous incarnation ("purge destroys queued
//       events"): an event routed long before the receiving incarnation
//       joined can only arrive through leaked channel state.
//
// Bus-side truth comes from a BusObserver; member-side truth from the
// harness's subscription handlers (on_member_delivery). All containers are
// ordered (std::map/std::set) so violation reports are deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bus/event_bus.hpp"

namespace amuse::torture {

class DeliveryOracle {
 public:
  struct Violation {
    std::string invariant;  // "duplicate-delivery", "fifo", ...
    std::string detail;
  };

  /// Installs the bus observer. `now` supplies the simulation clock (used
  /// to timestamp publishes for the stale-delivery check). The oracle must
  /// outlive the bus.
  void attach(EventBus& bus, std::function<TimePoint()> now);

  /// Called by the harness whenever a member (re-)joins, with the member's
  /// new join count.
  void on_member_joined(std::size_t member_idx, std::uint64_t incarnation,
                        TimePoint when);

  /// Called by the harness from every recorder subscription handler.
  /// `incarnation` is the member's join count at delivery time; `sub_tag`
  /// identifies the durable subscription the handler belongs to.
  void on_member_delivery(std::size_t member_idx, ServiceId member_id,
                          std::uint64_t incarnation, std::uint64_t sub_tag,
                          const Event& e);

  /// End-of-run check (after quiescence): lost deliveries. Online checks
  /// (duplicates, FIFO, quench consistency, duplicate/phantom publishes)
  /// have already been recorded as they happened.
  void finish();

  [[nodiscard]] const std::optional<Violation>& violation() const {
    return violation_;
  }
  [[nodiscard]] std::uint64_t publishes() const { return publishes_.size(); }
  [[nodiscard]] std::uint64_t deliveries() const { return delivery_count_; }
  [[nodiscard]] std::uint64_t sheds() const { return shed_.size(); }

 private:
  struct Interval {
    std::uint64_t open_seq;
    std::uint64_t close_seq;  // UINT64_MAX while open
  };
  struct PublishRecord {
    std::uint64_t seq;        // global observer order
    std::uint64_t order;      // per-sender publish index (FIFO reference)
    TimePoint routed_at{};    // sim time the bus routed the event
    // Admitted members whose mirror matched at publish time, with the
    // matching local subscription ids (for the survived-to-end test).
    std::map<ServiceId, std::vector<std::uint64_t>> candidates;
  };

  void fail(std::string invariant, std::string detail);
  void bus_publish(const Event& e);
  void bus_deliver(ServiceId member, const Event& e,
                   const std::vector<std::uint64_t>& locals);

  std::uint64_t seq_ = 0;  // bumped on every observed bus action
  std::function<TimePoint()> now_;

  // (member_idx, incarnation) → sim time that join completed.
  std::map<std::pair<std::size_t, std::uint64_t>, TimePoint> join_time_;

  // Bus-side mirrors (the oracle's own bookkeeping, independent of the
  // registry implementation under test).
  std::map<ServiceId, std::map<std::uint64_t, Filter>> mirror_;
  std::map<ServiceId, std::vector<Interval>> intervals_;

  // (sender raw, n) → publish record; per-sender publish counters.
  std::map<std::pair<std::uint64_t, std::int64_t>, PublishRecord> publishes_;
  std::map<std::uint64_t, std::uint64_t> sender_order_;

  // Member-side records. Dup key: (member_idx, incarnation, sub_tag,
  // sender raw, n). FIFO state: last publish order per (member_idx,
  // incarnation, sub_tag, sender raw).
  std::set<std::tuple<std::size_t, std::uint64_t, std::uint64_t,
                      std::uint64_t, std::int64_t>> seen_;
  std::map<std::tuple<std::size_t, std::uint64_t, std::uint64_t,
                      std::uint64_t>, std::uint64_t> fifo_;
  // (member raw, sender raw, n) delivered at least once — for (c).
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>> delivered_;
  // (member raw, sender raw, n) the bus recorded as shed for that member —
  // the only legal excuse for a missing delivery in (c).
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>> shed_;
  std::uint64_t delivery_count_ = 0;

  std::optional<Violation> violation_;
};

}  // namespace amuse::torture
