// TortureDriver: seeded, randomized protocol torture on the deterministic
// simulation. One uint64 seed expands into a Schedule — timed member
// crashes/recoveries, graceful leaves/restarts, link loss/bursts, MTU
// squeezes, network partitions, subscription churn and publish bursts —
// which run_torture() replays against a full SMC (cell + N members) while a
// DeliveryOracle checks the paper's delivery guarantees after quiescence.
//
// Everything is derived from the seed and the schedule's own step fields:
// no wall clock, no unseeded randomness, so a failing (engine, schedule)
// pair replays bit-identically — the property the shrinker relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bus/event_bus.hpp"
#include "sim/time.hpp"

namespace amuse::torture {

enum class TortureOp : std::uint8_t {
  kCrash,          // host down (heartbeats stop; may straddle the purge)
  kRecover,        // host back up (agent re-joins if purged)
  kLeave,          // graceful LEAVE → immediate purge
  kRestart,        // agent starts searching again after a leave
  kLinkFault,      // member⟷core link: loss (a%) or bursty loss (b != 0)
  kMtuSqueeze,     // member⟷core link: MTU clamped to a bytes
  kLinkHeal,       // member⟷core link back to the base model
  kStall,          // core→member direction blackholed (slow consumer: the
                   // member's heartbeats keep it alive while its proxy
                   // queue grows against the delivery budgets)
  kPartition,      // split hosts into two groups (core in group 1)
  kHealPartition,  // everyone back into one group
  kBurst,          // member publishes a events
  kSubAdd,         // member adds an ephemeral subscription (v >= a)
  kSubDrop,        // member drops its oldest ephemeral subscription
  // HA ops (generated only by the failover harness, tests/torture/
  // failover.hpp — the single-core schedule above never emits them):
  kCoreCrash,      // active core host down; the standby's lease expires
  kCoreRevive,     // old core host back up (fenced: it must step down)
  kSplitBrain,     // core ⟷ standby link cut while both stay up; the
                   // standby promotes with the old core still serving.
                   // Healed by kHealPartition, which here restores the
                   // core ⟷ standby link (the old core then hears the
                   // rival epoch and deposes itself)
  kChainCrash,     // crash the host of the CURRENTLY ACTIVE core — the
                   // promoted winner's host once a promotion happened —
                   // so a surviving standby (re-armed by the chain) must
                   // promote a second time (DESIGN.md §13.5 standby
                   // chains)
  kChainRevive,    // revive whichever host kChainCrash took down
};

[[nodiscard]] const char* to_string(TortureOp op);

struct TortureStep {
  Duration at{};      // offset from schedule start
  TortureOp op{};
  int member = -1;    // target member index; -1 = whole network
  int a = 0;          // op parameter (burst size, loss %, MTU, threshold)
  int b = 0;          // op parameter (bursty flag, partition mask)

  [[nodiscard]] std::string to_string() const;
};

struct Schedule {
  std::uint64_t seed = 0;
  std::vector<TortureStep> steps;
};

struct TortureConfig {
  BusEngine engine = BusEngine::kCBased;
  int members = 4;
  int incidents = 12;              // fault/burst incidents to generate
  Duration horizon = seconds(20);  // fault-phase length
  Duration quiesce_cap = seconds(120);
};

struct TortureResult {
  bool ok = false;
  std::string invariant;           // empty when ok
  std::string violation;           // human-readable detail
  std::vector<std::string> log;    // applied steps + phase markers
  std::uint64_t publishes = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t sheds = 0;  // accounted overload drops (observer shed tap)
};

/// Expands a seed into a timed schedule. Every fault is paired with a heal
/// within the horizon so quiescence is always reachable.
[[nodiscard]] Schedule generate_schedule(std::uint64_t seed,
                                         const TortureConfig& config);

/// Replays a schedule against a fresh SMC under `config.engine` and runs
/// the oracle. Deterministic in (schedule, config).
[[nodiscard]] TortureResult run_torture(const Schedule& schedule,
                                        const TortureConfig& config);

/// Serialises a failing run for the trace file.
[[nodiscard]] std::string format_trace(const Schedule& schedule,
                                       const TortureConfig& config,
                                       const TortureResult& result);

}  // namespace amuse::torture
