#include "torture/driver.hpp"

#include <algorithm>
#include <iomanip>
#include <memory>
#include <sstream>

#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"
#include "smc/cell.hpp"
#include "smc/member.hpp"
#include "torture/oracle.hpp"

namespace amuse::torture {
namespace {

const Bytes kPsk = to_bytes("torture-key");
constexpr const char* kCellName = "torture-cell";

std::string fmt_time(TimePoint t) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3)
     << to_seconds(t.time_since_epoch()) << "s";
  return os.str();
}

}  // namespace

const char* to_string(TortureOp op) {
  switch (op) {
    case TortureOp::kCrash: return "crash";
    case TortureOp::kRecover: return "recover";
    case TortureOp::kLeave: return "leave";
    case TortureOp::kRestart: return "restart";
    case TortureOp::kLinkFault: return "link-fault";
    case TortureOp::kMtuSqueeze: return "mtu-squeeze";
    case TortureOp::kLinkHeal: return "link-heal";
    case TortureOp::kStall: return "stall";
    case TortureOp::kPartition: return "partition";
    case TortureOp::kHealPartition: return "heal-partition";
    case TortureOp::kBurst: return "burst";
    case TortureOp::kSubAdd: return "sub-add";
    case TortureOp::kSubDrop: return "sub-drop";
    case TortureOp::kCoreCrash: return "core-crash";
    case TortureOp::kCoreRevive: return "core-revive";
    case TortureOp::kSplitBrain: return "split-brain";
    case TortureOp::kChainCrash: return "chain-crash";
    case TortureOp::kChainRevive: return "chain-revive";
  }
  return "?";
}

std::string TortureStep::to_string() const {
  std::ostringstream os;
  os << "@" << std::fixed << std::setprecision(3) << to_seconds(at) << "s "
     << torture::to_string(op);
  if (member >= 0) os << " member=" << member;
  if (a != 0) os << " a=" << a;
  if (b != 0) os << " b=" << b;
  return os.str();
}

Schedule generate_schedule(std::uint64_t seed, const TortureConfig& config) {
  Schedule sched;
  sched.seed = seed;
  Rng rng(seed, /*stream=*/0x7024);

  const double horizon_s = to_seconds(config.horizon);
  auto at = [&](double lo_s, double hi_s) {
    return from_seconds(rng.uniform(lo_s, hi_s));
  };
  auto push = [&](Duration t, TortureOp op, int member, int a = 0,
                  int b = 0) {
    sched.steps.push_back(TortureStep{t, op, member, a, b});
  };

  for (int i = 0; i < config.incidents; ++i) {
    int member = static_cast<int>(
        rng.bounded(static_cast<std::uint32_t>(config.members)));
    double roll = rng.uniform();
    if (roll < 0.30) {
      // Publish burst: 1–8 events from one member, any time.
      push(at(0.2, horizon_s - 1.0), TortureOp::kBurst, member,
           1 + static_cast<int>(rng.bounded(8)));
    } else if (roll < 0.45) {
      // Crash + recover; duration straddles the purge timeout sometimes.
      Duration t = at(0.2, horizon_s - 8.0);
      push(t, TortureOp::kCrash, member);
      push(t + at(0.5, 7.0), TortureOp::kRecover, member);
    } else if (roll < 0.55) {
      Duration t = at(0.2, horizon_s - 6.0);
      push(t, TortureOp::kLeave, member);
      push(t + at(0.5, 4.0), TortureOp::kRestart, member);
    } else if (roll < 0.70) {
      // Loss (sometimes bursty Gilbert–Elliott) on the member⟷core link.
      Duration t = at(0.2, horizon_s - 7.0);
      bool bursty = rng.chance(0.4);
      push(t, TortureOp::kLinkFault, member,
           20 + static_cast<int>(rng.bounded(51)), bursty ? 1 : 0);
      push(t + at(1.0, 6.0), TortureOp::kLinkHeal, member);
    } else if (roll < 0.78) {
      Duration t = at(0.2, horizon_s - 7.0);
      push(t, TortureOp::kMtuSqueeze, member,
           150 + static_cast<int>(rng.bounded(551)));
      push(t + at(1.0, 6.0), TortureOp::kLinkHeal, member);
    } else if (roll < 0.86) {
      // Slow consumer: blackhole deliveries to one member while another
      // floods, so the budgets and shed accounting actually engage.
      Duration t = at(0.2, horizon_s - 7.0);
      push(t, TortureOp::kStall, member);
      push(t + at(0.1, 1.0), TortureOp::kBurst,
           (member + 1) % config.members,
           8 + static_cast<int>(rng.bounded(13)));
      push(t + at(1.5, 6.0), TortureOp::kLinkHeal, member);
    } else if (roll < 0.92) {
      // Partition: bit i of `b` sends member i to the far side.
      int mask = 0;
      for (int m = 0; m < config.members; ++m) {
        if (rng.chance(0.5)) mask |= 1 << m;
      }
      if (mask == 0) mask = 1;
      Duration t = at(0.2, horizon_s - 6.0);
      push(t, TortureOp::kPartition, -1, 0, mask);
      push(t + at(1.0, 5.0), TortureOp::kHealPartition, -1);
    } else if (roll < 0.95) {
      push(at(0.2, horizon_s - 1.0), TortureOp::kSubAdd, member,
           10 + static_cast<int>(rng.bounded(81)));
    } else {
      push(at(0.2, horizon_s - 1.0), TortureOp::kSubDrop, member);
    }
  }
  std::stable_sort(sched.steps.begin(), sched.steps.end(),
                   [](const TortureStep& x, const TortureStep& y) {
                     return x.at < y.at;
                   });
  return sched;
}

TortureResult run_torture(const Schedule& schedule,
                          const TortureConfig& config) {
  TortureResult result;

  SimExecutor ex;
  SimNetwork net(ex, schedule.seed ^ 0x9e3779b97f4a7c15ull);
  // The paper's USB-IP link, but with the latency jitter widened to
  // wireless-like tens of ms: wide jitter opens reordering/race windows
  // (e.g. a stale frame from a purged proxy landing after the member's
  // fresh channel exists) that sub-ms jitter can never hit.
  LinkModel base = profiles::usb_ip_link();
  base.latency_spread = milliseconds(30);
  net.set_default_link(base);
  SimHost& core = net.add_host("core", profiles::ideal_host());

  SmcCellConfig cc;
  cc.name = kCellName;
  cc.pre_shared_key = kPsk;
  cc.bus.engine = config.engine;
  cc.bus.channel.max_fragment_payload = 512;
  // Dense retransmissions: more protocol events per simulated second means
  // more chances to interleave badly with purges and rejoins.
  cc.bus.channel.rto_initial = milliseconds(120);
  cc.bus.channel.rto_min = milliseconds(80);
  // Tight delivery budgets (DESIGN.md §9) so stalls and bursts actually
  // overflow them: events encode to ~100 bytes, so ~20 retained events per
  // member. Sheds are legal under the refined guarantee (c) because every
  // one is accounted via the observer's shed tap.
  cc.bus.channel.max_queue_bytes = 2048;
  cc.bus.channel.flow_high_water = 1536;
  cc.bus.channel.flow_low_water = 512;
  cc.bus.bus_queue_bytes = 6144;
  cc.discovery.beacon_interval = milliseconds(300);
  cc.discovery.heartbeat_interval = milliseconds(300);
  cc.discovery.suspect_after = milliseconds(1200);
  cc.discovery.purge_after = seconds(3);
  cc.discovery.sweep_interval = milliseconds(150);
  auto cell = std::make_unique<SelfManagedCell>(
      ex, net.create_endpoint(core), net.create_endpoint(core), cc);

  DeliveryOracle oracle;
  oracle.attach(cell->bus(), [&ex] { return ex.now(); });
  cell->start();

  const int n = config.members;
  std::vector<SimHost*> hosts;
  std::vector<std::unique_ptr<SmcMember>> members;
  std::vector<std::int64_t> pub_n(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<std::uint64_t>> ephemeral(
      static_cast<std::size_t>(n));
  std::uint64_t next_eph_tag = 100;

  auto recorder = [&oracle](SmcMember* m, std::size_t idx,
                            std::uint64_t tag) {
    return [&oracle, m, idx, tag](const Event& e) {
      oracle.on_member_delivery(idx, m->id(), m->stats().joins, tag, e);
    };
  };

  for (int i = 0; i < n; ++i) {
    SimHost& h = net.add_host("m" + std::to_string(i),
                              profiles::ideal_host());
    hosts.push_back(&h);
    SmcMemberConfig mc;
    mc.agent.cell_name = kCellName;
    mc.agent.pre_shared_key = kPsk;
    mc.agent.device_type = "torture.m" + std::to_string(i);
    mc.agent.cell_lost_after = seconds(2);
    mc.channel.max_fragment_payload = 512;
    mc.channel.rto_initial = milliseconds(120);
    mc.channel.rto_min = milliseconds(80);
    auto member = std::make_unique<SmcMember>(ex, net.create_endpoint(h), mc);
    SmcMember* m = member.get();
    std::size_t idx = static_cast<std::size_t>(i);
    // Two durable recorder subscriptions per member: a broad one and a
    // sharded one, so the two matching engines get non-trivial filter sets.
    (void)m->subscribe(Filter::for_type("torture"), recorder(m, idx, 0));
    (void)m->subscribe(
        Filter::for_type("torture").where("shard", Op::kEq, Value(i % 3)),
        recorder(m, idx, 1));
    m->set_on_joined([&oracle, &ex, m, idx] {
      oracle.on_member_joined(idx, m->stats().joins, ex.now());
    });
    m->start();
    members.push_back(std::move(member));
  }

  auto log_step = [&](const TortureStep& s) {
    result.log.push_back(fmt_time(ex.now()) + " " + s.to_string());
  };

  auto apply = [&](const TortureStep& s) {
    log_step(s);
    std::size_t m = s.member >= 0 ? static_cast<std::size_t>(s.member) : 0;
    switch (s.op) {
      case TortureOp::kCrash: hosts[m]->set_up(false); break;
      case TortureOp::kRecover: hosts[m]->set_up(true); break;
      case TortureOp::kLeave: members[m]->leave(); break;
      case TortureOp::kRestart: members[m]->start(); break;
      case TortureOp::kLinkFault: {
        LinkModel lm = base;
        if (s.b != 0) {
          lm.bursty = true;
          lm.p_good_to_bad = 0.2;
          lm.p_bad_to_good = 0.2;
          lm.loss_bad = 0.9;
          lm.loss = 0.05;
        } else {
          lm.loss = static_cast<double>(s.a) / 100.0;
        }
        net.update_link(core, *hosts[m], lm);
        break;
      }
      case TortureOp::kMtuSqueeze: {
        LinkModel lm = base;
        lm.mtu = static_cast<std::size_t>(s.a);
        net.update_link(core, *hosts[m], lm);
        break;
      }
      case TortureOp::kLinkHeal:
        net.update_link(core, *hosts[m], base);
        break;
      case TortureOp::kStall: {
        // One-way blackhole core→member: the member's heartbeats still
        // reach the core (no purge), but nothing the proxy sends arrives —
        // the classic slow consumer. kLinkHeal restores both directions.
        LinkModel lm = base;
        lm.loss = 1.0;
        net.update_link_oneway(core, *hosts[m], lm);
        break;
      }
      case TortureOp::kPartition:
        net.set_partition_group(core, 1);
        for (int i = 0; i < n; ++i) {
          net.set_partition_group(*hosts[static_cast<std::size_t>(i)],
                                  (s.b >> i) & 1 ? 2 : 1);
        }
        break;
      case TortureOp::kHealPartition: net.clear_partitions(); break;
      case TortureOp::kBurst:
        for (int k = 0; k < s.a; ++k) {
          Event e("torture");
          e.set("n", pub_n[m]++);
          e.set("shard", (s.member + k) % 3);
          e.set("v", (s.a * 7 + k * 13 + s.member * 3) % 100);
          (void)members[m]->publish(std::move(e));
        }
        break;
      case TortureOp::kSubAdd: {
        std::uint64_t tag = next_eph_tag++;
        std::uint64_t id = members[m]->subscribe(
            Filter::for_type("torture").where("v", Op::kGe, Value(s.a)),
            recorder(members[m].get(), m, tag));
        ephemeral[m].push_back(id);
        break;
      }
      case TortureOp::kSubDrop:
        if (!ephemeral[m].empty()) {
          members[m]->unsubscribe(ephemeral[m].front());
          ephemeral[m].erase(ephemeral[m].begin());
        }
        break;
      case TortureOp::kCoreCrash:
      case TortureOp::kCoreRevive:
      case TortureOp::kSplitBrain:
      case TortureOp::kChainCrash:
      case TortureOp::kChainRevive:
        // HA ops exist only in failover schedules (tests/torture/
        // failover.cpp); this single-core harness never generates them.
        break;
    }
  };

  // Let the cell form before the schedule starts.
  ex.run_for(seconds(2));
  TimePoint start = ex.now();
  for (const TortureStep& step : schedule.steps) {
    ex.schedule_at(start + step.at, [&apply, &step] { apply(step); });
  }
  ex.run_for(config.horizon);

  // Heal everything, then drain to quiescence.
  result.log.push_back(fmt_time(ex.now()) + " === heal all ===");
  net.clear_partitions();
  for (int i = 0; i < n; ++i) {
    auto m = static_cast<std::size_t>(i);
    hosts[m]->set_up(true);
    net.update_link(core, *hosts[m], base);
    members[m]->start();  // no-op unless a leave was left un-restarted
  }

  auto quiet = [&] {
    if (cell->bus().members().size() != static_cast<std::size_t>(n)) {
      return false;
    }
    if (cell->bus().max_proxy_backlog() != 0) return false;
    for (auto& m : members) {
      if (!m->joined() || m->client()->backlog() != 0) return false;
      // Publishes deferred under flow-control pressure must have flushed.
      if (m->offline_pending() != 0) return false;
    }
    return true;
  };

  TimePoint deadline = ex.now() + config.quiesce_cap;
  int stable = 0;
  bool barrage_done = false;
  while (ex.now() < deadline && (stable < 4 || !barrage_done)) {
    ex.run_for(milliseconds(500));
    stable = quiet() ? stable + 1 : 0;
    if (stable >= 4 && !barrage_done) {
      // One clean-network round: every member publishes once more, so
      // invariant (c) is exercised against the final membership too.
      barrage_done = true;
      stable = 0;
      result.log.push_back(fmt_time(ex.now()) + " === final barrage ===");
      for (int i = 0; i < n; ++i) {
        auto m = static_cast<std::size_t>(i);
        Event e("torture");
        e.set("n", pub_n[m]++);
        e.set("shard", i % 3);
        e.set("v", 50 + i);
        (void)members[m]->publish(std::move(e));
      }
    }
  }

  result.publishes = oracle.publishes();
  result.deliveries = oracle.deliveries();
  result.sheds = oracle.sheds();
  if (stable < 4 || !barrage_done) {
    std::ostringstream os;
    os << "network healed but the system did not quiesce within "
       << to_seconds(config.quiesce_cap) << "s: members="
       << cell->bus().members().size() << "/" << n
       << " proxy_backlog=" << cell->bus().max_proxy_backlog();
    for (int i = 0; i < n; ++i) {
      auto& m = members[static_cast<std::size_t>(i)];
      os << " m" << i << (m->joined() ? ":joined" : ":not-joined");
    }
    result.invariant = "failed-to-quiesce";
    result.violation = os.str();
    return result;
  }

  oracle.finish();
  if (oracle.violation()) {
    result.invariant = oracle.violation()->invariant;
    result.violation = oracle.violation()->detail;
    return result;
  }
  result.ok = true;
  return result;
}

std::string format_trace(const Schedule& schedule,
                         const TortureConfig& config,
                         const TortureResult& result) {
  std::ostringstream os;
  os << "torture trace\n"
     << "seed: " << schedule.seed << "\n"
     << "engine: " << amuse::to_string(config.engine) << "\n"
     << "members: " << config.members << "\n"
     << "horizon: " << to_seconds(config.horizon) << "s\n"
     << "publishes: " << result.publishes
     << " deliveries: " << result.deliveries << "\n"
     << "violation: [" << result.invariant << "] " << result.violation
     << "\n\nschedule (" << schedule.steps.size() << " steps):\n";
  for (const TortureStep& s : schedule.steps) {
    os << "  " << s.to_string() << "\n";
  }
  os << "\nrun log:\n";
  for (const std::string& line : result.log) os << "  " << line << "\n";
  return os.str();
}

}  // namespace amuse::torture
