// HA failover torture: seeded fault schedules against an active core plus
// `standbys` warm standbys (DESIGN.md §13), checked by the DeliveryOracle's
// failover rules F1–F5 on top of the base guarantees (a)–(e).
//
// Every schedule contains one PRIMARY core incident — a core crash (host
// down, paired with a later revival of the fenced old incarnation) or a
// split brain (core ⟷ standbys links cut while everyone stays up, paired
// with a heal) — embedded in the usual storm of member crashes, leaves,
// link faults, MTU squeezes, slow-consumer stalls and publish bursts. The
// standbys' leases expire, the quorum arbitration of §13.5 elects exactly
// one winner to promote at epoch + 1, the losers re-home and re-mirror
// (standby chains), members re-home on the fenced beacon, and the promoted
// core re-delivers its replicated spool; the oracle then demands
// exactly-once and per-sender FIFO across the promotion, and that every
// missing delivery is covered by a shed record, a staleness-budget record,
// or the repl-lag window of the crash itself.
//
// Two compositions are layered on top:
//   * overload — every schedule straddles the core incident with a
//     slow-consumer stall and publish bursts, so §9 budget shedding and
//     §13 spool eviction run WHILE the promotion does (the ledgers must
//     compose: each missing delivery has exactly one excuse);
//   * standby chains — a seed-chosen fraction of crash schedules fires a
//     SECOND incident (kChainCrash) at the promoted winner after the cell
//     has re-armed, forcing a survivor to promote again at epoch + 2. A
//     run whose schedule carries a chain crash must see two promotions.
//
// Subscription churn is deliberately excluded: the failover rules reason
// about a member's durable subscriptions surviving the re-home, and the
// base torture already covers churn against a single core.
//
// Sensitivity-proof switches (ctest: the revert tests in torture_test.cpp):
//   * `fence_epochs` false — members never re-home after a promotion, so
//     the barrage can't satisfy the oracle (or quiescence);
//   * `require_quorum` false — the first standby to notice the lapse
//     promotes unilaterally, two standbys both promote at the same epoch,
//     and the harness reports "double-promotion".
#pragma once

#include "torture/driver.hpp"

namespace amuse::torture {

struct FailoverConfig {
  BusEngine engine = BusEngine::kCBased;
  int members = 4;
  int standbys = 2;                // warm standbys racing for promotion
  int incidents = 8;               // member-level incidents (core incidents
                                   // and the overload cluster ride on top)
  Duration horizon = seconds(20);  // fault-phase length
  Duration quiesce_cap = seconds(120);
  /// Members' beacon epoch fencing (DiscoveryAgentConfig::fence_epochs).
  /// Reverted (false) only by the oracle-sensitivity proof.
  bool fence_epochs = true;
  /// Standby quorum arbitration (StandbyCoreConfig::require_quorum).
  /// Reverted (false) only by the double-promotion sensitivity proof.
  bool require_quorum = true;
};

/// Expands a seed into a failover schedule: one core incident (crash or
/// split brain, seed-chosen) mid-horizon, an overload cluster straddling
/// it, an optional chain crash of the promoted winner, plus `incidents`
/// member faults.
[[nodiscard]] Schedule generate_failover_schedule(std::uint64_t seed,
                                                  const FailoverConfig& config);

/// Replays a schedule against a fresh active+standby SMC pair and runs the
/// oracle with the HA rules enabled. Deterministic in (schedule, config).
[[nodiscard]] TortureResult run_failover_torture(const Schedule& schedule,
                                                 const FailoverConfig& config);

}  // namespace amuse::torture
