// HA failover torture: seeded fault schedules against an active core + warm
// standby pair (DESIGN.md §13), checked by the DeliveryOracle's failover
// rules F1–F5 on top of the base guarantees (a)–(e).
//
// Every schedule contains EXACTLY ONE core incident — a core crash (host
// down, paired with a later revival of the fenced old incarnation) or a
// split brain (core ⟷ standby link cut while both stay up, paired with a
// heal) — embedded in the usual storm of member crashes, leaves, link
// faults, MTU squeezes, slow-consumer stalls and publish bursts. The lease
// expires, the standby promotes at epoch + 1, members re-home on the fenced
// beacon, and the promoted core re-delivers its replicated spool; the
// oracle then demands exactly-once and per-sender FIFO across the
// promotion, and that every missing delivery is covered by a shed record, a
// staleness-budget record, or the repl-lag window of the crash itself.
//
// Subscription churn is deliberately excluded: the failover rules reason
// about a member's durable subscriptions surviving the re-home, and the
// base torture already covers churn against a single core.
//
// `fence_epochs` is the sensitivity-proof switch (ctest: the revert test in
// torture_test.cpp): with the members' epoch fencing reverted, a promotion
// strands every joined member on the dead incarnation and the harness must
// fail — members never re-home, so the barrage can't satisfy the oracle
// (or quiescence) on the promoted bus.
#pragma once

#include "torture/driver.hpp"

namespace amuse::torture {

struct FailoverConfig {
  BusEngine engine = BusEngine::kCBased;
  int members = 4;
  int incidents = 8;               // member-level incidents (one core
                                   // incident is always added on top)
  Duration horizon = seconds(20);  // fault-phase length
  Duration quiesce_cap = seconds(120);
  /// Members' beacon epoch fencing (DiscoveryAgentConfig::fence_epochs).
  /// Reverted (false) only by the oracle-sensitivity proof.
  bool fence_epochs = true;
};

/// Expands a seed into a failover schedule: one core incident (crash or
/// split brain, seed-chosen) mid-horizon plus `incidents` member faults.
[[nodiscard]] Schedule generate_failover_schedule(std::uint64_t seed,
                                                  const FailoverConfig& config);

/// Replays a schedule against a fresh active+standby SMC pair and runs the
/// oracle with the HA rules enabled. Deterministic in (schedule, config).
[[nodiscard]] TortureResult run_failover_torture(const Schedule& schedule,
                                                 const FailoverConfig& config);

}  // namespace amuse::torture
