// Multi-cell torture: seeded fault schedules against a federated overlay
// of complete SMCs — line, tree and cycle topologies wired by dual-homed
// FederationGateway members — with a cross-cell delivery oracle.
//
// Invariants checked (the single-cell DeliveryOracle guarantees, extended
// end-to-end across cells):
//
//   (a) no duplicate cross-cell delivery — one (sender, n) publish reaches
//       each member at most once, ever, no matter how many gateway paths
//       exist (origin-stamp dedup, DESIGN.md §11);
//   (b) per-sender FIFO end-to-end — at every receiver incarnation, the
//       per-sender publish counter is strictly increasing. Multipath
//       first-arrival-wins preserves this as long as no path silently
//       drops, so the cycle schedule keeps publish bursts clear of gateway
//       blackout windows and the budgets stay untightened (path loss only
//       delays a reliable channel, it never reorders it);
//   (c) no silent loss between live members — checked via the post-heal
//       barrage: once every member and gateway has re-joined and the
//       overlay has quiesced, every member's publishes must reach every
//       member in every cell;
//   (d) origin-stamp discipline — every event delivered across a cell
//       boundary carries the immutable (origin cell, seq) stamp of its true
//       origin, and an event stamped with the receiver's own cell can never
//       be delivered there (a federated loop would have to come home
//       unstamped or restamped — there is no hop attribute to forge).
//
// Everything derives from the uint64 seed (invariant I7): no wall clock,
// no unseeded randomness, so a failing (topology, engine, schedule) tuple
// replays bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bus/event_bus.hpp"
#include "sim/time.hpp"

namespace amuse::torture {

enum class McTopology : std::uint8_t {
  kLine,   // 4 cells: 0–1–2–3
  kTree,   // 4 cells: 0–1, 0–2, 1–3
  kCycle,  // 3 cells: 0–1–2–0 (every pair has two disjoint paths)
};

[[nodiscard]] const char* to_string(McTopology t);

enum class McOp : std::uint8_t {
  kBurst,          // ordinary member publishes a events
  kGwCrash,        // gateway host down (both dual-homed members die)
  kGwRecover,      // gateway host back up (members re-join, table resyncs)
  kMemberCrash,    // ordinary member's host down
  kMemberRecover,  // ordinary member's host back up
  kLinkFault,      // loss (a %) on the gateway host ⟷ both cores
  kLinkHeal,       // gateway links back to the base model
};

[[nodiscard]] const char* to_string(McOp op);

struct McStep {
  Duration at{};
  McOp op{};
  int target = 0;  // member index for bursts/member ops, link index otherwise
  int a = 0;       // burst size or loss %

  [[nodiscard]] std::string to_string() const;
};

struct McSchedule {
  std::uint64_t seed = 0;
  std::vector<McStep> steps;
};

struct McConfig {
  BusEngine engine = BusEngine::kCBased;
  McTopology topology = McTopology::kLine;
  int members_per_cell = 2;
  int incidents = 10;
  Duration horizon = seconds(24);
  Duration quiesce_cap = seconds(120);
};

struct McResult {
  bool ok = false;
  std::string invariant;
  std::string violation;
  std::vector<std::string> log;
  std::uint64_t publishes = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t cross_cell = 0;       // deliveries whose sender cell differs
  std::uint64_t fed_dups_dropped = 0;  // summed over every cell bus
  std::uint64_t fed_suppressed = 0;    // events no downstream interest wanted
};

/// Expands a seed into a timed schedule. Every fault is paired with a heal
/// inside the horizon; on the cycle topology, bursts are kept clear of
/// gateway blackout windows (see invariant (b) above).
[[nodiscard]] McSchedule generate_multicell_schedule(std::uint64_t seed,
                                                     const McConfig& config);

/// Replays a schedule against a fresh federated overlay and runs the
/// cross-cell oracle. Deterministic in (schedule, config).
[[nodiscard]] McResult run_multicell(const McSchedule& schedule,
                                     const McConfig& config);

[[nodiscard]] std::string format_multicell_trace(const McSchedule& schedule,
                                                 const McConfig& config,
                                                 const McResult& result);

}  // namespace amuse::torture
