#include "torture/failover.hpp"

#include <algorithm>
#include <iomanip>
#include <memory>
#include <set>
#include <sstream>

#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"
#include "smc/cell.hpp"
#include "smc/member.hpp"
#include "smc/standby.hpp"
#include "torture/oracle.hpp"

namespace amuse::torture {
namespace {

const Bytes kPsk = to_bytes("failover-torture-key");
constexpr const char* kCellName = "failover-cell";

std::string fmt_time(TimePoint t) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3)
     << to_seconds(t.time_since_epoch()) << "s";
  return os.str();
}

}  // namespace

Schedule generate_failover_schedule(std::uint64_t seed,
                                    const FailoverConfig& config) {
  Schedule sched;
  sched.seed = seed;
  Rng rng(seed, /*stream=*/0xFA11);

  const double horizon_s = to_seconds(config.horizon);
  auto at = [&](double lo_s, double hi_s) {
    return from_seconds(rng.uniform(lo_s, hi_s));
  };
  auto push = [&](Duration t, TortureOp op, int member, int a = 0,
                  int b = 0) {
    sched.steps.push_back(TortureStep{t, op, member, a, b});
  };

  // One primary core incident per schedule, mid-horizon. The gap to the
  // heal comfortably exceeds the standbys' 1.5 s lease, so the promotion is
  // guaranteed to be underway when the old incarnation comes back (and must
  // then be fenced out). Crash schedules with at least two standbys roll a
  // CHAIN crash: the winner promotes, re-arms the survivors (§13.5 standby
  // chains), and then its own host dies too — a survivor must promote a
  // second time. Chain schedules start earlier so the second incident and
  // its revival still land inside the horizon.
  // Consume the rolls unconditionally: the schedule for a given seed must
  // not shift shape just because the standby count changed.
  bool chain_roll = rng.chance(0.35);
  bool split_roll = rng.chance(0.4);
  bool chain = config.standbys >= 2 && chain_roll;
  bool split = !chain && split_roll;
  Duration t0 = chain ? at(horizon_s * 0.25, horizon_s * 0.32)
                      : at(horizon_s * 0.35, horizon_s * 0.5);
  if (split) {
    push(t0, TortureOp::kSplitBrain, -1);
    push(t0 + at(3.0, 5.0), TortureOp::kHealPartition, -1);
  } else {
    push(t0, TortureOp::kCoreCrash, -1);
    push(t0 + at(4.0, 7.0), TortureOp::kCoreRevive, -1);
    if (chain) {
      Duration t1 = t0 + at(6.0, 7.5);
      push(t1, TortureOp::kChainCrash, -1);
      push(t1 + at(3.0, 4.5), TortureOp::kChainRevive, -1);
    }
  }

  // Overload cluster straddling the core incident: a stalled consumer's
  // proxy queue grows against the §9 delivery budgets while bursts keep
  // the §13 spool evicting, so shedding and staleness accounting run
  // DURING the promotion. The oracle's justification tally proves the two
  // ledgers compose — every missing delivery has exactly one excuse.
  int victim = static_cast<int>(
      rng.bounded(static_cast<std::uint32_t>(config.members)));
  push(t0 - from_seconds(1.5), TortureOp::kStall, victim);
  push(t0 - at(0.3, 1.2), TortureOp::kBurst, (victim + 1) % config.members,
       10 + static_cast<int>(rng.bounded(11)));
  push(t0 + at(0.2, 1.0), TortureOp::kBurst, (victim + 2) % config.members,
       10 + static_cast<int>(rng.bounded(11)));
  push(t0 + at(2.0, 4.0), TortureOp::kLinkHeal, victim);

  // Member-level incidents: the base torture mix minus subscription churn
  // (the failover rules reason about durable subscriptions surviving the
  // re-home) and minus group partitions (the split-brain op owns the
  // partition surface here).
  for (int i = 0; i < config.incidents; ++i) {
    int member = static_cast<int>(
        rng.bounded(static_cast<std::uint32_t>(config.members)));
    double roll = rng.uniform();
    if (roll < 0.40) {
      push(at(0.2, horizon_s - 1.0), TortureOp::kBurst, member,
           1 + static_cast<int>(rng.bounded(8)));
    } else if (roll < 0.55) {
      Duration t = at(0.2, horizon_s - 8.0);
      push(t, TortureOp::kCrash, member);
      push(t + at(0.5, 7.0), TortureOp::kRecover, member);
    } else if (roll < 0.65) {
      Duration t = at(0.2, horizon_s - 6.0);
      push(t, TortureOp::kLeave, member);
      push(t + at(0.5, 4.0), TortureOp::kRestart, member);
    } else if (roll < 0.80) {
      Duration t = at(0.2, horizon_s - 7.0);
      bool bursty = rng.chance(0.4);
      push(t, TortureOp::kLinkFault, member,
           20 + static_cast<int>(rng.bounded(51)), bursty ? 1 : 0);
      push(t + at(1.0, 6.0), TortureOp::kLinkHeal, member);
    } else if (roll < 0.88) {
      Duration t = at(0.2, horizon_s - 7.0);
      push(t, TortureOp::kMtuSqueeze, member,
           150 + static_cast<int>(rng.bounded(551)));
      push(t + at(1.0, 6.0), TortureOp::kLinkHeal, member);
    } else {
      Duration t = at(0.2, horizon_s - 7.0);
      push(t, TortureOp::kStall, member);
      push(t + at(0.1, 1.0), TortureOp::kBurst,
           (member + 1) % config.members,
           8 + static_cast<int>(rng.bounded(13)));
      push(t + at(1.5, 6.0), TortureOp::kLinkHeal, member);
    }
  }
  std::stable_sort(sched.steps.begin(), sched.steps.end(),
                   [](const TortureStep& x, const TortureStep& y) {
                     return x.at < y.at;
                   });
  return sched;
}

TortureResult run_failover_torture(const Schedule& schedule,
                                   const FailoverConfig& config) {
  TortureResult result;

  SimExecutor ex;
  SimNetwork net(ex, schedule.seed ^ 0x9e3779b97f4a7c15ull);
  LinkModel base = profiles::usb_ip_link();
  base.latency_spread = milliseconds(30);
  net.set_default_link(base);
  SimHost& core = net.add_host("core", profiles::ideal_host());
  std::vector<SimHost*> standby_hosts;
  for (int i = 0; i < config.standbys; ++i) {
    standby_hosts.push_back(
        &net.add_host("standby" + std::to_string(i), profiles::ideal_host()));
  }

  // Same tight budgets as the base torture (DESIGN.md §9), plus a small HA
  // spool so the bounded-staleness budget actually evicts under bursts —
  // every eviction must surface as a staleness record, never silent loss.
  SmcCellConfig cc;
  cc.name = kCellName;
  cc.pre_shared_key = kPsk;
  cc.bus.engine = config.engine;
  cc.bus.ha = true;
  cc.bus.epoch = 1;
  cc.bus.ha_spool_events = 64;
  cc.bus.ha_spool_bytes = 16 * 1024;
  cc.bus.channel.max_fragment_payload = 512;
  cc.bus.channel.rto_initial = milliseconds(120);
  cc.bus.channel.rto_min = milliseconds(80);
  cc.bus.channel.max_queue_bytes = 2048;
  cc.bus.channel.flow_high_water = 1536;
  cc.bus.channel.flow_low_water = 512;
  cc.bus.bus_queue_bytes = 6144;
  cc.discovery.beacon_interval = milliseconds(300);
  cc.discovery.heartbeat_interval = milliseconds(300);
  cc.discovery.suspect_after = milliseconds(1200);
  cc.discovery.purge_after = seconds(3);
  cc.discovery.sweep_interval = milliseconds(150);
  auto cell = std::make_unique<SelfManagedCell>(
      ex, net.create_endpoint(core), net.create_endpoint(core), cc);

  std::vector<std::unique_ptr<StandbyCore>> standbys;
  for (int i = 0; i < config.standbys; ++i) {
    StandbyCoreConfig sc;
    sc.agent.cell_name = kCellName;
    sc.agent.pre_shared_key = kPsk;
    sc.channel.rto_initial = milliseconds(120);
    sc.channel.rto_min = milliseconds(80);
    sc.require_quorum = config.require_quorum;
    sc.cell = cc;  // the promoted core inherits the same budgets
    SimHost& h = *standby_hosts[static_cast<std::size_t>(i)];
    standbys.push_back(std::make_unique<StandbyCore>(
        ex, net.create_endpoint(h), net.create_endpoint(h),
        net.create_endpoint(h), sc));
  }

  DeliveryOracle oracle;
  oracle.enable_ha_rules();
  oracle.attach(cell->bus(), [&ex] { return ex.now(); });
  // Promotion bookkeeping: the arbitration must elect at most one winner
  // per epoch (two promotions at the same epoch split the cell — the exact
  // failure quorum exists to prevent, and what the require_quorum revert
  // proof reproduces). Membership truth follows the HIGHEST promoted
  // epoch; a chain crash makes attach_promoted fire twice.
  std::set<std::uint64_t> promo_epochs;
  std::string double_promo;
  std::uint64_t top_epoch = 1;  // the original cell's epoch
  for (std::size_t i = 0; i < standbys.size(); ++i) {
    standbys[i]->set_on_promoted([&, i](SelfManagedCell& promoted) {
      std::uint64_t epoch = promoted.bus().epoch();
      result.log.push_back(fmt_time(ex.now()) + " === standby " +
                           std::to_string(i) + " promoted to epoch " +
                           std::to_string(epoch) + " ===");
      if (!promo_epochs.insert(epoch).second) {
        double_promo = "standby " + std::to_string(i) +
                       " promoted at epoch " + std::to_string(epoch) +
                       " which another standby had already claimed";
      }
      if (epoch > top_epoch) {
        top_epoch = epoch;
        oracle.attach_promoted(promoted.bus());
      }
    });
  }
  cell->start();
  for (auto& s : standbys) s->start();

  const int n = config.members;
  std::vector<SimHost*> hosts;
  std::vector<std::unique_ptr<SmcMember>> members;
  std::vector<std::int64_t> pub_n(static_cast<std::size_t>(n), 0);

  auto recorder = [&oracle](SmcMember* m, std::size_t idx,
                            std::uint64_t tag) {
    return [&oracle, m, idx, tag](const Event& e) {
      oracle.on_member_delivery(idx, m->id(), m->stats().joins, tag, e);
    };
  };

  for (int i = 0; i < n; ++i) {
    SimHost& h = net.add_host("m" + std::to_string(i),
                              profiles::ideal_host());
    hosts.push_back(&h);
    SmcMemberConfig mc;
    mc.agent.cell_name = kCellName;
    mc.agent.pre_shared_key = kPsk;
    mc.agent.device_type = "failover.m" + std::to_string(i);
    // Re-homing is fence-driven (the promoted epoch on the rival beacon),
    // so the loss timer is parked far out of the way: with the fence
    // reverted, nothing else rescues a stranded member within the run.
    // Recovery from a crash that straddled the purge goes through the
    // eviction notice (the core rejects the stale heartbeat), not the
    // loss timer, so this stays safe for member faults.
    mc.agent.cell_lost_after = seconds(60);
    mc.agent.fence_epochs = config.fence_epochs;
    mc.channel.max_fragment_payload = 512;
    mc.channel.rto_initial = milliseconds(120);
    mc.channel.rto_min = milliseconds(80);
    auto member = std::make_unique<SmcMember>(ex, net.create_endpoint(h), mc);
    SmcMember* m = member.get();
    std::size_t idx = static_cast<std::size_t>(i);
    (void)m->subscribe(Filter::for_type("torture"), recorder(m, idx, 0));
    (void)m->subscribe(
        Filter::for_type("torture").where("shard", Op::kEq, Value(i % 3)),
        recorder(m, idx, 1));
    m->set_on_joined([&oracle, &ex, m, idx] {
      oracle.on_member_joined(idx, m->stats().joins, ex.now());
    });
    m->start();
    members.push_back(std::move(member));
  }

  auto log_step = [&](const TortureStep& s) {
    result.log.push_back(fmt_time(ex.now()) + " " + s.to_string());
  };

  LinkModel cut = base;
  cut.loss = 1.0;
  // Member link faults hit the path to EVERY core-capable host: a member
  // must not get a pristine link to the promoted core just because its
  // fault was struck against the old one.
  auto set_member_link = [&](std::size_t m, const LinkModel& lm) {
    net.update_link(core, *hosts[m], lm);
    for (SimHost* sh : standby_hosts) net.update_link(*sh, *hosts[m], lm);
  };

  // The currently active promoted standby (highest epoch), or -1 before
  // any promotion. kChainCrash targets whoever this is at fire time.
  auto active_standby = [&]() -> int {
    int best = -1;
    std::uint64_t best_epoch = 0;
    for (std::size_t i = 0; i < standbys.size(); ++i) {
      if (!standbys[i]->promoted()) continue;
      std::uint64_t e = standbys[i]->cell()->bus().epoch();
      if (e > best_epoch) {
        best_epoch = e;
        best = static_cast<int>(i);
      }
    }
    return best;
  };
  int chain_victim = -1;

  auto apply = [&](const TortureStep& s) {
    log_step(s);
    std::size_t m = s.member >= 0 ? static_cast<std::size_t>(s.member) : 0;
    switch (s.op) {
      case TortureOp::kCrash: hosts[m]->set_up(false); break;
      case TortureOp::kRecover: hosts[m]->set_up(true); break;
      case TortureOp::kLeave: members[m]->leave(); break;
      case TortureOp::kRestart: members[m]->start(); break;
      case TortureOp::kLinkFault: {
        LinkModel lm = base;
        if (s.b != 0) {
          lm.bursty = true;
          lm.p_good_to_bad = 0.2;
          lm.p_bad_to_good = 0.2;
          lm.loss_bad = 0.9;
          lm.loss = 0.05;
        } else {
          lm.loss = static_cast<double>(s.a) / 100.0;
        }
        set_member_link(m, lm);
        break;
      }
      case TortureOp::kMtuSqueeze: {
        LinkModel lm = base;
        lm.mtu = static_cast<std::size_t>(s.a);
        set_member_link(m, lm);
        break;
      }
      case TortureOp::kLinkHeal:
        set_member_link(m, base);
        break;
      case TortureOp::kStall: {
        LinkModel lm = base;
        lm.loss = 1.0;
        net.update_link_oneway(core, *hosts[m], lm);
        for (SimHost* sh : standby_hosts) {
          net.update_link_oneway(*sh, *hosts[m], lm);
        }
        break;
      }
      case TortureOp::kBurst:
        for (int k = 0; k < s.a; ++k) {
          Event e("torture");
          e.set("n", pub_n[m]++);
          e.set("shard", (s.member + k) % 3);
          e.set("v", (s.a * 7 + k * 13 + s.member * 3) % 100);
          (void)members[m]->publish(std::move(e));
        }
        break;
      case TortureOp::kCoreCrash:
        core.set_up(false);
        oracle.core_incident(ex.now());
        oracle.repl_severed();
        break;
      case TortureOp::kCoreRevive:
        // The old incarnation comes back at the dead epoch: it must fence
        // itself out (step down on the rival's beacon), not resume.
        core.set_up(true);
        break;
      case TortureOp::kSplitBrain:
        // Everyone stays up; only the replication/lease paths to the
        // standbys are cut (standby ⟷ standby stays intact — arbitration
        // must still elect exactly one winner). The winner promotes while
        // the old core still serves whoever has not fenced over yet —
        // everything it routes from here must end up delivered or
        // staleness-accounted (step-down drains the spool), so no oracle
        // window is needed. Admissions the old core accepts from here on
        // can no longer reach the replicas, though — repl_severed()
        // exempts exactly those members from F3.
        for (SimHost* sh : standby_hosts) net.update_link(core, *sh, cut);
        oracle.repl_severed();
        break;
      case TortureOp::kHealPartition:
        for (SimHost* sh : standby_hosts) net.update_link(core, *sh, base);
        break;
      case TortureOp::kChainCrash: {
        // Kill whoever is the active core NOW — the promoted winner's
        // host. A surviving standby, re-armed through the chain, must
        // promote again. (Before any promotion this is a no-op; the
        // no-chain-promotion check below then flags the schedule.)
        int victim = active_standby();
        if (victim >= 0) {
          chain_victim = victim;
          standby_hosts[static_cast<std::size_t>(victim)]->set_up(false);
          oracle.core_incident(ex.now());
          oracle.repl_severed();
        }
        break;
      }
      case TortureOp::kChainRevive:
        if (chain_victim >= 0) {
          standby_hosts[static_cast<std::size_t>(chain_victim)]->set_up(true);
        }
        break;
      case TortureOp::kPartition:
      case TortureOp::kSubAdd:
      case TortureOp::kSubDrop:
        break;  // never generated for failover schedules
    }
  };

  // Let the cell form (members join, standby syncs its first snapshot).
  ex.run_for(seconds(2));
  TimePoint start = ex.now();
  for (const TortureStep& step : schedule.steps) {
    ex.schedule_at(start + step.at, [&apply, &step] { apply(step); });
  }
  ex.run_for(config.horizon);

  // Heal everything, then drain to quiescence against the CURRENT core.
  result.log.push_back(fmt_time(ex.now()) + " === heal all ===");
  core.set_up(true);
  for (SimHost* sh : standby_hosts) {
    sh->set_up(true);
    net.update_link(core, *sh, base);
  }
  for (int i = 0; i < n; ++i) {
    auto m = static_cast<std::size_t>(i);
    hosts[m]->set_up(true);
    set_member_link(m, base);
    members[m]->start();  // no-op unless a leave was left un-restarted
  }

  auto current_bus = [&]() -> EventBus& {
    int active = active_standby();
    return active >= 0
               ? standbys[static_cast<std::size_t>(active)]->cell()->bus()
               : cell->bus();
  };

  // Standby-role members ride in member_info_ too (the loser of an
  // arbitration re-homes to the winner as a standby member), so liveness
  // counts only the serving members. Same for the backlog: a standby
  // proxy's channel carries the 400 ms repl lease stream, which never
  // ceases by design — an in-flight lease renewal is steady-state
  // traffic, not un-drained backlog.
  auto serving_members = [](EventBus& bus) {
    std::size_t count = 0;
    for (const MemberInfo& mi : bus.members()) {
      if (mi.role != kStandbyRole) ++count;
    }
    return count;
  };
  auto serving_backlog = [](EventBus& bus) {
    std::size_t worst = 0;
    for (const MemberInfo& mi : bus.members()) {
      if (mi.role == kStandbyRole) continue;
      Proxy* p = bus.proxy_for(mi.id);
      if (p != nullptr) worst = std::max(worst, p->pending());
    }
    return worst;
  };

  auto quiet = [&] {
    EventBus& bus = current_bus();
    if (serving_members(bus) != static_cast<std::size_t>(n)) return false;
    if (serving_backlog(bus) != 0) return false;
    for (auto& m : members) {
      if (!m->joined() || m->client()->backlog() != 0) return false;
      if (m->offline_pending() != 0) return false;
      // Joined is not enough after a failover: the promoted bus restores
      // the full membership from the replica, so its member count looks
      // right even while a member is still homed to the dead incarnation.
      // Liveness means every member agrees on WHICH core it talks to.
      if (m->agent().bus_id() != bus.bus_id()) return false;
    }
    // Standby chains: every surviving (never-promoted) standby must have
    // re-armed against the current core — homed to it AND mirroring at
    // its epoch. This makes re-arm a per-run liveness obligation, not
    // something only the chain schedules exercise.
    for (auto& s : standbys) {
      if (s->promoted()) continue;  // the active core, or a fenced winner
      if (!s->synced()) return false;
      if (s->agent().bus_id() != bus.bus_id()) return false;
      if (s->mirror().epoch() != bus.epoch()) return false;
    }
    return true;
  };

  TimePoint deadline = ex.now() + config.quiesce_cap;
  int stable = 0;
  bool barrage_done = false;
  while (ex.now() < deadline && (stable < 4 || !barrage_done)) {
    ex.run_for(milliseconds(500));
    stable = quiet() ? stable + 1 : 0;
    if (stable >= 4 && !barrage_done) {
      barrage_done = true;
      stable = 0;
      result.log.push_back(fmt_time(ex.now()) + " === final barrage ===");
      for (int i = 0; i < n; ++i) {
        auto m = static_cast<std::size_t>(i);
        Event e("torture");
        e.set("n", pub_n[m]++);
        e.set("shard", i % 3);
        e.set("v", 50 + i);
        (void)members[m]->publish(std::move(e));
      }
    }
  }

  result.publishes = oracle.publishes();
  result.deliveries = oracle.deliveries();
  result.sheds = oracle.sheds();
  std::uint64_t total_promotions = 0;
  std::uint64_t total_applied = 0;
  std::uint64_t total_resyncs = 0;
  for (auto& s : standbys) {
    total_promotions += s->stats().promotions;
    total_applied += s->stats().updates_applied;
    total_resyncs += s->stats().resyncs;
  }
  if (total_promotions == 0) {
    // Every schedule kills the repl stream for longer than the lease: a
    // run without a promotion means the failover machinery never engaged.
    result.invariant = "no-promotion";
    result.violation =
        "the core incident never expired any standby's lease (applied=" +
        std::to_string(total_applied) + " resyncs=" +
        std::to_string(total_resyncs) + ")";
    return result;
  }
  if (!double_promo.empty()) {
    result.invariant = "double-promotion";
    result.violation = double_promo;
    return result;
  }
  bool has_chain = std::any_of(
      schedule.steps.begin(), schedule.steps.end(), [](const TortureStep& s) {
        return s.op == TortureOp::kChainCrash;
      });
  if (has_chain && total_promotions < 2) {
    // The chain crash killed the promoted winner; a survivor had a synced
    // mirror and an expired lease, so a second promotion is mandatory.
    result.invariant = "no-chain-promotion";
    result.violation =
        "the chain crash did not produce a second promotion (promotions=" +
        std::to_string(total_promotions) + ")";
    return result;
  }
  if (stable < 4 || !barrage_done) {
    std::ostringstream os;
    os << "network healed but the system did not quiesce within "
       << to_seconds(config.quiesce_cap)
       << "s on the promoted core: members=" << serving_members(current_bus())
       << "/" << n << " proxy_backlog=" << serving_backlog(current_bus());
    for (int i = 0; i < n; ++i) {
      auto& m = members[static_cast<std::size_t>(i)];
      if (!m->joined()) {
        os << " m" << i << ":not-joined";
      } else if (m->agent().bus_id() != current_bus().bus_id()) {
        os << " m" << i << ":stranded-on-old-core";
      } else {
        os << " m" << i << ":joined";
      }
    }
    for (const MemberInfo& mi : current_bus().members()) {
      Proxy* p = current_bus().proxy_for(mi.id);
      if (p != nullptr && p->pending() != 0) {
        os << " backlog[" << mi.device_type << "/" << mi.role << "@"
           << mi.id.to_string() << "]=" << p->pending();
      }
    }
    for (std::size_t i = 0; i < standbys.size(); ++i) {
      auto& s = standbys[i];
      if (s->promoted()) {
        os << " s" << i << ":promoted";
      } else if (!s->synced()) {
        os << " s" << i << ":unsynced";
      } else if (s->agent().bus_id() != current_bus().bus_id()) {
        os << " s" << i << ":stranded-on-old-core";
      } else if (s->mirror().epoch() != current_bus().epoch()) {
        os << " s" << i << ":stale-epoch";
      } else {
        os << " s" << i << ":armed";
      }
    }
    result.invariant = "failed-to-quiesce";
    result.violation = os.str();
    return result;
  }

  oracle.finish();
  if (oracle.violation()) {
    result.invariant = oracle.violation()->invariant;
    result.violation = oracle.violation()->detail;
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace amuse::torture
