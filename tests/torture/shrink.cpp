#include "torture/shrink.hpp"

namespace amuse::torture {

ShrinkResult shrink(const Schedule& failing, const TortureConfig& config,
                    int max_runs) {
  ShrinkResult out;
  out.schedule = failing;
  out.result = run_torture(failing, config);
  ++out.runs;
  if (out.result.ok) return out;  // caller lied; nothing to shrink

  auto fails = [&](const Schedule& candidate,
                   TortureResult* result) -> bool {
    if (out.runs >= max_runs) return false;
    ++out.runs;
    TortureResult r = run_torture(candidate, config);
    if (!r.ok && result != nullptr) *result = std::move(r);
    return !r.ok;
  };
  auto prefix = [&](std::size_t k) {
    Schedule s;
    s.seed = failing.seed;
    s.steps.assign(failing.steps.begin(),
                   failing.steps.begin() + static_cast<std::ptrdiff_t>(k));
    return s;
  };

  // Pass 1: shortest failing prefix. Invariant: prefix(hi) fails.
  std::size_t lo = 0;
  std::size_t hi = failing.steps.size();
  while (lo + 1 < hi && out.runs < max_runs) {
    std::size_t mid = lo + (hi - lo) / 2;
    TortureResult r;
    if (fails(prefix(mid), &r)) {
      hi = mid;
      out.result = std::move(r);
    } else {
      lo = mid;
    }
  }
  out.schedule = prefix(hi);

  // Pass 2: drop individual steps, latest first (later steps are the most
  // likely to be incidental once the prefix is minimal).
  for (std::size_t i = out.schedule.steps.size(); i-- > 0;) {
    if (out.runs >= max_runs) break;
    Schedule candidate = out.schedule;
    candidate.steps.erase(candidate.steps.begin() +
                          static_cast<std::ptrdiff_t>(i));
    TortureResult r;
    if (fails(candidate, &r)) {
      out.schedule = std::move(candidate);
      out.result = std::move(r);
    }
  }
  return out;
}

}  // namespace amuse::torture
