// Bounded persistent delivery (DESIGN.md §9): byte-accurate retention
// budgets, data/control priority classes, deterministic shedding with
// accounting, and watermark-driven publisher backpressure — at the channel
// layer and end to end through a full SMC under a slow consumer.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"
#include "smc/cell.hpp"
#include "smc/member.hpp"
#include "wire/delivery_budget.hpp"
#include "wire/reliable_channel.hpp"

namespace amuse {
namespace {

// ---------------------------------------------------------------------------
// DeliveryBudget: the refcounted bus-wide ledger.

SharedPayload shared_payload(std::size_t head_bytes,
                             std::shared_ptr<const Bytes> tail) {
  return SharedPayload{Bytes(head_bytes, 0x41), std::move(tail)};
}

TEST(DeliveryBudget, ChargesSharedTailOncePerRetainer) {
  DeliveryBudget budget(100);
  auto tail = std::make_shared<const Bytes>(Bytes(50, 0x42));
  SharedPayload p1 = shared_payload(10, tail);
  SharedPayload p2 = shared_payload(5, tail);

  budget.charge(p1);
  EXPECT_EQ(budget.used(), 60u);  // head 10 + tail 50
  budget.charge(p2);
  EXPECT_EQ(budget.used(), 65u);  // second head only; tail already counted

  budget.release(p1);
  EXPECT_EQ(budget.used(), 55u);  // tail stays while p2 retains it
  budget.release(p2);
  EXPECT_EQ(budget.used(), 0u);

  // A fresh retainer after the last release charges the tail again.
  budget.charge(p1);
  EXPECT_EQ(budget.used(), 60u);
  budget.release(p1);
}

TEST(DeliveryBudget, OverLimitIsStrict) {
  DeliveryBudget budget(20);
  SharedPayload p = shared_payload(20, nullptr);
  budget.charge(p);
  EXPECT_EQ(budget.used(), 20u);
  EXPECT_FALSE(budget.over_limit());  // exactly at the limit is legal
  SharedPayload extra = shared_payload(1, nullptr);
  budget.charge(extra);
  EXPECT_TRUE(budget.over_limit());
  budget.release(extra);
  budget.release(p);
}

// ---------------------------------------------------------------------------
// Channel-level budgets, classes, shedding and watermarks. Same two-channel
// lossy-pipe harness as reliable_channel_test.

class ChannelPair {
 public:
  explicit ChannelPair(ReliableChannelConfig config = {}) {
    a = std::make_unique<ReliableChannel>(
        ex, id_a, id_b, 111, config,
        [this](const Packet& p) { pipe(p, drop_from_a, b); },
        [this](BytesView msg) { at_a.emplace_back(to_string(msg)); },
        [this] { ++failures; });
    b = std::make_unique<ReliableChannel>(
        ex, id_b, id_a, 222, config,
        [this](const Packet& p) { pipe(p, drop_from_b, a); },
        [this](BytesView msg) { at_b.emplace_back(to_string(msg)); },
        [this] { ++failures; });
  }

  void pipe(const Packet& p, std::function<bool(const Packet&)>& drop,
            std::unique_ptr<ReliableChannel>& target) {
    if (drop && drop(p)) return;
    Bytes wire = p.encode();
    ex.schedule_after(milliseconds(1), [&target, wire] {
      if (target) {
        std::optional<Packet> q = Packet::decode(wire);
        if (q) target->on_packet(*q);
      }
    });
  }

  SimExecutor ex;
  ServiceId id_a = ServiceId::from_addr_port(0x0A000001, 1000);
  ServiceId id_b = ServiceId::from_addr_port(0x0A000002, 2000);
  std::function<bool(const Packet&)> drop_from_a;
  std::function<bool(const Packet&)> drop_from_b;
  std::unique_ptr<ReliableChannel> a;
  std::unique_ptr<ReliableChannel> b;
  std::vector<std::string> at_a;
  std::vector<std::string> at_b;
  int failures = 0;
};

std::string msg30(int i) {
  std::string s = "m" + std::to_string(i);
  s.resize(30, '.');
  return s;
}

TEST(ChannelBudget, ByteBudgetShedsOldestQueuedDataFirst) {
  ReliableChannelConfig cfg;
  cfg.max_queue_bytes = 300;     // 10 × 30-byte messages
  cfg.max_batch_messages = 1;    // no Nagle: the window fills to 8 at once
  ChannelPair p(cfg);
  // Blackhole a→b: the window fills and stays in flight, the queue grows.
  p.drop_from_a = [](const Packet&) { return true; };

  std::vector<std::string> shed;
  p.a->set_on_shed([&shed](BytesView m) { shed.emplace_back(to_string(m)); });

  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(p.a->send(to_bytes(msg30(i)))) << "shedding should make room";
    EXPECT_LE(p.a->retained_bytes(), 300u);
  }
  // Window holds m0..m7 (in flight, never shed); the queue keeps only the
  // newest two 30-byte messages; everything between was shed oldest-first.
  ASSERT_EQ(shed.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(shed[static_cast<size_t>(i)],
                                         msg30(8 + i));
  EXPECT_EQ(p.a->stats().events_shed, 10u);
  EXPECT_EQ(p.a->stats().bytes_shed, 300u);

  // Heal: survivors arrive exactly once, in order, with no phantom gaps.
  p.drop_from_a = nullptr;
  p.ex.run();
  std::vector<std::string> expect;
  for (int i = 0; i < 8; ++i) expect.push_back(msg30(i));
  expect.push_back(msg30(18));
  expect.push_back(msg30(19));
  EXPECT_EQ(p.at_b, expect);
  EXPECT_EQ(p.a->retained_bytes(), 0u);
}

TEST(ChannelBudget, ControlBypassesBudgetAndJumpsQueuedData) {
  ReliableChannelConfig cfg;
  cfg.max_queue_bytes = 300;
  cfg.max_batch_messages = 1;  // no Nagle: the window fills to 8 at once
  ChannelPair p(cfg);
  p.drop_from_a = [](const Packet&) { return true; };

  for (int i = 0; i < 10; ++i) {  // fill to the budget: window 8 + queue 2
    ASSERT_TRUE(p.a->send(to_bytes(msg30(i))));
  }
  ASSERT_EQ(p.a->retained_bytes(), 300u);

  // Control is accepted above the budget, sheds nothing, and is queued
  // ahead of the waiting data (but behind the in-flight window).
  std::uint64_t sheds_before = p.a->stats().events_shed;
  EXPECT_TRUE(p.a->send(to_bytes("CTRL"), MsgClass::kControl));
  EXPECT_EQ(p.a->stats().events_shed, sheds_before);
  EXPECT_EQ(p.a->stats().control_sent, 1u);
  EXPECT_GT(p.a->retained_bytes(), 300u);

  p.drop_from_a = nullptr;
  p.ex.run();
  ASSERT_EQ(p.at_b.size(), 11u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(p.at_b[static_cast<size_t>(i)],
                                        msg30(i));
  EXPECT_EQ(p.at_b[8], "CTRL");  // overtook m8, m9
  EXPECT_EQ(p.at_b[9], msg30(8));
  EXPECT_EQ(p.at_b[10], msg30(9));
}

TEST(ChannelBudget, CountCapRejectionIsAccountedNotSilent) {
  ReliableChannelConfig cfg;
  cfg.max_queue = 2;  // legacy count cap, no byte budget
  ChannelPair p(cfg);
  p.drop_from_a = [](const Packet&) { return true; };

  std::vector<std::string> shed;
  p.a->set_on_shed([&shed](BytesView m) { shed.emplace_back(to_string(m)); });

  for (int i = 0; i < 10; ++i) (void)p.a->send(to_bytes("d" + std::to_string(i)));
  // Window 8 + queue 2 accepted; the last 0 queued slots reject the rest.
  EXPECT_FALSE(p.a->send(to_bytes("rejected")));
  ASSERT_FALSE(shed.empty());
  EXPECT_EQ(shed.back(), "rejected");
  EXPECT_EQ(p.a->stats().events_shed, shed.size());
  EXPECT_GT(p.a->stats().bytes_shed, 0u);

  // Control is exempt from the count cap too.
  EXPECT_TRUE(p.a->send(to_bytes("CTRL"), MsgClass::kControl));
}

TEST(ChannelBudget, ShedRemovesWholeFragmentTrain) {
  ReliableChannelConfig cfg;
  cfg.max_fragment_payload = 20;
  cfg.window = 1;
  ChannelPair p(cfg);
  p.drop_from_a = [](const Packet&) { return true; };

  std::vector<std::string> shed;
  p.a->set_on_shed([&shed](BytesView m) { shed.emplace_back(to_string(m)); });

  ASSERT_TRUE(p.a->send(to_bytes("head")));  // occupies the window
  std::string big(50, 'B');                  // queues as a 3-fragment train
  ASSERT_TRUE(p.a->send(to_bytes(big)));
  ASSERT_TRUE(p.a->send(to_bytes("tail")));

  std::size_t before = p.a->retained_bytes();
  ASSERT_TRUE(p.a->shed_oldest_data());
  // The whole train went as one message: the tap sees the reassembled
  // payload, the stats count one message of 50 bytes.
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], big);
  EXPECT_EQ(p.a->stats().events_shed, 1u);
  EXPECT_EQ(p.a->stats().bytes_shed, 50u);
  EXPECT_EQ(p.a->retained_bytes(), before - 50);

  p.drop_from_a = nullptr;
  p.ex.run();
  EXPECT_EQ(p.at_b, (std::vector<std::string>{"head", "tail"}));
}

TEST(ChannelBudget, WatermarksRaiseAndReleasePressure) {
  ReliableChannelConfig cfg;
  cfg.flow_high_water = 200;
  cfg.flow_low_water = 100;
  ChannelPair p(cfg);
  p.drop_from_a = [](const Packet&) { return true; };

  std::vector<bool> signals;
  p.a->set_on_pressure([&signals](bool up) { signals.push_back(up); });

  for (int i = 0; i < 6; ++i) ASSERT_TRUE(p.a->send(to_bytes(msg30(i))));
  EXPECT_FALSE(p.a->under_pressure());  // 180 < 200
  ASSERT_TRUE(p.a->send(to_bytes(msg30(6))));
  EXPECT_TRUE(p.a->under_pressure());  // 210 ≥ 200
  ASSERT_EQ(signals, (std::vector<bool>{true}));
  EXPECT_EQ(p.a->stats().pressure_raised, 1u);

  p.drop_from_a = nullptr;
  p.ex.run();  // drains to zero ≤ low water
  EXPECT_FALSE(p.a->under_pressure());
  EXPECT_EQ(signals, (std::vector<bool>{true, false}));
  EXPECT_EQ(p.a->stats().peak_retained_bytes, 210u);
}

TEST(ChannelBudget, SharedLedgerCountsFanOutTailOnce) {
  auto ledger = std::make_shared<DeliveryBudget>(10000);
  ReliableChannelConfig cfg;
  cfg.shared_budget = ledger;
  ChannelPair p1(cfg);
  ChannelPair p2(cfg);
  p1.drop_from_a = [](const Packet&) { return true; };
  p2.drop_from_a = [](const Packet&) { return true; };

  // The fan-out shape: one encode-once body queued to two members.
  auto body = std::make_shared<const Bytes>(Bytes(500, 0x45));
  ASSERT_TRUE(p1.a->send(SharedPayload{to_bytes("h1"), body}));
  ASSERT_TRUE(p2.a->send(SharedPayload{to_bytes("h2"), body}));
  EXPECT_EQ(ledger->used(), 2u + 2u + 500u);  // both heads, body once

  p1.drop_from_a = nullptr;
  p1.ex.run();  // p1 delivers and releases its retainer; body stays charged
  EXPECT_EQ(ledger->used(), 2u + 500u);
  p2.drop_from_a = nullptr;
  p2.ex.run();
  EXPECT_EQ(ledger->used(), 0u);
}

// ---------------------------------------------------------------------------
// End to end: a full SMC with one slow consumer. Budgets engage on the
// stalled member's proxy, sheds are surfaced through BusObserver::on_shed,
// the bus raises kFlowControl, the publisher defers, and the healthy member
// still receives every event in FIFO order.

const Bytes kPsk = to_bytes("overload-key");
constexpr const char* kCell = "overload-cell";

struct OverloadFixture : ::testing::Test {
  OverloadFixture() : net(ex, 20260806) {
    base = profiles::usb_ip_link();
    net.set_default_link(base);
    core = &net.add_host("core", profiles::ideal_host());

    SmcCellConfig cc;
    cc.name = kCell;
    cc.pre_shared_key = kPsk;
    cc.bus.quench = quench;
    cc.bus.channel.max_queue_bytes = 2048;
    cc.bus.channel.flow_high_water = 1536;
    cc.bus.channel.flow_low_water = 512;
    cc.bus.bus_queue_bytes = 8192;
    cc.discovery.beacon_interval = milliseconds(300);
    cc.discovery.heartbeat_interval = milliseconds(300);
    cc.discovery.suspect_after = seconds(2);
    cc.discovery.purge_after = seconds(30);  // nobody purges in these tests
    cc.discovery.sweep_interval = milliseconds(150);
    cell = std::make_unique<SelfManagedCell>(
        ex, net.create_endpoint(*core), net.create_endpoint(*core), cc);
    cell->start();
  }

  std::unique_ptr<SmcMember> make_member(int i) {
    SimHost& h = net.add_host("m" + std::to_string(i),
                              profiles::ideal_host());
    hosts.push_back(&h);
    SmcMemberConfig mc;
    mc.agent.cell_name = kCell;
    mc.agent.pre_shared_key = kPsk;
    mc.agent.device_type = "overload.m" + std::to_string(i);
    // The stall outlives the beacon gap; the member must ride it out
    // rather than declaring the cell lost mid-test.
    mc.agent.cell_lost_after = seconds(30);
    mc.quench = quench;
    return std::make_unique<SmcMember>(ex, net.create_endpoint(h), mc);
  }

  void stall(int i) {
    LinkModel lm = base;
    lm.loss = 1.0;
    net.update_link_oneway(*core, *hosts[static_cast<std::size_t>(i)], lm);
  }
  void heal(int i) {
    net.update_link(*core, *hosts[static_cast<std::size_t>(i)], base);
  }

  bool quench = false;
  SimExecutor ex;
  SimNetwork net;
  LinkModel base;
  SimHost* core = nullptr;
  std::vector<SimHost*> hosts;
  std::unique_ptr<SelfManagedCell> cell;
};

TEST_F(OverloadFixture, SlowConsumerShedsAccountablyWhileHealthyKeepsAll) {
  auto m0 = make_member(0);  // the slow consumer (subscribes "load")
  auto m1 = make_member(1);  // the publisher
  auto m2 = make_member(2);  // the healthy observer (subscribes "steady")

  std::vector<std::int64_t> at_m2;
  (void)m0->subscribe(Filter::for_type("load"), [](const Event&) {});
  (void)m2->subscribe(Filter::for_type("steady"), [&at_m2](const Event& e) {
    at_m2.push_back(e.get_int("n"));
  });

  std::vector<std::pair<std::uint64_t, std::int64_t>> shed_records;
  BusObserver obs;
  obs.on_shed = [&shed_records](ServiceId member, const Event& e) {
    shed_records.emplace_back(member.raw(), e.get_int("n"));
  };
  cell->bus().set_observer(std::move(obs));

  m0->start();
  m1->start();
  m2->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(m0->joined() && m1->joined() && m2->joined());

  stall(0);
  // One unpaced 30-event burst outruns the flow-control round trip: the
  // stalled member's 2 KB budget must overflow and shed. Only m0 matches
  // "load", so every shed is attributable to it.
  for (int k = 0; k < 30; ++k) {
    Event e("load");
    e.set("n", k);
    e.set("pad", std::string(100, 'x'));  // ~160 B encoded: 30 exceed 2 KB
    (void)m1->publish(std::move(e));
  }
  ex.run_for(milliseconds(500));

  // Paced follow-up traffic for the healthy member. By now the bus has
  // announced pressure, so the member-side library defers these instead of
  // piling more onto the overloaded cell; they flush after the release.
  bool saw_pressure = false;
  bool saw_publish_soft_fail = false;
  int steady = 0;
  for (int batch = 0; batch < 10; ++batch) {
    for (int k = 0; k < 3; ++k) {
      Event e("steady");
      e.set("n", steady++);
      (void)m1->publish(std::move(e));
    }
    if (m1->client() != nullptr && m1->client()->pressured()) {
      saw_pressure = true;
      // Under pressure a direct client publish soft-fails (still sent).
      Event probe("probe.noop");
      probe.set("n", -1);
      saw_publish_soft_fail |= !m1->client()->publish(std::move(probe));
    }
    ex.run_for(milliseconds(200));
  }

  // Sheds happened, every one attributed to the stalled member, and the
  // publisher felt backpressure end to end.
  EXPECT_GT(cell->bus().stats().events_shed, 0u);
  ASSERT_FALSE(shed_records.empty());
  for (const auto& [member_raw, n] : shed_records) {
    EXPECT_EQ(member_raw, m0->id().raw());
    EXPECT_GE(n, 0);
  }
  EXPECT_TRUE(saw_pressure);
  EXPECT_TRUE(saw_publish_soft_fail);
  EXPECT_GE(cell->bus().stats().flow_control_signals, 1u);
  EXPECT_GT(m1->stats().pressure_deferrals, 0u);

  heal(0);
  ex.run_for(seconds(20));

  // Pressure released, deferred publishes flushed.
  EXPECT_FALSE(cell->bus().flow_pressure());
  EXPECT_EQ(m1->offline_pending(), 0u);

  // The healthy member received every paced event exactly once, in FIFO
  // order — overload at m0 never cost m2 anything.
  ASSERT_EQ(at_m2.size(), static_cast<std::size_t>(steady));
  for (int i = 0; i < steady; ++i) {
    EXPECT_EQ(at_m2[static_cast<std::size_t>(i)], i);
  }
  // And the bus-wide ledger is drained.
  ASSERT_NE(cell->bus().shared_budget(), nullptr);
  EXPECT_EQ(cell->bus().shared_budget()->used(), 0u);
}

TEST_F(OverloadFixture, FullDataQueueCannotStarveQuenchUpdates) {
  // Re-build the cell with quenching on (the fixture default is off).
  quench = true;
  SmcCellConfig cc;
  cc.name = kCell;
  cc.pre_shared_key = kPsk;
  cc.bus.quench = true;
  cc.bus.channel.max_queue_bytes = 2048;
  cc.bus.channel.flow_high_water = 1536;
  cc.bus.channel.flow_low_water = 512;
  cc.discovery.beacon_interval = milliseconds(300);
  cc.discovery.heartbeat_interval = milliseconds(300);
  cc.discovery.suspect_after = seconds(2);
  cc.discovery.purge_after = seconds(30);
  cc.discovery.sweep_interval = milliseconds(150);
  cell = std::make_unique<SelfManagedCell>(
      ex, net.create_endpoint(*core), net.create_endpoint(*core), cc);
  cell->start();

  auto m0 = make_member(0);  // slow consumer whose quench table must update
  auto m1 = make_member(1);  // publisher
  auto m2 = make_member(2);  // subscription churner

  (void)m0->subscribe(Filter::for_type("load"), [](const Event&) {});
  m0->start();
  m1->start();
  m2->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(m0->joined() && m1->joined() && m2->joined());

  stall(0);
  // Saturate m0's proxy queue in one unpaced burst so its 2 KB data budget
  // sheds (paced traffic would be held back by flow control instead)...
  for (int k = 0; k < 30; ++k) {
    Event e("load");
    e.set("n", k);
    e.set("pad", std::string(100, 'x'));  // ~160 B encoded: 30 exceed 2 KB
    (void)m1->publish(std::move(e));
  }
  ex.run_for(seconds(1));
  EXPECT_GT(cell->bus().stats().events_shed, 0u);

  // ...then change the global filter set mid-overload. The quench push to
  // the stalled member rides the control class: it must survive the full
  // data queue and land after the heal.
  (void)m2->subscribe(Filter::for_type("alarm.extra"), [](const Event&) {});
  ex.run_for(seconds(1));

  heal(0);
  ex.run_for(seconds(20));

  ASSERT_TRUE(m0->joined());
  ASSERT_NE(m0->client(), nullptr);
  const QuenchTable& table = m0->client()->quench_table();
  ASSERT_TRUE(table.have_table());
  Event probe("alarm.extra");
  EXPECT_TRUE(table.wanted(probe))
      << "the mid-overload quench update never reached the stalled member";
}

}  // namespace
}  // namespace amuse
