// Policy service tests: the obligation engine (ECA execution, runtime
// enable/disable, cascade protection), authorisation decisions, and
// type-driven policy deployment.
#include <gtest/gtest.h>

#include "bus/event_bus.hpp"
#include "discovery/discovery_service.hpp"
#include "net/loopback.hpp"
#include "policy/authorisation.hpp"
#include "policy/deployment.hpp"
#include "policy/obligation_engine.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

struct PolicyFixture : ::testing::Test {
  PolicyFixture() : net(ex), bus(ex, net.create_endpoint()) {}

  SimExecutor ex;
  LoopbackNetwork net;
  EventBus bus;
  PolicyStore store;
};

TEST_F(PolicyFixture, ObligationFiresOnMatchingEvent) {
  store.load_text(R"(
    policy high_hr on vitals.heartrate
      when hr > 120
      do publish alarm.cardiac { level = "high", hr = hr };
  )");
  ObligationEngine engine(bus, store);
  engine.start();

  std::vector<Event> alarms;
  bus.subscribe_local(Filter::for_type("alarm.cardiac"),
                      [&](const Event& e) { alarms.push_back(e); });

  bus.publish_local(Event("vitals.heartrate", {{"hr", 150}}));
  bus.publish_local(Event("vitals.heartrate", {{"hr", 80}}));
  ex.run();

  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].get_string("level"), "high");
  EXPECT_EQ(alarms[0].get_int("hr"), 150);
  EXPECT_EQ(alarms[0].get_string("x-policy"), "high_hr");
  EXPECT_EQ(engine.stats().triggers, 2u);
  EXPECT_EQ(engine.stats().conditions_false, 1u);
  EXPECT_EQ(engine.stats().publishes, 1u);
}

TEST_F(PolicyFixture, AbsentSourceAttributesAreOmitted) {
  store.load_text(R"(
    policy p on t do publish out { copy = missing, present = hr };
  )");
  ObligationEngine engine(bus, store);
  engine.start();
  std::vector<Event> out;
  bus.subscribe_local(Filter::for_type("out"),
                      [&](const Event& e) { out.push_back(e); });
  bus.publish_local(Event("t", {{"hr", 70}}));
  ex.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].has("copy"));
  EXPECT_EQ(out[0].get_int("present"), 70);
}

TEST_F(PolicyFixture, DisableStopsFiringEnableResumes) {
  store.load_text(R"(policy p on t do publish out { };)");
  ObligationEngine engine(bus, store);
  engine.start();
  int fired = 0;
  bus.subscribe_local(Filter::for_type("out"),
                      [&](const Event&) { ++fired; });

  bus.publish_local(Event("t"));
  ex.run();
  EXPECT_EQ(fired, 1);

  store.disable("p");
  bus.publish_local(Event("t"));
  ex.run();
  EXPECT_EQ(fired, 1);

  store.enable("p");
  bus.publish_local(Event("t"));
  ex.run();
  EXPECT_EQ(fired, 2);
}

TEST_F(PolicyFixture, InitiallyDisabledPoliciesDoNotFire) {
  store.load_text(R"(policy p disabled on t do publish out { };)");
  ObligationEngine engine(bus, store);
  engine.start();
  int fired = 0;
  bus.subscribe_local(Filter::for_type("out"),
                      [&](const Event&) { ++fired; });
  bus.publish_local(Event("t"));
  ex.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(store.is_enabled("p"));
}

TEST_F(PolicyFixture, PoliciesGovernPolicies) {
  // An escalation policy disables itself and enables a stronger one —
  // "policies also govern … the policy service itself".
  store.load_text(R"(
    policy escalate on alarm.cardiac
      do enable emergency disable escalate;
    policy emergency disabled on vitals.heartrate
      do publish actuator.defib.fire { joules = 150 };
  )");
  ObligationEngine engine(bus, store);
  engine.start();
  int fires = 0;
  bus.subscribe_local(Filter::for_type("actuator.defib.fire"),
                      [&](const Event&) { ++fires; });

  bus.publish_local(Event("vitals.heartrate", {{"hr", 200}}));
  ex.run();
  EXPECT_EQ(fires, 0);  // emergency not yet enabled

  bus.publish_local(Event("alarm.cardiac"));
  ex.run();
  EXPECT_TRUE(store.is_enabled("emergency"));
  EXPECT_FALSE(store.is_enabled("escalate"));

  bus.publish_local(Event("vitals.heartrate", {{"hr", 200}}));
  ex.run();
  EXPECT_EQ(fires, 1);
}

TEST_F(PolicyFixture, CascadeDepthIsBounded) {
  // Two policies that trigger each other forever without the chain guard.
  store.load_text(R"(
    policy ping on a do publish b { };
    policy pong on b do publish a { };
  )");
  ObligationEngineConfig cfg;
  cfg.max_chain_depth = 6;
  ObligationEngine engine(bus, store, cfg);
  engine.start();
  bus.publish_local(Event("a"));
  ex.run();
  EXPECT_GE(engine.stats().chain_suppressed, 1u);
  // 6 chained publishes at most (plus the seed event).
  EXPECT_LE(bus.stats().published, 8u);
}

TEST_F(PolicyFixture, RemovedPolicyStopsFiring) {
  store.load_text(R"(policy p on t do publish out { };)");
  ObligationEngine engine(bus, store);
  engine.start();
  int fired = 0;
  bus.subscribe_local(Filter::for_type("out"),
                      [&](const Event&) { ++fired; });
  bus.publish_local(Event("t"));
  ex.run();
  ASSERT_EQ(fired, 1);
  EXPECT_TRUE(store.remove("p"));
  EXPECT_FALSE(store.remove("p"));
  bus.publish_local(Event("t"));
  ex.run();
  EXPECT_EQ(fired, 1);
}

// ---- Authorisation.

TEST(Authorisation, FirstMatchWinsThenDefault) {
  PolicyStore store;
  store.load_text(R"(
    auth deny role "sensor" subscribe "control.*";
    auth permit role "sensor" subscribe "*";
    auth deny role * publish "actuator.*";
    auth default permit;
  )");
  AuthorisationService auth(store);
  EXPECT_FALSE(auth.check("sensor", AuthOp::kSubscribe, "control.threshold"));
  EXPECT_TRUE(auth.check("sensor", AuthOp::kSubscribe, "vitals.heartrate"));
  EXPECT_FALSE(auth.check("nurse", AuthOp::kPublish, "actuator.defib.fire"));
  EXPECT_TRUE(auth.check("nurse", AuthOp::kPublish, "notes.shift"));
  EXPECT_EQ(auth.stats().checks, 4u);
  EXPECT_EQ(auth.stats().denials, 2u);
}

TEST(Authorisation, DefaultDenyLockdown) {
  PolicyStore store;
  store.load_text(R"(
    auth permit role "nurse" subscribe "vitals.*";
    auth default deny;
  )");
  AuthorisationService auth(store);
  EXPECT_TRUE(auth.check("nurse", AuthOp::kSubscribe, "vitals.spo2"));
  EXPECT_FALSE(auth.check("nurse", AuthOp::kPublish, "vitals.spo2"));
  EXPECT_FALSE(auth.check("guest", AuthOp::kSubscribe, "vitals.spo2"));
}

TEST(Authorisation, BusAdapterUsesMemberRole) {
  PolicyStore store;
  store.load_text(R"(auth deny role "guest" publish "*";)");
  AuthorisationService auth(store);
  EventBus::Authoriser fn = auth.authoriser();
  MemberInfo guest{ServiceId(1), "console", "guest"};
  MemberInfo nurse{ServiceId(2), "console", "nurse"};
  EXPECT_FALSE(fn(guest, AuthAction::kPublish, "x"));
  EXPECT_TRUE(fn(nurse, AuthAction::kPublish, "x"));
  EXPECT_TRUE(fn(guest, AuthAction::kSubscribe, "x"));
}

// ---- Deployment.

TEST_F(PolicyFixture, DeploymentEnablesPoliciesAndSendsControlEvents) {
  store.load_text(R"(
    policy hr_watch disabled on vitals.heartrate do log "watching";
  )");
  ObligationEngine engine(bus, store);
  engine.start();
  PolicyDeployer deployer(bus, store);
  DeploymentRule rule;
  rule.device_type_prefix = "sensor.heartrate";
  rule.enable_policies = {"hr_watch"};
  Event threshold("control.threshold");
  threshold.set("value", 140.0);
  rule.control_events = {threshold};
  deployer.add_rule(rule);
  deployer.start();

  std::vector<Event> control;
  bus.subscribe_local(Filter::for_type("control.threshold"),
                      [&](const Event& e) { control.push_back(e); });

  // Simulate the discovery service's New Member event.
  Event nm(smc_events::kNewMember);
  nm.set("member", std::int64_t{0xAA});
  nm.set("device_type", "sensor.heartrate");
  nm.set("role", "sensor");
  bus.publish_local(nm);
  ex.run();

  EXPECT_TRUE(store.is_enabled("hr_watch"));
  ASSERT_EQ(control.size(), 1u);
  EXPECT_EQ(control[0].get_int("member"), 0xAA);
  EXPECT_DOUBLE_EQ(control[0].get_double("value"), 140.0);
  EXPECT_EQ(deployer.stats().rules_applied, 1u);

  // A different device type matches no rule.
  Event other(smc_events::kNewMember);
  other.set("member", std::int64_t{0xBB});
  other.set("device_type", "sensor.temperature");
  bus.publish_local(other);
  ex.run();
  EXPECT_EQ(deployer.stats().rules_applied, 1u);
  EXPECT_EQ(deployer.stats().admissions_seen, 2u);
}

}  // namespace
}  // namespace amuse
