// Bus message codec tests.
#include "bus/messages.hpp"

#include <gtest/gtest.h>

#include "pubsub/codec.hpp"

namespace amuse {
namespace {

TEST(BusMessage, PublishRoundTrip) {
  Event e("vitals.heartrate", {{"hr", 72}});
  e.set_publisher(ServiceId(5));
  e.set_publisher_seq(9);
  BusMessage m = BusMessage::publish(e);
  BusMessage back = BusMessage::decode(m.encode());
  EXPECT_EQ(back.type, BusMsgType::kPublish);
  ASSERT_TRUE(back.event.has_value());
  EXPECT_EQ(*back.event, e);
  EXPECT_EQ(back.event->publisher_seq(), 9u);
}

TEST(BusMessage, DeliverCarriesMatchedIds) {
  Event e("t");
  BusMessage m = BusMessage::deliver(e, {3, 1, 7});
  BusMessage back = BusMessage::decode(m.encode());
  EXPECT_EQ(back.type, BusMsgType::kEvent);
  EXPECT_EQ(back.matched, (std::vector<std::uint64_t>{3, 1, 7}));
  EXPECT_EQ(*back.event, e);
}

TEST(BusMessage, EventHeaderPlusBodyMatchesDeliverEncoding) {
  // The encode-once fan-out sends header ++ shared-body; the result must be
  // indistinguishable on the wire from the whole-message encoding.
  Event e("vitals.heartrate", {{"hr", 72}, {"unit", "bpm"}});
  e.set_publisher(ServiceId(5));
  e.set_publisher_seq(9);
  std::vector<std::uint64_t> matched{4, 2};

  Bytes framed = BusMessage::encode_event_header(matched);
  Bytes body = encode_event(e);
  framed.insert(framed.end(), body.begin(), body.end());

  EXPECT_EQ(framed, BusMessage::deliver(e, matched).encode());
  BusMessage back = BusMessage::decode(framed);
  EXPECT_EQ(back.type, BusMsgType::kEvent);
  EXPECT_EQ(back.matched, matched);
  EXPECT_EQ(*back.event, e);
}

TEST(BusMessage, EncodePublishMatchesMessageEncoding) {
  Event e("control.threshold", {{"value", 3.5}});
  e.set_publisher(ServiceId(8));
  EXPECT_EQ(BusMessage::encode_publish(e), BusMessage::publish(e).encode());
}

TEST(BusMessage, SubscribeRoundTrip) {
  Filter f;
  f.where("type", Op::kPrefix, "alarm.").where("level", Op::kEq, "high");
  BusMessage m = BusMessage::subscribe(42, f);
  BusMessage back = BusMessage::decode(m.encode());
  EXPECT_EQ(back.type, BusMsgType::kSubscribe);
  EXPECT_EQ(back.sub_id, 42u);
  ASSERT_TRUE(back.filter.has_value());
  EXPECT_EQ(*back.filter, f);
}

TEST(BusMessage, UnsubscribeRoundTrip) {
  BusMessage back = BusMessage::decode(BusMessage::unsubscribe(17).encode());
  EXPECT_EQ(back.type, BusMsgType::kUnsubscribe);
  EXPECT_EQ(back.sub_id, 17u);
}

TEST(BusMessage, QuenchUpdateRoundTrip) {
  std::vector<Filter> filters;
  filters.push_back(Filter::for_type("a"));
  Filter f2;
  f2.where("x", Op::kGt, 5);
  filters.push_back(f2);
  filters.push_back(Filter());
  BusMessage back =
      BusMessage::decode(BusMessage::quench_update(filters).encode());
  EXPECT_EQ(back.type, BusMsgType::kQuenchUpdate);
  ASSERT_EQ(back.quench_filters.size(), 3u);
  EXPECT_EQ(back.quench_filters[0], filters[0]);
  EXPECT_EQ(back.quench_filters[1], filters[1]);
  EXPECT_TRUE(back.quench_filters[2].empty());
}

TEST(BusMessage, FlowControlRoundTrip) {
  for (bool pressure : {true, false}) {
    BusMessage back =
        BusMessage::decode(BusMessage::flow_control(pressure).encode());
    EXPECT_EQ(back.type, BusMsgType::kFlowControl);
    EXPECT_EQ(back.pressure, pressure);
  }
}

TEST(BusMessage, FlowControlRejectsTruncation) {
  Bytes wire = BusMessage::flow_control(true).encode();
  for (std::size_t len = 1; len < wire.size(); ++len) {
    EXPECT_THROW((void)BusMessage::decode(BytesView(wire.data(), len)),
                 DecodeError)
        << len;
  }
}

TEST(BusMessage, DecodeRejectsBadType) {
  Bytes junk{0};
  EXPECT_THROW((void)BusMessage::decode(junk), DecodeError);
  junk[0] = 200;
  EXPECT_THROW((void)BusMessage::decode(junk), DecodeError);
}

TEST(BusMessage, DecodeRejectsTruncation) {
  Bytes wire = BusMessage::subscribe(1, Filter::for_type("a")).encode();
  for (std::size_t len = 1; len < wire.size(); ++len) {
    EXPECT_THROW((void)BusMessage::decode(BytesView(wire.data(), len)),
                 DecodeError)
        << len;
  }
}

TEST(BusMessage, DecodeRejectsTrailingBytes) {
  Bytes wire = BusMessage::unsubscribe(1).encode();
  wire.push_back(0);
  EXPECT_THROW((void)BusMessage::decode(wire), DecodeError);
}

}  // namespace
}  // namespace amuse
