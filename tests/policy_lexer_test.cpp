// Lexer tests for the Ponder-lite policy language.
#include "policy/lexer.hpp"

#include <gtest/gtest.h>

namespace amuse {
namespace {

TEST(Lexer, EmptySourceYieldsEnd) {
  auto toks = lex_policy("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::kEnd);
}

TEST(Lexer, IdentifiersIncludeDotsAndTrailingStar) {
  auto toks = lex_policy("vitals.heartrate vitals.* under_score x1");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].text, "vitals.heartrate");
  EXPECT_EQ(toks[1].text, "vitals.*");
  EXPECT_EQ(toks[2].text, "under_score");
  EXPECT_EQ(toks[3].text, "x1");
}

TEST(Lexer, NumbersIntAndFloat) {
  auto toks = lex_policy("42 -7 3.5 -0.25");
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[0].int_val, 42);
  EXPECT_EQ(toks[1].kind, TokKind::kInt);
  EXPECT_EQ(toks[1].int_val, -7);
  EXPECT_EQ(toks[2].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[2].float_val, 3.5);
  EXPECT_EQ(toks[3].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[3].float_val, -0.25);
}

TEST(Lexer, StringsWithEscapes) {
  auto toks = lex_policy(R"("plain" "with \"quotes\"" "tab\tnl\n")");
  EXPECT_EQ(toks[0].text, "plain");
  EXPECT_EQ(toks[1].text, "with \"quotes\"");
  EXPECT_EQ(toks[2].text, "tab\tnl\n");
}

TEST(Lexer, UnterminatedStringThrowsWithLocation) {
  try {
    (void)lex_policy("\n  \"oops");
    FAIL() << "expected PolicyParseError";
  } catch (const PolicyParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 3);
  }
}

TEST(Lexer, BadEscapeThrows) {
  EXPECT_THROW((void)lex_policy(R"("bad \q escape")"), PolicyParseError);
}

TEST(Lexer, OperatorsAndSymbols) {
  auto toks = lex_policy("== != < <= > >= && || ! { } ( ) , ; =");
  std::vector<TokKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokKind>{
                       TokKind::kEq, TokKind::kNe, TokKind::kLt,
                       TokKind::kLe, TokKind::kGt, TokKind::kGe,
                       TokKind::kAnd, TokKind::kOr, TokKind::kNot,
                       TokKind::kLBrace, TokKind::kRBrace, TokKind::kLParen,
                       TokKind::kRParen, TokKind::kComma, TokKind::kSemi,
                       TokKind::kAssign, TokKind::kEnd}));
}

TEST(Lexer, CommentsAreSkipped) {
  auto toks = lex_policy(
      "policy // rest of line ignored\n"
      "# hash comment too\n"
      "x");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "policy");
  EXPECT_EQ(toks[1].text, "x");
}

TEST(Lexer, TracksLineAndColumn) {
  auto toks = lex_policy("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW((void)lex_policy("policy @ x"), PolicyParseError);
}

TEST(Lexer, BareStarIsIdent) {
  auto toks = lex_policy("*");
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "*");
}

}  // namespace
}  // namespace amuse
