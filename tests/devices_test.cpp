// Device tests: vitals model, sensor payload codecs, actuators, ECG stream.
#include <gtest/gtest.h>

#include "devices/actuators.hpp"
#include "devices/ecg_stream.hpp"
#include "devices/sensors.hpp"
#include "devices/vitals.hpp"
#include "bus/event_bus.hpp"
#include "discovery/discovery_service.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

TEST(VitalsModel, ProducesPlausibleBaselines) {
  VitalsModel model(42);
  double hr_sum = 0;
  double spo2_min = 100;
  double temp_sum = 0;
  int episodes = 0;
  constexpr int kSteps = 2000;
  for (int i = 0; i < kSteps; ++i) {
    VitalsSample s = model.step();
    hr_sum += s.heart_rate;
    spo2_min = std::min(spo2_min, s.spo2);
    temp_sum += s.temperature;
    if (s.in_episode) ++episodes;
  }
  // Baseline 72 bpm plus episode boosts: mean in a sane band.
  EXPECT_GT(hr_sum / kSteps, 65.0);
  EXPECT_LT(hr_sum / kSteps, 95.0);
  EXPECT_GT(temp_sum / kSteps, 36.0);
  EXPECT_LT(temp_sum / kSteps, 38.0);
  EXPECT_GT(episodes, 0);       // some episodes occurred
  EXPECT_LT(episodes, kSteps);  // …but not permanently
}

TEST(VitalsModel, EpisodesElevateHeartRate) {
  VitalsModel model(7);
  model.trigger_episode();
  double in_episode_hr = 0;
  int n = 0;
  for (int i = 0; i < 50; ++i) {
    model.trigger_episode();  // hold the episode open
    VitalsSample s = model.step();
    if (s.in_episode) {
      in_episode_hr += s.heart_rate;
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(in_episode_hr / n, 130.0);
}

TEST(VitalsModel, DeterministicForSeed) {
  VitalsModel a(99);
  VitalsModel b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.step().heart_rate, b.step().heart_rate);
  }
}

TEST(VitalCodec, ReadingDecodesToTypedEvent) {
  VitalCodec codec(VitalKind::kHeartRate, ServiceId(0x77));
  Writer w;
  w.u16(723);  // 72.3 bpm ×10
  w.u8(0x00);
  auto e = codec.decode_reading(w.bytes());
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->type(), "vitals.heartrate");
  EXPECT_DOUBLE_EQ(e->get_double("hr"), 72.3);
  EXPECT_EQ(e->get_string("unit"), "bpm");
  EXPECT_FALSE(e->get("alarm")->as_bool());
  EXPECT_EQ(e->get_int("member"), 0x77);
}

TEST(VitalCodec, AlarmFlagCarriesThrough) {
  VitalCodec codec(VitalKind::kSpO2, ServiceId(1));
  Writer w;
  w.u16(885);
  w.u8(0x01);
  auto e = codec.decode_reading(w.bytes());
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->get("alarm")->as_bool());
}

TEST(VitalCodec, BloodPressureHasTwoValues) {
  VitalCodec codec(VitalKind::kBloodPressure, ServiceId(1));
  Writer w;
  w.u16(1224);
  w.u16(815);
  w.u8(0);
  auto e = codec.decode_reading(w.bytes());
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->get_double("systolic"), 122.4);
  EXPECT_DOUBLE_EQ(e->get_double("diastolic"), 81.5);
}

TEST(VitalCodec, TruncatedReadingRejected) {
  VitalCodec codec(VitalKind::kHeartRate, ServiceId(1));
  Bytes short_payload{0x01};
  EXPECT_FALSE(codec.decode_reading(short_payload).has_value());
}

TEST(VitalCodec, ThresholdCommandOnlyForOwnMember) {
  VitalCodec codec(VitalKind::kHeartRate, ServiceId(0x11));
  Event mine("control.threshold");
  mine.set("member", std::int64_t{0x11});
  mine.set("value", 140.0);
  Event other("control.threshold");
  other.set("member", std::int64_t{0x22});
  other.set("value", 140.0);

  auto cmd = codec.encode_command(mine);
  ASSERT_TRUE(cmd.has_value());
  Reader r(*cmd);
  EXPECT_EQ(r.u8(), 1);  // high threshold
  EXPECT_EQ(r.u16(), 1400);
  EXPECT_FALSE(codec.encode_command(other).has_value());
}

TEST(VitalCodec, LowBoundAndIntervalCommands) {
  VitalCodec codec(VitalKind::kHeartRate, ServiceId(0x11));
  Event low("control.threshold");
  low.set("member", std::int64_t{0x11});
  low.set("bound", "low");
  low.set("value", 45.0);
  auto cmd = codec.encode_command(low);
  ASSERT_TRUE(cmd.has_value());
  Reader r(*cmd);
  EXPECT_EQ(r.u8(), 2);
  EXPECT_EQ(r.u16(), 450);

  Event interval("control.interval");
  interval.set("member", std::int64_t{0x11});
  interval.set("ms", std::int64_t{250});
  auto cmd2 = codec.encode_command(interval);
  ASSERT_TRUE(cmd2.has_value());
  Reader r2(*cmd2);
  EXPECT_EQ(r2.u8(), 3);
  EXPECT_EQ(r2.u32(), 250u);
}

TEST(VitalCodec, TemperatureDoesNotNeedAcks) {
  EXPECT_FALSE(
      VitalCodec(VitalKind::kTemperature, ServiceId(1)).readings_need_ack());
  EXPECT_TRUE(
      VitalCodec(VitalKind::kHeartRate, ServiceId(1)).readings_need_ack());
}

TEST(ActuatorCodecs, DefibrillatorRoundTrip) {
  DefibrillatorCodec codec(ServiceId(0x99));
  Event fire("actuator.defib.fire");
  fire.set("joules", 200.0);
  auto cmd = codec.encode_command(fire);
  ASSERT_TRUE(cmd.has_value());
  Reader r(*cmd);
  EXPECT_EQ(r.u16(), 200);
  EXPECT_FALSE(codec.encode_command(Event("other")).has_value());

  Writer w;
  w.u16(200);
  w.u8(1);
  auto status = codec.decode_reading(w.bytes());
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->type(), "actuator.defib.status");
  EXPECT_DOUBLE_EQ(status->get_double("joules"), 200.0);
  EXPECT_TRUE(status->get("ok")->as_bool());
}

TEST(ActuatorCodecs, InsulinPumpRoundTrip) {
  InsulinPumpCodec codec(ServiceId(0x99));
  Event dose("actuator.insulin.dose");
  dose.set("units", 2.5);
  auto cmd = codec.encode_command(dose);
  ASSERT_TRUE(cmd.has_value());
  Reader r(*cmd);
  EXPECT_EQ(r.u16(), 250);

  Writer w;
  w.u16(250);
  w.u8(1);
  w.u16(2975);
  auto status = codec.decode_reading(w.bytes());
  ASSERT_TRUE(status.has_value());
  EXPECT_DOUBLE_EQ(status->get_double("units"), 2.5);
  EXPECT_DOUBLE_EQ(status->get_double("reservoir"), 297.5);
}

TEST(EcgStream, StreamsOutsideTheBusAndTracksLoss) {
  SimExecutor ex;
  SimNetwork net(ex, 5);
  LinkModel lossy = profiles::lossy_link(0.2);
  net.set_default_link(lossy);
  SimHost& a = net.add_host("sensor", profiles::ideal_host());
  SimHost& b = net.add_host("station", profiles::ideal_host());
  auto viewer_transport = net.create_endpoint(b);
  ServiceId viewer_id = viewer_transport->local_id();
  EcgViewer viewer(std::move(viewer_transport));

  EcgStreamConfig cfg;
  cfg.sample_rate_hz = 250;
  cfg.samples_per_packet = 25;  // 10 packets/s
  EcgStreamer streamer(ex, net.create_endpoint(a), viewer_id, cfg);
  streamer.start();
  ex.run_for(seconds(20));
  streamer.stop();
  ex.run();

  const auto& s = viewer.stats();
  EXPECT_GT(s.packets, 100u);
  EXPECT_GT(s.lost_packets, 10u);  // lossy link, no retransmission
  EXPECT_EQ(s.samples, s.packets * 25);
  // Loss ≈ 20%.
  double rate = static_cast<double>(s.lost_packets) /
                static_cast<double>(s.packets + s.lost_packets);
  EXPECT_NEAR(rate, 0.2, 0.06);
}

TEST(RawDeviceIntegration, SensorJoinsStreamsAndHonoursThresholdCommands) {
  SimExecutor ex;
  SimNetwork net(ex, 11);
  net.set_default_link(profiles::usb_ip_link());
  SimHost& core = net.add_host("core", profiles::ideal_host());
  SimHost& body = net.add_host("body", profiles::ideal_host());

  // A bus with sensor proxies registered, plus a discovery service.
  EventBus bus(ex, net.create_endpoint(core));
  register_vital_sensor_proxies(bus.factory());
  DiscoveryConfig dc;
  dc.cell_name = "cell";
  dc.pre_shared_key = to_bytes("k");
  dc.beacon_interval = milliseconds(300);
  dc.heartbeat_interval = milliseconds(300);
  DiscoveryService disco(ex, net.create_endpoint(core), bus.bus_id(), dc);
  disco.set_on_new_member([&](const MemberInfo& m) { bus.add_member(m); });
  disco.set_on_purge_member([&](ServiceId id) { bus.purge_member(id); });
  disco.start();

  auto patient = std::make_shared<PatientBody>(ex, 1234);
  RawDeviceConfig cfg = sensor_device_config(
      VitalKind::kHeartRate, "cell", to_bytes("k"), milliseconds(500));
  VitalSensor sensor(ex, net.create_endpoint(body), patient,
                     VitalKind::kHeartRate, cfg);

  std::vector<Event> readings;
  bus.subscribe_local(Filter::for_type("vitals.heartrate"),
                      [&](const Event& e) { readings.push_back(e); });

  sensor.start();
  ex.run_for(seconds(10));
  ASSERT_TRUE(sensor.joined());
  EXPECT_GT(readings.size(), 10u);
  EXPECT_GT(readings.back().get_double("hr"), 30.0);
  EXPECT_GT(sensor.stats().readings_acked, 5u);

  // Push a threshold command through the bus to the device.
  EXPECT_DOUBLE_EQ(sensor.threshold_hi(), 120.0);
  Event cmd("control.threshold");
  cmd.set("member",
          static_cast<std::int64_t>(sensor.id().raw()));
  cmd.set("value", 90.0);
  bus.publish_local(cmd);
  ex.run_for(seconds(3));
  EXPECT_DOUBLE_EQ(sensor.threshold_hi(), 90.0);
  EXPECT_EQ(sensor.stats().commands_received, 1u);
}

}  // namespace
}  // namespace amuse
