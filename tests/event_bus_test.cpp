// Event-bus tests over an in-process loopback network: the pub/sub contract
// (§II-C delivery semantics), authorisation gating, purge behaviour,
// quenching and engine parity.
#include "bus/event_bus.hpp"

#include <gtest/gtest.h>

#include "bus/bus_client.hpp"
#include "net/loopback.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

struct BusFixture : ::testing::Test {
  BusFixture() : net(ex) {}

  std::unique_ptr<EventBus> make_bus(EventBusConfig cfg = {}) {
    return std::make_unique<EventBus>(ex, net.create_endpoint(), cfg);
  }

  std::unique_ptr<BusClient> make_client(EventBus& bus,
                                         const std::string& device_type,
                                         const std::string& role) {
    auto transport = net.create_endpoint();
    ServiceId id = transport->local_id();
    bus.add_member(MemberInfo{id, device_type, role});
    return std::make_unique<BusClient>(ex, std::move(transport), bus.bus_id());
  }

  SimExecutor ex;
  LoopbackNetwork net;
};

TEST_F(BusFixture, SubscribePublishDeliver) {
  auto bus = make_bus();
  auto pub = make_client(*bus, "svc.pub", "service");
  auto sub = make_client(*bus, "svc.sub", "service");

  std::vector<Event> got;
  sub->subscribe(Filter::for_type("test.ping"),
                 [&](const Event& e) { got.push_back(e); });
  ex.run();

  pub->publish(Event("test.ping", {{"n", 1}}));
  ex.run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type(), "test.ping");
  EXPECT_EQ(got[0].get_int("n"), 1);
  EXPECT_EQ(got[0].publisher(), pub->id());
  EXPECT_EQ(bus->stats().published, 1u);
  EXPECT_EQ(bus->stats().deliveries, 1u);
}

TEST_F(BusFixture, PublisherDoesNotReceiveOwnEventUnlessSubscribed) {
  auto bus = make_bus();
  auto pub = make_client(*bus, "svc", "service");
  int got = 0;
  pub->subscribe(Filter::for_type("other"), [&](const Event&) { ++got; });
  ex.run();
  pub->publish(Event("mine"));
  ex.run();
  EXPECT_EQ(got, 0);

  // But a publisher that *is* subscribed to its own event type gets it.
  pub->subscribe(Filter::for_type("mine"), [&](const Event&) { ++got; });
  ex.run();
  pub->publish(Event("mine"));
  ex.run();
  EXPECT_EQ(got, 1);
}

TEST_F(BusFixture, ExactlyOnceDespiteOverlappingSubscriptions) {
  auto bus = make_bus();
  auto pub = make_client(*bus, "svc", "service");
  auto sub = make_client(*bus, "svc", "service");

  int handler_a = 0;
  int handler_b = 0;
  sub->subscribe(Filter::for_type("vitals.heartrate"),
                 [&](const Event&) { ++handler_a; });
  sub->subscribe(Filter::for_type_prefix("vitals."),
                 [&](const Event&) { ++handler_b; });
  ex.run();

  pub->publish(Event("vitals.heartrate"));
  ex.run();

  // One network delivery, both matching handlers invoked.
  EXPECT_EQ(sub->stats().events_received, 1u);
  EXPECT_EQ(handler_a, 1);
  EXPECT_EQ(handler_b, 1);
}

TEST_F(BusFixture, PerSenderFifoOrdering) {
  auto bus = make_bus();
  auto pub = make_client(*bus, "svc", "service");
  auto sub = make_client(*bus, "svc", "service");

  std::vector<std::int64_t> order;
  sub->subscribe(Filter::for_type("seq"),
                 [&](const Event& e) { order.push_back(e.get_int("n")); });
  ex.run();
  for (int i = 0; i < 50; ++i) pub->publish(Event("seq", {{"n", i}}));
  ex.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(BusFixture, PublisherSeqIsMonotonicAtReceiver) {
  auto bus = make_bus();
  auto pub = make_client(*bus, "svc", "service");
  auto sub = make_client(*bus, "svc", "service");
  std::vector<std::uint64_t> seqs;
  sub->subscribe(Filter::for_type("s"),
                 [&](const Event& e) { seqs.push_back(e.publisher_seq()); });
  ex.run();
  for (int i = 0; i < 10; ++i) pub->publish(Event("s"));
  ex.run();
  ASSERT_EQ(seqs.size(), 10u);
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_GT(seqs[i], seqs[i - 1]);
  }
}

TEST_F(BusFixture, UnsubscribeStopsDelivery) {
  auto bus = make_bus();
  auto pub = make_client(*bus, "svc", "service");
  auto sub = make_client(*bus, "svc", "service");
  int got = 0;
  std::uint64_t id =
      sub->subscribe(Filter::for_type("t"), [&](const Event&) { ++got; });
  ex.run();
  pub->publish(Event("t"));
  ex.run();
  sub->unsubscribe(id);
  ex.run();
  pub->publish(Event("t"));
  ex.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(bus->stats().no_subscriber, 1u);
}

TEST_F(BusFixture, ContentFiltersSelectByAttributes) {
  auto bus = make_bus();
  auto pub = make_client(*bus, "svc", "service");
  auto sub = make_client(*bus, "svc", "service");
  int high = 0;
  Filter f;
  f.where("type", Op::kEq, "vitals.heartrate").where("hr", Op::kGt, 120);
  sub->subscribe(f, [&](const Event&) { ++high; });
  ex.run();
  pub->publish(Event("vitals.heartrate", {{"hr", 80}}));
  pub->publish(Event("vitals.heartrate", {{"hr", 150}}));
  ex.run();
  EXPECT_EQ(high, 1);
}

TEST_F(BusFixture, PurgeMemberDropsSubscriptionsAndQueue) {
  auto bus = make_bus();
  auto pub = make_client(*bus, "svc", "service");
  auto sub = make_client(*bus, "svc", "service");
  int got = 0;
  sub->subscribe(Filter::for_type("t"), [&](const Event&) { ++got; });
  ex.run();
  EXPECT_EQ(bus->registry().size(), 1u);

  bus->purge_member(sub->id());
  EXPECT_FALSE(bus->has_member(sub->id()));
  EXPECT_EQ(bus->registry().size(), 0u);

  pub->publish(Event("t"));
  ex.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(bus->stats().no_subscriber, 1u);
}

TEST_F(BusFixture, NonMemberTrafficIgnored) {
  auto bus = make_bus();
  auto stranger_transport = net.create_endpoint();
  BusClient stranger(ex, std::move(stranger_transport), bus->bus_id());
  int got = 0;
  stranger.subscribe(Filter(), [&](const Event&) { ++got; });
  stranger.publish(Event("t"));
  ex.run();
  EXPECT_EQ(bus->stats().published, 0u);
  EXPECT_EQ(bus->registry().size(), 0u);
}

TEST_F(BusFixture, AuthoriserGatesPublishAndSubscribe) {
  auto bus = make_bus();
  bus->set_authoriser([](const MemberInfo& m, AuthAction action,
                         std::string_view topic) {
    if (m.role == "sensor" && action == AuthAction::kSubscribe &&
        topic.starts_with("control.")) {
      return false;
    }
    if (m.role == "guest" && action == AuthAction::kPublish) return false;
    return true;
  });
  auto sensor = make_client(*bus, "sensor.x", "sensor");
  auto guest = make_client(*bus, "console", "guest");

  sensor->subscribe(Filter::for_type("control.threshold"),
                    [](const Event&) {});
  sensor->subscribe(Filter::for_type("vitals.heartrate"), [](const Event&) {});
  ex.run();
  EXPECT_EQ(bus->stats().denied_subscribe, 1u);
  EXPECT_EQ(bus->registry().size(), 1u);

  guest->publish(Event("anything"));
  ex.run();
  EXPECT_EQ(bus->stats().denied_publish, 1u);
  EXPECT_EQ(bus->stats().published, 0u);
}

TEST_F(BusFixture, LocalSubscribersReceiveMemberEvents) {
  auto bus = make_bus();
  auto pub = make_client(*bus, "svc", "service");
  std::vector<std::string> local;
  bus->subscribe_local(Filter::for_type_prefix(""),
                       [&](const Event& e) { local.emplace_back(e.type()); });
  pub->publish(Event("from.member"));
  bus->publish_local(Event("from.core"));
  ex.run();
  ASSERT_EQ(local.size(), 2u);
  EXPECT_EQ(bus->stats().local_deliveries, 2u);
}

TEST_F(BusFixture, LocalUnsubscribeWorksInsideHandler) {
  auto bus = make_bus();
  int got = 0;
  std::uint64_t id = 0;
  id = bus->subscribe_local(Filter::for_type("t"), [&](const Event&) {
    ++got;
    bus->unsubscribe_local(id);
  });
  bus->publish_local(Event("t"));
  bus->publish_local(Event("t"));
  ex.run();
  EXPECT_EQ(got, 1);
}

TEST_F(BusFixture, QuenchSuppressesUnwantedPublishes) {
  EventBusConfig cfg;
  cfg.quench = true;
  auto bus = make_bus(cfg);

  auto pub_transport = net.create_endpoint();
  ServiceId pub_id = pub_transport->local_id();
  bus->add_member(MemberInfo{pub_id, "svc", "service"});
  BusClientConfig ccfg;
  ccfg.quench = true;
  BusClient pub(ex, std::move(pub_transport), bus->bus_id(), ccfg);
  auto sub = make_client(*bus, "svc", "service");

  // Subscribe to one type; let the quench table propagate.
  int got = 0;
  sub->subscribe(Filter::for_type("wanted"), [&](const Event&) { ++got; });
  // Force a table push to the publisher by subscribing (bus pushes on every
  // subscription change).
  ex.run();
  ASSERT_TRUE(pub.quench_table().have_table());

  EXPECT_TRUE(pub.publish(Event("wanted")));
  EXPECT_FALSE(pub.publish(Event("unwanted")));  // suppressed at source
  ex.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(pub.stats().quenched, 1u);
  // The unwanted event never reached the bus.
  EXPECT_EQ(bus->stats().published, 1u);
}

TEST_F(BusFixture, QuenchFailsOpenBeforeTableArrives) {
  BusClientConfig ccfg;
  ccfg.quench = true;
  auto bus = make_bus();  // bus-side quench off: no tables pushed
  auto t = net.create_endpoint();
  bus->add_member(MemberInfo{t->local_id(), "svc", "service"});
  BusClient pub(ex, std::move(t), bus->bus_id(), ccfg);
  EXPECT_TRUE(pub.publish(Event("anything")));
  ex.run();
  EXPECT_EQ(bus->stats().published, 1u);
}

class BusEngineParity : public ::testing::TestWithParam<BusEngine> {};

TEST_P(BusEngineParity, EndToEndFlowIdenticalAcrossEngines) {
  SimExecutor ex;
  LoopbackNetwork net(ex);
  EventBusConfig cfg;
  cfg.engine = GetParam();
  EventBus bus(ex, net.create_endpoint(), cfg);

  auto pt = net.create_endpoint();
  auto st = net.create_endpoint();
  bus.add_member(MemberInfo{pt->local_id(), "svc", "service"});
  bus.add_member(MemberInfo{st->local_id(), "svc", "service"});
  BusClient pub(ex, std::move(pt), bus.bus_id());
  BusClient sub(ex, std::move(st), bus.bus_id());

  std::vector<std::int64_t> got;
  Filter f;
  f.where("type", Op::kEq, "vitals.heartrate").where("hr", Op::kGe, 100);
  sub.subscribe(f, [&](const Event& e) { got.push_back(e.get_int("hr")); });
  ex.run();
  for (int hr : {80, 100, 150, 99}) {
    pub.publish(Event("vitals.heartrate", {{"hr", hr}}));
  }
  ex.run();
  EXPECT_EQ(got, (std::vector<std::int64_t>{100, 150}));
}

INSTANTIATE_TEST_SUITE_P(Engines, BusEngineParity,
                         ::testing::Values(BusEngine::kCBased,
                                           BusEngine::kSienaBased,
                                           BusEngine::kBruteForce));

// ---- Encode-once fan-out (the zero-copy event spine).

TEST_F(BusFixture, EncodesOncePerPublishAcrossFanout) {
  auto bus = make_bus();
  auto pub = make_client(*bus, "svc", "service");
  constexpr std::size_t kMembers = 4;
  constexpr std::uint64_t kEvents = 7;
  std::vector<std::unique_ptr<BusClient>> subs;
  std::uint64_t got = 0;
  for (std::size_t i = 0; i < kMembers; ++i) {
    subs.push_back(make_client(*bus, "svc", "service"));
    subs.back()->subscribe(Filter::for_type("fan"),
                           [&](const Event&) { ++got; });
  }
  ex.run();

  for (std::uint64_t i = 0; i < kEvents; ++i) {
    pub->publish(Event("fan", {{"n", static_cast<std::int64_t>(i)}}));
  }
  ex.run();

  EXPECT_EQ(got, kEvents * kMembers);
  EXPECT_EQ(bus->stats().published, kEvents);
  EXPECT_EQ(bus->stats().deliveries, kEvents * kMembers);
  // The body is serialised exactly once per *publish*, not per delivery…
  EXPECT_EQ(bus->stats().encodes, bus->stats().published);
  // …and every further member in the fan-out reuses the cached bytes.
  EXPECT_EQ(bus->stats().encode_reuses,
            bus->stats().deliveries - bus->stats().encodes);
}

TEST_F(BusFixture, LocalHandlersShareOneImmutableEvent) {
  auto bus = make_bus();
  std::uintptr_t addr_first = 0;
  std::uintptr_t addr_second = 0;
  std::int64_t seen = 0;
  bus->subscribe_local(Filter::for_type("shared"), [&](const Event& e) {
    addr_first = reinterpret_cast<std::uintptr_t>(&e);
    Event mine = e;                    // a subscriber's private copy…
    mine.set("n", std::int64_t{999});  // …can be mutated freely
  });
  bus->subscribe_local(Filter::for_type("shared"), [&](const Event& e) {
    addr_second = reinterpret_cast<std::uintptr_t>(&e);
    seen = e.get_int("n");
  });
  bus->publish_local(Event("shared", {{"n", 42}}));
  ex.run();
  // One shared instance reaches every handler — no per-handler copies —
  // and an earlier subscriber's mutation of its own copy is invisible.
  EXPECT_EQ(addr_first, addr_second);
  EXPECT_NE(addr_first, 0u);
  EXPECT_EQ(seen, 42);
}

TEST_F(BusFixture, QuenchSkipsNoOpTablePushes) {
  EventBusConfig cfg;
  cfg.quench = true;
  auto bus = make_bus(cfg);
  auto a = make_client(*bus, "svc", "service");
  auto b = make_client(*bus, "svc", "service");

  a->subscribe(Filter::for_type("t"), [](const Event&) {});
  ex.run();
  std::uint64_t updates = bus->stats().quench_updates;
  std::uint64_t skipped = bus->stats().quench_skipped;

  // The same filter from another member leaves the effective set — and so
  // the quench table — unchanged: the push is elided.
  std::uint64_t dup = b->subscribe(Filter::for_type("t"), [](const Event&) {});
  ex.run();
  EXPECT_EQ(bus->stats().quench_updates, updates);
  EXPECT_EQ(bus->stats().quench_skipped, skipped + 1);

  // Dropping the duplicate is equally a no-op.
  b->unsubscribe(dup);
  ex.run();
  EXPECT_EQ(bus->stats().quench_updates, updates);
  EXPECT_EQ(bus->stats().quench_skipped, skipped + 2);

  // A genuinely new filter still pushes.
  a->subscribe(Filter::for_type("u"), [](const Event&) {});
  ex.run();
  EXPECT_EQ(bus->stats().quench_updates, updates + 1);
}

}  // namespace
}  // namespace amuse
