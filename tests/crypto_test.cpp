// Known-answer tests for CRC-32, SHA-256 (FIPS 180-4) and HMAC-SHA256
// (RFC 4231) — the primitives behind frame integrity and the discovery
// service's admission handshake.
#include <gtest/gtest.h>

#include "common/crc32.hpp"
#include "common/sha256.hpp"

namespace amuse {
namespace {

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(to_bytes("")), 0x00000000U);
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926U);  // classic check value
  EXPECT_EQ(crc32(to_bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339U);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Bytes data = to_bytes("split into several pieces for incremental hashing");
  std::uint32_t whole = crc32(data);
  std::uint32_t crc = 0;
  // Note: IEEE CRC-32 with pre/post-inversion is not naively resumable via
  // crc32_update(previous, …) across chunk boundaries unless the update
  // function handles the inversions — ours does.
  crc = crc32_update(crc, BytesView(data.data(), 10));
  crc = crc32_update(crc, BytesView(data.data() + 10, data.size() - 10));
  EXPECT_EQ(crc, whole);
}

TEST(Crc32, DetectsSingleBitFlips) {
  Bytes data = to_bytes("event bus payload");
  std::uint32_t good = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    Bytes corrupt = data;
    corrupt[i] ^= 0x01;
    EXPECT_NE(crc32(corrupt), good) << "flip at byte " << i;
  }
}

std::string hex_digest(const Digest256& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(hex_digest(Sha256::hash(to_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_digest(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_digest(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_digest(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalSplitInvariance) {
  Bytes msg = to_bytes("the block boundary at 64 bytes is where bugs hide, "
                       "so split across it in several ways");
  Digest256 expect = Sha256::hash(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(hex_digest(h.finish()), hex_digest(expect)) << split;
  }
}

TEST(Sha256, PaddingEdgeLengths) {
  // Messages of length 55, 56, 63, 64 exercise every padding branch.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    Bytes msg(len, 'x');
    Digest256 one = Sha256::hash(msg);
    Sha256 h;
    for (std::size_t i = 0; i < len; ++i) {
      h.update(BytesView(msg.data() + i, 1));
    }
    EXPECT_EQ(hex_digest(h.finish()), hex_digest(one)) << "len " << len;
  }
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Digest256 mac = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(hex_digest(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256, Rfc4231Case2) {
  Digest256 mac = hmac_sha256(to_bytes("Jefe"),
                              to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(hex_digest(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(HmacSha256, Rfc4231LongKey) {
  Bytes key(131, 0xaa);
  Digest256 mac = hmac_sha256(
      key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_digest(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, DifferentKeysDiffer) {
  Bytes msg = to_bytes("admission challenge nonce");
  EXPECT_NE(hex_digest(hmac_sha256(to_bytes("key-a"), msg)),
            hex_digest(hmac_sha256(to_bytes("key-b"), msg)));
}

TEST(DigestEqual, ComparesCorrectly) {
  Digest256 a = Sha256::hash(to_bytes("x"));
  Digest256 b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace amuse
