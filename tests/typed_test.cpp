// Tests for type-based publish/subscribe (§VI future work): the type
// registry (hierarchy, schema validation) and the typed client over a live
// bus.
#include <gtest/gtest.h>

#include "bus/event_bus.hpp"
#include "net/loopback.hpp"
#include "sim/sim_executor.hpp"
#include "typed/typed_client.hpp"

namespace amuse {
namespace {

TEST(TypeRegistry, DeclareAndFind) {
  TypeRegistry reg;
  reg.declare("base", {{"x", ValueType::kInt, true}});
  reg.declare("derived", "base", {{"y", ValueType::kString, false}});
  ASSERT_NE(reg.find("base"), nullptr);
  ASSERT_NE(reg.find("derived"), nullptr);
  EXPECT_EQ(reg.find("nope"), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(TypeRegistry, RejectsBadDeclarations) {
  TypeRegistry reg;
  reg.declare("a", {{"x", ValueType::kInt, true}});
  EXPECT_THROW(reg.declare("a", {}), TypeError);             // duplicate
  EXPECT_THROW(reg.declare("b", "missing", {}), TypeError);  // bad parent
  // Field redefinition with a different type.
  EXPECT_THROW(reg.declare("c", "a", {{"x", ValueType::kString, true}}),
               TypeError);
  // Same type is fine (narrowing required-ness etc.).
  EXPECT_NO_THROW(reg.declare("d", "a", {{"x", ValueType::kInt, false}}));
}

TEST(TypeRegistry, SubtypeRelation) {
  TypeRegistry reg;
  declare_ehealth_types(reg);
  EXPECT_TRUE(reg.is_subtype("vitals.heartrate", "vitals"));
  EXPECT_TRUE(reg.is_subtype("vitals", "vitals"));
  EXPECT_FALSE(reg.is_subtype("vitals", "vitals.heartrate"));
  EXPECT_FALSE(reg.is_subtype("alarm.cardiac", "vitals"));
  EXPECT_FALSE(reg.is_subtype("ghost", "vitals"));
  EXPECT_EQ(reg.subtree("vitals").size(), 5u);  // itself + 4 subtypes
  EXPECT_EQ(reg.subtree("alarm").size(), 4u);
}

TEST(TypeRegistry, FieldsAreInherited) {
  TypeRegistry reg;
  declare_ehealth_types(reg);
  auto fields = reg.find("vitals.heartrate")->all_fields();
  bool has_member = false;
  bool has_hr = false;
  for (const FieldSpec& f : fields) {
    has_member |= f.name == "member";
    has_hr |= f.name == "hr";
  }
  EXPECT_TRUE(has_member);  // inherited from "vitals"
  EXPECT_TRUE(has_hr);      // own
}

TEST(TypeRegistry, ValidationEnforcesSchema) {
  TypeRegistry reg;
  declare_ehealth_types(reg);

  Event good("vitals.heartrate");
  good.set("member", std::int64_t{1});
  good.set("hr", 72.0);
  EXPECT_EQ(reg.validate(good), std::nullopt);

  Event unknown("made.up.tag");  // the "arbitrary tag" the paper wants gone
  EXPECT_TRUE(reg.validate(unknown).has_value());

  Event missing("vitals.heartrate");
  missing.set("member", std::int64_t{1});  // no hr
  EXPECT_TRUE(reg.validate(missing).has_value());

  Event wrong_type("vitals.heartrate");
  wrong_type.set("member", std::int64_t{1});
  wrong_type.set("hr", "seventy-two");
  EXPECT_TRUE(reg.validate(wrong_type).has_value());

  // Numeric family unified: int where double is declared is fine.
  Event int_hr("vitals.heartrate");
  int_hr.set("member", std::int64_t{1});
  int_hr.set("hr", 72);
  EXPECT_EQ(reg.validate(int_hr), std::nullopt);

  // Optional fields may be absent but must be well-typed when present.
  Event bad_optional("vitals.heartrate");
  bad_optional.set("member", std::int64_t{1});
  bad_optional.set("hr", 72.0);
  bad_optional.set("alarm", "yes");  // declared kBool
  EXPECT_TRUE(reg.validate(bad_optional).has_value());

  Event no_type;
  EXPECT_TRUE(reg.validate(no_type).has_value());
}

TEST(TypeRegistry, SubscriptionFiltersCoverSubtree) {
  TypeRegistry reg;
  declare_ehealth_types(reg);
  Filter refinement;
  refinement.where("member", Op::kEq, std::int64_t{9});
  auto filters = reg.subscription_filters("alarm", refinement);
  ASSERT_EQ(filters.size(), 4u);
  for (const Filter& f : filters) {
    EXPECT_EQ(f.size(), 2u);  // type pin + refinement
  }
  EXPECT_TRUE(reg.subscription_filters("ghost").empty());
}

// ---- TypedClient over a live bus.

struct TypedFixture : ::testing::Test {
  TypedFixture() : net(ex), bus(ex, net.create_endpoint()) {
    declare_ehealth_types(registry);
  }

  std::unique_ptr<BusClient> make_client() {
    auto t = net.create_endpoint();
    bus.add_member(MemberInfo{t->local_id(), "svc", "service"});
    return std::make_unique<BusClient>(ex, std::move(t), bus.bus_id());
  }

  SimExecutor ex;
  LoopbackNetwork net;
  EventBus bus;
  TypeRegistry registry;
};

TEST_F(TypedFixture, SubtypeSubscriptionReceivesAllConcreteTypes) {
  auto pub_raw = make_client();
  auto sub_raw = make_client();
  TypedClient pub(*pub_raw, registry);
  TypedClient sub(*sub_raw, registry);

  std::vector<std::string> got;
  sub.subscribe("vitals", [&](const Event& e) { got.emplace_back(e.type()); });
  ex.run();

  Event hr("vitals.heartrate");
  hr.set("member", std::int64_t{1});
  hr.set("hr", 72.0);
  ASSERT_TRUE(pub.publish(hr));
  Event spo2("vitals.spo2");
  spo2.set("member", std::int64_t{1});
  spo2.set("spo2", 97.0);
  ASSERT_TRUE(pub.publish(spo2));
  Event alarm("alarm.cardiac");
  alarm.set("level", "high");
  ASSERT_TRUE(pub.publish(alarm));  // not a vitals subtype
  ex.run();

  EXPECT_EQ(got, (std::vector<std::string>{"vitals.heartrate",
                                           "vitals.spo2"}));
}

TEST_F(TypedFixture, ExactlyOneDeliveryPerEvent) {
  auto pub_raw = make_client();
  auto sub_raw = make_client();
  TypedClient pub(*pub_raw, registry);
  TypedClient sub(*sub_raw, registry);
  int calls = 0;
  sub.subscribe("vitals", [&](const Event&) { ++calls; });
  ex.run();
  Event hr("vitals.heartrate");
  hr.set("member", std::int64_t{1});
  hr.set("hr", 72.0);
  ASSERT_TRUE(pub.publish(hr));
  ex.run();
  // Even though the subtree subscription registered 5 filters, only the
  // concrete type's filter matches — one handler call.
  EXPECT_EQ(calls, 1);
}

TEST_F(TypedFixture, SchemaRejectionNeverReachesTheBus) {
  auto pub_raw = make_client();
  TypedClient pub(*pub_raw, registry);
  Event bad("vitals.heartrate");  // missing required member + hr
  EXPECT_FALSE(pub.publish(bad));
  EXPECT_EQ(pub.stats().schema_rejections, 1u);
  EXPECT_FALSE(pub.last_error().empty());
  ex.run();
  EXPECT_EQ(bus.stats().published, 0u);
}

TEST_F(TypedFixture, RefinementConstrainsContent) {
  auto pub_raw = make_client();
  auto sub_raw = make_client();
  TypedClient pub(*pub_raw, registry);
  TypedClient sub(*sub_raw, registry);
  int high = 0;
  Filter refinement;
  refinement.where("hr", Op::kGt, 120.0);
  sub.subscribe("vitals", [&](const Event&) { ++high; }, refinement);
  ex.run();
  for (double hr : {80.0, 150.0}) {
    Event e("vitals.heartrate");
    e.set("member", std::int64_t{1});
    e.set("hr", hr);
    ASSERT_TRUE(pub.publish(e));
  }
  ex.run();
  EXPECT_EQ(high, 1);
}

TEST_F(TypedFixture, UnsubscribeRemovesWholeSubtree) {
  auto pub_raw = make_client();
  auto sub_raw = make_client();
  TypedClient pub(*pub_raw, registry);
  TypedClient sub(*sub_raw, registry);
  int calls = 0;
  std::uint64_t id = sub.subscribe("alarm", [&](const Event&) { ++calls; });
  ex.run();
  sub.unsubscribe(id);
  ex.run();
  Event alarm("alarm.fever");
  alarm.set("level", "warning");
  ASSERT_TRUE(pub.publish(alarm));
  ex.run();
  EXPECT_EQ(calls, 0);
}

TEST_F(TypedFixture, UnknownTypeSubscriptionFails) {
  auto sub_raw = make_client();
  TypedClient sub(*sub_raw, registry);
  EXPECT_EQ(sub.subscribe("no.such.type", [](const Event&) {}), 0u);
  EXPECT_FALSE(sub.last_error().empty());
}

}  // namespace
}  // namespace amuse
