// Proxy tests: the translating proxy's device protocol (translation, acks,
// dedup, stop-and-wait command delivery, purge) and the bootstrap factory.
#include <gtest/gtest.h>

#include "proxy/bootstrap.hpp"
#include "proxy/forwarding_proxy.hpp"
#include "proxy/translating_proxy.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

// A fake bus that records everything proxies do.
class FakeBus final : public BusPort {
 public:
  explicit FakeBus(Executor& ex) : ex_(ex) {}

  void member_publish(ServiceId member, EventPtr event) override {
    published.emplace_back(member, *event);
  }
  void member_subscribe(ServiceId member, std::uint64_t local_id,
                        Filter filter) override {
    subscriptions.push_back({member, local_id, std::move(filter)});
  }
  void member_unsubscribe(ServiceId member, std::uint64_t local_id) override {
    unsubscribes.emplace_back(member, local_id);
  }
  void send_datagram(ServiceId dst, BytesView frame) override {
    sent.emplace_back(dst, Bytes(frame.begin(), frame.end()));
  }
  Executor& executor() override { return ex_; }
  ServiceId bus_id() const override { return ServiceId(0xB05); }
  std::uint32_t bus_session() const override { return 77; }
  const ReliableChannelConfig& channel_config() const override {
    return cfg_;
  }

  struct Sub {
    ServiceId member;
    std::uint64_t local_id;
    Filter filter;
  };
  Executor& ex_;
  ReliableChannelConfig cfg_;
  std::vector<std::pair<ServiceId, Event>> published;
  std::vector<Sub> subscriptions;
  std::vector<std::pair<ServiceId, std::uint64_t>> unsubscribes;
  std::vector<std::pair<ServiceId, Bytes>> sent;
};

// Minimal codec: readings are ASCII integers → Event("fake.reading"),
// commands are Event("fake.cmd"){n} → single byte n.
class FakeCodec final : public DeviceCodec {
 public:
  explicit FakeCodec(bool ack = true) : ack_(ack) {}
  std::optional<Event> decode_reading(BytesView payload) override {
    std::string text = to_string(payload);
    if (text.empty() || text == "garbage") return std::nullopt;
    Event e("fake.reading");
    e.set("n", std::int64_t{std::atoll(text.c_str())});
    return e;
  }
  std::optional<Bytes> encode_command(const Event& event) override {
    if (event.type() != "fake.cmd") return std::nullopt;
    return Bytes{static_cast<std::uint8_t>(event.get_int("n"))};
  }
  std::vector<Filter> initial_subscriptions() override {
    return {Filter::for_type("fake.cmd")};
  }
  bool readings_need_ack() const override { return ack_; }

 private:
  bool ack_;
};

MemberInfo member() {
  return MemberInfo{ServiceId(0xDE1), "fake.device", "sensor"};
}

// Wraps a fresh event the way the bus fan-out would.
EncodedEvent wrap(Event e) { return EncodedEvent(freeze(std::move(e))); }

DeviceFrame reading(std::uint16_t seq, const std::string& text) {
  DeviceFrame f;
  f.type = DeviceFrameType::kReading;
  f.seq = seq;
  f.payload = to_bytes(text);
  return f;
}

struct TranslatingFixture : ::testing::Test {
  SimExecutor ex;
  FakeBus bus{ex};
  TranslatingProxyConfig cfg;
};

TEST_F(TranslatingFixture, RegistersInitialSubscriptionsOnCreation) {
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>());
  ASSERT_EQ(bus.subscriptions.size(), 1u);
  EXPECT_EQ(bus.subscriptions[0].member, member().id);
  EXPECT_EQ(bus.subscriptions[0].filter, Filter::for_type("fake.cmd"));
}

TEST_F(TranslatingFixture, DecodesReadingPublishesAndAcks) {
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>());
  proxy.on_datagram(reading(1, "42").encode());

  ASSERT_EQ(bus.published.size(), 1u);
  EXPECT_EQ(bus.published[0].second.type(), "fake.reading");
  EXPECT_EQ(bus.published[0].second.get_int("n"), 42);

  ASSERT_EQ(bus.sent.size(), 1u);  // the ack
  auto ack = DeviceFrame::decode(bus.sent[0].second);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, DeviceFrameType::kAck);
  EXPECT_EQ(ack->seq, 1);
}

TEST_F(TranslatingFixture, NoAckWhenCodecDoesNotWantThem) {
  TranslatingProxy proxy(bus, member(),
                         std::make_unique<FakeCodec>(/*ack=*/false));
  proxy.on_datagram(reading(1, "5").encode());
  EXPECT_EQ(bus.published.size(), 1u);
  EXPECT_TRUE(bus.sent.empty());
}

TEST_F(TranslatingFixture, DuplicateReadingsAckedButNotRepublished) {
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>());
  proxy.on_datagram(reading(1, "42").encode());
  proxy.on_datagram(reading(1, "42").encode());  // retransmit from device
  EXPECT_EQ(bus.published.size(), 1u);
  EXPECT_EQ(bus.sent.size(), 2u);  // both copies acked
  EXPECT_EQ(proxy.stats().readings_duplicate, 1u);
}

TEST_F(TranslatingFixture, OldReadingsAfterNewerAreDropped) {
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>());
  proxy.on_datagram(reading(5, "55").encode());
  proxy.on_datagram(reading(3, "33").encode());  // late reorder
  EXPECT_EQ(bus.published.size(), 1u);
  EXPECT_EQ(proxy.stats().readings_duplicate, 1u);
}

TEST_F(TranslatingFixture, UndecodableReadingCountedAndAcked) {
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>());
  proxy.on_datagram(reading(1, "garbage").encode());
  EXPECT_TRUE(bus.published.empty());
  EXPECT_EQ(proxy.stats().readings_undecodable, 1u);
  EXPECT_EQ(bus.sent.size(), 1u);
}

TEST_F(TranslatingFixture, CommandsAreStopAndWait) {
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>(), cfg);
  proxy.deliver_event(wrap(Event("fake.cmd", {{"n", 1}})), {});
  proxy.deliver_event(wrap(Event("fake.cmd", {{"n", 2}})), {});
  // Only the head of the queue is in flight.
  ASSERT_EQ(bus.sent.size(), 1u);
  auto cmd1 = DeviceFrame::decode(bus.sent[0].second);
  EXPECT_EQ(cmd1->type, DeviceFrameType::kCommand);
  EXPECT_EQ(cmd1->payload, Bytes{1});
  EXPECT_EQ(proxy.pending(), 2u);

  // Ack the first: the second goes out.
  DeviceFrame ack;
  ack.type = DeviceFrameType::kAck;
  ack.seq = cmd1->seq;
  proxy.on_datagram(ack.encode());
  ASSERT_EQ(bus.sent.size(), 2u);
  auto cmd2 = DeviceFrame::decode(bus.sent[1].second);
  EXPECT_EQ(cmd2->payload, Bytes{2});
  EXPECT_EQ(proxy.pending(), 1u);
}

TEST_F(TranslatingFixture, CommandsRetransmitUntilAcked) {
  cfg.resend_interval = milliseconds(50);
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>(), cfg);
  proxy.deliver_event(wrap(Event("fake.cmd", {{"n", 9}})), {});
  ex.run_for(milliseconds(400));
  EXPECT_GE(proxy.stats().command_retransmits, 2u);
  EXPECT_GE(bus.sent.size(), 3u);
  // All retransmissions carry the same sequence number.
  auto first = DeviceFrame::decode(bus.sent[0].second);
  auto last = DeviceFrame::decode(bus.sent.back().second);
  EXPECT_EQ(first->seq, last->seq);
}

TEST_F(TranslatingFixture, StallsAfterMaxRetriesAndRecoversOnAck) {
  cfg.resend_interval = milliseconds(10);
  cfg.max_retries = 2;
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>(), cfg);
  proxy.deliver_event(wrap(Event("fake.cmd", {{"n", 9}})), {});
  ex.run_for(seconds(5));
  EXPECT_TRUE(proxy.stalled());
  std::size_t sent_before = bus.sent.size();

  // An ack for the head clears it and un-stalls the pipeline.
  auto head = DeviceFrame::decode(bus.sent.back().second);
  DeviceFrame ack;
  ack.type = DeviceFrameType::kAck;
  ack.seq = head->seq;
  proxy.on_datagram(ack.encode());
  EXPECT_FALSE(proxy.stalled());
  EXPECT_EQ(proxy.pending(), 0u);
  EXPECT_GE(bus.sent.size(), sent_before);
}

TEST_F(TranslatingFixture, UntranslatableEventsSkipped) {
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>(), cfg);
  proxy.deliver_event(wrap(Event("not.for.this.device")), {});
  EXPECT_TRUE(bus.sent.empty());
  EXPECT_EQ(proxy.stats().events_untranslatable, 1u);
}

TEST_F(TranslatingFixture, PurgeDestroysOutboundQueue) {
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>(), cfg);
  proxy.deliver_event(wrap(Event("fake.cmd", {{"n", 1}})), {});
  proxy.deliver_event(wrap(Event("fake.cmd", {{"n", 2}})), {});
  EXPECT_EQ(proxy.pending(), 2u);
  proxy.on_purge();
  EXPECT_EQ(proxy.pending(), 0u);
  // And no lingering retransmissions.
  std::size_t sent_before = bus.sent.size();
  ex.run_for(seconds(5));
  EXPECT_EQ(bus.sent.size(), sent_before);
}

TEST_F(TranslatingFixture, MalformedDatagramsIgnored) {
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>(), cfg);
  proxy.on_datagram(to_bytes("not a device frame"));
  Bytes short_frame{0xD5};
  proxy.on_datagram(short_frame);
  EXPECT_TRUE(bus.published.empty());
  EXPECT_TRUE(bus.sent.empty());
}

TEST_F(TranslatingFixture, QueueOverflowCounted) {
  cfg.max_queue = 2;
  TranslatingProxy proxy(bus, member(), std::make_unique<FakeCodec>(), cfg);
  for (int i = 0; i < 5; ++i) {
    proxy.deliver_event(wrap(Event("fake.cmd", {{"n", i}})), {});
  }
  EXPECT_EQ(proxy.pending(), 2u);
  EXPECT_EQ(proxy.stats().queue_overflow, 3u);
}

// ---- Encode-once fan-out through forwarding proxies.

TEST(ForwardingFanout, DeliveredFramesAreByteIdenticalAcrossMembers) {
  SimExecutor ex;
  FakeBus bus(ex);
  ForwardingProxy p1(bus, MemberInfo{ServiceId(0xA), "svc", "r"});
  ForwardingProxy p2(bus, MemberInfo{ServiceId(0xB), "svc", "r"});

  Event e("fan.out", {{"n", 7}, {"unit", "bpm"}});
  e.set_publisher(bus.bus_id());
  e.set_publisher_seq(3);
  std::vector<std::uint64_t> matched{3, 9};

  EncodedEvent enc = wrap(e);
  p1.deliver_event(enc, matched);
  p2.deliver_event(enc, matched);

  ASSERT_EQ(bus.sent.size(), 2u);
  std::optional<Packet> f1 = Packet::decode(bus.sent[0].second);
  std::optional<Packet> f2 = Packet::decode(bus.sent[1].second);
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  // The shared body makes every member's frame payload bitwise identical,
  // and identical to the legacy whole-message encoding.
  EXPECT_EQ(f1->payload, f2->payload);
  EXPECT_EQ(f1->payload, BusMessage::deliver(e, matched).encode());
}

// ---- Bootstrap factory.

TEST(ProxyFactory, DefaultsToForwardingProxy) {
  SimExecutor ex;
  FakeBus bus(ex);
  ProxyFactory factory;
  auto proxy = factory.create(bus, MemberInfo{ServiceId(1), "unknown", "r"});
  EXPECT_NE(dynamic_cast<ForwardingProxy*>(proxy.get()), nullptr);
}

TEST(ProxyFactory, LongestPrefixWins) {
  SimExecutor ex;
  FakeBus bus(ex);
  ProxyFactory factory;
  std::string chosen;
  factory.register_type("sensor.", [&](BusPort& b, const MemberInfo& i) {
    chosen = "generic";
    return std::make_unique<ForwardingProxy>(b, i);
  });
  factory.register_type("sensor.ecg", [&](BusPort& b, const MemberInfo& i) {
    chosen = "specific";
    return std::make_unique<ForwardingProxy>(b, i);
  });

  (void)factory.create(bus, MemberInfo{ServiceId(1), "sensor.temp", "r"});
  EXPECT_EQ(chosen, "generic");
  (void)factory.create(bus, MemberInfo{ServiceId(2), "sensor.ecg", "r"});
  EXPECT_EQ(chosen, "specific");
  EXPECT_EQ(factory.registered_types(), 2u);
}

TEST(ProxyFactory, CustomDefault) {
  SimExecutor ex;
  FakeBus bus(ex);
  ProxyFactory factory;
  bool used = false;
  factory.set_default([&](BusPort& b, const MemberInfo& i) {
    used = true;
    return std::make_unique<ForwardingProxy>(b, i);
  });
  (void)factory.create(bus, MemberInfo{ServiceId(1), "whatever", "r"});
  EXPECT_TRUE(used);
}

}  // namespace
}  // namespace amuse
