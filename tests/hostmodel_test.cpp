// Host cost-model tests: the calibrated profiles must reproduce the paper's
// anchor numbers (§V) to first order, since Figure 4's shape rests on them.
#include <gtest/gtest.h>

#include "hostmodel/profiles.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

TEST(CostModel, SendCostScalesWithCopies) {
  CostModel m;
  m.per_packet_send = milliseconds(10);
  m.per_byte_copy = microseconds(1);
  m.send_copies = 2;
  EXPECT_EQ(m.send_cost(0), milliseconds(10));
  EXPECT_EQ(m.send_cost(1000), milliseconds(10) + microseconds(2000));
}

TEST(CostModel, RecvCostIndependentOfSendConfig) {
  CostModel m;
  m.per_packet_recv = milliseconds(5);
  m.per_byte_copy = microseconds(2);
  m.recv_copies = 3;
  m.send_copies = 99;  // must not affect recv
  EXPECT_EQ(m.recv_cost(100), milliseconds(5) + microseconds(600));
}

TEST(CostModel, CopyCostHelper) {
  CostModel m;
  m.per_byte_copy = microseconds(1);
  EXPECT_EQ(m.copy_cost(500, 3), microseconds(1500));
  EXPECT_EQ(m.copy_cost(500, 0), Duration{});
}

TEST(BusCostModel, PublishCostComposition) {
  CostModel host;
  host.per_byte_copy = microseconds(1);
  BusCostModel b;
  b.match_fixed = milliseconds(1);
  b.match_per_subscription = microseconds(10);
  b.translate_fixed = milliseconds(2);
  b.translate_per_byte = microseconds(3);
  b.extra_copies = 2;
  Duration cost = b.publish_cost(100, 5, host);
  EXPECT_EQ(cost, milliseconds(1) + microseconds(50) + milliseconds(2) +
                      microseconds(300) + microseconds(200));
}

TEST(Profiles, SienaBusCostsDominateCBusCosts) {
  BusCostModel c = profiles::c_bus_costs();
  BusCostModel s = profiles::siena_bus_costs();
  CostModel pda = profiles::pda_ipaq_hx4700();
  for (std::size_t bytes : {0u, 500u, 2000u, 5000u}) {
    EXPECT_GT(s.publish_cost(bytes, 2, pda), c.publish_cost(bytes, 2, pda))
        << bytes;
  }
  // The gap grows with payload (translation is per-byte).
  Duration gap_small = s.publish_cost(100, 2, pda) - c.publish_cost(100, 2, pda);
  Duration gap_large =
      s.publish_cost(5000, 2, pda) - c.publish_cost(5000, 2, pda);
  EXPECT_GT(gap_large, gap_small + milliseconds(100));
}

TEST(Profiles, PdaIsMuchSlowerThanLaptop) {
  CostModel pda = profiles::pda_ipaq_hx4700();
  CostModel laptop = profiles::laptop_p3_1200();
  EXPECT_GT(pda.send_cost(1000), 4 * laptop.send_cost(1000));
  EXPECT_GT(pda.recv_cost(1000), 4 * laptop.recv_cost(1000));
}

TEST(Profiles, CalibrationAnchorZeroByteResponse) {
  // §V / Figure 4(a): C-based response at ~0 B ≈ 45 ms. The PDA handles
  // three packets on the forward path (publish recv, ack send, event
  // send); add two link traversals (~1.45 ms each) and mean scheduling
  // jitter. Check the deterministic terms land in the calibrated band.
  CostModel pda = profiles::pda_ipaq_hx4700();
  CostModel laptop = profiles::laptop_p3_1200();
  BusCostModel cbus = profiles::c_bus_costs();
  Duration cpu_total = laptop.send_cost(0) + pda.recv_cost(0) +
                       cbus.publish_cost(0, 1, pda) +
                       pda.send_cost(0) /* ack to publisher */ +
                       pda.send_cost(0) /* event to subscriber */ +
                       laptop.recv_cost(0);
  double ms = to_millis(cpu_total) + 2 * 1.45 /* links */ +
              3 * to_millis(pda.sched_jitter_max) / 2 /* mean jitter */;
  EXPECT_GT(ms, 38.0);
  EXPECT_LT(ms, 52.0);
}

TEST(SimHost, ChargeSerialisesWork) {
  SimHost host("h", profiles::ideal_host(), 1, 7);
  CostModel m;  // ideal: no jitter
  (void)m;
  TimePoint t0{seconds(0)};
  TimePoint done1 = host.charge(t0, milliseconds(10));
  EXPECT_EQ(done1, TimePoint(milliseconds(10)));
  // Work arriving while busy queues behind.
  TimePoint done2 = host.charge(TimePoint(milliseconds(5)), milliseconds(10));
  EXPECT_EQ(done2, TimePoint(milliseconds(20)));
  // Work arriving after idle starts immediately.
  TimePoint done3 = host.charge(TimePoint(milliseconds(100)), milliseconds(1));
  EXPECT_EQ(done3, TimePoint(milliseconds(101)));
  EXPECT_EQ(host.busy_time(), milliseconds(21));
}

TEST(SimHost, JitterAddsBoundedNoise) {
  CostModel m;
  m.sched_jitter_max = milliseconds(2);
  SimHost host("h", m, 1, 7);
  for (int i = 0; i < 100; ++i) {
    TimePoint t{seconds(i)};
    TimePoint done = host.charge(t, milliseconds(1));
    Duration took = done - t;
    EXPECT_GE(took, milliseconds(1));
    EXPECT_LT(took, milliseconds(3) + microseconds(1));
  }
}

}  // namespace
}  // namespace amuse
