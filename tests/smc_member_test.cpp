// SmcMember tests: the member-side runtime — endpoint muxing, durable
// subscriptions across purge/re-join cycles, offline publish buffering.
#include "smc/member.hpp"

#include <gtest/gtest.h>

#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "smc/cell.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

const Bytes kPsk = to_bytes("member-test-key");

struct MemberFixture : ::testing::Test {
  MemberFixture() : net(ex, 7) {
    net.set_default_link(profiles::usb_ip_link());
    core = &net.add_host("core", profiles::ideal_host());
    dev = &net.add_host("device", profiles::ideal_host());

    SmcCellConfig cfg;
    cfg.name = "cell";
    cfg.pre_shared_key = kPsk;
    cfg.discovery.beacon_interval = milliseconds(400);
    cfg.discovery.heartbeat_interval = milliseconds(400);
    cfg.discovery.suspect_after = seconds(2);
    cfg.discovery.purge_after = seconds(4);
    cfg.discovery.sweep_interval = milliseconds(200);
    cell = std::make_unique<SelfManagedCell>(ex, net.create_endpoint(*core),
                                             net.create_endpoint(*core), cfg);
    cell->start();
  }

  std::unique_ptr<SmcMember> make_member(const std::string& type,
                                         const std::string& role) {
    SmcMemberConfig cfg;
    cfg.agent.cell_name = "cell";
    cfg.agent.pre_shared_key = kPsk;
    cfg.agent.device_type = type;
    cfg.agent.role = role;
    cfg.agent.cell_lost_after = seconds(2);
    return std::make_unique<SmcMember>(ex, net.create_endpoint(*dev), cfg);
  }

  SimExecutor ex;
  SimNetwork net;
  SimHost* core = nullptr;
  SimHost* dev = nullptr;
  std::unique_ptr<SelfManagedCell> cell;
};

TEST_F(MemberFixture, JoinsAndExchangesEvents) {
  auto alice = make_member("console.a", "nurse");
  auto bob = make_member("console.b", "nurse");
  std::vector<std::int64_t> got;
  bob->subscribe(Filter::for_type("chat"),
                 [&](const Event& e) { got.push_back(e.get_int("n")); });
  alice->start();
  bob->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(alice->joined());
  ASSERT_TRUE(bob->joined());

  for (int i = 0; i < 5; ++i) alice->publish(Event("chat", {{"n", i}}));
  ex.run_for(seconds(2));
  EXPECT_EQ(got, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST_F(MemberFixture, SubscriptionsBeforeJoinAreRegisteredOnJoin) {
  auto m = make_member("svc", "service");
  int got = 0;
  m->subscribe(Filter::for_type("t"), [&](const Event&) { ++got; });
  m->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(m->joined());
  cell->bus().publish_local(Event("t"));
  ex.run_for(seconds(1));
  EXPECT_EQ(got, 1);
}

TEST_F(MemberFixture, OfflinePublishesBufferedAndFlushedOnJoin) {
  auto m = make_member("svc", "service");
  int seen = 0;
  cell->bus().subscribe_local(Filter::for_type("queued"),
                              [&](const Event&) { ++seen; });
  // Publish before start: buffered.
  EXPECT_TRUE(m->publish(Event("queued")));
  EXPECT_TRUE(m->publish(Event("queued")));
  EXPECT_EQ(m->stats().buffered, 2u);
  m->start();
  ex.run_for(seconds(3));
  EXPECT_EQ(m->stats().flushed, 2u);
  EXPECT_EQ(seen, 2);
}

TEST_F(MemberFixture, OfflineBufferBoundDropsExcess) {
  SmcMemberConfig cfg;
  cfg.agent.cell_name = "cell";
  cfg.agent.pre_shared_key = kPsk;
  cfg.offline_buffer = 3;
  SmcMember m(ex, net.create_endpoint(*dev), cfg);
  for (int i = 0; i < 5; ++i) (void)m.publish(Event("x"));
  EXPECT_EQ(m.stats().buffered, 3u);
  EXPECT_EQ(m.stats().buffer_dropped, 2u);
}

TEST_F(MemberFixture, SubscriptionsSurvivePurgeAndRejoin) {
  auto m = make_member("svc", "service");
  int got = 0;
  m->subscribe(Filter::for_type("durable"), [&](const Event&) { ++got; });
  m->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(m->joined());
  ASSERT_EQ(m->stats().joins, 1u);

  // Roam out of range long enough to be purged (purge_after = 4 s).
  dev->set_up(false);
  ex.run_for(seconds(6));
  EXPECT_FALSE(cell->bus().has_member(m->id()));

  dev->set_up(true);
  ex.run_for(seconds(6));
  ASSERT_TRUE(m->joined());
  EXPECT_GE(m->stats().joins, 2u);

  cell->bus().publish_local(Event("durable"));
  ex.run_for(seconds(2));
  EXPECT_EQ(got, 1);
}

TEST_F(MemberFixture, UnsubscribeIsDurableToo) {
  auto m = make_member("svc", "service");
  int got = 0;
  std::uint64_t id =
      m->subscribe(Filter::for_type("t"), [&](const Event&) { ++got; });
  m->start();
  ex.run_for(seconds(3));
  m->unsubscribe(id);
  ex.run_for(seconds(1));
  cell->bus().publish_local(Event("t"));
  ex.run_for(seconds(1));
  EXPECT_EQ(got, 0);

  // After a purge/rejoin cycle the unsubscribed filter must not return.
  dev->set_up(false);
  ex.run_for(seconds(6));
  dev->set_up(true);
  ex.run_for(seconds(6));
  ASSERT_TRUE(m->joined());
  cell->bus().publish_local(Event("t"));
  ex.run_for(seconds(1));
  EXPECT_EQ(got, 0);
}

TEST_F(MemberFixture, GracefulLeaveFiresCallbacks) {
  auto m = make_member("svc", "service");
  bool joined_cb = false;
  bool left_cb = false;
  m->set_on_joined([&] { joined_cb = true; });
  m->set_on_left([&] { left_cb = true; });
  m->start();
  ex.run_for(seconds(3));
  ASSERT_TRUE(joined_cb);
  m->leave();
  ex.run_for(seconds(1));
  EXPECT_TRUE(left_cb);
  EXPECT_FALSE(m->joined());
  EXPECT_EQ(m->client(), nullptr);
  EXPECT_FALSE(cell->bus().has_member(m->id()));
}

}  // namespace
}  // namespace amuse
