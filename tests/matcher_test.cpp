// Matching-engine tests: identical semantics across BruteForceMatcher,
// SienaMatcher (poset) and FastForwardMatcher (counting algorithm) —
// including a randomised equivalence property test, plus structure-specific
// invariants for the Siena poset.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "pubsub/brute_matcher.hpp"
#include "pubsub/fastforward_matcher.hpp"
#include "pubsub/siena_matcher.hpp"

namespace amuse {
namespace {

std::unique_ptr<Matcher> make(const std::string& name) {
  if (name == "brute") return std::make_unique<BruteForceMatcher>();
  if (name == "siena") return std::make_unique<SienaMatcher>();
  return std::make_unique<FastForwardMatcher>();
}

std::vector<SubId> match_sorted(const Matcher& m, const Event& e) {
  std::vector<SubId> out;
  m.match(e, out);
  std::sort(out.begin(), out.end());
  return out;
}

class EveryMatcher : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryMatcher, BasicAddMatchRemove) {
  auto m = make(GetParam());
  Filter hr = Filter::for_type("vitals.heartrate");
  Filter all_vitals = Filter::for_type_prefix("vitals.");
  m->add(1, hr);
  m->add(2, all_vitals);
  EXPECT_EQ(m->size(), 2u);

  Event e("vitals.heartrate", {{"hr", 80}});
  EXPECT_EQ(match_sorted(*m, e), (std::vector<SubId>{1, 2}));

  Event spo2("vitals.spo2");
  EXPECT_EQ(match_sorted(*m, spo2), (std::vector<SubId>{2}));

  m->remove(2);
  EXPECT_EQ(m->size(), 1u);
  EXPECT_EQ(match_sorted(*m, spo2), (std::vector<SubId>{}));
  EXPECT_EQ(match_sorted(*m, e), (std::vector<SubId>{1}));
}

TEST_P(EveryMatcher, EmptyFilterMatchesEverything) {
  auto m = make(GetParam());
  m->add(7, Filter());
  EXPECT_EQ(match_sorted(*m, Event("anything")), (std::vector<SubId>{7}));
  Event empty;
  EXPECT_EQ(match_sorted(*m, empty), (std::vector<SubId>{7}));
}

TEST_P(EveryMatcher, ReAddReplacesFilter) {
  auto m = make(GetParam());
  m->add(1, Filter::for_type("a"));
  m->add(1, Filter::for_type("b"));
  EXPECT_EQ(m->size(), 1u);
  EXPECT_TRUE(match_sorted(*m, Event("a")).empty());
  EXPECT_EQ(match_sorted(*m, Event("b")), (std::vector<SubId>{1}));
}

TEST_P(EveryMatcher, RemoveUnknownIsNoop) {
  auto m = make(GetParam());
  m->add(1, Filter::for_type("a"));
  m->remove(99);
  EXPECT_EQ(m->size(), 1u);
}

TEST_P(EveryMatcher, NumericRangeConstraints) {
  auto m = make(GetParam());
  Filter f;
  f.where("hr", Op::kGe, 60).where("hr", Op::kLe, 100);
  m->add(5, f);
  Event in("t");
  in.set("hr", 72);
  Event lo("t");
  lo.set("hr", 59.5);
  Event hi("t");
  hi.set("hr", 101);
  EXPECT_EQ(match_sorted(*m, in), (std::vector<SubId>{5}));
  EXPECT_TRUE(match_sorted(*m, lo).empty());
  EXPECT_TRUE(match_sorted(*m, hi).empty());
}

TEST_P(EveryMatcher, EveryOperatorWorks) {
  auto m = make(GetParam());
  SubId id = 1;
  auto add1 = [&](const char* attr, Op op, Value v) {
    Filter f;
    f.where(attr, op, std::move(v));
    m->add(id++, f);
  };
  add1("n", Op::kEq, 5);        // 1
  add1("n", Op::kNe, 5);        // 2
  add1("n", Op::kLt, 5);        // 3
  add1("n", Op::kLe, 5);        // 4
  add1("n", Op::kGt, 5);        // 5
  add1("n", Op::kGe, 5);        // 6
  add1("s", Op::kPrefix, "ab"); // 7
  add1("s", Op::kSuffix, "yz"); // 8
  add1("s", Op::kContains, "mid"); // 9
  add1("n", Op::kExists, Value());  // 10

  Event e;
  e.set("n", 5).set("s", "ab-mid-yz");
  EXPECT_EQ(match_sorted(*m, e), (std::vector<SubId>{1, 4, 6, 7, 8, 9, 10}));

  Event e2;
  e2.set("n", 4).set("s", "nope");
  EXPECT_EQ(match_sorted(*m, e2), (std::vector<SubId>{2, 3, 4, 10}));
}

TEST_P(EveryMatcher, StringOrderingConstraints) {
  auto m = make(GetParam());
  Filter f;
  f.where("w", Op::kGe, "m");
  m->add(1, f);
  Event lo;
  lo.set("w", "apple");
  Event hi;
  hi.set("w", "zebra");
  EXPECT_TRUE(match_sorted(*m, lo).empty());
  EXPECT_EQ(match_sorted(*m, hi), (std::vector<SubId>{1}));
}

TEST_P(EveryMatcher, MixedIntDoubleMatching) {
  auto m = make(GetParam());
  Filter f;
  f.where("x", Op::kEq, 3);  // int constraint
  m->add(1, f);
  Event e;
  e.set("x", 3.0);  // double event value
  EXPECT_EQ(match_sorted(*m, e), (std::vector<SubId>{1}));
}

INSTANTIATE_TEST_SUITE_P(Engines, EveryMatcher,
                         ::testing::Values("brute", "siena", "fastforward"));

// ---- Randomised equivalence: all three engines agree with each other
// under random subscription churn and random events.

class MatcherEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

Filter random_filter(Rng& rng) {
  static const char* kAttrs[] = {"type", "hr", "spo2", "member", "note"};
  static const Op kOps[] = {Op::kEq,     Op::kNe,     Op::kLt,
                            Op::kLe,     Op::kGt,     Op::kGe,
                            Op::kPrefix, Op::kSuffix, Op::kContains,
                            Op::kExists};
  Filter f;
  int n = 1 + static_cast<int>(rng.bounded(3));
  for (int i = 0; i < n; ++i) {
    const char* attr = kAttrs[rng.bounded(5)];
    Op op = kOps[rng.bounded(10)];
    Value v;
    if (rng.chance(0.5)) {
      v = Value(static_cast<std::int64_t>(rng.uniform_int(0, 8)));
    } else {
      static const char* kStrs[] = {"a", "ab", "abc", "b", "vitals.",
                                    "vitals.hr"};
      v = Value(kStrs[rng.bounded(6)]);
    }
    f.where(attr, op, std::move(v));
  }
  return f;
}

Event random_event(Rng& rng) {
  static const char* kAttrs[] = {"type", "hr", "spo2", "member", "note"};
  Event e;
  int n = 1 + static_cast<int>(rng.bounded(4));
  for (int i = 0; i < n; ++i) {
    const char* attr = kAttrs[rng.bounded(5)];
    if (rng.chance(0.5)) {
      e.set(attr, static_cast<std::int64_t>(rng.uniform_int(0, 8)));
    } else {
      static const char* kStrs[] = {"a", "ab", "abc", "vitals.hr",
                                    "vitals.spo2"};
      e.set(attr, kStrs[rng.bounded(5)]);
    }
  }
  return e;
}

TEST_P(MatcherEquivalence, AllEnginesAgreeUnderChurn) {
  Rng rng(GetParam());
  BruteForceMatcher brute;
  SienaMatcher siena;
  FastForwardMatcher fast;
  std::vector<SubId> live;
  SubId next = 1;

  for (int round = 0; round < 300; ++round) {
    double roll = rng.uniform();
    if (roll < 0.5 || live.empty()) {
      Filter f = random_filter(rng);
      SubId id = next++;
      brute.add(id, f);
      siena.add(id, f);
      fast.add(id, f);
      live.push_back(id);
    } else if (roll < 0.65) {
      std::size_t idx = rng.bounded(static_cast<std::uint32_t>(live.size()));
      SubId id = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      brute.remove(id);
      siena.remove(id);
      fast.remove(id);
    } else {
      Event e = random_event(rng);
      auto expect = match_sorted(brute, e);
      EXPECT_EQ(match_sorted(siena, e), expect)
          << "siena diverged at round " << round << " on " << e.to_string();
      EXPECT_EQ(match_sorted(fast, e), expect)
          << "fastforward diverged at round " << round << " on "
          << e.to_string();
    }
    ASSERT_TRUE(siena.check_invariants()) << "round " << round;
  }
  EXPECT_EQ(brute.size(), live.size());
  EXPECT_EQ(siena.size(), live.size());
  EXPECT_EQ(fast.size(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// ---- Siena poset structure.

TEST(SienaPoset, GeneralFiltersBecomeAncestors) {
  SienaMatcher m;
  Filter any;                                  // covers everything
  Filter vitals = Filter::for_type_prefix("vitals.");
  Filter hr = Filter::for_type("vitals.heartrate");
  m.add(3, hr);
  m.add(2, vitals);
  m.add(1, any);
  EXPECT_TRUE(m.check_invariants());
  EXPECT_EQ(m.root_count(), 1u);  // `any` covers the rest
}

TEST(SienaPoset, RemovalSplicesChildren) {
  SienaMatcher m;
  Filter any;
  Filter vitals = Filter::for_type_prefix("vitals.");
  Filter hr = Filter::for_type("vitals.heartrate");
  m.add(1, any);
  m.add(2, vitals);
  m.add(3, hr);
  m.remove(2);  // middle of the chain
  EXPECT_TRUE(m.check_invariants());
  Event e("vitals.heartrate");
  std::vector<SubId> out;
  m.match(e, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<SubId>{1, 3}));
}

TEST(SienaPoset, RemovingRootPromotesChildren) {
  SienaMatcher m;
  Filter any;
  Filter a = Filter::for_type("a");
  Filter b = Filter::for_type("b");
  m.add(1, any);
  m.add(2, a);
  m.add(3, b);
  EXPECT_EQ(m.root_count(), 1u);
  m.remove(1);
  EXPECT_TRUE(m.check_invariants());
  EXPECT_EQ(m.root_count(), 2u);
  EXPECT_EQ(match_sorted(m, Event("a")), (std::vector<SubId>{2}));
}

TEST(SienaPoset, PruningSkipsCoveredSubtrees) {
  // Matching an event that fails the root filter must not visit children —
  // observable as a correct (empty) result even with deep chains.
  SienaMatcher m;
  Filter broad;
  broad.where("x", Op::kGt, 0);
  Filter mid;
  mid.where("x", Op::kGt, 10);
  Filter tight;
  tight.where("x", Op::kGt, 100);
  m.add(1, broad);
  m.add(2, mid);
  m.add(3, tight);
  Event neg;
  neg.set("x", -5);
  EXPECT_TRUE(match_sorted(m, neg).empty());
  Event fifty;
  fifty.set("x", 50);
  EXPECT_EQ(match_sorted(m, fifty), (std::vector<SubId>{1, 2}));
}

TEST(FastForward, CompactionKeepsSemantics) {
  FastForwardMatcher m;
  for (SubId id = 1; id <= 100; ++id) {
    m.add(id, Filter::for_type("t" + std::to_string(id)));
  }
  // Remove most of them to trigger compaction.
  for (SubId id = 1; id <= 80; ++id) m.remove(id);
  EXPECT_EQ(m.size(), 20u);
  EXPECT_EQ(match_sorted(m, Event("t90")), (std::vector<SubId>{90}));
  EXPECT_TRUE(match_sorted(m, Event("t5")).empty());
}

}  // namespace
}  // namespace amuse
