// Tests for the Siena translation layer — the data conversions whose cost
// the paper blames for the Siena-based bus's slowness (§V).
#include "pubsub/siena_translation.hpp"

#include <gtest/gtest.h>

namespace amuse {
namespace {

TEST(SienaTranslation, EventRoundTripsAllTypes) {
  Event e("alarm.cardiac");
  e.set("i", std::int64_t{-42});
  e.set("d", 36.75);
  e.set("b", true);
  e.set("s", "text with spaces");
  e.set("raw", Bytes{0x00, 0xFF, 0x7F});
  e.set_publisher(ServiceId(0xABCD));
  e.set_publisher_seq(17);
  e.set_timestamp(TimePoint(milliseconds(250)));

  Event back = siena_round_trip(e);
  EXPECT_EQ(back, e);
  EXPECT_EQ(back.publisher(), ServiceId(0xABCD));
  EXPECT_EQ(back.publisher_seq(), 17u);
  EXPECT_EQ(back.timestamp(), TimePoint(milliseconds(250)));
}

TEST(SienaTranslation, DoublePrecisionSurvives) {
  Event e("t");
  e.set("x", 0.1 + 0.2);  // classic non-representable sum
  e.set("y", 1e-300);
  e.set("z", 1.7976931348623157e308);
  Event back = siena_round_trip(e);
  EXPECT_DOUBLE_EQ(back.get_double("x"), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(back.get_double("y"), 1e-300);
  EXPECT_DOUBLE_EQ(back.get_double("z"), 1.7976931348623157e308);
}

TEST(SienaTranslation, StringsWithDelimitersSurvive) {
  Event e("t");
  e.set("tricky", "colons:and:lengths 5:x");
  e.set("empty", "");
  Event back = siena_round_trip(e);
  EXPECT_EQ(back.get_string("tricky"), "colons:and:lengths 5:x");
  EXPECT_EQ(back.get_string("empty"), "");
}

TEST(SienaTranslation, NotificationFormIsStringTyped) {
  Event e("t");
  e.set("hr", 72);
  SienaNotification n = to_siena(e);
  EXPECT_EQ(n.attrs.at("hr"), "int:72");
  EXPECT_EQ(n.attrs.at("type"), "str:1:t");
  EXPECT_TRUE(n.attrs.contains("x-publisher"));
}

TEST(SienaTranslation, MalformedNotificationThrows) {
  SienaNotification bad;
  bad.attrs["x"] = "notatag";
  EXPECT_THROW((void)from_siena(bad), DecodeError);
  bad.attrs["x"] = "str:5:ab";  // wrong length
  EXPECT_THROW((void)from_siena(bad), DecodeError);
  bad.attrs["x"] = "bool:maybe";
  EXPECT_THROW((void)from_siena(bad), DecodeError);
  bad.attrs["x"] = "bytes:2:zz11";
  EXPECT_THROW((void)from_siena(bad), DecodeError);
}

TEST(SienaTranslation, FilterTextRoundTrips) {
  Filter f;
  f.where("type", Op::kPrefix, "vitals.")
      .where("hr", Op::kGt, 120)
      .where("flag", Op::kExists)
      .where("note", Op::kNe, "routine");
  std::string text = to_siena_filter(f);
  Filter back = parse_siena_filter(text);
  EXPECT_EQ(back, f);
}

TEST(SienaTranslation, FilterTextIsHumanReadable) {
  Filter f;
  f.where("hr", Op::kGt, 120);
  EXPECT_EQ(to_siena_filter(f), "hr > int:120");
}

TEST(SienaTranslation, EmptyFilterRoundTrips) {
  Filter f;
  EXPECT_EQ(parse_siena_filter(to_siena_filter(f)), f);
}

TEST(SienaTranslation, MalformedFilterTextThrows) {
  EXPECT_THROW((void)parse_siena_filter("hr"), DecodeError);
  EXPECT_THROW((void)parse_siena_filter("hr ?? int:1"), DecodeError);
  EXPECT_THROW((void)parse_siena_filter("hr >"), DecodeError);
}

TEST(SienaTranslation, RoundTripIsIdempotent) {
  Event e("vitals.heartrate");
  e.set("hr", 71.5);
  e.set("member", std::int64_t{123456});
  Event once = siena_round_trip(e);
  Event twice = siena_round_trip(once);
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace amuse
