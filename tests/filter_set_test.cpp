// FilterSet + covering-relation tests.
//
// covers(f, g) is the foundation federation routing stands on: a cell
// exports the *compacted* union of downstream interests, so a compaction
// bug silently drops events at cell boundaries. Two lines of defence here:
// directed cases for each operator family, and seeded property tests
// (deterministic per invariant I7 — no wall clock, no unseeded randomness)
// checking the semantic contract `covers(f, g) ⇒ match(g) ⊆ match(f)`
// against brute-force evaluation.
#include "pubsub/filter_set.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "pubsub/brute_matcher.hpp"

namespace amuse {
namespace {

// ---- Directed covering cases, one block per operator family.

TEST(Covers, EmptyFilterCoversEverything) {
  Filter anything;
  EXPECT_TRUE(covers(anything, Filter::for_type("alarm.cardiac")));
  EXPECT_TRUE(covers(anything, anything));
  EXPECT_FALSE(covers(Filter::for_type("alarm.cardiac"), anything));
}

TEST(Covers, PrefixFamily) {
  Filter al = Filter::for_type_prefix("al");
  Filter alarm = Filter::for_type_prefix("alarm.");
  Filter cardiac = Filter::for_type("alarm.cardiac");

  EXPECT_TRUE(covers(al, alarm));       // shorter prefix is more general
  EXPECT_FALSE(covers(alarm, al));      // near-miss: the reverse direction
  EXPECT_TRUE(covers(alarm, cardiac));  // prefix covers pinned equality
  EXPECT_FALSE(covers(cardiac, alarm));
  // Near-miss: sibling prefixes overlap on neither side.
  EXPECT_FALSE(covers(Filter::for_type_prefix("vitals."), alarm));
}

TEST(Covers, RangeFamily) {
  auto lt = [](int v) { return Filter().where("x", Op::kLt, v); };
  auto le = [](int v) { return Filter().where("x", Op::kLe, v); };
  auto gt = [](int v) { return Filter().where("x", Op::kGt, v); };
  auto ge = [](int v) { return Filter().where("x", Op::kGe, v); };
  auto eq = [](int v) { return Filter().where("x", Op::kEq, v); };

  EXPECT_TRUE(covers(lt(10), lt(5)));  // wider bound covers tighter
  EXPECT_FALSE(covers(lt(5), lt(10)));
  EXPECT_TRUE(covers(le(5), lt(5)));   // v < 5 ⇒ v ≤ 5
  EXPECT_FALSE(covers(lt(5), le(5)));  // near-miss: 5 itself
  EXPECT_TRUE(covers(ge(5), gt(5)));
  EXPECT_FALSE(covers(gt(5), ge(5)));
  EXPECT_TRUE(covers(le(5), eq(3)));   // equality inside the range
  EXPECT_FALSE(covers(le(5), eq(7)));  // near-miss: outside it
  EXPECT_FALSE(covers(eq(3), le(5)));
  // Near-miss: opposite-facing ranges never cover.
  EXPECT_FALSE(covers(gt(5), lt(5)));
}

TEST(Covers, ExistsFamily) {
  Filter exists = Filter().where("x", Op::kExists);
  EXPECT_TRUE(covers(exists, Filter().where("x", Op::kEq, 3)));
  EXPECT_TRUE(covers(exists, Filter().where("x", Op::kPrefix, "a")));
  EXPECT_FALSE(covers(Filter().where("x", Op::kEq, 3), exists));
  // Near-miss: exists on a *different* attribute.
  EXPECT_FALSE(covers(Filter().where("y", Op::kExists),
                      Filter().where("x", Op::kEq, 3)));
}

TEST(Covers, ConjunctionNeedsEveryConstraintCovered) {
  Filter general =
      Filter().where("type", Op::kPrefix, "alarm.").where("level", Op::kExists);
  Filter specific = Filter()
                        .where("type", Op::kEq, "alarm.cardiac")
                        .where("level", Op::kEq, "high");
  EXPECT_TRUE(covers(general, specific));
  // Near-miss: one general constraint with no specific counterpart.
  Filter no_level = Filter().where("type", Op::kEq, "alarm.cardiac");
  EXPECT_FALSE(covers(general, no_level));
}

// ---- Seeded random universe shared by the property tests. Small pools so
// random filters and events actually collide.

const std::vector<std::string> kAttrs = {"type", "level", "x", "ward"};
const std::vector<std::string> kStrings = {"al",    "alarm",  "alarm.cardiac",
                                           "high",  "low",    "icu",
                                           "ward3", "vitals.ecg"};

Value random_value(Rng& rng) {
  switch (rng.bounded(3)) {
    case 0:
      return Value(static_cast<std::int64_t>(rng.bounded(8)));
    case 1:
      return Value(kStrings[rng.bounded(static_cast<std::uint32_t>(
          kStrings.size()))]);
    default:
      return Value(static_cast<double>(rng.bounded(16)) / 2.0);
  }
}

Constraint random_constraint(Rng& rng) {
  Constraint c;
  c.attribute = kAttrs[rng.bounded(static_cast<std::uint32_t>(kAttrs.size()))];
  c.op = static_cast<Op>(1 + rng.bounded(10));
  if (c.op != Op::kExists) c.value = random_value(rng);
  return c;
}

Filter random_filter(Rng& rng) {
  Filter f;
  auto n = 1 + rng.bounded(3);
  for (std::uint32_t i = 0; i < n; ++i) {
    Constraint c = random_constraint(rng);
    f.where(c.attribute, c.op, c.value);
  }
  return f;
}

Event random_event(Rng& rng) {
  Event e(kStrings[rng.bounded(static_cast<std::uint32_t>(kStrings.size()))]);
  auto n = rng.bounded(4);
  for (std::uint32_t i = 0; i < n; ++i) {
    e.set(kAttrs[rng.bounded(static_cast<std::uint32_t>(kAttrs.size()))],
          random_value(rng));
  }
  return e;
}

/// Weakens one constraint of `g` (or drops one) — a pair that covers()
/// should usually prove, keeping the property test far from vacuous.
Filter weakened(const Filter& g, Rng& rng) {
  Filter f;
  for (std::size_t i = 0; i < g.constraints().size(); ++i) {
    Constraint c = g.constraints()[i];
    if (rng.bounded(3) == 0) continue;  // drop: strictly more general
    if (rng.bounded(2) == 0) c.op = Op::kExists, c.value = Value();
    f.where(c.attribute, c.op, c.value);
  }
  return f;
}

TEST(CoversProperty, CoversImpliesMatchSubset) {
  Rng rng(0x515EA, 7);
  std::size_t covered_pairs = 0;
  std::size_t checked_events = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    Filter g = random_filter(rng);
    // Half the pairs are unrelated random filters (covers() rarely true,
    // but when it claims so it must be right); half are weakened copies.
    Filter f = (iter % 2 == 0) ? random_filter(rng) : weakened(g, rng);
    if (!covers(f, g)) continue;
    ++covered_pairs;
    for (int k = 0; k < 40; ++k) {
      Event e = random_event(rng);
      if (g.matches(e)) {
        ++checked_events;
        ASSERT_TRUE(f.matches(e))
            << "covers claims " << f.to_string() << " ⊇ " << g.to_string()
            << " but it misses an event matching the specific filter";
      }
    }
  }
  // Non-vacuity: the weakened pairs guarantee plenty of positive cases.
  EXPECT_GT(covered_pairs, 500u);
  EXPECT_GT(checked_events, 2000u);
}

// ---- FilterSet canonical form.

TEST(FilterSet, CanonicalOrderIsInsertionIndependent) {
  Filter a = Filter::for_type("a");
  Filter b = Filter::for_type_prefix("b.");
  Filter c = Filter().where("x", Op::kGt, 3);

  FilterSet fwd({a, b, c});
  FilterSet rev({c, b, a, b, a});  // duplicates collapse too
  EXPECT_EQ(fwd, rev);
  EXPECT_EQ(fwd.size(), 3u);
  EXPECT_TRUE(digest_equal(fwd.digest(), rev.digest()));

  FilterSet incremental;
  EXPECT_TRUE(incremental.insert(c));
  EXPECT_TRUE(incremental.insert(a));
  EXPECT_FALSE(incremental.insert(a));  // duplicate: unchanged
  EXPECT_TRUE(incremental.insert(b));
  EXPECT_EQ(incremental, fwd);

  EXPECT_TRUE(incremental.erase(b));
  EXPECT_FALSE(incremental.erase(b));
  EXPECT_FALSE(incremental.contains(b));
  EXPECT_TRUE(incremental.contains(a));
  EXPECT_FALSE(digest_equal(incremental.digest(), fwd.digest()));
}

TEST(FilterSet, DiffPrimitives) {
  FilterSet from({Filter::for_type("a"), Filter::for_type("b")});
  FilterSet to({Filter::for_type("b"), Filter::for_type("c")});
  EXPECT_EQ(from.added_in(to), std::vector<Filter>{Filter::for_type("c")});
  EXPECT_EQ(from.removed_in(to), std::vector<Filter>{Filter::for_type("a")});
  EXPECT_TRUE(to.added_in(to).empty());
  EXPECT_TRUE(to.removed_in(to).empty());
}

TEST(FilterSet, CompactDropsCoveredFilters) {
  FilterSet set({Filter::for_type_prefix("alarm."),
                 Filter::for_type("alarm.cardiac"),
                 Filter::for_type("vitals.ecg"),
                 Filter().where("x", Op::kLt, 10),
                 Filter().where("x", Op::kLt, 5)});
  set.compact();
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(Filter::for_type_prefix("alarm.")));
  EXPECT_TRUE(set.contains(Filter::for_type("vitals.ecg")));
  EXPECT_TRUE(set.contains(Filter().where("x", Op::kLt, 10)));
}

TEST(FilterSet, CompactKeepsOneOfMutuallyCoveringPair) {
  // Same semantics, different constraint order: each covers the other.
  Filter ab = Filter().where("a", Op::kExists).where("b", Op::kExists);
  Filter ba = Filter().where("b", Op::kExists).where("a", Op::kExists);
  ASSERT_TRUE(covers(ab, ba) && covers(ba, ab));
  FilterSet set({ab, ba});
  ASSERT_EQ(set.size(), 2u);  // distinct encodings, both canonical members
  set.compact();
  EXPECT_EQ(set.size(), 1u);
}

TEST(FilterSetProperty, CompactPreservesMatchingAgainstBruteOracle) {
  Rng rng(0xC0417AC7, 3);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<Filter> filters;
    auto n = 1 + rng.bounded(8);
    for (std::uint32_t i = 0; i < n; ++i) filters.push_back(random_filter(rng));

    // Oracle: linear scan over the *original* subscriptions.
    BruteForceMatcher oracle;
    for (std::size_t i = 0; i < filters.size(); ++i) {
      oracle.add(i, filters[i]);
    }

    FilterSet compacted((std::vector<Filter>(filters)));
    compacted.compact();
    ASSERT_LE(compacted.size(), filters.size());

    std::vector<SubId> hits;
    for (int k = 0; k < 60; ++k) {
      Event e = random_event(rng);
      hits.clear();
      oracle.match(e, hits);
      ASSERT_EQ(compacted.matches_any(e), !hits.empty())
          << "compaction changed matching semantics at iter " << iter;
    }
  }
}

}  // namespace
}  // namespace amuse
