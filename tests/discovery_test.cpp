// Discovery tests: authenticated admission, heartbeats, transient-disconnect
// masking (suspect), purge timeouts, graceful leave, and re-join.
#include <gtest/gtest.h>

#include "discovery/discovery_agent.hpp"
#include "discovery/discovery_service.hpp"
#include "hostmodel/profiles.hpp"
#include "net/link_profiles.hpp"
#include "net/sim_network.hpp"
#include "sim/sim_executor.hpp"

namespace amuse {
namespace {

const Bytes kPsk = to_bytes("cell-secret");

struct DiscoveryFixture : ::testing::Test {
  DiscoveryFixture() : net(ex, 42) {
    net.set_default_link(profiles::usb_ip_link());
    core = &net.add_host("core", profiles::ideal_host());
    dev = &net.add_host("device", profiles::ideal_host());

    DiscoveryConfig cfg;
    cfg.cell_name = "ward7";
    cfg.pre_shared_key = kPsk;
    cfg.beacon_interval = milliseconds(500);
    cfg.heartbeat_interval = milliseconds(500);
    cfg.suspect_after = seconds(2);
    cfg.purge_after = seconds(5);
    cfg.sweep_interval = milliseconds(250);
    service = std::make_unique<DiscoveryService>(
        ex, net.create_endpoint(*core), /*bus_id=*/ServiceId(0xB05), cfg);
    service->set_on_new_member(
        [this](const MemberInfo& m) { joined.push_back(m); });
    service->set_on_purge_member(
        [this](ServiceId id) { purged.push_back(id); });
    service->set_on_suspect(
        [this](const MemberInfo& m) { suspects.push_back(m.id); });
    service->set_on_recovered(
        [this](const MemberInfo& m) { recovered.push_back(m.id); });
    service->set_publisher([this](Event e) { events.push_back(std::move(e)); });
  }

  std::unique_ptr<DiscoveryAgent> make_agent(const std::string& type,
                                             const Bytes& psk = kPsk,
                                             const std::string& cell =
                                                 "ward7") {
    DiscoveryAgentConfig cfg;
    cfg.cell_name = cell;
    cfg.pre_shared_key = psk;
    cfg.device_type = type;
    cfg.role = "sensor";
    cfg.cell_lost_after = seconds(3);
    return std::make_unique<DiscoveryAgent>(ex, net.create_endpoint(*dev),
                                            cfg);
  }

  SimExecutor ex;
  SimNetwork net;
  SimHost* core = nullptr;
  SimHost* dev = nullptr;
  std::unique_ptr<DiscoveryService> service;
  std::vector<MemberInfo> joined;
  std::vector<ServiceId> purged;
  std::vector<ServiceId> suspects;
  std::vector<ServiceId> recovered;
  std::vector<Event> events;
};

TEST_F(DiscoveryFixture, DeviceJoinsViaBeaconAndHandshake) {
  auto agent = make_agent("sensor.heartrate");
  bool cb_joined = false;
  agent->set_on_joined([&](ServiceId bus, std::uint32_t session) {
    cb_joined = true;
    EXPECT_EQ(bus, ServiceId(0xB05));
    EXPECT_NE(session, 0u);
  });
  service->start();
  agent->start();
  ex.run_for(seconds(3));

  EXPECT_TRUE(agent->joined());
  EXPECT_TRUE(cb_joined);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].device_type, "sensor.heartrate");
  EXPECT_EQ(joined[0].id, agent->id());
  EXPECT_EQ(service->membership().size(), 1u);

  // A "New Member" event was published.
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].type(), smc_events::kNewMember);
  EXPECT_EQ(events[0].get_string("device_type"), "sensor.heartrate");
}

TEST_F(DiscoveryFixture, WrongKeyIsRejected) {
  auto agent = make_agent("sensor.rogue", to_bytes("wrong-key"));
  service->start();
  agent->start();
  ex.run_for(seconds(5));
  EXPECT_FALSE(agent->joined());
  EXPECT_GE(agent->stats().rejections, 1u);
  EXPECT_EQ(service->membership().size(), 0u);
  EXPECT_GE(service->stats().joins_rejected, 1u);
  EXPECT_TRUE(joined.empty());
}

TEST_F(DiscoveryFixture, ForeignCellBeaconsIgnored) {
  auto agent = make_agent("sensor.x", kPsk, "other-cell");
  service->start();
  agent->start();
  ex.run_for(seconds(3));
  EXPECT_FALSE(agent->joined());
  EXPECT_EQ(agent->stats().beacons_heard, 0u);
}

TEST_F(DiscoveryFixture, HeartbeatsKeepMembershipAlive) {
  auto agent = make_agent("sensor.x");
  service->start();
  agent->start();
  ex.run_for(seconds(20));
  EXPECT_TRUE(agent->joined());
  EXPECT_EQ(service->membership().size(), 1u);
  EXPECT_TRUE(purged.empty());
  EXPECT_TRUE(suspects.empty());
  EXPECT_GT(agent->stats().heartbeats_sent, 10u);
}

TEST_F(DiscoveryFixture, TransientDisconnectIsMaskedNotPurged) {
  auto agent = make_agent("sensor.x");
  service->start();
  agent->start();
  ex.run_for(seconds(2));
  ASSERT_TRUE(agent->joined());

  // "a nurse leaves the room for a short period of time before returning":
  // 3 s of silence — beyond suspect_after (2 s), below purge_after (5 s).
  dev->set_up(false);
  ex.run_for(seconds(3));
  dev->set_up(true);
  ex.run_for(seconds(3));

  EXPECT_EQ(suspects.size(), 1u);
  EXPECT_EQ(recovered.size(), 1u);
  EXPECT_TRUE(purged.empty());
  EXPECT_EQ(service->membership().size(), 1u);
  // Suspect + recovered events were published.
  int suspect_events = 0;
  int recover_events = 0;
  for (const Event& e : events) {
    if (e.type() == smc_events::kSuspectMember) ++suspect_events;
    if (e.type() == smc_events::kRecoveredMember) ++recover_events;
  }
  EXPECT_EQ(suspect_events, 1);
  EXPECT_EQ(recover_events, 1);
}

TEST_F(DiscoveryFixture, LongSilenceLaunchesPurgeMemberEvent) {
  auto agent = make_agent("sensor.x");
  service->start();
  agent->start();
  ex.run_for(seconds(2));
  ASSERT_TRUE(agent->joined());
  ServiceId id = agent->id();

  dev->set_up(false);
  ex.run_for(seconds(8));  // beyond purge_after (5 s)

  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(purged[0], id);
  EXPECT_EQ(service->membership().size(), 0u);
  bool saw_purge_event = false;
  for (const Event& e : events) {
    if (e.type() == smc_events::kPurgeMember) {
      saw_purge_event = true;
      EXPECT_EQ(e.get_string("reason"), "timeout");
    }
  }
  EXPECT_TRUE(saw_purge_event);
}

TEST_F(DiscoveryFixture, DeviceRejoinsAfterPurge) {
  auto agent = make_agent("sensor.x");
  service->start();
  agent->start();
  ex.run_for(seconds(2));
  ASSERT_TRUE(agent->joined());

  dev->set_up(false);
  ex.run_for(seconds(8));
  ASSERT_EQ(purged.size(), 1u);

  dev->set_up(true);
  ex.run_for(seconds(6));  // agent notices loss, searches, re-joins

  EXPECT_TRUE(agent->joined());
  EXPECT_GE(agent->stats().cell_losses, 1u);
  EXPECT_GE(agent->stats().joins, 2u);
  EXPECT_EQ(service->membership().size(), 1u);
  EXPECT_GE(joined.size(), 2u);
}

TEST_F(DiscoveryFixture, GracefulLeavePurgesImmediately) {
  auto agent = make_agent("sensor.x");
  service->start();
  agent->start();
  ex.run_for(seconds(2));
  ASSERT_TRUE(agent->joined());
  agent->leave();
  ex.run_for(seconds(1));
  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(service->stats().leaves, 1u);
  EXPECT_FALSE(agent->joined());
}

TEST_F(DiscoveryFixture, AdministrativePurgeWorks) {
  auto agent = make_agent("sensor.x");
  service->start();
  agent->start();
  ex.run_for(seconds(2));
  ASSERT_TRUE(agent->joined());
  service->purge(agent->id(), "policy decision");
  ASSERT_EQ(purged.size(), 1u);
  bool found = false;
  for (const Event& e : events) {
    if (e.type() == smc_events::kPurgeMember &&
        e.get_string("reason") == "policy decision") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DiscoveryFixture, EvictionNoticeTriggersPromptRejoin) {
  // A member purged while it still believes it is joined (e.g. its silence
  // exceeded purge_after during an outage it never noticed) must not stay
  // deaf: the service answers its next heartbeat with an eviction notice
  // and it re-joins on the following beacon.
  auto agent = make_agent("sensor.x");
  service->start();
  agent->start();
  ex.run_for(seconds(2));
  ASSERT_TRUE(agent->joined());

  service->purge(agent->id(), "administrative");
  ASSERT_FALSE(service->membership().contains(agent->id()));
  // The agent keeps heartbeating; within a heartbeat + beacon interval it
  // must be evicted and re-admitted.
  ex.run_for(seconds(4));
  EXPECT_GE(service->stats().evictions_notified, 1u);
  EXPECT_TRUE(agent->joined());
  EXPECT_GE(agent->stats().joins, 2u);
  EXPECT_TRUE(service->membership().contains(agent->id()));
}

TEST_F(DiscoveryFixture, MultipleDevicesJoinIndependently) {
  auto a1 = make_agent("sensor.heartrate");
  auto a2 = make_agent("sensor.spo2");
  auto a3 = make_agent("console.nurse");
  service->start();
  a1->start();
  a2->start();
  a3->start();
  ex.run_for(seconds(4));
  EXPECT_TRUE(a1->joined());
  EXPECT_TRUE(a2->joined());
  EXPECT_TRUE(a3->joined());
  EXPECT_EQ(service->membership().size(), 3u);
  EXPECT_EQ(joined.size(), 3u);
}

TEST_F(DiscoveryFixture, HandshakeSurvivesPacketLoss) {
  net.set_default_link(profiles::lossy_link(0.3));
  auto agent = make_agent("sensor.x");
  service->start();
  agent->start();
  ex.run_for(seconds(30));
  EXPECT_TRUE(agent->joined());
}

TEST_F(DiscoveryFixture, AdmissionMacBindsIdentityAndType) {
  Bytes nonce = to_bytes("0123456789abcdef");
  Digest256 base = admission_mac(kPsk, nonce, ServiceId(1), "sensor.a");
  EXPECT_FALSE(digest_equal(
      base, admission_mac(kPsk, nonce, ServiceId(2), "sensor.a")));
  EXPECT_FALSE(digest_equal(
      base, admission_mac(kPsk, nonce, ServiceId(1), "sensor.b")));
  EXPECT_FALSE(digest_equal(
      base, admission_mac(to_bytes("other"), nonce, ServiceId(1),
                          "sensor.a")));
  EXPECT_TRUE(digest_equal(
      base, admission_mac(kPsk, nonce, ServiceId(1), "sensor.a")));
}

TEST(Membership, SweepReportsTransitionsWithoutMutating) {
  Membership m;
  MemberInfo info{ServiceId(1), "t", "r"};
  m.admit(info, TimePoint(seconds(0)));

  auto sweep1 = m.sweep(TimePoint(seconds(1)), seconds(2), seconds(5));
  EXPECT_TRUE(sweep1.newly_suspect.empty());
  EXPECT_TRUE(sweep1.to_purge.empty());

  auto sweep2 = m.sweep(TimePoint(seconds(3)), seconds(2), seconds(5));
  ASSERT_EQ(sweep2.newly_suspect.size(), 1u);
  m.mark_suspect(ServiceId(1));
  // Already suspect: not re-reported.
  auto sweep3 = m.sweep(TimePoint(seconds(4)), seconds(2), seconds(5));
  EXPECT_TRUE(sweep3.newly_suspect.empty());

  auto sweep4 = m.sweep(TimePoint(seconds(6)), seconds(2), seconds(5));
  ASSERT_EQ(sweep4.to_purge.size(), 1u);

  // touch() recovers a suspect.
  EXPECT_TRUE(m.touch(ServiceId(1), TimePoint(seconds(6))));
  EXPECT_FALSE(m.touch(ServiceId(1), TimePoint(seconds(7))));
  auto sweep5 = m.sweep(TimePoint(seconds(8)), seconds(2), seconds(5));
  EXPECT_TRUE(sweep5.to_purge.empty());
}

// Boundary semantics: both thresholds are inclusive. Silence exactly equal
// to suspect_after reports the member suspect; exactly equal to purge_after
// purges (and wins over the suspect report — one member never appears in
// both lists).
TEST(Membership, SweepThresholdsAreInclusive) {
  Membership m;
  m.admit(MemberInfo{ServiceId(1), "t", "r"}, TimePoint(seconds(0)));

  // One tick short of suspect_after: nothing reported.
  auto before = m.sweep(TimePoint(seconds(2) - Duration(1)), seconds(2),
                        seconds(5));
  EXPECT_TRUE(before.newly_suspect.empty());
  EXPECT_TRUE(before.to_purge.empty());

  // silence == suspect_after exactly: suspect, not purged.
  auto at_suspect = m.sweep(TimePoint(seconds(2)), seconds(2), seconds(5));
  ASSERT_EQ(at_suspect.newly_suspect.size(), 1u);
  EXPECT_EQ(at_suspect.newly_suspect[0].id, ServiceId(1));
  EXPECT_TRUE(at_suspect.to_purge.empty());

  // One tick short of purge_after: still only suspect-eligible.
  auto before_purge = m.sweep(TimePoint(seconds(5) - Duration(1)), seconds(2),
                              seconds(5));
  EXPECT_TRUE(before_purge.to_purge.empty());

  // silence == purge_after exactly: purged, and not also re-reported
  // suspect.
  auto at_purge = m.sweep(TimePoint(seconds(5)), seconds(2), seconds(5));
  ASSERT_EQ(at_purge.to_purge.size(), 1u);
  EXPECT_EQ(at_purge.to_purge[0].id, ServiceId(1));
  EXPECT_TRUE(at_purge.newly_suspect.empty());
}

// A member may cycle suspect → recovered → suspect indefinitely: each
// recovery resets the silence clock, and each fresh lapse is re-reported as
// newly suspect (the sweep keys off state, not history).
TEST(Membership, SuspectRecoverSuspectCycles) {
  Membership m;
  m.admit(MemberInfo{ServiceId(1), "t", "r"}, TimePoint(seconds(0)));

  for (int cycle = 0; cycle < 3; ++cycle) {
    TimePoint base(seconds(10 * cycle));
    auto lapse = m.sweep(base + seconds(2), seconds(2), seconds(5));
    ASSERT_EQ(lapse.newly_suspect.size(), 1u) << "cycle " << cycle;
    m.mark_suspect(ServiceId(1));
    ASSERT_NE(m.find(ServiceId(1)), nullptr);
    EXPECT_EQ(m.find(ServiceId(1))->state, MemberState::kSuspect);

    // Heartbeat: recovery flips suspect back to active exactly once.
    EXPECT_TRUE(m.touch(ServiceId(1), base + seconds(3)));
    EXPECT_FALSE(m.touch(ServiceId(1), base + seconds(3)));
    EXPECT_EQ(m.find(ServiceId(1))->state, MemberState::kActive);

    // Recovery reset the clock: silence measured from the touch, so the
    // member is clean again until the next full suspect_after elapses.
    auto clean = m.sweep(base + seconds(4), seconds(2), seconds(5));
    EXPECT_TRUE(clean.newly_suspect.empty()) << "cycle " << cycle;
    m.touch(ServiceId(1), base + seconds(8));  // line up the next cycle
  }
}

}  // namespace
}  // namespace amuse
