// Subscription-registry tests: member ↔ matcher bookkeeping and the
// "each interested member exactly once" matching contract.
#include "bus/subscription_registry.hpp"

#include <gtest/gtest.h>

#include "pubsub/fastforward_matcher.hpp"

namespace amuse {
namespace {

ServiceId member_a() { return ServiceId(0xA); }
ServiceId member_b() { return ServiceId(0xB); }

SubscriptionRegistry make_registry() {
  return SubscriptionRegistry(std::make_unique<FastForwardMatcher>());
}

TEST(Registry, MatchGroupsByMember) {
  auto reg = make_registry();
  reg.subscribe(member_a(), 1, Filter::for_type("t"));
  reg.subscribe(member_b(), 9, Filter::for_type("t"));

  SubscriptionRegistry::MatchResult hit;
  reg.match(Event("t"), hit);
  ASSERT_EQ(hit.size(), 2u);
  EXPECT_EQ(hit[member_a()], (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(hit[member_b()], (std::vector<std::uint64_t>{9}));
}

TEST(Registry, MemberListedOncePerEventWithAllMatchingSubs) {
  auto reg = make_registry();
  // Two overlapping subscriptions from one member: the member must appear
  // once, with both local ids — the bus then delivers the event once.
  reg.subscribe(member_a(), 1, Filter::for_type("vitals.heartrate"));
  reg.subscribe(member_a(), 2, Filter::for_type_prefix("vitals."));
  SubscriptionRegistry::MatchResult hit;
  reg.match(Event("vitals.heartrate"), hit);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[member_a()], (std::vector<std::uint64_t>{1, 2}));
}

TEST(Registry, ResubscribeReplacesFilter) {
  auto reg = make_registry();
  reg.subscribe(member_a(), 1, Filter::for_type("old"));
  reg.subscribe(member_a(), 1, Filter::for_type("new"));
  EXPECT_EQ(reg.size(), 1u);
  SubscriptionRegistry::MatchResult hit;
  reg.match(Event("old"), hit);
  EXPECT_TRUE(hit.empty());
  reg.match(Event("new"), hit);
  EXPECT_EQ(hit[member_a()], (std::vector<std::uint64_t>{1}));
}

TEST(Registry, UnsubscribeRemovesOnlyThatSubscription) {
  auto reg = make_registry();
  reg.subscribe(member_a(), 1, Filter::for_type("t"));
  reg.subscribe(member_a(), 2, Filter::for_type("t"));
  reg.unsubscribe(member_a(), 1);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.member_subscriptions(member_a()), 1u);
  SubscriptionRegistry::MatchResult hit;
  reg.match(Event("t"), hit);
  EXPECT_EQ(hit[member_a()], (std::vector<std::uint64_t>{2}));
}

TEST(Registry, UnsubscribeUnknownIsNoop) {
  auto reg = make_registry();
  reg.unsubscribe(member_a(), 1);
  reg.subscribe(member_a(), 1, Filter::for_type("t"));
  reg.unsubscribe(member_a(), 99);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, RemoveMemberDropsEverything) {
  auto reg = make_registry();
  reg.subscribe(member_a(), 1, Filter::for_type("t"));
  reg.subscribe(member_a(), 2, Filter::for_type_prefix("t"));
  reg.subscribe(member_b(), 1, Filter::for_type("t"));
  reg.remove_member(member_a());
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.member_subscriptions(member_a()), 0u);
  SubscriptionRegistry::MatchResult hit;
  reg.match(Event("t"), hit);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_TRUE(hit.contains(member_b()));
}

TEST(Registry, AllFiltersExportsEverything) {
  auto reg = make_registry();
  reg.subscribe(member_a(), 1, Filter::for_type("a"));
  reg.subscribe(member_b(), 1, Filter::for_type("b"));
  std::vector<Filter> filters = reg.all_filters();
  EXPECT_EQ(filters.size(), 2u);
}

TEST(Registry, LocalIdsIndependentAcrossMembers) {
  auto reg = make_registry();
  reg.subscribe(member_a(), 1, Filter::for_type("a"));
  reg.subscribe(member_b(), 1, Filter::for_type("b"));
  EXPECT_EQ(reg.size(), 2u);
  reg.unsubscribe(member_a(), 1);
  // member_b's local id 1 must be untouched.
  SubscriptionRegistry::MatchResult hit;
  reg.match(Event("b"), hit);
  EXPECT_EQ(hit[member_b()], (std::vector<std::uint64_t>{1}));
}

}  // namespace
}  // namespace amuse
