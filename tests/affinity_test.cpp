// Executor-affinity runtime assertions and the amuse::Mutex wrappers
// (DESIGN.md §10).
//
// The static layers (clang -Wthread-safety over the capability wrappers;
// scripts/check_affinity.py over the AMUSE_AFFINITY call graph) prove the
// threading model at analysis time. This suite pins the *dynamic* layer:
//   - a foreign thread calling into executor-owned protocol state while
//     the run loop is live aborts with "affinity violation" (death test);
//   - the same call is fine from the consumer thread (a posted task) and
//     fine while no loop is running (single-threaded setup/teardown);
//   - the Mutex/MutexLock/CondVar wrappers behave like the std primitives
//     they replaced (mutual exclusion and wait/notify handshakes), so the
//     concurrency stress suite keeps its tsan coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "net/udp_transport.hpp"
#include "sim/real_executor.hpp"
#include "wire/reliable_channel.hpp"

namespace amuse {
namespace {

struct ChannelFixture {
  RealExecutor ex;
  std::vector<Packet> wire;
  ReliableChannel channel;

  ChannelFixture()
      : channel(ex, ServiceId::from_addr_port(0x7F000001u, 1111),
                ServiceId::from_addr_port(0x7F000001u, 2222),
                /*session=*/7, ReliableChannelConfig{},
                [this](const Packet& p) { wire.push_back(p); },
                [](BytesView) {}) {}
};

#if defined(AMUSE_AFFINITY_ASSERTS) && defined(GTEST_HAS_DEATH_TEST)

TEST(AffinityDeathTest, ForeignThreadCallAbortsWhileLoopRuns) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ChannelFixture f;
        std::thread consumer([&f] { f.ex.run_for(seconds(30)); });
        // Wait until the consumer thread owns the loop: from that moment
        // this thread is provably foreign.
        while (f.ex.on_executor_thread()) {
          std::this_thread::yield();
        }
        // BUG under test: touching channel state from a foreign thread
        // while the loop runs. Must abort before corrupting anything.
        (void)f.channel.send(to_bytes("cross-thread"));
        consumer.join();
      },
      "affinity violation");
}

#endif  // AMUSE_AFFINITY_ASSERTS && GTEST_HAS_DEATH_TEST

TEST(Affinity, PostedCallRunsOnConsumerThreadWithoutAborting) {
  ChannelFixture f;
  std::atomic<bool> sent{false};
  // The sanctioned hop: post() the call; it executes inside the loop on
  // the consumer thread, where on_executor_thread() is true.
  f.ex.post([&f, &sent] {
    EXPECT_TRUE(f.ex.on_executor_thread());
    EXPECT_TRUE(f.channel.send(to_bytes("hopped")));
    sent = true;
    f.ex.stop();
  });
  f.ex.run_for(seconds(30));
  EXPECT_TRUE(sent.load());
  EXPECT_FALSE(f.wire.empty());
}

TEST(Affinity, IdleLoopCallsAreAllowedFromAnyThread) {
  // Test drivers and setup/teardown code call protocol methods while no
  // loop is running — single-threaded phases are always legal.
  ChannelFixture f;
  EXPECT_TRUE(f.ex.on_executor_thread());
  EXPECT_TRUE(f.channel.send(to_bytes("setup-phase")));

  std::thread other([&f] {
    // Still legal: the loop is not running, so there is no consumer
    // thread to conflict with (the checker can only prove violations).
    EXPECT_TRUE(f.ex.on_executor_thread());
  });
  other.join();
}

TEST(Affinity, LoopThreadIdentityTracksNestedRuns) {
  RealExecutor ex;
  std::atomic<bool> inner_ok{false};
  ex.post([&] {
    EXPECT_TRUE(ex.on_executor_thread());
    inner_ok = true;
    ex.stop();
  });
  ex.run_for(seconds(30));
  EXPECT_TRUE(inner_ok.load());
  // After the loop exits, the executor is idle again.
  EXPECT_TRUE(ex.on_executor_thread());
}

// ---------------------------------------------------------------------------
// amuse::Mutex / MutexLock / CondVar behave like the std primitives they
// replaced (the capability annotations are compile-time only).
// ---------------------------------------------------------------------------

struct GuardedCounter {
  Mutex mu;
  int value AMUSE_GUARDED_BY(mu) = 0;
};

TEST(MutexWrappers, MutualExclusionAcrossThreads) {
  GuardedCounter g;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(g.mu);
        ++g.value;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(g.mu);
  EXPECT_EQ(g.value, kThreads * kIncrements);
}

TEST(MutexWrappers, CondVarWaitNotifyHandshake) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(MutexWrappers, CondVarWaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // Nothing ever notifies: wait_until must return at the deadline instead
  // of blocking forever (the RealExecutor loop leans on this).
  cv.wait_until(lock,
                std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(10));
  SUCCEED();
}

// ---------------------------------------------------------------------------
// UdpTransport wire counters (the satellite audit): monotonic relaxed
// totals visible from any thread.
// ---------------------------------------------------------------------------

TEST(UdpTransportStatsTest, CountersTrackSendAndReceive) {
  RealExecutor ex;
  UdpOptions opts;
  opts.broadcast_port = 46911;
  std::unique_ptr<UdpTransport> a;
  std::unique_ptr<UdpTransport> b;
  try {
    a = UdpTransport::open(ex, opts);
    b = UdpTransport::open(ex, opts);
  } catch (const std::system_error&) {
    GTEST_SKIP() << "UDP sockets unavailable in this sandbox";
  }

  std::atomic<int> got{0};
  b->set_receive_handler([&](ServiceId, BytesView) {
    got.fetch_add(1);
    ex.stop();
  });
  const Bytes payload = to_bytes("count me");
  a->send(b->local_id(), payload);
  ex.run_for(seconds(5));
  ASSERT_EQ(got.load(), 1);

  UdpTransportStats sent = a->stats();
  EXPECT_EQ(sent.datagrams_sent, 1u);
  EXPECT_EQ(sent.send_failures, 0u);

  UdpTransportStats recv = b->stats();
  EXPECT_GE(recv.datagrams_received, 1u);
  EXPECT_GE(recv.bytes_received, payload.size());
}

}  // namespace
}  // namespace amuse
