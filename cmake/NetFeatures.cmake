# Platform feature probes for the real-network datapath (DESIGN.md §12).
#
# recvmmsg()/sendmmsg() batch many datagrams into one syscall — the core of
# the kernel-rate UDP path. They are Linux-specific (glibc/musl export them
# under _GNU_SOURCE); macOS and other BSDs don't have them, so UdpTransport
# keeps a portable recvfrom/sendto fallback compiled whenever the probe
# fails. The probe result is exported as AMUSE_HAVE_MMSG on the shared
# amuse_build_flags interface target so every consumer sees one consistent
# configuration.
include(CheckCXXSymbolExists)

set(CMAKE_REQUIRED_DEFINITIONS -D_GNU_SOURCE)
check_cxx_symbol_exists(recvmmsg "sys/socket.h" AMUSE_HAVE_RECVMMSG)
check_cxx_symbol_exists(sendmmsg "sys/socket.h" AMUSE_HAVE_SENDMMSG)
unset(CMAKE_REQUIRED_DEFINITIONS)

if(AMUSE_HAVE_RECVMMSG AND AMUSE_HAVE_SENDMMSG)
  target_compile_definitions(amuse_build_flags INTERFACE AMUSE_HAVE_MMSG=1)
  message(STATUS "AMUSE: recvmmsg/sendmmsg available - batched UDP syscalls on")
else()
  message(STATUS
    "AMUSE: recvmmsg/sendmmsg unavailable - UdpTransport uses the portable "
    "per-datagram fallback")
endif()
