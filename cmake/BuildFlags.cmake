# Shared warning + sanitizer flags, consumed by every target in src/, tests/,
# bench/, examples/, and fuzz/ via `target_link_libraries(<t> amuse_build_flags)`.
#
# Using an INTERFACE target (rather than global add_compile_options) keeps the
# flags attached to our targets only — imported GTest/benchmark libraries and
# any future vendored code are not rebuilt with -Werror.

add_library(amuse_build_flags INTERFACE)

target_compile_options(amuse_build_flags INTERFACE -Wall -Wextra)
if(AMUSE_WERROR)
  target_compile_options(amuse_build_flags INTERFACE -Werror)
endif()

if(AMUSE_AFFINITY_ASSERTS)
  target_compile_definitions(amuse_build_flags INTERFACE AMUSE_AFFINITY_ASSERTS=1)
endif()

if(AMUSE_THREAD_SAFETY)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    # -Wthread-safety over the amuse::Mutex / AMUSE_GUARDED_BY capability
    # annotations (common/annotations.hpp). Promoted to an error: the tree
    # is kept warning-free by the thread-safety CI job.
    target_compile_options(amuse_build_flags INTERFACE
      -Wthread-safety -Werror=thread-safety)
  else()
    message(FATAL_ERROR
      "AMUSE_THREAD_SAFETY requires clang (the analysis attributes are "
      "clang-only); current compiler: ${CMAKE_CXX_COMPILER_ID}")
  endif()
endif()

if(AMUSE_SANITIZE)
  set(_amuse_san_known address undefined thread leak)
  foreach(_san IN LISTS AMUSE_SANITIZE)
    if(NOT _san IN_LIST _amuse_san_known)
      message(FATAL_ERROR
        "AMUSE_SANITIZE: unknown sanitizer '${_san}' "
        "(known: ${_amuse_san_known})")
    endif()
  endforeach()
  if("thread" IN_LIST AMUSE_SANITIZE AND "address" IN_LIST AMUSE_SANITIZE)
    message(FATAL_ERROR
      "AMUSE_SANITIZE: 'thread' and 'address' are mutually exclusive; "
      "build them in separate trees (see CMakePresets.json)")
  endif()

  list(JOIN AMUSE_SANITIZE "," _amuse_san_csv)
  set(_amuse_san_flags
    -fsanitize=${_amuse_san_csv}
    -fno-omit-frame-pointer
    -g)
  if("undefined" IN_LIST AMUSE_SANITIZE)
    # Make UBSan findings fatal so ctest fails instead of just logging.
    list(APPEND _amuse_san_flags -fno-sanitize-recover=undefined)
  endif()

  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
    # GCC 12's -Wmaybe-uninitialized false-positives on std::variant when
    # sanitizer instrumentation is on (seen in policy/expr_eval.cpp; GCC
    # PR105562). The uninstrumented -Werror build keeps the full warning
    # set, so nothing real is lost.
    list(APPEND _amuse_san_flags -Wno-maybe-uninitialized)
  endif()

  target_compile_options(amuse_build_flags INTERFACE ${_amuse_san_flags})
  target_link_options(amuse_build_flags INTERFACE -fsanitize=${_amuse_san_csv})
  message(STATUS "AMUSE: sanitizers enabled: ${_amuse_san_csv}")
endif()
