#!/usr/bin/env python3
"""Project invariant lint for the amuse event-service tree.

Run from the repo root (the CMake `check-invariants` target and the
`lint.check_invariants` ctest both do). Checks invariants that neither the
compiler nor clang-tidy enforce:

  I1  every header under src/ starts its include-guard life with
      `#pragma once` (no ad-hoc guard macros, no guardless headers)
  I2  no stdout chatter in the library: `std::cout` / `std::cerr` /
      `printf(` / `puts(` are banned in src/ — components log through
      common/log.hpp (snprintf into buffers is fine; the one sanctioned
      fprintf(stderr) lives in the default sink in common/log.cpp)
  I3  no blocking sleeps in src/: components schedule closures on the
      Executor, they never sleep a thread (`sleep_for`, `sleep_until`,
      `usleep`, `nanosleep`, bare `sleep(`)
  I4  no `using namespace` at namespace scope in headers
  I5  no `rand()` / `srand(` in src/ — determinism comes from common/rng.hpp
  I6  every .cpp under src/ is listed in src/CMakeLists.txt (a file that
      compiles only by accident of not being built is a latent break)
  I7  the torture harness (tests/torture/) is deterministic: no wall
      clocks (system_clock/steady_clock/high_resolution_clock, time(),
      gettimeofday) and no unseeded randomness (random_device, rand());
      every schedule must replay bit-identically from its TORTURE_SEED
  I8  overload accounting (DESIGN.md §9): a ReliableChannel::send call in
      src/ may legitimately fail under the delivery budgets, so every call
      site must either consume the return value (the caller accounts for
      the shed) or pass MsgClass::kControl (control-class sends always
      succeed). A bare or `(void)`-discarded data-class send is a silent
      drop waiting to happen
  I9  raw std synchronisation primitives (std::mutex, std::lock_guard,
      std::unique_lock, std::scoped_lock, std::shared_mutex,
      std::recursive_mutex, std::condition_variable) are banned in src/
      outside common/annotations.hpp — use amuse::Mutex / MutexLock /
      CondVar so clang's -Wthread-safety capability analysis can see every
      lock (DESIGN.md §10)
  I10 replication traffic is control-class (DESIGN.md §13): any channel
      send whose payload is built from BusMessage::repl_update(...) or
      repl_resync_request() must pass MsgClass::kControl. The repl log is
      the state failover recovers from — a data-class repl send could be
      shed under the §9 budgets, silently widening the staleness window
      the standby believes it has
  I11 durable-state mutations go through the ReplStore choke points
      (DESIGN.md §13.6): the body of every ReplLog mutator must call
      commit_op(...) or persist_snapshot(...). A mutator that changes
      replicated state without journalling it leaves the write-ahead
      store one mutation behind forever — a kill-and-restart would
      recover a replica that silently lacks it

`--self-test` rebuilds a scratch tree seeded with one violation per
invariant and fails unless every invariant fires — proof the checker
still matches, not merely that the tree passes.

Exit status: 0 clean, 1 violations (each printed as file:line: message).
"""
from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
TORTURE = ROOT / "tests" / "torture"

violations: list[str] = []


def report(path: Path, lineno: int, message: str) -> None:
    violations.append(f"{path.relative_to(ROOT)}:{lineno}: {message}")


def strip_comments(line: str) -> str:
    """Crude single-line comment strip; good enough for pattern bans."""
    line = re.sub(r"//.*$", "", line)
    line = re.sub(r"/\*.*?\*/", "", line)
    return line


# I2/I3/I5 pattern bans, with per-file allowlists.
BANNED = [
    (re.compile(r"std::cout|std::cerr"), "I2: stdout/stderr stream in src/ (log through common/log.hpp)", set()),
    (re.compile(r"(?<![\w:])printf\s*\(|(?<![\w:])puts\s*\("), "I2: printf/puts in src/ (log through common/log.hpp)", set()),
    (re.compile(r"(?<![\w:])fprintf\s*\("), "I2: fprintf in src/ (only the default sink in common/log.cpp may)", {"src/common/log.cpp"}),
    (re.compile(r"sleep_for|sleep_until|(?<![\w:])usleep\s*\(|(?<![\w:])nanosleep\s*\(|(?<![\w:])sleep\s*\("), "I3: blocking sleep in src/ (schedule on the Executor instead)", set()),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "I5: C rand in src/ (use common/rng.hpp)", set()),
    (re.compile(r"std::(?:mutex|lock_guard|unique_lock|scoped_lock|"
                r"shared_mutex|recursive_mutex|condition_variable)\b"),
     "I9: raw std synchronisation primitive in src/ (use amuse::Mutex / "
     "MutexLock / CondVar from common/annotations.hpp so -Wthread-safety "
     "sees the lock)",
     {"src/common/annotations.hpp"}),
]

# I7: the torture harness replays fault schedules bit-identically from a
# seed, so nothing under tests/torture/ may consult a wall clock or an
# unseeded entropy source. (Simulated time comes from the Executor; all
# randomness flows from the schedule's TORTURE_SEED via common/rng.hpp.)
TORTURE_BANNED = [
    (re.compile(r"std::random_device|(?<![\w:])random_device\b"),
     "I7: random_device in tests/torture/ (seed all RNGs from the schedule seed)"),
    (re.compile(r"system_clock|steady_clock|high_resolution_clock"),
     "I7: wall clock in tests/torture/ (use the simulated Executor clock)"),
    (re.compile(r"(?<![\w:])time\s*\(|(?<![\w:])gettimeofday\s*\(|(?<![\w:])clock_gettime\s*\("),
     "I7: wall-clock call in tests/torture/ (use the simulated Executor clock)"),
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "I7: C rand in tests/torture/ (use common/rng.hpp seeded from the schedule)"),
]


def check_header_pragma(path: Path) -> None:
    in_block_comment = False
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        if not line or line.startswith("//"):
            continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block_comment = True
            continue
        if line == "#pragma once":
            return
        report(path, lineno, "I1: first directive must be `#pragma once`")
        return
    report(path, 1, "I1: header has no `#pragma once`")


def check_banned_patterns(path: Path) -> None:
    rel = str(path.relative_to(ROOT))
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = strip_comments(raw)
        for pattern, message, allow in BANNED:
            if rel in allow:
                continue
            if pattern.search(line):
                report(path, lineno, message)


def check_using_namespace(path: Path) -> None:
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        if re.search(r"^\s*using\s+namespace\s", strip_comments(raw)):
            report(path, lineno, "I4: `using namespace` in a header")


def check_torture_determinism(path: Path) -> None:
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = strip_comments(raw)
        for pattern, message in TORTURE_BANNED:
            if pattern.search(line):
                report(path, lineno, message)


# I8: channel send() call sites. A match is compliant when the call's
# argument list names MsgClass::kControl, or when the statement consumes the
# return value (condition, assignment, `return`, negation…). An empty prefix
# (bare expression statement) or an explicit `(void)` discard on a
# data-class send is a violation: under the §9 budgets that send can shed
# the message, and nobody would know.
CHANNEL_SEND = re.compile(r"\bchannel_?(?:->|\.)\s*send\s*\(")


def check_channel_send_accounting(path: Path) -> None:
    raw_lines = path.read_text().splitlines()
    stripped = [strip_comments(line) for line in raw_lines]
    text = "\n".join(stripped)
    for m in CHANNEL_SEND.finditer(text):
        lineno = text.count("\n", 0, m.start()) + 1
        # Capture the full (possibly multi-line) argument list.
        depth = 0
        end = m.end() - 1  # at the opening '('
        while end < len(text):
            if text[end] == "(":
                depth += 1
            elif text[end] == ")":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        call = text[m.start() : end + 1]
        if "MsgClass::kControl" in call:
            continue
        line_start = text.rfind("\n", 0, m.start()) + 1
        prefix = text[line_start : m.start()].strip()
        if prefix in ("", "(void)"):
            report(
                path,
                lineno,
                "I8: data-class channel send ignores its return value "
                "(check it or pass MsgClass::kControl)",
            )


# I10: replication messages ride the never-shed control class. Any send()
# whose argument list builds its payload from the repl message factories
# must also name MsgClass::kControl in that same call.
SEND_CALL = re.compile(r"\bsend\s*\(")
REPL_PAYLOAD = re.compile(r"\brepl_(?:update|resync_request)\s*\(")


def check_repl_control_class(path: Path) -> None:
    stripped = [strip_comments(line) for line in path.read_text().splitlines()]
    text = "\n".join(stripped)
    for m in SEND_CALL.finditer(text):
        depth = 0
        end = m.end() - 1  # at the opening '('
        while end < len(text):
            if text[end] == "(":
                depth += 1
            elif text[end] == ")":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        call = text[m.start() : end + 1]
        if REPL_PAYLOAD.search(call) and "MsgClass::kControl" not in call:
            report(
                path,
                text.count("\n", 0, m.start()) + 1,
                "I10: replication message sent without MsgClass::kControl "
                "(repl traffic must never be shed — DESIGN.md §13)",
            )


# I11: every ReplLog mutator journals through the ReplStore choke points.
# The mutator set is pinned by name — adding a mutator without extending
# this list is caught in review, while adding one that skips the store is
# caught here. Accessors / drains (take_update, snapshot, dirty, ...) are
# deliberately absent: they must NOT touch the store.
REPLLOG_MUTATORS = {
    "restore",
    "set_store",
    "set_epoch",
    "member_admitted",
    "member_purged",
    "standby_admitted",
    "standby_purged",
    "sub_added",
    "sub_removed",
    "spool_append",
    "counters_changed",
}
REPLLOG_DEF = re.compile(r"\bReplLog::(\w+)\s*\(")
REPLLOG_CHOKE = re.compile(r"\b(?:commit_op|persist_snapshot)\s*\(")


def check_repllog_store_choke_points(path: Path) -> None:
    stripped = [strip_comments(line) for line in path.read_text().splitlines()]
    text = "\n".join(stripped)
    for m in REPLLOG_DEF.finditer(text):
        name = m.group(1)
        if name not in REPLLOG_MUTATORS:
            continue
        # Walk past the parameter list, then to the body's opening brace
        # (a ';' first means this is a declaration/call, not a definition).
        depth = 0
        pos = m.end() - 1  # at the opening '('
        while pos < len(text):
            if text[pos] == "(":
                depth += 1
            elif text[pos] == ")":
                depth -= 1
                if depth == 0:
                    break
            pos += 1
        body_start = -1
        for pos in range(pos + 1, len(text)):
            if text[pos] == "{":
                body_start = pos
                break
            if text[pos] == ";":
                break
        if body_start < 0:
            continue
        depth = 0
        end = body_start
        while end < len(text):
            if text[end] == "{":
                depth += 1
            elif text[end] == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        body = text[body_start : end + 1]
        if not REPLLOG_CHOKE.search(body):
            report(
                path,
                text.count("\n", 0, m.start()) + 1,
                f"I11: ReplLog::{name} mutates replicated state without "
                "commit_op(...) or persist_snapshot(...) — the ReplStore "
                "journal would silently miss it (DESIGN.md §13.6)",
            )


def check_cmake_lists_all_sources() -> None:
    cmake = (SRC / "CMakeLists.txt").read_text()
    listed = set(re.findall(r"([\w/]+\.cpp)", cmake))
    for cpp in sorted(SRC.rglob("*.cpp")):
        rel = str(cpp.relative_to(SRC))
        if rel not in listed:
            report(cpp, 1, "I6: source file not listed in src/CMakeLists.txt")


def run_checks() -> list[str]:
    violations.clear()
    headers = sorted(SRC.rglob("*.hpp"))
    sources = sorted(SRC.rglob("*.cpp"))
    for h in headers:
        check_header_pragma(h)
        check_using_namespace(h)
    for f in headers + sources:
        check_banned_patterns(f)
        check_channel_send_accounting(f)
        check_repl_control_class(f)
        check_repllog_store_choke_points(f)
    torture_files = sorted(TORTURE.rglob("*.hpp")) + sorted(TORTURE.rglob("*.cpp"))
    for f in torture_files:
        check_torture_determinism(f)
    check_cmake_lists_all_sources()
    return list(violations), len(headers), len(sources)


# One seeded violation per invariant; --self-test fails unless each fires.
SELFTEST_FILES = {
    "src/bad_guard.hpp": ("I1", "#ifndef BAD_GUARD\n#define BAD_GUARD\n#endif\n"),
    "src/chatty.cpp": ("I2", "#include <iostream>\nvoid f() { std::cout << 1; }\n"),
    "src/sleepy.cpp": ("I3", "#include <thread>\nvoid g() { std::this_thread::sleep_for(x); }\n"),
    "src/using.hpp": ("I4", "#pragma once\nusing namespace std;\n"),
    "src/randy.cpp": ("I5", "int h() { return rand(); }\n"),
    "src/unlisted.cpp": ("I6", "void unlisted() {}\n"),
    "tests/torture/clocky.cpp": ("I7", "auto t = std::chrono::steady_clock::now();\n"),
    "src/dropper.cpp": ("I8", "void d() {\n  (void)channel_->send(payload);\n}\n"),
    "src/locky.cpp": ("I9", "#include <mutex>\nstd::mutex mu;\n"),
    # Consumes the return value so I8 stays quiet; I10 alone must fire.
    "src/repl_plain.cpp": ("I10", "bool r() {\n  return channel_->send(BusMessage::repl_update(u).encode());\n}\n"),
    # A ReplLog mutator that skips the ReplStore choke points.
    "src/repl_mutator.cpp": ("I11", "void ReplLog::standby_admitted(ServiceId id) {\n  state_.standbys.insert(id.raw());\n}\n"),
}


def self_test() -> int:
    global ROOT, SRC, TORTURE
    saved = (ROOT, SRC, TORTURE)
    failed = False
    with tempfile.TemporaryDirectory(prefix="check_invariants_") as tmp:
        root = Path(tmp)
        for rel, (_inv, content) in SELFTEST_FILES.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
        # I6 wants a CMakeLists that lists every source *except* the seeded
        # one (and not the other seeds either — each must trip its own
        # invariant, so list them all but unlisted.cpp).
        listed = [rel[len("src/"):] for rel in SELFTEST_FILES
                  if rel.startswith("src/") and rel.endswith(".cpp")
                  and rel != "src/unlisted.cpp"]
        (root / "src" / "CMakeLists.txt").write_text(
            "\n".join(f"  {f}" for f in listed) + "\n")
        try:
            ROOT, SRC, TORTURE = root, root / "src", root / "tests" / "torture"
            found, _h, _s = run_checks()
        finally:
            ROOT, SRC, TORTURE = saved
        for rel, (inv, _content) in sorted(SELFTEST_FILES.items()):
            hits = [v for v in found if v.startswith(rel) and f"{inv}:" in v]
            status = "ok" if hits else "FAIL"
            if not hits:
                failed = True
            print(f"check_invariants --self-test: {inv} fires on {rel} [{status}]")
        unexpected = [v for v in found
                      if not any(v.startswith(rel) and f"{inv}:" in v
                                 for rel, (inv, _c) in SELFTEST_FILES.items())]
        for v in unexpected:
            print(f"check_invariants --self-test: unexpected: {v}")
    if failed:
        print("check_invariants --self-test: FAIL")
        return 1
    print(f"check_invariants --self-test: OK — all {len(SELFTEST_FILES)} "
          "invariants fire")
    return 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    found, n_headers, n_sources = run_checks()
    if found:
        for v in found:
            print(v)
        print(f"check_invariants: FAIL — {len(found)} violation(s)")
        return 1
    print(
        f"check_invariants: OK — {n_headers} headers, "
        f"{n_sources} sources clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
