#!/usr/bin/env python3
"""Project invariant lint for the amuse event-service tree.

Run from the repo root (the CMake `check-invariants` target and the
`lint.check_invariants` ctest both do). Checks invariants that neither the
compiler nor clang-tidy enforce:

  I1  every header under src/ starts its include-guard life with
      `#pragma once` (no ad-hoc guard macros, no guardless headers)
  I2  no stdout chatter in the library: `std::cout` / `std::cerr` /
      `printf(` / `puts(` are banned in src/ — components log through
      common/log.hpp (snprintf into buffers is fine; the one sanctioned
      fprintf(stderr) lives in the default sink in common/log.cpp)
  I3  no blocking sleeps in src/: components schedule closures on the
      Executor, they never sleep a thread (`sleep_for`, `sleep_until`,
      `usleep`, `nanosleep`, bare `sleep(`)
  I4  no `using namespace` at namespace scope in headers
  I5  no `rand()` / `srand(` in src/ — determinism comes from common/rng.hpp
  I6  every .cpp under src/ is listed in src/CMakeLists.txt (a file that
      compiles only by accident of not being built is a latent break)
  I7  the torture harness (tests/torture/) is deterministic: no wall
      clocks (system_clock/steady_clock/high_resolution_clock, time(),
      gettimeofday) and no unseeded randomness (random_device, rand());
      every schedule must replay bit-identically from its TORTURE_SEED

Exit status: 0 clean, 1 violations (each printed as file:line: message).
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
TORTURE = ROOT / "tests" / "torture"

violations: list[str] = []


def report(path: Path, lineno: int, message: str) -> None:
    violations.append(f"{path.relative_to(ROOT)}:{lineno}: {message}")


def strip_comments(line: str) -> str:
    """Crude single-line comment strip; good enough for pattern bans."""
    line = re.sub(r"//.*$", "", line)
    line = re.sub(r"/\*.*?\*/", "", line)
    return line


# I2/I3/I5 pattern bans, with per-file allowlists.
BANNED = [
    (re.compile(r"std::cout|std::cerr"), "I2: stdout/stderr stream in src/ (log through common/log.hpp)", set()),
    (re.compile(r"(?<![\w:])printf\s*\(|(?<![\w:])puts\s*\("), "I2: printf/puts in src/ (log through common/log.hpp)", set()),
    (re.compile(r"(?<![\w:])fprintf\s*\("), "I2: fprintf in src/ (only the default sink in common/log.cpp may)", {"src/common/log.cpp"}),
    (re.compile(r"sleep_for|sleep_until|(?<![\w:])usleep\s*\(|(?<![\w:])nanosleep\s*\(|(?<![\w:])sleep\s*\("), "I3: blocking sleep in src/ (schedule on the Executor instead)", set()),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "I5: C rand in src/ (use common/rng.hpp)", set()),
]

# I7: the torture harness replays fault schedules bit-identically from a
# seed, so nothing under tests/torture/ may consult a wall clock or an
# unseeded entropy source. (Simulated time comes from the Executor; all
# randomness flows from the schedule's TORTURE_SEED via common/rng.hpp.)
TORTURE_BANNED = [
    (re.compile(r"std::random_device|(?<![\w:])random_device\b"),
     "I7: random_device in tests/torture/ (seed all RNGs from the schedule seed)"),
    (re.compile(r"system_clock|steady_clock|high_resolution_clock"),
     "I7: wall clock in tests/torture/ (use the simulated Executor clock)"),
    (re.compile(r"(?<![\w:])time\s*\(|(?<![\w:])gettimeofday\s*\(|(?<![\w:])clock_gettime\s*\("),
     "I7: wall-clock call in tests/torture/ (use the simulated Executor clock)"),
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "I7: C rand in tests/torture/ (use common/rng.hpp seeded from the schedule)"),
]


def check_header_pragma(path: Path) -> None:
    in_block_comment = False
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        if not line or line.startswith("//"):
            continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block_comment = True
            continue
        if line == "#pragma once":
            return
        report(path, lineno, "I1: first directive must be `#pragma once`")
        return
    report(path, 1, "I1: header has no `#pragma once`")


def check_banned_patterns(path: Path) -> None:
    rel = str(path.relative_to(ROOT))
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = strip_comments(raw)
        for pattern, message, allow in BANNED:
            if rel in allow:
                continue
            if pattern.search(line):
                report(path, lineno, message)


def check_using_namespace(path: Path) -> None:
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        if re.search(r"^\s*using\s+namespace\s", strip_comments(raw)):
            report(path, lineno, "I4: `using namespace` in a header")


def check_torture_determinism(path: Path) -> None:
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = strip_comments(raw)
        for pattern, message in TORTURE_BANNED:
            if pattern.search(line):
                report(path, lineno, message)


def check_cmake_lists_all_sources() -> None:
    cmake = (SRC / "CMakeLists.txt").read_text()
    listed = set(re.findall(r"([\w/]+\.cpp)", cmake))
    for cpp in sorted(SRC.rglob("*.cpp")):
        rel = str(cpp.relative_to(SRC))
        if rel not in listed:
            report(cpp, 1, "I6: source file not listed in src/CMakeLists.txt")


def main() -> int:
    headers = sorted(SRC.rglob("*.hpp"))
    sources = sorted(SRC.rglob("*.cpp"))
    for h in headers:
        check_header_pragma(h)
        check_using_namespace(h)
    for f in headers + sources:
        check_banned_patterns(f)
    torture_files = sorted(TORTURE.rglob("*.hpp")) + sorted(TORTURE.rglob("*.cpp"))
    for f in torture_files:
        check_torture_determinism(f)
    check_cmake_lists_all_sources()

    if violations:
        for v in violations:
            print(v)
        print(f"check_invariants: FAIL — {len(violations)} violation(s)")
        return 1
    print(
        f"check_invariants: OK — {len(headers)} headers, "
        f"{len(sources)} sources clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
