#!/usr/bin/env python3
"""Executor-affinity checker (DESIGN.md §10, docs/ANALYSIS.md).

The threading model of the event service is single-writer: every protocol
component (bus, channels, membership, proxies, members) is owned by one
Executor and its state is only touched from that executor's consumer
thread. Code that runs on a raw OS thread — the UDP receive loop — must
hand work over with Executor::post() instead of calling in directly.

This script proves the rule statically:

  1. It collects every method annotated AMUSE_AFFINITY(<label>) ("must run
     on its owning executor's consumer thread") and every function
     annotated AMUSE_RECEIVE_CONTEXT ("runs on a raw OS thread") or
     AMUSE_EGRESS_CONTEXT ("wire-egress surface, callable from any
     thread" — DESIGN.md §12).
  2. It builds a call graph over all function definitions in src/
     (call edges are matched by name, preferring a same-class method when
     the caller's class defines one; calls lexically inside the argument
     list of post()/schedule_at()/schedule_after() are *excluded*, because
     those closures execute later, on the executor).
  3. It walks the graph from each receive-context and egress-context entry
     point and fails on any path that reaches an affinity-annotated method
     — that would be a foreign thread mutating executor-owned state
     without the post() hop.

Backends:
  * text (default, dependency-free): a comment/string-stripping,
    brace-aware scanner over src/. This is the backend CI runs.
  * libclang (--backend libclang): resolves the same annotations from the
    clang AST via compile_commands.json (--build-dir). Requires the clang
    python bindings; used for spot-checking the text backend's graph.

Exit codes: 0 = clean, 1 = violation(s), 2 = usage/internal error.

`--self-test` runs the analyzer against embedded synthetic sources (a
direct violation, an indirect one through a helper, and a clean post()
hop) and fails if any is misjudged — so the ctest proves the checker
still *fires*, not merely that the tree passes.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")

AFFINITY_MACRO = "AMUSE_AFFINITY"
RECEIVE_MACRO = "AMUSE_RECEIVE_CONTEXT"
EGRESS_MACRO = "AMUSE_EGRESS_CONTEXT"

# Executor hand-off calls: anything inside their argument parentheses runs
# later, on the executor's consumer thread, so it is exempt from the walk.
DEFER_CALLS = {"post", "schedule_at", "schedule_after"}

KEYWORDS = {
    "alignas", "alignof", "assert", "case", "catch", "const_cast",
    "decltype", "delete", "do", "dynamic_cast", "else", "for", "if",
    "new", "noexcept", "reinterpret_cast", "return", "sizeof",
    "static_assert", "static_cast", "switch", "throw", "typeid", "while",
}

IDENT_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CLASS_HEAD = re.compile(r"\b(?:class|struct)\s+(?:\w+\s+)*?([A-Za-z_]\w*)\s*"
                        r"(?:\bfinal\s*)?(?::[^;{]*)?\{")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literal *contents*, preserving every
    newline and the overall length so offsets keep matching the original."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = min(j, n - 1) + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def matching(text: str, pos: int, open_ch: str, close_ch: str) -> int:
    """Index just past the bracket that closes text[pos] (which must be
    open_ch); returns len(text) when unbalanced."""
    depth = 0
    for i in range(pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


@dataclass
class Function:
    name: str                      # unqualified
    qualified: str                 # Class::name or name
    path: str
    line: int
    affinity: str | None = None    # executor label, if annotated
    receive_context: bool = False
    egress_context: bool = False
    calls: set[str] = field(default_factory=set)

    @property
    def context_kind(self) -> str:
        return "receive" if self.receive_context else "egress"


@dataclass
class Analysis:
    # name -> list of Function (decls and defs merged per qualified name)
    functions: dict[str, list[Function]] = field(default_factory=dict)

    def add(self, fn: Function) -> Function:
        for existing in self.functions.setdefault(fn.name, []):
            if existing.qualified == fn.qualified:
                existing.calls |= fn.calls
                existing.affinity = existing.affinity or fn.affinity
                existing.receive_context = (existing.receive_context
                                            or fn.receive_context)
                existing.egress_context = (existing.egress_context
                                           or fn.egress_context)
                return existing
        self.functions[fn.name].append(fn)
        return fn

    def annotated(self) -> list[Function]:
        return [f for fns in self.functions.values() for f in fns
                if f.affinity]

    def entry_points(self) -> list[Function]:
        return [f for fns in self.functions.values() for f in fns
                if f.receive_context or f.egress_context]

    def egress_entries(self) -> list[Function]:
        return [f for fns in self.functions.values() for f in fns
                if f.egress_context]


def class_context(clean: str):
    """Returns a function pos -> innermost class name (or "") using a
    single brace scan."""
    events = []  # (pos, kind, name) kind: 'open-class'|'open'|'close'
    for m in CLASS_HEAD.finditer(clean):
        events.append((m.end() - 1, "class", m.group(1)))
    spans = []
    stack = []  # (brace_depth_at_entry, name, start)
    depth = 0
    class_opens = {pos: name for pos, _, name in events}
    for i, ch in enumerate(clean):
        if ch == "{":
            if i in class_opens:
                stack.append((depth, class_opens[i], i))
            depth += 1
        elif ch == "}":
            depth -= 1
            if stack and stack[-1][0] == depth:
                _, name, start = stack.pop()
                spans.append((start, i, name))

    def lookup(pos: int) -> str:
        best = ""
        best_len = None
        for start, end, name in spans:
            if start <= pos <= end and (best_len is None
                                        or end - start < best_len):
                best, best_len = name, end - start
        return best

    return lookup


def find_name_after_macro(clean: str, pos: int) -> tuple[str, int] | None:
    """Function name declared after an annotation macro at `pos`: the
    identifier immediately before the first parameter-list '(' (skipping
    the '(' that belongs to other annotation macros or attributes)."""
    i = pos
    last_ident = None
    last_end = i
    while i < len(clean):
        m = re.compile(r"[A-Za-z_~]\w*|::|[<>()\[\];{}=,&*]|\S").match(
            clean, i) if not clean[i].isspace() else None
        if m is None:
            i += 1
            continue
        tok = m.group(0)
        if tok == ";" or tok == "{" or tok == "}":
            return None  # ran off the declaration without finding a call
        if tok == "(":
            if last_ident and last_ident not in ("AMUSE_AFFINITY",
                                                 "AMUSE_TSA", "annotate",
                                                 "__attribute__",
                                                 "nodiscard"):
                return last_ident, last_end
            # skip a macro/attribute argument list and continue
            i = matching(clean, m.start(), "(", ")")
            continue
        if tok == "[":
            # [[nodiscard]] etc.
            i = matching(clean, m.start(), "[", "]")
            continue
        if tok == "<":
            # template argument list in the return type
            i = matching(clean, m.start(), "<", ">")
            continue
        if re.match(r"[A-Za-z_~]", tok):
            last_ident = tok
            last_end = m.end()
        i = m.end()
    return None


def extract_annotations(clean: str, path: str, analysis: Analysis,
                        ctx_lookup) -> None:
    for macro, kind in ((AFFINITY_MACRO, "affinity"),
                        (RECEIVE_MACRO, "receive"),
                        (EGRESS_MACRO, "egress")):
        for m in re.finditer(r"\b" + macro + r"\b", clean):
            # Skip the macro's own #define and mentions in other macros.
            line_start = clean.rfind("\n", 0, m.start()) + 1
            if clean[line_start:m.start()].lstrip().startswith("#"):
                continue
            pos = m.end()
            label = None
            if kind == "affinity":
                if pos < len(clean) and clean[pos:].lstrip().startswith("("):
                    open_p = clean.index("(", pos)
                    close = matching(clean, open_p, "(", ")")
                    label = clean[open_p + 1:close - 1].strip()
                    pos = close
                else:
                    continue  # macro mention without arguments
            found = find_name_after_macro(clean, pos)
            if not found:
                continue
            name, name_end = found
            cls = ctx_lookup(name_end)
            fn = Function(
                name=name,
                qualified=f"{cls}::{name}" if cls else name,
                path=path,
                line=line_of(clean, m.start()),
            )
            if kind == "receive":
                fn.receive_context = True
            elif kind == "egress":
                fn.egress_context = True
            else:
                fn.affinity = label or "unspecified"
            analysis.add(fn)


DEF_HEAD = re.compile(
    r"(?:([A-Za-z_]\w*)\s*::\s*)?(~?[A-Za-z_]\w*)\s*\(")


def extract_definitions(clean: str, path: str, analysis: Analysis,
                        ctx_lookup) -> None:
    i = 0
    n = len(clean)
    while i < n:
        m = DEF_HEAD.search(clean, i)
        if not m:
            break
        cls, name = m.group(1), m.group(2)
        if name in KEYWORDS or name.startswith("~"):
            i = m.end()
            continue
        params_open = m.end() - 1
        params_close = matching(clean, params_open, "(", ")")
        # Scan the gap between ')' and '{' / ';': allow const, noexcept,
        # override, final, trailing return, ctor initializer lists.
        j = params_close
        ok = True
        while j < n:
            c = clean[j]
            if c == "{":
                break
            if c in ";}":
                ok = False
                break
            if c == "(":
                j = matching(clean, j, "(", ")")
                continue
            if c == "[":
                j = matching(clean, j, "[", "]")
                continue
            if c == "<":
                j = matching(clean, j, "<", ">")
                continue
            if c.isspace() or c.isalnum() or c in ":_,&*->=":
                j += 1
                continue
            ok = False
            break
        if not ok or j >= n:
            i = params_close
            continue
        body_end = matching(clean, j, "{", "}")
        body = clean[j + 1:body_end - 1]
        # Mask out deferred spans: arguments of post()/schedule_* calls run
        # later on the executor, not on this thread.
        masked = mask_deferred(body)
        calls = {c.group(1) for c in IDENT_CALL.finditer(masked)
                 if c.group(1) not in KEYWORDS}
        calls.discard(name)
        qual_cls = cls or ctx_lookup(m.start())
        fn = Function(
            name=name,
            qualified=f"{qual_cls}::{name}" if qual_cls else name,
            path=path,
            line=line_of(clean, m.start()),
            calls=calls,
        )
        analysis.add(fn)
        i = params_close  # re-scan inside the body for nested definitions

def mask_deferred(body: str) -> str:
    out = list(body)
    for m in IDENT_CALL.finditer(body):
        if m.group(1) in DEFER_CALLS:
            open_p = m.end() - 1
            close = matching(body, open_p, "(", ")")
            for k in range(open_p, close):
                if out[k] != "\n":
                    out[k] = " "
    return "".join(out)


def analyze_sources(sources: dict[str, str]) -> Analysis:
    analysis = Analysis()
    for path, text in sorted(sources.items()):
        clean = strip_comments_and_strings(text)
        ctx = class_context(clean)
        extract_annotations(clean, path, analysis, ctx)
        extract_definitions(clean, path, analysis, ctx)
    return analysis


def find_violations(analysis: Analysis) -> list[str]:
    violations = []

    def resolve(caller: Function, callee: str) -> list[Function]:
        """Candidate targets for a by-name call edge. An unqualified call
        from a member function resolves to the caller's own class first —
        e.g. UdpTransport::send_batch calling send() means
        UdpTransport::send, not every send() in the tree."""
        cands = analysis.functions.get(callee, [])
        if "::" in caller.qualified:
            cls = caller.qualified.split("::")[0]
            same = [c for c in cands if c.qualified == f"{cls}::{callee}"]
            if same:
                return same
        return cands

    for entry in analysis.entry_points():
        # BFS over call edges, remembering one path per reached name.
        queue = [(entry, [entry.qualified])]
        seen = {entry.qualified}
        while queue:
            fn, trail = queue.pop(0)
            for callee in sorted(fn.calls):
                for target in resolve(fn, callee):
                    if target.affinity:
                        violations.append(
                            f"{entry.path}:{entry.line}: "
                            f"{entry.context_kind} context "
                            f"'{entry.qualified}' reaches "
                            f"AMUSE_AFFINITY({target.affinity}) method "
                            f"'{target.qualified}' "
                            f"({target.path}:{target.line}) "
                            f"without an executor post() hop\n"
                            f"    call path: "
                            f"{' -> '.join(trail + [target.qualified])}"
                        )
                        continue
                    if target.qualified in seen:
                        continue
                    seen.add(target.qualified)
                    queue.append((target, trail + [target.qualified]))
    return violations


def load_tree_sources() -> dict[str, str]:
    sources = {}
    for dirpath, _dirnames, filenames in os.walk(SRC):
        for fname in sorted(filenames):
            if fname.endswith((".hpp", ".cpp")):
                full = os.path.join(dirpath, fname)
                rel = os.path.relpath(full, ROOT)
                with open(full, encoding="utf-8") as f:
                    sources[rel] = f.read()
    return sources


def run_libclang(build_dir: str) -> int:
    """AST-based cross-check via the clang python bindings. Optional: the
    text backend is authoritative in CI; this one validates its graph when
    a clang toolchain is available."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        print("check_affinity: libclang backend unavailable "
              "(no clang python bindings); use --backend text", file=sys.stderr)
        return 2
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"check_affinity: no compile_commands.json in {build_dir}",
              file=sys.stderr)
        return 2
    index = cindex.Index.create()
    db = cindex.CompilationDatabase.fromDirectory(build_dir)
    annotated = {}   # usr -> (label, displayname)
    receive = {}     # usr -> displayname
    edges = {}       # caller usr -> set of callee usrs
    names = {}       # usr -> displayname

    def visit(node, current):
        if node.kind in (cindex.CursorKind.CXX_METHOD,
                         cindex.CursorKind.FUNCTION_DECL,
                         cindex.CursorKind.CONSTRUCTOR,
                         cindex.CursorKind.DESTRUCTOR):
            usr = node.get_usr()
            names[usr] = node.displayname
            for child in node.get_children():
                if child.kind == cindex.CursorKind.ANNOTATE_ATTR:
                    if child.spelling.startswith("amuse::affinity:"):
                        annotated[usr] = (
                            child.spelling.split(":", 2)[2], node.displayname)
                    elif child.spelling in ("amuse::receive_context",
                                            "amuse::egress_context"):
                        receive[usr] = node.displayname
            current = usr if node.is_definition() else current
        if node.kind == cindex.CursorKind.CALL_EXPR and current:
            ref = node.referenced
            if ref is not None:
                if ref.spelling in DEFER_CALLS:
                    return  # don't descend: deferred arguments
                edges.setdefault(current, set()).add(ref.get_usr())
        for child in node.get_children():
            visit(child, current)

    seen_files = set()
    for cmd in db.getAllCompileCommands():
        src = cmd.filename
        if not src.startswith(SRC) or src in seen_files:
            continue
        seen_files.add(src)
        args = [a for a in list(cmd.arguments)[1:]
                if a not in (src, "-c", "-o")][:-1]
        tu = index.parse(src, args=args)
        visit(tu.cursor, None)

    failures = []
    for entry_usr, entry_name in receive.items():
        stack = [(entry_usr, [entry_name])]
        visited = {entry_usr}
        while stack:
            usr, trail = stack.pop()
            for callee in edges.get(usr, ()):
                if callee in annotated:
                    label, disp = annotated[callee]
                    failures.append(
                        f"receive context '{entry_name}' reaches "
                        f"AMUSE_AFFINITY({label}) '{disp}': "
                        f"{' -> '.join(trail + [disp])}")
                elif callee not in visited:
                    visited.add(callee)
                    stack.append((callee, trail + [names.get(callee, "?")]))
    for f in failures:
        print(f"check_affinity: VIOLATION: {f}", file=sys.stderr)
    print(f"check_affinity[libclang]: {len(receive)} entry points, "
          f"{len(annotated)} affinity methods, {len(failures)} violation(s)")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# Self-test: synthetic sources the checker must judge correctly.
# ---------------------------------------------------------------------------

SELFTEST_VIOLATING = """
#include "common/annotations.hpp"
class Bus {
 public:
  AMUSE_AFFINITY(core_executor) void publish_state(int v);
};
void Bus::publish_state(int v) { (void)v; }
class Transport {
  AMUSE_RECEIVE_CONTEXT void receive_loop();
  Bus* bus_;
};
void Transport::receive_loop() {
  bus_->publish_state(42);  // BUG: direct cross-thread call
}
"""

SELFTEST_INDIRECT = """
#include "common/annotations.hpp"
class Bus {
 public:
  AMUSE_AFFINITY(core_executor) void publish_state(int v);
};
void Bus::publish_state(int v) { (void)v; }
class Transport {
  AMUSE_RECEIVE_CONTEXT void receive_loop();
  void helper();
  Bus* bus_;
};
void Transport::helper() { bus_->publish_state(7); }
void Transport::receive_loop() {
  helper();  // BUG: indirect cross-thread call through a helper
}
"""

SELFTEST_EGRESS_VIOLATING = """
#include "common/annotations.hpp"
class Channel {
 public:
  AMUSE_AFFINITY(owner_executor) void on_packet(int p);
};
void Channel::on_packet(int p) { (void)p; }
class Transport {
 public:
  AMUSE_EGRESS_CONTEXT void send_batch(int n);
  Channel* chan_;
};
void Transport::send_batch(int n) {
  chan_->on_packet(n);  // BUG: egress surface touching protocol state
}
"""

SELFTEST_EGRESS_SAME_CLASS_CLEAN = """
#include "common/annotations.hpp"
class Channel {
 public:
  AMUSE_AFFINITY(owner_executor) void send(int p);
};
void Channel::send(int p) { (void)p; }
class Transport {
 public:
  AMUSE_EGRESS_CONTEXT void send(int n);
  AMUSE_EGRESS_CONTEXT void send_batch(int n);
};
void Transport::send(int n) { (void)n; }
void Transport::send_batch(int n) {
  send(n);  // OK: resolves to Transport::send, not Channel::send
}
"""

SELFTEST_CLEAN = """
#include "common/annotations.hpp"
struct Executor { template <class F> void post(F f); };
class Bus {
 public:
  AMUSE_AFFINITY(core_executor) void publish_state(int v);
};
void Bus::publish_state(int v) { (void)v; }
class Transport {
  AMUSE_RECEIVE_CONTEXT void receive_loop();
  Executor* executor_;
  Bus* bus_;
};
void Transport::receive_loop() {
  executor_->post([this] { bus_->publish_state(42); });  // OK: hop
}
"""


def self_test() -> int:
    cases = [
        ("direct violation", SELFTEST_VIOLATING, 1),
        ("indirect violation", SELFTEST_INDIRECT, 1),
        ("clean post() hop", SELFTEST_CLEAN, 0),
        ("egress violation", SELFTEST_EGRESS_VIOLATING, 1),
        ("egress same-class resolution", SELFTEST_EGRESS_SAME_CLASS_CLEAN, 0),
    ]
    failed = False
    for label, source, expected in cases:
        analysis = analyze_sources({"selftest.cpp": source})
        violations = find_violations(analysis)
        got = 1 if violations else 0
        status = "ok" if got == expected else "FAIL"
        if got != expected:
            failed = True
        print(f"check_affinity --self-test: {label}: expected "
              f"{'violation' if expected else 'clean'}, got "
              f"{'violation' if got else 'clean'} [{status}]")
        if got != expected and violations:
            for v in violations:
                print(f"  {v}")
    # The real tree's entry point must be discovered, otherwise the checker
    # is vacuously green.
    tree = analyze_sources(load_tree_sources())
    entries = tree.entry_points()
    annotated = tree.annotated()
    if not entries:
        print("check_affinity --self-test: FAIL: no AMUSE_RECEIVE_CONTEXT "
              "entry point found in src/ (checker would be vacuous)")
        failed = True
    if len(annotated) < 10:
        print(f"check_affinity --self-test: FAIL: only {len(annotated)} "
              "AMUSE_AFFINITY methods found in src/ (expected the annotated "
              "protocol surface; did the parser regress?)")
        failed = True
    # The federation surface (DESIGN.md §11) runs on the member executor and
    # must stay inside the checked graph: FederationGateway::share/
    # reconcile/forward plus FederationBridge::share/forward.
    fed_annotated = [f for f in annotated
                     if "gateway" in f.path or "federation" in f.path]
    if len(fed_annotated) < 5:
        print(f"check_affinity --self-test: FAIL: only {len(fed_annotated)} "
              "AMUSE_AFFINITY methods found on the federation surface "
              "(smc/gateway, smc/federation); gateway forwarding would be "
              "unchecked")
        failed = True
    # The HA surface (DESIGN.md §13) is executor-owned too: the standby's
    # replication/lease/promotion entry points mutate the replica mirror and
    # build the promoted cell, and the active side's step_down tears the cell
    # down — a receive-thread path into any of them would corrupt failover
    # state exactly when it matters.
    standby_names = {f.name for f in annotated
                     if os.path.join("smc", "standby") in f.path}
    for required in ("on_repl", "check_lease", "promote"):
        if required not in standby_names:
            print("check_affinity --self-test: FAIL: "
                  f"StandbyCore::{required} is not AMUSE_AFFINITY-annotated "
                  "(the HA replication/promotion path would be outside the "
                  "checked graph)")
            failed = True
    if not any(f.qualified == "EventBus::step_down" for f in annotated):
        print("check_affinity --self-test: FAIL: EventBus::step_down is not "
              "AMUSE_AFFINITY-annotated (epoch fencing's deposed-core purge "
              "would be outside the checked graph)")
        failed = True
    # The real-wire datapath (DESIGN.md §12) must keep its egress surface
    # in the walk: UdpTransport::send/send_batch are callable from any
    # thread and the checker proves they never touch executor-owned state.
    egress = tree.egress_entries()
    net_egress = [f for f in egress if f.path.startswith(os.path.join("src",
                                                                      "net"))]
    if len(net_egress) < 2:
        print(f"check_affinity --self-test: FAIL: only {len(net_egress)} "
              "AMUSE_EGRESS_CONTEXT entry point(s) found in src/net "
              "(expected the UdpTransport send surface); the egress walk "
              "would be vacuous")
        failed = True
    if len(entries) < 2:
        print(f"check_affinity --self-test: FAIL: only {len(entries)} "
              "entry point(s) in the walk (expected receive + egress "
              "contexts)")
        failed = True
    print(f"check_affinity --self-test: tree has {len(entries)} entry "
          f"point(s) ({len(egress)} egress), {len(annotated)} "
          f"affinity-annotated method(s) ({len(fed_annotated)} on the "
          f"federation surface)")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="build tree with compile_commands.json "
                             "(libclang backend only)")
    parser.add_argument("--backend", choices=("text", "libclang", "auto"),
                        default="text")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded synthetic cases")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if args.backend in ("libclang", "auto"):
        rc = run_libclang(args.build_dir)
        if args.backend == "libclang" or rc in (0, 1):
            return rc
        # auto: fall through to the text backend

    analysis = analyze_sources(load_tree_sources())
    violations = find_violations(analysis)
    for v in violations:
        print(f"check_affinity: VIOLATION: {v}", file=sys.stderr)
    entries = analysis.entry_points()
    annotated = analysis.annotated()
    print(f"check_affinity[text]: {len(entries)} entry point(s) "
          f"({len(analysis.egress_entries())} egress), "
          f"{len(annotated)} affinity-annotated method(s), "
          f"{len(violations)} violation(s)")
    if not entries:
        print("check_affinity: error: no AMUSE_RECEIVE_CONTEXT / "
              "AMUSE_EGRESS_CONTEXT entry point found — the walk is "
              "vacuous", file=sys.stderr)
        return 2
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
