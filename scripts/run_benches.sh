#!/usr/bin/env bash
# Runs the bench-labelled ctests plus the two headline benchmarks, and
# leaves machine-readable results in the build tree:
#   <build>/BENCH_fig4b.json    - Figure 4(b) throughput sweep (+ legacy A/B)
#   <build>/BENCH_fanout.json   - A1 fan-out scaling (+ datagrams/delivery)
#   <build>/BENCH_overload.json - §9 bounded delivery under a slow consumer
#   <build>/BENCH_federation.json - §11 inter-cell traffic vs selectivity A/B
#   <build>/BENCH_udp_datapath.json - §12 batched real-wire datapath A/B
# Usage: scripts/run_benches.sh [build-dir]   (default: build)
set -euo pipefail

BUILD="${1:-build}"
if [[ ! -d "$BUILD/bench" ]]; then
  echo "error: $BUILD/bench not found - configure and build first" >&2
  exit 1
fi

ctest --test-dir "$BUILD" -L bench --output-on-failure

"$BUILD/bench/fig4b_throughput" --json "$BUILD/BENCH_fig4b.json"
"$BUILD/bench/fanout_scaling" --json "$BUILD/BENCH_fanout.json"
"$BUILD/bench/overload" --json "$BUILD/BENCH_overload.json"
"$BUILD/bench/federation_scaling" --json "$BUILD/BENCH_federation.json"
# Real sockets: skip the artifact (not the run) where the sandbox has none.
"$BUILD/bench/udp_datapath" --json "$BUILD/BENCH_udp_datapath.json" || {
  rc=$?
  if [[ $rc -ne 77 ]]; then exit $rc; fi
  echo "udp_datapath: skipped (no socket support)"
}

echo "bench artifacts:"
ls -l "$BUILD"/BENCH_*.json
