#!/usr/bin/env bash
# clang-tidy gate over src/ with the project .clang-tidy profile.
#
# Usage: scripts/check_lint.sh [build-dir]
#
# The build dir must contain compile_commands.json (the top-level CMakeLists
# exports it unconditionally). Exits non-zero on any tidy diagnostic — the
# config promotes all warnings to errors, so "zero warnings" is the only
# passing state. When clang-tidy is not installed (e.g. the gcc-only dev
# container) the gate is skipped with exit 0 so `--target lint` stays usable
# everywhere; CI installs clang-tidy and gets the real check.
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
  if command -v "$cand" >/dev/null 2>&1; then
    TIDY="$cand"
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "check_lint: clang-tidy not found; SKIPPING lint gate" >&2
  echo "check_lint: (install clang-tidy to run the zero-warning check)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "check_lint: $BUILD_DIR/compile_commands.json missing." >&2
  echo "check_lint: configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "check_lint: $TIDY over ${#SOURCES[@]} files (config: .clang-tidy)" >&2

FAILED=0
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet \
    "^$(pwd)/src/.*\.cpp$" || FAILED=1
else
  for f in "${SOURCES[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$f" || FAILED=1
  done
fi

if [ "$FAILED" -ne 0 ]; then
  echo "check_lint: FAIL — clang-tidy diagnostics above (zero-warning policy)" >&2
  exit 1
fi
echo "check_lint: OK — zero clang-tidy warnings" >&2
