#include "hostmodel/profiles.hpp"

namespace amuse::profiles {

// Derivation (targets in profiles.hpp):
//
// Response time at 0-byte payload, C-based bus (≈45 ms). The PDA handles
// THREE packets on the forward path — it receives the publish, transmits
// the acknowledgement to the publisher ("events are always acknowledged",
// §III-B), and transmits the forwarded event — all serialised through its
// single CPU:
//   laptop send (2)  + link (1.45) + PDA recv (8.2 + frame copies ≈2)
//   + match (1) + PDA ack send (8.3) + PDA event send (8.2 + ≈2)
//   + link (1.45) + laptop recv (2) + scheduling jitter (≈6 mean)  ≈ 45 ms.
// The 8.2 ms per-packet PDA cost covers kernel scheduling, the socket →
// JVM crossing and datagram handling in an interpreted JVM 1.3 — the paper
// explicitly blames "the behaviour of the operating system at each host,
// and also of the JVM".
//
// Slope: Figure 4(a)'s C-based line rises ≈195 ms over 5000 B = 39 µs/B.
// Two link serialisations contribute 2 × 1.74 µs/B (575 KB/s); the rest is
// payload copying on the PDA: 2 copies on recv + 2 on send + 1 in the bus
// queue = 5 copies ⇒ per-byte-copy ≈ 7 µs (≈140 KB/s effective memcpy
// through the JVM — "copying of packet data, which we have attempted to
// minimise in the C-based publish/subscribe mechanism").
CostModel pda_ipaq_hx4700() {
  CostModel m;
  m.per_packet_send = microseconds(8'200);
  m.per_packet_recv = microseconds(8'200);
  m.per_byte_copy = nanoseconds(7'000);
  m.send_copies = 2;
  m.recv_copies = 2;
  m.sched_jitter_max = microseconds(4'000);
  return m;
}

CostModel laptop_p3_1200() {
  CostModel m;
  m.per_packet_send = microseconds(2'000);
  m.per_packet_recv = microseconds(2'000);
  m.per_byte_copy = nanoseconds(30);
  m.send_copies = 1;
  m.recv_copies = 1;
  m.sched_jitter_max = microseconds(1'000);
  return m;
}

CostModel ideal_host() {
  CostModel m;
  m.per_packet_send = microseconds(1);
  m.per_packet_recv = microseconds(1);
  m.per_byte_copy = nanoseconds(0);
  m.send_copies = 0;
  m.recv_copies = 0;
  m.sched_jitter_max = Duration{};
  return m;
}

// The dedicated engine: a fixed ~1 ms to run the counting algorithm (JNI
// call + index probes) and one extra payload copy into the delivery queue.
BusCostModel c_bus_costs() {
  BusCostModel b;
  b.match_fixed = microseconds(1'000);
  b.match_per_subscription = microseconds(20);
  b.translate_fixed = Duration{};
  b.translate_per_byte = Duration{};
  b.extra_copies = 1;
  return b;
}

// Siena adds: ~40 ms fixed translation/setup per event (constructing Siena
// Notification objects, attribute boxing, JNI marshalling) plus ~30 µs/B
// string conversion, and three further whole-payload copies through the
// translation layers. Figure 4(a): Siena-based starts ≈45 ms above the
// C-based line and its slope is ≈53 µs/B steeper — 30 µs/B translation +
// 3 × 7 µs/B copies.
BusCostModel siena_bus_costs() {
  BusCostModel b;
  b.match_fixed = microseconds(5'000);
  b.match_per_subscription = microseconds(120);
  b.translate_fixed = microseconds(40'000);
  b.translate_per_byte = nanoseconds(30'000);
  b.extra_copies = 3;
  return b;
}

}  // namespace amuse::profiles
