// Calibrated host and bus cost profiles.
//
// Calibration targets are the paper's own measurements (§V, Figure 4):
//   - link: 1.5 ms average latency (0.6 min, 2.3 max), ~575 KB/s capacity;
//   - Figure 4(a): C-based bus response ≈45 ms at 0 B rising to ≈240 ms at
//     5000 B; Siena-based ≈90 ms rising to ≈550 ms;
//   - Figure 4(b): C-based throughput ≈19–21 KB/s at 3000 B payloads,
//     Siena-based ≈8–9 KB/s — both far below the 575 KB/s the raw link
//     sustains, because the PDA's CPU is the bottleneck.
// The derivations of each constant are in profiles.cpp.
#pragma once

#include "hostmodel/cost_model.hpp"

namespace amuse::profiles {

/// iPAQ hx4700 PDA running Familiar Linux + Blackdown JVM 1.3.1 (the
/// paper's event-bus host). Slow per-packet path and very slow per-byte
/// copies (interpreted JVM + JNI crossings).
[[nodiscard]] CostModel pda_ipaq_hx4700();

/// 1.2 GHz Pentium 3 laptop, 256 MB RAM (the paper's peer host).
[[nodiscard]] CostModel laptop_p3_1200();

/// An idealised fast host (negligible costs) for pure-protocol tests.
[[nodiscard]] CostModel ideal_host();

/// The dedicated C-based matching engine: no translation, minimal copies.
[[nodiscard]] BusCostModel c_bus_costs();

/// The Siena-based engine: every event and filter is translated to/from
/// Siena's own types ("the much simpler codebase not requiring the same
/// data translations Siena required"), costing a fixed setup plus a
/// per-byte conversion, and three extra whole-payload copies.
[[nodiscard]] BusCostModel siena_bus_costs();

}  // namespace amuse::profiles
