#include "hostmodel/cost_model.hpp"
// Header-only arithmetic; this translation unit exists so the module has a
// home for future out-of-line code and appears in the library target.
