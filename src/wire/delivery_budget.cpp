#include "wire/delivery_budget.hpp"

#include "wire/reliable_channel.hpp"

namespace amuse {

void DeliveryBudget::charge(const SharedPayload& payload) {
  used_ += payload.head.size();
  if (payload.tail) {
    if (tail_refs_[payload.tail.get()]++ == 0) {
      used_ += payload.tail->size();
    }
  }
}

void DeliveryBudget::release(const SharedPayload& payload) {
  used_ -= payload.head.size();
  if (payload.tail) {
    auto it = tail_refs_.find(payload.tail.get());
    if (it != tail_refs_.end() && --it->second == 0) {
      used_ -= payload.tail->size();
      tail_refs_.erase(it);
    }
  }
}

}  // namespace amuse
