#include "wire/packet.hpp"

#include "common/crc32.hpp"

namespace amuse {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kAck: return "ACK";
    case PacketType::kBeacon: return "BEACON";
    case PacketType::kJoinRequest: return "JOIN_REQ";
    case PacketType::kJoinChallenge: return "JOIN_CHAL";
    case PacketType::kJoinResponse: return "JOIN_RESP";
    case PacketType::kJoinAccept: return "JOIN_ACCEPT";
    case PacketType::kJoinReject: return "JOIN_REJECT";
    case PacketType::kLeave: return "LEAVE";
    case PacketType::kHeartbeat: return "HEARTBEAT";
    case PacketType::kPromotionClaim: return "PROMO_CLAIM";
    case PacketType::kPromotionVote: return "PROMO_VOTE";
  }
  return "?";
}

namespace {
bool valid_type(std::uint8_t t) {
  switch (static_cast<PacketType>(t)) {
    case PacketType::kData:
    case PacketType::kAck:
    case PacketType::kBeacon:
    case PacketType::kJoinRequest:
    case PacketType::kJoinChallenge:
    case PacketType::kJoinResponse:
    case PacketType::kJoinAccept:
    case PacketType::kJoinReject:
    case PacketType::kLeave:
    case PacketType::kHeartbeat:
    case PacketType::kPromotionClaim:
    case PacketType::kPromotionVote:
      return true;
  }
  return false;
}
}  // namespace

std::size_t Packet::payload_wire_size() const {
  if (batch.empty()) return payload.size() + payload_tail.size();
  std::size_t total = 0;
  for (const Sub& s : batch) total += 2 + s.head.size() + s.tail.size();
  return total;
}

Bytes Packet::encode() const {
  std::size_t total = payload_wire_size();
  if (total > 0xFFFF) {
    throw std::length_error("packet payload exceeds u16 length prefix");
  }
  Writer w(kOverhead + total);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(flags);
  w.u32(session);
  w.u48(src.raw());
  w.u48(dst.raw());
  w.u32(seq);
  w.u32(ack);
  w.u16(static_cast<std::uint16_t>(total));
  if (batch.empty()) {
    w.raw(payload);
    w.raw(payload_tail);
  } else {
    for (const Sub& s : batch) {
      w.u16(static_cast<std::uint16_t>(s.head.size() + s.tail.size()));
      w.raw(s.head);
      w.raw(s.tail);
    }
  }
  std::uint32_t crc = crc32(w.bytes());
  w.u32(crc);
  return std::move(w).take();
}

std::optional<Packet> Packet::decode(BytesView datagram) {
  if (datagram.size() < kOverhead) return std::nullopt;
  // CRC covers everything before the trailing 4 bytes.
  BytesView body = datagram.subspan(0, datagram.size() - 4);
  Reader crc_reader(datagram.subspan(datagram.size() - 4));
  std::uint32_t want = 0;
  try {
    want = crc_reader.u32();
    if (crc32(body) != want) return std::nullopt;

    Reader r(body);
    if (r.u16() != kMagic) return std::nullopt;
    if (r.u8() != kVersion) return std::nullopt;
    std::uint8_t raw_type = r.u8();
    if (!valid_type(raw_type)) return std::nullopt;

    Packet p;
    p.type = static_cast<PacketType>(raw_type);
    p.flags = r.u16();
    p.session = r.u32();
    p.src = ServiceId(r.u48());
    p.dst = ServiceId(r.u48());
    p.seq = r.u32();
    p.ack = r.u32();
    p.payload = r.blob16();
    if (!r.done()) return std::nullopt;  // trailing garbage under valid CRC
    if (p.type == PacketType::kData && (p.flags & kFlagBatched) != 0 &&
        !split_batch(p.payload)) {
      return std::nullopt;  // sub-lengths do not tile the payload
    }
    return p;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::optional<std::vector<BytesView>> Packet::split_batch(BytesView payload) {
  std::vector<BytesView> subs;
  try {
    Reader r(payload);
    if (r.done()) return std::nullopt;  // a batch carries at least one sub
    while (!r.done()) subs.push_back(r.raw(r.u16()));
  } catch (const DecodeError&) {
    return std::nullopt;
  }
  return subs;
}

}  // namespace amuse
