#include "wire/reliable_channel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace amuse {

ReliableChannel::ReliableChannel(Executor& executor, ServiceId self,
                                 ServiceId peer, std::uint32_t session,
                                 ReliableChannelConfig config,
                                 SendPacketFn send_packet, DeliverFn deliver,
                                 FailFn on_fail)
    : executor_(executor),
      self_(self),
      peer_(peer),
      session_(session),
      config_(config),
      send_packet_(std::move(send_packet)),
      deliver_(std::move(deliver)),
      on_fail_(std::move(on_fail)),
      rto_(config.rto_initial) {}

ReliableChannel::~ReliableChannel() {
  executor_.cancel(timer_);
  executor_.cancel(ack_timer_);
  // Return retained bytes to the bus-wide ledger. Silent (no shed/pressure
  // callbacks): the owner is tearing the channel down and may itself be
  // mid-destruction.
  if (config_.shared_budget) {
    for (const Outbound& o : window_) config_.shared_budget->release(o.payload);
    for (const Outbound& o : queue_) config_.shared_budget->release(o.payload);
  }
}

std::size_t ReliableChannel::in_flight() const { return window_.size(); }

Bytes SharedPayload::flatten() const {
  Bytes whole = head;
  if (tail) whole.insert(whole.end(), tail->begin(), tail->end());
  return whole;
}

bool ReliableChannel::send(Bytes message, MsgClass cls) {
  return send(SharedPayload{std::move(message), nullptr}, cls);
}

bool ReliableChannel::send(SharedPayload payload, MsgClass cls) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "ReliableChannel::send");
  std::size_t frag = config_.max_fragment_payload;
  std::size_t total = payload.size();
  std::size_t pieces =
      (frag == 0 || total <= frag) ? 1 : (total + frag - 1) / frag;
  if (cls == MsgClass::kData) {
    // Admission control for data: the legacy count cap, then the byte
    // budget — shed the oldest queued data first to make room, and drop
    // the newcomer only when shedding cannot free enough. Control traffic
    // bypasses both (it is small, rare, and protocol-load-bearing).
    if (queue_.size() + pieces > config_.max_queue) {
      account_shed(total, payload);
      return false;
    }
    if (config_.max_queue_bytes > 0) {
      while (retained_bytes_ + total > config_.max_queue_bytes &&
             shed_oldest_data()) {
      }
      if (retained_bytes_ + total > config_.max_queue_bytes) {
        account_shed(total, payload);
        return false;
      }
    }
  }
  std::vector<Outbound> out;
  out.reserve(pieces);
  if (pieces == 1) {
    out.push_back(Outbound{0, 0, std::move(payload), true, cls});
  } else {
    // Fragment: a message too large for one frame is materialised —
    // fragments re-own their slice regardless, so the shared tail saves
    // nothing here.
    Bytes message = payload.flatten();
    for (std::size_t off = 0; off < message.size(); off += frag) {
      std::size_t len = std::min(frag, message.size() - off);
      bool last = off + len >= message.size();
      Outbound o{0, last ? std::uint16_t{0} : kFlagMoreFragments,
                 SharedPayload{
                     Bytes(message.begin() + static_cast<std::ptrdiff_t>(off),
                           message.begin() +
                               static_cast<std::ptrdiff_t>(off + len)),
                     nullptr},
                 /*batchable=*/false, cls};
      ++stats_.fragments_sent;
      out.push_back(std::move(o));
    }
  }
  if (cls == MsgClass::kControl) ++stats_.control_sent;
  enqueue_pieces(std::move(out), cls);
  pump(/*flush=*/false);
  update_pressure();
  return true;
}

void ReliableChannel::enqueue_pieces(std::vector<Outbound> pieces,
                                     MsgClass cls) {
  std::size_t pos = queue_.size();
  if (cls == MsgClass::kControl) {
    // Control jumps the data backlog but stays FIFO among control: insert
    // after the leading run of control entries. A fragment train is never
    // split — its continuation entries are not valid insertion points, and
    // a train whose head already moved into the window pins the queue
    // front (interleaving a foreign message would corrupt reassembly).
    pos = 0;
    bool in_train = !window_.empty() &&
                    (window_.back().flags & kFlagMoreFragments) != 0;
    while (pos < queue_.size()) {
      const Outbound& o = queue_[pos];
      bool continuation = in_train;
      in_train = (o.flags & kFlagMoreFragments) != 0;
      if (!continuation && o.cls != MsgClass::kControl) break;
      ++pos;
    }
  }
  for (const Outbound& o : pieces) charge_entry(o);
  queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(pos),
                std::make_move_iterator(pieces.begin()),
                std::make_move_iterator(pieces.end()));
}

bool ReliableChannel::shed_oldest_data() {
  // Head of the oldest data-class message lying wholly in the queue: skip
  // control entries and any fragments continuing a train begun in the
  // window (the peer may already hold its first pieces).
  std::size_t start = 0;
  bool in_train = !window_.empty() &&
                  (window_.back().flags & kFlagMoreFragments) != 0;
  while (start < queue_.size()) {
    const Outbound& o = queue_[start];
    bool continuation = in_train;
    in_train = (o.flags & kFlagMoreFragments) != 0;
    if (!continuation && o.cls == MsgClass::kData) break;
    ++start;
  }
  if (start >= queue_.size()) return false;
  // The whole fragment train sheds as one message (it was one send()).
  std::size_t end = start + 1;
  while (end < queue_.size() &&
         (queue_[end - 1].flags & kFlagMoreFragments) != 0) {
    ++end;
  }
  Bytes whole;
  std::size_t bytes = 0;
  for (std::size_t i = start; i < end; ++i) {
    const SharedPayload& pl = queue_[i].payload;
    bytes += pl.size();
    whole.insert(whole.end(), pl.head.begin(), pl.head.end());
    if (pl.tail) whole.insert(whole.end(), pl.tail->begin(), pl.tail->end());
  }
  for (std::size_t i = start; i < end; ++i) release_entry(queue_[i]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(start),
               queue_.begin() + static_cast<std::ptrdiff_t>(end));
  ++stats_.events_shed;
  stats_.bytes_shed += bytes;
  if (on_shed_) on_shed_(whole);
  update_pressure();
  return true;
}

void ReliableChannel::account_shed(std::size_t bytes,
                                   const SharedPayload& payload) {
  ++stats_.events_shed;
  stats_.bytes_shed += bytes;
  if (on_shed_) {
    if (payload.tail) {
      Bytes whole = payload.flatten();
      on_shed_(whole);
    } else {
      on_shed_(payload.head);
    }
  }
}

void ReliableChannel::charge_entry(const Outbound& entry) {
  retained_bytes_ += entry.payload.size();
  if (config_.shared_budget) config_.shared_budget->charge(entry.payload);
  stats_.peak_retained_bytes = std::max<std::uint64_t>(
      stats_.peak_retained_bytes, retained_bytes_);
}

void ReliableChannel::release_entry(const Outbound& entry) {
  retained_bytes_ -= entry.payload.size();
  if (config_.shared_budget) config_.shared_budget->release(entry.payload);
}

void ReliableChannel::update_pressure() {
  std::size_t high = config_.flow_high_water;
  if (high == 0) return;
  std::size_t low =
      config_.flow_low_water != 0 ? config_.flow_low_water : high / 2;
  if (!pressured_ && retained_bytes_ >= high) {
    pressured_ = true;
    ++stats_.pressure_raised;
    if (on_pressure_) on_pressure_(true);
  } else if (pressured_ && retained_bytes_ <= low) {
    pressured_ = false;
    if (on_pressure_) on_pressure_(false);
  }
}

bool ReliableChannel::coalescing() const {
  return config_.max_batch_messages > 1 && config_.max_batch_bytes > 0;
}

std::size_t ReliableChannel::batch_byte_budget() const {
  std::size_t budget = config_.max_batch_bytes;
  // A coalesced frame must still fit wherever a fragment would: on
  // small-MTU transports the fragment payload is the frame size bound.
  if (config_.max_fragment_payload > 0) {
    budget = std::min(budget, config_.max_fragment_payload);
  }
  return budget;
}

ReliableChannel::FramePlan ReliableChannel::plan_frame(
    const std::deque<Outbound>& entries, std::size_t from) const {
  FramePlan plan;
  if (!coalescing() || !entries[from].batchable) return plan;  // {1, closed}
  std::size_t budget = batch_byte_budget();
  std::size_t bytes = 2 + entries[from].payload.size();
  std::size_t count = 1;
  while (from + count < entries.size()) {
    const Outbound& next = entries[from + count];
    if (!next.batchable || count >= config_.max_batch_messages) {
      return {count, true};
    }
    std::size_t cost = 2 + next.payload.size();
    if (bytes + cost > budget) return {count, true};
    bytes += cost;
    ++count;
  }
  plan.count = count;
  plan.closed = count >= config_.max_batch_messages || bytes >= budget;
  return plan;
}

bool ReliableChannel::begin_collect() {
  if (!send_frames_ || collecting_) return false;
  collecting_ = true;
  return true;
}

void ReliableChannel::end_collect(bool opened) {
  if (!opened) return;
  collecting_ = false;
  flush_egress();
}

void ReliableChannel::flush_egress() {
  if (egress_.empty()) return;
  if (egress_.size() == 1 || !send_frames_) {
    for (const Packet& p : egress_) send_packet_(p);
  } else {
    ++stats_.frame_bursts;
    send_frames_(egress_);
  }
  egress_.clear();
}

void ReliableChannel::pump(bool flush) {
  bool opened = begin_collect();
  while (!queue_.empty() && window_.size() < config_.window) {
    FramePlan plan = plan_frame(queue_, 0);
    // Nagle-style hold: a partial batch waits for more data while earlier
    // frames are in flight — the returning ack flushes it.
    if (!flush && !plan.closed && !window_.empty()) break;
    std::size_t count =
        std::min(plan.count, config_.window - window_.size());
    std::size_t frame_start = window_.size();
    for (std::size_t i = 0; i < count; ++i) {
      Outbound o = std::move(queue_.front());
      o.seq = next_seq_++;
      queue_.pop_front();
      window_.push_back(std::move(o));
      ++stats_.messages_sent;
    }
    if (!failed_) {
      transmit_range(frame_start, count);
      // First transmission of a fresh frame: candidate RTT sample.
      if (config_.adaptive_rto && !rtt_pending_) {
        rtt_pending_ = true;
        rtt_seq_ = window_[frame_start].seq;
        rtt_sent_ = executor_.now();
      }
    }
  }
  end_collect(opened);
  if (!window_.empty() && !failed_) arm_timer();
}

void ReliableChannel::transmit_range(std::size_t from, std::size_t count) {
  Packet p;
  p.type = PacketType::kData;
  p.session = session_;
  p.src = self_;
  p.dst = peer_;
  p.seq = window_[from].seq;
  p.ack = expected_;  // piggyback the cumulative ack
  if (count <= 1) {
    const Outbound& o = window_[from];
    p.flags = o.flags;
    p.payload = o.payload.head;
    // The shared tail stays by reference right up to frame assembly; the
    // Outbound entry keeps the bytes alive for the duration of the send.
    if (o.payload.tail) p.payload_tail = BytesView(*o.payload.tail);
  } else {
    p.flags = kFlagBatched;
    p.batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const SharedPayload& pl = window_[from + i].payload;
      p.batch.push_back(Packet::Sub{
          BytesView(pl.head), pl.tail ? BytesView(*pl.tail) : BytesView{}});
    }
    ++stats_.batches_sent;
    stats_.batched_messages += count;
  }
  record_wire(p.payload_wire_size());
  clear_ack_debt();  // the frame carries our cumulative ack
  if (collecting_) {
    egress_.push_back(std::move(p));
    return;
  }
  send_packet_(p);
}

void ReliableChannel::transmit_window(bool count_as_retransmission) {
  bool opened = begin_collect();
  for (std::size_t i = 0; i < window_.size();) {
    std::size_t count = plan_frame(window_, i).count;
    if (count_as_retransmission) stats_.retransmissions += count;
    transmit_range(i, count);
    i += count;
  }
  end_collect(opened);
}

void ReliableChannel::send_ack() {
  Packet p;
  p.type = PacketType::kAck;
  p.session = session_;
  p.src = self_;
  p.dst = peer_;
  p.ack = expected_;
  ++stats_.acks_sent;
  record_wire(0);
  send_packet_(p);
}

void ReliableChannel::send_ack_now() {
  executor_.cancel(ack_timer_);
  ack_timer_ = kNoTimer;
  ack_debt_ = 0;
  send_ack();
}

void ReliableChannel::note_in_order_frame() {
  if (config_.ack_delay == Duration{}) {
    send_ack_now();
    return;
  }
  if (++ack_debt_ >= 2) {  // RFC 1122: ack at least every second frame
    send_ack_now();
    return;
  }
  ++stats_.acks_delayed;
  if (ack_timer_ == kNoTimer) {
    ack_timer_ = executor_.schedule_after(config_.ack_delay, [this] {
      ack_timer_ = kNoTimer;
      send_ack_now();
    });
  }
}

void ReliableChannel::note_duplicate_frame() {
  if (config_.ack_delay == Duration{}) {
    send_ack_now();
    return;
  }
  // A go-back-N burst of stale duplicates (our acks were lost) must not
  // answer datagram-for-datagram: ride one timer, send one ack.
  ++stats_.acks_delayed;
  if (ack_timer_ == kNoTimer) {
    ack_timer_ = executor_.schedule_after(config_.ack_delay, [this] {
      ack_timer_ = kNoTimer;
      send_ack_now();
    });
  }
}

void ReliableChannel::clear_ack_debt() {
  ack_debt_ = 0;
  if (ack_timer_ != kNoTimer) {
    executor_.cancel(ack_timer_);
    ack_timer_ = kNoTimer;
  }
}

void ReliableChannel::record_wire(std::size_t payload_bytes) {
  ++stats_.datagrams_sent;
  stats_.bytes_on_wire += Packet::kOverhead + payload_bytes;
}

void ReliableChannel::arm_timer() {
  if (timer_ != kNoTimer) return;
  timer_ = executor_.schedule_after(rto_, [this] {
    timer_ = kNoTimer;
    on_timeout();
  });
}

void ReliableChannel::on_timeout() {
  if (window_.empty() || failed_) return;
  if (retries_ >= config_.max_retries) {
    failed_ = true;
    if (on_fail_) on_fail_();
    return;
  }
  ++retries_;
  rto_ = std::min(
      Duration(static_cast<std::int64_t>(
          static_cast<double>(rto_.count()) * config_.rto_backoff)),
      config_.rto_max);
  // Karn's rule: a retransmitted message cannot yield an RTT sample.
  rtt_pending_ = false;
  // Go-back-N: retransmit the whole window (re-coalesced — the batch
  // budget amortises the retransmission burst too).
  transmit_window(/*count_as_retransmission=*/true);
  arm_timer();
}

Duration ReliableChannel::base_rto() const {
  if (!config_.adaptive_rto || !have_srtt_) return config_.rto_initial;
  Duration rto(static_cast<std::int64_t>(srtt_ns_ + 4.0 * rttvar_ns_));
  return std::clamp(rto, config_.rto_min, config_.rto_max);
}

void ReliableChannel::take_rtt_sample(Duration sample) {
  double s = static_cast<double>(sample.count());
  if (!have_srtt_) {
    srtt_ns_ = s;
    rttvar_ns_ = s / 2.0;
    have_srtt_ = true;
  } else {
    rttvar_ns_ = 0.75 * rttvar_ns_ + 0.25 * std::abs(srtt_ns_ - s);
    srtt_ns_ = 0.875 * srtt_ns_ + 0.125 * s;
  }
}

void ReliableChannel::poke() {
  if (!failed_) return;
  failed_ = false;
  retries_ = 0;
  rto_ = base_rto();
  transmit_window(/*count_as_retransmission=*/false);
  pump();
  if (!window_.empty()) arm_timer();
}

void ReliableChannel::reset() {
  executor_.cancel(timer_);
  timer_ = kNoTimer;
  for (const Outbound& o : window_) release_entry(o);
  for (const Outbound& o : queue_) release_entry(o);
  window_.clear();
  queue_.clear();
  // Keep next_seq_ monotonic within this session so a reset sender can't
  // collide with sequence numbers the peer may already have buffered.
  base_ = next_seq_;
  retries_ = 0;
  rto_ = base_rto();
  rtt_pending_ = false;
  failed_ = false;
  update_pressure();
}

void ReliableChannel::on_packet(const Packet& packet) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "ReliableChannel::on_packet");
  if (packet.src != peer_) return;
  switch (packet.type) {
    case PacketType::kData:
      handle_data(packet);
      // DATA also piggybacks the peer's cumulative ack of our stream.
      handle_ack(packet);
      break;
    case PacketType::kAck:
      handle_ack(packet);
      break;
    default:
      break;
  }
}

void ReliableChannel::handle_data(const Packet& packet) {
  // Split a batched payload before touching any state: a malformed batch
  // (possible only on hand-fed packets — decode() validates wire frames)
  // must not adopt a session or advance ordering.
  std::vector<BytesView> subs;
  std::uint16_t sub_flags = packet.flags;
  if ((packet.flags & kFlagBatched) != 0) {
    auto parsed = Packet::split_batch(packet.payload);
    if (!parsed) {
      ++stats_.malformed_batch_dropped;
      return;
    }
    subs = std::move(*parsed);
    sub_flags = packet.flags & static_cast<std::uint16_t>(~kFlagBatched);
  } else {
    subs.emplace_back(packet.payload);
  }
  // The frame covers seqs [packet.seq, packet.seq + count) — one message
  // per sub. Range arithmetic in 64 bits so a forged seq near the top of
  // u32 cannot wrap.
  const auto count = static_cast<std::uint64_t>(subs.size());
  const auto first = static_cast<std::uint64_t>(packet.seq);

  // Session handling: adopt a new peer incarnation only at its seq 0, and
  // only if the session clears the configured floor — a fresh receiver must
  // not mistake a stale retransmission of a purged incarnation's first
  // frame for its own new stream.
  if (!peer_session_known_ || packet.session != peer_session_) {
    if (packet.seq != 0 || packet.session < config_.min_peer_session) {
      ++stats_.stale_session_dropped;
      return;
    }
    peer_session_known_ = true;
    peer_session_ = packet.session;
    expected_ = 0;
    reorder_.clear();
    reassembly_.clear();
    reassembling_ = false;
    discarding_ = false;
  }

  if (first + count <= expected_) {
    // Duplicate of something already delivered in full: re-ack (delayed —
    // a retransmitted go-back-N window must not trigger an ack burst).
    ++stats_.duplicates_dropped;
    note_duplicate_frame();
    return;
  }
  if (first <= expected_) {
    // In order, possibly overlapping already-delivered seqs at the front
    // of a partially acked batch: deliver only the unseen tail.
    std::size_t skip = expected_ - first;
    stats_.duplicates_dropped += skip;
    for (std::size_t i = skip; i < subs.size(); ++i) {
      ++expected_;
      deliver_or_reassemble(sub_flags, subs[i]);
    }
    // Drain any buffered successors.
    auto it = reorder_.begin();
    while (it != reorder_.end() && it->first == expected_) {
      ++expected_;
      auto [flags, msg] = std::move(it->second);
      it = reorder_.erase(it);
      deliver_or_reassemble(flags, msg);
    }
    note_in_order_frame();
    return;
  }
  // Out of order: buffer each sub-message at its own seq unless it's a
  // duplicate or the buffer is full, then ack immediately — duplicate
  // cumulative acks are the sender's fast-retransmit signal.
  for (std::size_t i = 0; i < subs.size(); ++i) {
    auto seq = static_cast<std::uint32_t>(first + i);
    if (reorder_.size() < config_.max_reorder && !reorder_.contains(seq)) {
      ++stats_.out_of_order_buffered;
      reorder_.emplace(
          seq, std::make_pair(sub_flags,
                              Bytes(subs[i].begin(), subs[i].end())));
    } else {
      ++stats_.duplicates_dropped;
    }
  }
  send_ack_now();
}

void ReliableChannel::deliver_or_reassemble(std::uint16_t flags,
                                            BytesView payload) {
  bool more = (flags & kFlagMoreFragments) != 0;
  if (discarding_) {
    // An earlier fragment of this message overflowed: swallow the rest.
    if (!more) discarding_ = false;
    return;
  }
  if (!more && !reassembling_) {
    // The common case: an unfragmented message.
    ++stats_.messages_delivered;
    if (deliver_) deliver_(payload);
    return;
  }
  if (reassembly_.size() + payload.size() > config_.max_reassembly_bytes) {
    ++stats_.reassembly_overflow_dropped;
    reassembly_.clear();
    reassembling_ = false;
    discarding_ = more;  // skip this message's remaining fragments
    return;
  }
  reassembly_.insert(reassembly_.end(), payload.begin(), payload.end());
  reassembling_ = more;
  if (!more) {
    ++stats_.messages_delivered;
    ++stats_.messages_reassembled;
    Bytes whole = std::move(reassembly_);
    reassembly_ = Bytes{};
    if (deliver_) deliver_(whole);
  }
}

void ReliableChannel::handle_ack(const Packet& packet) {
  std::uint32_t acked = packet.ack;
  if (acked == base_ && !window_.empty() && !failed_) {
    // Duplicate cumulative ack: the peer is receiving our later messages
    // past a hole. Fast-retransmit the window head without waiting for the
    // (possibly heavily backed-off) timer.
    if (config_.dup_ack_threshold > 0 &&
        ++dup_acks_ >= config_.dup_ack_threshold) {
      dup_acks_ = 0;
      ++stats_.fast_retransmits;
      if (rtt_pending_ && rtt_seq_ == window_.front().seq) {
        rtt_pending_ = false;  // Karn: head is being retransmitted
      }
      transmit_range(0, 1);
    }
    return;
  }
  if (acked <= base_) return;  // stale
  if (acked > next_seq_) return;  // nonsense (corrupt peer)
  dup_acks_ = 0;
  while (!window_.empty() && window_.front().seq < acked) {
    release_entry(window_.front());
    window_.pop_front();
  }
  base_ = acked;
  bool sampled = false;
  if (rtt_pending_ && acked > rtt_seq_) {
    take_rtt_sample(executor_.now() - rtt_sent_);
    rtt_pending_ = false;
    sampled = true;
  }
  retries_ = 0;
  // RFC 6298 §5.7: after a retransmission, keep the backed-off RTO until a
  // *fresh* RTT sample arrives (Karn's rule invalidates samples from
  // retransmitted messages, so resetting here on every ack would let a
  // stale, small SRTT sustain a retransmission storm under load).
  if (sampled || rto_ < base_rto()) {
    rto_ = base_rto();
  }
  executor_.cancel(timer_);
  timer_ = kNoTimer;
  if (failed_) {
    failed_ = false;  // the peer is evidently alive again
  }
  pump();
  if (!window_.empty()) arm_timer();
  update_pressure();
}

}  // namespace amuse
