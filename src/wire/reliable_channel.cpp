#include "wire/reliable_channel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace amuse {

ReliableChannel::ReliableChannel(Executor& executor, ServiceId self,
                                 ServiceId peer, std::uint32_t session,
                                 ReliableChannelConfig config,
                                 SendPacketFn send_packet, DeliverFn deliver,
                                 FailFn on_fail)
    : executor_(executor),
      self_(self),
      peer_(peer),
      session_(session),
      config_(config),
      send_packet_(std::move(send_packet)),
      deliver_(std::move(deliver)),
      on_fail_(std::move(on_fail)),
      rto_(config.rto_initial) {}

ReliableChannel::~ReliableChannel() { executor_.cancel(timer_); }

std::size_t ReliableChannel::in_flight() const { return window_.size(); }

Bytes SharedPayload::flatten() const {
  Bytes whole = head;
  if (tail) whole.insert(whole.end(), tail->begin(), tail->end());
  return whole;
}

bool ReliableChannel::send(Bytes message) {
  return send(SharedPayload{std::move(message), nullptr});
}

bool ReliableChannel::send(SharedPayload payload) {
  std::size_t frag = config_.max_fragment_payload;
  std::size_t total = payload.size();
  if (frag == 0 || total <= frag) {
    if (queue_.size() >= config_.max_queue) return false;
    queue_.push_back(Outbound{0, 0, std::move(payload)});
    pump();
    return true;
  }
  // Fragment: all pieces must fit in the queue or none are sent. A message
  // too large for one frame is materialised — fragments re-own their slice
  // regardless, so the shared tail saves nothing here.
  std::size_t pieces = (total + frag - 1) / frag;
  if (queue_.size() + pieces > config_.max_queue) return false;
  Bytes message = payload.flatten();
  for (std::size_t off = 0; off < message.size(); off += frag) {
    std::size_t len = std::min(frag, message.size() - off);
    bool last = off + len >= message.size();
    Outbound o{0, last ? std::uint16_t{0} : kFlagMoreFragments,
               SharedPayload{
                   Bytes(message.begin() + static_cast<std::ptrdiff_t>(off),
                         message.begin() +
                             static_cast<std::ptrdiff_t>(off + len)),
                   nullptr}};
    ++stats_.fragments_sent;
    queue_.push_back(std::move(o));
  }
  pump();
  return true;
}

void ReliableChannel::pump() {
  while (!queue_.empty() && window_.size() < config_.window) {
    Outbound o = std::move(queue_.front());
    o.seq = next_seq_++;
    queue_.pop_front();
    window_.push_back(std::move(o));
    ++stats_.messages_sent;
    if (!failed_) {
      transmit(window_.back());
      // First transmission of a fresh message: candidate RTT sample.
      if (config_.adaptive_rto && !rtt_pending_) {
        rtt_pending_ = true;
        rtt_seq_ = window_.back().seq;
        rtt_sent_ = executor_.now();
      }
    }
  }
  if (!window_.empty() && !failed_) arm_timer();
}

void ReliableChannel::transmit(const Outbound& o) {
  Packet p;
  p.type = PacketType::kData;
  p.flags = o.flags;
  p.session = session_;
  p.src = self_;
  p.dst = peer_;
  p.seq = o.seq;
  p.ack = expected_;  // piggyback the cumulative ack
  p.payload = o.payload.head;
  // The shared tail stays by reference right up to frame assembly; the
  // Outbound entry keeps the bytes alive for the duration of the send.
  if (o.payload.tail) p.payload_tail = BytesView(*o.payload.tail);
  send_packet_(p);
}

void ReliableChannel::send_ack() {
  Packet p;
  p.type = PacketType::kAck;
  p.session = session_;
  p.src = self_;
  p.dst = peer_;
  p.ack = expected_;
  ++stats_.acks_sent;
  send_packet_(p);
}

void ReliableChannel::arm_timer() {
  if (timer_ != kNoTimer) return;
  timer_ = executor_.schedule_after(rto_, [this] {
    timer_ = kNoTimer;
    on_timeout();
  });
}

void ReliableChannel::on_timeout() {
  if (window_.empty() || failed_) return;
  if (retries_ >= config_.max_retries) {
    failed_ = true;
    if (on_fail_) on_fail_();
    return;
  }
  ++retries_;
  rto_ = std::min(
      Duration(static_cast<std::int64_t>(
          static_cast<double>(rto_.count()) * config_.rto_backoff)),
      config_.rto_max);
  // Karn's rule: a retransmitted message cannot yield an RTT sample.
  rtt_pending_ = false;
  // Go-back-N: retransmit the whole window.
  for (const Outbound& o : window_) {
    ++stats_.retransmissions;
    transmit(o);
  }
  arm_timer();
}

Duration ReliableChannel::base_rto() const {
  if (!config_.adaptive_rto || !have_srtt_) return config_.rto_initial;
  Duration rto(static_cast<std::int64_t>(srtt_ns_ + 4.0 * rttvar_ns_));
  return std::clamp(rto, config_.rto_min, config_.rto_max);
}

void ReliableChannel::take_rtt_sample(Duration sample) {
  double s = static_cast<double>(sample.count());
  if (!have_srtt_) {
    srtt_ns_ = s;
    rttvar_ns_ = s / 2.0;
    have_srtt_ = true;
  } else {
    rttvar_ns_ = 0.75 * rttvar_ns_ + 0.25 * std::abs(srtt_ns_ - s);
    srtt_ns_ = 0.875 * srtt_ns_ + 0.125 * s;
  }
}

void ReliableChannel::poke() {
  if (!failed_) return;
  failed_ = false;
  retries_ = 0;
  rto_ = base_rto();
  for (const Outbound& o : window_) transmit(o);
  pump();
  if (!window_.empty()) arm_timer();
}

void ReliableChannel::reset() {
  executor_.cancel(timer_);
  timer_ = kNoTimer;
  window_.clear();
  queue_.clear();
  // Keep next_seq_ monotonic within this session so a reset sender can't
  // collide with sequence numbers the peer may already have buffered.
  base_ = next_seq_;
  retries_ = 0;
  rto_ = base_rto();
  rtt_pending_ = false;
  failed_ = false;
}

void ReliableChannel::on_packet(const Packet& packet) {
  if (packet.src != peer_) return;
  switch (packet.type) {
    case PacketType::kData:
      handle_data(packet);
      // DATA also piggybacks the peer's cumulative ack of our stream.
      handle_ack(packet);
      break;
    case PacketType::kAck:
      handle_ack(packet);
      break;
    default:
      break;
  }
}

void ReliableChannel::handle_data(const Packet& packet) {
  // Session handling: adopt a new peer incarnation only at its seq 0.
  if (!peer_session_known_ || packet.session != peer_session_) {
    if (packet.seq != 0) {
      ++stats_.stale_session_dropped;
      return;
    }
    peer_session_known_ = true;
    peer_session_ = packet.session;
    expected_ = 0;
    reorder_.clear();
    reassembly_.clear();
    reassembling_ = false;
    discarding_ = false;
  }

  if (packet.seq < expected_) {
    // Duplicate of something already delivered: re-ack, drop.
    ++stats_.duplicates_dropped;
    send_ack();
    return;
  }
  if (packet.seq == expected_) {
    ++expected_;
    deliver_or_reassemble(packet.flags, packet.payload);
    // Drain any buffered successors.
    auto it = reorder_.begin();
    while (it != reorder_.end() && it->first == expected_) {
      ++expected_;
      auto [flags, msg] = std::move(it->second);
      it = reorder_.erase(it);
      deliver_or_reassemble(flags, msg);
    }
  } else {
    // Out of order: buffer unless it's a duplicate or the buffer is full.
    if (reorder_.size() < config_.max_reorder &&
        !reorder_.contains(packet.seq)) {
      ++stats_.out_of_order_buffered;
      reorder_.emplace(packet.seq,
                       std::make_pair(packet.flags, packet.payload));
    } else {
      ++stats_.duplicates_dropped;
    }
  }
  send_ack();
}

void ReliableChannel::deliver_or_reassemble(std::uint16_t flags,
                                            BytesView payload) {
  bool more = (flags & kFlagMoreFragments) != 0;
  if (discarding_) {
    // An earlier fragment of this message overflowed: swallow the rest.
    if (!more) discarding_ = false;
    return;
  }
  if (!more && !reassembling_) {
    // The common case: an unfragmented message.
    ++stats_.messages_delivered;
    if (deliver_) deliver_(payload);
    return;
  }
  if (reassembly_.size() + payload.size() > config_.max_reassembly_bytes) {
    ++stats_.reassembly_overflow_dropped;
    reassembly_.clear();
    reassembling_ = false;
    discarding_ = more;  // skip this message's remaining fragments
    return;
  }
  reassembly_.insert(reassembly_.end(), payload.begin(), payload.end());
  reassembling_ = more;
  if (!more) {
    ++stats_.messages_delivered;
    ++stats_.messages_reassembled;
    Bytes whole = std::move(reassembly_);
    reassembly_ = Bytes{};
    if (deliver_) deliver_(whole);
  }
}

void ReliableChannel::handle_ack(const Packet& packet) {
  std::uint32_t acked = packet.ack;
  if (acked == base_ && !window_.empty() && !failed_) {
    // Duplicate cumulative ack: the peer is receiving our later messages
    // past a hole. Fast-retransmit the window head without waiting for the
    // (possibly heavily backed-off) timer.
    if (config_.dup_ack_threshold > 0 &&
        ++dup_acks_ >= config_.dup_ack_threshold) {
      dup_acks_ = 0;
      ++stats_.fast_retransmits;
      if (rtt_pending_ && rtt_seq_ == window_.front().seq) {
        rtt_pending_ = false;  // Karn: head is being retransmitted
      }
      transmit(window_.front());
    }
    return;
  }
  if (acked <= base_) return;  // stale
  if (acked > next_seq_) return;  // nonsense (corrupt peer)
  dup_acks_ = 0;
  while (!window_.empty() && window_.front().seq < acked) {
    window_.pop_front();
  }
  base_ = acked;
  bool sampled = false;
  if (rtt_pending_ && acked > rtt_seq_) {
    take_rtt_sample(executor_.now() - rtt_sent_);
    rtt_pending_ = false;
    sampled = true;
  }
  retries_ = 0;
  // RFC 6298 §5.7: after a retransmission, keep the backed-off RTO until a
  // *fresh* RTT sample arrives (Karn's rule invalidates samples from
  // retransmitted messages, so resetting here on every ack would let a
  // stale, small SRTT sustain a retransmission storm under load).
  if (sampled || rto_ < base_rto()) {
    rto_ = base_rto();
  }
  executor_.cancel(timer_);
  timer_ = kNoTimer;
  if (failed_) {
    failed_ = false;  // the peer is evidently alive again
  }
  pump();
  if (!window_.empty()) arm_timer();
}

}  // namespace amuse
