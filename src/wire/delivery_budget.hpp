// DeliveryBudget: a bus-wide ledger of payload bytes retained across every
// proxy channel's outbound queue and in-flight window.
//
// The paper's persistent delivery ("events are queued ... until the member
// is purged", §III-B) is only honest if the queues are bounded: a cell host
// is a PDA-class device, and one slow member must not pin the whole fan-out
// history in memory. Each channel charges the ledger when it retains a
// payload and releases it when the entry is acked, shed, or reset.
//
// SharedPayload awareness: the encode-once fan-out (DESIGN.md §7) queues one
// shared event body across N member channels. Charging that body N times
// would overstate real memory N-fold and make the bus-wide budget shed far
// too early, so shared tails are refcounted — the bytes are charged on the
// first retaining entry and released with the last. Heads are owned per
// entry and always charged.
//
// Single-threaded like the rest of the delivery pipeline: every charge and
// release happens on the bus's executor.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "common/bytes.hpp"

namespace amuse {

struct SharedPayload;

class DeliveryBudget {
 public:
  explicit DeliveryBudget(std::size_t limit) : limit_(limit) {}

  DeliveryBudget(const DeliveryBudget&) = delete;
  DeliveryBudget& operator=(const DeliveryBudget&) = delete;

  /// Accounts one retaining queue entry. The head is charged in full; the
  /// shared tail only on its first retainer.
  void charge(const SharedPayload& payload);
  /// Releases one retaining queue entry (ack, shed, or channel reset).
  void release(const SharedPayload& payload);

  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t limit() const { return limit_; }
  [[nodiscard]] bool over_limit() const { return used_ > limit_; }

 private:
  std::size_t limit_;
  std::size_t used_ = 0;
  // Shared tail → number of queue entries (across all channels) retaining
  // it. Keyed by the buffer address: SharedPayload tails are immutable and
  // a given Bytes object is shared by pointer across the fan-out.
  std::unordered_map<const Bytes*, std::size_t> tail_refs_;
};

}  // namespace amuse
