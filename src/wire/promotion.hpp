// Promotion arbitration frames (DESIGN.md §13.5).
//
// When a standby's repl lease lapses it does not promote unilaterally any
// more: it broadcasts a kPromotionClaim to every peer on the replicated
// standby roster and only promotes once a majority of the roster (its own
// implicit vote included) has granted a kPromotionVote. Claims carry the
// claimed epoch, the claimant's synced repl version and a round nonce; votes
// echo the (epoch, nonce) pair so a claimant never counts grants from an
// earlier round.
//
// Both frames ride the unreliable packet layer directly (no channel, no
// session): they are idempotent, retried on the jittered lease-check timer,
// and carry the cell name so co-located cells cannot cross-arbitrate.
// Ordering between rival claimants is total and stable: higher synced
// version wins, ties break towards the smaller ServiceId.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/service_id.hpp"
#include "wire/packet.hpp"

namespace amuse {

struct PromotionClaim {
  std::string cell;           ///< cell name (cross-cell isolation)
  std::uint64_t epoch = 0;    ///< epoch the claimant would promote at
  std::uint64_t version = 0;  ///< claimant's synced repl version
  std::uint64_t nonce = 0;    ///< claim round; votes must echo it

  [[nodiscard]] Packet to_packet(ServiceId src, ServiceId dst) const;
  [[nodiscard]] static std::optional<PromotionClaim> decode(BytesView payload);
};

struct PromotionVote {
  std::string cell;
  std::uint64_t epoch = 0;  ///< echoed from the claim
  std::uint64_t nonce = 0;  ///< echoed from the claim
  bool granted = false;
  std::uint64_t voter_version = 0;  ///< voter's own synced repl version

  [[nodiscard]] Packet to_packet(ServiceId src, ServiceId dst) const;
  [[nodiscard]] static std::optional<PromotionVote> decode(BytesView payload);
};

/// The arbitration order: does claimant (va, a) beat rival (vb, b)?
/// Higher synced version wins; ties break to the smaller ServiceId.
[[nodiscard]] inline bool promotion_beats(std::uint64_t va, ServiceId a,
                                          std::uint64_t vb, ServiceId b) {
  if (va != vb) return va > vb;
  return a.raw() < b.raw();
}

}  // namespace amuse
