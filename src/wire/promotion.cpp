#include "wire/promotion.hpp"

namespace amuse {

Packet PromotionClaim::to_packet(ServiceId src, ServiceId dst) const {
  Packet p;
  p.type = PacketType::kPromotionClaim;
  p.src = src;
  p.dst = dst;
  Writer w;
  w.str(cell);
  w.u64(epoch);
  w.u64(version);
  w.u64(nonce);
  p.payload = std::move(w).take();
  return p;
}

std::optional<PromotionClaim> PromotionClaim::decode(BytesView payload) {
  try {
    Reader r(payload);
    PromotionClaim c;
    c.cell = r.str();
    c.epoch = r.u64();
    c.version = r.u64();
    c.nonce = r.u64();
    if (!r.done()) return std::nullopt;
    return c;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

Packet PromotionVote::to_packet(ServiceId src, ServiceId dst) const {
  Packet p;
  p.type = PacketType::kPromotionVote;
  p.src = src;
  p.dst = dst;
  Writer w;
  w.str(cell);
  w.u64(epoch);
  w.u64(nonce);
  w.boolean(granted);
  w.u64(voter_version);
  p.payload = std::move(w).take();
  return p;
}

std::optional<PromotionVote> PromotionVote::decode(BytesView payload) {
  try {
    Reader r(payload);
    PromotionVote v;
    v.cell = r.str();
    v.epoch = r.u64();
    v.nonce = r.u64();
    v.granted = r.boolean();
    v.voter_version = r.u64();
    if (!r.done()) return std::nullopt;
    return v;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace amuse
