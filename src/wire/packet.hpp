// Datagram packet format.
//
// Everything the SMC puts on the wire is one of these frames inside a
// transport datagram: reliable-channel DATA/ACK (carrying bus messages) and
// the discovery service's unreliable beacon/handshake packets. The format is
// self-describing and CRC-protected so corrupted or foreign datagrams are
// dropped at this boundary.
//
// Layout (big-endian):
//   magic   u16  = 0xA5EB ("AMUSE Event Bus")
//   version u8   = 1
//   type    u8   PacketType
//   flags   u16
//   session u32  sender's incarnation (distinguishes re-joins, see
//                ReliableChannel)
//   src     u48  ServiceId
//   dst     u48  ServiceId (broadcast() frames use ServiceId::broadcast())
//   seq     u32  data sequence number (DATA) / unused
//   ack     u32  cumulative acknowledgement: next seq expected from peer
//   payload u16-length-prefixed bytes
//   crc     u32  CRC-32 of all preceding bytes
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/service_id.hpp"

namespace amuse {

enum class PacketType : std::uint8_t {
  // Reliable channel.
  kData = 1,
  kAck = 2,
  // Discovery protocol (unreliable, idempotent).
  kBeacon = 16,
  kJoinRequest = 17,
  kJoinChallenge = 18,
  kJoinResponse = 19,
  kJoinAccept = 20,
  kJoinReject = 21,
  kLeave = 22,
  kHeartbeat = 23,
};

[[nodiscard]] const char* to_string(PacketType t);

/// Packet flag bits.
/// kFlagMoreFragments: this DATA frame carries a non-final fragment of a
/// larger message; the receiver reassembles consecutive fragments (the
/// channel already guarantees order) until a frame without the flag.
inline constexpr std::uint16_t kFlagMoreFragments = 0x0001;

struct Packet {
  PacketType type = PacketType::kData;
  std::uint16_t flags = 0;
  std::uint32_t session = 0;
  ServiceId src;
  ServiceId dst;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  Bytes payload;
  /// Encode-time only: extra payload bytes appended directly after
  /// `payload` in the frame (one u16 length prefix covers both). Lets the
  /// reliable channel frame a shared event body without first copying it
  /// behind the owned header. Non-owning — must be alive during encode();
  /// decode() never sets it (the receiver sees one contiguous payload).
  BytesView payload_tail{};

  static constexpr std::uint16_t kMagic = 0xA5EB;
  static constexpr std::uint8_t kVersion = 1;
  /// Frame bytes excluding the payload itself.
  static constexpr std::size_t kOverhead = 2 + 1 + 1 + 2 + 4 + 6 + 6 + 4 + 4 +
                                           2 + 4;

  [[nodiscard]] Bytes encode() const;

  /// Returns nullopt for frames that are foreign (bad magic/version), too
  /// short, corrupt (CRC), or otherwise malformed — the caller drops them.
  [[nodiscard]] static std::optional<Packet> decode(BytesView datagram);
};

}  // namespace amuse
