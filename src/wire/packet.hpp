// Datagram packet format.
//
// Everything the SMC puts on the wire is one of these frames inside a
// transport datagram: reliable-channel DATA/ACK (carrying bus messages) and
// the discovery service's unreliable beacon/handshake packets. The format is
// self-describing and CRC-protected so corrupted or foreign datagrams are
// dropped at this boundary.
//
// Layout (big-endian):
//   magic   u16  = 0xA5EB ("AMUSE Event Bus")
//   version u8   = 1
//   type    u8   PacketType
//   flags   u16
//   session u32  sender's incarnation (distinguishes re-joins, see
//                ReliableChannel)
//   src     u48  ServiceId
//   dst     u48  ServiceId (broadcast() frames use ServiceId::broadcast())
//   seq     u32  data sequence number (DATA) / unused
//   ack     u32  cumulative acknowledgement: next seq expected from peer
//   payload u16-length-prefixed bytes
//   crc     u32  CRC-32 of all preceding bytes
//
// Batched DATA frames (kFlagBatched): the payload is a sequence of N ≥ 1
// length-prefixed sub-messages, each an independent bus message:
//   payload := sub*        sub := len u16 ++ bytes[len]
// covering sequence numbers [seq, seq+N). The capability is flag-gated
// under the same packet version: a sender that never sets the flag emits
// frames byte-identical to the original format, and any receiver of this
// code understands both. decode() validates the sub-structure (still under
// the CRC) and rejects frames whose sub-lengths do not tile the payload.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/service_id.hpp"

namespace amuse {

enum class PacketType : std::uint8_t {
  // Reliable channel.
  kData = 1,
  kAck = 2,
  // Discovery protocol (unreliable, idempotent).
  kBeacon = 16,
  kJoinRequest = 17,
  kJoinChallenge = 18,
  kJoinResponse = 19,
  kJoinAccept = 20,
  kJoinReject = 21,
  kLeave = 22,
  kHeartbeat = 23,
  // HA promotion arbitration (unreliable, idempotent, standby↔standby —
  // DESIGN.md §13.5). Payload codecs live in wire/promotion.hpp.
  kPromotionClaim = 24,
  kPromotionVote = 25,
};

[[nodiscard]] const char* to_string(PacketType t);

/// Packet flag bits.
/// kFlagMoreFragments: this DATA frame carries a non-final fragment of a
/// larger message; the receiver reassembles consecutive fragments (the
/// channel already guarantees order) until a frame without the flag.
inline constexpr std::uint16_t kFlagMoreFragments = 0x0001;
/// kFlagBatched: this DATA frame's payload is N length-prefixed
/// sub-messages covering seqs [seq, seq+N) — see the layout comment above.
/// Mutually exclusive with kFlagMoreFragments (fragments are never
/// coalesced).
inline constexpr std::uint16_t kFlagBatched = 0x0002;

struct Packet {
  PacketType type = PacketType::kData;
  std::uint16_t flags = 0;
  std::uint32_t session = 0;
  ServiceId src;
  ServiceId dst;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  Bytes payload;
  /// Encode-time only: extra payload bytes appended directly after
  /// `payload` in the frame (one u16 length prefix covers both). Lets the
  /// reliable channel frame a shared event body without first copying it
  /// behind the owned header. Non-owning — must be alive during encode();
  /// decode() never sets it (the receiver sees one contiguous payload).
  BytesView payload_tail{};

  /// One sub-message of a batched DATA frame. head/tail mirror the
  /// payload/payload_tail split: each sub blits an owned header view plus
  /// a shared event-body view straight into the frame, so coalescing
  /// never copies the fan-out's shared bytes.
  struct Sub {
    BytesView head{};
    BytesView tail{};
  };
  /// Encode-time only: when non-empty (requires kData + kFlagBatched,
  /// `payload`/`payload_tail` must then be empty) encode() writes each sub
  /// as `u16(head+tail size) ++ head ++ tail` under the outer payload
  /// length. Non-owning — views must be alive during encode(); decode()
  /// never fills it (use split_batch() on the contiguous payload).
  std::vector<Sub> batch{};

  static constexpr std::uint16_t kMagic = 0xA5EB;
  static constexpr std::uint8_t kVersion = 1;
  /// Frame bytes excluding the payload itself.
  static constexpr std::size_t kOverhead = 2 + 1 + 1 + 2 + 4 + 6 + 6 + 4 + 4 +
                                           2 + 4;

  [[nodiscard]] Bytes encode() const;

  /// Payload bytes this frame carries on the wire (sub-message length
  /// prefixes included); encode().size() == kOverhead + payload_wire_size().
  [[nodiscard]] std::size_t payload_wire_size() const;

  /// Returns nullopt for frames that are foreign (bad magic/version), too
  /// short, corrupt (CRC), or otherwise malformed — the caller drops them.
  /// Batched DATA frames whose sub-lengths do not tile the payload are
  /// malformed.
  [[nodiscard]] static std::optional<Packet> decode(BytesView datagram);

  /// Splits a batched DATA payload into its sub-messages (views into
  /// `payload` — same lifetime). nullopt if the u16 sub-lengths do not
  /// exactly tile the payload or the batch is empty.
  [[nodiscard]] static std::optional<std::vector<BytesView>> split_batch(
      BytesView payload);
};

}  // namespace amuse
