// ReliableChannel: per-peer reliable, ordered, exactly-once message delivery
// over the unreliable datagram transport.
//
// This is the mechanism behind the paper's delivery semantics (§II-C):
//   - "all events are delivered to each interested component exactly once as
//      long as the component remains a member" — the receiver half dedups
//      and never delivers a sequence number twice;
//   - "all events from a particular sender are delivered … in the order
//      sent" — in-order delivery with a bounded reorder buffer;
//   - "events are always acknowledged … so that events cannot be lost in
//      transit" (§III-B) — cumulative ACKs, go-back-N retransmission with
//      exponential backoff, bounded retries reporting peer failure.
//
// Sessions: each channel incarnation carries a random session id in every
// frame. A receiver adopts a new peer session only at seq 0, so stale
// packets from a purged-and-readmitted service's previous life are ignored
// rather than corrupting ordering state.
//
// Datagram economy: the paper's bus host pays a fixed CPU cost per datagram
// (§V, Fig. 4b), so the channel amortises it two ways — queued small
// messages coalesce into one kFlagBatched DATA frame (ack-clocked,
// Nagle-style), and ACKs are delayed briefly so one ack covers several
// frames or piggybacks on reverse DATA. Both are config knobs; disabled
// they reproduce the original one-frame-per-message, ack-per-DATA wire
// behaviour exactly. See DESIGN.md §8.
//
// Overload: outbound retention is accounted in bytes against a per-peer
// budget and an optional bus-wide DeliveryBudget ledger. send() takes a
// message class — control (subscriptions, quench, membership) is never
// shed and queues ahead of data; data beyond the budget sheds the oldest
// queued data-class message first, every shed counted and reported through
// the shed callback. Watermarks on retained bytes drive a pressure
// callback for publisher backpressure. See DESIGN.md §9.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/annotations.hpp"
#include "common/bytes.hpp"
#include "common/service_id.hpp"
#include "sim/executor.hpp"
#include "wire/delivery_budget.hpp"
#include "wire/packet.hpp"

namespace amuse {

/// Priority class of an outbound message. Control messages (subscriptions,
/// unsubscriptions, quench tables, flow control, membership traffic) are
/// small, rare, and load-bearing for protocol correctness: they are never
/// shed, never counted against the queue bounds, and are queued ahead of
/// data-class traffic (without ever splitting a fragment train or touching
/// in-flight messages). Data is the bulk sensor/event traffic the shed
/// policy may drop under overload.
enum class MsgClass : std::uint8_t {
  kData = 0,
  kControl = 1,
};

struct ReliableChannelConfig {
  Duration rto_initial = milliseconds(200);
  double rto_backoff = 2.0;
  Duration rto_max = seconds(5);
  /// Adapt the retransmission timeout to measured round-trip times
  /// (RFC 6298-style SRTT/RTTVAR with Karn's rule: samples from
  /// retransmitted messages are discarded). Essential on slow hosts where
  /// end-to-end times vary with payload size.
  bool adaptive_rto = true;
  /// Floor for the adaptive timeout. Generous for this domain: end-to-end
  /// times through a PDA-class bus host are tens to hundreds of ms and
  /// grow under load.
  Duration rto_min = milliseconds(200);
  /// Consecutive retransmissions of the oldest unacked message before the
  /// channel reports failure. The discovery service, not this layer,
  /// decides when a silent member is purged; failure here just pauses the
  /// channel (the proxy keeps the queue until a Purge Member event).
  int max_retries = 12;
  /// Go-back-N send window (messages in flight without an ack).
  std::size_t window = 8;
  /// Bound on the outbound queue (send() fails beyond it).
  std::size_t max_queue = 4096;
  /// Bound on the receive-side reorder buffer.
  std::size_t max_reorder = 64;
  /// Duplicate cumulative acks before the window head is retransmitted
  /// immediately (fast retransmit); 0 disables.
  int dup_ack_threshold = 3;
  /// Split messages larger than this into fragments of at most this many
  /// bytes (0 = never fragment). Needed on small-MTU transports like
  /// 802.15.4/ZigBee, one of the paper's target radios (§VI): a frame is
  /// max_fragment_payload + Packet::kOverhead bytes on the wire.
  std::size_t max_fragment_payload = 0;
  /// Bound on a partially reassembled inbound message.
  std::size_t max_reassembly_bytes = 1 << 20;
  /// Frame coalescing: while earlier data is in flight, queued whole (never
  /// fragmented) messages are packed into one kFlagBatched DATA frame, up
  /// to this many sub-messages per frame. The per-packet host cost then
  /// amortises across the batch (the PDA profile charges 8.2 ms per
  /// datagram regardless of size). 0 or 1 disables batching: every message
  /// gets its own frame, byte-identical to the legacy format.
  std::size_t max_batch_messages = 16;
  /// Payload byte budget for a coalesced frame (sub-message bytes plus
  /// their u16 length prefixes), capped by max_fragment_payload when
  /// fragmentation is on — that cap is the per-transport MTU bound (e.g.
  /// ZigBee's 700 B), so the default only governs transports that take
  /// multi-KB datagrams (UDP, the simulated links) and is sized to fit a
  /// full send window of mid-size events per frame while bounding the
  /// loss blast radius of one datagram. 0 disables batching. A single
  /// message over the budget travels alone in a legacy frame.
  std::size_t max_batch_bytes = 8192;
  /// Delayed ACKs (RFC 1122-style): an in-order DATA frame is acked
  /// immediately only if it is the second unacknowledged frame; otherwise
  /// the ack waits this long for a chance to coalesce with the next frame
  /// or piggyback on outgoing DATA. Out-of-order arrivals are always acked
  /// immediately (they are the sender's fast-retransmit clock), and a
  /// burst of stale duplicates yields at most one delayed ack.
  /// Duration{} disables: every DATA frame is acked on arrival (legacy).
  Duration ack_delay = milliseconds(2);
  /// Refuse to adopt a peer session below this floor. Seq-0 adoption alone
  /// cannot tell a genuine new stream from a stale retransmission of an old
  /// stream's first frame (a purged proxy's queue head is seq 0 when nothing
  /// was ever acked, and it races the rejoin handshake). The bus hands out
  /// monotonically increasing proxy sessions, and membership tells the
  /// device the session its new proxy will use — so a receiver created for
  /// incarnation N can reject every frame from incarnations < N outright.
  /// 0 = accept any session at seq 0 (legacy / first contact).
  std::uint32_t min_peer_session = 0;
  /// Per-peer retained-byte budget: payload bytes across the outbound queue
  /// and the in-flight window. A data-class send that would exceed it sheds
  /// the oldest queued data-class message(s) to make room, and is itself
  /// shed when shedding cannot free enough. Control-class messages are
  /// exempt. 0 = unlimited (legacy count-cap behaviour only).
  std::size_t max_queue_bytes = 0;
  /// Flow-control watermarks on retained bytes: crossing the high water
  /// raises pressure (PressureFn fires with true); draining to the low
  /// water releases it. 0 disables pressure signalling.
  std::size_t flow_high_water = 0;
  /// 0 = flow_high_water / 2.
  std::size_t flow_low_water = 0;
  /// Optional bus-wide ledger shared by every proxy channel; charged and
  /// released entry-by-entry (shared event bodies counted once across the
  /// whole fan-out). The budget's owner (EventBus) enforces the bus-wide
  /// limit by picking shed victims across channels.
  std::shared_ptr<DeliveryBudget> shared_budget;
};

/// One outbound message assembled from an owned per-message head and an
/// optional shared immutable tail (the fan-out's encode-once event body).
/// The channel queues and retransmits the tail by reference — the bytes are
/// never re-owned or copied per member; they are only blitted into the
/// datagram frame at transmit time.
struct SharedPayload {
  Bytes head;
  std::shared_ptr<const Bytes> tail;  // may be null (head-only message)

  [[nodiscard]] std::size_t size() const {
    return head.size() + (tail ? tail->size() : 0);
  }
  /// Materialises head+tail into one owned buffer (fragmentation path).
  [[nodiscard]] Bytes flatten() const;
};

struct ReliableChannelStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t out_of_order_buffered = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t stale_session_dropped = 0;
  std::uint64_t fragments_sent = 0;
  std::uint64_t messages_reassembled = 0;
  std::uint64_t reassembly_overflow_dropped = 0;
  // Wire-level accounting (what the host is actually charged for).
  std::uint64_t datagrams_sent = 0;   // DATA + ACK frames handed down
  std::uint64_t bytes_on_wire = 0;    // encoded frame bytes incl. overhead
  std::uint64_t batches_sent = 0;     // DATA frames carrying ≥ 2 messages
  std::uint64_t batched_messages = 0; // messages inside those frames
  std::uint64_t acks_delayed = 0;     // ack requests deferred to the timer
  std::uint64_t frame_bursts = 0;     // ≥2-frame rounds handed to the burst sink
  std::uint64_t malformed_batch_dropped = 0;  // bad sub-lengths in a batch
  // Overload accounting (DESIGN.md §9): drops are counted, never silent.
  std::uint64_t events_shed = 0;      // data-class messages dropped
  std::uint64_t bytes_shed = 0;       // payload bytes of those messages
  std::uint64_t control_sent = 0;     // control-class messages accepted
  std::uint64_t peak_retained_bytes = 0;  // high-water of retained bytes
  std::uint64_t pressure_raised = 0;  // high-water crossings signalled
};

class ReliableChannel {
 public:
  /// Hands an encoded frame to the transport.
  using SendPacketFn = std::function<void(const Packet&)>;
  /// Optional burst sink: a whole pump/retransmit round's DATA frames in
  /// one call, so the transport can flush them through one sendmmsg
  /// (Transport::send_batch). The frames are valid only for the call; the
  /// vector is passed by reference so the sink may move the encodings out.
  /// When unset (or for single-frame rounds, ACKs and fast retransmits) the
  /// channel falls back to SendPacketFn per frame — wire bytes and frame
  /// order are identical either way.
  using SendFramesFn = std::function<void(std::vector<Packet>&)>;
  /// Exactly-once, in-order message delivery to the layer above.
  using DeliverFn = std::function<void(BytesView message)>;
  /// Retries exhausted for the oldest in-flight message. The channel stops
  /// retransmitting until poke() or a packet from the peer arrives.
  using FailFn = std::function<void()>;
  /// A data-class message was shed (budget or queue-cap exhaustion). The
  /// view is the flattened message payload, valid only for the call.
  using ShedFn = std::function<void(BytesView message)>;
  /// Retained bytes crossed the high watermark (true) or drained back to
  /// the low watermark (false).
  using PressureFn = std::function<void(bool under_pressure)>;

  ReliableChannel(Executor& executor, ServiceId self, ServiceId peer,
                  std::uint32_t session, ReliableChannelConfig config,
                  SendPacketFn send_packet, DeliverFn deliver,
                  FailFn on_fail = nullptr);
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Queues one message for reliable delivery. Data-class sends return
  /// false (and count the message as shed) when the queue bounds are hit;
  /// control-class sends are always accepted and jump ahead of queued data.
  AMUSE_AFFINITY(owner_executor)
  bool send(Bytes message, MsgClass cls = MsgClass::kData);
  /// As send(Bytes), but the shared tail bytes are queued by reference and
  /// only copied into the wire frame (or into fragments) at transmit time.
  AMUSE_AFFINITY(owner_executor)
  bool send(SharedPayload payload, MsgClass cls = MsgClass::kData);

  /// Installs the burst sink (see SendFramesFn). Null reverts to per-frame
  /// SendPacketFn delivery.
  void set_send_frames(SendFramesFn fn) { send_frames_ = std::move(fn); }

  /// Installs the shed-accounting tap (fired for every dropped data-class
  /// message, whether displaced from the queue or rejected on entry).
  void set_on_shed(ShedFn fn) { on_shed_ = std::move(fn); }
  /// Installs the watermark pressure tap.
  void set_on_pressure(PressureFn fn) { on_pressure_ = std::move(fn); }

  /// Sheds the oldest queued data-class message (a whole fragment train
  /// counts as one message). In-flight messages are never touched — the
  /// peer may already hold part of the window. Returns false when nothing
  /// in the queue is data-class. Public so the bus-wide budget owner can
  /// pick shed victims across channels.
  AMUSE_AFFINITY(owner_executor) bool shed_oldest_data();

  /// Feed every DATA/ACK packet from this peer here.
  AMUSE_AFFINITY(owner_executor) void on_packet(const Packet& packet);

  /// Restart retransmission after a failure report (e.g. the discovery
  /// service saw a heartbeat again before the purge timeout).
  AMUSE_AFFINITY(owner_executor) void poke();

  /// Drops all queued and in-flight outbound data and stops timers — the
  /// paper's proxy behaviour on "Purge Member": destroy "any outbound data
  /// awaiting delivery".
  AMUSE_AFFINITY(owner_executor) void reset();

  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  /// Payload bytes retained across the queue and the in-flight window.
  [[nodiscard]] std::size_t retained_bytes() const { return retained_bytes_; }
  /// True between a high-watermark crossing and the low-watermark drain.
  [[nodiscard]] bool under_pressure() const { return pressured_; }
  [[nodiscard]] bool failed() const { return failed_; }
  /// Current retransmission timeout (for tests and diagnostics).
  [[nodiscard]] Duration current_rto() const { return rto_; }
  /// Smoothed round-trip time; zero until the first sample.
  [[nodiscard]] Duration srtt() const {
    return Duration(static_cast<std::int64_t>(srtt_ns_));
  }
  [[nodiscard]] const ReliableChannelStats& stats() const { return stats_; }
  [[nodiscard]] ServiceId peer() const { return peer_; }
  [[nodiscard]] std::uint32_t session() const { return session_; }

 private:
  struct Outbound {
    std::uint32_t seq;
    std::uint16_t flags;
    SharedPayload payload;
    bool batchable = true;  // false for fragments: never coalesced
    MsgClass cls = MsgClass::kData;
  };

  /// How many entries starting at `from` fit in the next frame. `closed`
  /// is false only when the run ended because the queue ran out before any
  /// budget did — i.e. a partial batch that may be worth holding for.
  struct FramePlan {
    std::size_t count = 1;
    bool closed = true;
  };

  [[nodiscard]] bool coalescing() const;
  [[nodiscard]] std::size_t batch_byte_budget() const;
  [[nodiscard]] FramePlan plan_frame(const std::deque<Outbound>& entries,
                                     std::size_t from) const;
  /// Moves queue_ entries into the window and transmits them, coalescing
  /// where the budgets allow. With flush=false (the send() path) a partial
  /// batch is held back while earlier data is in flight — the ack clock
  /// flushes it (Nagle-style); flush=true sends everything that fits.
  void pump(bool flush = true);
  /// Frames window_[from, from+count) as one DATA frame and sends it (or
  /// appends it to the egress burst when a collect round is open).
  void transmit_range(std::size_t from, std::size_t count);
  /// Opens an egress collect round (no-op when no burst sink is installed
  /// or a round is already open); returns whether this call opened it.
  bool begin_collect();
  /// Closes the round this call's matching begin_collect() opened and
  /// flushes the collected frames through the burst sink.
  void end_collect(bool opened);
  void flush_egress();
  /// Go-back-N: retransmits the whole window, re-coalescing as it goes.
  void transmit_window(bool count_as_retransmission);
  void send_ack();
  /// Sends the cumulative ack now, cancelling any pending delayed ack.
  void send_ack_now();
  /// Delayed-ack bookkeeping for an in-order DATA frame (ack every second
  /// frame immediately, otherwise after ack_delay).
  void note_in_order_frame();
  /// A stale duplicate wants re-acking, but at most once per burst: arm
  /// (or ride) the delay timer without advancing the every-2nd counter.
  void note_duplicate_frame();
  /// Outgoing DATA piggybacks the cumulative ack: nothing left to delay.
  void clear_ack_debt();
  void record_wire(std::size_t payload_bytes);
  /// Retention accounting: every entry entering/leaving queue_ or window_
  /// passes through exactly one of these.
  void charge_entry(const Outbound& entry);
  void release_entry(const Outbound& entry);
  /// Enqueues the message's piece(s): data appends, control is inserted
  /// after the leading run of control entries without splitting any
  /// fragment train.
  void enqueue_pieces(std::vector<Outbound> pieces, MsgClass cls);
  /// Counts a dropped data-class message and fires the shed tap.
  void account_shed(std::size_t bytes, const SharedPayload& payload);
  /// Fires the pressure tap on watermark transitions of retained_bytes_.
  void update_pressure();
  void arm_timer();
  void on_timeout();
  void handle_data(const Packet& packet);
  void handle_ack(const Packet& packet);
  void take_rtt_sample(Duration sample);
  [[nodiscard]] Duration base_rto() const;

  Executor& executor_;
  ServiceId self_;
  ServiceId peer_;
  std::uint32_t session_;
  ReliableChannelConfig config_;
  SendPacketFn send_packet_;
  SendFramesFn send_frames_;
  // Egress burst under collection: frames hold views into window_ entries,
  // valid until the entries are acked — flushed before pump()/
  // transmit_window() return, well inside that window.
  std::vector<Packet> egress_;
  bool collecting_ = false;
  DeliverFn deliver_;
  FailFn on_fail_;
  ShedFn on_shed_;
  PressureFn on_pressure_;

  // Sender state.
  std::uint32_t next_seq_ = 0;   // next sequence number to assign
  std::uint32_t base_ = 0;       // oldest unacked sequence
  std::deque<Outbound> window_;  // in flight: [base_, next_seq_)
  std::deque<Outbound> queue_;   // not yet in the window (seq unassigned)
  Duration rto_;
  int retries_ = 0;
  int dup_acks_ = 0;
  TimerId timer_ = kNoTimer;
  bool failed_ = false;
  std::size_t retained_bytes_ = 0;  // payload bytes in queue_ + window_
  bool pressured_ = false;

  // RTT estimation (one outstanding sample; Karn's rule).
  bool rtt_pending_ = false;
  std::uint32_t rtt_seq_ = 0;
  TimePoint rtt_sent_{};
  double srtt_ns_ = 0.0;
  double rttvar_ns_ = 0.0;
  bool have_srtt_ = false;

  void deliver_or_reassemble(std::uint16_t flags, BytesView payload);

  // Receiver state.
  bool peer_session_known_ = false;
  std::uint32_t peer_session_ = 0;
  std::uint32_t expected_ = 0;  // next sequence to deliver
  std::map<std::uint32_t, std::pair<std::uint16_t, Bytes>> reorder_;
  // Delayed-ack state: frames delivered since the last ack we sent (ours
  // or piggybacked), and the coalescing timer.
  int ack_debt_ = 0;
  TimerId ack_timer_ = kNoTimer;
  Bytes reassembly_;  // accumulated fragments of the in-progress message
  bool reassembling_ = false;
  bool discarding_ = false;  // skipping the rest of an overflowed message

  ReliableChannelStats stats_;
};

}  // namespace amuse
