// PolicyStore: the policy service's database.
//
// "Policies can be added, removed, enabled and disabled to change the
//  behaviour of cell components without reprogramming them." (§II-A)
// The store holds obligation policies (by name, with an enabled flag) and
// the ordered authorisation policy list; every mutation fires a change
// callback so the obligation engine can refresh its bus subscriptions.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "policy/ast.hpp"

namespace amuse {

class PolicyStore {
 public:
  using ChangeFn = std::function<void()>;

  /// Loads every policy in a parsed document (replacing same-named ones).
  void load(PolicyDocument doc);
  /// Parses and loads policy text. Throws PolicyParseError.
  void load_text(const std::string& source);

  /// Adds or replaces one obligation policy.
  void add(ObligationPolicy policy);
  /// Removes a policy; false if unknown.
  bool remove(const std::string& name);
  /// Enables/disables; false if unknown.
  bool enable(const std::string& name);
  bool disable(const std::string& name);
  [[nodiscard]] bool is_enabled(const std::string& name) const;
  [[nodiscard]] const ObligationPolicy* find(const std::string& name) const;

  /// Enabled obligation policies (pointers valid until the next mutation).
  [[nodiscard]] std::vector<const ObligationPolicy*> enabled() const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const { return obligations_.size(); }

  // Authorisation side.
  void add_auth(AuthPolicy policy);
  void set_default_verdict(AuthVerdict v);
  [[nodiscard]] const std::vector<AuthPolicy>& auths() const {
    return auths_;
  }
  [[nodiscard]] AuthVerdict default_verdict() const {
    return default_verdict_;
  }

  void set_on_change(ChangeFn fn) { on_change_ = std::move(fn); }

 private:
  struct Entry {
    ObligationPolicy policy;
    bool enabled = true;
  };

  void changed() {
    if (on_change_) on_change_();
  }

  std::map<std::string, Entry> obligations_;
  std::vector<AuthPolicy> auths_;
  AuthVerdict default_verdict_ = AuthVerdict::kPermit;
  ChangeFn on_change_;
};

}  // namespace amuse
