#include "policy/parser.hpp"

namespace amuse {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  PolicyDocument parse_document() {
    PolicyDocument doc;
    while (!at(TokKind::kEnd)) {
      if (at_ident("policy")) {
        doc.obligations.push_back(parse_obligation());
      } else if (at_ident("auth")) {
        parse_auth(doc);
      } else {
        fail("expected 'policy' or 'auth'");
      }
    }
    return doc;
  }

  ExprPtr parse_expression_only() {
    ExprPtr e = parse_expr();
    expect(TokKind::kEnd, "end of expression");
    return e;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(TokKind k) const { return cur().kind == k; }
  bool at_ident(const char* text) const {
    return cur().kind == TokKind::kIdent && cur().text == text;
  }
  Token take() { return toks_[pos_++]; }
  [[noreturn]] void fail(const std::string& what) const {
    throw PolicyParseError(what + " (got '" + describe(cur()) + "')",
                           cur().line, cur().column);
  }
  static std::string describe(const Token& t) {
    switch (t.kind) {
      case TokKind::kIdent: return t.text;
      case TokKind::kString: return "\"" + t.text + "\"";
      case TokKind::kInt: return std::to_string(t.int_val);
      case TokKind::kFloat: return std::to_string(t.float_val);
      case TokKind::kEnd: return "<end>";
      default: return "<symbol>";
    }
  }
  Token expect(TokKind k, const char* what) {
    if (!at(k)) fail(std::string("expected ") + what);
    return take();
  }
  Token expect_ident(const char* text) {
    if (!at_ident(text)) fail(std::string("expected '") + text + "'");
    return take();
  }

  ObligationPolicy parse_obligation() {
    expect_ident("policy");
    ObligationPolicy p;
    p.name = expect(TokKind::kIdent, "policy name").text;
    if (at_ident("disabled")) {
      take();
      p.initially_disabled = true;
    }
    expect_ident("on");
    Token topic = expect(TokKind::kIdent, "event type");
    if (topic.text.ends_with('*')) {
      p.on_prefix = true;
      p.on_type = topic.text.substr(0, topic.text.size() - 1);
    } else {
      p.on_type = topic.text;
    }
    if (at_ident("when")) {
      take();
      p.condition = parse_expr();
    }
    expect_ident("do");
    p.actions.push_back(parse_action());
    while (!at(TokKind::kSemi)) p.actions.push_back(parse_action());
    take();  // ';'
    return p;
  }

  PolicyAction parse_action() {
    PolicyAction a;
    if (at_ident("publish")) {
      take();
      a.kind = PolicyAction::Kind::kPublish;
      a.target = expect(TokKind::kIdent, "event type").text;
      expect(TokKind::kLBrace, "'{'");
      if (!at(TokKind::kRBrace)) {
        a.args.push_back(parse_assignment());
        while (at(TokKind::kComma)) {
          take();
          a.args.push_back(parse_assignment());
        }
      }
      expect(TokKind::kRBrace, "'}'");
      return a;
    }
    if (at_ident("log")) {
      take();
      a.kind = PolicyAction::Kind::kLog;
      a.target = expect(TokKind::kString, "log message string").text;
      return a;
    }
    if (at_ident("enable")) {
      take();
      a.kind = PolicyAction::Kind::kEnable;
      a.target = expect(TokKind::kIdent, "policy name").text;
      return a;
    }
    if (at_ident("disable")) {
      take();
      a.kind = PolicyAction::Kind::kDisable;
      a.target = expect(TokKind::kIdent, "policy name").text;
      return a;
    }
    fail("expected action (publish/log/enable/disable)");
  }

  PolicyAssignment parse_assignment() {
    PolicyAssignment as;
    as.name = expect(TokKind::kIdent, "attribute name").text;
    expect(TokKind::kAssign, "'='");
    as.expr = parse_expr();
    return as;
  }

  void parse_auth(PolicyDocument& doc) {
    expect_ident("auth");
    if (at_ident("default")) {
      take();
      if (at_ident("permit")) {
        take();
        doc.default_verdict = AuthVerdict::kPermit;
      } else if (at_ident("deny")) {
        take();
        doc.default_verdict = AuthVerdict::kDeny;
      } else {
        fail("expected 'permit' or 'deny'");
      }
      expect(TokKind::kSemi, "';'");
      return;
    }
    AuthPolicy ap;
    if (at_ident("permit")) {
      take();
      ap.verdict = AuthVerdict::kPermit;
    } else if (at_ident("deny")) {
      take();
      ap.verdict = AuthVerdict::kDeny;
    } else {
      fail("expected 'permit', 'deny' or 'default'");
    }
    expect_ident("role");
    if (at(TokKind::kString) || at(TokKind::kIdent)) {
      ap.role = take().text;
    } else {
      fail("expected role name");
    }
    if (at_ident("publish")) {
      take();
      ap.op = AuthOp::kPublish;
    } else if (at_ident("subscribe")) {
      take();
      ap.op = AuthOp::kSubscribe;
    } else {
      fail("expected 'publish' or 'subscribe'");
    }
    if (at(TokKind::kString) || at(TokKind::kIdent)) {
      ap.topic_pattern = take().text;
    } else {
      fail("expected topic pattern");
    }
    expect(TokKind::kSemi, "';'");
    doc.auths.push_back(std::move(ap));
  }

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    while (at(TokKind::kOr)) {
      take();
      e = PolicyExpr::make_binary(PolicyExpr::Kind::kOr, std::move(e),
                                  parse_and());
    }
    return e;
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_unary();
    while (at(TokKind::kAnd)) {
      take();
      e = PolicyExpr::make_binary(PolicyExpr::Kind::kAnd, std::move(e),
                                  parse_unary());
    }
    return e;
  }

  ExprPtr parse_unary() {
    if (at(TokKind::kNot)) {
      take();
      return PolicyExpr::make_not(parse_unary());
    }
    return parse_cmp();
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_primary();
    Op op;
    switch (cur().kind) {
      case TokKind::kEq: op = Op::kEq; break;
      case TokKind::kNe: op = Op::kNe; break;
      case TokKind::kLt: op = Op::kLt; break;
      case TokKind::kLe: op = Op::kLe; break;
      case TokKind::kGt: op = Op::kGt; break;
      case TokKind::kGe: op = Op::kGe; break;
      default: return lhs;
    }
    take();
    return PolicyExpr::make_cmp(op, std::move(lhs), parse_primary());
  }

  ExprPtr parse_primary() {
    if (at(TokKind::kInt)) {
      return PolicyExpr::make_literal(Value(take().int_val));
    }
    if (at(TokKind::kFloat)) {
      return PolicyExpr::make_literal(Value(take().float_val));
    }
    if (at(TokKind::kString)) {
      return PolicyExpr::make_literal(Value(take().text));
    }
    if (at_ident("true")) {
      take();
      return PolicyExpr::make_literal(Value(true));
    }
    if (at_ident("false")) {
      take();
      return PolicyExpr::make_literal(Value(false));
    }
    if (at_ident("exists")) {
      take();
      expect(TokKind::kLParen, "'('");
      std::string name = expect(TokKind::kIdent, "attribute name").text;
      expect(TokKind::kRParen, "')'");
      return PolicyExpr::make_exists(std::move(name));
    }
    if (at(TokKind::kIdent)) {
      return PolicyExpr::make_attr(take().text);
    }
    if (at(TokKind::kLParen)) {
      take();
      ExprPtr e = parse_expr();
      expect(TokKind::kRParen, "')'");
      return e;
    }
    fail("expected expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

PolicyDocument parse_policies(const std::string& source) {
  Parser p(lex_policy(source));
  return p.parse_document();
}

ExprPtr parse_policy_expr(const std::string& source) {
  Parser p(lex_policy(source));
  return p.parse_expression_only();
}

}  // namespace amuse
