#include "policy/ast.hpp"

namespace amuse {

ExprPtr PolicyExpr::make_literal(Value v) {
  auto e = std::make_unique<PolicyExpr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr PolicyExpr::make_attr(std::string name) {
  auto e = std::make_unique<PolicyExpr>();
  e->kind = Kind::kAttr;
  e->attr = std::move(name);
  return e;
}

ExprPtr PolicyExpr::make_exists(std::string name) {
  auto e = std::make_unique<PolicyExpr>();
  e->kind = Kind::kExists;
  e->attr = std::move(name);
  return e;
}

ExprPtr PolicyExpr::make_not(ExprPtr inner) {
  auto e = std::make_unique<PolicyExpr>();
  e->kind = Kind::kNot;
  e->lhs = std::move(inner);
  return e;
}

ExprPtr PolicyExpr::make_binary(Kind kind, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<PolicyExpr>();
  e->kind = kind;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr PolicyExpr::make_cmp(Op op, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<PolicyExpr>();
  e->kind = Kind::kCmp;
  e->cmp_op = op;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr PolicyExpr::clone() const {
  auto e = std::make_unique<PolicyExpr>();
  e->kind = kind;
  e->literal = literal;
  e->attr = attr;
  e->cmp_op = cmp_op;
  if (lhs) e->lhs = lhs->clone();
  if (rhs) e->rhs = rhs->clone();
  return e;
}

std::string PolicyExpr::to_string() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.to_string();
    case Kind::kAttr:
      return attr;
    case Kind::kExists:
      return "exists(" + attr + ")";
    case Kind::kNot:
      return "!(" + lhs->to_string() + ")";
    case Kind::kAnd:
      return "(" + lhs->to_string() + " && " + rhs->to_string() + ")";
    case Kind::kOr:
      return "(" + lhs->to_string() + " || " + rhs->to_string() + ")";
    case Kind::kCmp:
      return "(" + lhs->to_string() + " " + amuse::to_string(cmp_op) + " " +
             rhs->to_string() + ")";
  }
  return "?";
}

Filter ObligationPolicy::trigger_filter() const {
  return on_prefix ? Filter::for_type_prefix(on_type)
                   : Filter::for_type(on_type);
}

bool topic_matches(const std::string& pattern, const std::string& topic) {
  bool pattern_wild = pattern.ends_with('*');
  bool topic_wild = topic.ends_with('*');
  std::string pbase = pattern_wild ? pattern.substr(0, pattern.size() - 1)
                                   : pattern;
  std::string tbase = topic_wild ? topic.substr(0, topic.size() - 1) : topic;
  if (pattern_wild) return tbase.starts_with(pbase);
  // Exact pattern can only cover an exact topic.
  return !topic_wild && tbase == pbase;
}

bool AuthPolicy::matches(const std::string& member_role, AuthOp action,
                         const std::string& topic) const {
  if (op != action) return false;
  if (role != "*" && role != member_role) return false;
  return topic_matches(topic_pattern, topic);
}

}  // namespace amuse
