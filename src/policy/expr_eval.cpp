#include "policy/expr_eval.hpp"

namespace amuse {

bool truthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kBool:
      return v.as_bool();
    case ValueType::kInt:
      return v.as_int() != 0;
    case ValueType::kDouble:
      return v.as_double() != 0.0;
    case ValueType::kString:
      return !v.as_string().empty();
    case ValueType::kBytes:
      return !v.as_bytes().empty();
  }
  return false;
}

namespace {

bool truthy_or_false(const std::optional<Value>& v) {
  return v.has_value() && truthy(*v);
}

bool compare(Op op, const Value& a, const Value& b) {
  // Reuse the filter constraint semantics so policies and subscriptions
  // agree on what "hr > 120" means for every type combination.
  Constraint c{"", op, b};
  return c.matches(a);
}

}  // namespace

std::optional<Value> eval_expr(const PolicyExpr& expr, const Event& trigger) {
  using Kind = PolicyExpr::Kind;
  switch (expr.kind) {
    case Kind::kLiteral:
      return expr.literal;
    case Kind::kAttr: {
      const Value* v = trigger.get(expr.attr);
      if (v) return *v;
      return std::nullopt;
    }
    case Kind::kExists:
      return Value(trigger.has(expr.attr));
    case Kind::kNot:
      return Value(!truthy_or_false(eval_expr(*expr.lhs, trigger)));
    case Kind::kAnd: {
      if (!truthy_or_false(eval_expr(*expr.lhs, trigger))) {
        return Value(false);
      }
      return Value(truthy_or_false(eval_expr(*expr.rhs, trigger)));
    }
    case Kind::kOr: {
      if (truthy_or_false(eval_expr(*expr.lhs, trigger))) return Value(true);
      return Value(truthy_or_false(eval_expr(*expr.rhs, trigger)));
    }
    case Kind::kCmp: {
      std::optional<Value> a = eval_expr(*expr.lhs, trigger);
      std::optional<Value> b = eval_expr(*expr.rhs, trigger);
      if (!a || !b) return Value(false);
      return Value(compare(expr.cmp_op, *a, *b));
    }
  }
  return std::nullopt;
}

bool eval_condition(const PolicyExpr* expr, const Event& trigger) {
  if (!expr) return true;
  std::optional<Value> v = eval_expr(*expr, trigger);
  return v.has_value() && truthy(*v);
}

}  // namespace amuse
