#include "policy/obligation_engine.hpp"

#include "common/log.hpp"

namespace amuse {
namespace {
const Logger kLog("policy.engine");
}

ObligationEngine::ObligationEngine(EventBus& bus, PolicyStore& store,
                                   ObligationEngineConfig config)
    : bus_(bus), store_(store), config_(config) {}

ObligationEngine::~ObligationEngine() {
  for (const auto& [name, sub] : subscriptions_) bus_.unsubscribe_local(sub);
}

void ObligationEngine::start() {
  if (started_) return;
  started_ = true;
  store_.set_on_change([this] { refresh(); });
  refresh();
}

void ObligationEngine::refresh() {
  if (!started_) return;
  for (const auto& [name, sub] : subscriptions_) bus_.unsubscribe_local(sub);
  subscriptions_.clear();
  for (const ObligationPolicy* p : store_.enabled()) {
    std::string name = p->name;
    std::uint64_t sub = bus_.subscribe_local(
        p->trigger_filter(),
        [this, name](const Event& e) { on_trigger(name, e); });
    subscriptions_.emplace(std::move(name), sub);
  }
}

void ObligationEngine::on_trigger(const std::string& policy_name,
                                  const Event& event) {
  // Re-check against the store: the policy may have been disabled between
  // subscription refreshes (or by an earlier action of this same event).
  const ObligationPolicy* p = store_.find(policy_name);
  if (!p || !store_.is_enabled(policy_name)) return;

  ++stats_.triggers;
  if (!eval_condition(p->condition.get(), event)) {
    ++stats_.conditions_false;
    return;
  }
  for (const PolicyAction& action : p->actions) {
    ++stats_.actions_run;
    run_action(action, event, policy_name);
  }
}

void ObligationEngine::run_action(const PolicyAction& action,
                                  const Event& trigger,
                                  const std::string& policy_name) {
  switch (action.kind) {
    case PolicyAction::Kind::kPublish: {
      std::int64_t depth = trigger.get_int("x-chain", 0) + 1;
      if (depth > config_.max_chain_depth) {
        ++stats_.chain_suppressed;
        kLog.warn("policy ", policy_name, ": cascade depth ", depth,
                  " exceeds limit; suppressing publish of ", action.target);
        return;
      }
      Event out(action.target);
      for (const PolicyAssignment& as : action.args) {
        std::optional<Value> v = eval_expr(*as.expr, trigger);
        if (v) out.set(as.name, std::move(*v));
        // Absent source attribute: omit rather than fabricate.
      }
      out.set("x-policy", policy_name);
      out.set("x-chain", depth);
      ++stats_.publishes;
      bus_.publish_local(std::move(out));
      break;
    }
    case PolicyAction::Kind::kLog:
      kLog.info("policy ", policy_name, ": ", action.target, " [event ",
                trigger.type(), "]");
      break;
    case PolicyAction::Kind::kEnable:
      if (!store_.enable(action.target)) {
        kLog.warn("policy ", policy_name, ": enable of unknown policy ",
                  action.target);
      }
      break;
    case PolicyAction::Kind::kDisable:
      if (!store_.disable(action.target)) {
        kLog.warn("policy ", policy_name, ": disable of unknown policy ",
                  action.target);
      }
      break;
  }
}

}  // namespace amuse
