// ObligationEngine: runs event-condition-action policies against the bus.
//
// For every enabled obligation policy the engine holds one local bus
// subscription on the policy's trigger filter. When a matching event
// arrives it evaluates the condition against the event's attributes and
// executes the actions: publishing derived events (alarms, control
// commands), logging, or enabling/disabling other policies — "policies
// also govern … the policy service itself" (§II-A).
//
// Cascade protection: events published by policies carry an "x-chain"
// depth attribute; chains deeper than `max_chain_depth` are suppressed so
// mutually-triggering policies cannot melt the cell.
#pragma once

#include "bus/event_bus.hpp"
#include "policy/expr_eval.hpp"
#include "policy/policy_store.hpp"

namespace amuse {

struct ObligationEngineConfig {
  int max_chain_depth = 8;
};

class ObligationEngine {
 public:
  ObligationEngine(EventBus& bus, PolicyStore& store,
                   ObligationEngineConfig config = {});
  ~ObligationEngine();

  ObligationEngine(const ObligationEngine&) = delete;
  ObligationEngine& operator=(const ObligationEngine&) = delete;

  /// Subscribes for every enabled policy and hooks store changes.
  void start();
  /// Drops and re-creates subscriptions to mirror the store.
  void refresh();

  struct Stats {
    std::uint64_t triggers = 0;        // events that reached a policy
    std::uint64_t conditions_false = 0;
    std::uint64_t actions_run = 0;
    std::uint64_t publishes = 0;
    std::uint64_t chain_suppressed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_trigger(const std::string& policy_name, const Event& event);
  void run_action(const PolicyAction& action, const Event& trigger,
                  const std::string& policy_name);

  EventBus& bus_;
  PolicyStore& store_;
  ObligationEngineConfig config_;
  std::map<std::string, std::uint64_t> subscriptions_;  // policy → sub id
  bool started_ = false;
  Stats stats_;
};

}  // namespace amuse
