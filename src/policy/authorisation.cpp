#include "policy/authorisation.hpp"

namespace amuse {

bool AuthorisationService::check(const std::string& role, AuthOp op,
                                 const std::string& topic) const {
  ++stats_.checks;
  for (const AuthPolicy& p : store_.auths()) {
    if (p.matches(role, op, topic)) {
      bool permitted = p.verdict == AuthVerdict::kPermit;
      if (!permitted) ++stats_.denials;
      return permitted;
    }
  }
  bool permitted = store_.default_verdict() == AuthVerdict::kPermit;
  if (!permitted) ++stats_.denials;
  return permitted;
}

EventBus::Authoriser AuthorisationService::authoriser() {
  return [this](const MemberInfo& member, AuthAction action,
                std::string_view topic) {
    AuthOp op = action == AuthAction::kPublish ? AuthOp::kPublish
                                               : AuthOp::kSubscribe;
    return check(member.role, op, std::string(topic));
  };
}

}  // namespace amuse
