#include "policy/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace amuse {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

std::vector<Token> lex_policy(const std::string& source) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < n ? source[i + ahead] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  };
  auto push = [&](TokKind kind, int tl, int tc, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tl;
    t.column = tc;
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = peek();
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    // Comments: // … or # …
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    int tl = line;
    int tc = col;

    if (ident_start(c)) {
      std::string text;
      while (i < n && ident_char(peek())) {
        text.push_back(peek());
        advance();
      }
      if (peek() == '*') {  // topic patterns like vitals.*
        text.push_back('*');
        advance();
      }
      push(TokKind::kIdent, tl, tc, std::move(text));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::string text;
      if (c == '-') {
        text.push_back(c);
        advance();
      }
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == '.')) {
        if (peek() == '.') {
          // Distinguish "3.5" from a dotted identifier typo "3.x".
          if (!std::isdigit(static_cast<unsigned char>(peek(1)))) break;
          is_float = true;
        }
        text.push_back(peek());
        advance();
      }
      Token t;
      t.line = tl;
      t.column = tc;
      if (is_float) {
        t.kind = TokKind::kFloat;
        t.float_val = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokKind::kInt;
        t.int_val = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }

    if (c == '"') {
      advance();
      std::string text;
      bool closed = false;
      while (i < n) {
        char d = peek();
        if (d == '"') {
          advance();
          closed = true;
          break;
        }
        if (d == '\\') {
          advance();
          char esc = peek();
          if (esc == 'n') {
            text.push_back('\n');
          } else if (esc == 't') {
            text.push_back('\t');
          } else if (esc == '"' || esc == '\\') {
            text.push_back(esc);
          } else {
            throw PolicyParseError(std::string("bad escape \\") + esc, line,
                                   col);
          }
          advance();
          continue;
        }
        text.push_back(d);
        advance();
      }
      if (!closed) throw PolicyParseError("unterminated string", tl, tc);
      push(TokKind::kString, tl, tc, std::move(text));
      continue;
    }

    auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two('=', '=')) { advance(); advance(); push(TokKind::kEq, tl, tc); continue; }
    if (two('!', '=')) { advance(); advance(); push(TokKind::kNe, tl, tc); continue; }
    if (two('<', '=')) { advance(); advance(); push(TokKind::kLe, tl, tc); continue; }
    if (two('>', '=')) { advance(); advance(); push(TokKind::kGe, tl, tc); continue; }
    if (two('&', '&')) { advance(); advance(); push(TokKind::kAnd, tl, tc); continue; }
    if (two('|', '|')) { advance(); advance(); push(TokKind::kOr, tl, tc); continue; }

    advance();
    switch (c) {
      case '{': push(TokKind::kLBrace, tl, tc); break;
      case '}': push(TokKind::kRBrace, tl, tc); break;
      case '(': push(TokKind::kLParen, tl, tc); break;
      case ')': push(TokKind::kRParen, tl, tc); break;
      case ',': push(TokKind::kComma, tl, tc); break;
      case ';': push(TokKind::kSemi, tl, tc); break;
      case '=': push(TokKind::kAssign, tl, tc); break;
      case '<': push(TokKind::kLt, tl, tc); break;
      case '>': push(TokKind::kGt, tl, tc); break;
      case '!': push(TokKind::kNot, tl, tc); break;
      case '*': push(TokKind::kIdent, tl, tc, "*"); break;
      default:
        throw PolicyParseError(std::string("unexpected character '") + c +
                                   "'",
                               tl, tc);
    }
  }
  push(TokKind::kEnd, line, col);
  return out;
}

}  // namespace amuse
