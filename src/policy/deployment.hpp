// PolicyDeployer: type-driven policy deployment on admission.
//
// "When a device is discovered and granted membership of an SMC, the
//  appropriate policies, based on device type, are deployed to it. This is
//  triggered by a discovery event." (§II-A)
//
// The deployer subscribes to "smc.member.new". Each rule names a device-
// type prefix and carries (a) policies to enable in the cell's store and
// (b) control-event templates to publish at the new member — e.g. a
// threshold configuration that the member's proxy translates into a device
// command ("each sensor can also receive control commands from management
// components, such as the Policy Service, to change thresholds", §II).
#pragma once

#include "bus/event_bus.hpp"
#include "policy/policy_store.hpp"

namespace amuse {

struct DeploymentRule {
  std::string device_type_prefix;
  /// Policies switched on when a matching device joins.
  std::vector<std::string> enable_policies;
  /// Event templates published per admission; the deployer adds
  /// "member" = <new member id> to each.
  std::vector<Event> control_events;
};

class PolicyDeployer {
 public:
  PolicyDeployer(EventBus& bus, PolicyStore& store);
  ~PolicyDeployer();

  PolicyDeployer(const PolicyDeployer&) = delete;
  PolicyDeployer& operator=(const PolicyDeployer&) = delete;

  void add_rule(DeploymentRule rule);
  /// Subscribes to discovery events.
  void start();

  struct Stats {
    std::uint64_t admissions_seen = 0;
    std::uint64_t rules_applied = 0;
    std::uint64_t policies_enabled = 0;
    std::uint64_t control_events_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_new_member(const Event& e);

  EventBus& bus_;
  PolicyStore& store_;
  std::vector<DeploymentRule> rules_;
  std::uint64_t subscription_ = 0;
  bool started_ = false;
  Stats stats_;
};

}  // namespace amuse
