#include "policy/policy_store.hpp"

#include "policy/parser.hpp"

namespace amuse {

void PolicyStore::load(PolicyDocument doc) {
  for (ObligationPolicy& p : doc.obligations) {
    bool enabled = !p.initially_disabled;
    std::string name = p.name;
    obligations_.insert_or_assign(name, Entry{std::move(p), enabled});
  }
  for (AuthPolicy& a : doc.auths) auths_.push_back(std::move(a));
  if (doc.default_verdict) default_verdict_ = *doc.default_verdict;
  changed();
}

void PolicyStore::load_text(const std::string& source) {
  load(parse_policies(source));
}

void PolicyStore::add(ObligationPolicy policy) {
  bool enabled = !policy.initially_disabled;
  std::string name = policy.name;
  obligations_.insert_or_assign(name, Entry{std::move(policy), enabled});
  changed();
}

bool PolicyStore::remove(const std::string& name) {
  if (obligations_.erase(name) == 0) return false;
  changed();
  return true;
}

bool PolicyStore::enable(const std::string& name) {
  auto it = obligations_.find(name);
  if (it == obligations_.end()) return false;
  if (!it->second.enabled) {
    it->second.enabled = true;
    changed();
  }
  return true;
}

bool PolicyStore::disable(const std::string& name) {
  auto it = obligations_.find(name);
  if (it == obligations_.end()) return false;
  if (it->second.enabled) {
    it->second.enabled = false;
    changed();
  }
  return true;
}

bool PolicyStore::is_enabled(const std::string& name) const {
  auto it = obligations_.find(name);
  return it != obligations_.end() && it->second.enabled;
}

const ObligationPolicy* PolicyStore::find(const std::string& name) const {
  auto it = obligations_.find(name);
  return it == obligations_.end() ? nullptr : &it->second.policy;
}

std::vector<const ObligationPolicy*> PolicyStore::enabled() const {
  std::vector<const ObligationPolicy*> out;
  for (const auto& [name, entry] : obligations_) {
    if (entry.enabled) out.push_back(&entry.policy);
  }
  return out;
}

std::vector<std::string> PolicyStore::names() const {
  std::vector<std::string> out;
  out.reserve(obligations_.size());
  for (const auto& [name, entry] : obligations_) out.push_back(name);
  return out;
}

void PolicyStore::add_auth(AuthPolicy policy) {
  auths_.push_back(std::move(policy));
  changed();
}

void PolicyStore::set_default_verdict(AuthVerdict v) {
  default_verdict_ = v;
  changed();
}

}  // namespace amuse
