// Tokeniser for the Ponder-lite policy language.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace amuse {

/// Raised by the lexer and parser; carries 1-based line/column.
class PolicyParseError : public std::runtime_error {
 public:
  PolicyParseError(const std::string& what, int line, int column)
      : std::runtime_error("policy:" + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  int line_;
  int column_;
};

enum class TokKind {
  kIdent,    // identifiers / keywords / dotted names, optional trailing '*'
  kInt,      // 42, -7
  kFloat,    // 3.5, -0.25
  kString,   // "text" with \" and \\ escapes
  kLBrace, kRBrace, kLParen, kRParen,
  kComma, kSemi, kAssign,              // { } ( ) , ; =
  kEq, kNe, kLt, kLe, kGt, kGe,        // == != < <= > >=
  kAnd, kOr, kNot,                     // && || !
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;      // ident/string content
  std::int64_t int_val = 0;
  double float_val = 0.0;
  int line = 1;
  int column = 1;
};

/// Tokenises `source`. Line comments run from "//" or '#' to end of line.
[[nodiscard]] std::vector<Token> lex_policy(const std::string& source);

}  // namespace amuse
