// AuthorisationService: evaluates Ponder-lite authorisation policies for
// the event bus ("authorisation policies specify what resources the
// components assigned to a role can access", §II-A).
//
// Decision rule: auth policies are consulted in declaration order; the
// first one whose (role, action, topic-pattern) matches wins. If none
// match, the document's default verdict applies (permit unless declared).
#pragma once

#include "bus/event_bus.hpp"
#include "policy/policy_store.hpp"

namespace amuse {

class AuthorisationService {
 public:
  explicit AuthorisationService(const PolicyStore& store) : store_(store) {}

  [[nodiscard]] bool check(const std::string& role, AuthOp op,
                           const std::string& topic) const;

  /// Adapter for EventBus::set_authoriser. The returned closure references
  /// this service; keep it alive as long as the bus.
  [[nodiscard]] EventBus::Authoriser authoriser();

  struct Stats {
    std::uint64_t checks = 0;
    std::uint64_t denials = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  const PolicyStore& store_;
  mutable Stats stats_;
};

}  // namespace amuse
