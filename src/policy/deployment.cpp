#include "policy/deployment.hpp"

#include "common/log.hpp"
#include "discovery/discovery_service.hpp"

namespace amuse {
namespace {
const Logger kLog("policy.deploy");
}

PolicyDeployer::PolicyDeployer(EventBus& bus, PolicyStore& store)
    : bus_(bus), store_(store) {}

PolicyDeployer::~PolicyDeployer() {
  if (started_) bus_.unsubscribe_local(subscription_);
}

void PolicyDeployer::add_rule(DeploymentRule rule) {
  rules_.push_back(std::move(rule));
}

void PolicyDeployer::start() {
  if (started_) return;
  started_ = true;
  subscription_ =
      bus_.subscribe_local(Filter::for_type(smc_events::kNewMember),
                           [this](const Event& e) { on_new_member(e); });
}

void PolicyDeployer::on_new_member(const Event& e) {
  ++stats_.admissions_seen;
  std::string device_type = e.get_string("device_type");
  std::int64_t member_raw = e.get_int("member");

  for (const DeploymentRule& rule : rules_) {
    if (!device_type.starts_with(rule.device_type_prefix)) continue;
    ++stats_.rules_applied;
    for (const std::string& name : rule.enable_policies) {
      if (store_.enable(name)) {
        ++stats_.policies_enabled;
      } else {
        kLog.warn("deployment rule for ", rule.device_type_prefix,
                  " enables unknown policy ", name);
      }
    }
    for (const Event& tmpl : rule.control_events) {
      Event out = tmpl;
      out.set("member", member_raw);
      ++stats_.control_events_sent;
      bus_.publish_local(std::move(out));
    }
  }
}

}  // namespace amuse
