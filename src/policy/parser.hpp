// Recursive-descent parser for the Ponder-lite policy language.
//
// Grammar (EBNF; ';' terminates every statement):
//
//   document    := { statement }
//   statement   := obligation | auth | auth_default
//   obligation  := "policy" IDENT [ "disabled" ] "on" topic
//                  [ "when" expr ] "do" action { action } ";"
//   action      := "publish" topic "{" [ assign { "," assign } ] "}"
//                | "log" STRING
//                | "enable" IDENT
//                | "disable" IDENT
//   assign      := IDENT "=" expr
//   auth        := "auth" ("permit"|"deny") "role" (STRING|IDENT|"*")
//                  ("publish"|"subscribe") (STRING|topic) ";"
//   auth_default:= "auth" "default" ("permit"|"deny") ";"
//   topic       := IDENT                      (may end with '*')
//   expr        := or_expr
//   or_expr     := and_expr { "||" and_expr }
//   and_expr    := unary { "&&" unary }
//   unary       := "!" unary | cmp
//   cmp         := primary [ ("=="|"!="|"<"|"<="|">"|">=") primary ]
//   primary     := INT | FLOAT | STRING | "true" | "false"
//                | "exists" "(" IDENT ")" | IDENT | "(" expr ")"
#pragma once

#include "policy/ast.hpp"
#include "policy/lexer.hpp"

namespace amuse {

/// Parses a policy document. Throws PolicyParseError with location info.
[[nodiscard]] PolicyDocument parse_policies(const std::string& source);

/// Parses a single expression (handy for tests and ad-hoc conditions).
[[nodiscard]] ExprPtr parse_policy_expr(const std::string& source);

}  // namespace amuse
