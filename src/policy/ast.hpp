// Ponder-lite policy AST (paper §II-A).
//
// Two policy families, after Damianou et al.'s Ponder:
//   - obligation policies: event-condition-action rules that "specify how
//     components/services react to events";
//   - authorisation policies: "what resources the components assigned to a
//     role can access" — here, which roles may publish/subscribe to which
//     event-type topics.
//
// Concrete syntax (see parser.hpp for the grammar):
//   policy high_hr on vitals.heartrate when hr > 120
//     do publish alarm.cardiac { level = "high", hr = hr };
//   auth deny role "sensor" subscribe "control.*";
//   auth default permit;
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pubsub/filter.hpp"

namespace amuse {

struct PolicyExpr;
using ExprPtr = std::unique_ptr<PolicyExpr>;

struct PolicyExpr {
  enum class Kind {
    kLiteral,  // value
    kAttr,     // attribute reference (evaluates against the trigger event)
    kExists,   // exists(attr)
    kNot,      // !e
    kAnd,      // a && b
    kOr,       // a || b
    kCmp,      // a <op> b, op ∈ {==, !=, <, <=, >, >=}
  };

  Kind kind = Kind::kLiteral;
  Value literal;
  std::string attr;
  Op cmp_op = Op::kEq;
  ExprPtr lhs;
  ExprPtr rhs;

  [[nodiscard]] static ExprPtr make_literal(Value v);
  [[nodiscard]] static ExprPtr make_attr(std::string name);
  [[nodiscard]] static ExprPtr make_exists(std::string name);
  [[nodiscard]] static ExprPtr make_not(ExprPtr e);
  [[nodiscard]] static ExprPtr make_binary(Kind kind, ExprPtr a, ExprPtr b);
  [[nodiscard]] static ExprPtr make_cmp(Op op, ExprPtr a, ExprPtr b);

  [[nodiscard]] ExprPtr clone() const;
  [[nodiscard]] std::string to_string() const;
};

struct PolicyAssignment {
  std::string name;
  ExprPtr expr;
};

struct PolicyAction {
  enum class Kind {
    kPublish,  // publish <type> { name = expr, … }
    kLog,      // log "message"
    kEnable,   // enable <policy-name>   (policies governing policies)
    kDisable,  // disable <policy-name>
  };
  Kind kind = Kind::kLog;
  std::string target;  // event type / log message / policy name
  std::vector<PolicyAssignment> args;
};

struct ObligationPolicy {
  std::string name;
  /// Triggering event type; `on_prefix` true for trailing-'*' patterns.
  std::string on_type;
  bool on_prefix = false;
  ExprPtr condition;  // null = unconditional
  std::vector<PolicyAction> actions;
  bool initially_disabled = false;

  /// The bus filter this policy's subscription uses.
  [[nodiscard]] Filter trigger_filter() const;
};

enum class AuthVerdict : std::uint8_t { kPermit, kDeny };
enum class AuthOp : std::uint8_t { kPublish, kSubscribe };

struct AuthPolicy {
  AuthVerdict verdict = AuthVerdict::kPermit;
  std::string role;           // "*" = any role
  AuthOp op = AuthOp::kPublish;
  std::string topic_pattern;  // exact, or trailing-'*' prefix

  [[nodiscard]] bool matches(const std::string& member_role, AuthOp action,
                             const std::string& topic) const;
};

struct PolicyDocument {
  std::vector<ObligationPolicy> obligations;
  std::vector<AuthPolicy> auths;
  std::optional<AuthVerdict> default_verdict;
};

/// Topic-pattern matching: "vitals.*" matches "vitals.heartrate"; "*"
/// matches everything; otherwise exact. (Subscription topics may themselves
/// end in '*', in which case the pattern must cover the whole prefix.)
[[nodiscard]] bool topic_matches(const std::string& pattern,
                                 const std::string& topic);

}  // namespace amuse
