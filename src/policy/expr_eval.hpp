// Evaluation of Ponder-lite expressions against a triggering event.
#pragma once

#include "policy/ast.hpp"
#include "pubsub/event.hpp"

namespace amuse {

/// Evaluates `expr` with attribute references resolved against `trigger`.
/// Missing attributes yield nullopt ("absent"): comparisons involving them
/// are false, exists() is false, and logic treats them as false — a policy
/// never throws at runtime because a device omitted a field.
[[nodiscard]] std::optional<Value> eval_expr(const PolicyExpr& expr,
                                             const Event& trigger);

/// Truthiness: bool → itself; numeric → != 0; string/bytes → non-empty.
[[nodiscard]] bool truthy(const Value& v);

/// Condition wrapper: null condition is true; otherwise truthy(eval).
[[nodiscard]] bool eval_condition(const PolicyExpr* expr,
                                  const Event& trigger);

}  // namespace amuse
