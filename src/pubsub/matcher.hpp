// Matcher: the interchangeable matching engine behind the event bus.
//
// The paper's "EventBus" interface "has allowed us to replace Siena with a
// more lightweight mechanism" (§III-A); this is that seam. Three engines:
//   - BruteForceMatcher — linear scan; the semantic oracle for tests;
//   - SienaMatcher      — subscription poset with covering relations, used
//                         through a translation layer (the Siena-based bus);
//   - FastForwardMatcher — the counting algorithm of Siena's fast
//                         forwarding module (Carzaniga & Wolf, SIGCOMM'03),
//                         the model for the paper's dedicated C engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pubsub/filter.hpp"

namespace amuse {

/// Opaque subscription identity assigned by the caller (the bus maps these
/// to proxies).
using SubId = std::uint64_t;

class Matcher {
 public:
  virtual ~Matcher();

  Matcher() = default;
  Matcher(const Matcher&) = delete;
  Matcher& operator=(const Matcher&) = delete;

  /// Registers `filter` under `id`. Re-adding an existing id replaces its
  /// filter.
  virtual void add(SubId id, const Filter& filter) = 0;
  /// Removes a subscription; unknown ids are ignored.
  virtual void remove(SubId id) = 0;
  /// Appends the ids of all subscriptions whose filter matches `e`.
  /// Order is unspecified; ids appear at most once.
  virtual void match(const Event& e, std::vector<SubId>& out) const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace amuse
