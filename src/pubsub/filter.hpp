// Content filters: conjunctions of typed constraints over event attributes
// (the Siena subscription model the prototype adopts).
//
// Besides evaluation, filters support a *covering* test — `covers(f, g)` is
// true when every event matching g also matches f — which is the relation
// Siena's subscription poset is built on (see SienaMatcher). The covering
// test is sound but deliberately incomplete: it proves implication for the
// operator algebra below and answers "unknown = not covered" otherwise.
#pragma once

#include <string>
#include <vector>

#include "pubsub/event.hpp"

namespace amuse {

enum class Op : std::uint8_t {
  kEq = 1,       // equals (numeric family unified)
  kNe = 2,       // not equals
  kLt = 3,       // strictly less (numeric or lexicographic string)
  kLe = 4,
  kGt = 5,
  kGe = 6,
  kPrefix = 7,   // string starts-with
  kSuffix = 8,   // string ends-with
  kContains = 9, // string substring
  kExists = 10,  // attribute present, any value
};

[[nodiscard]] const char* to_string(Op op);

struct Constraint {
  std::string attribute;
  Op op = Op::kExists;
  Value value;

  /// Does a concrete attribute value satisfy this constraint?
  [[nodiscard]] bool matches(const Value& v) const;

  /// Sound-but-incomplete implication: "every value satisfying *this also
  /// satisfies `weaker`" (both on the same attribute).
  [[nodiscard]] bool implies(const Constraint& weaker) const;

  [[nodiscard]] bool operator==(const Constraint& other) const;
  [[nodiscard]] std::string to_string() const;

  void encode(Writer& w) const;
  [[nodiscard]] static Constraint decode(Reader& r);
};

class Filter {
 public:
  Filter() = default;

  Filter& where(std::string attribute, Op op, Value value = Value());
  /// Shorthand for the ubiquitous type filter: where("type", kEq, t).
  [[nodiscard]] static Filter for_type(std::string type);
  /// Matches events whose "type" starts with `prefix` (topic trees like
  /// "vitals.").
  [[nodiscard]] static Filter for_type_prefix(std::string prefix);

  /// True when the filter has no constraints (matches everything).
  [[nodiscard]] bool empty() const { return constraints_.empty(); }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] std::size_t size() const { return constraints_.size(); }

  [[nodiscard]] bool matches(const Event& e) const;

  [[nodiscard]] bool operator==(const Filter& other) const;
  [[nodiscard]] std::string to_string() const;

  void encode(Writer& w) const;
  [[nodiscard]] static Filter decode(Reader& r);

 private:
  std::vector<Constraint> constraints_;
};

/// True when every event matching `specific` also matches `general`
/// (sound, incomplete — see file comment).
[[nodiscard]] bool covers(const Filter& general, const Filter& specific);

}  // namespace amuse
