// EncodedEvent: the per-publish cache pairing a frozen event with its wire
// encoding, produced at most once and shared by reference across every
// outgoing link of a fan-out.
//
// The paper's C-based engine exists because per-event copying and
// translation dominate bus cost (§III-A, Fig. 4); Gryphon-style brokering
// treats a published event as one immutable dataflow value shared across
// all outgoing links. This type is that value: the bus routes an
// EncodedEvent, each ForwardingProxy prepends only its small per-member
// header to the shared body bytes, and nobody re-serialises the attribute
// map. Encoding is lazy so fan-outs that never touch the wire (local
// handlers, translating proxies speaking raw device protocols) never pay
// for it.
//
// Thread model: the bus pipeline is single-threaded on its executor, so the
// lazy encode needs no synchronisation; the produced Bytes are immutable
// and safe to share once handed out.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "pubsub/event.hpp"

namespace amuse {

class EncodedEvent {
 public:
  explicit EncodedEvent(EventPtr event) : event_(std::move(event)) {}

  /// Points the encode/reuse tallies at the owner's stats (the bus wires
  /// these to Stats::encodes / Stats::encode_reuses). The pointers must
  /// outlive every shared_bytes() call.
  void set_counters(std::uint64_t* encodes, std::uint64_t* reuses) {
    encodes_ = encodes;
    reuses_ = reuses;
  }

  [[nodiscard]] const Event& event() const { return *event_; }
  [[nodiscard]] const EventPtr& event_ptr() const { return event_; }

  /// The serialised event body — identical to encode_event(event()).
  /// Encoded on first call; every later call (any member of the fan-out,
  /// any retransmission) shares the same immutable bytes.
  [[nodiscard]] const std::shared_ptr<const Bytes>& shared_bytes() const;

  /// Size of the wire encoding (encodes on first use, like shared_bytes()).
  [[nodiscard]] std::size_t wire_size() const { return shared_bytes()->size(); }

  /// True once the encoding has been materialised.
  [[nodiscard]] bool encoded() const { return bytes_ != nullptr; }

 private:
  EventPtr event_;
  mutable std::shared_ptr<const Bytes> bytes_;
  std::uint64_t* encodes_ = nullptr;
  std::uint64_t* reuses_ = nullptr;
};

}  // namespace amuse
