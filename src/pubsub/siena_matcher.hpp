// SienaMatcher — a faithful reconstruction of the Siena server's
// subscription structure: a partially ordered set (DAG) of filters under
// the *covering* relation (Carzaniga, Rosenblum & Wolf, TOCS 2001).
//
// covers(f, g) means every event matching g matches f; the poset keeps the
// most general filters at the roots. Matching walks from the roots and
// prunes an entire subtree as soon as a node fails to match (a descendant
// is more specific, so it cannot match either). This was the engine of the
// paper's first prototype, used through a translation layer — see
// pubsub/siena_translation.hpp and bus/event_bus.hpp.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pubsub/matcher.hpp"

namespace amuse {

class SienaMatcher final : public Matcher {
 public:
  ~SienaMatcher() override;

  void add(SubId id, const Filter& filter) override;
  void remove(SubId id) override;
  void match(const Event& e, std::vector<SubId>& out) const override;
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }
  [[nodiscard]] std::string name() const override { return "siena"; }

  // Introspection for tests and the matcher-ablation bench.
  [[nodiscard]] std::size_t root_count() const { return roots_.size(); }
  /// Checks poset invariants: every edge parent→child satisfies
  /// covers(parent, child); every node is reachable from a root; no cycles.
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Node {
    SubId id;
    Filter filter;
    std::vector<Node*> parents;
    std::vector<Node*> children;
  };

  /// Most specific existing nodes that cover `filter`.
  void find_direct_parents(const Filter& filter,
                           std::vector<Node*>& out) const;
  static void unlink(std::vector<Node*>& list, Node* n);

  std::unordered_map<SubId, std::unique_ptr<Node>> nodes_;
  std::vector<Node*> roots_;
};

}  // namespace amuse
