#include "pubsub/fastforward_matcher.hpp"

#include <algorithm>

namespace amuse {
namespace {

void sorted_insert(std::vector<std::pair<double, std::uint32_t>>& v,
                   double bound, std::uint32_t slot) {
  auto it = std::lower_bound(
      v.begin(), v.end(), bound,
      [](const auto& entry, double b) { return entry.first < b; });
  v.insert(it, {bound, slot});
}

}  // namespace

void FastForwardMatcher::add(SubId id, const Filter& filter) {
  auto it = slot_of_.find(id);
  if (it != slot_of_.end()) {
    // Re-add replaces the filter: the old constraints must leave the index
    // immediately (a tombstone is not enough — the resurrected id would be
    // bumped by stale entries), so force a compaction.
    drop_slot(it->second);
    compact();
  }
  Slot slot = static_cast<Slot>(slots_.size());
  slots_.push_back(SlotInfo{id, filter,
                            static_cast<std::uint32_t>(filter.size()), true});
  slot_of_.emplace(id, slot);
  ++live_count_;
  index_filter(slot, filter);
}

void FastForwardMatcher::index_filter(Slot slot, const Filter& filter) {
  if (filter.empty()) {
    empty_filters_.push_back(slot);
    return;
  }
  for (const Constraint& c : filter.constraints()) {
    AttrIndex& ai = attrs_[c.attribute];
    switch (c.op) {
      case Op::kExists:
        ai.exists.push_back(slot);
        break;
      case Op::kEq:
        if (c.value.is_numeric()) {
          ai.eq_num[c.value.as_double()].push_back(slot);
        } else if (c.value.type() == ValueType::kString) {
          ai.eq_str[c.value.as_string()].push_back(slot);
        } else {
          ai.scan.push_back({c.op, c.value, slot});
        }
        break;
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe:
        if (c.value.is_numeric()) {
          double bound = c.value.as_double();
          switch (c.op) {
            case Op::kLt: sorted_insert(ai.lt, bound, slot); break;
            case Op::kLe: sorted_insert(ai.le, bound, slot); break;
            case Op::kGt: sorted_insert(ai.gt, bound, slot); break;
            default: sorted_insert(ai.ge, bound, slot); break;
          }
        } else {
          ai.scan.push_back({c.op, c.value, slot});
        }
        break;
      default:
        ai.scan.push_back({c.op, c.value, slot});
        break;
    }
  }
}

void FastForwardMatcher::drop_slot(Slot slot) {
  if (!slots_[slot].alive) return;
  slots_[slot].alive = false;
  --live_count_;
  ++dead_count_;
}

void FastForwardMatcher::remove(SubId id) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return;
  drop_slot(it->second);
  slot_of_.erase(it);
  if (dead_count_ > live_count_ && dead_count_ > 16) compact();
}

void FastForwardMatcher::compact() {
  std::vector<SlotInfo> live;
  live.reserve(live_count_);
  for (SlotInfo& info : slots_) {
    if (info.alive) live.push_back(std::move(info));
  }
  slots_ = std::move(live);
  slot_of_.clear();
  attrs_.clear();
  empty_filters_.clear();
  dead_count_ = 0;
  for (Slot slot = 0; slot < slots_.size(); ++slot) {
    slot_of_.emplace(slots_[slot].id, slot);
    index_filter(slot, slots_[slot].filter);
  }
  counts_.clear();
  stamps_.clear();
}

void FastForwardMatcher::match(const Event& e, std::vector<SubId>& out) const {
  if (counts_.size() < slots_.size()) {
    counts_.resize(slots_.size(), 0);
    stamps_.resize(slots_.size(), 0);
  }
  ++epoch_;

  auto bump = [&](Slot slot) {
    const SlotInfo& info = slots_[slot];
    if (!info.alive) return;
    if (stamps_[slot] != epoch_) {
      stamps_[slot] = epoch_;
      counts_[slot] = 0;
    }
    if (++counts_[slot] == info.total) out.push_back(info.id);
  };

  for (const auto& [name, value] : e.attributes()) {
    auto ait = attrs_.find(name);
    if (ait == attrs_.end()) continue;
    const AttrIndex& ai = ait->second;

    for (Slot slot : ai.exists) bump(slot);

    if (value.is_numeric()) {
      double v = value.as_double();
      if (auto eq = ai.eq_num.find(v); eq != ai.eq_num.end()) {
        for (Slot slot : eq->second) bump(slot);
      }
      // v < bound  ⇔  bound > v: suffix starting at upper_bound(v).
      {
        auto from = std::upper_bound(
            ai.lt.begin(), ai.lt.end(), v,
            [](double x, const auto& entry) { return x < entry.first; });
        for (auto it2 = from; it2 != ai.lt.end(); ++it2) bump(it2->second);
      }
      // v <= bound ⇔ bound >= v: suffix starting at lower_bound(v).
      {
        auto from = std::lower_bound(
            ai.le.begin(), ai.le.end(), v,
            [](const auto& entry, double x) { return entry.first < x; });
        for (auto it2 = from; it2 != ai.le.end(); ++it2) bump(it2->second);
      }
      // v > bound ⇔ bound < v: prefix ending at lower_bound(v).
      {
        auto to = std::lower_bound(
            ai.gt.begin(), ai.gt.end(), v,
            [](const auto& entry, double x) { return entry.first < x; });
        for (auto it2 = ai.gt.begin(); it2 != to; ++it2) bump(it2->second);
      }
      // v >= bound ⇔ bound <= v: prefix ending at upper_bound(v).
      {
        auto to = std::upper_bound(
            ai.ge.begin(), ai.ge.end(), v,
            [](double x, const auto& entry) { return x < entry.first; });
        for (auto it2 = ai.ge.begin(); it2 != to; ++it2) bump(it2->second);
      }
    } else if (value.type() == ValueType::kString) {
      if (auto eq = ai.eq_str.find(value.as_string()); eq != ai.eq_str.end()) {
        for (Slot slot : eq->second) bump(slot);
      }
    }

    for (const ScanEntry& entry : ai.scan) {
      Constraint c{name, entry.op, entry.value};
      if (c.matches(value)) bump(entry.slot);
    }
  }

  for (Slot slot : empty_filters_) {
    if (slots_[slot].alive) out.push_back(slots_[slot].id);
  }
}

}  // namespace amuse
