#include "pubsub/encoded_event.hpp"

#include "pubsub/codec.hpp"

namespace amuse {

const std::shared_ptr<const Bytes>& EncodedEvent::shared_bytes() const {
  if (!bytes_) {
    bytes_ = encode_event_shared(*event_);
    if (encodes_ != nullptr) ++*encodes_;
  } else {
    if (reuses_ != nullptr) ++*reuses_;
  }
  return bytes_;
}

}  // namespace amuse
