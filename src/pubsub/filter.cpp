#include "pubsub/filter.hpp"

#include <algorithm>

namespace amuse {

const char* to_string(Op op) {
  switch (op) {
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kPrefix: return "=^";
    case Op::kSuffix: return "=$";
    case Op::kContains: return "=~";
    case Op::kExists: return "exists";
  }
  return "?";
}

namespace {

/// Values are order-comparable when both are numeric or both share a type.
bool comparable(const Value& a, const Value& b) {
  return (a.is_numeric() && b.is_numeric()) || a.type() == b.type();
}

bool both_strings(const Value& a, const Value& b) {
  return a.type() == ValueType::kString && b.type() == ValueType::kString;
}

}  // namespace

bool Constraint::matches(const Value& v) const {
  switch (op) {
    case Op::kExists:
      return true;
    case Op::kEq:
      return v.equals(value);
    case Op::kNe:
      return comparable(v, value) && !v.equals(value);
    case Op::kLt:
      return comparable(v, value) && v.compare(value) < 0;
    case Op::kLe:
      return comparable(v, value) && v.compare(value) <= 0;
    case Op::kGt:
      return comparable(v, value) && v.compare(value) > 0;
    case Op::kGe:
      return comparable(v, value) && v.compare(value) >= 0;
    case Op::kPrefix:
      return both_strings(v, value) &&
             v.as_string().starts_with(value.as_string());
    case Op::kSuffix:
      return both_strings(v, value) &&
             v.as_string().ends_with(value.as_string());
    case Op::kContains:
      return both_strings(v, value) &&
             v.as_string().find(value.as_string()) != std::string::npos;
  }
  return false;
}

bool Constraint::implies(const Constraint& weaker) const {
  if (attribute != weaker.attribute) return false;
  if (weaker.op == Op::kExists) return true;
  // An equality constraint pins the value: test it directly.
  if (op == Op::kEq) return weaker.matches(value);

  const Constraint& s = *this;
  const Constraint& w = weaker;
  // Order-operator algebra needs comparable bounds.
  auto cmp_ok = [&] { return comparable(s.value, w.value); };
  auto cmp = [&] { return s.value.compare(w.value); };

  switch (s.op) {
    case Op::kLt:
      if (!cmp_ok()) return false;
      if (w.op == Op::kLt || w.op == Op::kLe) return cmp() <= 0;
      if (w.op == Op::kNe) return cmp() <= 0;  // v < a, c >= a ⇒ v != c
      return false;
    case Op::kLe:
      if (!cmp_ok()) return false;
      if (w.op == Op::kLe) return cmp() <= 0;
      if (w.op == Op::kLt) return cmp() < 0;
      if (w.op == Op::kNe) return cmp() < 0;  // v <= a, c > a ⇒ v != c
      return false;
    case Op::kGt:
      if (!cmp_ok()) return false;
      if (w.op == Op::kGt || w.op == Op::kGe) return cmp() >= 0;
      if (w.op == Op::kNe) return cmp() >= 0;
      return false;
    case Op::kGe:
      if (!cmp_ok()) return false;
      if (w.op == Op::kGe) return cmp() >= 0;
      if (w.op == Op::kGt) return cmp() > 0;
      if (w.op == Op::kNe) return cmp() > 0;
      return false;
    case Op::kNe:
      return w.op == Op::kNe && s.value.equals(w.value);
    case Op::kPrefix:
      if (!both_strings(s.value, w.value)) return false;
      if (w.op == Op::kPrefix) return s.value.as_string().starts_with(w.value.as_string());
      if (w.op == Op::kContains)
        return s.value.as_string().find(w.value.as_string()) !=
               std::string::npos;
      if (w.op == Op::kGe) return s.value.compare(w.value) >= 0;
      return false;
    case Op::kSuffix:
      if (!both_strings(s.value, w.value)) return false;
      if (w.op == Op::kSuffix) return s.value.as_string().ends_with(w.value.as_string());
      if (w.op == Op::kContains)
        return s.value.as_string().find(w.value.as_string()) !=
               std::string::npos;
      return false;
    case Op::kContains:
      if (!both_strings(s.value, w.value)) return false;
      return w.op == Op::kContains &&
             s.value.as_string().find(w.value.as_string()) !=
                 std::string::npos;
    case Op::kExists:
    case Op::kEq:
      return false;  // kEq handled above; kExists implies only kExists
  }
  return false;
}

bool Constraint::operator==(const Constraint& other) const {
  return attribute == other.attribute && op == other.op &&
         value.equals(other.value);
}

std::string Constraint::to_string() const {
  if (op == Op::kExists) return attribute + " exists";
  return attribute + " " + amuse::to_string(op) + " " + value.to_string();
}

void Constraint::encode(Writer& w) const {
  w.str(attribute);
  w.u8(static_cast<std::uint8_t>(op));
  value.encode(w);
}

Constraint Constraint::decode(Reader& r) {
  Constraint c;
  c.attribute = r.str();
  auto raw = r.u8();
  if (raw < 1 || raw > 10) {
    throw DecodeError("bad constraint op " + std::to_string(raw));
  }
  c.op = static_cast<Op>(raw);
  c.value = Value::decode(r);
  return c;
}

Filter& Filter::where(std::string attribute, Op op, Value value) {
  constraints_.push_back(Constraint{std::move(attribute), op, std::move(value)});
  return *this;
}

Filter Filter::for_type(std::string type) {
  Filter f;
  f.where("type", Op::kEq, Value(std::move(type)));
  return f;
}

Filter Filter::for_type_prefix(std::string prefix) {
  Filter f;
  f.where("type", Op::kPrefix, Value(std::move(prefix)));
  return f;
}

bool Filter::matches(const Event& e) const {
  for (const Constraint& c : constraints_) {
    const Value* v = e.get(c.attribute);
    if (!v || !c.matches(*v)) return false;
  }
  return true;
}

bool Filter::operator==(const Filter& other) const {
  return constraints_ == other.constraints_;
}

std::string Filter::to_string() const {
  if (constraints_.empty()) return "(any)";
  std::string out;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i) out += " && ";
    out += constraints_[i].to_string();
  }
  return out;
}

void Filter::encode(Writer& w) const {
  w.u16(static_cast<std::uint16_t>(constraints_.size()));
  for (const Constraint& c : constraints_) c.encode(w);
}

Filter Filter::decode(Reader& r) {
  Filter f;
  std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n; ++i) {
    f.constraints_.push_back(Constraint::decode(r));
  }
  return f;
}

bool covers(const Filter& general, const Filter& specific) {
  return std::ranges::all_of(
      general.constraints(), [&](const Constraint& cg) {
        return std::ranges::any_of(
            specific.constraints(),
            [&](const Constraint& cs) { return cs.implies(cg); });
      });
}

}  // namespace amuse
