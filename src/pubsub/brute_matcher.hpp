// Linear-scan matcher: evaluates every registered filter against every
// event. O(subscriptions) per match, trivially correct — the oracle the
// property tests compare the indexed engines against, and a fine choice for
// the handful of subscriptions a single body-area SMC actually holds.
#pragma once

#include <unordered_map>

#include "pubsub/matcher.hpp"

namespace amuse {

class BruteForceMatcher final : public Matcher {
 public:
  void add(SubId id, const Filter& filter) override;
  void remove(SubId id) override;
  void match(const Event& e, std::vector<SubId>& out) const override;
  [[nodiscard]] std::size_t size() const override { return subs_.size(); }
  [[nodiscard]] std::string name() const override { return "brute"; }

 private:
  std::unordered_map<SubId, Filter> subs_;
};

}  // namespace amuse
