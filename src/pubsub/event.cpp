#include "pubsub/event.hpp"

namespace amuse {

Event::Event(std::string type,
             std::initializer_list<std::pair<const std::string, Value>> attrs)
    : attrs_(attrs) {
  attrs_.insert_or_assign("type", Value(std::move(type)));
}

Event& Event::set(std::string name, Value value) {
  attrs_.insert_or_assign(std::move(name), std::move(value));
  return *this;
}

bool Event::has(std::string_view name) const {
  return attrs_.find(name) != attrs_.end();
}

const Value* Event::get(std::string_view name) const {
  auto it = attrs_.find(name);
  return it == attrs_.end() ? nullptr : &it->second;
}

std::int64_t Event::get_int(std::string_view name, std::int64_t fallback) const {
  const Value* v = get(name);
  if (!v || v->type() != ValueType::kInt) return fallback;
  return v->as_int();
}

double Event::get_double(std::string_view name, double fallback) const {
  const Value* v = get(name);
  if (!v || !v->is_numeric()) return fallback;
  return v->as_double();
}

std::string Event::get_string(std::string_view name,
                              std::string fallback) const {
  const Value* v = get(name);
  if (!v || v->type() != ValueType::kString) return fallback;
  return v->as_string();
}

bool Event::operator==(const Event& other) const {
  if (attrs_.size() != other.attrs_.size()) return false;
  auto it = attrs_.begin();
  auto jt = other.attrs_.begin();
  for (; it != attrs_.end(); ++it, ++jt) {
    if (it->first != jt->first || !it->second.equals(jt->second)) return false;
  }
  return true;
}

std::size_t Event::payload_size() const {
  Writer w;
  encode(w);
  return w.size();
}

std::string Event::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : attrs_) {
    if (!first) out += ", ";
    first = false;
    out += name;
    out += "=";
    out += value.to_string();
  }
  out += "}";
  return out;
}

void Event::encode(Writer& w) const {
  w.u48(publisher_.raw());
  w.u64(publisher_seq_);
  w.i64(timestamp_.time_since_epoch().count());
  w.u16(static_cast<std::uint16_t>(attrs_.size()));
  for (const auto& [name, value] : attrs_) {
    w.str(name);
    value.encode(w);
  }
}

Event Event::decode(Reader& r) {
  Event e;
  e.publisher_ = ServiceId(r.u48());
  e.publisher_seq_ = r.u64();
  e.timestamp_ = TimePoint(Duration(r.i64()));
  std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n; ++i) {
    std::string name = r.str();
    e.attrs_.insert_or_assign(std::move(name), Value::decode(r));
  }
  return e;
}

}  // namespace amuse
