#include "pubsub/siena_translation.hpp"

#include <cstdio>
#include <cstdlib>

namespace amuse {
namespace {

std::string format_value(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return "int:" + std::to_string(v.as_int());
    case ValueType::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "double:%.17g", v.as_double());
      return buf;
    }
    case ValueType::kBool:
      return v.as_bool() ? "bool:true" : "bool:false";
    case ValueType::kString:
      return "str:" + std::to_string(v.as_string().size()) + ":" +
             v.as_string();
    case ValueType::kBytes:
      return "bytes:" + std::to_string(v.as_bytes().size()) + ":" +
             to_hex(v.as_bytes());
  }
  throw DecodeError("format_value: bad value type");
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw DecodeError("bad hex digit in siena value");
}

Value parse_value(const std::string& text) {
  auto colon = text.find(':');
  if (colon == std::string::npos) throw DecodeError("siena value: no tag");
  std::string tag = text.substr(0, colon);
  std::string body = text.substr(colon + 1);
  if (tag == "int") {
    return Value(static_cast<std::int64_t>(std::strtoll(body.c_str(), nullptr, 10)));
  }
  if (tag == "double") {
    return Value(std::strtod(body.c_str(), nullptr));
  }
  if (tag == "bool") {
    if (body == "true") return Value(true);
    if (body == "false") return Value(false);
    throw DecodeError("siena bool: " + body);
  }
  if (tag == "str" || tag == "bytes") {
    auto colon2 = body.find(':');
    if (colon2 == std::string::npos) {
      throw DecodeError("siena " + tag + ": missing length");
    }
    std::size_t len = std::strtoull(body.substr(0, colon2).c_str(), nullptr, 10);
    std::string payload = body.substr(colon2 + 1);
    if (tag == "str") {
      if (payload.size() != len) throw DecodeError("siena str: bad length");
      return Value(payload);
    }
    if (payload.size() != len * 2) throw DecodeError("siena bytes: bad length");
    Bytes out;
    out.reserve(len);
    for (std::size_t i = 0; i < payload.size(); i += 2) {
      out.push_back(static_cast<std::uint8_t>(hex_nibble(payload[i]) * 16 +
                                              hex_nibble(payload[i + 1])));
    }
    return Value(std::move(out));
  }
  throw DecodeError("siena value: unknown tag " + tag);
}

Op parse_op(const std::string& tok) {
  if (tok == "==") return Op::kEq;
  if (tok == "!=") return Op::kNe;
  if (tok == "<") return Op::kLt;
  if (tok == "<=") return Op::kLe;
  if (tok == ">") return Op::kGt;
  if (tok == ">=") return Op::kGe;
  if (tok == "=^") return Op::kPrefix;
  if (tok == "=$") return Op::kSuffix;
  if (tok == "=~") return Op::kContains;
  if (tok == "exists") return Op::kExists;
  throw DecodeError("siena filter: unknown op " + tok);
}

}  // namespace

SienaNotification to_siena(const Event& e) {
  SienaNotification n;
  for (const auto& [name, value] : e.attributes()) {
    n.attrs.emplace(name, format_value(value));
  }
  // Bus metadata travels as reserved attributes, exactly the kind of
  // "arbitrary tags" (§VI) the prototype relied on.
  n.attrs.emplace("x-publisher", "int:" + std::to_string(e.publisher().raw()));
  n.attrs.emplace("x-pubseq", "int:" + std::to_string(e.publisher_seq()));
  n.attrs.emplace(
      "x-ts", "int:" + std::to_string(e.timestamp().time_since_epoch().count()));
  return n;
}

Event from_siena(const SienaNotification& n) {
  Event e;
  for (const auto& [name, text] : n.attrs) {
    if (name == "x-publisher") {
      e.set_publisher(ServiceId(static_cast<std::uint64_t>(
          parse_value(text).as_int())));
      continue;
    }
    if (name == "x-pubseq") {
      e.set_publisher_seq(static_cast<std::uint64_t>(parse_value(text).as_int()));
      continue;
    }
    if (name == "x-ts") {
      e.set_timestamp(TimePoint(Duration(parse_value(text).as_int())));
      continue;
    }
    e.set(name, parse_value(text));
  }
  return e;
}

std::string to_siena_filter(const Filter& f) {
  std::string out;
  for (std::size_t i = 0; i < f.constraints().size(); ++i) {
    const Constraint& c = f.constraints()[i];
    if (i) out += " && ";
    out += c.attribute;
    out += ' ';
    out += to_string(c.op);
    if (c.op != Op::kExists) {
      out += ' ';
      out += format_value(c.value);
    }
  }
  return out;
}

Filter parse_siena_filter(const std::string& text) {
  Filter f;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(" && ", pos);
    std::string clause = end == std::string::npos
                             ? text.substr(pos)
                             : text.substr(pos, end - pos);
    pos = end == std::string::npos ? text.size() : end + 4;
    if (clause.empty()) continue;

    std::size_t sp1 = clause.find(' ');
    if (sp1 == std::string::npos) throw DecodeError("siena filter: no op");
    std::string attr = clause.substr(0, sp1);
    std::size_t sp2 = clause.find(' ', sp1 + 1);
    std::string op_tok = clause.substr(
        sp1 + 1, (sp2 == std::string::npos ? clause.size() : sp2) - sp1 - 1);
    Op op = parse_op(op_tok);
    if (op == Op::kExists) {
      f.where(std::move(attr), op);
    } else {
      if (sp2 == std::string::npos) {
        throw DecodeError("siena filter: missing value");
      }
      f.where(std::move(attr), op, parse_value(clause.substr(sp2 + 1)));
    }
  }
  return f;
}

Event siena_round_trip(const Event& e) { return from_siena(to_siena(e)); }

}  // namespace amuse
