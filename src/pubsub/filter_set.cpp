#include "pubsub/filter_set.hpp"

#include <algorithm>

namespace amuse {

Bytes FilterSet::encoding_of(const Filter& f) {
  Writer w;
  f.encode(w);
  return std::move(w).take();
}

FilterSet::FilterSet(std::vector<Filter> filters)
    : filters_(std::move(filters)) {
  keys_.reserve(filters_.size());
  for (const Filter& f : filters_) keys_.push_back(encoding_of(f));
  canonicalise();
}

void FilterSet::canonicalise() {
  std::vector<std::size_t> order(filters_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return keys_[a] < keys_[b];
  });
  std::vector<Filter> filters;
  std::vector<Bytes> keys;
  filters.reserve(order.size());
  keys.reserve(order.size());
  for (std::size_t idx : order) {
    if (!keys.empty() && keys.back() == keys_[idx]) continue;  // dedupe
    filters.push_back(std::move(filters_[idx]));
    keys.push_back(std::move(keys_[idx]));
  }
  filters_ = std::move(filters);
  keys_ = std::move(keys);
}

bool FilterSet::insert(const Filter& f) {
  Bytes key = encoding_of(f);
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it != keys_.end() && *it == key) return false;
  auto pos = static_cast<std::size_t>(it - keys_.begin());
  keys_.insert(it, std::move(key));
  filters_.insert(filters_.begin() + static_cast<std::ptrdiff_t>(pos), f);
  return true;
}

bool FilterSet::erase(const Filter& f) {
  Bytes key = encoding_of(f);
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return false;
  auto pos = static_cast<std::size_t>(it - keys_.begin());
  keys_.erase(it);
  filters_.erase(filters_.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

bool FilterSet::contains(const Filter& f) const {
  return std::binary_search(keys_.begin(), keys_.end(), encoding_of(f));
}

void FilterSet::compact() {
  // Keep filter i unless some other filter j covers it; within an
  // equivalence class (mutual covering) only the canonically first member
  // survives — j < i breaks the tie, so exactly one representative stays.
  std::vector<bool> drop(filters_.size(), false);
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    for (std::size_t j = 0; j < filters_.size(); ++j) {
      if (i == j || drop[j]) continue;
      if (!covers(filters_[j], filters_[i])) continue;
      if (covers(filters_[i], filters_[j]) && i < j) continue;  // tie: keep i
      drop[i] = true;
      break;
    }
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    if (drop[i]) continue;
    if (out != i) {
      filters_[out] = std::move(filters_[i]);
      keys_[out] = std::move(keys_[i]);
    }
    ++out;
  }
  filters_.resize(out);
  keys_.resize(out);
}

bool FilterSet::matches_any(const Event& e) const {
  return std::any_of(filters_.begin(), filters_.end(),
                     [&](const Filter& f) { return f.matches(e); });
}

Digest256 FilterSet::digest() const {
  Sha256 hash;
  for (const Bytes& key : keys_) {
    // Length-prefix each entry so adjacent encodings cannot alias across
    // entry boundaries.
    Writer len(4);
    len.u32(static_cast<std::uint32_t>(key.size()));
    Bytes len_bytes = std::move(len).take();
    hash.update(len_bytes);
    hash.update(key);
  }
  return hash.finish();
}

std::vector<Filter> FilterSet::added_in(const FilterSet& next) const {
  std::vector<Filter> out;
  for (std::size_t i = 0; i < next.keys_.size(); ++i) {
    if (!std::binary_search(keys_.begin(), keys_.end(), next.keys_[i])) {
      out.push_back(next.filters_[i]);
    }
  }
  return out;
}

std::vector<Filter> FilterSet::removed_in(const FilterSet& next) const {
  return next.added_in(*this);
}

bool FilterSet::operator==(const FilterSet& other) const {
  return keys_ == other.keys_;
}

}  // namespace amuse
