#include "pubsub/codec.hpp"

namespace amuse {

Bytes encode_event(const Event& e) {
  Writer w;
  e.encode(w);
  return std::move(w).take();
}

std::shared_ptr<const Bytes> encode_event_shared(const Event& e) {
  return std::make_shared<const Bytes>(encode_event(e));
}

Event decode_event(BytesView b) {
  Reader r(b);
  Event e = Event::decode(r);
  if (!r.done()) throw DecodeError("trailing bytes after event");
  return e;
}

Bytes encode_filter(const Filter& f) {
  Writer w;
  f.encode(w);
  return std::move(w).take();
}

Filter decode_filter(BytesView b) {
  Reader r(b);
  Filter f = Filter::decode(r);
  if (!r.done()) throw DecodeError("trailing bytes after filter");
  return f;
}

}  // namespace amuse
