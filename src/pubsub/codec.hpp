// Standalone byte-array codecs for events and filters — the representation
// that crosses the generic transport layer (paper §III-D: byte arrays keep
// the SMC core independent of any language serialisation).
#pragma once

#include "pubsub/event.hpp"
#include "pubsub/filter.hpp"

namespace amuse {

[[nodiscard]] Bytes encode_event(const Event& e);
/// The event encoding as shared-immutable bytes — the form the delivery
/// pipeline caches per publish and shares across all fan-out links.
[[nodiscard]] std::shared_ptr<const Bytes> encode_event_shared(const Event& e);
/// Throws DecodeError on malformed input.
[[nodiscard]] Event decode_event(BytesView b);

[[nodiscard]] Bytes encode_filter(const Filter& f);
[[nodiscard]] Filter decode_filter(BytesView b);

}  // namespace amuse
