#include "pubsub/value.hpp"

#include <cmath>
#include <cstdio>

namespace amuse {

const char* to_string(ValueType t) {
  switch (t) {
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kBool: return "bool";
    case ValueType::kString: return "string";
    case ValueType::kBytes: return "bytes";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(v_.index() + 1);
}

double Value::as_double() const {
  if (std::holds_alternative<std::int64_t>(v_)) {
    return static_cast<double>(std::get<std::int64_t>(v_));
  }
  return std::get<double>(v_);
}

bool Value::equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return as_double() == other.as_double();
  }
  return v_ == other.v_;
}

int Value::compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    double a = as_double();
    double b = other.as_double();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  if (v_ < other.v_) return -1;
  if (other.v_ < v_) return 1;
  return 0;
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::kInt:
      return "int:" + std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "double:%.17g", std::get<double>(v_));
      return buf;
    }
    case ValueType::kBool:
      return as_bool() ? "bool:true" : "bool:false";
    case ValueType::kString:
      return "str:\"" + as_string() + "\"";
    case ValueType::kBytes:
      return "bytes:" + std::to_string(as_bytes().size()) + ":" +
             to_hex(as_bytes());
  }
  return "?";
}

void Value::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case ValueType::kInt:
      w.i64(as_int());
      break;
    case ValueType::kDouble:
      w.f64(std::get<double>(v_));
      break;
    case ValueType::kBool:
      w.boolean(as_bool());
      break;
    case ValueType::kString:
      w.str(as_string());
      break;
    case ValueType::kBytes:
      w.blob32(as_bytes());
      break;
  }
}

Value Value::decode(Reader& r) {
  auto tag = static_cast<ValueType>(r.u8());
  switch (tag) {
    case ValueType::kInt:
      return Value(r.i64());
    case ValueType::kDouble:
      return Value(r.f64());
    case ValueType::kBool:
      return Value(r.boolean());
    case ValueType::kString:
      return Value(r.str());
    case ValueType::kBytes:
      return Value(r.blob32());
  }
  throw DecodeError("unknown value type tag " +
                    std::to_string(static_cast<int>(tag)));
}

}  // namespace amuse
