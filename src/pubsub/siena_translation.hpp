// The Siena translation layer.
//
// The first prototype wrapped Siena "with an appropriate interface to allow
// translation of Siena subscription/notification types to or from our own"
// (§III-A), and the paper attributes the Siena-based bus's extra latency to
// exactly these translations and the copies they imply (§V). This module
// reconstructs that layer: events and filters are converted to and from a
// Siena-style *string-typed* representation (`SienaNotification`), doing
// genuine formatting/parsing work so the cost is real in wall-clock
// benchmarks as well as modelled in the simulator (BusCostModel).
#pragma once

#include <map>
#include <string>

#include "pubsub/event.hpp"
#include "pubsub/filter.hpp"

namespace amuse {

/// Siena's AttributeValue set rendered as text, e.g.
///   {"type" -> "str:14:vitals.spo2.ok", "value" -> "int:97"}.
struct SienaNotification {
  std::map<std::string, std::string> attrs;
};

/// Formats every attribute to the string representation (one full pass +
/// one string allocation per attribute — the translation cost).
[[nodiscard]] SienaNotification to_siena(const Event& e);

/// Parses the string representation back to a typed Event.
/// Throws DecodeError on malformed input.
[[nodiscard]] Event from_siena(const SienaNotification& n);

/// Textual Siena filter, one "attr op value" clause per constraint.
[[nodiscard]] std::string to_siena_filter(const Filter& f);
[[nodiscard]] Filter parse_siena_filter(const std::string& text);

/// Round-trips an event through the Siena representation, as the prototype
/// effectively did on every publish (our types → Siena types at the input,
/// Siena types → our types at each delivery). Returns the re-parsed event.
[[nodiscard]] Event siena_round_trip(const Event& e);

}  // namespace amuse
