// FastForwardMatcher — the counting algorithm behind Siena's "fast
// forwarding" module (Carzaniga & Wolf, "Forwarding in a content-based
// network", SIGCOMM 2003), which the paper's dedicated C engine is "based
// on" (§IV).
//
// Constraints are indexed per attribute: equality constraints in hash
// tables, numeric range constraints in sorted bound arrays (so an event
// value selects every satisfied bound with two binary searches), and the
// irregular operators (string ranges, substring ops, !=) in small per-
// attribute scan lists. Matching an event bumps a counter per filter for
// each satisfied constraint; a filter whose counter reaches its constraint
// count matches. Cost scales with the number of *satisfied constraints*,
// not the number of subscriptions.
//
// Filters are assigned dense slots so the per-match counters live in flat,
// epoch-stamped arrays — no hashing or clearing in the hot loop.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "pubsub/matcher.hpp"

namespace amuse {

class FastForwardMatcher final : public Matcher {
 public:
  void add(SubId id, const Filter& filter) override;
  void remove(SubId id) override;
  void match(const Event& e, std::vector<SubId>& out) const override;
  [[nodiscard]] std::size_t size() const override { return live_count_; }
  [[nodiscard]] std::string name() const override { return "fastforward"; }

 private:
  using Slot = std::uint32_t;

  struct SlotInfo {
    SubId id = 0;
    Filter filter;
    std::uint32_t total = 0;  // number of constraints
    bool alive = false;
  };

  struct ScanEntry {
    Op op;
    Value value;
    Slot slot;
  };

  struct AttrIndex {
    std::unordered_map<double, std::vector<Slot>> eq_num;
    std::unordered_map<std::string, std::vector<Slot>> eq_str;
    // Numeric range constraints, each sorted by bound.
    std::vector<std::pair<double, Slot>> lt, le, gt, ge;
    // !=, string ranges, prefix/suffix/contains, bool/bytes equality.
    std::vector<ScanEntry> scan;
    std::vector<Slot> exists;
  };

  void index_filter(Slot slot, const Filter& filter);
  void drop_slot(Slot slot);
  void compact();

  std::vector<SlotInfo> slots_;
  std::unordered_map<SubId, Slot> slot_of_;
  std::unordered_map<std::string, AttrIndex> attrs_;
  std::vector<Slot> empty_filters_;  // constraint-free: match everything
  std::size_t live_count_ = 0;
  std::size_t dead_count_ = 0;

  // Per-match scratch (epoch-stamped so it never needs clearing).
  mutable std::vector<std::uint32_t> counts_;
  mutable std::vector<std::uint64_t> stamps_;
  mutable std::uint64_t epoch_ = 0;
};

}  // namespace amuse
