// FilterSet: a canonical, digestable *set* of content filters — the value
// routing peers exchange (quench tables, inter-cell interest tables).
//
// Canonical form: filters sorted by wire encoding with duplicates removed,
// so two sets with the same effective members digest identically no matter
// which subscriptions produced them. compact() additionally collapses
// filters that are *covered* by another member of the set (Siena's
// covering poset: covers(f, g) ⇔ every event matching g matches f), which
// is what keeps the interest a cell exports across a federation link down
// to the union of downstream interests instead of one filter per
// downstream subscription.
#pragma once

#include <vector>

#include "common/sha256.hpp"
#include "pubsub/filter.hpp"

namespace amuse {

class FilterSet {
 public:
  FilterSet() = default;
  /// Canonicalises on construction (sort by encoding, dedupe).
  explicit FilterSet(std::vector<Filter> filters);

  /// Inserts one filter, keeping canonical order. No-op for duplicates;
  /// returns true when the set changed.
  bool insert(const Filter& f);
  /// Removes a filter by value; returns true when present.
  bool erase(const Filter& f);
  [[nodiscard]] bool contains(const Filter& f) const;

  /// Drops every filter covered by another member of the set. Equivalent
  /// filters (mutual covering) keep the canonically-smallest encoding.
  /// Matching semantics are preserved exactly: for any event, some filter
  /// in the compacted set matches iff some filter in the original did.
  void compact();

  /// The canonically ordered filters.
  [[nodiscard]] const std::vector<Filter>& filters() const { return filters_; }
  [[nodiscard]] std::size_t size() const { return filters_.size(); }
  [[nodiscard]] bool empty() const { return filters_.empty(); }

  /// True when any member filter matches the event.
  [[nodiscard]] bool matches_any(const Event& e) const;

  /// SHA-256 over the length-prefixed canonical encodings: the identity
  /// routing peers compare before acting on a table push.
  [[nodiscard]] Digest256 digest() const;

  /// The canonical wire encoding of one filter (the set's ordering key).
  [[nodiscard]] static Bytes encoding_of(const Filter& f);

  /// Filters in `next` but not in *this / in *this but not in `next` —
  /// the incremental update a versioned table push carries.
  [[nodiscard]] std::vector<Filter> added_in(const FilterSet& next) const;
  [[nodiscard]] std::vector<Filter> removed_in(const FilterSet& next) const;

  [[nodiscard]] bool operator==(const FilterSet& other) const;

 private:
  void canonicalise();

  // Filters and their encodings, kept aligned and sorted by encoding.
  std::vector<Filter> filters_;
  std::vector<Bytes> keys_;
};

}  // namespace amuse
