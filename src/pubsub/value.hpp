// Typed attribute values for content-based events and filters.
//
// The prototype's events are attribute sets in the Siena style: named,
// typed values. We support the types the SMC needs: integers (sensor
// readings, thresholds), doubles (calibrated measurements), booleans,
// strings (tags, device types — "arbitrary tags as event identifiers",
// §VI) and raw byte blobs (opaque payloads like the Figure 4 workloads).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.hpp"

namespace amuse {

enum class ValueType : std::uint8_t {
  kInt = 1,
  kDouble = 2,
  kBool = 3,
  kString = 4,
  kBytes = 5,
};

[[nodiscard]] const char* to_string(ValueType t);

class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  Value(std::int64_t v) : v_(v) {}                    // NOLINT(runtime/explicit)
  Value(int v) : v_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(double v) : v_(v) {}                          // NOLINT
  Value(bool v) : v_(v) {}                            // NOLINT
  Value(std::string v) : v_(std::move(v)) {}          // NOLINT
  Value(const char* v) : v_(std::string(v)) {}        // NOLINT
  Value(Bytes v) : v_(std::move(v)) {}                // NOLINT

  [[nodiscard]] ValueType type() const;

  [[nodiscard]] bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }
  /// Numeric view (int promoted to double). Precondition: is_numeric().
  [[nodiscard]] double as_double() const;

  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Bytes& as_bytes() const { return std::get<Bytes>(v_); }

  /// Structural equality; numerics compare cross-type by value, so
  /// Value(3) == Value(3.0) — filters and events may mix int and double
  /// encodings for the same logical quantity (devices send what they can).
  [[nodiscard]] bool equals(const Value& other) const;

  /// Total order within a type family (numeric family unified). Ordering
  /// across unrelated types is well-defined but arbitrary (by type tag),
  /// which the matchers use for index keys.
  [[nodiscard]] int compare(const Value& other) const;

  /// Human/Siena-readable form, e.g. `int:42`, `str:"abc"`, `bytes:4:a1b2…`.
  [[nodiscard]] std::string to_string() const;

  void encode(Writer& w) const;
  [[nodiscard]] static Value decode(Reader& r);

 private:
  std::variant<std::int64_t, double, bool, std::string, Bytes> v_;
};

}  // namespace amuse
