#include "pubsub/brute_matcher.hpp"

namespace amuse {

Matcher::~Matcher() = default;

void BruteForceMatcher::add(SubId id, const Filter& filter) {
  subs_.insert_or_assign(id, filter);
}

void BruteForceMatcher::remove(SubId id) { subs_.erase(id); }

void BruteForceMatcher::match(const Event& e, std::vector<SubId>& out) const {
  for (const auto& [id, filter] : subs_) {
    if (filter.matches(e)) out.push_back(id);
  }
}

}  // namespace amuse
