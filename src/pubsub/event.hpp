// Events (Siena "notifications"): named, typed attribute sets.
//
// By convention every SMC event carries a string attribute "type" — e.g.
// "smc.member.new", "vitals.heartrate", "alarm.cardiac" — which obligation
// policies and simple subscribers key on, while content filters may
// constrain any attribute. Bus metadata (publisher id, publisher sequence
// number, timestamp) travels beside the attributes so the event bus can
// enforce per-sender ordering end to end.
#pragma once

#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/service_id.hpp"
#include "pubsub/value.hpp"
#include "sim/time.hpp"

namespace amuse {

class Event {
 public:
  Event() = default;
  /// Shorthand: Event("alarm.cardiac", {{"level", "high"}, {"hr", 188}}).
  explicit Event(std::string type,
                 std::initializer_list<std::pair<const std::string, Value>>
                     attrs = {});

  Event& set(std::string name, Value value);
  [[nodiscard]] bool has(std::string_view name) const;
  /// Returns nullptr when absent.
  [[nodiscard]] const Value* get(std::string_view name) const;
  /// Returns `fallback` when absent or not the requested type.
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback = 0) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback = 0.0) const;
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string fallback = "") const;

  /// The conventional "type" attribute ("" when unset or non-string). A
  /// view into the stored attribute — valid as long as the event is alive
  /// and the attribute unmodified; routing, authorisation and logging read
  /// it on every hop, so it must not allocate.
  [[nodiscard]] std::string_view type() const {
    const Value* v = get("type");
    if (!v || v->type() != ValueType::kString) return {};
    return v->as_string();
  }

  [[nodiscard]] const std::map<std::string, Value, std::less<>>& attributes()
      const {
    return attrs_;
  }
  [[nodiscard]] std::size_t size() const { return attrs_.size(); }

  // Bus metadata (not attributes; set by the bus client on publish).
  [[nodiscard]] ServiceId publisher() const { return publisher_; }
  [[nodiscard]] std::uint64_t publisher_seq() const { return publisher_seq_; }
  [[nodiscard]] TimePoint timestamp() const { return timestamp_; }
  void set_publisher(ServiceId id) { publisher_ = id; }
  void set_publisher_seq(std::uint64_t seq) { publisher_seq_ = seq; }
  void set_timestamp(TimePoint t) { timestamp_ = t; }

  [[nodiscard]] bool operator==(const Event& other) const;

  /// Approximate wire size in bytes (used by cost models).
  [[nodiscard]] std::size_t payload_size() const;

  [[nodiscard]] std::string to_string() const;

  void encode(Writer& w) const;
  [[nodiscard]] static Event decode(Reader& r);

 private:
  std::map<std::string, Value, std::less<>> attrs_;
  ServiceId publisher_;
  std::uint64_t publisher_seq_ = 0;
  TimePoint timestamp_{};
};

/// The delivery pipeline's handle on a published event. Once an event
/// enters the bus it is frozen: every layer (matcher, cost lambda, proxies,
/// local handlers) shares the same immutable instance instead of copying
/// the attribute map at each hop.
using EventPtr = std::shared_ptr<const Event>;

/// Freezes a mutable event into the shared-immutable form used by the
/// delivery pipeline.
[[nodiscard]] inline EventPtr freeze(Event e) {
  return std::make_shared<const Event>(std::move(e));
}

}  // namespace amuse
