#include "pubsub/siena_matcher.hpp"

#include <algorithm>
#include <deque>

namespace amuse {

SienaMatcher::~SienaMatcher() = default;

void SienaMatcher::unlink(std::vector<Node*>& list, Node* n) {
  list.erase(std::remove(list.begin(), list.end(), n), list.end());
}

void SienaMatcher::find_direct_parents(const Filter& filter,
                                       std::vector<Node*>& out) const {
  std::unordered_set<const Node*> visited;
  // DFS from each covering root towards the most specific covering nodes.
  auto descend = [&](auto&& self, Node* n) -> void {
    if (!visited.insert(n).second) return;
    std::vector<Node*> deeper;
    for (Node* c : n->children) {
      if (covers(c->filter, filter)) deeper.push_back(c);
    }
    if (deeper.empty()) {
      out.push_back(n);
      return;
    }
    for (Node* c : deeper) self(self, c);
  };
  for (Node* r : roots_) {
    if (covers(r->filter, filter)) descend(descend, r);
  }
  // Deduplicate (a node can be reached via several paths; `visited` already
  // prevents double-descent but a parent may be pushed once per path edge).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void SienaMatcher::add(SubId id, const Filter& filter) {
  remove(id);  // re-adding replaces

  auto owned = std::make_unique<Node>();
  Node* node = owned.get();
  node->id = id;
  node->filter = filter;

  std::vector<Node*> parents;
  find_direct_parents(filter, parents);

  if (parents.empty()) {
    // New root. Any current root covered by the new filter becomes a child.
    std::vector<Node*> captured;
    for (Node* r : roots_) {
      if (covers(filter, r->filter)) captured.push_back(r);
    }
    for (Node* c : captured) {
      unlink(roots_, c);
      c->parents.push_back(node);
      node->children.push_back(c);
    }
    roots_.push_back(node);
  } else {
    for (Node* p : parents) {
      // Children of p that the new, more specific node also covers move
      // under the new node (it sits between them and p).
      std::vector<Node*> captured;
      for (Node* c : p->children) {
        if (c != node && covers(filter, c->filter)) captured.push_back(c);
      }
      for (Node* c : captured) {
        unlink(p->children, c);
        unlink(c->parents, p);
        if (std::find(c->parents.begin(), c->parents.end(), node) ==
            c->parents.end()) {
          c->parents.push_back(node);
          node->children.push_back(c);
        }
      }
      p->children.push_back(node);
      node->parents.push_back(p);
    }
  }
  nodes_.emplace(id, std::move(owned));
}

void SienaMatcher::remove(SubId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  Node* node = it->second.get();

  // Splice children up to the node's parents (or to the roots).
  for (Node* c : node->children) {
    unlink(c->parents, node);
    if (node->parents.empty()) {
      if (c->parents.empty()) roots_.push_back(c);
    } else {
      for (Node* p : node->parents) {
        if (std::find(c->parents.begin(), c->parents.end(), p) ==
            c->parents.end()) {
          c->parents.push_back(p);
          p->children.push_back(c);
        }
      }
    }
  }
  for (Node* p : node->parents) unlink(p->children, node);
  unlink(roots_, node);
  nodes_.erase(it);
}

void SienaMatcher::match(const Event& e, std::vector<SubId>& out) const {
  std::unordered_set<const Node*> visited;
  std::deque<Node*> frontier(roots_.begin(), roots_.end());
  while (!frontier.empty()) {
    Node* n = frontier.front();
    frontier.pop_front();
    if (!visited.insert(n).second) continue;
    if (!n->filter.matches(e)) continue;  // prune: descendants are stricter
    out.push_back(n->id);
    for (Node* c : n->children) frontier.push_back(c);
  }
}

bool SienaMatcher::check_invariants() const {
  // Edge soundness + parent/child symmetry.
  for (const auto& [id, node] : nodes_) {
    for (Node* c : node->children) {
      if (!covers(node->filter, c->filter)) return false;
      if (std::find(c->parents.begin(), c->parents.end(), node.get()) ==
          c->parents.end()) {
        return false;
      }
    }
    for (Node* p : node->parents) {
      if (std::find(p->children.begin(), p->children.end(), node.get()) ==
          p->children.end()) {
        return false;
      }
    }
    bool is_root =
        std::find(roots_.begin(), roots_.end(), node.get()) != roots_.end();
    if (node->parents.empty() != is_root) return false;
  }
  // Reachability: every node visited from the roots.
  std::unordered_set<const Node*> visited;
  std::deque<const Node*> frontier(roots_.begin(), roots_.end());
  std::size_t steps = 0;
  const std::size_t limit = nodes_.size() * nodes_.size() + 16;
  while (!frontier.empty()) {
    const Node* n = frontier.front();
    frontier.pop_front();
    if (++steps > limit) return false;  // cycle guard
    if (!visited.insert(n).second) continue;
    for (const Node* c : n->children) frontier.push_back(c);
  }
  return visited.size() == nodes_.size();
}

}  // namespace amuse
