#include "typed/event_type.hpp"

namespace amuse {

std::vector<FieldSpec> EventType::all_fields() const {
  std::vector<FieldSpec> out;
  // Parents first so subtype fields appear after inherited ones.
  if (parent_) out = parent_->all_fields();
  out.insert(out.end(), fields_.begin(), fields_.end());
  return out;
}

bool EventType::is_a(const EventType& ancestor) const {
  for (const EventType* t = this; t != nullptr; t = t->parent_) {
    if (t == &ancestor) return true;
  }
  return false;
}

const EventType& TypeRegistry::declare(const std::string& name,
                                       std::vector<FieldSpec> fields) {
  return declare_impl(name, nullptr, std::move(fields));
}

const EventType& TypeRegistry::declare(const std::string& name,
                                       const std::string& parent,
                                       std::vector<FieldSpec> fields) {
  const EventType* p = find(parent);
  if (!p) throw TypeError("unknown parent type '" + parent + "'");
  return declare_impl(name, p, std::move(fields));
}

const EventType& TypeRegistry::declare_impl(const std::string& name,
                                            const EventType* parent,
                                            std::vector<FieldSpec> fields) {
  if (types_.contains(name)) {
    throw TypeError("type '" + name + "' already declared");
  }
  // A subtype may not redeclare an inherited field with a different type.
  if (parent) {
    for (const FieldSpec& inherited : parent->all_fields()) {
      for (const FieldSpec& f : fields) {
        if (f.name == inherited.name && f.type != inherited.type) {
          throw TypeError("type '" + name + "' redefines field '" + f.name +
                          "' with a different type");
        }
      }
    }
  }
  auto [it, inserted] =
      types_.emplace(name, EventType(name, parent, std::move(fields)));
  return it->second;
}

const EventType* TypeRegistry::find(const std::string& name) const {
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

bool TypeRegistry::is_subtype(const std::string& name,
                              const std::string& ancestor) const {
  const EventType* t = find(name);
  const EventType* a = find(ancestor);
  return t && a && t->is_a(*a);
}

std::vector<const EventType*> TypeRegistry::subtree(
    const std::string& ancestor) const {
  std::vector<const EventType*> out;
  const EventType* a = find(ancestor);
  if (!a) return out;
  for (const auto& [name, type] : types_) {
    if (type.is_a(*a)) out.push_back(&type);
  }
  return out;
}

std::optional<std::string> TypeRegistry::validate(const Event& e) const {
  std::string type_name(e.type());
  if (type_name.empty()) return "event has no type attribute";
  const EventType* t = find(type_name);
  if (!t) return "unknown event type '" + type_name + "'";
  for (const FieldSpec& f : t->all_fields()) {
    const Value* v = e.get(f.name);
    if (!v) {
      if (f.required) {
        return "missing required field '" + f.name + "' of type '" +
               type_name + "'";
      }
      continue;
    }
    // Numeric family unified: an int where a double is declared (or vice
    // versa) is fine — devices send what their ADCs produce.
    bool ok = v->type() == f.type ||
              (v->is_numeric() && (f.type == ValueType::kInt ||
                                   f.type == ValueType::kDouble));
    if (!ok) {
      return "field '" + f.name + "' of '" + type_name + "' is " +
             std::string(to_string(v->type())) + ", declared " +
             std::string(to_string(f.type));
    }
  }
  return std::nullopt;
}

std::vector<Filter> TypeRegistry::subscription_filters(
    const std::string& ancestor, const Filter& refinement) const {
  std::vector<Filter> out;
  for (const EventType* t : subtree(ancestor)) {
    Filter f = Filter::for_type(t->name());
    for (const Constraint& c : refinement.constraints()) {
      f.where(c.attribute, c.op, c.value);
    }
    out.push_back(std::move(f));
  }
  return out;
}

void declare_ehealth_types(TypeRegistry& registry) {
  registry.declare("vitals", {{"member", ValueType::kInt, true},
                              {"unit", ValueType::kString, false},
                              {"alarm", ValueType::kBool, false}});
  registry.declare("vitals.heartrate", "vitals",
                   {{"hr", ValueType::kDouble, true}});
  registry.declare("vitals.spo2", "vitals",
                   {{"spo2", ValueType::kDouble, true}});
  registry.declare("vitals.temperature", "vitals",
                   {{"temp_c", ValueType::kDouble, true}});
  registry.declare("vitals.bloodpressure", "vitals",
                   {{"systolic", ValueType::kDouble, true},
                    {"diastolic", ValueType::kDouble, true}});

  registry.declare("alarm", {{"level", ValueType::kString, true}});
  registry.declare("alarm.cardiac", "alarm",
                   {{"hr", ValueType::kDouble, false}});
  registry.declare("alarm.desaturation", "alarm",
                   {{"spo2", ValueType::kDouble, false}});
  registry.declare("alarm.fever", "alarm",
                   {{"temp_c", ValueType::kDouble, false}});

  registry.declare("actuator", {{"member", ValueType::kInt, false}});
  registry.declare("actuator.defib.fire", "actuator",
                   {{"joules", ValueType::kDouble, true}});
  registry.declare("actuator.insulin.dose", "actuator",
                   {{"units", ValueType::kDouble, true}});

  registry.declare("smc.member", {{"member", ValueType::kInt, true},
                                  {"device_type", ValueType::kString, true},
                                  {"role", ValueType::kString, false}});
  registry.declare("smc.member.new", "smc.member", {});
  registry.declare("smc.member.purge", "smc.member",
                   {{"reason", ValueType::kString, false}});
  registry.declare("smc.member.suspect", "smc.member", {});
  registry.declare("smc.member.recovered", "smc.member", {});
}

}  // namespace amuse
