// TypedClient: the type-based programming model over a BusClient.
//
// Publishing validates the event against its declared schema before it
// touches the radio; subscribing by type name covers the whole declared
// subtree (one underlying content filter per concrete type), optionally
// refined with content constraints — the best of both models, as the TBPS
// paper argues.
#pragma once

#include <map>

#include "bus/bus_client.hpp"
#include "typed/event_type.hpp"

namespace amuse {

class TypedClient {
 public:
  using Handler = BusClient::Handler;

  /// Both references must outlive the TypedClient. The registry should be
  /// fully populated before subscriptions are made: types declared later
  /// are not retroactively covered (call resubscribe_all() after late
  /// declarations).
  TypedClient(BusClient& client, const TypeRegistry& registry)
      : client_(client), registry_(registry) {}

  /// Validates against the schema; returns false (with the reason
  /// retrievable via last_error()) without publishing when invalid.
  bool publish(Event event);

  /// Subscribes to `type_name` and its declared subtypes; `refinement`
  /// constraints are AND-ed into every generated filter. Returns 0 when
  /// the type is unknown.
  std::uint64_t subscribe(const std::string& type_name, Handler handler,
                          const Filter& refinement = {});
  void unsubscribe(std::uint64_t id);

  /// Re-issues every typed subscription (after late type declarations).
  void resubscribe_all();

  [[nodiscard]] const std::string& last_error() const { return last_error_; }

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t schema_rejections = 0;
    std::uint64_t subscriptions = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct TypedSub {
    std::string type_name;
    Filter refinement;
    Handler handler;
    std::vector<std::uint64_t> client_ids;  // underlying BusClient subs
  };

  BusClient& client_;
  const TypeRegistry& registry_;
  std::map<std::uint64_t, TypedSub> subs_;
  std::uint64_t next_id_ = 1;
  std::string last_error_;
  Stats stats_;
};

}  // namespace amuse
