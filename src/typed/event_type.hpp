// Type-based publish/subscribe (§VI future work).
//
// "We also intend to replace the content-based publish/subscribe mechanism
//  with a type-based publish/subscribe mechanism, to remove the reliance on
//  arbitrary tags as event identifiers." (after Eugster, Guerraoui &
//  Sventek, "Type-Based Publish/Subscribe").
//
// An EventType declares a named schema — typed, required/optional fields —
// and may extend a parent type (single inheritance, fields inherited).
// The TypeRegistry owns the hierarchy and provides:
//   - schema validation of outgoing events (no more mistyped ad-hoc tags);
//   - the subtype relation, so a subscription to "vitals" receives
//     "vitals.heartrate" events by *declared* subtyping, not by string
//     prefix conventions.
// The layer compiles down to the existing content-based machinery: one
// equality filter per concrete type in the subscribed subtree.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pubsub/event.hpp"
#include "pubsub/filter.hpp"

namespace amuse {

struct FieldSpec {
  std::string name;
  ValueType type = ValueType::kInt;
  bool required = true;
};

class EventType {
 public:
  EventType(std::string name, const EventType* parent,
            std::vector<FieldSpec> fields)
      : name_(std::move(name)), parent_(parent), fields_(std::move(fields)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Null for root types.
  [[nodiscard]] const EventType* parent() const { return parent_; }
  /// Own fields only; all_fields() includes inherited ones.
  [[nodiscard]] const std::vector<FieldSpec>& own_fields() const {
    return fields_;
  }
  [[nodiscard]] std::vector<FieldSpec> all_fields() const;

  /// True when `this` is `ancestor` or a (transitive) subtype of it.
  [[nodiscard]] bool is_a(const EventType& ancestor) const;

 private:
  std::string name_;
  const EventType* parent_;
  std::vector<FieldSpec> fields_;
};

/// Thrown on bad declarations (duplicate name, unknown parent, field
/// redefinition with a different type).
class TypeError : public std::runtime_error {
 public:
  explicit TypeError(const std::string& what) : std::runtime_error(what) {}
};

class TypeRegistry {
 public:
  /// Declares a root type.
  const EventType& declare(const std::string& name,
                           std::vector<FieldSpec> fields);
  /// Declares a subtype of `parent` (which must already be declared).
  const EventType& declare(const std::string& name, const std::string& parent,
                           std::vector<FieldSpec> fields);

  [[nodiscard]] const EventType* find(const std::string& name) const;
  [[nodiscard]] bool is_subtype(const std::string& name,
                                const std::string& ancestor) const;
  /// `ancestor` itself plus all its declared descendants.
  [[nodiscard]] std::vector<const EventType*> subtree(
      const std::string& ancestor) const;

  /// Checks an event against its declared type's schema (the event's
  /// "type" attribute selects the schema). Returns an error description or
  /// nullopt when valid. Unknown types are invalid — that is the point of
  /// removing arbitrary tags.
  [[nodiscard]] std::optional<std::string> validate(const Event& e) const;

  /// One equality filter per concrete type in `ancestor`'s subtree, each
  /// AND-ed with `refinement`'s constraints. Subscribing all of them
  /// realises type-based subscription on the content-based bus.
  [[nodiscard]] std::vector<Filter> subscription_filters(
      const std::string& ancestor, const Filter& refinement = {}) const;

  [[nodiscard]] std::size_t size() const { return types_.size(); }

 private:
  const EventType& declare_impl(const std::string& name,
                                const EventType* parent,
                                std::vector<FieldSpec> fields);

  // Stable addresses: parent pointers reference into this map's nodes.
  std::map<std::string, EventType> types_;
};

/// Declares the reproduction's e-health vocabulary: vitals (heartrate,
/// spo2, temperature, bloodpressure), alarms (cardiac, desaturation,
/// fever), actuator commands and SMC membership events.
void declare_ehealth_types(TypeRegistry& registry);

}  // namespace amuse
