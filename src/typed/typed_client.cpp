#include "typed/typed_client.hpp"

namespace amuse {

bool TypedClient::publish(Event event) {
  if (std::optional<std::string> error = registry_.validate(event)) {
    last_error_ = *error;
    ++stats_.schema_rejections;
    return false;
  }
  ++stats_.published;
  return client_.publish(std::move(event));
}

std::uint64_t TypedClient::subscribe(const std::string& type_name,
                                     Handler handler,
                                     const Filter& refinement) {
  if (!registry_.find(type_name)) {
    last_error_ = "unknown event type '" + type_name + "'";
    return 0;
  }
  TypedSub sub{type_name, refinement, std::move(handler), {}};
  // One content filter per concrete type in the subtree. An event's type
  // attribute equals exactly one concrete type name, so exactly one of
  // these filters can match any given event — no double delivery.
  for (const Filter& f :
       registry_.subscription_filters(type_name, refinement)) {
    sub.client_ids.push_back(client_.subscribe(f, sub.handler));
  }
  ++stats_.subscriptions;
  std::uint64_t id = next_id_++;
  subs_.emplace(id, std::move(sub));
  return id;
}

void TypedClient::unsubscribe(std::uint64_t id) {
  auto it = subs_.find(id);
  if (it == subs_.end()) return;
  for (std::uint64_t cid : it->second.client_ids) {
    client_.unsubscribe(cid);
  }
  subs_.erase(it);
}

void TypedClient::resubscribe_all() {
  for (auto& [id, sub] : subs_) {
    for (std::uint64_t cid : sub.client_ids) client_.unsubscribe(cid);
    sub.client_ids.clear();
    for (const Filter& f :
         registry_.subscription_filters(sub.type_name, sub.refinement)) {
      sub.client_ids.push_back(client_.subscribe(f, sub.handler));
    }
  }
}

}  // namespace amuse
