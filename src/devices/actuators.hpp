// Actuator devices (§I: "actuator devices such as heart defibrillators,
// insulin and other drug pumps are being developed that could be triggered
// by these events").
//
// Both are RawDevices with no periodic readings; they execute commands
// pushed through their proxies and emit a status reading after each
// activation so the cell can observe the effect.
//
//   defibrillator command: u16 joules        → "actuator.defib.status"
//   insulin pump command:  u16 units×100     → "actuator.insulin.status"
#pragma once

#include <vector>

#include "devices/device.hpp"
#include "proxy/bootstrap.hpp"
#include "proxy/device_codec.hpp"
#include "proxy/translating_proxy.hpp"

namespace amuse {

class DefibrillatorDevice final : public RawDevice {
 public:
  DefibrillatorDevice(Executor& executor, std::shared_ptr<Transport> transport,
                      RawDeviceConfig config);

  struct Activation {
    TimePoint when;
    double joules;
  };
  [[nodiscard]] const std::vector<Activation>& activations() const {
    return activations_;
  }

 protected:
  std::optional<Bytes> next_reading() override { return std::nullopt; }
  void on_command(BytesView payload) override;

 private:
  std::vector<Activation> activations_;
};

class InsulinPumpDevice final : public RawDevice {
 public:
  InsulinPumpDevice(Executor& executor, std::shared_ptr<Transport> transport,
                    RawDeviceConfig config, double reservoir_units = 300.0);

  struct Dose {
    TimePoint when;
    double units;
  };
  [[nodiscard]] const std::vector<Dose>& doses() const { return doses_; }
  [[nodiscard]] double reservoir() const { return reservoir_; }

 protected:
  std::optional<Bytes> next_reading() override { return std::nullopt; }
  void on_command(BytesView payload) override;

 private:
  std::vector<Dose> doses_;
  double reservoir_;
};

/// Codec: subscribes to "actuator.defib.fire", translates {joules} into the
/// command payload, and decodes the status reading back into
/// "actuator.defib.status".
class DefibrillatorCodec final : public DeviceCodec {
 public:
  explicit DefibrillatorCodec(ServiceId member) : member_(member) {}
  std::optional<Event> decode_reading(BytesView payload) override;
  std::optional<Bytes> encode_command(const Event& event) override;
  std::vector<Filter> initial_subscriptions() override;

 private:
  ServiceId member_;
};

/// Codec for "actuator.insulin.dose" {units} / "actuator.insulin.status".
class InsulinPumpCodec final : public DeviceCodec {
 public:
  explicit InsulinPumpCodec(ServiceId member) : member_(member) {}
  std::optional<Event> decode_reading(BytesView payload) override;
  std::optional<Bytes> encode_command(const Event& event) override;
  std::vector<Filter> initial_subscriptions() override;

 private:
  ServiceId member_;
};

/// Registers translating proxies for "actuator.defibrillator" and
/// "actuator.insulinpump" device types.
void register_actuator_proxies(ProxyFactory& factory);

[[nodiscard]] RawDeviceConfig actuator_device_config(
    const std::string& device_type, const std::string& cell_name,
    const Bytes& psk);

}  // namespace amuse
