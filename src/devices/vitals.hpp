// Synthetic patient vital-sign model.
//
// Drives the simulated body-area sensors with physiologically plausible
// (not clinically accurate) signals: baseline values with slow drift,
// sample noise, and Markov-switched cardiac episodes (tachycardia) that
// exercise the alarm pathway — the "possible heart attack for a specific
// patient being monitored" workload of §I.
#pragma once

#include "common/rng.hpp"
#include "sim/time.hpp"

namespace amuse {

struct VitalsProfile {
  double heart_rate_base = 72.0;   // bpm
  double heart_rate_noise = 2.0;
  double spo2_base = 97.5;         // %
  double spo2_noise = 0.4;
  double temp_base = 36.8;         // °C
  double temp_noise = 0.05;
  double systolic_base = 121.0;    // mmHg
  double diastolic_base = 79.0;
  double bp_noise = 2.5;
  /// Per-step probability of a cardiac episode starting / ending.
  double episode_start_p = 0.002;
  double episode_end_p = 0.05;
  /// Heart-rate elevation during an episode.
  double episode_hr_boost = 85.0;
  double episode_spo2_drop = 6.0;
};

struct VitalsSample {
  double heart_rate = 0;
  double spo2 = 0;
  double temperature = 0;
  double systolic = 0;
  double diastolic = 0;
  bool in_episode = false;
};

class VitalsModel {
 public:
  VitalsModel(std::uint64_t seed, VitalsProfile profile = {})
      : rng_(seed, /*stream=*/0x71745), profile_(profile) {}

  /// Advances the model by one sampling step and returns the new sample.
  VitalsSample step();

  /// Forces an episode to start (for deterministic scenario scripts).
  void trigger_episode() { in_episode_ = true; }
  void end_episode() { in_episode_ = false; }
  [[nodiscard]] bool in_episode() const { return in_episode_; }

 private:
  Rng rng_;
  VitalsProfile profile_;
  bool in_episode_ = false;
  double drift_ = 0.0;  // slow baseline wander, shared across vitals
};

}  // namespace amuse
