#include "devices/ecg_stream.hpp"

#include <cmath>
#include <numbers>

namespace amuse {

EcgStreamer::EcgStreamer(Executor& executor,
                         std::shared_ptr<Transport> transport,
                         ServiceId viewer, EcgStreamConfig config)
    : executor_(executor),
      transport_(std::move(transport)),
      viewer_(viewer),
      config_(config) {}

EcgStreamer::~EcgStreamer() { executor_.cancel(timer_); }

void EcgStreamer::start() {
  if (running_) return;
  running_ = true;
  send_batch();
}

void EcgStreamer::stop() {
  running_ = false;
  executor_.cancel(timer_);
  timer_ = kNoTimer;
}

void EcgStreamer::send_batch() {
  if (!running_) return;
  Writer w;
  w.u16(0xEC61);  // ECG frame magic: broadcasts from other protocols also
                  // reach this endpoint and must be distinguishable
  w.u32(seq_++);
  w.u16(static_cast<std::uint16_t>(config_.samples_per_packet));
  double beat_hz = config_.bpm / 60.0;
  for (std::size_t i = 0; i < config_.samples_per_packet; ++i) {
    phase_ += beat_hz / config_.sample_rate_hz;
    if (phase_ >= 1.0) phase_ -= 1.0;
    // Crude PQRST-ish shape: a narrow spike on top of a sine baseline.
    double baseline = 0.1 * std::sin(2.0 * std::numbers::pi * phase_);
    double spike =
        phase_ < 0.04 ? std::exp(-std::pow((phase_ - 0.02) / 0.008, 2)) : 0.0;
    double mv = baseline + 1.1 * spike + rng_.normal(0.0, 0.01);
    w.u16(static_cast<std::uint16_t>(
        std::lround(std::clamp(mv, -2.0, 2.0) * 1000.0) + 16384));
  }
  transport_->send(viewer_, w.bytes());

  Duration interval = from_seconds(
      static_cast<double>(config_.samples_per_packet) / config_.sample_rate_hz);
  timer_ = executor_.schedule_after(interval, [this] {
    timer_ = kNoTimer;
    send_batch();
  });
}

EcgViewer::EcgViewer(std::shared_ptr<Transport> transport)
    : transport_(std::move(transport)) {
  transport_->set_receive_handler([this](ServiceId, BytesView data) {
    try {
      Reader r(data);
      if (r.u16() != 0xEC61) return;  // not an ECG frame
      std::uint32_t seq = r.u32();
      std::uint16_t n = r.u16();
      if (first_) {
        first_ = false;
        expected_seq_ = seq;
      }
      if (seq < expected_seq_) {
        ++stats_.out_of_order;
        return;
      }
      stats_.lost_packets += seq - expected_seq_;
      expected_seq_ = seq + 1;
      ++stats_.packets;
      stats_.samples += n;
      double last = 0.0;
      for (std::uint16_t i = 0; i < n; ++i) {
        last = (static_cast<double>(r.u16()) - 16384.0) / 1000.0;
      }
      stats_.last_sample = last;
    } catch (const DecodeError&) {
      // Not an ECG packet; ignore.
    }
  });
}

EcgViewer::~EcgViewer() { transport_->set_receive_handler(nullptr); }

}  // namespace amuse
