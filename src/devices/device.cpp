#include "devices/device.hpp"

#include "common/log.hpp"

namespace amuse {
namespace {
const Logger kLog("device");
}

RawDevice::RawDevice(Executor& executor, std::shared_ptr<Transport> transport,
                     RawDeviceConfig config)
    : executor_(executor),
      transport_(std::move(transport)),
      config_(std::move(config)),
      rto_(config_.ack_timeout) {
  DiscoveryAgentConfig ac = config_.agent;
  ac.install_receive_handler = false;
  agent_ = std::make_unique<DiscoveryAgent>(executor_, transport_, ac);
  agent_->set_on_joined([this](ServiceId, std::uint32_t) {
    if (config_.reading_interval > Duration{} &&
        reading_timer_ == kNoTimer) {
      reading_timer_ = executor_.schedule_after(
          config_.reading_interval, [this] {
            reading_timer_ = kNoTimer;
            reading_tick();
          });
    }
  });
  agent_->set_on_left([this] {
    executor_.cancel(reading_timer_);
    executor_.cancel(ack_timer_);
    reading_timer_ = ack_timer_ = kNoTimer;
    pending_.reset();
  });

  transport_->set_receive_handler([this](ServiceId src, BytesView data) {
    on_datagram(src, data);
  });
}

RawDevice::~RawDevice() {
  executor_.cancel(reading_timer_);
  executor_.cancel(ack_timer_);
  transport_->set_receive_handler(nullptr);
}

void RawDevice::start() { agent_->start(); }

void RawDevice::leave() { agent_->leave(); }

void RawDevice::reading_tick() {
  if (!agent_->joined()) return;
  std::optional<Bytes> payload = next_reading();
  if (payload) send_reading(std::move(*payload));
  reading_timer_ =
      executor_.schedule_after(config_.reading_interval, [this] {
        reading_timer_ = kNoTimer;
        reading_tick();
      });
}

void RawDevice::emit_reading(Bytes payload) {
  if (agent_->joined()) send_reading(std::move(payload));
}

void RawDevice::send_reading(Bytes payload) {
  DeviceFrame f;
  f.type = DeviceFrameType::kReading;
  f.seq = next_seq_++;
  f.payload = std::move(payload);

  if (config_.readings_need_ack) {
    if (pending_) {
      // Still waiting on the previous reading; the new one supersedes it
      // (fresh vital signs beat stale ones on a constrained link).
      ++stats_.readings_dropped;
    }
    pending_ = f;
    retries_ = 0;
    rto_ = config_.ack_timeout;
    executor_.cancel(ack_timer_);
    ack_timer_ = kNoTimer;
    transmit_pending();
    arm_ack_timer();
  } else {
    ++stats_.readings_sent;
    transport_->send(agent_->bus_id(), f.encode());
  }
}

void RawDevice::transmit_pending() {
  if (!pending_) return;
  ++stats_.readings_sent;
  transport_->send(agent_->bus_id(), pending_->encode());
}

void RawDevice::arm_ack_timer() {
  if (ack_timer_ != kNoTimer || !pending_) return;
  ack_timer_ = executor_.schedule_after(rto_, [this] {
    ack_timer_ = kNoTimer;
    if (!pending_) return;
    if (retries_ >= config_.max_retries) {
      ++stats_.readings_dropped;
      pending_.reset();
      return;
    }
    ++retries_;
    ++stats_.reading_retransmits;
    rto_ = Duration(static_cast<std::int64_t>(
        static_cast<double>(rto_.count()) * config_.ack_backoff));
    transmit_pending();
    arm_ack_timer();
  });
}

void RawDevice::on_datagram(ServiceId src, BytesView data) {
  // Device frames only ever come from the bus endpoint (our proxy).
  if (agent_->joined() && src == agent_->bus_id()) {
    std::optional<DeviceFrame> frame = DeviceFrame::decode(data);
    if (frame) {
      switch (frame->type) {
        case DeviceFrameType::kAck:
          if (pending_ && frame->seq == pending_->seq) {
            ++stats_.readings_acked;
            pending_.reset();
            executor_.cancel(ack_timer_);
            ack_timer_ = kNoTimer;
            retries_ = 0;
            rto_ = config_.ack_timeout;
          }
          return;
        case DeviceFrameType::kCommand: {
          // Always ack; dedup before executing.
          DeviceFrame ack;
          ack.type = DeviceFrameType::kAck;
          ack.seq = frame->seq;
          transport_->send(src, ack.encode());
          if (seen_cmd_ && !seq16_newer(frame->seq, last_cmd_seq_)) return;
          seen_cmd_ = true;
          last_cmd_seq_ = frame->seq;
          ++stats_.commands_received;
          on_command(frame->payload);
          return;
        }
        case DeviceFrameType::kReading:
          return;  // proxies do not send readings
      }
    }
  }
  // Everything else is discovery traffic.
  agent_->handle_datagram(src, data);
}

}  // namespace amuse
