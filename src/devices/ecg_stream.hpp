// ECG streaming outside the event bus.
//
// "We do not consider that all communication within an SMC is routed via
//  the event bus. We assume there may be … monitored data, such as from a
//  heart ECG monitor that could be sent to a remote station for viewing
//  and analysis." (§I)
//
// EcgStreamer pushes fixed-rate sample batches straight over the transport
// (unreliable, no acks — freshness beats completeness for a live trace);
// EcgViewer reassembles the stream and tracks loss and inter-arrival
// jitter, demonstrating why this traffic must NOT occupy the management
// bus.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/executor.hpp"

namespace amuse {

struct EcgStreamConfig {
  /// Sample rate of the synthetic ECG waveform.
  double sample_rate_hz = 250.0;
  /// Samples batched per datagram.
  std::size_t samples_per_packet = 50;
  /// Beats per minute of the synthetic waveform.
  double bpm = 72.0;
};

class EcgStreamer {
 public:
  EcgStreamer(Executor& executor, std::shared_ptr<Transport> transport,
              ServiceId viewer, EcgStreamConfig config = {});
  ~EcgStreamer();

  void start();
  void stop();

  [[nodiscard]] std::uint32_t packets_sent() const { return seq_; }

 private:
  void send_batch();

  Executor& executor_;
  std::shared_ptr<Transport> transport_;
  ServiceId viewer_;
  EcgStreamConfig config_;
  Rng rng_{0xec9, 7};
  std::uint32_t seq_ = 0;
  double phase_ = 0.0;
  TimerId timer_ = kNoTimer;
  bool running_ = false;
};

class EcgViewer {
 public:
  explicit EcgViewer(std::shared_ptr<Transport> transport);
  ~EcgViewer();

  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t samples = 0;
    std::uint64_t lost_packets = 0;
    std::uint64_t out_of_order = 0;
    double last_sample = 0.0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::shared_ptr<Transport> transport_;
  std::uint32_t expected_seq_ = 0;
  bool first_ = true;
  Stats stats_;
};

}  // namespace amuse
