// NurseConsole: the carer-facing SMC member (a PDA application).
//
// A wire-protocol member (SmcMember) that subscribes to the patient's
// vitals, all alarms and the cell's membership events, keeping a live
// status board and an alarm log — the "warning to the patient or medical
// staff" consumer of §I.
#pragma once

#include <map>
#include <vector>

#include "smc/member.hpp"

namespace amuse {

class NurseConsole {
 public:
  NurseConsole(Executor& executor, std::shared_ptr<Transport> transport,
               const std::string& cell_name, const Bytes& psk);

  void start() { member_.start(); }
  void leave() { member_.leave(); }

  [[nodiscard]] SmcMember& member() { return member_; }
  [[nodiscard]] bool joined() const { return member_.joined(); }

  struct AlarmEntry {
    TimePoint when;
    std::string type;
    std::string detail;
  };

  /// Latest value per vitals event type (e.g. "vitals.heartrate" → 71.8).
  [[nodiscard]] const std::map<std::string, double>& latest_vitals() const {
    return latest_;
  }
  [[nodiscard]] const std::vector<AlarmEntry>& alarms() const {
    return alarms_;
  }
  [[nodiscard]] std::size_t members_seen() const { return members_seen_; }
  [[nodiscard]] std::size_t vitals_received() const {
    return vitals_received_;
  }

 private:
  void setup_subscriptions(Executor& executor);

  SmcMember member_;
  std::map<std::string, double> latest_;
  std::vector<AlarmEntry> alarms_;
  std::size_t members_seen_ = 0;
  std::size_t vitals_received_ = 0;
};

}  // namespace amuse
