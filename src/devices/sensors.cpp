#include "devices/sensors.hpp"

#include <cmath>
#include <string_view>

namespace amuse {

PatientBody::PatientBody(Executor& executor, std::uint64_t seed,
                         VitalsProfile profile, Duration step_interval)
    : executor_(executor), model_(seed, profile), interval_(step_interval) {
  current_ = model_.step();
  timer_ = executor_.schedule_after(interval_, [this] { tick(); });
}

PatientBody::~PatientBody() { executor_.cancel(timer_); }

void PatientBody::tick() {
  current_ = model_.step();
  timer_ = executor_.schedule_after(interval_, [this] { tick(); });
}

const VitalKindInfo& vital_kind_info(VitalKind kind) {
  static constexpr VitalKindInfo kInfos[] = {
      {"sensor.heartrate", "vitals.heartrate", "hr", "bpm", 120.0, 40.0},
      {"sensor.spo2", "vitals.spo2", "spo2", "percent", 100.0, 92.0},
      {"sensor.temperature", "vitals.temperature", "temp_c", "celsius", 38.2,
       35.0},
      {"sensor.bloodpressure", "vitals.bloodpressure", "systolic", "mmHg",
       150.0, 90.0},
  };
  return kInfos[static_cast<int>(kind)];
}

namespace {

double sample_value(const VitalsSample& s, VitalKind kind) {
  switch (kind) {
    case VitalKind::kHeartRate: return s.heart_rate;
    case VitalKind::kSpO2: return s.spo2;
    case VitalKind::kTemperature: return s.temperature;
    case VitalKind::kBloodPressure: return s.systolic;
  }
  return 0.0;
}

std::uint16_t scale10(double v) {
  double scaled = std::max(0.0, std::min(6553.0, v));
  return static_cast<std::uint16_t>(std::lround(scaled * 10.0));
}

}  // namespace

VitalSensor::VitalSensor(Executor& executor,
                         std::shared_ptr<Transport> transport,
                         std::shared_ptr<PatientBody> body, VitalKind kind,
                         RawDeviceConfig config)
    : RawDevice(executor, std::move(transport), std::move(config)),
      body_(std::move(body)),
      kind_(kind),
      threshold_hi_(vital_kind_info(kind).default_hi),
      threshold_lo_(vital_kind_info(kind).default_lo) {}

std::optional<Bytes> VitalSensor::next_reading() {
  const VitalsSample& s = body_->current();
  double value = sample_value(s, kind_);
  bool above = value > threshold_hi_ || value < threshold_lo_;

  Writer w;
  w.u16(scale10(value));
  if (kind_ == VitalKind::kBloodPressure) w.u16(scale10(s.diastolic));
  w.u8(above ? 0x01 : 0x00);
  return std::move(w).take();
}

void VitalSensor::on_command(BytesView payload) {
  try {
    Reader r(payload);
    std::uint8_t cmd = r.u8();
    switch (cmd) {
      case 1:
        threshold_hi_ = static_cast<double>(r.u16()) / 10.0;
        break;
      case 2:
        threshold_lo_ = static_cast<double>(r.u16()) / 10.0;
        break;
      case 3:
        // Monitoring-strategy change: new reading interval in ms. The
        // periodic loop picks it up on its next tick via config mutation
        // is not exposed; devices this simple just ignore (documented
        // limitation exercised in tests via thresholds instead).
        (void)r.u32();
        break;
      default:
        break;
    }
  } catch (const DecodeError&) {
    // Malformed command: a real sensor would blink an LED; we drop it.
  }
}

VitalCodec::VitalCodec(VitalKind kind, ServiceId member)
    : kind_(kind), member_(member) {}

std::optional<Event> VitalCodec::decode_reading(BytesView payload) {
  const VitalKindInfo& info = vital_kind_info(kind_);
  try {
    Reader r(payload);
    double value = static_cast<double>(r.u16()) / 10.0;
    double dia = 0.0;
    if (kind_ == VitalKind::kBloodPressure) {
      dia = static_cast<double>(r.u16()) / 10.0;
    }
    std::uint8_t flags = r.u8();
    Event e(info.event_type);
    e.set(info.attr, value);
    if (kind_ == VitalKind::kBloodPressure) e.set("diastolic", dia);
    e.set("unit", info.unit);
    e.set("alarm", (flags & 0x01) != 0);
    e.set("member", static_cast<std::int64_t>(member_.raw()));
    return e;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::optional<Bytes> VitalCodec::encode_command(const Event& event) {
  // Only commands addressed to this member translate to device bytes.
  if (event.get_int("member") != static_cast<std::int64_t>(member_.raw())) {
    return std::nullopt;
  }
  std::string_view type = event.type();
  Writer w;
  if (type == "control.threshold") {
    bool low = event.get_string("bound") == "low";
    w.u8(low ? 2 : 1);
    w.u16(scale10(event.get_double("value")));
    return std::move(w).take();
  }
  if (type == "control.interval") {
    w.u8(3);
    w.u32(static_cast<std::uint32_t>(event.get_int("ms", 1000)));
    return std::move(w).take();
  }
  return std::nullopt;
}

std::vector<Filter> VitalCodec::initial_subscriptions() {
  std::int64_t me = static_cast<std::int64_t>(member_.raw());
  Filter threshold;
  threshold.where("type", Op::kEq, "control.threshold")
      .where("member", Op::kEq, me);
  Filter interval;
  interval.where("type", Op::kEq, "control.interval")
      .where("member", Op::kEq, me);
  return {threshold, interval};
}

void register_vital_sensor_proxies(ProxyFactory& factory) {
  for (VitalKind kind :
       {VitalKind::kHeartRate, VitalKind::kSpO2, VitalKind::kTemperature,
        VitalKind::kBloodPressure}) {
    factory.register_type(
        vital_kind_info(kind).device_type,
        [kind](BusPort& bus, const MemberInfo& info) {
          return std::make_unique<TranslatingProxy>(
              bus, info, std::make_unique<VitalCodec>(kind, info.id));
        });
  }
}

RawDeviceConfig sensor_device_config(VitalKind kind,
                                     const std::string& cell_name,
                                     const Bytes& psk,
                                     Duration reading_interval) {
  RawDeviceConfig cfg;
  cfg.agent.cell_name = cell_name;
  cfg.agent.pre_shared_key = psk;
  cfg.agent.device_type = vital_kind_info(kind).device_type;
  cfg.agent.role = "sensor";
  cfg.reading_interval = reading_interval;
  cfg.readings_need_ack = kind != VitalKind::kTemperature;
  return cfg;
}

}  // namespace amuse
