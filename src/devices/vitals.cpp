#include "devices/vitals.hpp"

#include <algorithm>

namespace amuse {

VitalsSample VitalsModel::step() {
  // Markov episode switching.
  if (in_episode_) {
    if (rng_.chance(profile_.episode_end_p)) in_episode_ = false;
  } else {
    if (rng_.chance(profile_.episode_start_p)) in_episode_ = true;
  }
  // Slow AR(1) baseline wander.
  drift_ = 0.995 * drift_ + rng_.normal(0.0, 0.05);
  double drift = std::clamp(drift_, -3.0, 3.0);

  VitalsSample s;
  s.in_episode = in_episode_;
  double boost = in_episode_ ? profile_.episode_hr_boost : 0.0;
  s.heart_rate = profile_.heart_rate_base + drift +
                 rng_.normal(0.0, profile_.heart_rate_noise) + boost;
  double spo2_drop = in_episode_ ? profile_.episode_spo2_drop : 0.0;
  s.spo2 = std::min(100.0, profile_.spo2_base + drift * 0.1 +
                               rng_.normal(0.0, profile_.spo2_noise) -
                               spo2_drop);
  s.temperature =
      profile_.temp_base + drift * 0.02 + rng_.normal(0.0, profile_.temp_noise);
  s.systolic = profile_.systolic_base + drift +
               rng_.normal(0.0, profile_.bp_noise) + (in_episode_ ? 14.0 : 0.0);
  s.diastolic = profile_.diastolic_base + drift * 0.6 +
                rng_.normal(0.0, profile_.bp_noise) +
                (in_episode_ ? 8.0 : 0.0);
  return s;
}

}  // namespace amuse
