// RawDevice: base class for the very simple devices the SMC targets —
// sensors and actuators that cannot run the bus wire protocol and instead
// speak the tiny DeviceFrame protocol with their translating proxy
// (paper §III-B, §IV "building test sensors … allowing the proxies to
// translate/acknowledge data as required").
//
// A RawDevice owns one transport endpoint, joins the cell through a
// DiscoveryAgent, then periodically emits readings (optionally
// retransmitted until the proxy acknowledges) and executes commands pushed
// by its proxy.
#pragma once

#include <memory>
#include <optional>

#include "discovery/discovery_agent.hpp"
#include "proxy/device_protocol.hpp"

namespace amuse {

struct RawDeviceConfig {
  DiscoveryAgentConfig agent;
  /// Period between readings; zero disables the reading loop (actuators).
  Duration reading_interval = seconds(1);
  /// Whether this device wants its readings acknowledged by the proxy
  /// before it considers them delivered (retransmitting meanwhile).
  bool readings_need_ack = true;
  Duration ack_timeout = milliseconds(300);
  double ack_backoff = 2.0;
  int max_retries = 6;
};

class RawDevice {
 public:
  RawDevice(Executor& executor, std::shared_ptr<Transport> transport,
            RawDeviceConfig config);
  virtual ~RawDevice();

  RawDevice(const RawDevice&) = delete;
  RawDevice& operator=(const RawDevice&) = delete;

  /// Starts cell discovery; readings begin after the device has joined.
  void start();
  void leave();

  [[nodiscard]] bool joined() const { return agent_->joined(); }
  [[nodiscard]] ServiceId id() const { return transport_->local_id(); }
  [[nodiscard]] DiscoveryAgent& agent() { return *agent_; }

  struct Stats {
    std::uint64_t readings_sent = 0;
    std::uint64_t readings_acked = 0;
    std::uint64_t reading_retransmits = 0;
    std::uint64_t readings_dropped = 0;  // retries exhausted
    std::uint64_t commands_received = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  /// Produces the next reading payload; nullopt skips this cycle.
  [[nodiscard]] virtual std::optional<Bytes> next_reading() = 0;
  /// Executes a command from the proxy (already deduplicated and acked).
  virtual void on_command(BytesView payload) = 0;

  [[nodiscard]] Executor& executor() { return executor_; }
  /// Immediately emits one reading outside the periodic schedule (e.g. an
  /// actuator's status report after executing a command).
  void emit_reading(Bytes payload);

 private:
  void reading_tick();
  void send_reading(Bytes payload);
  void transmit_pending();
  void arm_ack_timer();
  void on_datagram(ServiceId src, BytesView data);

  Executor& executor_;
  std::shared_ptr<Transport> transport_;
  RawDeviceConfig config_;
  std::unique_ptr<DiscoveryAgent> agent_;

  std::uint16_t next_seq_ = 1;
  std::optional<DeviceFrame> pending_;  // awaiting ack (stop-and-wait)
  Duration rto_;
  int retries_ = 0;
  TimerId ack_timer_ = kNoTimer;
  TimerId reading_timer_ = kNoTimer;

  std::uint16_t last_cmd_seq_ = 0;
  bool seen_cmd_ = false;

  Stats stats_;
};

}  // namespace amuse
