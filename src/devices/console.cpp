#include "devices/console.hpp"

#include "devices/sensors.hpp"
#include "discovery/discovery_service.hpp"

namespace amuse {
namespace {

SmcMemberConfig console_config(const std::string& cell_name,
                               const Bytes& psk) {
  SmcMemberConfig cfg;
  cfg.agent.cell_name = cell_name;
  cfg.agent.pre_shared_key = psk;
  cfg.agent.device_type = "console.nurse";
  cfg.agent.role = "nurse";
  return cfg;
}

}  // namespace

NurseConsole::NurseConsole(Executor& executor,
                           std::shared_ptr<Transport> transport,
                           const std::string& cell_name, const Bytes& psk)
    : member_(executor, std::move(transport),
              console_config(cell_name, psk)) {
  setup_subscriptions(executor);
}

void NurseConsole::setup_subscriptions(Executor& executor) {
  member_.subscribe(Filter::for_type_prefix("vitals."),
                    [this](const Event& e) {
                      ++vitals_received_;
                      const VitalKindInfo* hit = nullptr;
                      for (VitalKind k :
                           {VitalKind::kHeartRate, VitalKind::kSpO2,
                            VitalKind::kTemperature,
                            VitalKind::kBloodPressure}) {
                        const VitalKindInfo& info = vital_kind_info(k);
                        if (e.type() == info.event_type) {
                          hit = &info;
                          break;
                        }
                      }
                      if (hit) {
                        latest_[std::string(e.type())] =
                            e.get_double(hit->attr);
                      }
                    });
  member_.subscribe(
      Filter::for_type_prefix("alarm."), [this, &executor](const Event& e) {
        alarms_.push_back(
            AlarmEntry{executor.now(), std::string(e.type()), e.to_string()});
      });
  member_.subscribe(Filter::for_type(smc_events::kNewMember),
                    [this](const Event&) { ++members_seen_; });
}

}  // namespace amuse
