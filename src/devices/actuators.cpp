#include "devices/actuators.hpp"

#include <cmath>

namespace amuse {

DefibrillatorDevice::DefibrillatorDevice(Executor& executor,
                                         std::shared_ptr<Transport> transport,
                                         RawDeviceConfig config)
    : RawDevice(executor, std::move(transport), std::move(config)) {}

void DefibrillatorDevice::on_command(BytesView payload) {
  try {
    Reader r(payload);
    double joules = static_cast<double>(r.u16());
    activations_.push_back(Activation{executor().now(), joules});
    Writer w;
    w.u16(static_cast<std::uint16_t>(joules));
    w.u8(1);  // delivered OK
    emit_reading(std::move(w).take());
  } catch (const DecodeError&) {
    // Malformed: refuse to fire.
  }
}

InsulinPumpDevice::InsulinPumpDevice(Executor& executor,
                                     std::shared_ptr<Transport> transport,
                                     RawDeviceConfig config,
                                     double reservoir_units)
    : RawDevice(executor, std::move(transport), std::move(config)),
      reservoir_(reservoir_units) {}

void InsulinPumpDevice::on_command(BytesView payload) {
  try {
    Reader r(payload);
    double units = static_cast<double>(r.u16()) / 100.0;
    bool ok = units <= reservoir_;
    if (ok) {
      reservoir_ -= units;
      doses_.push_back(Dose{executor().now(), units});
    }
    Writer w;
    w.u16(static_cast<std::uint16_t>(std::lround(units * 100.0)));
    w.u8(ok ? 1 : 0);
    w.u16(static_cast<std::uint16_t>(std::lround(reservoir_ * 10.0)));
    emit_reading(std::move(w).take());
  } catch (const DecodeError&) {
  }
}

std::optional<Event> DefibrillatorCodec::decode_reading(BytesView payload) {
  try {
    Reader r(payload);
    double joules = static_cast<double>(r.u16());
    bool ok = r.u8() != 0;
    Event e("actuator.defib.status");
    e.set("joules", joules);
    e.set("ok", ok);
    e.set("member", static_cast<std::int64_t>(member_.raw()));
    return e;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::optional<Bytes> DefibrillatorCodec::encode_command(const Event& event) {
  if (event.type() != "actuator.defib.fire") return std::nullopt;
  Writer w;
  w.u16(static_cast<std::uint16_t>(event.get_double("joules", 150.0)));
  return std::move(w).take();
}

std::vector<Filter> DefibrillatorCodec::initial_subscriptions() {
  return {Filter::for_type("actuator.defib.fire")};
}

std::optional<Event> InsulinPumpCodec::decode_reading(BytesView payload) {
  try {
    Reader r(payload);
    double units = static_cast<double>(r.u16()) / 100.0;
    bool ok = r.u8() != 0;
    double reservoir = static_cast<double>(r.u16()) / 10.0;
    Event e("actuator.insulin.status");
    e.set("units", units);
    e.set("ok", ok);
    e.set("reservoir", reservoir);
    e.set("member", static_cast<std::int64_t>(member_.raw()));
    return e;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::optional<Bytes> InsulinPumpCodec::encode_command(const Event& event) {
  if (event.type() != "actuator.insulin.dose") return std::nullopt;
  Writer w;
  w.u16(static_cast<std::uint16_t>(
      std::lround(event.get_double("units", 0.0) * 100.0)));
  return std::move(w).take();
}

std::vector<Filter> InsulinPumpCodec::initial_subscriptions() {
  return {Filter::for_type("actuator.insulin.dose")};
}

void register_actuator_proxies(ProxyFactory& factory) {
  factory.register_type(
      "actuator.defibrillator",
      [](BusPort& bus, const MemberInfo& info) {
        return std::make_unique<TranslatingProxy>(
            bus, info, std::make_unique<DefibrillatorCodec>(info.id));
      });
  factory.register_type(
      "actuator.insulinpump",
      [](BusPort& bus, const MemberInfo& info) {
        return std::make_unique<TranslatingProxy>(
            bus, info, std::make_unique<InsulinPumpCodec>(info.id));
      });
}

RawDeviceConfig actuator_device_config(const std::string& device_type,
                                       const std::string& cell_name,
                                       const Bytes& psk) {
  RawDeviceConfig cfg;
  cfg.agent.cell_name = cell_name;
  cfg.agent.pre_shared_key = psk;
  cfg.agent.device_type = device_type;
  cfg.agent.role = "actuator";
  cfg.reading_interval = Duration{};  // no periodic readings
  return cfg;
}

}  // namespace amuse
