// Body-area sensors and their proxy codecs.
//
// Four wireless vital-sign sensors (heart rate, SpO2, body temperature,
// blood pressure) share one synthetic patient body. Each sensor is a
// RawDevice emitting compact binary readings:
//
//   reading payload: u16 value×10 [, u16 value2×10 for BP] , u8 flags
//                    (flags bit0 = device-side high-threshold exceeded)
//   command payload: u8 cmd, u16 arg   cmd 1 = set high threshold (×10)
//                                      cmd 2 = set low threshold  (×10)
//                    u8 cmd, u32 arg   cmd 3 = set reading interval (ms) —
//                    the Policy Service "chang[ing] thresholds or
//                    monitoring strategy" (§II)
//
// The matching DeviceCodec translates readings into "vitals.<kind>" events
// and control events ("control.threshold", "control.interval") into device
// commands.
#pragma once

#include <memory>

#include "devices/device.hpp"
#include "devices/vitals.hpp"
#include "proxy/bootstrap.hpp"
#include "proxy/device_codec.hpp"
#include "proxy/translating_proxy.hpp"

namespace amuse {

/// One patient's body: steps the vitals model on a fixed cadence so every
/// attached sensor samples a consistent physiological state.
class PatientBody {
 public:
  PatientBody(Executor& executor, std::uint64_t seed,
              VitalsProfile profile = {},
              Duration step_interval = milliseconds(500));
  ~PatientBody();

  PatientBody(const PatientBody&) = delete;
  PatientBody& operator=(const PatientBody&) = delete;

  [[nodiscard]] const VitalsSample& current() const { return current_; }
  [[nodiscard]] VitalsModel& model() { return model_; }

 private:
  void tick();
  Executor& executor_;
  VitalsModel model_;
  VitalsSample current_;
  Duration interval_;
  TimerId timer_ = kNoTimer;
};

enum class VitalKind { kHeartRate, kSpO2, kTemperature, kBloodPressure };

/// "sensor.heartrate", "vitals.heartrate", attribute name, unit, default
/// high/low thresholds.
struct VitalKindInfo {
  const char* device_type;
  const char* event_type;
  const char* attr;
  const char* unit;
  double default_hi;
  double default_lo;
};
[[nodiscard]] const VitalKindInfo& vital_kind_info(VitalKind kind);

/// Sensor device (member side).
class VitalSensor final : public RawDevice {
 public:
  VitalSensor(Executor& executor, std::shared_ptr<Transport> transport,
              std::shared_ptr<PatientBody> body, VitalKind kind,
              RawDeviceConfig config);

  [[nodiscard]] double threshold_hi() const { return threshold_hi_; }
  [[nodiscard]] double threshold_lo() const { return threshold_lo_; }

 protected:
  std::optional<Bytes> next_reading() override;
  void on_command(BytesView payload) override;

 private:
  std::shared_ptr<PatientBody> body_;
  VitalKind kind_;
  double threshold_hi_;
  double threshold_lo_;
};

/// Proxy-side codec for one sensor member.
class VitalCodec final : public DeviceCodec {
 public:
  VitalCodec(VitalKind kind, ServiceId member);

  std::optional<Event> decode_reading(BytesView payload) override;
  std::optional<Bytes> encode_command(const Event& event) override;
  std::vector<Filter> initial_subscriptions() override;
  [[nodiscard]] bool readings_need_ack() const override {
    // The paper's own example: the temperature sensor "may periodically
    // transmit data and not require any acknowledgement".
    return kind_ != VitalKind::kTemperature;
  }

 private:
  VitalKind kind_;
  ServiceId member_;
};

/// Registers translating proxies for all four sensor types with a bus's
/// proxy factory (call once before starting discovery).
void register_vital_sensor_proxies(ProxyFactory& factory);

/// Convenience: default RawDeviceConfig for a sensor of `kind` joining
/// `cell_name` with `psk`.
[[nodiscard]] RawDeviceConfig sensor_device_config(VitalKind kind,
                                                   const std::string&
                                                       cell_name,
                                                   const Bytes& psk,
                                                   Duration reading_interval);

}  // namespace amuse
