// Disk-durable ReplState (DESIGN.md §13.6): the write-ahead persistence hook
// behind the warm-standby replication log. The active core journals every
// repl op through a ReplStore as it commits it to the in-memory stream, so a
// full-cell kill-and-restart recovers membership, durable subscriptions and
// the re-delivery spool — the disk is just another mirror, one flush behind
// at most.
//
// On-disk format (FileReplStore): a flat journal of length+CRC framed
// records,
//
//   u8  type     (1 = snapshot: encoded ReplState; 2 = ops: one repl op)
//   u32 length   (payload bytes, big-endian)
//   u32 crc32    (over the payload)
//   ...payload
//
// Recovery walks the journal from the front, replaying the last snapshot and
// every op after it. The first malformed record — short header, impossible
// length, CRC mismatch, or an op that does not apply — is a torn tail: the
// file is truncated at that offset and everything before it is the recovered
// prefix. Because each record holds exactly one op, recovery can never apply
// a partial op.
//
// Compaction: `snapshot()` rewrites the journal as a single snapshot record
// (tmp file + atomic rename), discarding the op tail it subsumes. ReplLog
// triggers it every `Limits::wal_compact_bytes` of journalled ops.
//
// MemReplStore is the deterministic in-memory fake for sim/torture runs (no
// filesystem access, invariant I7-friendly) with the same record semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bus/replication.hpp"
#include "common/bytes.hpp"

namespace amuse {

/// Write-ahead persistence interface: the choke point every ReplState
/// mutation funnels through (invariant I11 pins the ReplLog side).
class ReplStore {
 public:
  struct Stats {
    std::uint64_t ops_appended = 0;
    std::uint64_t snapshots_written = 0;
    std::uint64_t recoveries = 0;   ///< successful recover() calls
    std::uint64_t torn_tails = 0;   ///< corrupt/truncated tails dropped
  };

  /// Result of replaying the journal.
  struct Recovery {
    /// The recovered state; nullopt when the journal holds no snapshot
    /// (fresh store, or everything after creation was torn away).
    std::optional<ReplState> state;
    std::uint64_t records = 0;  ///< intact records replayed
  };

  virtual ~ReplStore() = default;

  /// Journals one encoded repl op (the same bytes ReplLog streams to
  /// standbys).
  virtual void append_ops(BytesView op) = 0;
  /// Persists a full encoded ReplState and compacts the journal down to it.
  virtual void snapshot(BytesView state) = 0;
  /// Replays the journal into a ReplState, dropping any torn tail.
  [[nodiscard]] virtual Recovery recover() = 0;

  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  Stats stats_;
};

/// Deterministic in-memory fake: identical record semantics, no filesystem.
/// Tests can tamper with the raw journal to exercise recovery paths.
class MemReplStore : public ReplStore {
 public:
  void append_ops(BytesView op) override;
  void snapshot(BytesView state) override;
  [[nodiscard]] Recovery recover() override;

  /// The raw framed journal, mutable so tests can corrupt/truncate it.
  [[nodiscard]] Bytes& journal() { return journal_; }

 private:
  Bytes journal_;
};

/// The real on-disk journal. All I/O is explicit (no background threads):
/// appends open-write-flush-close so a crash loses at most the record being
/// written — exactly the torn tail recovery truncates away.
class FileReplStore : public ReplStore {
 public:
  explicit FileReplStore(std::string path) : path_(std::move(path)) {}

  void append_ops(BytesView op) override;
  void snapshot(BytesView state) override;
  [[nodiscard]] Recovery recover() override;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Shared journal walk: replays `journal`, returns the recovery result and
/// the byte offset of the first torn record (== journal.size() when clean).
/// Both stores and the recovery tests use it.
struct JournalReplay {
  ReplStore::Recovery recovery;
  std::size_t valid_bytes = 0;
  bool torn = false;
};
[[nodiscard]] JournalReplay replay_repl_journal(BytesView journal);

/// Frames one record (type + length + crc + payload) onto `out`.
void frame_repl_record(Bytes& out, std::uint8_t type, BytesView payload);

inline constexpr std::uint8_t kReplRecordSnapshot = 1;
inline constexpr std::uint8_t kReplRecordOps = 2;

}  // namespace amuse
