// BusObserver: passive instrumentation taps on the event-bus core.
//
// The protocol-torture harness (tests/torture/) validates the paper's
// delivery guarantees from *outside* the bus: its oracle needs the ground
// truth of what the core routed, to whom it fanned out, and how the
// membership and subscription tables looked at that instant. These hooks
// expose exactly that — synchronous, read-only notifications at the
// decision points — without giving observers any way to mutate bus state.
// Every hook is optional; an unset observer costs one pointer test per
// call site, so production configurations pay nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "bus/bus_port.hpp"
#include "pubsub/event.hpp"
#include "pubsub/filter.hpp"

namespace amuse {

struct BusObserver {
  /// An event entered route(): it passed authorisation and is about to be
  /// matched against the registry (before any simulated CPU charge).
  std::function<void(const Event&)> on_publish;
  /// The fan-out handed the event to `member`'s proxy for reliable
  /// delivery. `locals` are the member's matching subscription ids.
  std::function<void(ServiceId member, const Event& event,
                     const std::vector<std::uint64_t>& locals)>
      on_deliver;
  /// A co-located handler on the bus host received the event.
  std::function<void(const Event&)> on_local_deliver;
  /// Membership changes as the bus core sees them. A re-admission of an
  /// existing id fires on_member_purged (the old incarnation's queue is
  /// destroyed) and then on_member_admitted.
  std::function<void(const MemberInfo&)> on_member_admitted;
  std::function<void(ServiceId)> on_member_purged;
  /// Subscription table changes (after the registry was updated).
  std::function<void(ServiceId member, std::uint64_t local_id,
                     const Filter& filter)>
      on_subscribe;
  std::function<void(ServiceId member, std::uint64_t local_id)>
      on_unsubscribe;
  /// A queued event for `member` was shed under budget exhaustion — the
  /// accounted counterpart of the old silent drop. Fires once per (event,
  /// member) shed; the refined torture guarantee (c) pairs every missing
  /// delivery at a live member with exactly such a record.
  std::function<void(ServiceId member, const Event& event)> on_shed;
  /// A promoted core re-delivered a spooled event to a re-homed `member`
  /// (DESIGN.md §13). Distinct from on_deliver so the oracle can exempt
  /// re-deliveries from its staleness rule; the member-side (epoch, seq)
  /// dedup filter drops any copy the member already saw, so a re-delivery
  /// is at-most-once even when it reaches the handler.
  std::function<void(ServiceId member, const Event& event)> on_redeliver;
  /// An event left the bounded-staleness budget unaccounted-for by normal
  /// delivery: it was evicted from the replication spool, or a deposed
  /// core abandoned it at step-down. Failover may no longer re-deliver it;
  /// oracle rule F3 accepts such a record in place of a delivery.
  std::function<void(const Event& event)> on_staleness;
};

}  // namespace amuse
