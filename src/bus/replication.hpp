// Warm-standby replication of the bus core's durable state (DESIGN.md §13).
//
// The active core keeps a ReplLog: a canonical ReplState (membership +
// incarnation counters, per-member subscriptions, and a bounded spool of
// recently routed events) plus a pending op buffer. After every mutation the
// bus drains the buffer into a versioned, digest-checked ReplUpdate and
// streams it to standby-role members over the reliable channel's control
// class (kReplUpdate / kReplSnapshot — never shed, like interest tables).
//
// The standby keeps a ReplMirror with exactly the InterestMirror contract:
//   * increments only apply on top of `version - 1`; a gap → kResyncNeeded
//   * `digest` is the SHA-256 of the canonical full state *after* the
//     update; a mismatch → refuse and kResyncNeeded
//   * an increment before any full snapshot → kResyncNeeded
//   * a full snapshot replaces the state wholesale and is idempotent
//   * an update whose epoch is below one already seen → kStaleEpoch
//     (split-brain fencing: a deposed core's stream must not roll the
//     mirror back)
//
// The spool is the bounded-staleness budget: every routed event enters it,
// eviction past the byte/count bounds is a staleness-shed (accounted via
// BusObserver::on_staleness before the record disappears), and on promotion
// the surviving entries are exactly what the new core may re-deliver.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bus/messages.hpp"
#include "common/service_id.hpp"
#include "common/sha256.hpp"
#include "pubsub/event.hpp"
#include "pubsub/filter.hpp"
#include "sim/time.hpp"

namespace amuse {

class ReplStore;

/// HA origin header: an immutable (promotion epoch, route sequence) pair
/// stamped exactly once, by the routing core, on every event while HA
/// replication is active. Members dedup re-deliveries on it across
/// promotions — the key must include the epoch because a split-brain pair
/// of cores continue the same sequence counter independently.
inline constexpr const char* kHaEpochAttr = "x-ha-epoch";
inline constexpr const char* kHaSeqAttr = "x-ha-seq";

/// One spooled (routed but possibly still in-flight) event: the staleness
/// budget's unit of account.
struct ReplSpoolEntry {
  std::uint64_t epoch = 0;  ///< kHaEpochAttr stamp of the event.
  std::uint64_t seq = 0;    ///< kHaSeqAttr stamp of the event.
  Bytes event;              ///< encode_event() bytes.
};

/// A replicated member: admission identity plus its live subscriptions.
struct ReplMember {
  std::string device_type;
  std::string role;
  /// local subscription id → filter, exactly the registry's view.
  std::map<std::uint64_t, Filter> subs;
};

/// The canonical durable state of a bus core. Encoding iterates the ordered
/// maps, so byte-identical state always yields a byte-identical encoding and
/// `digest()` is a true identity (the same canonicalisation argument as the
/// FilterSet quench digest from PR 2).
struct ReplState {
  std::uint64_t epoch = 0;
  /// Session-floor counters: the promoted core must hand out channel
  /// sessions above anything the dead core ever issued.
  std::uint32_t session_base = 0;
  std::uint32_t proxy_incarnations = 0;
  std::uint64_t fed_seq = 0;
  std::uint64_t route_seq = 0;
  std::map<std::uint64_t, ReplMember> members;  ///< keyed by ServiceId::raw.
  /// Standby roster (ServiceId::raw of every admitted standby, self
  /// included). Replicated so each standby knows its arbitration peers:
  /// promotion quorum is a majority of this set.
  std::set<std::uint64_t> standbys;
  std::deque<ReplSpoolEntry> spool;

  [[nodiscard]] Bytes encode() const;
  /// Throws DecodeError on malformed input.
  [[nodiscard]] static ReplState decode(BytesView data);
  /// SHA-256 of the canonical encoding.
  [[nodiscard]] Digest256 digest() const;
  /// Applies an encoded op log (the `ops` of an incremental ReplUpdate).
  /// Throws DecodeError on malformed input or ops that do not fit the
  /// current state (e.g. a subscription for an unknown member).
  void apply_ops(BytesView ops);
};

/// Active-core side: mutation journal + canonical state. The bus calls the
/// mutators inline with its own bookkeeping, then drains `take_update()` to
/// every standby after each externally visible step.
class ReplLog {
 public:
  struct Limits {
    std::size_t max_spool_events = 512;
    std::size_t max_spool_bytes = 256 * 1024;
    /// WAL compaction threshold: once this many op bytes have been appended
    /// to the attached ReplStore since the last snapshot record, the log
    /// persists a fresh snapshot and the store truncates its journal.
    std::size_t wal_compact_bytes = 128 * 1024;
  };

  ReplLog() = default;
  explicit ReplLog(Limits limits) : limits_(limits) {}

  /// Seeds the log from a replica (promotion) or a fresh state (cold
  /// start). Resets the version counter; standbys admitted later always
  /// start from a snapshot anyway.
  void restore(ReplState state);

  /// Attaches the write-ahead persistence hook. Every mutation from here on
  /// is journalled through the store (DESIGN.md §13.6); attaching persists a
  /// baseline snapshot immediately.
  void set_store(std::shared_ptr<ReplStore> store);

  void set_epoch(std::uint64_t epoch);
  void member_admitted(ServiceId id, const std::string& device_type,
                       const std::string& role);
  void member_purged(ServiceId id);
  /// Roster of standby-role members, replicated so every standby learns its
  /// arbitration peers (quorum denominator).
  void standby_admitted(ServiceId id);
  void standby_purged(ServiceId id);
  void sub_added(ServiceId member, std::uint64_t local_id, const Filter& f);
  void sub_removed(ServiceId member, std::uint64_t local_id);
  /// Appends a routed event to the spool and evicts past the limits.
  /// Returns the evicted entries so the bus can account each one as a
  /// staleness-shed before the record disappears.
  [[nodiscard]] std::vector<ReplSpoolEntry> spool_append(std::uint64_t epoch,
                                                         std::uint64_t seq,
                                                         Bytes event);
  void counters_changed(std::uint32_t session_base,
                        std::uint32_t proxy_incarnations,
                        std::uint64_t fed_seq, std::uint64_t route_seq);

  /// True when mutations are waiting to be streamed.
  [[nodiscard]] bool dirty() const { return pending_ops_ > 0; }
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] const ReplState& state() const { return state_; }

  /// Drains the pending op buffer into an incremental update (bumps the
  /// version). With no pending ops it returns a bare lease renewal instead
  /// (version unchanged, no ops) — the heartbeat the standby's lease runs
  /// on.
  [[nodiscard]] ReplUpdate take_update();
  /// A full snapshot at the current version (admission / resync).
  [[nodiscard]] ReplUpdate snapshot() const;

 private:
  /// The ReplStore choke point (invariant I11): every mutator finishes by
  /// committing the op bytes it appended (commit_op) or by persisting a
  /// fresh snapshot (persist_snapshot). No replicated state changes outside
  /// these two calls.
  void commit_op(std::size_t mark);
  void persist_snapshot();

  Limits limits_;
  ReplState state_;
  std::uint64_t version_ = 0;
  Writer ops_;
  std::size_t pending_ops_ = 0;
  std::size_t spool_bytes_ = 0;
  std::shared_ptr<ReplStore> store_;
  std::size_t wal_op_bytes_ = 0;
};

/// Rate limiter for standby-side full-resync requests: on a lossy link every
/// version gap would otherwise turn into a snapshot storm. `allow()` grants
/// at most one request per `min_interval` and counts the rest (surfaced as
/// `repl_resyncs_suppressed`). The active core's lease stream keeps arriving
/// regardless, so a suppressed request is retried on the next update.
class ResyncThrottle {
 public:
  ResyncThrottle() = default;
  explicit ResyncThrottle(Duration min_interval)
      : min_interval_(min_interval) {}

  [[nodiscard]] bool allow(TimePoint now) {
    if (armed_ && now < last_ + min_interval_) {
      ++suppressed_;
      return false;
    }
    armed_ = true;
    last_ = now;
    return true;
  }

  [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }

 private:
  Duration min_interval_{};
  TimePoint last_{};
  bool armed_ = false;
  std::uint64_t suppressed_ = 0;
};

/// Standby side: applies the stream, refuses anything out of order.
class ReplMirror {
 public:
  enum class Apply {
    kApplied,
    /// Version gap, digest mismatch, increment-before-full, or a lease for
    /// a version we do not hold: send repl_resync_request().
    kResyncNeeded,
    /// The sender's epoch is below one this mirror has already seen — a
    /// deposed core still streaming. Ignore it (do NOT resync from it).
    kStaleEpoch,
  };

  [[nodiscard]] Apply apply(const ReplUpdate& update);

  [[nodiscard]] bool synced() const { return synced_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t epoch() const { return max_epoch_; }
  [[nodiscard]] const ReplState& state() const { return state_; }
  /// Moves the replica out (promotion consumes the mirror).
  [[nodiscard]] ReplState take_state();

 private:
  ReplState state_;
  std::uint64_t version_ = 0;
  std::uint64_t max_epoch_ = 0;
  bool synced_ = false;
};

}  // namespace amuse
