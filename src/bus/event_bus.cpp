#include "bus/event_bus.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "hostmodel/profiles.hpp"
#include "pubsub/codec.hpp"
#include "pubsub/brute_matcher.hpp"
#include "pubsub/fastforward_matcher.hpp"
#include "pubsub/siena_matcher.hpp"
#include "pubsub/siena_translation.hpp"

namespace amuse {
namespace {
const Logger kLog("bus");
}

const char* to_string(BusEngine e) {
  switch (e) {
    case BusEngine::kCBased: return "c-based";
    case BusEngine::kSienaBased: return "siena-based";
    case BusEngine::kBruteForce: return "brute-force";
  }
  return "?";
}

std::unique_ptr<Matcher> EventBus::make_matcher(BusEngine engine) {
  switch (engine) {
    case BusEngine::kCBased:
      return std::make_unique<FastForwardMatcher>();
    case BusEngine::kSienaBased:
      return std::make_unique<SienaMatcher>();
    case BusEngine::kBruteForce:
      return std::make_unique<BruteForceMatcher>();
  }
  return std::make_unique<FastForwardMatcher>();
}

EventBus::EventBus(Executor& executor, std::shared_ptr<Transport> transport,
                   EventBusConfig config)
    : executor_(executor),
      transport_(std::move(transport)),
      config_(std::move(config)),
      costs_(config_.costs.value_or(config_.engine == BusEngine::kSienaBased
                                        ? profiles::siena_bus_costs()
                                        : profiles::c_bus_costs())),
      registry_(make_matcher(config_.engine)) {
  if (config_.bus_queue_bytes > 0) {
    budget_ = std::make_shared<DeliveryBudget>(config_.bus_queue_bytes);
    // Every proxy channel charges/releases this ledger entry-by-entry;
    // the bus enforces the limit after each fan-out and quench push.
    config_.channel.shared_budget = budget_;
  }
  repl_ = ReplLog(
      ReplLog::Limits{config_.ha_spool_events, config_.ha_spool_bytes});
  // Attach the write-ahead persistence hook before any state is seeded so
  // the restore/cold-start snapshot below is the journal's baseline record.
  if (config_.repl_store) repl_.set_store(config_.repl_store);
  if (config_.restore) {
    // Standby promotion (DESIGN.md §13): resume the dead core's durable
    // state under our own (higher) epoch.
    const ReplState& replica = *config_.restore;
    // Session floors across promotion: every channel session this core
    // hands out must exceed anything the dead core ever issued, or a
    // rejoined member could adopt a stale in-flight frame as its fresh
    // stream. The slack covers sessions reserved after the last replicated
    // counter update (admissions racing the crash).
    config_.session = std::max(config_.session, replica.session_base);
    proxy_incarnations_ = replica.proxy_incarnations + 64;
    fed_seq_ = replica.fed_seq;
    route_seq_ = replica.route_seq;
    stats_.promotions = 1;
    ha_ = true;
    ReplState seeded = replica;
    seeded.epoch = config_.epoch;
    seeded.session_base = config_.session;
    seeded.proxy_incarnations = proxy_incarnations_;
    // The replicated standby roster names the *previous* core's standbys —
    // including whichever of them just became this core. Start empty:
    // survivors re-home and re-register, and a stale entry would inflate
    // every future quorum denominator with a voter that no longer exists.
    seeded.standbys.clear();
    repl_.restore(std::move(seeded));
    for (const auto& [raw, member] : replica.members) {
      // Pre-seed the registry with every member's pre-crash subscriptions
      // so (a) the quench table is byte-identical to the one re-homing
      // members stashed (no quench storm on a no-change promotion) and
      // (b) events routed before a member re-homes still match it into
      // the spool. The snapshot is also the re-delivery filter consumed
      // when that member rejoins.
      if (member.role == kGatewayRole) federation_ = true;
      ha_rehome_.emplace(raw, member);
      for (const auto& [local_id, filter] : member.subs) {
        registry_.subscribe(ServiceId(raw), local_id, filter);
      }
    }
  } else if (config_.ha) {
    ha_ = true;
    repl_.set_epoch(config_.epoch);
  }
  transport_->set_receive_handler([this](ServiceId src, BytesView data) {
    auto it = proxies_.find(src);
    if (it == proxies_.end()) return;  // not (yet) a member: drop
    it->second->on_datagram(data);
  });
}

EventBus::~EventBus() { transport_->set_receive_handler(nullptr); }

void EventBus::add_member(const MemberInfo& info) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::add_member");
  if (has_member(info.id)) purge_member(info.id);
  member_info_.emplace(info.id, info);
  // The proxy constructor may immediately register subscriptions on the
  // device's behalf, so the info record must exist before creation.
  auto it = proxies_.emplace(info.id, factory_.create(*this, info)).first;
  // Seed the newcomer with the current quench table — unless the member
  // told us (trailing JOIN_RESP digest) it still holds exactly this table
  // from its previous incarnation. The skip is what keeps a failover from
  // turning into a quench storm: on a no-change promotion every re-homing
  // member presents the pre-crash digest, the promoted core's registry was
  // pre-seeded to the same canonical set, and nobody gets a redundant push.
  if (config_.quench && info.quench_digest != Digest256{}) {
    table_.rebuild(registry_.filters_by_member());
    Digest256 current = table_.all().digest();
    if (digest_equal(current, info.quench_digest)) {
      quench_pushed_ = true;
      quench_digest_ = current;
      ++stats_.quench_skipped;
    } else {
      push_quench_table(*it->second);
    }
  } else {
    push_quench_table(*it->second);
  }
  if (info.role == kGatewayRole) {
    // A routing peer: from here on every routed event carries an origin
    // stamp, and this link gets the cell's split-horizon interest table.
    // Admission (first join *and* rejoin) always pushes a full table — a
    // rejoined incarnation must never route on a stale mirror.
    enable_federation();
    gateway_members_.insert(info.id);
    push_interest_table(*it->second);
  }
  if (info.role == kStandbyRole) {
    // A warm standby: switch on HA replication (sticky) and seed the new
    // mirror with a full snapshot — like the interest table, admission
    // must never leave a standby running on stale state.
    enable_ha();
    standby_members_.insert(info.id);
    // Roster before snapshot: the admission snapshot must already name the
    // newcomer so every mirror (its own included) knows the full quorum.
    repl_.standby_admitted(info.id);
    push_repl_snapshot(*it->second);
    schedule_lease_tick();
  } else if (ha_) {
    repl_.member_admitted(info.id, info.device_type, info.role);
  }
  if (observer_.on_member_admitted) observer_.on_member_admitted(info);
  // A member of the dead core re-homing after promotion: re-offer the
  // spooled events its pre-crash subscriptions missed, before any new
  // fan-out can enqueue on the fresh channel (per-sender FIFO across the
  // promotion). One-shot per member; the member-side (epoch, seq) dedup
  // drops anything it already saw.
  if (auto rit = ha_rehome_.find(info.id.raw()); rit != ha_rehome_.end()) {
    ReplMember snapshot = std::move(rit->second);
    ha_rehome_.erase(rit);
    // On a promotion the constructor pre-seeded the registry with the
    // member's replicated subscriptions before any observer could attach:
    // replay whatever the registry actually holds so the observer's view
    // starts complete instead of trailing the member's own re-SUBSCRIBEs
    // (which deliveries on the restored set do not wait for). Read the
    // registry, not the snapshot — after a plain purge + re-join the
    // registry is empty (the snapshot only drives the spool re-offer) and
    // the observer must not be told otherwise.
    if (observer_.on_subscribe) {
      if (auto subs = registry_.subscriptions_by_member();
          subs.contains(info.id)) {
        for (const auto& [local_id, filter] : subs.at(info.id)) {
          observer_.on_subscribe(info.id, local_id, filter);
        }
      }
    }
    redeliver_spool(*it->second, snapshot);
  }
  repl_flush();
  kLog.debug("member ", info.id.to_string(), " admitted as ",
             info.device_type);
}

void EventBus::purge_member(ServiceId id) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::purge_member");
  auto it = proxies_.find(id);
  if (it == proxies_.end()) return;
  if (ha_ && !deposed_ && !standby_members_.contains(id)) {
    // Re-arm the spool re-offer debt. A purge can destroy a re-delivery
    // that never reached the member — admission is bus-side, so a member
    // whose JoinAccept died on a lossy link is admitted, offered the
    // spool, and purged again without ever seeing a byte of it. The next
    // admission re-offers; the member-side (epoch, seq) dedup makes a
    // second offer to a member that did receive everything a no-op.
    if (const MemberInfo* info = member_info(id);
        info != nullptr && info->role != kGatewayRole) {
      ReplMember snapshot;
      snapshot.device_type = info->device_type;
      snapshot.role = info->role;
      if (auto subs = registry_.subscriptions_by_member();
          subs.contains(id)) {
        snapshot.subs = subs.at(id);
      }
      ha_rehome_.insert_or_assign(id.raw(), std::move(snapshot));
    }
  }
  it->second->on_purge();  // destroy outbound data awaiting delivery
  proxies_.erase(it);
  member_info_.erase(id);
  registry_.remove_member(id);
  // on_purge() releasing the member's retained bytes normally fires the
  // low-watermark callback itself; erasing here covers a proxy torn down
  // without a pressure transition so a dead member can't pin the cell's
  // publishers under flow control forever.
  pressured_members_.erase(id);
  gateway_members_.erase(id);
  standby_members_.erase(id);
  table_.drop_link(id);
  update_flow_control();
  interests_changed();
  if (ha_) {
    repl_.member_purged(id);
    repl_.standby_purged(id);  // shrink the quorum denominator with it
    repl_flush();
  }
  if (observer_.on_member_purged) observer_.on_member_purged(id);
  kLog.debug("member ", id.to_string(), " purged");
}

bool EventBus::has_member(ServiceId id) const {
  return proxies_.contains(id);
}

const MemberInfo* EventBus::member_info(ServiceId id) const {
  auto it = member_info_.find(id);
  return it == member_info_.end() ? nullptr : &it->second;
}

Proxy* EventBus::proxy_for(ServiceId id) {
  auto it = proxies_.find(id);
  return it == proxies_.end() ? nullptr : it->second.get();
}

std::size_t EventBus::max_proxy_backlog() const {
  std::size_t worst = 0;
  for (const auto& [id, proxy] : proxies_) {
    worst = std::max(worst, proxy->pending());
  }
  return worst;
}

std::vector<MemberInfo> EventBus::members() const {
  std::vector<MemberInfo> out;
  out.reserve(member_info_.size());
  for (const auto& [id, info] : member_info_) out.push_back(info);
  return out;
}

std::uint64_t EventBus::subscribe_local(const Filter& filter,
                                        Handler handler) {
  return subscribe_local_shared(
      filter,
      [h = std::move(handler)](const EventPtr& event) { h(*event); });
}

std::uint64_t EventBus::subscribe_local_shared(const Filter& filter,
                                               SharedHandler handler) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::subscribe_local");
  std::uint64_t id = next_local_id_++;
  local_handlers_.emplace(id, std::move(handler));
  registry_.subscribe(bus_id(), id, filter);
  interests_changed();
  return id;
}

void EventBus::unsubscribe_local(std::uint64_t id) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::unsubscribe_local");
  local_handlers_.erase(id);
  registry_.unsubscribe(bus_id(), id);
  interests_changed();
}

void EventBus::publish_local(Event event) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::publish_local");
  if (event.publisher().is_nil()) event.set_publisher(bus_id());
  if (event.timestamp() == TimePoint{}) event.set_timestamp(executor_.now());
  route(freeze(std::move(event)));
}

void EventBus::publish_local(EventPtr event) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::publish_local");
  if (!event) return;
  // Copy-on-write restamp: a forwarded event normally arrives with its
  // origin metadata intact and is routed as-is; only a bare event pays
  // for a copy.
  if (event->publisher().is_nil() || event->timestamp() == TimePoint{}) {
    auto stamped = std::make_shared<Event>(*event);
    if (stamped->publisher().is_nil()) stamped->set_publisher(bus_id());
    if (stamped->timestamp() == TimePoint{}) {
      stamped->set_timestamp(executor_.now());
    }
    event = std::move(stamped);
  }
  route(std::move(event));
}

void EventBus::enable_federation() {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::enable_federation");
  federation_ = true;
}

void EventBus::enable_ha() {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::enable_ha");
  if (ha_) return;
  ha_ = true;
  // Seed the replication log with the live state: standbys admitted from
  // here on snapshot from it. Standby members themselves are not
  // replicated — a promoted standby is the new core, not a member of it.
  ReplState seed;
  seed.epoch = config_.epoch;
  seed.session_base = config_.session;
  seed.proxy_incarnations = proxy_incarnations_;
  seed.fed_seq = fed_seq_;
  seed.route_seq = route_seq_;
  for (const auto& [id, info] : member_info_) {
    if (info.role == kStandbyRole) continue;
    ReplMember m;
    m.device_type = info.device_type;
    m.role = info.role;
    seed.members.emplace(id.raw(), std::move(m));
  }
  for (const auto& [member, subs] : registry_.subscriptions_by_member()) {
    auto it = seed.members.find(member.raw());
    if (it == seed.members.end()) continue;  // bus-local handlers
    it->second.subs = subs;
  }
  for (ServiceId sid : standby_members_) seed.standbys.insert(sid.raw());
  repl_.restore(std::move(seed));
}

void EventBus::step_down() {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::step_down");
  if (deposed_) return;
  deposed_ = true;
  ++lease_timer_gen_;  // invalidate any scheduled lease tick
  kLog.warn("core ", bus_id().to_string(), " deposed at epoch ",
            std::to_string(config_.epoch), "; stepping down");
  // Whatever is still spooled here the promoted core must cover from its
  // own replica; from this side it is abandoned — account every entry.
  for (const ReplSpoolEntry& entry : repl_.state().spool) {
    account_staleness(decode_event(entry.event));
  }
  // Purge everyone so they re-home to the promoted core.
  while (!proxies_.empty()) purge_member(proxies_.begin()->first);
  ha_rehome_.clear();
}

void EventBus::set_authoriser(Authoriser authoriser) {
  authoriser_ = std::move(authoriser);
}

void EventBus::set_observer(BusObserver observer) {
  observer_ = std::move(observer);
}

void EventBus::member_publish(ServiceId member, EventPtr event) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::member_publish");
  if (!event) return;
  const MemberInfo* info = member_info(member);
  if (!info) return;  // raced with a purge
  if (authoriser_ &&
      !authoriser_(*info, AuthAction::kPublish, event->type())) {
    ++stats_.denied_publish;
    kLog.debug("publish of ", event->type(), " by ", member.to_string(),
               " denied");
    return;
  }
  // Copy-on-write metadata stamping: a well-behaved BusClient pre-stamps
  // its own id and a timestamp, so the common path shares the decoded
  // event untouched; only a mis-stamped event pays for a copy.
  if (event->publisher() != member || event->timestamp() == TimePoint{}) {
    auto stamped = std::make_shared<Event>(*event);
    stamped->set_publisher(member);
    if (stamped->timestamp() == TimePoint{}) {
      stamped->set_timestamp(executor_.now());
    }
    event = std::move(stamped);
  }
  route(std::move(event));
}

void EventBus::member_subscribe(ServiceId member, std::uint64_t local_id,
                                Filter filter) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::member_subscribe");
  const MemberInfo* info = member_info(member);
  if (!info) return;
  if (authoriser_ &&
      !authoriser_(*info, AuthAction::kSubscribe, topic_of(filter))) {
    ++stats_.denied_subscribe;
    kLog.debug("subscription by ", member.to_string(), " to ",
               topic_of(filter), " denied");
    return;
  }
  if (observer_.on_subscribe) observer_.on_subscribe(member, local_id, filter);
  registry_.subscribe(member, local_id, filter);
  interests_changed();
  if (ha_) {
    repl_.sub_added(member, local_id, filter);
    repl_flush();
  }
}

void EventBus::member_unsubscribe(ServiceId member, std::uint64_t local_id) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::member_unsubscribe");
  if (observer_.on_unsubscribe) observer_.on_unsubscribe(member, local_id);
  registry_.unsubscribe(member, local_id);
  interests_changed();
  if (ha_) {
    repl_.sub_removed(member, local_id);
    repl_flush();
  }
}

void EventBus::send_datagram(ServiceId dst, BytesView frame) {
  transport_->send(dst, frame);
}

void EventBus::send_datagram_batch(ServiceId dst,
                                   std::span<const Bytes> frames) {
  std::vector<Transport::Datagram> burst;
  burst.reserve(frames.size());
  for (const Bytes& f : frames) {
    burst.push_back(Transport::Datagram{dst, BytesView(f)});
  }
  transport_->send_batch(burst);
}

void EventBus::notify_shed(ServiceId member, const Event& event) {
  ++stats_.events_shed;
  if (observer_.on_shed) observer_.on_shed(member, event);
  kLog.debug("shed event ", event.type(), " queued for ",
             member.to_string());
}

void EventBus::member_pressure(ServiceId member, bool under_pressure) {
  if (under_pressure) {
    pressured_members_.insert(member);
  } else {
    pressured_members_.erase(member);
  }
  update_flow_control();
}

void EventBus::update_flow_control() {
  if (broadcasting_flow_) return;  // the outer broadcast loop re-checks
  broadcasting_flow_ = true;
  // Loop until stable: the broadcast's own control bytes can move other
  // channels across their watermarks synchronously.
  while (true) {
    bool want = !pressured_members_.empty();
    if (want == flow_announced_) break;
    flow_announced_ = want;
    ++stats_.flow_control_signals;
    kLog.debug(want ? "flow-control pressure raised"
                    : "flow-control pressure released");
    for (auto& [id, proxy] : proxies_) proxy->send_flow_control(want);
  }
  broadcasting_flow_ = false;
}

void EventBus::enforce_shared_budget() {
  if (!budget_) return;
  while (budget_->over_limit()) {
    // Deterministic victim order: stalled members first (they are not
    // making progress anyway), then the largest retained footprint, then
    // the smaller member id — proxies_ iteration order is unspecified,
    // the shed policy must not be.
    std::vector<Proxy*> candidates;
    candidates.reserve(proxies_.size());
    for (auto& [id, proxy] : proxies_) {
      if (proxy->retained_bytes() > 0) candidates.push_back(proxy.get());
    }
    std::sort(candidates.begin(), candidates.end(), [](Proxy* a, Proxy* b) {
      if (a->delivery_stalled() != b->delivery_stalled()) {
        return a->delivery_stalled();
      }
      if (a->retained_bytes() != b->retained_bytes()) {
        return a->retained_bytes() > b->retained_bytes();
      }
      return a->member_id().raw() < b->member_id().raw();
    });
    bool shed = false;
    for (Proxy* p : candidates) {
      if (p->shed_oldest_data()) {
        shed = true;
        break;
      }
    }
    // Only control and in-flight bytes remain anywhere: both are exempt.
    if (!shed) break;
  }
}

void EventBus::route(EventPtr event) {
  if (deposed_) {
    // A stepped-down core must not route: the promoted core owns the cell
    // now and our stream can no longer reach the replica. Accounted, never
    // silent — the event leaves the staleness budget here.
    account_staleness(*event);
    return;
  }
  if (federation_) {
    // Origin-stamped routing (DESIGN.md §11): every event is stamped with
    // an immutable (cell, seq) pair exactly once, at its origin cell. A
    // stamp naming *this* cell means the event has looped home; a stamp we
    // have already routed is a multi-path duplicate. Both die here —
    // before the publish counters and the oracle's publish tap — so loop
    // termination needs no mutable hop counter.
    auto origin =
        static_cast<std::uint64_t>(event->get_int(kFedOriginCellAttr, 0));
    if (origin != 0) {
      auto seq =
          static_cast<std::uint64_t>(event->get_int(kFedOriginSeqAttr, 0));
      if (origin == bus_id().raw() || !fed_dedup_.admit(origin, seq)) {
        ++stats_.fed_duplicates_dropped;
        return;
      }
    } else {
      auto stamped = std::make_shared<Event>(*event);
      stamped->set(kFedOriginCellAttr,
                   static_cast<std::int64_t>(bus_id().raw()));
      stamped->set(kFedOriginSeqAttr, static_cast<std::int64_t>(++fed_seq_));
      event = std::move(stamped);
    }
  }
  if (ha_ && event->get_int(kHaEpochAttr, 0) == 0) {
    // HA origin stamp (DESIGN.md §13): an immutable (epoch, seq) pair
    // members dedup re-deliveries on. The epoch is part of the key — a
    // split-brain pair of cores continue the same sequence counter
    // independently, so a bare seq would collide across the brains.
    auto stamped = std::make_shared<Event>(*event);
    stamped->set(kHaEpochAttr, static_cast<std::int64_t>(config_.epoch));
    stamped->set(kHaSeqAttr, static_cast<std::int64_t>(++route_seq_));
    event = std::move(stamped);
  }
  ++stats_.published;
  if (observer_.on_publish) observer_.on_publish(*event);

  // The Siena-based engine pays the translation toll on every event: our
  // types → Siena types for matching, Siena types → ours for delivery.
  if (config_.engine == BusEngine::kSienaBased && config_.real_translation) {
    event = freeze(siena_round_trip(*event));
  }

  SubscriptionRegistry::MatchResult hit;
  registry_.match(*event, hit);
  if (hit.empty()) ++stats_.no_subscriber;

  // One shared encoding per publish: every forwarding proxy in the fan-out
  // reuses these bytes instead of re-serialising the event per member.
  auto enc = std::make_shared<EncodedEvent>(std::move(event));
  enc->set_counters(&stats_.encodes, &stats_.encode_reuses);

  if (ha_) {
    // Spool the routed event for post-failover re-delivery (only when a
    // remote member matched — re-delivery re-matches against replicated
    // member subscriptions, so an event nobody matched can never need it).
    bool remote = false;
    for (const auto& [member, locals] : hit) {
      if (member != bus_id()) {
        remote = true;
        break;
      }
    }
    if (remote) {
      auto epoch =
          static_cast<std::uint64_t>(enc->event().get_int(kHaEpochAttr, 0));
      auto seq =
          static_cast<std::uint64_t>(enc->event().get_int(kHaSeqAttr, 0));
      for (const ReplSpoolEntry& evicted :
           repl_.spool_append(epoch, seq, *enc->shared_bytes())) {
        // The budget gave up on this event: failover can no longer
        // re-deliver it. Accounted before the record disappears.
        account_staleness(decode_event(evicted.event));
      }
      repl_flush();
    }
  }

  if (config_.host) {
    // Charge the matching + translation + serialisation work to the
    // simulated CPU and fan out when the host would actually be done with
    // it. The wire size comes from the shared encoding, which the fan-out
    // then reuses — the old pipeline encoded here just to measure, threw
    // the bytes away, and re-encoded once per member.
    Duration cost = costs_.publish_cost(enc->wire_size(), registry_.size(),
                                        config_.host->cpu());
    TimePoint done = config_.host->charge(executor_.now(), cost);
    executor_.schedule_at(done, [this, enc = std::move(enc),
                                 hit = std::move(hit)] {
      fan_out(*enc, hit);
    });
  } else {
    fan_out(*enc, hit);
  }
}

void EventBus::fan_out(const EncodedEvent& event,
                       const SubscriptionRegistry::MatchResult& hit) {
  if (!gateway_members_.empty()) {
    // Suppression accounting for the federation A/B: an event no gateway
    // matched crossed zero inter-cell links — the downstream interest
    // tables said nobody out there wants it.
    bool crossed = false;
    for (ServiceId link : gateway_members_) {
      if (hit.contains(link)) {
        crossed = true;
        break;
      }
    }
    if (!crossed) ++stats_.fed_events_suppressed;
  }
  for (const auto& [member, locals] : hit) {
    if (member == bus_id()) {
      // Local handlers may (un)subscribe from inside the callback.
      std::vector<SharedHandler> handlers;
      handlers.reserve(locals.size());
      for (std::uint64_t local : locals) {
        auto hit_handler = local_handlers_.find(local);
        if (hit_handler != local_handlers_.end()) {
          handlers.push_back(hit_handler->second);
        }
      }
      for (const SharedHandler& h : handlers) {
        ++stats_.local_deliveries;
        if (observer_.on_local_deliver) observer_.on_local_deliver(event.event());
        h(event.event_ptr());
      }
      continue;
    }
    auto pit = proxies_.find(member);
    if (pit == proxies_.end()) continue;  // purged between match and fan-out
    ++stats_.deliveries;
    if (observer_.on_deliver) observer_.on_deliver(member, event.event(), locals);
    pit->second->deliver_event(event, locals);
  }
  enforce_shared_budget();
}

void EventBus::interests_changed() {
  bool links = !gateway_members_.empty();
  if (!config_.quench && !links) return;
  // One canonical table (sorted by wire encoding, deduped — the quench
  // table is a *set*: order and duplicates carry no information), grouped
  // by owner so each link gets its split-horizon view.
  table_.rebuild(registry_.filters_by_member());
  bool pushed = false;
  if (config_.quench) {
    Digest256 digest = table_.all().digest();
    if (quench_pushed_ && digest_equal(digest, quench_digest_)) {
      // The effective filter set is unchanged (duplicate subscription,
      // unsubscribe of a duplicated filter, purge of a filterless member…):
      // pushing the same table to every member would be pure overhead.
      ++stats_.quench_skipped;
    } else {
      quench_pushed_ = true;
      quench_digest_ = digest;
      for (auto& [id, proxy] : proxies_) {
        proxy->send_quench_update(table_.all().filters());
      }
      ++stats_.quench_updates;
      pushed = true;
    }
  }
  for (ServiceId link : gateway_members_) {
    auto pit = proxies_.find(link);
    if (pit == proxies_.end()) continue;
    if (auto update = table_.refresh_link(link)) {
      // Versioned incremental diff (full on the first push); digest lets
      // the mirror detect divergence and ask for a resync.
      pit->second->send_interest_update(*update);
      ++stats_.interests_propagated;
      pushed = true;
    }
  }
  // Control bypasses the per-member budgets but still charges the ledger:
  // make room by shedding data if a push overflowed it.
  if (pushed) enforce_shared_budget();
}

void EventBus::push_quench_table(Proxy& proxy) {
  if (!config_.quench) return;
  table_.rebuild(registry_.filters_by_member());
  quench_pushed_ = true;
  quench_digest_ = table_.all().digest();
  proxy.send_quench_update(table_.all().filters());
  enforce_shared_budget();
}

void EventBus::push_interest_table(Proxy& proxy) {
  table_.rebuild(registry_.filters_by_member());
  proxy.send_interest_update(table_.full_update(proxy.member_id()));
  ++stats_.interests_propagated;
  enforce_shared_budget();
}

void EventBus::member_interest_resync(ServiceId member) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::member_interest_resync");
  if (!gateway_members_.contains(member)) return;
  auto pit = proxies_.find(member);
  if (pit == proxies_.end()) return;
  ++stats_.interest_resyncs;
  kLog.debug("interest resync requested by ", member.to_string());
  push_interest_table(*pit->second);
}

void EventBus::member_repl_resync(ServiceId member) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "EventBus::member_repl_resync");
  if (!standby_members_.contains(member)) return;
  auto pit = proxies_.find(member);
  if (pit == proxies_.end()) return;
  ++stats_.repl_resyncs;
  kLog.debug("repl resync requested by ", member.to_string());
  push_repl_snapshot(*pit->second);
}

void EventBus::repl_flush() {
  if (!ha_ || deposed_) return;
  repl_.counters_changed(config_.session, proxy_incarnations_, fed_seq_,
                         route_seq_);
  if (!repl_.dirty()) return;
  ReplUpdate update = repl_.take_update();
  // With no standby connected the ops are simply drained: the state is
  // authoritative and a later standby starts from a snapshot anyway.
  if (standby_members_.empty()) return;
  ++stats_.repl_updates;
  for (ServiceId id : standby_members_) {
    auto pit = proxies_.find(id);
    if (pit != proxies_.end()) pit->second->send_repl_update(update);
  }
  enforce_shared_budget();
}

void EventBus::schedule_lease_tick() {
  std::uint64_t gen = ++lease_timer_gen_;
  executor_.schedule_after(config_.repl_lease_interval,
                           [this, gen, alive = std::weak_ptr<bool>(alive_)] {
                             if (alive.expired()) return;
                             if (gen != lease_timer_gen_) return;
                             lease_tick();
                           });
}

void EventBus::lease_tick() {
  if (!ha_ || deposed_ || standby_members_.empty()) return;
  repl_.counters_changed(config_.session, proxy_incarnations_, fed_seq_,
                         route_seq_);
  // Pending mutations ride the tick; otherwise a bare lease renewal keeps
  // the standby's failure detector fed.
  ReplUpdate update = repl_.take_update();
  ++stats_.repl_updates;
  for (ServiceId id : standby_members_) {
    auto pit = proxies_.find(id);
    if (pit != proxies_.end()) pit->second->send_repl_update(update);
  }
  enforce_shared_budget();
  schedule_lease_tick();
}

void EventBus::push_repl_snapshot(Proxy& proxy) {
  // Drain pending ops first so the snapshot is the head of the stream —
  // re-sending already-folded ops on top of it would double-apply the
  // non-idempotent ones (spool appends) and force a pointless resync.
  repl_flush();
  ++stats_.repl_updates;
  proxy.send_repl_update(repl_.snapshot());
  enforce_shared_budget();
}

void EventBus::redeliver_spool(Proxy& proxy, const ReplMember& snapshot) {
  if (snapshot.subs.empty()) return;
  for (const ReplSpoolEntry& entry : repl_.state().spool) {
    Event event = decode_event(entry.event);
    std::vector<std::uint64_t> locals;
    for (const auto& [local_id, filter] : snapshot.subs) {
      if (filter.matches(event)) locals.push_back(local_id);
    }
    if (locals.empty()) continue;
    ++stats_.staleness_redelivered;
    if (observer_.on_redeliver) {
      observer_.on_redeliver(proxy.member_id(), event);
    }
    EncodedEvent enc(freeze(std::move(event)));
    enc.set_counters(&stats_.encodes, &stats_.encode_reuses);
    proxy.deliver_event(enc, locals);
  }
  enforce_shared_budget();
}

void EventBus::account_staleness(const Event& event) {
  ++stats_.staleness_shed;
  if (observer_.on_staleness) observer_.on_staleness(event);
  kLog.debug("staleness budget gave up on ", event.type());
}

std::string EventBus::topic_of(const Filter& filter) {
  for (const Constraint& c : filter.constraints()) {
    if (c.attribute == "type" && c.value.type() == ValueType::kString) {
      if (c.op == Op::kEq) return c.value.as_string();
      if (c.op == Op::kPrefix) return c.value.as_string() + "*";
    }
  }
  return "*";
}

}  // namespace amuse
