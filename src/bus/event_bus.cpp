#include "bus/event_bus.hpp"

#include "common/log.hpp"
#include "hostmodel/profiles.hpp"
#include "pubsub/brute_matcher.hpp"
#include "pubsub/fastforward_matcher.hpp"
#include "pubsub/siena_matcher.hpp"
#include "pubsub/siena_translation.hpp"

namespace amuse {
namespace {
const Logger kLog("bus");
}

const char* to_string(BusEngine e) {
  switch (e) {
    case BusEngine::kCBased: return "c-based";
    case BusEngine::kSienaBased: return "siena-based";
    case BusEngine::kBruteForce: return "brute-force";
  }
  return "?";
}

std::unique_ptr<Matcher> EventBus::make_matcher(BusEngine engine) {
  switch (engine) {
    case BusEngine::kCBased:
      return std::make_unique<FastForwardMatcher>();
    case BusEngine::kSienaBased:
      return std::make_unique<SienaMatcher>();
    case BusEngine::kBruteForce:
      return std::make_unique<BruteForceMatcher>();
  }
  return std::make_unique<FastForwardMatcher>();
}

EventBus::EventBus(Executor& executor, std::shared_ptr<Transport> transport,
                   EventBusConfig config)
    : executor_(executor),
      transport_(std::move(transport)),
      config_(std::move(config)),
      costs_(config_.costs.value_or(config_.engine == BusEngine::kSienaBased
                                        ? profiles::siena_bus_costs()
                                        : profiles::c_bus_costs())),
      registry_(make_matcher(config_.engine)) {
  transport_->set_receive_handler([this](ServiceId src, BytesView data) {
    auto it = proxies_.find(src);
    if (it == proxies_.end()) return;  // not (yet) a member: drop
    it->second->on_datagram(data);
  });
}

EventBus::~EventBus() { transport_->set_receive_handler(nullptr); }

void EventBus::add_member(const MemberInfo& info) {
  if (has_member(info.id)) purge_member(info.id);
  member_info_.emplace(info.id, info);
  // The proxy constructor may immediately register subscriptions on the
  // device's behalf, so the info record must exist before creation.
  proxies_.emplace(info.id, factory_.create(*this, info));
  kLog.debug("member ", info.id.to_string(), " admitted as ",
             info.device_type);
}

void EventBus::purge_member(ServiceId id) {
  auto it = proxies_.find(id);
  if (it == proxies_.end()) return;
  it->second->on_purge();  // destroy outbound data awaiting delivery
  proxies_.erase(it);
  member_info_.erase(id);
  registry_.remove_member(id);
  quench_changed();
  kLog.debug("member ", id.to_string(), " purged");
}

bool EventBus::has_member(ServiceId id) const {
  return proxies_.contains(id);
}

const MemberInfo* EventBus::member_info(ServiceId id) const {
  auto it = member_info_.find(id);
  return it == member_info_.end() ? nullptr : &it->second;
}

Proxy* EventBus::proxy_for(ServiceId id) {
  auto it = proxies_.find(id);
  return it == proxies_.end() ? nullptr : it->second.get();
}

std::size_t EventBus::max_proxy_backlog() const {
  std::size_t worst = 0;
  for (const auto& [id, proxy] : proxies_) {
    worst = std::max(worst, proxy->pending());
  }
  return worst;
}

std::vector<MemberInfo> EventBus::members() const {
  std::vector<MemberInfo> out;
  out.reserve(member_info_.size());
  for (const auto& [id, info] : member_info_) out.push_back(info);
  return out;
}

std::uint64_t EventBus::subscribe_local(const Filter& filter,
                                        Handler handler) {
  std::uint64_t id = next_local_id_++;
  local_handlers_.emplace(id, std::move(handler));
  registry_.subscribe(bus_id(), id, filter);
  quench_changed();
  return id;
}

void EventBus::unsubscribe_local(std::uint64_t id) {
  local_handlers_.erase(id);
  registry_.unsubscribe(bus_id(), id);
  quench_changed();
}

void EventBus::publish_local(Event event) {
  if (event.publisher().is_nil()) event.set_publisher(bus_id());
  if (event.timestamp() == TimePoint{}) event.set_timestamp(executor_.now());
  route(std::move(event));
}

void EventBus::set_authoriser(Authoriser authoriser) {
  authoriser_ = std::move(authoriser);
}

void EventBus::member_publish(ServiceId member, Event event) {
  const MemberInfo* info = member_info(member);
  if (!info) return;  // raced with a purge
  if (authoriser_ && !authoriser_(*info, AuthAction::kPublish, event.type())) {
    ++stats_.denied_publish;
    kLog.debug("publish of ", event.type(), " by ", member.to_string(),
               " denied");
    return;
  }
  event.set_publisher(member);
  if (event.timestamp() == TimePoint{}) event.set_timestamp(executor_.now());
  route(std::move(event));
}

void EventBus::member_subscribe(ServiceId member, std::uint64_t local_id,
                                Filter filter) {
  const MemberInfo* info = member_info(member);
  if (!info) return;
  if (authoriser_ &&
      !authoriser_(*info, AuthAction::kSubscribe, topic_of(filter))) {
    ++stats_.denied_subscribe;
    kLog.debug("subscription by ", member.to_string(), " to ",
               topic_of(filter), " denied");
    return;
  }
  registry_.subscribe(member, local_id, filter);
  quench_changed();
}

void EventBus::member_unsubscribe(ServiceId member, std::uint64_t local_id) {
  registry_.unsubscribe(member, local_id);
  quench_changed();
}

void EventBus::send_datagram(ServiceId dst, BytesView frame) {
  transport_->send(dst, frame);
}

void EventBus::route(Event event) {
  ++stats_.published;

  // The Siena-based engine pays the translation toll on every event: our
  // types → Siena types for matching, Siena types → ours for delivery.
  if (config_.engine == BusEngine::kSienaBased && config_.real_translation) {
    event = siena_round_trip(event);
  }

  SubscriptionRegistry::MatchResult hit;
  registry_.match(event, hit);
  if (hit.empty()) ++stats_.no_subscriber;

  if (config_.host) {
    // Charge the matching + translation + copy work to the simulated CPU
    // and fan out when the host would actually be done with it.
    Duration cost = costs_.publish_cost(event.payload_size(),
                                        registry_.size(),
                                        config_.host->cpu());
    TimePoint done = config_.host->charge(executor_.now(), cost);
    executor_.schedule_at(done, [this, event = std::move(event),
                                 hit = std::move(hit)] {
      fan_out(event, hit);
    });
  } else {
    fan_out(event, hit);
  }
}

void EventBus::fan_out(const Event& event,
                       const SubscriptionRegistry::MatchResult& hit) {
  for (const auto& [member, locals] : hit) {
    if (member == bus_id()) {
      // Local handlers may (un)subscribe from inside the callback.
      std::vector<Handler> handlers;
      handlers.reserve(locals.size());
      for (std::uint64_t local : locals) {
        auto hit_handler = local_handlers_.find(local);
        if (hit_handler != local_handlers_.end()) {
          handlers.push_back(hit_handler->second);
        }
      }
      for (const Handler& h : handlers) {
        ++stats_.local_deliveries;
        h(event);
      }
      continue;
    }
    auto pit = proxies_.find(member);
    if (pit == proxies_.end()) continue;  // purged between match and fan-out
    ++stats_.deliveries;
    pit->second->deliver_event(event, locals);
  }
}

void EventBus::quench_changed() {
  if (!config_.quench) return;
  std::vector<Filter> filters = registry_.all_filters();
  for (auto& [id, proxy] : proxies_) {
    proxy->send_quench_update(filters);
  }
  ++stats_.quench_updates;
}

std::string EventBus::topic_of(const Filter& filter) {
  for (const Constraint& c : filter.constraints()) {
    if (c.attribute == "type" && c.value.type() == ValueType::kString) {
      if (c.op == Op::kEq) return c.value.as_string();
      if (c.op == Op::kPrefix) return c.value.as_string() + "*";
    }
  }
  return "*";
}

}  // namespace amuse
