#include "bus/repl_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/crc32.hpp"

namespace amuse {
namespace {

constexpr std::size_t kRecordHeader = 1 + 4 + 4;  // type + length + crc

std::uint32_t read_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

}  // namespace

void frame_repl_record(Bytes& out, std::uint8_t type, BytesView payload) {
  Writer w;
  w.u8(type);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  out.insert(out.end(), w.bytes().begin(), w.bytes().end());
  out.insert(out.end(), payload.begin(), payload.end());
}

JournalReplay replay_repl_journal(BytesView journal) {
  JournalReplay r;
  std::size_t off = 0;
  // Replay onto a scratch state; `have_snapshot` gates ops — an op record
  // with no snapshot underneath cannot be applied consistently and marks
  // the journal torn from that point.
  ReplState state;
  bool have_snapshot = false;
  while (off < journal.size()) {
    if (journal.size() - off < kRecordHeader) break;  // short header → torn
    std::uint8_t type = journal[off];
    std::uint32_t len = read_u32(journal.data() + off + 1);
    std::uint32_t crc = read_u32(journal.data() + off + 5);
    if (journal.size() - off - kRecordHeader < len) break;  // short payload
    BytesView payload(journal.data() + off + kRecordHeader, len);
    if (crc32(payload) != crc) break;  // bit rot / torn write
    if (type == kReplRecordSnapshot) {
      try {
        state = ReplState::decode(payload);
      } catch (const DecodeError&) {
        break;
      }
      have_snapshot = true;
    } else if (type == kReplRecordOps) {
      if (!have_snapshot) break;
      try {
        state.apply_ops(payload);
      } catch (const DecodeError&) {
        break;
      }
    } else {
      break;  // unknown record type
    }
    off += kRecordHeader + len;
    ++r.recovery.records;
  }
  r.valid_bytes = off;
  r.torn = off < journal.size();
  if (have_snapshot) r.recovery.state = std::move(state);
  return r;
}

// ---------------------------------------------------------------------------
// MemReplStore

void MemReplStore::append_ops(BytesView op) {
  frame_repl_record(journal_, kReplRecordOps, op);
  ++stats_.ops_appended;
}

void MemReplStore::snapshot(BytesView state) {
  journal_.clear();
  frame_repl_record(journal_, kReplRecordSnapshot, state);
  ++stats_.snapshots_written;
}

ReplStore::Recovery MemReplStore::recover() {
  JournalReplay r = replay_repl_journal(journal_);
  if (r.torn) {
    journal_.resize(r.valid_bytes);
    ++stats_.torn_tails;
  }
  ++stats_.recoveries;
  return std::move(r.recovery);
}

// ---------------------------------------------------------------------------
// FileReplStore

void FileReplStore::append_ops(BytesView op) {
  Bytes rec;
  frame_repl_record(rec, kReplRecordOps, op);
  std::ofstream f(path_, std::ios::binary | std::ios::app);
  f.write(reinterpret_cast<const char*>(rec.data()),
          static_cast<std::streamsize>(rec.size()));
  f.flush();
  ++stats_.ops_appended;
}

void FileReplStore::snapshot(BytesView state) {
  // Compaction: the snapshot subsumes the whole journal. Write a fresh file
  // and rename it over the old one so a crash mid-compaction leaves either
  // the full old journal or the complete new snapshot, never a mix.
  Bytes rec;
  frame_repl_record(rec, kReplRecordSnapshot, state);
  std::string tmp = path_ + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(rec.data()),
            static_cast<std::streamsize>(rec.size()));
    f.flush();
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  ++stats_.snapshots_written;
}

ReplStore::Recovery FileReplStore::recover() {
  Bytes journal;
  {
    std::ifstream f(path_, std::ios::binary | std::ios::ate);
    if (f) {
      auto size = static_cast<std::size_t>(f.tellg());
      journal.resize(size);
      f.seekg(0);
      f.read(reinterpret_cast<char*>(journal.data()),
             static_cast<std::streamsize>(size));
    }
  }
  JournalReplay r = replay_repl_journal(journal);
  if (r.torn) {
    std::error_code ec;
    std::filesystem::resize_file(path_, r.valid_bytes, ec);
    ++stats_.torn_tails;
  }
  ++stats_.recoveries;
  return std::move(r.recovery);
}

}  // namespace amuse
