// Subscription registry: the bus-side bookkeeping between members' local
// subscription ids and the matcher's global SubIds.
//
// "As part of the subscription process, a filter is placed in the
//  publish/subscribe server, representing this subscription, and the ID of
//  the proxy registered. This information is used first to determine
//  whether an event is applicable to a given subscriber, and to
//  subsequently push matching events to the subscriber." (§III-B)
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/service_id.hpp"
#include "pubsub/matcher.hpp"

namespace amuse {

class SubscriptionRegistry {
 public:
  explicit SubscriptionRegistry(std::unique_ptr<Matcher> matcher);

  /// Registers member `local_id` under `filter`. Re-subscribing an existing
  /// local id replaces its filter.
  void subscribe(ServiceId member, std::uint64_t local_id,
                 const Filter& filter);
  void unsubscribe(ServiceId member, std::uint64_t local_id);
  /// Drops every subscription of a purged member.
  void remove_member(ServiceId member);

  /// Matching result: each interested member exactly once, with the local
  /// subscription ids that matched (sorted). Deterministic order (by id).
  using MatchResult = std::map<ServiceId, std::vector<std::uint64_t>>;
  void match(const Event& e, MatchResult& out) const;

  /// Every registered filter (for quench updates).
  [[nodiscard]] std::vector<Filter> all_filters() const;

  /// Every registered filter grouped by owning member — the input to the
  /// interest table's per-link split-horizon views.
  [[nodiscard]] std::map<ServiceId, std::vector<Filter>> filters_by_member()
      const;

  /// Every subscription as (member, local_id, filter) — the input to the
  /// replication log's canonical state (DESIGN.md §13). Deterministic
  /// order: by member id, then local id.
  [[nodiscard]] std::map<ServiceId, std::map<std::uint64_t, Filter>>
  subscriptions_by_member() const;

  [[nodiscard]] std::size_t size() const { return by_sub_.size(); }
  [[nodiscard]] std::size_t member_subscriptions(ServiceId member) const;
  [[nodiscard]] const Matcher& matcher() const { return *matcher_; }

 private:
  struct Record {
    ServiceId member;
    std::uint64_t local_id;
    Filter filter;
  };

  std::unique_ptr<Matcher> matcher_;
  std::unordered_map<SubId, Record> by_sub_;
  std::unordered_map<ServiceId, std::map<std::uint64_t, SubId>> by_member_;
  SubId next_id_ = 1;
};

}  // namespace amuse
