// BusPort: the narrow interface proxies use to call back into the event bus
// core (Fig. 3's synchronous arrows between proxy and bus). Splitting it
// from EventBus breaks the include cycle between bus/ and proxy/ and keeps
// proxies testable against a fake bus.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/annotations.hpp"
#include "common/bytes.hpp"
#include "common/service_id.hpp"
#include "common/sha256.hpp"
#include "pubsub/event.hpp"
#include "pubsub/filter.hpp"
#include "sim/executor.hpp"
#include "wire/reliable_channel.hpp"

namespace amuse {

/// What the discovery service learned about an admitted member; the proxy
/// bootstrap mechanism needs "enough information … to generate the
/// appropriate proxy type for the new service" (§III-C).
struct MemberInfo {
  ServiceId id;
  /// Drives proxy selection, e.g. "sensor.temperature", "console.nurse".
  std::string device_type;
  /// Drives authorisation policies, e.g. "sensor", "nurse", "guest".
  std::string role;
  /// FilterSet digest of the quench table the member still holds from a
  /// previous incarnation (all-zero when it has none). Carried as a
  /// trailing JOIN_RESP field so a promoted core can skip the quench push
  /// for members whose table is already current (no quench storm on
  /// failover).
  Digest256 quench_digest{};
};

/// Members admitted with this role are federation routing peers: the bus
/// pushes them per-link interest tables and counts them as inter-cell
/// links for suppression accounting.
inline constexpr std::string_view kGatewayRole = "gateway";

/// Members admitted with this role are warm standbys: the bus streams them
/// the replication log (kReplSnapshot on admission, kReplUpdate after every
/// mutation) instead of treating them as subscribers.
inline constexpr std::string_view kStandbyRole = "standby";

class BusPort {
 public:
  virtual ~BusPort();

  BusPort() = default;
  BusPort(const BusPort&) = delete;
  BusPort& operator=(const BusPort&) = delete;

  /// A member's proxy hands the bus a fully translated event (Fig. 2 flow).
  /// The event is shared and immutable from here on: the bus routes the
  /// same instance to every matching member (encode-once fan-out), copying
  /// only if it must re-stamp metadata.
  AMUSE_AFFINITY(core_executor)
  virtual void member_publish(ServiceId member, EventPtr event) = 0;
  /// Registers / replaces the member's subscription `local_id`.
  AMUSE_AFFINITY(core_executor)
  virtual void member_subscribe(ServiceId member, std::uint64_t local_id,
                                Filter filter) = 0;
  AMUSE_AFFINITY(core_executor)
  virtual void member_unsubscribe(ServiceId member,
                                  std::uint64_t local_id) = 0;

  /// Sends a raw frame to a member over the bus's transport endpoint.
  AMUSE_AFFINITY(core_executor)
  virtual void send_datagram(ServiceId dst, BytesView frame) = 0;

  /// Sends a burst of encoded frames to one member, in order. Semantically
  /// identical to calling send_datagram() per frame; EventBus forwards the
  /// burst to Transport::send_batch so one proxy pump round reaches the
  /// kernel in one sendmmsg. Default loops, so bus fakes need not care.
  AMUSE_AFFINITY(core_executor)
  virtual void send_datagram_batch(ServiceId dst,
                                   std::span<const Bytes> frames) {
    for (const Bytes& f : frames) send_datagram(dst, f);
  }

  /// A proxy shed an outbound event for `member` under budget exhaustion
  /// (DESIGN.md §9). The bus accounts it and surfaces it through
  /// BusObserver::on_shed — drops are accounted, never silent. Default
  /// no-op so proxy fakes in tests need not care.
  AMUSE_AFFINITY(core_executor)
  virtual void notify_shed(ServiceId member, const Event& event) {
    (void)member;
    (void)event;
  }
  /// A member's outbound channel crossed its flow-control high-water mark
  /// (under_pressure=true) or drained back below the low-water mark
  /// (false). Default no-op.
  AMUSE_AFFINITY(core_executor)
  virtual void member_pressure(ServiceId member, bool under_pressure) {
    (void)member;
    (void)under_pressure;
  }
  /// A gateway member's interest mirror lost sync (version gap or digest
  /// mismatch) and requests a full interest-table push. Default no-op so
  /// proxy fakes in tests need not care.
  AMUSE_AFFINITY(core_executor)
  virtual void member_interest_resync(ServiceId member) { (void)member; }
  /// A standby member's replication mirror lost sync (version gap or digest
  /// mismatch) and requests a full kReplSnapshot. Default no-op so proxy
  /// fakes in tests need not care.
  AMUSE_AFFINITY(core_executor)
  virtual void member_repl_resync(ServiceId member) { (void)member; }

  [[nodiscard]] virtual Executor& executor() = 0;
  [[nodiscard]] virtual ServiceId bus_id() const = 0;
  /// The bus incarnation tag stamped into reliable-channel frames.
  [[nodiscard]] virtual std::uint32_t bus_session() const = 0;
  /// Session id for `member`'s newly created proxy channel. The default
  /// reuses the bus session; EventBus hands out a distinct, monotonically
  /// increasing value per proxy incarnation so frames from a purged
  /// incarnation can never be adopted as the fresh channel's stream by a
  /// rejoined member — and honours a session reserved at admission time so
  /// the JoinAccept can tell the member which session to expect.
  [[nodiscard]] AMUSE_AFFINITY(core_executor) virtual std::uint32_t
  next_channel_session(ServiceId member) {
    (void)member;
    return bus_session();
  }
  [[nodiscard]] virtual const ReliableChannelConfig& channel_config()
      const = 0;
};

}  // namespace amuse
