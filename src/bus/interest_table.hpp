// Interest tables: the routing state a federated cell exports to its
// gateway links (Gryphon-style information-flow brokering; ROADMAP
// "Federated multi-cell routing").
//
// The bus keeps one InterestTable built from the subscription registry,
// grouped by owning member. Three views derive from it:
//
//  * quench view — every filter registered anywhere in the cell, the
//    existing Elvin-style quench table (uncompacted, so the digest stays
//    identical to the PR 2 canonicalisation).
//  * export view per link — the *compacted union* of every filter whose
//    owner is not that link (split horizon: interests a gateway itself
//    injected never echo back over the same link). This is what crosses
//    the federation link: the union of downstream interests, collapsed by
//    the Siena covering poset, never one filter per subscription.
//  * versioned diffs — each link gets incremental add/remove updates with
//    a digest of the full table after the update, and a full-table resync
//    when the peer reports divergence.
//
// The peer side holds an InterestMirror that applies those updates and
// flags when it has lost sync (version gap or digest mismatch) so the
// gateway can request a resync — a rejoined incarnation can never route
// on a stale table.
//
// OriginDedup is the companion loop/multipath guard: every routed event is
// stamped once, at its origin cell, with an immutable (cell id, sequence)
// pair; any bus that sees its own cell id — or a (cell, seq) it has
// already routed — drops the event. That terminates federation loops and
// collapses multi-path duplicates without a mutable hop counter.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bus/messages.hpp"
#include "common/service_id.hpp"
#include "pubsub/filter_set.hpp"

namespace amuse {

/// Federation origin header: an immutable (cell id, sequence) pair stamped
/// exactly once, by the origin cell's bus, on every routed event while
/// federation is active. Gateways forward it untouched; every bus dedups
/// on it. Replaces the mutable x-fed-hops counter.
inline constexpr const char* kFedOriginCellAttr = "x-fed-cell";
inline constexpr const char* kFedOriginSeqAttr = "x-fed-seq";

class InterestTable {
 public:
  /// Replaces the table with the registry's current (owner → filters)
  /// grouping. Local bus-side subscriptions are owned by the bus id.
  void rebuild(std::map<ServiceId, std::vector<Filter>> by_owner);

  /// The uncompacted union of every filter in the cell (quench view).
  [[nodiscard]] const FilterSet& all() const { return all_; }

  /// The compacted union of every filter whose owner is not `link` —
  /// what the cell advertises across that federation link.
  [[nodiscard]] FilterSet export_for(ServiceId link) const;

  /// Diffs the link's export view against what was last pushed to it.
  /// Returns the versioned update to send (full on the first push,
  /// incremental after), or nullopt when the view is unchanged.
  [[nodiscard]] std::optional<InterestUpdate> refresh_link(ServiceId link);

  /// A full-table replacement for the link (resync / fresh incarnation).
  /// Always bumps the link's version so the mirror adopts it.
  [[nodiscard]] InterestUpdate full_update(ServiceId link);

  /// Forgets per-link push state (the link was purged).
  void drop_link(ServiceId link);

  [[nodiscard]] std::uint64_t link_version(ServiceId link) const;

 private:
  struct LinkState {
    std::uint64_t version = 0;
    FilterSet pushed;
  };

  std::map<ServiceId, std::vector<Filter>> by_owner_;
  FilterSet all_;
  std::unordered_map<ServiceId, LinkState> links_;
};

/// The gateway-side replica of the export view the bus pushes to it.
class InterestMirror {
 public:
  enum class Apply {
    kApplied,       // table updated, interests() is current
    kResyncNeeded,  // version gap or digest mismatch — request a full table
  };

  [[nodiscard]] Apply apply(const InterestUpdate& update);

  /// True once a full table has been received and every increment applied
  /// cleanly since.
  [[nodiscard]] bool synced() const { return synced_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] const FilterSet& interests() const { return set_; }

  /// Forgets everything (link lost — the next push must be full).
  void reset();

 private:
  bool synced_ = false;
  std::uint64_t version_ = 0;
  FilterSet set_;
};

/// Bounded first-arrival-wins window over federation origin stamps.
class OriginDedup {
 public:
  explicit OriginDedup(std::size_t window_per_origin = 4096)
      : window_(window_per_origin) {}

  /// True when (origin cell, seq) is new — record it and route the event.
  /// False for anything already seen, and for stamps that have fallen off
  /// the bounded window (counted as duplicates rather than risking a
  /// re-route).
  [[nodiscard]] bool admit(std::uint64_t origin_cell, std::uint64_t seq);

  void clear() { origins_.clear(); }

 private:
  struct Window {
    std::unordered_set<std::uint64_t> seen;
    std::deque<std::uint64_t> order;  // insertion order, for eviction
    std::uint64_t floor = 0;          // seqs below this are presumed seen
  };

  std::size_t window_;
  std::unordered_map<std::uint64_t, Window> origins_;
};

}  // namespace amuse
