#include "bus/messages.hpp"

#include <algorithm>

namespace amuse {

const char* to_string(BusMsgType t) {
  switch (t) {
    case BusMsgType::kPublish: return "PUBLISH";
    case BusMsgType::kEvent: return "EVENT";
    case BusMsgType::kSubscribe: return "SUBSCRIBE";
    case BusMsgType::kUnsubscribe: return "UNSUBSCRIBE";
    case BusMsgType::kQuenchUpdate: return "QUENCH";
    case BusMsgType::kFlowControl: return "FLOW";
    case BusMsgType::kInterestUpdate: return "INTEREST";
    case BusMsgType::kReplUpdate: return "REPL";
    case BusMsgType::kReplSnapshot: return "REPL-SNAPSHOT";
  }
  return "?";
}

Bytes BusMessage::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  switch (type) {
    case BusMsgType::kPublish:
      event->encode(w);
      break;
    case BusMsgType::kEvent:
      w.u16(static_cast<std::uint16_t>(matched.size()));
      for (std::uint64_t id : matched) w.u64(id);
      event->encode(w);
      break;
    case BusMsgType::kSubscribe:
      w.u64(sub_id);
      filter->encode(w);
      break;
    case BusMsgType::kUnsubscribe:
      w.u64(sub_id);
      break;
    case BusMsgType::kQuenchUpdate:
      w.u16(static_cast<std::uint16_t>(quench_filters.size()));
      for (const Filter& f : quench_filters) f.encode(w);
      break;
    case BusMsgType::kFlowControl:
      w.u8(pressure ? 1 : 0);
      break;
    case BusMsgType::kInterestUpdate: {
      std::uint8_t flags = 0;
      if (interest->full) flags |= 0x01;
      if (interest->request_resync) flags |= 0x02;
      w.u8(flags);
      w.u64(interest->version);
      w.raw(interest->digest);
      w.u16(static_cast<std::uint16_t>(interest->added.size()));
      for (const Filter& f : interest->added) f.encode(w);
      w.u16(static_cast<std::uint16_t>(interest->removed.size()));
      for (const Filter& f : interest->removed) f.encode(w);
      break;
    }
    case BusMsgType::kReplUpdate:
    case BusMsgType::kReplSnapshot: {
      std::uint8_t flags = 0;
      if (repl->full) flags |= 0x01;
      if (repl->request_resync) flags |= 0x02;
      if (repl->lease) flags |= 0x04;
      w.u8(flags);
      w.u64(repl->version);
      w.raw(repl->digest);
      w.u64(repl->epoch);
      w.blob32(repl->ops);
      break;
    }
  }
  return std::move(w).take();
}

BusMessage BusMessage::decode(BytesView data) {
  Reader r(data);
  BusMessage m;
  auto raw = r.u8();
  if (raw < 1 || raw > 9) {
    throw DecodeError("bad bus message type " + std::to_string(raw));
  }
  m.type = static_cast<BusMsgType>(raw);
  switch (m.type) {
    case BusMsgType::kPublish:
      m.event = Event::decode(r);
      break;
    case BusMsgType::kEvent: {
      std::uint16_t n = r.u16();
      m.matched.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) m.matched.push_back(r.u64());
      m.event = Event::decode(r);
      break;
    }
    case BusMsgType::kSubscribe:
      m.sub_id = r.u64();
      m.filter = Filter::decode(r);
      break;
    case BusMsgType::kUnsubscribe:
      m.sub_id = r.u64();
      break;
    case BusMsgType::kQuenchUpdate: {
      std::uint16_t n = r.u16();
      m.quench_filters.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        m.quench_filters.push_back(Filter::decode(r));
      }
      break;
    }
    case BusMsgType::kFlowControl: {
      std::uint8_t state = r.u8();
      if (state > 1) {
        throw DecodeError("bad flow-control state " + std::to_string(state));
      }
      m.pressure = state == 1;
      break;
    }
    case BusMsgType::kInterestUpdate: {
      std::uint8_t flags = r.u8();
      if (flags > 3) {
        throw DecodeError("bad interest-update flags " + std::to_string(flags));
      }
      InterestUpdate u;
      u.full = (flags & 0x01) != 0;
      u.request_resync = (flags & 0x02) != 0;
      u.version = r.u64();
      BytesView digest = r.raw(u.digest.size());
      std::copy(digest.begin(), digest.end(), u.digest.begin());
      std::uint16_t n_added = r.u16();
      u.added.reserve(n_added);
      for (std::uint16_t i = 0; i < n_added; ++i) {
        u.added.push_back(Filter::decode(r));
      }
      std::uint16_t n_removed = r.u16();
      u.removed.reserve(n_removed);
      for (std::uint16_t i = 0; i < n_removed; ++i) {
        u.removed.push_back(Filter::decode(r));
      }
      m.interest = std::move(u);
      break;
    }
    case BusMsgType::kReplUpdate:
    case BusMsgType::kReplSnapshot: {
      std::uint8_t flags = r.u8();
      if (flags > 7) {
        throw DecodeError("bad repl-update flags " + std::to_string(flags));
      }
      ReplUpdate u;
      u.full = (flags & 0x01) != 0;
      u.request_resync = (flags & 0x02) != 0;
      u.lease = (flags & 0x04) != 0;
      u.version = r.u64();
      BytesView digest = r.raw(u.digest.size());
      std::copy(digest.begin(), digest.end(), u.digest.begin());
      u.epoch = r.u64();
      u.ops = r.blob32();
      if (m.type == BusMsgType::kReplSnapshot && !u.full) {
        throw DecodeError("repl snapshot without full flag");
      }
      m.repl = std::move(u);
      break;
    }
  }
  if (!r.done()) throw DecodeError("trailing bytes in bus message");
  return m;
}

Bytes BusMessage::encode_event_header(
    const std::vector<std::uint64_t>& matched) {
  Writer w(1 + 2 + 8 * matched.size());
  w.u8(static_cast<std::uint8_t>(BusMsgType::kEvent));
  w.u16(static_cast<std::uint16_t>(matched.size()));
  for (std::uint64_t id : matched) w.u64(id);
  return std::move(w).take();
}

Bytes BusMessage::encode_publish(const Event& e) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(BusMsgType::kPublish));
  e.encode(w);
  return std::move(w).take();
}

BusMessage BusMessage::publish(Event e) {
  BusMessage m;
  m.type = BusMsgType::kPublish;
  m.event = std::move(e);
  return m;
}

BusMessage BusMessage::deliver(Event e, std::vector<std::uint64_t> matched) {
  BusMessage m;
  m.type = BusMsgType::kEvent;
  m.event = std::move(e);
  m.matched = std::move(matched);
  return m;
}

BusMessage BusMessage::subscribe(std::uint64_t sub_id, Filter f) {
  BusMessage m;
  m.type = BusMsgType::kSubscribe;
  m.sub_id = sub_id;
  m.filter = std::move(f);
  return m;
}

BusMessage BusMessage::unsubscribe(std::uint64_t sub_id) {
  BusMessage m;
  m.type = BusMsgType::kUnsubscribe;
  m.sub_id = sub_id;
  return m;
}

BusMessage BusMessage::quench_update(std::vector<Filter> filters) {
  BusMessage m;
  m.type = BusMsgType::kQuenchUpdate;
  m.quench_filters = std::move(filters);
  return m;
}

BusMessage BusMessage::flow_control(bool pressure) {
  BusMessage m;
  m.type = BusMsgType::kFlowControl;
  m.pressure = pressure;
  return m;
}

BusMessage BusMessage::interest_update(InterestUpdate update) {
  BusMessage m;
  m.type = BusMsgType::kInterestUpdate;
  m.interest = std::move(update);
  return m;
}

BusMessage BusMessage::interest_resync_request() {
  BusMessage m;
  m.type = BusMsgType::kInterestUpdate;
  m.interest.emplace();
  m.interest->request_resync = true;
  return m;
}

BusMessage BusMessage::repl_update(ReplUpdate update) {
  BusMessage m;
  m.type = update.full ? BusMsgType::kReplSnapshot : BusMsgType::kReplUpdate;
  m.repl = std::move(update);
  return m;
}

BusMessage BusMessage::repl_resync_request() {
  BusMessage m;
  m.type = BusMsgType::kReplUpdate;
  m.repl.emplace();
  m.repl->request_resync = true;
  return m;
}

}  // namespace amuse
