#include "bus/quench.hpp"

namespace amuse {

void QuenchTable::update(const std::vector<Filter>& filters) {
  // Rebuild: tables are small (one filter per live subscription in a cell).
  for (std::size_t i = 1; i <= count_; ++i) matcher_.remove(i);
  count_ = 0;
  for (const Filter& f : filters) matcher_.add(++count_, f);
  have_table_ = true;
}

bool QuenchTable::wanted(const Event& event) const {
  if (!have_table_) return true;  // fail open
  std::vector<SubId> hits;
  matcher_.match(event, hits);
  return !hits.empty();
}

}  // namespace amuse
