// EventBus: the core of the SMC (§II-C, §III).
//
// Forwards events from publishing members to every interested member —
// exactly once per member, in per-sender order, through acknowledged,
// queued-and-retransmitted proxy channels. The matching engine behind the
// "EventBus" interface is pluggable (§III-A): the Siena-based engine (poset
// matcher reached through the translation layer) or the dedicated C-style
// engine (fast-forwarding counting matcher, no translation) — the paper's
// two measured configurations — plus a brute-force oracle for tests.
//
// Co-located services (the discovery service, the policy service, the
// proxy-bootstrap mechanism) publish and subscribe *locally* on the bus
// host without crossing the network; remote members are reached through
// their proxies.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "bus/bus_observer.hpp"
#include "bus/bus_port.hpp"
#include "bus/interest_table.hpp"
#include "bus/replication.hpp"
#include "bus/subscription_registry.hpp"
#include "common/sha256.hpp"
#include "hostmodel/cost_model.hpp"
#include "net/sim_network.hpp"
#include "net/transport.hpp"
#include "proxy/bootstrap.hpp"
#include "pubsub/encoded_event.hpp"

namespace amuse {

enum class BusEngine {
  kCBased,      // FastForwardMatcher, no translation (the dedicated engine)
  kSienaBased,  // SienaMatcher through the translation layer
  kBruteForce,  // linear-scan oracle
};

[[nodiscard]] const char* to_string(BusEngine e);

enum class AuthAction : std::uint8_t { kPublish, kSubscribe };

struct EventBusConfig {
  BusEngine engine = BusEngine::kCBased;
  /// Elvin-style quenching (§VI): push the global filter table to members
  /// so publishers can suppress events nobody wants.
  bool quench = false;
  /// Perform the real string round-trip for the Siena engine (genuine
  /// wall-clock cost); the simulated cost applies regardless via `costs`.
  bool real_translation = true;
  ReliableChannelConfig channel;
  /// Bus-wide retained-byte budget across every proxy channel (DESIGN.md
  /// §9). Shared event bodies are counted once for the whole fan-out. When
  /// exceeded, the bus sheds the oldest data of the slowest member first.
  /// 0 = no bus-wide ledger (per-member budgets may still apply).
  std::size_t bus_queue_bytes = 0;
  /// Engine software costs charged to the simulated host; defaults to the
  /// calibrated profile for the chosen engine.
  std::optional<BusCostModel> costs;
  /// When set, the publish pipeline charges CPU time to this simulated
  /// host, which is what shapes Figure 4.
  SimHost* host = nullptr;
  /// Bus incarnation tag for reliable-channel frames.
  std::uint32_t session = 1;

  // ---- HA warm-standby replication (DESIGN.md §13).

  /// Streams the replication log to standby-role members and stamps every
  /// routed event with an (epoch, seq) HA origin pair members dedup
  /// re-deliveries on. Implied (sticky) by admitting a standby member.
  bool ha = false;
  /// Promotion epoch of this core: 1 for a cold-started active core, the
  /// replica's epoch + 1 for a promoted standby. Fences split-brain: a
  /// deposed core's lower epoch loses everywhere it is compared.
  std::uint64_t epoch = 1;
  /// Bounded-staleness budget: how much recently routed traffic the spool
  /// retains for post-failover re-delivery. Eviction past either bound is
  /// a staleness-shed, accounted through BusObserver::on_staleness.
  std::size_t ha_spool_events = 512;
  std::size_t ha_spool_bytes = 256 * 1024;
  /// Lease renewal cadence while a standby is connected; the standby's
  /// failure detector runs on these (plus ordinary repl traffic).
  Duration repl_lease_interval = std::chrono::milliseconds(400);
  /// Replica to restore from (standby promotion): seeds the session-floor
  /// counters, the members' subscriptions, and the re-delivery spool.
  std::shared_ptr<const ReplState> restore;
  /// Write-ahead persistence hook (DESIGN.md §13.6): every ReplLog mutation
  /// is journalled through it, so a full-cell kill-and-restart recovers the
  /// membership, durable subscriptions and the re-delivery spool via
  /// ReplStore::recover() + `restore`. Null = in-memory only.
  std::shared_ptr<ReplStore> repl_store;
};

class EventBus final : public BusPort {
 public:
  using Handler = std::function<void(const Event&)>;
  /// Zero-copy local delivery: the handler shares the routed instance.
  using SharedHandler = std::function<void(const EventPtr&)>;
  /// Authorisation hook installed by the policy service. Return false to
  /// deny. `topic` is the event type being published, or the subscription
  /// filter's type constraint ("*" when unconstrained).
  using Authoriser = std::function<bool(const MemberInfo& member,
                                        AuthAction action,
                                        std::string_view topic)>;

  EventBus(Executor& executor, std::shared_ptr<Transport> transport,
           EventBusConfig config = {});
  ~EventBus() override;

  // ---- Membership (driven by the discovery service / SMC composition).

  /// Admits a member: instantiates its proxy via the bootstrap factory.
  /// Re-admitting an existing id purges the old incarnation first.
  AMUSE_AFFINITY(core_executor) void add_member(const MemberInfo& info);
  /// "Purge Member": destroys the proxy and any outbound data awaiting
  /// delivery, and removes all the member's subscriptions.
  AMUSE_AFFINITY(core_executor) void purge_member(ServiceId id);
  [[nodiscard]] bool has_member(ServiceId id) const;
  [[nodiscard]] const MemberInfo* member_info(ServiceId id) const;
  [[nodiscard]] Proxy* proxy_for(ServiceId id);
  [[nodiscard]] std::vector<MemberInfo> members() const;

  /// Register device-type-specific proxy creators before admitting members.
  [[nodiscard]] ProxyFactory& factory() { return factory_; }

  // ---- Local pub/sub for co-located services.

  AMUSE_AFFINITY(core_executor)
  std::uint64_t subscribe_local(const Filter& filter, Handler handler);
  /// Like subscribe_local but the handler receives the shared routed
  /// instance — what in-process bridges use to forward without copying.
  AMUSE_AFFINITY(core_executor)
  std::uint64_t subscribe_local_shared(const Filter& filter,
                                       SharedHandler handler);
  AMUSE_AFFINITY(core_executor) void unsubscribe_local(std::uint64_t id);
  /// Publishes as the bus host itself (discovery events, policy actions…).
  AMUSE_AFFINITY(core_executor) void publish_local(Event event);
  /// Zero-copy variant: routes the shared instance directly; pays a
  /// copy-on-write restamp only when publisher/timestamp are missing.
  AMUSE_AFFINITY(core_executor) void publish_local(EventPtr event);

  // ---- Federation (ROADMAP "Federated multi-cell routing").

  /// Turns on origin stamping + dedup for every routed event. Implied by
  /// admitting a gateway-role member; in-process bridges call it
  /// explicitly. Sticky: gateway churn must not leave a window of
  /// unstamped events.
  AMUSE_AFFINITY(core_executor) void enable_federation();
  [[nodiscard]] bool federation_enabled() const { return federation_; }
  [[nodiscard]] const InterestTable& interest_table() const { return table_; }

  // ---- HA warm standby (DESIGN.md §13).

  /// Turns on the replication log + HA (epoch, seq) stamping. Implied by
  /// config.ha, config.restore, or admitting a standby-role member.
  /// Sticky: standby churn must not leave a window of unstamped events.
  AMUSE_AFFINITY(core_executor) void enable_ha();
  [[nodiscard]] bool ha_enabled() const { return ha_; }
  [[nodiscard]] std::uint64_t epoch() const { return config_.epoch; }
  /// True after step_down(): this core lost the cell to a higher epoch.
  [[nodiscard]] bool deposed() const { return deposed_; }
  /// The replication log's canonical state (tests / promotion plumbing).
  [[nodiscard]] const ReplState& repl_state() const { return repl_.state(); }
  /// Split-brain fencing: a revived core that discovers a higher-epoch
  /// rival abdicates — it stops routing (further publishes are accounted
  /// as staleness-shed, never silently dropped), accounts every spooled
  /// event the promoted core must now cover from its own replica, and
  /// purges all members so they re-home.
  AMUSE_AFFINITY(core_executor) void step_down();

  void set_authoriser(Authoriser authoriser);

  /// Installs (or clears, with {}) the instrumentation taps used by the
  /// delivery-guarantee oracle. Observers are passive: they must not call
  /// back into the bus.
  void set_observer(BusObserver observer);

  // ---- Introspection.

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t deliveries = 0;       // member deliveries enqueued
    std::uint64_t local_deliveries = 0;
    std::uint64_t no_subscriber = 0;    // matched nobody
    std::uint64_t denied_publish = 0;
    std::uint64_t denied_subscribe = 0;
    std::uint64_t quench_updates = 0;
    std::uint64_t quench_skipped = 0;   // no-op table pushes elided
    std::uint64_t encodes = 0;          // event bodies serialised
    std::uint64_t encode_reuses = 0;    // cached bodies reused by proxies
    std::uint64_t events_shed = 0;      // queued deliveries dropped, counted
    std::uint64_t flow_control_signals = 0;  // pressure on/off broadcasts
    std::uint64_t interests_propagated = 0;  // interest pushes to links
    std::uint64_t interest_resyncs = 0;      // full tables served on request
    std::uint64_t fed_events_suppressed = 0;  // no downstream interest —
                                              // crossed zero links
    std::uint64_t fed_duplicates_dropped = 0;  // origin-dedup hits (loops +
                                               // multi-path duplicates)
    std::uint64_t repl_updates = 0;        // repl stream messages sent
    std::uint64_t repl_resyncs = 0;        // full snapshots served on request
    std::uint64_t promotions = 0;          // 1 when this core restored a replica
    std::uint64_t staleness_redelivered = 0;  // spooled events re-sent on re-home
    std::uint64_t staleness_shed = 0;      // events the budget gave up on,
                                           // accounted via on_staleness
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const SubscriptionRegistry& registry() const {
    return registry_;
  }
  /// Largest outbound queue across member proxies (health monitoring:
  /// a growing backlog means an unreachable or overwhelmed member).
  [[nodiscard]] std::size_t max_proxy_backlog() const;
  /// The bus-wide retained-byte ledger; null unless bus_queue_bytes is set.
  [[nodiscard]] const DeliveryBudget* shared_budget() const {
    return budget_.get();
  }
  /// True while any member channel is between its watermarks' high and low
  /// crossings (i.e. kFlowControl pressure is announced to publishers).
  [[nodiscard]] bool flow_pressure() const { return flow_announced_; }
  [[nodiscard]] const EventBusConfig& config() const { return config_; }

  // ---- BusPort (called by proxies).

  AMUSE_AFFINITY(core_executor)
  void member_publish(ServiceId member, EventPtr event) override;
  AMUSE_AFFINITY(core_executor)
  void member_subscribe(ServiceId member, std::uint64_t local_id,
                        Filter filter) override;
  AMUSE_AFFINITY(core_executor)
  void member_unsubscribe(ServiceId member, std::uint64_t local_id) override;
  AMUSE_AFFINITY(core_executor)
  void send_datagram(ServiceId dst, BytesView frame) override;
  AMUSE_AFFINITY(core_executor)
  void send_datagram_batch(ServiceId dst,
                           std::span<const Bytes> frames) override;
  AMUSE_AFFINITY(core_executor)
  void notify_shed(ServiceId member, const Event& event) override;
  AMUSE_AFFINITY(core_executor)
  void member_pressure(ServiceId member, bool under_pressure) override;
  AMUSE_AFFINITY(core_executor)
  void member_interest_resync(ServiceId member) override;
  AMUSE_AFFINITY(core_executor)
  void member_repl_resync(ServiceId member) override;
  [[nodiscard]] Executor& executor() override { return executor_; }
  [[nodiscard]] ServiceId bus_id() const override {
    return transport_->local_id();
  }
  [[nodiscard]] std::uint32_t bus_session() const override {
    return config_.session;
  }
  [[nodiscard]] std::uint32_t next_channel_session(ServiceId member) override {
    // Unique per proxy incarnation: a rejoined member's fresh receiver must
    // never mistake a stale in-flight frame from its previous incarnation's
    // proxy (destroyed on purge) for the new channel's seq 0. An admission
    // may have reserved the session already (so the JoinAccept could carry
    // it to the member); consume that reservation here.
    auto it = reserved_sessions_.find(member);
    if (it != reserved_sessions_.end()) {
      std::uint32_t session = it->second;
      reserved_sessions_.erase(it);
      return session;
    }
    return config_.session + (++proxy_incarnations_);
  }

  /// Pre-allocates the session the member's *next* proxy channel will use,
  /// so the discovery service can hand it to the device in the JoinAccept:
  /// the device's fresh receiver then refuses to adopt any stale frame from
  /// an earlier (strictly smaller-session) proxy incarnation.
  [[nodiscard]] std::uint32_t reserve_channel_session(ServiceId member) {
    std::uint32_t session = config_.session + (++proxy_incarnations_);
    reserved_sessions_[member] = session;
    return session;
  }
  [[nodiscard]] const ReliableChannelConfig& channel_config() const override {
    return config_.channel;
  }

 private:
  static std::unique_ptr<Matcher> make_matcher(BusEngine engine);
  // translation + cost + match + fan-out
  AMUSE_AFFINITY(core_executor) void route(EventPtr event);
  AMUSE_AFFINITY(core_executor)
  void fan_out(const EncodedEvent& event,
               const SubscriptionRegistry::MatchResult& hit);
  /// Recomputes the interest table from the registry and pushes whatever
  /// changed: the quench table to every member (when quenching is on) and
  /// per-link interest diffs to gateway members.
  void interests_changed();
  void push_quench_table(Proxy& proxy);
  /// Full interest table to one link (admit / rejoin / resync request).
  void push_interest_table(Proxy& proxy);
  /// Sheds the oldest data of the slowest member (stalled first, then the
  /// largest retained footprint) until the bus-wide ledger fits.
  void enforce_shared_budget();
  /// Broadcasts kFlowControl on empty↔non-empty transitions of the
  /// pressured-member set, looping until stable (the control bytes of the
  /// broadcast itself can move other channels across their watermarks).
  void update_flow_control();
  /// Streams pending replication ops to every standby after a mutation.
  AMUSE_AFFINITY(core_executor) void repl_flush();
  /// Periodic bare-lease renewal (or the pending ops, if any) while HA is
  /// on — the heartbeat the standby's failure detector runs on.
  AMUSE_AFFINITY(core_executor) void lease_tick();
  void schedule_lease_tick();
  /// Full snapshot to one standby (admission / resync request).
  AMUSE_AFFINITY(core_executor) void push_repl_snapshot(Proxy& proxy);
  /// Re-delivers spooled events matching the member's pre-crash
  /// subscriptions, synchronously at re-home admission (before any new
  /// fan-out can enqueue on the fresh channel, preserving per-sender FIFO).
  AMUSE_AFFINITY(core_executor)
  void redeliver_spool(Proxy& proxy, const ReplMember& snapshot);
  /// One staleness-shed: accounted through on_staleness, never silent.
  AMUSE_AFFINITY(core_executor) void account_staleness(const Event& event);
  [[nodiscard]] static std::string topic_of(const Filter& filter);

  Executor& executor_;
  std::shared_ptr<Transport> transport_;
  EventBusConfig config_;
  BusCostModel costs_;
  SubscriptionRegistry registry_;
  ProxyFactory factory_;
  std::unordered_map<ServiceId, MemberInfo> member_info_;
  std::unordered_map<ServiceId, std::unique_ptr<Proxy>> proxies_;
  std::unordered_map<std::uint64_t, SharedHandler> local_handlers_;
  std::uint64_t next_local_id_ = 1;
  std::uint32_t proxy_incarnations_ = 0;
  std::unordered_map<ServiceId, std::uint32_t> reserved_sessions_;
  Authoriser authoriser_;
  BusObserver observer_;
  Stats stats_;
  std::shared_ptr<DeliveryBudget> budget_;  // null unless bus_queue_bytes
  std::unordered_set<ServiceId> pressured_members_;
  bool flow_announced_ = false;   // last broadcast state
  bool broadcasting_flow_ = false;  // re-entrancy guard
  // Digest of the last filter table pushed to members; a (un)subscribe that
  // leaves the effective set unchanged skips the whole fan-out.
  bool quench_pushed_ = false;
  Digest256 quench_digest_{};
  // ---- Federation routing state (DESIGN.md §11).
  InterestTable table_;
  OriginDedup fed_dedup_;
  std::set<ServiceId> gateway_members_;  // ordered: deterministic pushes
  bool federation_ = false;              // sticky once enabled
  std::uint64_t fed_seq_ = 0;            // origin sequence for own events
  // ---- HA warm-standby replication state (DESIGN.md §13).
  ReplLog repl_;
  std::set<ServiceId> standby_members_;  // ordered: deterministic pushes
  bool ha_ = false;                      // sticky once enabled
  bool deposed_ = false;                 // stepped down to a higher epoch
  std::uint64_t route_seq_ = 0;          // HA stamp sequence
  std::uint64_t lease_timer_gen_ = 0;    // invalidates stale lease timers
  // Pre-crash membership from the restored replica: subscription snapshots
  // for spool re-delivery, consumed one-shot as each member re-homes.
  std::unordered_map<std::uint64_t, ReplMember> ha_rehome_;
  // Keeps `this` captures in lease timers from outliving the bus.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace amuse
