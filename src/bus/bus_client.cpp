#include "bus/bus_client.hpp"

#include "common/log.hpp"
#include "wire/packet.hpp"

namespace amuse {
namespace {
const Logger kLog("bus.client");
}

BusClient::BusClient(Executor& executor, std::shared_ptr<Transport> transport,
                     ServiceId bus, BusClientConfig config)
    : transport_(std::move(transport)),
      bus_(bus),
      config_(config),
      executor_(executor) {
  std::uint32_t session = config_.session;
  if (session == 0) {
    session = static_cast<std::uint32_t>(transport_->local_id().raw() ^
                                         0x5eb0a11eU);
  }
  channel_ = std::make_unique<ReliableChannel>(
      executor, transport_->local_id(), bus_, session, config_.channel,
      [this](const Packet& p) { transport_->send(p.dst, p.encode()); },
      [this](BytesView message) { on_message(message); });
  // Burst sink: a pump round's frames reach the kernel in one sendmmsg on
  // batching transports; non-batching transports loop, byte-identical.
  channel_->set_send_frames([this](std::vector<Packet>& frames) {
    std::vector<Bytes> encodings;
    encodings.reserve(frames.size());
    std::vector<Transport::Datagram> burst;
    burst.reserve(frames.size());
    for (const Packet& p : frames) {
      encodings.push_back(p.encode());
      burst.push_back(Transport::Datagram{p.dst, BytesView(encodings.back())});
    }
    transport_->send_batch(burst);
  });
  if (config_.install_receive_handler) {
    transport_->set_receive_handler([this](ServiceId src, BytesView data) {
      handle_datagram(src, data);
    });
  }
}

BusClient::~BusClient() {
  if (config_.install_receive_handler) {
    transport_->set_receive_handler(nullptr);
  }
}

void BusClient::handle_datagram(ServiceId src, BytesView data) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "BusClient::handle_datagram");
  if (src != bus_) return;  // only the bus talks to us on this endpoint
  std::optional<Packet> p = Packet::decode(data);
  if (!p) return;
  channel_->on_packet(*p);
}

std::uint64_t BusClient::subscribe(const Filter& filter, Handler handler) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "BusClient::subscribe");
  std::uint64_t id = next_sub_id_++;
  handlers_.emplace(id, std::move(handler));
  // Control class: subscription state must reach the bus even when the
  // outbound queue is saturated with event data.
  (void)channel_->send(BusMessage::subscribe(id, filter).encode(),
                       MsgClass::kControl);
  return id;
}

void BusClient::unsubscribe(std::uint64_t id) {
  if (handlers_.erase(id) == 0) return;
  (void)channel_->send(BusMessage::unsubscribe(id).encode(),
                       MsgClass::kControl);
}

bool BusClient::publish(Event event) {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "BusClient::publish");
  event.set_publisher(transport_->local_id());
  event.set_publisher_seq(next_pub_seq_++);
  if (event.timestamp() == TimePoint{}) {
    event.set_timestamp(executor_.now());
  }
  if (config_.quench && !quench_.wanted(event)) {
    ++stats_.quenched;
    // The sequence number was consumed; per-sender FIFO at receivers is
    // judged on delivered events only, so gaps from quenching are fine.
    return false;
  }
  ++stats_.published;
  if (!channel_->send(BusMessage::encode_publish(event))) {
    kLog.warn("publish queue full towards bus ", bus_.to_string());
  }
  if (pressured_) {
    // Still sent — the bus sheds member-side, not us — but tell the caller
    // the cell asked publishers to back off.
    ++stats_.pressured_publishes;
    return false;
  }
  return true;
}

bool BusClient::publish(const EventPtr& event) {
  if (!event) return false;
  // Copy-on-write restamp: one copy to take ownership of the publisher
  // metadata; the attribute payload (body, federation origin stamp) is
  // carried over verbatim.
  return publish(Event(*event));
}

void BusClient::set_unclaimed_handler(Handler handler) {
  unclaimed_ = std::move(handler);
}

void BusClient::request_repl_resync() {
  AMUSE_ASSERT_ON_EXECUTOR(executor_, "BusClient::request_repl_resync");
  ++stats_.repl_resyncs;
  (void)channel_->send(BusMessage::repl_resync_request().encode(),
                       MsgClass::kControl);
}

void BusClient::on_message(BytesView message) {
  BusMessage m;
  try {
    m = BusMessage::decode(message);
  } catch (const DecodeError& e) {
    kLog.warn("malformed message from bus: ", e.what());
    return;
  }
  switch (m.type) {
    case BusMsgType::kEvent: {
      ++stats_.events_received;
      if (delivery_filter_ && !delivery_filter_(*m.event)) {
        // A copy this member has already seen (HA re-delivery after a
        // failover): exactly-once survives the promotion.
        ++stats_.deliveries_filtered;
        break;
      }
      bool claimed = false;
      for (std::uint64_t id : m.matched) {
        auto it = handlers_.find(id);
        if (it == handlers_.end()) continue;
        claimed = true;
        ++stats_.handler_invocations;
        it->second(*m.event);
      }
      if (!claimed && unclaimed_) unclaimed_(*m.event);
      break;
    }
    case BusMsgType::kQuenchUpdate:
      quench_.update(m.quench_filters);
      // Remember the canonical identity of what we hold: a re-join after a
      // core failover presents it so an unchanged table is not re-pushed.
      quench_digest_ = FilterSet(m.quench_filters).digest();
      quench_received_ = true;
      break;
    case BusMsgType::kInterestUpdate: {
      if (!m.interest || m.interest->request_resync) {
        kLog.warn("nonsense interest message from bus");
        break;
      }
      switch (mirror_.apply(*m.interest)) {
        case InterestMirror::Apply::kApplied:
          ++stats_.interest_updates;
          if (on_interest_) on_interest_(mirror_.interests());
          break;
        case InterestMirror::Apply::kResyncNeeded:
          // Version gap or digest mismatch: never route on a suspect
          // table — ask for a full one. Control class, like the push.
          ++stats_.interest_resyncs;
          kLog.debug("interest mirror lost sync at v",
                     std::to_string(m.interest->version),
                     "; requesting resync");
          (void)channel_->send(BusMessage::interest_resync_request().encode(),
                               MsgClass::kControl);
          break;
      }
      break;
    }
    case BusMsgType::kReplUpdate:
    case BusMsgType::kReplSnapshot:
      if (!m.repl || m.repl->request_resync || !on_repl_) {
        kLog.warn("unexpected repl message from bus");
        break;
      }
      ++stats_.repl_updates;
      on_repl_(*m.repl);
      break;
    case BusMsgType::kFlowControl:
      ++stats_.flow_signals;
      if (pressured_ != m.pressure) {
        pressured_ = m.pressure;
        kLog.debug(m.pressure ? "bus raised flow-control pressure"
                              : "bus released flow-control pressure");
        if (on_pressure_) on_pressure_(m.pressure);
      }
      break;
    default:
      kLog.warn("unexpected ", to_string(m.type), " from bus");
      break;
  }
}

}  // namespace amuse
